(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (§V) and times each with Bechamel.

    Layout:
    - first the full evaluation report is printed (Table I, Fig. 2 data,
      Table II, §V.A OOP counts, §V.D inertia, §V.E robustness), with the
      paper-reported values alongside;
    - then Table III measured the paper's way (average of 5 runs, on the
      monotonic wall clock rather than the paper's CPU time);
    - then one Bechamel [Test.make] per table/figure: the six Table III
      analysis runs (tool × corpus version) and the artifact-regeneration
      pipelines for Table I, Fig. 2, Table II and §V.D. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Observability flags (before the fixtures, so module-initialization
   work is captured too): --trace out.json / --metrics out.json        *)
(* ------------------------------------------------------------------ *)

let path_opt_from_argv flag =
  let rec scan = function
    | f :: path :: _ when String.equal f flag -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let trace_out = path_opt_from_argv "--trace"
let metrics_out = path_opt_from_argv "--metrics"
let () = if trace_out <> None || metrics_out <> None then Obs.set_enabled true

(* Persistent cache root (--cache-dir DIR / --no-cache, as on bin/evaluate)
   and the machine-readable results file (--json FILE, schema
   phpsafe-bench/1). *)
let json_out = path_opt_from_argv "--json"
let no_cache = Array.exists (String.equal "--no-cache") Sys.argv

let () =
  if no_cache then Phplang.Store.set_root None
  else
    match path_opt_from_argv "--cache-dir" with
    | Some dir -> Phplang.Store.set_root (Some dir)
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Shared fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let corpus12 = Corpus.generate Corpus.Plan.V2012
let corpus14 = Corpus.generate Corpus.Plan.V2014

let tools : Secflow.Tool.t list = [ Phpsafe.tool; Rips.tool; Pixy.tool ]

let run_tool_on (tool : Secflow.Tool.t) corpus =
  List.map
    (fun (p : Corpus.Catalog.plugin_output) ->
      (p.Corpus.Catalog.po_name,
       tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project))
    corpus.Corpus.plugins

(* Table III the paper's way: average of five runs — but on the monotonic
   wall clock (Obs.Clock), not Sys.time: CPU time sums across domains and
   over-reports whenever a pool is active in the same process. *)
let timed_runs = 5

let detection_time (tool : Secflow.Tool.t) corpus =
  let t0 = Obs.Clock.now () in
  for _ = 1 to timed_runs do
    ignore (run_tool_on tool corpus)
  done;
  (Obs.Clock.now () -. t0) /. float_of_int timed_runs

(* Domain pool for the parallel driver ($PHPSAFE_JOBS overrides sizing). *)
let pool = Sched.create ()

(* Precomputed evaluations reused by the report and the fast benches,
   computed through the parallel driver (results are identical to the
   sequential path; only timing differs). *)
let ev2012, stats2012 =
  Evalkit.Runner.evaluate_with_stats ~pool Corpus.Plan.V2012
let ev2014, stats2014 =
  Evalkit.Runner.evaluate_with_stats ~pool Corpus.Plan.V2014

(* Whole-corpus wall-clock comparison: the six Table III runs (tool ×
   version) once sequentially, once fanned out across the pool.  Returns
   (sequential, parallel) wall seconds for the --json results file. *)
let sequential_vs_parallel () =
  let items =
    List.concat_map
      (fun (tool : Secflow.Tool.t) ->
        [ (tool, corpus12); (tool, corpus14) ])
      tools
  in
  let work (tool, corpus) = ignore (run_tool_on tool corpus) in
  let wall f =
    let t0 = Obs.Clock.now () in
    f ();
    Obs.Clock.now () -. t0
  in
  let seq = wall (fun () -> List.iter work items) in
  let par = wall (fun () -> ignore (Sched.map ~pool work items)) in
  Format.printf
    "@.== Table III whole-corpus runs: sequential vs parallel wall clock ==@.";
  Format.printf
    "sequential: %6.2fs   parallel (%d domains): %6.2fs   speedup: %.2fx@."
    seq (Sched.size pool) par
    (if par > 0. then seq /. par else nan);
  (seq, par)

(* ------------------------------------------------------------------ *)
(* Bechamel tests: one per table / figure                              *)
(* ------------------------------------------------------------------ *)

(* Table III — whole-corpus analysis per tool and version. *)
let table3_tests =
  List.concat_map
    (fun (tool : Secflow.Tool.t) ->
      [ Test.make
          ~name:(Printf.sprintf "table3/%s-2012" tool.Secflow.Tool.name)
          (Staged.stage (fun () -> ignore (run_tool_on tool corpus12)));
        Test.make
          ~name:(Printf.sprintf "table3/%s-2014" tool.Secflow.Tool.name)
          (Staged.stage (fun () -> ignore (run_tool_on tool corpus14))) ])
    tools

(* Table I — classification + metrics over the raw tool outputs. *)
let table1_test =
  Test.make ~name:"table1/classification+metrics"
    (Staged.stage (fun () ->
         let classified =
           List.map
             (fun (r : Evalkit.Runner.tool_run) ->
               Evalkit.Matching.classify ~seeds:corpus12.Corpus.seeds
                 r.Evalkit.Runner.tr_output)
             ev2012.Evalkit.Runner.ev_runs
         in
         let union = Evalkit.Matching.detected_union classified in
         List.iter
           (fun c ->
             ignore (Evalkit.Matching.metrics_for ~union c);
             ignore (Evalkit.Matching.metrics_for ~kind:Secflow.Vuln.Xss ~union c);
             ignore (Evalkit.Matching.metrics_for ~kind:Secflow.Vuln.Sqli ~union c))
           classified))

(* Fig. 2 — Venn region computation. *)
let figure2_test =
  Test.make ~name:"figure2/venn-regions"
    (Staged.stage (fun () ->
         let get name = Evalkit.Runner.classified_for ev2012 name in
         ignore
           (Evalkit.Venn.compute
              ~all_real:(Corpus.real_vulns corpus12)
              ~phpsafe:(get "phpSAFE") ~rips:(get "RIPS") ~pixy:(get "Pixy"))))

(* Table II — input-vector classification with the persistence join. *)
let table2_test =
  Test.make ~name:"table2/input-vectors"
    (Staged.stage (fun () ->
         ignore
           (Evalkit.Vectors.compute
              ~union_2012:ev2012.Evalkit.Runner.ev_union
              ~union_2014:ev2014.Evalkit.Runner.ev_union)))

(* §V.D — inertia analysis. *)
let inertia_test =
  Test.make ~name:"sectionVD/inertia"
    (Staged.stage (fun () ->
         ignore
           (Evalkit.Inertia.compute
              ~union_2012:ev2012.Evalkit.Runner.ev_union
              ~union_2014:ev2014.Evalkit.Runner.ev_union)))

(* corpus generation itself, since every artifact depends on it *)
let corpus_test =
  Test.make ~name:"corpus/generate-2012"
    (Staged.stage (fun () -> ignore (Corpus.generate Corpus.Plan.V2012)))

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                    *)
(* ------------------------------------------------------------------ *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) ~stabilize:false
      ~kde:None ()
  in
  List.map
    (fun test ->
      let name = Test.Elt.name test in
      let raw = Benchmark.run cfg instances test in
      (name, Analyze.one ols Instance.monotonic_clock raw))
    tests

let print_bench_results results =
  Format.printf "@.== Bechamel micro-benchmarks (OLS over runs) ==@.";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols with Some r -> r | None -> nan
      in
      Format.printf "%-34s %12.3f ms/run  (r²=%.3f)@." name (est /. 1e6) r2)
    results

(* ------------------------------------------------------------------ *)
(* Main                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* --json FILE: machine-readable results (schema phpsafe-bench/1)      *)
(* ------------------------------------------------------------------ *)

let write_json path ~table3 ~seq_par ~e13 ~e16 ~e12 ~e14 ~e15 ~e17 =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.bprintf b fmt in
  bpf "{\n  \"schema\": \"phpsafe-bench/1\",\n";
  bpf "  \"jobs\": %d,\n" (Sched.size pool);
  bpf "  \"cache_enabled\": %b,\n" (Phplang.Store.enabled ());
  let seq, par = seq_par in
  bpf "  \"wall\": {\n    \"sequential_s\": %.6f,\n    \"parallel_s\": %.6f,\n"
    seq par;
  bpf "    \"table3\": {";
  List.iteri
    (fun i (name, t12, t14) ->
      bpf "%s\n      \"%s\": {\"v2012_s\": %.6f, \"v2014_s\": %.6f}"
        (if i = 0 then "" else ",") name t12 t14)
    table3;
  bpf "\n    }\n  },\n";
  bpf "  \"cache\": {\n    \"namespaces\": {";
  List.iteri
    (fun i (s : Phplang.Store.stats) ->
      let lookups = s.Phplang.Store.hits + s.Phplang.Store.misses in
      bpf
        "%s\n      \"%s\": {\"hits\": %d, \"misses\": %d, \"stores\": %d, \
         \"hit_rate\": %.4f}"
        (if i = 0 then "" else ",")
        s.Phplang.Store.ns s.Phplang.Store.hits s.Phplang.Store.misses
        s.Phplang.Store.stores
        (if lookups > 0 then
           float_of_int s.Phplang.Store.hits /. float_of_int lookups
         else 0.)
    )
    (Phplang.Store.counters ());
  bpf "\n    }\n  },\n";
  (let (t : Evalkit.Flow_delta.t) = e13 in
   let variant key (m : Evalkit.Metrics.t) =
     bpf "    \"%s\": {\"tp\": %d, \"fp\": %d, \"fn\": %d},\n" key
       m.Evalkit.Metrics.tp m.Evalkit.Metrics.fp m.Evalkit.Metrics.fn
   in
   bpf "  \"e13\": {\n    \"reals\": %d,\n    \"foils\": %d,\n"
     t.Evalkit.Flow_delta.fd_reals t.Evalkit.Flow_delta.fd_foils;
   variant "flat" t.Evalkit.Flow_delta.fd_flat_metrics;
   variant "flow" t.Evalkit.Flow_delta.fd_flow_metrics;
   bpf "    \"new_tp\": %d,\n    \"removed_fp\": %d\n  },\n"
     (List.length t.Evalkit.Flow_delta.fd_new_tp)
     (List.length t.Evalkit.Flow_delta.fd_removed_fp));
  (let (t : Evalkit.Class_delta.t) = e16 in
   bpf "  \"e16\": {\n    \"reals\": %d,\n    \"foils\": %d,\n"
     t.Evalkit.Class_delta.cd_reals t.Evalkit.Class_delta.cd_foils;
   bpf "    \"so_only_two_phase\": %b,\n"
     t.Evalkit.Class_delta.cd_so_only_two_phase;
   bpf "    \"variants\": {";
   List.iteri
     (fun i (v : Evalkit.Class_delta.variant) ->
       bpf "%s\n      \"%s\": {" (if i = 0 then "" else ",")
         v.Evalkit.Class_delta.cv_name;
       List.iteri
         (fun j (k, (m : Evalkit.Metrics.t)) ->
           bpf "%s\"%s\": {\"tp\": %d, \"fp\": %d, \"fn\": %d}"
             (if j = 0 then "" else ", ")
             (Secflow.Vuln.kind_spec_name k)
             m.Evalkit.Metrics.tp m.Evalkit.Metrics.fp m.Evalkit.Metrics.fn)
         v.Evalkit.Class_delta.cv_by_kind;
       bpf "}")
     t.Evalkit.Class_delta.cd_variants;
   bpf "\n    }\n  },\n");
  (match e12 with
  | None -> bpf "  \"e12\": null,\n"
  | Some (r : Evalkit.Incremental.report) ->
      bpf "  \"e12\": {\n    \"files_2014\": %d,\n" r.Evalkit.Incremental.ir_files_2014;
      bpf "    \"cold_total_s\": %.6f,\n    \"warm_total_s\": %.6f,\n"
        r.Evalkit.Incremental.ir_cold_total r.Evalkit.Incremental.ir_warm_total;
      bpf "    \"tools\": {";
      List.iteri
        (fun i (p : Evalkit.Incremental.tool_point) ->
          bpf
            "%s\n      \"%s\": {\"cold_s\": %.6f, \"warm_s\": %.6f, \
             \"warm_replays\": %d, \"reused_from_2012\": %d}"
            (if i = 0 then "" else ",")
            p.Evalkit.Incremental.ip_tool p.Evalkit.Incremental.ip_cold_s
            p.Evalkit.Incremental.ip_warm_s p.Evalkit.Incremental.ip_warm_hits
            p.Evalkit.Incremental.ip_reused)
        r.Evalkit.Incremental.ir_points;
      bpf "\n    }\n  },\n");
  (match e14 with
  | None -> bpf "  \"e14\": null,\n"
  | Some (r : Evalkit.Serve_bench.report) ->
      let pass key (p : Evalkit.Serve_bench.pass) last =
        bpf
          "    \"%s\": {\"wall_s\": %.6f, \"rps\": %.3f, \"p50_ms\": %.3f, \
           \"p99_ms\": %.3f}%s\n"
          key p.Evalkit.Serve_bench.sp_wall_s p.Evalkit.Serve_bench.sp_rps
          p.Evalkit.Serve_bench.sp_p50_ms p.Evalkit.Serve_bench.sp_p99_ms
          (if last then "" else ",")
      in
      bpf "  \"e14\": {\n    \"protocol\": \"%s\",\n" Serve.Protocol.version;
      bpf "    \"requests\": %d,\n    \"clients\": %d,\n    \"jobs\": %d,\n"
        r.Evalkit.Serve_bench.sb_requests r.Evalkit.Serve_bench.sb_clients
        r.Evalkit.Serve_bench.sb_jobs;
      pass "cold" r.Evalkit.Serve_bench.sb_cold false;
      pass "warm" r.Evalkit.Serve_bench.sb_warm true;
      bpf "  },\n");
  (match e15 with
  | None -> bpf "  \"e15\": null,\n"
  | Some (r : Evalkit.Chaos.report) ->
      bpf "  \"e15\": {\n";
      bpf "    \"seed\": %d,\n    \"rounds\": %d,\n    \"jobs\": %d,\n"
        r.Evalkit.Chaos.ch_seed r.Evalkit.Chaos.ch_rounds
        r.Evalkit.Chaos.ch_jobs;
      bpf "    \"requests\": %d,\n    \"crashes\": %d,\n"
        r.Evalkit.Chaos.ch_requests r.Evalkit.Chaos.ch_crashes;
      bpf "    \"unterminated\": %d,\n    \"identity_ok\": %b,\n"
        r.Evalkit.Chaos.ch_unterminated r.Evalkit.Chaos.ch_identity_ok;
      bpf "    \"overshoot_p99_ms\": %.3f,\n    \"tolerance_ms\": %.1f,\n"
        r.Evalkit.Chaos.ch_overshoot_p99_ms r.Evalkit.Chaos.ch_tolerance_ms;
      bpf "    \"scenarios\": {";
      List.iteri
        (fun i (row : Evalkit.Chaos.row) ->
          bpf
            "%s\n      \"%s\": {\"report\": %d, \"deadline\": %d, \
             \"overloaded\": %d, \"transport\": %d, \"other\": %d}"
            (if i = 0 then "" else ",")
            row.Evalkit.Chaos.cr_scenario row.Evalkit.Chaos.cr_report
            row.Evalkit.Chaos.cr_deadline row.Evalkit.Chaos.cr_overloaded
            row.Evalkit.Chaos.cr_transport row.Evalkit.Chaos.cr_other)
        r.Evalkit.Chaos.ch_rows;
      bpf "\n    }\n  },\n");
  (match e17 with
  | None -> bpf "  \"e17\": null\n"
  | Some (r : Evalkit.Editstorm.report) ->
      bpf "  \"e17\": {\n";
      bpf "    \"seed\": %d,\n    \"plugin\": \"%s\",\n" r.Evalkit.Editstorm.es_seed
        (String.escaped r.Evalkit.Editstorm.es_plugin);
      bpf "    \"files\": %d,\n    \"projects\": %d,\n" r.Evalkit.Editstorm.es_files
        r.Evalkit.Editstorm.es_projects;
      bpf "    \"edits\": %d,\n    \"violations\": %d,\n"
        r.Evalkit.Editstorm.es_edits r.Evalkit.Editstorm.es_violations;
      bpf
        "    \"single_def\": {\"full_p50_ms\": %.3f, \"inc_p50_ms\": %.3f, \
         \"speedup\": %.3f},\n"
        r.Evalkit.Editstorm.es_single_full_p50_ms
        r.Evalkit.Editstorm.es_single_inc_p50_ms
        r.Evalkit.Editstorm.es_single_speedup;
      bpf
        "    \"counters\": {\"region_reparse\": %d, \"region_fallback\": %d, \
         \"ckpt_resume\": %d, \"resync_tokens\": %d, \"dag_invalidated\": \
         %d, \"dag_retained\": %d}\n  }\n"
        r.Evalkit.Editstorm.es_reparse r.Evalkit.Editstorm.es_fallback
        r.Evalkit.Editstorm.es_resume r.Evalkit.Editstorm.es_resync_tokens
        r.Evalkit.Editstorm.es_dag_invalidated
        r.Evalkit.Editstorm.es_dag_retained);
  bpf "}\n";
  Obs.write_file path (Buffer.contents b);
  Format.eprintf "bench results written to %s@." path

let () =
  Format.printf "phpSAFE reproduction — full evaluation + benchmarks@.";
  Evalkit.Tables.full_report ~with_ablation:true Format.std_formatter ~ev2012
    ~ev2014;
  Format.printf
    "@.== TABLE III (paper protocol): wall time, average of %d runs ==@."
    timed_runs;
  let table3 =
    List.map
      (fun (tool : Secflow.Tool.t) ->
        let t12 = detection_time tool corpus12 in
        let t14 = detection_time tool corpus14 in
        Format.printf "%-8s  V.2012: %6.2f s   V.2014: %6.2f s@."
          tool.Secflow.Tool.name t12 t14;
        (tool.Secflow.Tool.name, t12, t14))
      tools
  in
  let seq_par = sequential_vs_parallel () in
  Format.printf "@.== scheduler / parse-cache instrumentation ==@.";
  Format.printf "-- version 2012 --@.%a" Sched.pp_stats stats2012;
  Format.printf "-- version 2014 --@.%a" Sched.pp_stats stats2014;
  (* E10: scaling study *)
  Evalkit.Scaling.print Format.std_formatter
    (Evalkit.Scaling.measure Corpus.Plan.V2012);
  (* E11: context-sensitivity precision delta *)
  Evalkit.Context_delta.print Format.std_formatter
    (Evalkit.Context_delta.run ());
  (* E13: flow-sensitivity precision delta *)
  let e13 = Evalkit.Flow_delta.run () in
  Evalkit.Flow_delta.print Format.std_formatter e13;
  (* E16: per-class precision/recall of the new vulnerability classes *)
  let e16 = Evalkit.Class_delta.run () in
  Evalkit.Class_delta.print Format.std_formatter e16;
  (* E12: incremental re-analysis against the persistent cache (runs in its
     own temporary cache directories; skipped only under --no-cache) *)
  let e12 =
    if no_cache then None
    else begin
      let r = Evalkit.Incremental.measure ~corpus12 ~corpus14 () in
      Evalkit.Incremental.print Format.std_formatter r;
      Some r
    end
  in
  (* E14: sustained-throughput serving over the phpsafe-serve/1 protocol
     (its own temporary cache and socket dirs; skipped under --no-cache) *)
  let e14 =
    if no_cache then None
    else begin
      let r = Evalkit.Serve_bench.measure ~corpus:corpus12 () in
      Evalkit.Serve_bench.print Format.std_formatter r;
      Some r
    end
  in
  (* E15: service-layer chaos against live daemons (its own temporary cache
     and socket dirs; skipped under --no-cache like the other serve runs) *)
  let e15 =
    if no_cache then None
    else begin
      let r = Evalkit.Chaos.run ~jobs:(Sched.size pool) () in
      Evalkit.Chaos.print Format.std_formatter r;
      Some r
    end
  in
  (* E17: sub-file incremental re-analysis under an edit storm (its own
     temporary store directory; skipped under --no-cache) *)
  let e17 =
    if no_cache then None
    else begin
      let r = Evalkit.Editstorm.measure ~corpus:corpus12 () in
      Evalkit.Editstorm.print Format.std_formatter r;
      Some r
    end
  in
  Option.iter
    (fun path ->
      write_json path ~table3 ~seq_par ~e13 ~e16 ~e12 ~e14 ~e15 ~e17)
    json_out;
  if Phplang.Store.enabled () then
    Format.eprintf "%a" Phplang.Store.pp_counters ();
  let tests =
    table1_test :: figure2_test :: table2_test :: inertia_test :: corpus_test
    :: table3_tests
    |> List.concat_map Test.elements
  in
  let results = benchmark tests in
  print_bench_results results;
  if Obs.enabled () then begin
    let snap = Obs.snapshot () in
    (match trace_out with
    | Some path ->
        Obs.write_file path (Obs.trace_json snap);
        Format.eprintf "trace written to %s (open in https://ui.perfetto.dev)@."
          path
    | None -> ());
    (match metrics_out with
    | Some path ->
        Obs.write_file path (Obs.metrics_json snap);
        Format.eprintf "metrics written to %s@." path
    | None -> ());
    Format.eprintf "%a" Obs.pp_summary snap
  end;
  Format.printf "@.done.@."
