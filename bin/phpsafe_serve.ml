(** phpsafe_serve — the analysis-as-a-service daemon and its client.

    [phpsafe_serve serve] runs the daemon (warm caches, batching, admission
    control; see [Serve.Daemon]).  [scan], [status], [metrics] and
    [shutdown] are the matching socket client: one [phpsafe-serve/1] frame
    out, one reply in.  A [scan]'s printed report and exit code mirror
    [phpsafe_cli --format json] byte for byte. *)

module Json = Secflow.Json

let default_socket = "/tmp/phpsafe-serve.sock"

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | None -> failwith ("--tcp expects HOST:PORT, got: " ^ spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Serve.Daemon.Tcp (host, p)
      | _ -> failwith ("--tcp expects HOST:PORT, got: " ^ spec))

let listen_of socket tcp =
  match tcp with
  | Some spec -> parse_tcp spec
  | None -> Serve.Daemon.Unix_sock socket

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

(* Transport failures come back as [Error msg] rather than exiting so the
   retry layer can decide; the simple ops still exit 3 at their callers. *)
let roundtrip_result listen payload =
  let fd, addr =
    match listen with
    | Serve.Daemon.Unix_sock path ->
        ( Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0,
          Unix.ADDR_UNIX path )
    | Serve.Daemon.Tcp (host, port) ->
        ( Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET ((Unix.gethostbyname host).Unix.h_addr_list.(0), port)
        )
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd addr with
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "cannot connect: %s" (Unix.error_message err))
      | () -> (
          match
            Serve.Protocol.write_frame fd payload;
            Serve.Protocol.read_frame fd
          with
          | Serve.Protocol.Frame reply -> Ok reply
          | Serve.Protocol.Eof -> Error "server closed the connection"
          | Serve.Protocol.Timed_out -> Error "server stopped responding"
          | Serve.Protocol.Oversized n ->
              Error (Printf.sprintf "oversized reply (%d bytes)" n)
          | exception Serve.Protocol.Closed ->
              Error "server closed the connection"
          | exception Unix.Unix_error (err, _, _) ->
              Error (Unix.error_message err)))

let roundtrip listen payload =
  match roundtrip_result listen payload with
  | Ok reply -> reply
  | Error msg ->
      prerr_endline ("phpsafe_serve: " ^ msg);
      exit 3

(* A delivered reply is only retried when the server explicitly said "try
   again later" — [overloaded] or [shutting_down].  Anything else (a
   report, a bad_request, a deadline_exceeded) is an answer, and answers
   are never re-asked. *)
let retryable_code reply =
  match Json.parse reply with
  | Error _ -> None
  | Ok json -> (
      match Option.bind (Json.member "ok" json) Json.to_bool_opt with
      | Some false -> (
          match
            Option.bind (Json.member "error" json) (fun e ->
                Option.bind (Json.member "code" e) Json.to_string_opt)
          with
          | Some (("overloaded" | "shutting_down") as code) -> Some code
          | _ -> None)
      | _ -> None)

(* Exponential backoff with decorrelated jitter (sleep =
   min(cap, uniform(base, 3 × previous sleep))): retries spread out
   instead of synchronizing into waves when many clients hit the same
   overloaded daemon. *)
let retry_roundtrip ~retries ~retry_max_delay listen payload =
  let base = 0.05 in
  let rec go attempt prev_sleep =
    let result = roundtrip_result listen payload in
    let retry reason =
      let hi = Float.max (base +. 1e-9) (prev_sleep *. 3.) in
      let sleep =
        Float.min retry_max_delay (base +. Random.float (hi -. base))
      in
      Printf.eprintf "phpsafe_serve: %s; retrying in %.2fs (%d/%d)\n%!"
        reason sleep (attempt + 1) retries;
      Unix.sleepf sleep;
      go (attempt + 1) sleep
    in
    if attempt >= retries then result
    else
      match result with
      | Error msg -> retry msg
      | Ok reply -> (
          match retryable_code reply with
          | Some code -> retry (Printf.sprintf "server replied %s" code)
          | None -> result)
  in
  if retries > 0 then Random.self_init ();
  go 0 base

(* Mirror phpsafe_cli's exit-code contract from the report document:
   2 = some file failed, 1 = findings present, 0 = clean. *)
let exit_code_of_report raw =
  match Json.parse raw with
  | Error _ -> 0
  | Ok doc ->
      let failed =
        Option.bind (Json.member "summary" doc) (Json.member "failedFiles")
        |> fun o -> Option.bind o Json.to_int_opt |> Option.value ~default:0
      in
      let findings =
        Option.bind (Json.member "findings" doc) Json.to_list_opt
        |> Option.value ~default:[]
      in
      if failed > 0 then 2 else if findings <> [] then 1 else 0

let run_scan socket tcp target tool_name kinds contexts flow second_order
    tenant id budget deadline retries retry_max_delay =
  let listen = listen_of socket tcp in
  let kind =
    match Serve.Scan.kind_of_string kinds with
    | Ok k -> k
    | Error msg -> failwith msg
  in
  let req =
    { Serve.Protocol.sr_id = id;
      sr_tenant = tenant;
      sr_project = Phplang.Project.load target;
      sr_opts =
        { Serve.Scan.tool = tool_name; kind; contexts; flow; second_order };
      sr_budget = budget;
      sr_deadline_ms = deadline }
  in
  match
    retry_roundtrip ~retries:(max 0 retries)
      ~retry_max_delay:(Float.max 0.05 retry_max_delay)
      listen
      (Serve.Protocol.encode_scan_request req)
  with
  | Error msg ->
      prerr_endline ("phpsafe_serve: " ^ msg);
      3
  | Ok reply -> (
      match Serve.Protocol.scan_report_of_reply reply with
      | Ok report ->
          print_string report;
          print_newline ();
          exit_code_of_report report
      | Error msg ->
          prerr_endline ("phpsafe_serve: " ^ msg);
          3)

let run_simple op socket tcp id =
  let listen = listen_of socket tcp in
  let reply =
    roundtrip listen (Serve.Protocol.encode_simple_request ~op ?id ())
  in
  print_string reply;
  print_newline ();
  0

(* ------------------------------------------------------------------ *)
(* Server side                                                         *)
(* ------------------------------------------------------------------ *)

let run_serve socket tcp jobs max_queue max_inflight max_frame_bytes prune_age
    cache_dir no_cache io_timeout =
  if no_cache then Phplang.Store.set_root None
  else Option.iter (fun d -> Phplang.Store.set_root (Some d)) cache_dir;
  let cfg =
    { (Serve.Daemon.default_config (listen_of socket tcp)) with
      Serve.Daemon.jobs;
      max_queue;
      max_inflight;
      max_frame_bytes;
      prune_age_s = prune_age;
      io_timeout_s = (match io_timeout with Some s when s > 0. -> Some s | _ -> None) }
  in
  Serve.Daemon.run cfg;
  0

let run_fsck cache_dir =
  Option.iter (fun d -> Phplang.Store.set_root (Some d)) cache_dir;
  match Phplang.Store.root () with
  | None ->
      prerr_endline
        "phpsafe_serve: fsck needs --cache-dir DIR (or PHPSAFE_CACHE_DIR)";
      3
  | Some root ->
      let r = Phplang.Store.fsck () in
      Printf.printf "fsck %s: %d entries scanned, %d ok, %d quarantined\n"
        root r.Phplang.Store.fk_scanned r.Phplang.Store.fk_ok
        r.Phplang.Store.fk_quarantined;
      if r.Phplang.Store.fk_quarantined > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let socket =
  let doc = "Unix socket path of the daemon." in
  Arg.(
    value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

let tcp =
  let doc = "Use TCP at $(docv) instead of a Unix socket." in
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)

let id =
  let doc = "Request id, echoed verbatim in the reply." in
  Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)

let budget =
  let default = Secflow.Budget.default in
  let parse_depth =
    let doc = "Parser nesting-depth fuel for this request." in
    Arg.(
      value
      & opt int default.Secflow.Budget.parse_depth
      & info [ "budget-parse-depth" ] ~docv:"N" ~doc)
  in
  let fixpoint_passes =
    let doc = "Cap on Pixy dataflow fixpoint passes for this request." in
    Arg.(
      value
      & opt int default.Secflow.Budget.fixpoint_passes
      & info [ "budget-fixpoint-passes" ] ~docv:"N" ~doc)
  in
  let include_depth =
    let doc = "Include-closure chain-depth safety cap." in
    Arg.(
      value
      & opt int default.Secflow.Budget.include_depth
      & info [ "budget-include-depth" ] ~docv:"N" ~doc)
  in
  let include_files =
    let doc = "Include-closure size safety cap (files per closure)." in
    Arg.(
      value
      & opt int default.Secflow.Budget.include_files
      & info [ "budget-include-files" ] ~docv:"N" ~doc)
  in
  let mk parse_depth fixpoint_passes include_depth include_files =
    { Secflow.Budget.parse_depth; fixpoint_passes; include_depth;
      include_files }
  in
  Term.(
    const mk $ parse_depth $ fixpoint_passes $ include_depth $ include_files)

let serve_cmd =
  let doc = "run the analysis daemon until a shutdown request arrives" in
  let jobs =
    let doc = "Worker-pool size (default: Sched.default_size)." in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let max_queue =
    let doc =
      "Queued-scan cap; a scan arriving over it is shed with an
       $(b,overloaded) reply."
    in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let max_inflight =
    let doc = "Batch-size cap (default: 4 × jobs)." in
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let max_frame_bytes =
    let doc = "Per-frame size cap; oversized frames are refused." in
    Arg.(
      value
      & opt int Serve.Protocol.default_max_frame_bytes
      & info [ "max-frame-bytes" ] ~docv:"BYTES" ~doc)
  in
  let prune_age =
    let doc =
      "Prune store entries older than $(docv) seconds at batch boundaries,
       bounding the disk cache of a long-running daemon."
    in
    Arg.(
      value & opt (some float) None & info [ "prune-age" ] ~docv:"SECONDS" ~doc)
  in
  let cache_dir =
    let doc =
      "Persistent analysis cache directory (defaults to
       $(b,PHPSAFE_CACHE_DIR) when set)."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache =
    let doc = "Run without the persistent disk cache." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let io_timeout =
    let doc =
      "Per-syscall socket receive/send timeout in seconds; a peer silent
       (or not reading) for a whole interval loses its connection instead
       of pinning a handler thread.  0 disables."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "io-timeout" ] ~docv:"SECONDS" ~doc)
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ socket $ tcp $ jobs $ max_queue $ max_inflight
      $ max_frame_bytes $ prune_age $ cache_dir $ no_cache $ io_timeout)

let scan_cmd =
  let doc =
    "scan a PHP file or plugin directory through the daemon; prints the
     phpsafe-report/1 document (byte-identical to
     $(b,phpsafe_cli --format json)) and exits 0/1/2 like phpsafe_cli"
  in
  let target =
    let doc = "PHP file or plugin directory to analyze." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  let tool =
    let doc = "Analyzer to run: phpsafe (default), rips or pixy." in
    Arg.(value & opt string "phpsafe" & info [ "tool" ] ~docv:"TOOL" ~doc)
  in
  let kinds =
    let doc =
      "Vulnerability kinds to report: xss, sqli, cmdi, lfi, ssrf,
       so-sqli or all."
    in
    Arg.(value & opt string "all" & info [ "k"; "kind"; "kinds" ] ~docv:"KIND" ~doc)
  in
  let contexts =
    let doc = "Sink-context-sensitive sanitizer verification." in
    Arg.(value & flag & info [ "contexts" ] ~doc)
  in
  let flow =
    let doc = "Flow-sensitive body walks over a control-flow graph." in
    Arg.(value & flag & info [ "flow" ] ~doc)
  in
  let second_order =
    let doc =
      "Two-phase second-order SQLi analysis (kind $(b,so-sqli)); only
       meaningful with --tool phpsafe."
    in
    Arg.(value & flag & info [ "second-order" ] ~doc)
  in
  let tenant =
    let doc =
      "Cache-namespace label for this request ([A-Za-z0-9_.-]); tenants
       never share cache entries."
    in
    Arg.(value & opt (some string) None & info [ "tenant" ] ~docv:"NAME" ~doc)
  in
  let deadline =
    let doc =
      "End-to-end deadline for this request in milliseconds, measured from
       the daemon's admission (queue time counts).  A request past it is
       answered with a $(b,deadline_exceeded) error instead of a report."
    in
    Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let retries =
    let doc =
      "Retry transport failures and $(b,overloaded)/$(b,shutting_down)
       replies up to $(docv) times with exponential backoff and
       decorrelated jitter.  A delivered report or any other error reply
       is final and never retried."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let retry_max_delay =
    let doc = "Cap on the backoff sleep between retries, in seconds." in
    Arg.(
      value & opt float 2.0 & info [ "retry-max-delay" ] ~docv:"SECONDS" ~doc)
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"on a clean scan."
    :: Cmd.Exit.info 1 ~doc:"when findings remain after the $(b,--kind) filter."
    :: Cmd.Exit.info 2 ~doc:"when any file's analysis outcome is a failure."
    :: Cmd.Exit.info 3 ~doc:"on a transport failure or a server error reply."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "scan" ~doc ~exits)
    Term.(
      const run_scan $ socket $ tcp $ target $ tool $ kinds $ contexts $ flow
      $ second_order $ tenant $ id $ budget $ deadline $ retries
      $ retry_max_delay)

let simple_cmd name doc =
  let runner = run_simple name in
  Cmd.v (Cmd.info name ~doc) Term.(const runner $ socket $ tcp $ id)

let fsck_cmd =
  let doc =
    "verify every cache entry (frame header + payload digest) and move
     corrupt ones to $(b,<cache-dir>/quarantine) for inspection; exits 1
     when anything was quarantined"
  in
  let cache_dir =
    let doc =
      "Cache directory to verify (defaults to $(b,PHPSAFE_CACHE_DIR))."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run_fsck $ cache_dir)

let cmd =
  let doc = "phpSAFE analysis-as-a-service daemon and client" in
  let info = Cmd.info "phpsafe_serve" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ serve_cmd;
      scan_cmd;
      fsck_cmd;
      simple_cmd "status"
        "print the daemon's status reply (queue depth, served/shed totals,
         per-namespace store usage)";
      simple_cmd "metrics"
        "print the daemon's metrics reply (counters, gauges, latency
         histogram, per-namespace cache hit rates)";
      simple_cmd "shutdown"
        "ask the daemon to drain every queued and in-flight scan and exit" ]

let () = exit (Cmd.eval' cmd)
