(** Runs the full paper evaluation (both corpus versions, all three tools)
    and prints every table and figure of §V with the paper-reported values
    alongside.

    The (tool × plugin) analysis grid fans out across a domain pool; size
    it with [--jobs N] (or [-j N]), or the [PHPSAFE_JOBS] environment
    variable, defaulting to the machine's recommended domain count.  The
    tables are byte-identical whatever the pool size — only wall time
    changes.

    Observability: [--trace out.json] writes a Chrome trace-event file (one
    track per domain; open in Perfetto) and [--metrics out.json] a metrics
    JSON with per-tool × per-stage wall times and counters (parse-cache hit
    rate, summaries built, findings pre/post-dedup, ...).  Either flag also
    prints the human summary to stderr; stdout stays byte-identical with or
    without them.

    [--contexts] appends experiment E11: the precision delta of phpSAFE's
    sink-context-sensitive sanitization pass over the dedicated context
    suite.  [--flow] appends experiment E13: the precision delta of the
    flow-sensitive body walk over the dedicated flow suite.  [--classes]
    appends experiment E16: per-class precision/recall of the four new
    vulnerability classes (cmdi, lfi, ssrf, so-sqli) over the dedicated
    class suite.  Without the flags the output is unchanged. *)

let jobs_from_argv () =
  let rec scan = function
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> Some n
        | _ -> scan rest)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let path_opt_from_argv flag =
  let rec scan = function
    | f :: path :: _ when String.equal f flag -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let int_opt_from_argv flag =
  match path_opt_from_argv flag with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some n
      | _ ->
          Printf.eprintf "evaluate: ignoring invalid %s=%S\n%!" flag v;
          None)

(* Resource budgets (Secflow.Budget): parser nesting fuel, Pixy fixpoint
   pass cap, include-closure caps.  Exhaustion degrades the affected file
   to a Failed (Budget_exhausted _) row in the §V.E table. *)
let budget_from_argv () =
  let d = Secflow.Budget.default in
  let get flag default = Option.value (int_opt_from_argv flag) ~default in
  {
    Secflow.Budget.parse_depth =
      get "--budget-parse-depth" d.Secflow.Budget.parse_depth;
    fixpoint_passes =
      get "--budget-fixpoint-passes" d.Secflow.Budget.fixpoint_passes;
    include_depth = get "--budget-include-depth" d.Secflow.Budget.include_depth;
    include_files = get "--budget-include-files" d.Secflow.Budget.include_files;
  }

(* Persistent cache root: [--cache-dir DIR] overrides [PHPSAFE_CACHE_DIR];
   [--no-cache] disables the disk tier entirely.  The tables on stdout are
   byte-identical with or without a cache — only wall time and the cache
   counters on stderr change. *)
let cache_setup () =
  if Array.exists (String.equal "--no-cache") Sys.argv then
    Phplang.Store.set_root None
  else
    match path_opt_from_argv "--cache-dir" with
    | Some dir -> Phplang.Store.set_root (Some dir)
    | None -> ()

let () =
  Secflow.Budget.set (budget_from_argv ());
  cache_setup ();
  let trace_out = path_opt_from_argv "--trace" in
  let metrics_out = path_opt_from_argv "--metrics" in
  if trace_out <> None || metrics_out <> None then Obs.set_enabled true;
  let pool =
    match jobs_from_argv () with
    | Some size -> Sched.create ~size ()
    | None -> Sched.create ()
  in
  Obs.set_gauge "sched.pool_size" (float_of_int (Sched.size pool));
  let ev2012, st2012 = Evalkit.Runner.evaluate_with_stats ~pool Corpus.Plan.V2012 in
  let ev2014, st2014 = Evalkit.Runner.evaluate_with_stats ~pool Corpus.Plan.V2014 in
  Evalkit.Tables.full_report ~with_ablation:true Format.std_formatter ~ev2012
    ~ev2014;
  Format.printf "@.-- version 2012 --@.";
  Evalkit.Pattern_report.print Format.std_formatter
    (Evalkit.Pattern_report.compute ev2012);
  Format.printf "@.-- version 2014 --@.";
  Evalkit.Pattern_report.print Format.std_formatter
    (Evalkit.Pattern_report.compute ev2014);
  Format.printf "@.== scheduler / parse-cache instrumentation ==@.";
  Format.printf "-- version 2012 --@.%a" Sched.pp_stats st2012;
  Format.printf "-- version 2014 --@.%a" Sched.pp_stats st2014;
  (* E11 is opt-in so the default stdout stays byte-identical; the delta
     run itself is sequential, so its table does not depend on --jobs *)
  if Array.exists (String.equal "--contexts") Sys.argv then
    Evalkit.Context_delta.print Format.std_formatter
      (Evalkit.Context_delta.run ());
  (* E13 mirrors E11: opt-in, sequential, --jobs-independent *)
  if Array.exists (String.equal "--flow") Sys.argv then
    Evalkit.Flow_delta.print Format.std_formatter (Evalkit.Flow_delta.run ());
  (* E16: per-class precision/recall of the four new vulnerability classes
     (cmdi, lfi, ssrf, so-sqli); opt-in, sequential, --jobs-independent *)
  if Array.exists (String.equal "--classes") Sys.argv then
    Evalkit.Class_delta.print Format.std_formatter (Evalkit.Class_delta.run ());
  (* cache counters go to stderr: stdout must stay byte-identical whether
     the run was cold, warm or uncached *)
  if Phplang.Store.enabled () then
    Format.eprintf "%a" Phplang.Store.pp_counters ();
  if Obs.enabled () then begin
    let snap = Obs.snapshot () in
    (match trace_out with
    | Some path ->
        Obs.write_file path (Obs.trace_json snap);
        Format.eprintf "trace written to %s (open in https://ui.perfetto.dev)@." path
    | None -> ());
    (match metrics_out with
    | Some path ->
        Obs.write_file path (Obs.metrics_json snap);
        Format.eprintf "metrics written to %s@." path
    | None -> ());
    Format.eprintf "%a" Obs.pp_summary snap
  end
