(** phpSAFE command-line interface.

    Scans a PHP file or a directory tree (a plugin) for XSS and SQLi
    vulnerabilities and prints a text report with the data-flow trace of
    each finding — the CLI counterpart of the web interface described in
    paper §III. *)

let kind_filter kinds =
  match Serve.Scan.kind_of_string kinds with
  | Ok k -> k
  | Error msg -> failwith msg

(* --watch: poll the target, re-analyze incrementally on every change and
   print the finding delta.  Reports stay byte-identical to a cold scan of
   the same bytes; only the re-parse work shrinks to the damaged regions
   (see Serve.Watch).  Bounded runs (--watch-max-events) exist for smoke
   tests; interactive use runs until interrupted. *)
let watch_loop target opts ~poll_ms ~max_events =
  let session = Serve.Watch.create opts in
  let last = ref [] in
  let counter_deltas () =
    let now = Obs.Mirror.all () in
    let delta =
      List.filter_map
        (fun (k, v) ->
          let prev =
            Option.value ~default:0 (List.assoc_opt k !last)
          in
          if v > prev then Some (Printf.sprintf "%s+%d" k (v - prev))
          else None)
        now
    in
    last := now;
    delta
  in
  let remaining = ref 0 in
  let on_event (d : Serve.Watch.delta) =
    remaining := d.Serve.Watch.d_total;
    if d.Serve.Watch.d_initial then
      Format.printf "watch: initial scan: %d finding(s) (%.1f ms)@."
        d.Serve.Watch.d_total d.Serve.Watch.d_ms
    else begin
      Format.printf
        "watch: %d changed, %d deleted: +%d/-%d finding(s), %d total (%.1f \
         ms)@."
        (List.length d.Serve.Watch.d_changed)
        (List.length d.Serve.Watch.d_deleted)
        (List.length d.Serve.Watch.d_added)
        (List.length d.Serve.Watch.d_removed)
        d.Serve.Watch.d_total d.Serve.Watch.d_ms;
      List.iter
        (fun f -> Format.printf "  + %a@." Secflow.Report.pp_finding f)
        d.Serve.Watch.d_added;
      List.iter
        (fun f -> Format.printf "  - %a@." Secflow.Report.pp_finding f)
        d.Serve.Watch.d_removed
    end;
    (match counter_deltas () with
    | [] -> ()
    | ds -> Format.printf "  incremental: %s@." (String.concat " " ds));
    ignore (d.Serve.Watch.d_report : string)
  in
  Format.printf "watch: %s: polling every %d ms@." target poll_ms;
  Serve.Watch.loop session
    ~load:(fun () -> Phplang.Project.load target)
    ~poll_ms ?max_events ~on_event ();
  (* bounded runs gate like a plain scan: 1 when findings remain after the
     last delivered event, 0 on a clean final state *)
  if !remaining > 0 then 1 else 0

let run target kinds show_trace tool_name quiet format html_out json_out
    config_path show_stats trace_out metrics_out budget contexts flow
    second_order cache_dir no_cache watch watch_poll_ms watch_max_events =
  Secflow.Budget.set budget;
  (* persistent analysis cache: --cache-dir overrides PHPSAFE_CACHE_DIR,
     --no-cache disables both; findings are identical either way *)
  if no_cache then Phplang.Store.set_root None
  else Option.iter (fun d -> Phplang.Store.set_root (Some d)) cache_dir;
  if trace_out <> None || metrics_out <> None then Obs.set_enabled true;
  if watch then begin
    if config_path <> None then
      failwith "--watch does not support --config (use the built-in profiles)";
    let opts =
      { Serve.Scan.tool = tool_name; kind = kind_filter kinds; contexts;
        flow; second_order }
    in
    (match Serve.Scan.tool_of opts with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    exit (watch_loop target opts ~poll_ms:watch_poll_ms
            ~max_events:watch_max_events)
  end;
  let project = Phplang.Project.load target in
  if show_stats then
    Format.printf "project stats: %a@." Phpsafe.Stats.pp
      (Phpsafe.Stats.of_project project);
  let tool =
    match (String.lowercase_ascii tool_name, config_path) with
    | "phpsafe", Some path ->
        (* custom configuration profile, merged over generic PHP so the
           language builtins stay known (paper §III.A extensibility) *)
        let custom, parse_warnings = Phpsafe.Config_spec.load_with_warnings path in
        List.iter
          (fun w -> Format.eprintf "phpsafe: config warning: %s@." w)
          (parse_warnings @ Phpsafe.Config_spec.validate custom);
        let config = Phpsafe.Config.extend Phpsafe.Config.generic_php custom in
        let opts =
          { Phpsafe.default_options with
            Phpsafe.config;
            Phpsafe.infer_contexts = contexts;
            Phpsafe.flow_sensitive = flow }
        in
        { Secflow.Tool.name = "phpSAFE";
          analyze_project =
            (fun p ->
              if second_order then Phpsafe.analyze_project_so ~opts p
              else Phpsafe.analyze_project ~opts p) }
    | _, _ -> (
        (* the same construction the serving daemon uses, so a scan here and
           a scan there produce byte-identical reports *)
        match
          Serve.Scan.tool_of
            { Serve.Scan.tool = tool_name; kind = None; contexts; flow;
              second_order }
        with
        | Ok t -> t
        | Error msg -> failwith msg)
  in
  let result = tool.Secflow.Tool.analyze_project project in
  let wanted = kind_filter kinds in
  let findings =
    List.filter
      (fun (f : Secflow.Report.finding) ->
        match wanted with
        | None -> true
        | Some k -> Secflow.Vuln.equal_kind f.Secflow.Report.kind k)
      result.Secflow.Report.findings
  in
  (match format with
  | "json" ->
      (* the shared machine-readable encoding, byte-identical to the
         [report] document in a phpsafe_serve scan reply *)
      print_string
        (Secflow.Report.to_json ~tool:tool.Secflow.Tool.name
           { result with Secflow.Report.findings });
      print_newline ()
  | "text" ->
      if not quiet then begin
        Format.printf "%s: analyzed %d files of %s@." tool.Secflow.Tool.name
          (List.length result.Secflow.Report.outcomes)
          project.Phplang.Project.name;
        List.iter
          (fun (path, outcome) ->
            match outcome with
            | Secflow.Report.Analyzed -> ()
            | Secflow.Report.Failed reason ->
                let why =
                  match reason with
                  | Secflow.Report.Out_of_memory ->
                      "include closure exceeds memory budget"
                  | Secflow.Report.Unsupported_syntax what ->
                      "unsupported: " ^ what
                  | Secflow.Report.Parse_failure msg -> "parse failure: " ^ msg
                  | Secflow.Report.Crashed msg -> "analysis crashed: " ^ msg
                  | Secflow.Report.Budget_exhausted msg ->
                      "resource budget exhausted: " ^ msg
                in
                Format.printf "  ! could not analyze %s (%s)@." path why)
          result.Secflow.Report.outcomes
      end;
      List.iter
        (fun f ->
          Format.printf "%a@." Secflow.Report.pp_finding f;
          if show_trace then Format.printf "%a" Secflow.Report.pp_trace f)
        findings;
      Format.printf "%d finding(s)@." (List.length findings)
  | other -> failwith ("unknown output format: " ^ other));
  let write_file path contents =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  in
  (match json_out with
  | Some path ->
      write_file path
        (Phpsafe.Report_json.render ~tool:tool.Secflow.Tool.name
           { result with Secflow.Report.findings });
      Format.printf "JSON report written to %s@." path
  | None -> ());
  (match html_out with
  | Some path ->
      let html =
        Phpsafe.Report_html.render
          ~title:(Printf.sprintf "%s — %s" tool.Secflow.Tool.name target)
          { result with Secflow.Report.findings }
      in
      write_file path html;
      Format.printf "HTML report written to %s@." path
  | None -> ());
  if Obs.enabled () then begin
    let snap = Obs.snapshot () in
    (match trace_out with
    | Some path ->
        Obs.write_file path (Obs.trace_json snap);
        Format.eprintf "trace written to %s (open in https://ui.perfetto.dev)@."
          path
    | None -> ());
    (match metrics_out with
    | Some path ->
        Obs.write_file path (Obs.metrics_json snap);
        Format.eprintf "metrics written to %s@." path
    | None -> ())
  end;
  if Phplang.Store.enabled () then
    Format.eprintf "%a" Phplang.Store.pp_counters ();
  (* CI-friendly exit status: 2 = some file could not be analyzed,
     1 = findings remain after the --kind filter, 0 = clean scan *)
  let any_failed =
    List.exists
      (fun (_, outcome) ->
        match outcome with
        | Secflow.Report.Failed _ -> true
        | Secflow.Report.Analyzed -> false)
      result.Secflow.Report.outcomes
  in
  if any_failed then 2 else if findings <> [] then 1 else 0

open Cmdliner

let target =
  let doc = "PHP file or plugin directory to analyze." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let kinds =
  let doc =
    "Vulnerability kinds to report: $(b,xss), $(b,sqli), $(b,cmdi)
     (command injection), $(b,lfi) (path traversal / local file
     inclusion), $(b,ssrf), $(b,so-sqli) (second-order SQLi; see
     $(b,--second-order)) or $(b,all)."
  in
  Arg.(value & opt string "all" & info [ "k"; "kind"; "kinds" ] ~docv:"KIND" ~doc)

let trace =
  let doc = "Print the tainted data-flow trace of each finding." in
  Arg.(value & flag & info [ "t"; "flow-trace" ] ~doc)

let trace_out =
  let doc =
    "Write a Chrome trace-event JSON of the analysis (per-stage spans, one
     track per domain) to $(docv); open it in https://ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write machine-readable metrics JSON (stage wall times, parse-cache
     hit rate, summaries built, findings pre/post-dedup) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let tool =
  let doc = "Analyzer to run: phpsafe (default), rips or pixy." in
  Arg.(value & opt string "phpsafe" & info [ "tool" ] ~docv:"TOOL" ~doc)

let quiet =
  let doc = "Only print findings." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let format =
  let doc =
    "Report format on stdout: $(b,text) (default) or $(b,json) — the
     machine-readable phpsafe-report/1 document, byte-identical to the
     report in a $(b,phpsafe_serve) scan reply for the same inputs."
  in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FORMAT" ~doc)

let html_out =
  let doc = "Also write an HTML review page (the paper's web output) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "html" ] ~docv:"FILE" ~doc)

let json_out =
  let doc = "Also write a machine-readable JSON report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let show_stats =
  let doc = "Print project statistics (files, tokens, functions, sinks, ...)." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let contexts =
  let doc =
    "Infer the output context of each sink occurrence (HTML body, quoted or
     unquoted attribute, URL, script string; quoted/numeric/identifier SQL
     position) and accept only sanitizers adequate for it; only meaningful
     with --tool phpsafe."
  in
  Arg.(value & flag & info [ "contexts" ] ~doc)

let flow =
  let doc =
    "Run body walks flow-sensitively over a control-flow graph: sanitization
     applied on one branch of a conditional no longer suppresses findings on
     the unsanitized branch, and loops re-generate taint assigned after a
     sink; only meaningful with --tool phpsafe."
  in
  Arg.(value & flag & info [ "flow" ] ~doc)

let second_order =
  let doc =
    "Run the two-phase second-order SQLi analysis: a first pass records
     the keys under which SQL-tainted data is written to persistent
     storage, then a second pass re-analyzes with matching reads treated
     as attacker-controlled sources (kind $(b,so-sqli)); only meaningful
     with --tool phpsafe."
  in
  Arg.(value & flag & info [ "second-order" ] ~doc)

let cache_dir =
  let doc =
    "Keep a persistent content-addressed analysis cache (parse artifacts,
     function summaries, per-file results) under $(docv); reused across
     runs, shared between processes.  Defaults to $(b,PHPSAFE_CACHE_DIR)
     when set.  Findings are byte-identical with or without it."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache =
  let doc = "Ignore $(b,PHPSAFE_CACHE_DIR) and run without the disk cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let watch =
  let doc =
    "Keep running: poll $(b,TARGET) for changes and re-analyze
     incrementally on every edit (checkpointed re-lexing + region
     re-parse), printing the finding delta of each change.  Reports stay
     byte-identical to a fresh scan of the same bytes."
  in
  Arg.(value & flag & info [ "w"; "watch" ] ~doc)

let watch_poll_ms =
  let doc = "Polling interval for $(b,--watch), in milliseconds." in
  Arg.(value & opt int 500 & info [ "watch-poll-ms" ] ~docv:"MS" ~doc)

let watch_max_events =
  let doc =
    "Exit after $(docv) watch events (the initial scan counts as one),
     with status 1 when findings remain and 0 when the last scan was
     clean; for scripted/smoke use.  Unbounded when omitted."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "watch-max-events" ] ~docv:"N" ~doc)

let config_path =
  let doc =
    "Extend the phpSAFE configuration with a spec file (see      Phpsafe.Config_spec); only meaningful with --tool phpsafe."
  in
  Arg.(value & opt (some string) None & info [ "config" ] ~docv:"FILE" ~doc)

(* Resource budgets (Secflow.Budget): every exhaustion degrades the file to
   a Failed (Budget_exhausted _) outcome instead of crashing or hanging. *)
let budget =
  let default = Secflow.Budget.default in
  let parse_depth =
    let doc =
      "Parser nesting-depth fuel: expressions/statements nested deeper than
       $(docv) levels fail the file with a budget-exhausted outcome."
    in
    Arg.(
      value
      & opt int default.Secflow.Budget.parse_depth
      & info [ "budget-parse-depth" ] ~docv:"N" ~doc)
  in
  let fixpoint_passes =
    let doc =
      "Cap on Pixy dataflow fixpoint passes; hitting it keeps the (over-
       approximate) findings but reports the file as budget-exhausted."
    in
    Arg.(
      value
      & opt int default.Secflow.Budget.fixpoint_passes
      & info [ "budget-fixpoint-passes" ] ~docv:"N" ~doc)
  in
  let include_depth =
    let doc = "Include-closure chain-depth safety cap." in
    Arg.(
      value
      & opt int default.Secflow.Budget.include_depth
      & info [ "budget-include-depth" ] ~docv:"N" ~doc)
  in
  let include_files =
    let doc = "Include-closure size safety cap (files per closure)." in
    Arg.(
      value
      & opt int default.Secflow.Budget.include_files
      & info [ "budget-include-files" ] ~docv:"N" ~doc)
  in
  let mk parse_depth fixpoint_passes include_depth include_files =
    { Secflow.Budget.parse_depth; fixpoint_passes; include_depth;
      include_files }
  in
  Term.(const mk $ parse_depth $ fixpoint_passes $ include_depth $ include_files)

let cmd =
  let doc =
    "static vulnerability analysis (XSS, SQLi, command injection, path
     traversal/LFI, SSRF, second-order SQLi) for PHP plugins (phpSAFE
     reproduction)"
  in
  let exits =
    Cmd.Exit.info 0 ~doc:"on a clean scan (no findings, every file analyzed)."
    :: Cmd.Exit.info 1 ~doc:"when findings remain after the $(b,--kind) filter."
    :: Cmd.Exit.info 2 ~doc:"when any file's analysis outcome is a failure."
    :: Cmd.Exit.defaults
  in
  let info = Cmd.info "phpsafe" ~version:"1.0.0" ~doc ~exits in
  Cmd.v info
    Term.(
      const run $ target $ kinds $ trace $ tool $ quiet $ format $ html_out
      $ json_out $ config_path $ show_stats $ trace_out $ metrics_out $ budget
      $ contexts $ flow $ second_order $ cache_dir $ no_cache $ watch
      $ watch_poll_ms $ watch_max_events)

let () = exit (Cmd.eval' cmd)
