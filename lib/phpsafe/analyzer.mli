(** phpSAFE analysis stage (paper §III.C): inter-procedural, summary-based,
    OOP-aware taint tracking from sources to sinks over whole plugin
    projects. *)

type budget = {
  max_include_depth : int;
  max_closure_loc : int;
}

val default_budget : budget
(** Mirrors the paper's observed limits: phpSAFE "was unable to analyze one
    file [2012] and three files [2014]" whose include chains "required a lot
    of memory" (§V.E). *)

type so_mode =
  | So_off  (** single-phase run: no persistent-storage modeling *)
  | So_record
      (** phase 1 of {!analyze_project_so}: record the DB-write keys
          reached by SQL-tainted data *)
  | So_replay of string list
      (** phase 2: DB reads matching a recorded write key return
          [Second_order_sqli]-tainted data *)

type options = {
  config : Config.t;
  budget : budget option;
  analyze_uncalled : bool;
      (** analyze functions never called from plugin code (§III.C) *)
  resolve_includes : bool;
      (** inline included files; disabling also disables the budget *)
  respect_guards : bool;
      (** future-work extension: [if (!is_numeric($x)) exit;] validates
          [$x]; off by default — the published tool is path-insensitive *)
  infer_contexts : bool;
      (** future-work extension ([--contexts]): infer the output context of
          each sink occurrence and accept only sanitizers adequate for it;
          off by default — the published tool is context-insensitive *)
  flow_sensitive : bool;
      (** [--flow] extension: body walks run over the shared {!Dataflow.Cfg}
          with a fixpoint, killing branch-local sanitization at joins and
          re-generating taint around loop back-edges; off by default — the
          published tool is flow-insensitive over conditionals and loops *)
  so_mode : so_mode;
      (** second-order SQLi phase; callers normally leave this [So_off] and
          use {!analyze_project_so} instead of setting it directly *)
  restrict_kinds : Secflow.Vuln.kind list option;
      (** [--kinds] filter: when set, only findings of these kinds are
          reported; [None] reports every kind *)
}

val default_options : options
(** WordPress profile, paper budget, uncalled analysis and include
    resolution on, guard and context extensions off. *)

val guard_functions : string list
(** Validation functions recognised under [respect_guards]. *)

val set_dag_tracking : bool -> unit
(** Enable summary-DAG invalidation bookkeeping (off initially).  When on
    and a {!Phplang.Store} root is configured, each run persists a
    per-definition structural-digest table per analyzable file (store
    namespace ["defdigest"]) and diffs it against the previous run's: a
    definition whose body changed — plus every transitive caller over the
    call graph — counts as [summary.dag.invalidated], the rest as
    [summary.dag.retained] (both {!Obs.Mirror} counters).  The invalidated
    set is exactly the set whose content-addressed summary keys changed,
    so the counters measure how much summary reuse an edit preserved.
    Used by watch mode, the daemon and E17; plain batch runs leave it off
    and skip the per-definition scans. *)

val analyze_project :
  ?opts:options -> Phplang.Project.t -> Secflow.Report.result
(** Run all four stages (§III) over a plugin project: parse every file,
    check the include budget, build the function/class registry, execute
    each file as an entry point, then analyze uncalled functions.  Findings
    are de-duplicated per (kind, file, line). *)

val analyze_project_so :
  ?opts:options -> Phplang.Project.t -> Secflow.Report.result
(** Two-phase second-order SQL-injection analysis: an {!analyze_project}
    run in [So_record] mode collects the DB-write keys reached by
    SQL-tainted data; when any exist, a second run in [So_replay] mode
    treats matching DB reads as tainted sources.  With no tainted writes
    this degenerates to (exactly) the single-phase result. *)
