(** phpSAFE analysis stage (paper §III.C): follows the flow of tainted
    variables from the moment they enter the plugin until they reach a
    sensitive output, across assignments, expressions, function and method
    calls, returns, conditionals and loops.

    The walk is inter-procedural and summary-based: each user-defined
    function or method is analyzed once, with its formal parameters bound to
    symbolic taint; subsequent calls instantiate the recorded summary
    (§III.C "Call of a plugin user-defined function").  OOP is handled by
    resolving full property/method names through object→class bindings
    (§III.E), and by the method entries in the configuration (the [$wpdb]
    family).  Functions never called from plugin code are analyzed as entry
    points at the end — "to reach 100% code coverage, all the functions
    should be analyzed, even those that are never called". *)

open Secflow
module S = Set.Make (String)
module SMap = Map.Make (String)

type budget = {
  max_include_depth : int;
  max_closure_loc : int;
}

(** Mirrors the paper's observed limits: phpSAFE "was unable to analyze one
    file [2012] and three files [2014]" whose include chains "required a lot
    of memory". *)
let default_budget = { max_include_depth = 6; max_closure_loc = 40_000 }

(** Second-order analysis phase ({!analyze_project_so}).  Data-only so the
    whole [options] record stays digestible for the cache fingerprints —
    a replay with different keys is a different fingerprint. *)
type so_mode =
  | So_off      (** ordinary single-pass analysis; zero behavioural change *)
  | So_record   (** phase 1: record DB-write keys reached by tainted data *)
  | So_replay of string list
      (** phase 2: matching DB reads return second-order-tainted data;
          the sorted keys are the writes phase 1 recorded *)

type options = {
  config : Config.t;
  budget : budget option;
  analyze_uncalled : bool;
      (** stage 3b: analyze functions never called from plugin code
          (§III.C).  Disabling this is the "Pixy-style" ablation. *)
  resolve_includes : bool;
      (** inline [include]d files into the current analysis (§III.B).
          Disabling also disables the memory budget, since no include
          closure is built. *)
  respect_guards : bool;
      (** paper future-work extension: treat
          [if (!is_numeric($x)) exit;] termination guards as sanitizers for
          the guarded variable, removing the path-insensitivity false
          positives at the cost of path reasoning. Off by default — the
          published phpSAFE is path-insensitive. *)
  infer_contexts : bool;
      (** §VI future-work extension ([--contexts]): infer the output
          context of each sink occurrence from the literal text around the
          tainted value ({!Phplang.Strshape}) and accept only sanitizers
          adequate for that context ({!Config.adequate}).  Sanitizer calls
          then record their name instead of clearing the taint, and the
          verdict moves to the sink.  Off by default — the published
          phpSAFE is context-insensitive. *)
  flow_sensitive : bool;
      (** [--flow] extension: run every body walk (file entries, function
          and closure bodies) over the shared {!Dataflow.Cfg} with a
          fixpoint instead of one straight-line pass, so sanitization
          applied on one branch of an [if] no longer suppresses findings on
          the other branch, and loop back-edges re-generate taint assigned
          after a sink.  Off by default — the published phpSAFE processes
          conditionals and loops flow-insensitively (§III.C "Conditions and
          loops do not change the data flow"). *)
  so_mode : so_mode;
      (** second-order SQLi phase; [So_off] outside
          {!analyze_project_so}. *)
  restrict_kinds : Vuln.kind list option;
      (** [--kinds] restriction: report only these vulnerability classes
          ([None] = all).  Applied at the reporting gate, so the data-flow
          walk itself is unchanged. *)
}

let default_options =
  { config = Wordpress.default_config;
    budget = Some default_budget;
    analyze_uncalled = true;
    resolve_includes = true;
    respect_guards = false;
    infer_contexts = false;
    flow_sensitive = false;
    so_mode = So_off;
    restrict_kinds = None }

(** Numeric/type guard functions whose failure developers use to abort the
    request; recognised only under [respect_guards]. *)
let guard_functions = [ "is_numeric"; "ctype_digit"; "is_int"; "ctype_alnum" ]

type func_info = {
  fi_key : string;            (** lowercase "name" or "class::name" *)
  fi_func : Phplang.Ast.func;
  fi_class : string option;
  fi_file : string;
}

(* ------------------------------------------------------------------ *)
(* Incremental analysis cache (see DESIGN.md "Incremental analysis")  *)
(* ------------------------------------------------------------------ *)

(** Per-function metadata for the summary cache. *)
type fmeta = {
  fm_digest : string;  (** structural digest of the function body (incl. positions) *)
  fm_callees : string list;  (** lowercase names of called user functions *)
  fm_pure : bool;
      (** body free of anything that couples it to state outside its
          parameters and the configuration: no [global], no property or
          static-property access, no method calls / [new] / static calls,
          no closures, no includes.  Only pure functions (transitively)
          have cacheable summaries. *)
  mutable fm_key : string option option;
      (** memoized summary-cache key; [Some None] = not cacheable *)
}

(** Per-run state of the incremental cache, present only when a
    {!Phplang.Store} root is configured. *)
type icache = {
  ic_file_fp : string;  (** fingerprint for per-file result entries *)
  ic_sum_fp : string;   (** fingerprint for summary entries *)
  ic_meta : (string, fmeta) Hashtbl.t;  (** function key -> metadata *)
  ic_cacheable : (string, bool) Hashtbl.t;  (** transitive purity memo *)
}

type ctx = {
  opts : options;
  project : Phplang.Project.t;
  parsed : (string, Phplang.Ast.program) Hashtbl.t;
  funcs : (string, func_info) Hashtbl.t;
  classes : (string, Phplang.Ast.cls) Hashtbl.t;
  summaries : (string, Summary.t) Hashtbl.t;
  in_progress : (string, unit) Hashtbl.t;
  globals : (string, Taint.t) Hashtbl.t;
  mutable findings : Report.finding list;
  mutable reported : Report.Occurrence_set.t;
  mutable include_stack : S.t;  (** include cycle cut, per entry run *)
  mutable errors : int;
  mutable sum_log : (string * Summary.t) list;
      (** summaries in publication order — the incremental cache uses the
          log to attribute nested summary work to the call that caused it *)
  mutable so_writes : S.t;
      (** DB-write keys reached by SQL-tainted data ([So_record] phase);
          ["*"] stands for a write whose key is not statically known *)
  cache : icache option;
}

type frame = {
  mutable fr_ret : Taint.t;
  mutable fr_csinks : Summary.cond_sink list;
}

(** Per-walk context: global [ctx], current scope, current file and the
    summary frame when analyzing a function body. *)
type actx = {
  c : ctx;
  env : Env.t;
  frame : frame option;
  file : string;
}

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let kind_enabled (opts : options) k =
  match opts.restrict_kinds with
  | None -> true
  | Some ks -> List.exists (Vuln.equal_kind k) ks

(** The kinds one configured sink entry checks: a SQLi sink also checks the
    second-order kind when a second-order phase is active (the replayed
    taint still lands in a SQL statement — no extra sink entries needed). *)
let sink_check_kinds a kind =
  match kind with
  | Vuln.Sqli when a.c.opts.so_mode <> So_off ->
      [ Vuln.Sqli; Vuln.Second_order_sqli ]
  | k -> [ k ]

(** Pseudo-sink name prefix for DB-write conditional sinks: firing one
    records a second-order write key instead of reporting a finding. *)
let so_write_prefix = "dbwrite:"

let is_so_write_sink (cs : Summary.cond_sink) =
  String.length cs.Summary.cs_sink_name >= String.length so_write_prefix
  && String.equal
       (String.sub cs.Summary.cs_sink_name 0 (String.length so_write_prefix))
       so_write_prefix

let so_write_key (cs : Summary.cond_sink) =
  String.sub cs.Summary.cs_sink_name (String.length so_write_prefix)
    (String.length cs.Summary.cs_sink_name - String.length so_write_prefix)

let record_so_write (c : ctx) key = c.so_writes <- S.add key c.so_writes

let report a ?context ~kind ~pos ~sink_name ~var (taint : Taint.t) =
  if not (kind_enabled a.c.opts kind) then ()
  else
  let occ =
    { Report.o_key =
        { Report.k_kind = kind; k_file = pos.Phplang.Ast.file;
          k_line = pos.Phplang.Ast.line };
      o_sink = sink_name;
      o_var = var }
  in
  Obs.incr "phpsafe.findings.pre_dedup";
  if not (Report.Occurrence_set.mem occ a.c.reported) then begin
    Obs.incr "phpsafe.findings.post_dedup";
    a.c.reported <- Report.Occurrence_set.add occ a.c.reported;
    let source, source_pos = Taint.source_of taint in
    a.c.findings <-
      {
        Report.kind;
        sink_pos = pos;
        sink = sink_name;
        variable = var;
        source;
        source_pos;
        trace = List.rev taint.Taint.trace;
        context;
        sanitizers_applied = Taint.San_set.elements (Taint.applied kind taint);
        trace_truncated = taint.Taint.trace_truncated;
      }
      :: a.c.findings
  end

(** Check one value arriving at a sink.  Live taint is reported; symbolic
    parameter dependencies become conditional sinks of the enclosing
    summary. *)
let check_sink a ~kind ~pos ~sink_name ~var (taint : Taint.t) =
  List.iter
    (fun kind ->
      if Taint.is_tainted kind taint then
        report a ~kind ~pos ~sink_name ~var taint
      else
        match a.frame with
        | Some frame ->
            Taint.Int_set.iter
              (fun i ->
                frame.fr_csinks <-
                  { Summary.cs_param = i; cs_kind = kind;
                    cs_sink_name = sink_name; cs_pos = pos; cs_var = var;
                    cs_context = None; cs_sans = Taint.no_sans }
                  :: frame.fr_csinks)
              (Taint.deps kind taint)
        | None -> ())
    (sink_check_kinds a kind)

(* ------------------------------------------------------------------ *)
(* Incremental cache: replay and keys                                 *)
(* ------------------------------------------------------------------ *)

(** Re-emit a cached finding through the same de-duplication gate as
    {!report}, so replayed and live findings interleave exactly as in the
    cold run that recorded them. *)
let replay_finding (c : ctx) (f : Report.finding) =
  let occ = Report.occurrence_of_finding f in
  Obs.incr "phpsafe.findings.pre_dedup";
  if not (Report.Occurrence_set.mem occ c.reported) then begin
    Obs.incr "phpsafe.findings.post_dedup";
    c.reported <- Report.Occurrence_set.add occ c.reported;
    c.findings <- f :: c.findings
  end

(** Scan a function body for the summary cache: collect the names of
    called user functions and decide purity (see {!fmeta.fm_pure}). *)
let scan_func (fn : Phplang.Ast.func) : bool * string list =
  let module A = Phplang.Ast in
  let pure = ref true in
  let callees = ref S.empty in
  let impure () = pure := false in
  let rec expr (e : A.expr) =
    match e.A.e with
    | A.Call (g, args) ->
        callees := S.add (String.lowercase_ascii g) !callees;
        List.iter expr args
    | A.MethodCall (o, _, args) ->
        impure ();
        expr o;
        List.iter expr args
    | A.New (_, args) | A.StaticCall (_, _, args) ->
        impure ();
        List.iter expr args
    | A.Prop (x, _) ->
        impure ();
        expr x
    | A.StaticProp _ ->
        impure ()
    | A.Closure cl ->
        impure ();
        List.iter stmt cl.A.cl_body
    | A.IncludeE (_, arg) ->
        impure ();
        expr arg
    | A.Assign (l, r) | A.AssignRef (l, r) | A.OpAssign (_, l, r)
    | A.Bin (_, l, r) ->
        expr l;
        expr r
    | A.Un (_, x) | A.CastE (_, x) | A.EmptyE x | A.PrintE x -> expr x
    | A.Ternary (cnd, t, e2) ->
        expr cnd;
        Option.iter expr t;
        expr e2
    | A.ArrayGet (a, i) ->
        expr a;
        Option.iter expr i
    | A.ArrayLit items ->
        List.iter
          (fun (k, v) ->
            Option.iter expr k;
            expr v)
          items
    | A.Isset es -> List.iter expr es
    | A.Exit e -> Option.iter expr e
    | A.ListAssign (slots, rhs) ->
        List.iter (Option.iter expr) slots;
        expr rhs
    | A.Interp parts ->
        List.iter (function A.IExpr x -> expr x | A.ILit _ -> ()) parts
    | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Var _
    | A.ClassConst _ | A.Const _ ->
        ()
  and stmt (s : A.stmt) =
    match s.A.s with
    | A.Expr e | A.Throw e -> expr e
    | A.Echo es | A.Unset es -> List.iter expr es
    | A.Global _ -> impure ()
    | A.If (branches, els) ->
        List.iter
          (fun (c, b) ->
            expr c;
            List.iter stmt b)
          branches;
        Option.iter (List.iter stmt) els
    | A.While (c, b) ->
        expr c;
        List.iter stmt b
    | A.DoWhile (b, c) ->
        List.iter stmt b;
        expr c
    | A.For (i, c, u, b) ->
        List.iter expr i;
        List.iter expr c;
        List.iter expr u;
        List.iter stmt b
    | A.Foreach (subject, binding, b) ->
        expr subject;
        (match binding with
        | A.ForeachValue v -> expr v
        | A.ForeachKeyValue (k, v) ->
            expr k;
            expr v);
        List.iter stmt b
    | A.Switch (subject, cases) ->
        expr subject;
        List.iter
          (fun (c : A.case) ->
            Option.iter expr c.A.case_guard;
            List.iter stmt c.A.case_body)
          cases
    | A.Return e -> Option.iter expr e
    | A.StaticVar vars -> List.iter (fun (_, d) -> Option.iter expr d) vars
    | A.Block b -> List.iter stmt b
    | A.FuncDef f -> List.iter stmt f.A.f_body
    | A.ClassDef _ -> impure ()
    | A.TryCatch (b, catches) ->
        List.iter stmt b;
        List.iter (fun (c : A.catch) -> List.iter stmt c.A.catch_body) catches
    | A.InlineHtml _ | A.Nop | A.Break | A.Continue -> ()
  in
  List.iter stmt fn.Phplang.Ast.f_body;
  (!pure, S.elements !callees)

(** Function metadata, computed on first demand (warm runs that replay
    every file never pay for the body scans). *)
let meta ic (funcs : (string, func_info) Hashtbl.t) key : fmeta option =
  match Hashtbl.find_opt ic.ic_meta key with
  | Some m -> Some m
  | None -> (
      match Hashtbl.find_opt funcs key with
      | None -> None
      | Some fi ->
          let pure, callees = scan_func fi.fi_func in
          let m =
            {
              fm_digest = Phplang.Digest.structural fi.fi_func;
              fm_callees = callees;
              fm_pure = pure;
              fm_key = None;
            }
          in
          Hashtbl.replace ic.ic_meta key m;
          Some m)

(** Transitive purity: a summary is cacheable when its own body is pure
    and every user function it (transitively) calls is too.  Recursion is
    resolved coinductively — a cycle of pure bodies is cacheable. *)
let rec cacheable ic funcs key =
  match Hashtbl.find_opt ic.ic_cacheable key with
  | Some b -> b
  | None -> (
      match meta ic funcs key with
      | None -> true (* not a user function: behaviour fixed by the config *)
      | Some m ->
          if not m.fm_pure then begin
            Hashtbl.replace ic.ic_cacheable key false;
            false
          end
          else begin
            (* coinductive assumption for the cycle *)
            Hashtbl.replace ic.ic_cacheable key true;
            let ok = List.for_all (cacheable ic funcs) m.fm_callees in
            Hashtbl.replace ic.ic_cacheable key ok;
            ok
          end)

(** Summary-cache key of [key]: covers the configuration slice, the body
    digest and the body digests of every user function transitively
    reachable from it — editing a callee invalidates exactly the callers
    whose summaries could observe the edit.  [None] when not cacheable. *)
let summary_key ic funcs key : string option =
  match meta ic funcs key with
  | None -> None
  | Some m -> (
      match m.fm_key with
      | Some k -> k
      | None ->
          let k =
            if not (cacheable ic funcs key) then None
            else begin
              (* transitive dependency set over the registry call graph *)
              let seen = Hashtbl.create 8 in
              let rec walk k =
                if not (Hashtbl.mem seen k) then begin
                  Hashtbl.add seen k ();
                  match meta ic funcs k with
                  | None -> ()
                  | Some m -> List.iter walk m.fm_callees
                end
              in
              List.iter walk m.fm_callees;
              let deps =
                Hashtbl.fold
                  (fun k () acc ->
                    if String.equal k key then acc
                    else
                      match Hashtbl.find_opt ic.ic_meta k with
                      | Some dm -> (k ^ "=" ^ dm.fm_digest) :: acc
                      | None -> acc)
                  seen []
                |> List.sort String.compare
              in
              Some
                (Phplang.Digest.combine
                   (("summary:" ^ ic.ic_sum_fp) :: (key ^ "=" ^ m.fm_digest)
                   :: deps))
            end
          in
          m.fm_key <- Some k;
          k)

(* ------------------------------------------------------------------ *)
(* Summary-DAG invalidation bookkeeping                               *)
(* ------------------------------------------------------------------ *)

(* Per-definition digest tables, persisted per analyzable file in the
   Store (ns "defdigest"), keyed by the summary fingerprint + project
   name + path so a configuration change starts a fresh lineage.  Each tracked run diffs
   the previous tables against the current definitions: a definition whose
   structural digest changed — plus every transitive caller over the
   call graph — is exactly the set whose content-addressed summary keys
   (see [summary_key]) changed, so
   [summary.dag.invalidated]/[summary.dag.retained] measure precisely how
   much of the summary DAG an edit dirtied; sibling definitions in the
   same file stay retained, and their summaries (and recorded second-order
   writes) replay from cache.

   Each table carries its file's source digest, so a run only rescans and
   re-digests the bodies of files whose bytes changed — the tables (and
   call edges) of unchanged files replay verbatim.  A tracked warm run
   therefore costs one source digest per file, not one body scan per
   definition.  Tracking is opt-in (watch mode, the daemon, E17): plain
   batch runs skip even that. *)
let dag_tracking = Atomic.make false
let set_dag_tracking b = Atomic.set dag_tracking b

(* persisted per file: (source digest, [(def key, body digest, callees)]) *)
type def_table = string * (string * string * string list) list

let track_definition_dag (c : ctx) (ic : icache) (analyzable : string list) =
  Obs.span "phpsafe.dag" @@ fun () ->
  let by_file : (string, string list ref) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun key (fi : func_info) ->
      match Hashtbl.find_opt by_file fi.fi_file with
      | Some r -> r := key :: !r
      | None -> Hashtbl.replace by_file fi.fi_file (ref [ key ]))
    c.funcs;
  let changed = Hashtbl.create 16 in
  (* def key -> callees, merged over reused and rescanned tables *)
  let table : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun path ->
      let src_digest =
        match Phplang.Project.find c.project path with
        | Some f -> Phplang.Digest.hex f.Phplang.Project.source
        | None -> ""
      in
      let store_key =
        (* the project name disambiguates same-named files across the
           plugins sharing one store *)
        Phplang.Digest.combine
          [ "defdigest"; ic.ic_sum_fp; c.project.Phplang.Project.name; path ]
      in
      let prev : def_table option =
        Phplang.Store.get ~ns:"defdigest" ~key:store_key
      in
      match prev with
      | Some (d, defs) when String.equal d src_digest ->
          (* unchanged bytes: the table replays verbatim, no body scans *)
          total := !total + List.length defs;
          List.iter
            (fun (k, _, callees) -> Hashtbl.replace table k callees)
            defs
      | _ ->
          let keys =
            match Hashtbl.find_opt by_file path with
            | Some r -> List.sort String.compare !r
            | None -> []
          in
          let defs =
            List.filter_map
              (fun k ->
                match meta ic c.funcs k with
                | None -> None
                | Some m -> Some (k, m.fm_digest, m.fm_callees))
              keys
          in
          total := !total + List.length defs;
          let prev_defs =
            match prev with Some (_, pdefs) -> pdefs | None -> []
          in
          List.iter
            (fun (k, dg, callees) ->
              Hashtbl.replace table k callees;
              match
                List.find_opt (fun (k', _, _) -> String.equal k k') prev_defs
              with
              | Some (_, dg', _) when String.equal dg dg' -> ()
              | _ -> Hashtbl.replace changed k ())
            defs;
          Phplang.Store.put ~ns:"defdigest" ~key:store_key
            ((src_digest, defs) : def_table))
    analyzable;
  (* propagate over reverse call edges: a changed callee dirties every
     transitive caller's summary key *)
  let rdeps : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key callees ->
      List.iter
        (fun callee ->
          match Hashtbl.find_opt rdeps callee with
          | Some r -> r := key :: !r
          | None -> Hashtbl.replace rdeps callee (ref [ key ]))
        callees)
    table;
  let invalidated = Hashtbl.create 16 in
  let rec mark key =
    if not (Hashtbl.mem invalidated key) then begin
      Hashtbl.replace invalidated key ();
      match Hashtbl.find_opt rdeps key with
      | Some callers -> List.iter mark !callers
      | None -> ()
    end
  in
  Hashtbl.iter (fun k () -> mark k) changed;
  (* count invalidation only against definitions that exist now *)
  let inv =
    Hashtbl.fold
      (fun k () acc -> if Hashtbl.mem table k then acc + 1 else acc)
      invalidated 0
  in
  Obs.Mirror.add "summary.dag.invalidated" inv;
  Obs.Mirror.add "summary.dag.retained" (max 0 (!total - inv))

(** What the summary cache persists: the summary, the findings emitted
    while it was being built (a sink inside the body fed directly by a
    superglobal reports immediately), and every summary published during
    the analysis (nested callees), so a hit restores the exact state a
    cold analysis would have left. *)
type summary_entry = {
  se_summary : Summary.t;
  se_findings : Report.finding list;
  se_published : (string * Summary.t) list;
  se_so_writes : string list;
      (** DB-write keys recorded while the summary was built, replayed on a
          hit so the second-order record phase is cache-transparent *)
}

(** One uncalled-entry-point record inside a per-file entry. *)
type uncalled_rec = {
  ur_findings : Report.finding list;
  ur_crashed : string option;  (** exception text when the walk crashed *)
  ur_so_writes : string list;  (** DB-write keys recorded during the walk *)
}

(** What the per-file result cache persists for one analyzable file: the
    findings its entry walk emitted (post-dedup, in emission order), its
    outcome after the walk, and — for the uncalled stage — which functions
    defined in it ended up called (their effects are inside some file's
    findings already) vs. analyzed as uncalled entry points. *)
type file_entry = {
  ue_findings : Report.finding list;
  ue_outcome : Report.file_outcome;
  ue_called : string list;
  ue_uncalled : (string * uncalled_rec) list;
  ue_so_writes : string list;
      (** DB-write keys recorded during the entry walk (second-order
          record phase), merged back on replay *)
}

(** Cold-run bookkeeping for a file entry being recorded. *)
type pending = {
  mutable pd_findings : Report.finding list;
  mutable pd_outcome : Report.file_outcome;
  mutable pd_uncalled : (string * uncalled_rec) list;  (** reversed *)
  mutable pd_so_writes : string list;
}

(* ------------------------------------------------------------------ *)
(* Context inference (--contexts, §VI future work)                    *)
(* ------------------------------------------------------------------ *)

let ctx_on a = a.c.opts.infer_contexts

(** Map the string-shape classification of the constant text before a sink
    hole to the report-level context taxonomy. *)
let infer_context kind prefix =
  match kind with
  | Vuln.Xss -> (
      match Phplang.Strshape.classify_html prefix with
      | Phplang.Strshape.H_body -> Context.Html_body
      | Phplang.Strshape.H_attr_quoted -> Context.Html_attr_quoted
      | Phplang.Strshape.H_attr_unquoted -> Context.Html_attr_unquoted
      | Phplang.Strshape.H_url -> Context.Url
      | Phplang.Strshape.H_js_string -> Context.Js_string)
  | Vuln.Sqli | Vuln.Second_order_sqli -> (
      (* second-order taint still lands in a SQL statement, so the SQL
         context taxonomy applies unchanged *)
      match Phplang.Strshape.classify_sql prefix with
      | Phplang.Strshape.S_quoted -> Context.Sql_quoted_string
      | Phplang.Strshape.S_numeric -> Context.Sql_numeric
      | Phplang.Strshape.S_identifier -> Context.Sql_identifier)
  | Vuln.Cmdi -> Context.Shell_arg
  | Vuln.Path_traversal -> Context.File_path
  | Vuln.Ssrf -> Context.Url_remote

(** Did the value pass through a sanitizer adequate for context [ctxt]? *)
let adequately_sanitized config kind ctxt (taint : Taint.t) =
  Taint.San_set.exists
    (fun name -> Config.adequate config ~name ctxt)
    (Taint.applied kind taint)

(* ------------------------------------------------------------------ *)
(* Sink applicability and second-order DB endpoints                   *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(** Statically-known URL shape of a sink argument: true when its constant
    prefix starts with [http://] or [https://].  A bare dynamic argument
    counts as non-URL — [file_get_contents($_GET['f'])] reads a local
    path, not a remote one. *)
let arg_is_url (e : Phplang.Ast.expr) =
  match Phplang.Strshape.pieces e with
  | Phplang.Strshape.Lit s :: _ ->
      let s = String.lowercase_ascii s in
      has_prefix ~prefix:"http://" s || has_prefix ~prefix:"https://" s
  | _ -> false

(** Does sink entry [snk] apply to this particular call and argument?
    [snk_when_const] gates on a bare-constant argument
    ([curl_setopt(_, CURLOPT_URL, _)]); [snk_path_shape] separates the LFI
    and SSRF readings of dual-use sinks like [file_get_contents]. *)
let sink_applies (snk : Config.sink_entry) ~args ~(arg : Phplang.Ast.expr) =
  (match snk.Config.snk_when_const with
  | None -> true
  | Some (i, cname) -> (
      match List.nth_opt args i with
      | Some { Phplang.Ast.e = Phplang.Ast.Const c; _ } -> String.equal c cname
      | _ -> false))
  && (match snk.Config.snk_path_shape with
     | `Any -> true
     | `Url_prefix -> arg_is_url arg
     | `Non_url -> not (arg_is_url arg))

(** Static write/read key of a DB endpoint call: the string literal at the
    key argument, or ["*"] when not statically known. *)
let db_key (rw : Config.db_rw_entry) (args : Phplang.Ast.expr list) =
  if rw.Config.rw_key_arg < 0 then "*"
  else
    match List.nth_opt args rw.Config.rw_key_arg with
    | Some { Phplang.Ast.e = Phplang.Ast.Str s; _ } -> s
    | _ -> "*"

(** DB-write endpoint ([$wpdb->insert], [update_option], …): when the
    stored value is SQL-tainted, record the write key; when it merely
    depends on an enclosing parameter, register a [dbwrite:] pseudo
    conditional sink so the record still happens through summaries. *)
let check_db_write a ~pos ~is_method name args arg_ts =
  match a.c.opts.so_mode with
  | So_off -> ()
  | So_record | So_replay _ -> (
      match Config.find_db_write a.c.opts.config ~is_method name with
      | None -> ()
      | Some rw -> (
          let key = db_key rw args in
          let vals =
            match rw.Config.rw_val_args with
            | Some idxs -> List.filter_map (fun i -> List.nth_opt arg_ts i) idxs
            | None -> List.filteri (fun i _ -> i <> rw.Config.rw_key_arg) arg_ts
          in
          let joined = Taint.join_all vals in
          if Taint.is_tainted Vuln.Sqli joined then record_so_write a.c key
          else
            match a.frame with
            | Some frame ->
                Taint.Int_set.iter
                  (fun i ->
                    frame.fr_csinks <-
                      { Summary.cs_param = i; cs_kind = Vuln.Sqli;
                        cs_sink_name = so_write_prefix ^ key; cs_pos = pos;
                        cs_var = name; cs_context = None;
                        cs_sans = Taint.no_sans }
                      :: frame.fr_csinks)
                  (Taint.deps Vuln.Sqli joined)
            | None -> ()))

(** DB-read endpoint in the replay phase: second-order taint flows out of
    the call when a matching write key was recorded by the record phase.
    A keyless read (["*"]) matches any recorded write; a keyed read
    matches its own key or a keyless write. *)
let so_read_taint a ~pos ~is_method ?disp name args =
  match a.c.opts.so_mode with
  | So_off | So_record -> Taint.untainted
  | So_replay keys -> (
      match Config.find_db_read a.c.opts.config ~is_method name with
      | None -> Taint.untainted
      | Some rw ->
          let rkey = db_key rw args in
          let matches =
            if String.equal rkey "*" then keys <> []
            else
              List.exists
                (fun k -> String.equal k rkey || String.equal k "*")
                keys
          in
          if matches then begin
            let disp = match disp with Some d -> d | None -> name in
            Obs.incr "phpsafe.so.reads_replayed";
            Taint.of_source
              ~kinds:[ Vuln.Second_order_sqli ]
              ~source:(Vuln.Database disp) ~pos
            |> Taint.push_step ~var:(disp ^ "()") ~pos
                 ~note:"attacker-stored data read back"
          end
          else Taint.untainted)

(* ------------------------------------------------------------------ *)
(* Names                                                              *)
(* ------------------------------------------------------------------ *)

let rec name_of_expr (e : Phplang.Ast.expr) =
  match e.Phplang.Ast.e with
  | Phplang.Ast.Var v -> v
  | Phplang.Ast.ArrayGet (b, _) -> name_of_expr b ^ "[...]"
  | Phplang.Ast.Prop (b, p) -> name_of_expr b ^ "->" ^ p
  | Phplang.Ast.StaticProp (c, p) -> c ^ "::" ^ p
  | Phplang.Ast.Call (f, _) -> f ^ "()"
  | Phplang.Ast.MethodCall (b, m, _) -> name_of_expr b ^ "->" ^ m ^ "()"
  | Phplang.Ast.StaticCall (c, m, _) -> c ^ "::" ^ m ^ "()"
  | Phplang.Ast.Interp _ -> "<string>"
  | Phplang.Ast.Bin (Phplang.Ast.Concat, _, _) -> "<concat>"
  | _ -> "<expr>"

let lc = String.lowercase_ascii
let method_key cls m = lc cls ^ "::" ^ lc m

(* Structural equality of conditional sinks; sanitizer sets need their own
   equality (tree shapes differ for equal sets). *)
let cond_sink_same (a : Summary.cond_sink) (b : Summary.cond_sink) =
  a.Summary.cs_param = b.Summary.cs_param
  && a.Summary.cs_kind = b.Summary.cs_kind
  && String.equal a.Summary.cs_sink_name b.Summary.cs_sink_name
  && a.Summary.cs_pos = b.Summary.cs_pos
  && String.equal a.Summary.cs_var b.Summary.cs_var
  && a.Summary.cs_context = b.Summary.cs_context
  && Taint.equal_sans a.Summary.cs_sans b.Summary.cs_sans

let dedup_cond_sinks css =
  List.fold_left
    (fun acc cs -> if List.exists (cond_sink_same cs) acc then acc else cs :: acc)
    [] css
  |> List.rev

(* walk the parent chain to find the class defining method [m] *)
let rec resolve_method ctx cls m =
  match Hashtbl.find_opt ctx.classes (lc cls) with
  | None -> None
  | Some cdef ->
      let has =
        List.exists
          (fun (md : Phplang.Ast.method_def) ->
            String.equal (lc md.Phplang.Ast.m_func.Phplang.Ast.f_name) (lc m))
          cdef.Phplang.Ast.c_methods
      in
      if has then Some cdef.Phplang.Ast.c_name
      else
        match cdef.Phplang.Ast.c_parent with
        | Some parent -> resolve_method ctx parent m
        | None -> None

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let rec eval a (e : Phplang.Ast.expr) : Taint.t =
  let pos = e.Phplang.Ast.epos in
  match e.Phplang.Ast.e with
  | Phplang.Ast.Null | Phplang.Ast.True | Phplang.Ast.False
  | Phplang.Ast.Int _ | Phplang.Ast.Float _ | Phplang.Ast.Str _
  | Phplang.Ast.Const _ | Phplang.Ast.ClassConst _ ->
      Taint.untainted
  | Phplang.Ast.Interp parts ->
      Taint.join_all
        (List.map
           (function
             | Phplang.Ast.ILit _ -> Taint.untainted
             | Phplang.Ast.IExpr e -> eval a e)
           parts)
  | Phplang.Ast.Var v -> (
      match Config.is_superglobal_source a.c.opts.config v with
      | Some kinds ->
          Taint.of_source ~kinds ~source:(Vuln.Superglobal v) ~pos
          |> Taint.push_step ~var:v ~pos ~note:"attacker-controlled input"
      | None -> Env.get a.env v)
  | Phplang.Ast.ArrayGet (b, idx) ->
      Option.iter (fun i -> ignore (eval a i)) idx;
      eval a b
  | Phplang.Ast.Prop (b, p) -> (
      match b.Phplang.Ast.e with
      | Phplang.Ast.Var "$this" -> (
          match Env.this_prop_key a.env p with
          | Some key -> Env.get_global_key a.env key
          | None -> Taint.untainted)
      | Phplang.Ast.Var v ->
          (* named property state joined with the object's own taint, so a
             row object fetched from the database taints its columns *)
          Taint.join (Env.get a.env (v ^ "->" ^ p)) (Env.get a.env v)
      | _ -> eval a b)
  | Phplang.Ast.StaticProp (cls, p) ->
      Env.get_global_key a.env (Env.static_prop_key cls p)
  | Phplang.Ast.ArrayLit items ->
      Taint.join_all
        (List.map
           (fun (k, v) ->
             Option.iter (fun k -> ignore (eval a k)) k;
             eval a v)
           items)
  | Phplang.Ast.Assign (lhs, rhs) ->
      let t = eval a rhs in
      propagate_class_binding a lhs rhs;
      assign_lval a lhs t;
      t
  | Phplang.Ast.AssignRef (lhs, rhs) -> (
      (* reference assignment (the behaviour Pixy's -A flag enables,
         §IV.B): variable-to-variable references share one cell; other
         reference shapes degrade to taint copies *)
      propagate_class_binding a lhs rhs;
      match (lhs.Phplang.Ast.e, rhs.Phplang.Ast.e) with
      | Phplang.Ast.Var l, Phplang.Ast.Var r ->
          Env.alias a.env l r;
          Env.get a.env r
      | _ ->
          let t = eval a rhs in
          assign_lval a lhs t;
          t)
  | Phplang.Ast.ListAssign (slots, rhs) ->
      let t = eval a rhs in
      List.iter (Option.iter (fun lhs -> assign_lval a lhs t)) slots;
      t
  | Phplang.Ast.OpAssign (op, lhs, rhs) ->
      let old = eval a lhs in
      let rhs_t = eval a rhs in
      let t =
        match op with
        | Phplang.Ast.Concat -> Taint.join old rhs_t
        | _ -> Taint.scrub rhs_t  (* arithmetic result *)
      in
      assign_lval a lhs t;
      t
  | Phplang.Ast.Bin (op, l, r) -> (
      let lt = eval a l and rt = eval a r in
      match op with
      | Phplang.Ast.Concat -> Taint.join lt rt
      (* ?? selects one operand's value, so taint flows from both sides *)
      | Phplang.Ast.Coalesce -> Taint.join lt rt
      | Phplang.Ast.Plus | Phplang.Ast.Minus | Phplang.Ast.Mul
      | Phplang.Ast.Div | Phplang.Ast.Mod ->
          Taint.untainted
      | Phplang.Ast.Eq | Phplang.Ast.Neq | Phplang.Ast.Identical
      | Phplang.Ast.NotIdentical | Phplang.Ast.Lt | Phplang.Ast.Gt
      | Phplang.Ast.Le | Phplang.Ast.Ge | Phplang.Ast.BoolAnd
      | Phplang.Ast.BoolOr ->
          Taint.untainted)
  | Phplang.Ast.Un (op, x) -> (
      let t = eval a x in
      match op with
      | Phplang.Ast.Silence -> t
      | Phplang.Ast.Not | Phplang.Ast.Neg | Phplang.Ast.PreInc
      | Phplang.Ast.PreDec | Phplang.Ast.PostInc | Phplang.Ast.PostDec ->
          Taint.untainted)
  | Phplang.Ast.Ternary (c, thn, els) ->
      let ct = eval a c in
      let tt = match thn with Some t -> eval a t | None -> ct in
      let et = eval a els in
      Taint.join tt et
  | Phplang.Ast.CastE (cast, x) -> (
      let t = eval a x in
      match cast with
      | Phplang.Ast.CastInt | Phplang.Ast.CastFloat | Phplang.Ast.CastBool ->
          Taint.untainted
      | Phplang.Ast.CastString | Phplang.Ast.CastArray -> t)
  | Phplang.Ast.Isset es ->
      List.iter (fun e -> ignore (eval a e)) es;
      Taint.untainted
  | Phplang.Ast.EmptyE x ->
      ignore (eval a x);
      Taint.untainted
  | Phplang.Ast.PrintE x ->
      if ctx_on a then
        ignore (check_sink_ctx a ~pos ~targets:[ (Vuln.Xss, "print") ] x)
      else begin
        let t = eval a x in
        check_sink a ~kind:Vuln.Xss ~pos ~sink_name:"print" ~var:(name_of_expr x) t
      end;
      Taint.untainted
  | Phplang.Ast.Exit arg ->
      Option.iter
        (fun x ->
          if ctx_on a then
            ignore (check_sink_ctx a ~pos ~targets:[ (Vuln.Xss, "exit") ] x)
          else begin
            let t = eval a x in
            check_sink a ~kind:Vuln.Xss ~pos ~sink_name:"exit" ~var:(name_of_expr x) t
          end)
        arg;
      Taint.untainted
  | Phplang.Ast.IncludeE (_, arg) ->
      exec_include a arg;
      Taint.untainted
  | Phplang.Ast.Closure cl ->
      analyze_closure a cl;
      Taint.untainted
  | Phplang.Ast.Call (fname, args) -> eval_call a ~pos fname args
  | Phplang.Ast.MethodCall (obj, m, args) -> eval_method_call a ~pos obj m args
  | Phplang.Ast.StaticCall (cls, m, args) -> (
      let arg_ts = List.map (eval a) args in
      match resolve_method a.c cls m with
      | Some owner ->
          call_user_function a ~pos (method_key owner m) arg_ts args
      | None -> Taint.untainted)
  | Phplang.Ast.New (cls, args) -> (
      let arg_ts = List.map (eval a) args in
      match resolve_method a.c cls "__construct" with
      | Some owner ->
          ignore (call_user_function a ~pos (method_key owner "__construct") arg_ts args);
          Taint.untainted
      | None -> Taint.untainted)

(* Context-mode sink check: evaluate the sink argument piecewise (each
   dynamic hole exactly once — [Strshape.pieces] only decomposes
   side-effect-free literal structure), infer each hole's output context
   from the constant prefix, and report a tainted hole only when none of
   its applied sanitizers is adequate for that context.  Parameter-
   dependent holes register conditional sinks carrying the context and the
   sanitizer delta.  Returns the joined taint of the whole argument, so
   callers use this INSTEAD of [eval] on the sink argument. *)
and check_sink_ctx a ~pos ~targets (e : Phplang.Ast.expr) : Taint.t =
  let targets =
    List.concat_map
      (fun (kind, sink_name) ->
        List.map (fun k -> (k, sink_name)) (sink_check_kinds a kind))
      targets
  in
  let prefix = Buffer.create 64 in
  let acc = ref Taint.untainted in
  List.iter
    (function
      | Phplang.Strshape.Lit s -> Buffer.add_string prefix s
      | Phplang.Strshape.Dyn sub ->
          let t = eval a sub in
          let var = name_of_expr sub in
          let p = Buffer.contents prefix in
          List.iter
            (fun (kind, sink_name) ->
              let ctxt = infer_context kind p in
              if Taint.is_tainted kind t then begin
                if not (adequately_sanitized a.c.opts.config kind ctxt t) then
                  report a ~context:ctxt ~kind ~pos ~sink_name ~var t
              end
              else
                match a.frame with
                | Some frame ->
                    Taint.Int_set.iter
                      (fun i ->
                        frame.fr_csinks <-
                          { Summary.cs_param = i; cs_kind = kind;
                            cs_sink_name = sink_name; cs_pos = pos;
                            cs_var = var; cs_context = Some ctxt;
                            cs_sans = t.Taint.sans }
                          :: frame.fr_csinks)
                      (Taint.deps kind t)
                | None -> ())
            targets;
          acc := Taint.join !acc t)
    (Phplang.Strshape.pieces e);
  !acc

and propagate_class_binding a lhs rhs =
  match (lhs.Phplang.Ast.e, rhs.Phplang.Ast.e) with
  | Phplang.Ast.Var v, Phplang.Ast.New (cls, _) -> Env.bind_class a.env v cls
  | Phplang.Ast.Var v, Phplang.Ast.Var w -> (
      match Env.class_binding a.env w with
      | Some cls -> Env.bind_class a.env v cls
      | None -> ())
  | _ -> ()

and assign_lval a (lhs : Phplang.Ast.expr) (taint : Taint.t) =
  let pos = lhs.Phplang.Ast.epos in
  match lhs.Phplang.Ast.e with
  | Phplang.Ast.Var v ->
      let taint =
        if Taint.interesting taint then
          Taint.push_step taint ~var:v ~pos ~note:"assigned"
        else taint
      in
      Env.set a.env v taint
  | Phplang.Ast.ArrayGet (b, idx) ->
      Option.iter (fun i -> ignore (eval a i)) idx;
      assign_lval_join a b taint
  | Phplang.Ast.Prop ({ Phplang.Ast.e = Phplang.Ast.Var "$this"; _ }, p) -> (
      match Env.this_prop_key a.env p with
      | Some key -> Env.set_global_key_join a.env key taint
      | None -> ())
  | Phplang.Ast.Prop ({ Phplang.Ast.e = Phplang.Ast.Var v; _ }, p) ->
      Env.set a.env (v ^ "->" ^ p) taint
  | Phplang.Ast.StaticProp (cls, p) ->
      Env.set_global_key a.env (Env.static_prop_key cls p) taint
  | _ -> ()

(* assigning through an array slot joins into the base variable *)
and assign_lval_join a (lhs : Phplang.Ast.expr) taint =
  match lhs.Phplang.Ast.e with
  | Phplang.Ast.Var v -> Env.set_join a.env v taint
  | Phplang.Ast.ArrayGet (b, _) -> assign_lval_join a b taint
  | Phplang.Ast.Prop ({ Phplang.Ast.e = Phplang.Ast.Var "$this"; _ }, p) -> (
      match Env.this_prop_key a.env p with
      | Some key -> Env.set_global_key_join a.env key taint
      | None -> ())
  | Phplang.Ast.Prop ({ Phplang.Ast.e = Phplang.Ast.Var v; _ }, p) ->
      Env.set_join a.env (v ^ "->" ^ p) taint
  | _ -> ()

and eval_call a ~pos fname args =
  let config = a.c.opts.config in
  let sinks = Config.find_sinks config fname in
  (* 1. sink roles.  In context mode the sink arguments are evaluated
     piecewise by [check_sink_ctx] (still exactly once each) so that every
     hole gets its inferred output context. *)
  let arg_ts =
    if ctx_on a && sinks <> [] then
      List.map
        (fun e ->
          match
            List.filter (fun snk -> sink_applies snk ~args ~arg:e) sinks
          with
          | [] -> eval a e
          | applicable ->
              let targets =
                List.map
                  (fun (snk : Config.sink_entry) -> (snk.Config.snk_kind, fname))
                  applicable
              in
              check_sink_ctx a ~pos ~targets e)
        args
    else begin
      let arg_ts = List.map (eval a) args in
      List.iter
        (fun (snk : Config.sink_entry) ->
          List.iteri
            (fun i t ->
              match List.nth_opt args i with
              | Some e when sink_applies snk ~args ~arg:e ->
                  check_sink a ~kind:snk.Config.snk_kind ~pos ~sink_name:fname
                    ~var:(name_of_expr e) t
              | _ -> ())
            arg_ts)
        sinks;
      arg_ts
    end
  in
  check_db_write a ~pos ~is_method:false fname args arg_ts;
  let so_t = so_read_taint a ~pos ~is_method:false fname args in
  let arg0 () =
    match arg_ts with t :: _ -> t | [] -> Taint.untainted
  in
  let arg0_name () =
    match args with e :: _ -> name_of_expr e | [] -> "<none>"
  in
  (* 2. value roles, in priority order *)
  let t =
  match Config.find_sanitizer config fname with
  | Some san ->
      let t =
        if ctx_on a then
          (* keep the live bits; the verdict happens at the sink *)
          Taint.record_sanitizer ~name:fname san.Config.san_kinds (arg0 ())
        else Taint.sanitize_kinds san.Config.san_kinds (arg0 ())
      in
      if Taint.interesting t || Taint.any_was t then
        Taint.push_step t ~var:(arg0_name ()) ~pos
          ~note:(Printf.sprintf "filtered by %s" fname)
      else t
  | None ->
      if Config.is_revert config fname then
        let t =
          if ctx_on a then
            Taint.revert_named
              ~undoes:(Config.revert_undoes config fname)
              (arg0 ())
          else Taint.revert (arg0 ())
        in
        if Taint.interesting t then
          Taint.push_step t ~var:(arg0_name ()) ~pos
            ~note:(Printf.sprintf "sanitization reverted by %s" fname)
        else t
      else (
        match Config.find_function_source config fname with
        | Some src ->
            Taint.of_source ~kinds:src.Config.src_kinds
              ~source:src.Config.src_desc ~pos
            |> Taint.push_step ~var:(fname ^ "()") ~pos
                 ~note:"untrusted data returned"
        | None ->
            if Config.is_passthrough config fname then arg0 ()
            else if Config.is_concat_all config fname then
              Taint.join_all arg_ts
            else (
              match Hashtbl.find_opt a.c.funcs (lc fname) with
              | Some _ -> call_user_function a ~pos (lc fname) arg_ts args
              | None -> Taint.untainted))
  in
  if Taint.interesting so_t then Taint.join t so_t else t

and eval_method_call a ~pos obj m args =
  let config = a.c.opts.config in
  ignore (eval a obj);
  let full_name obj_name = obj_name ^ "->" ^ m in
  let obj_name = name_of_expr obj in
  (* user-defined class methods resolve through the object's binding *)
  let user_class =
    match obj.Phplang.Ast.e with
    | Phplang.Ast.Var v -> (
        match Env.class_binding a.env v with
        | Some cls -> resolve_method a.c cls m
        | None -> None)
    | _ -> None
  in
  let msinks =
    match user_class with
    | Some _ -> []
    | None -> Config.find_method_sinks config m
  in
  (* method sinks check their first (query) argument; in context mode that
     argument is evaluated piecewise by [check_sink_ctx] *)
  let arg_ts =
    if ctx_on a && msinks <> [] then
      match args with
      | e :: rest -> (
          match
            List.filter (fun snk -> sink_applies snk ~args ~arg:e) msinks
          with
          | [] -> List.map (eval a) args
          | applicable ->
              let targets =
                List.map
                  (fun (snk : Config.sink_entry) ->
                    (snk.Config.snk_kind, full_name obj_name))
                  applicable
              in
              check_sink_ctx a ~pos ~targets e :: List.map (eval a) rest)
      | [] -> []
    else begin
      let arg_ts = List.map (eval a) args in
      List.iter
        (fun (snk : Config.sink_entry) ->
          match (arg_ts, args) with
          | t :: _, e :: _ when sink_applies snk ~args ~arg:e ->
              check_sink a ~kind:snk.Config.snk_kind ~pos
                ~sink_name:(full_name obj_name) ~var:(name_of_expr e) t
          | _ -> ())
        msinks;
      arg_ts
    end
  in
  let arg0 () = match arg_ts with t :: _ -> t | [] -> Taint.untainted in
  match user_class with
  | Some owner -> call_user_function a ~pos (method_key owner m) arg_ts args
  | None ->
      (* configuration-known methods ($wpdb family): sink, sanitizer,
         source — plus the second-order DB write/read endpoints *)
      check_db_write a ~pos ~is_method:true m args arg_ts;
      let so_t =
        so_read_taint a ~pos ~is_method:true ~disp:(full_name obj_name) m args
      in
      let t =
        match Config.find_method_sanitizer config m with
        | Some san ->
            if ctx_on a then
              Taint.record_sanitizer ~name:m san.Config.san_kinds (arg0 ())
            else Taint.sanitize_kinds san.Config.san_kinds (arg0 ())
        | None -> (
            match Config.find_method_source config m with
            | Some src ->
                Taint.of_source ~kinds:src.Config.src_kinds
                  ~source:src.Config.src_desc ~pos
                |> Taint.push_step ~var:(full_name obj_name ^ "()") ~pos
                     ~note:"untrusted data returned"
            | None -> Taint.untainted)
      in
      if Taint.interesting so_t then Taint.join t so_t else t

and call_user_function a ~pos key arg_ts arg_exprs =
  match Hashtbl.find_opt a.c.funcs key with
  | None -> Taint.untainted
  | Some fi ->
      let summary =
        match Hashtbl.find_opt a.c.summaries key with
        | Some s -> Some s
        | None ->
            if Hashtbl.mem a.c.in_progress key then None (* recursion cut *)
            else Some (obtain_summary a.c fi)
      in
      (match summary with
      | None -> Taint.untainted
      | Some summary ->
          (* fire conditional sinks with the actual argument taints *)
          List.iter
            (fun action ->
              match action with
              | `Fire ((cs : Summary.cond_sink), (arg_taint : Taint.t))
                when is_so_write_sink cs ->
                  (* a [dbwrite:] pseudo-sink never reports; firing it with
                     SQL-tainted data records the second-order write key *)
                  if Taint.is_tainted Vuln.Sqli arg_taint then
                    record_so_write a.c (so_write_key cs)
              | `Fire ((cs : Summary.cond_sink), (arg_taint : Taint.t)) ->
                  (* context mode: replay the callee's sanitizer delta on
                     the argument and test adequacy against the context
                     inferred at the callee's sink *)
                  let arg_taint =
                    if ctx_on a then
                      { arg_taint with
                        Taint.sans =
                          Taint.compose_sans ~outer:arg_taint.Taint.sans
                            ~inner:cs.Summary.cs_sans }
                    else arg_taint
                  in
                  let suppressed =
                    ctx_on a
                    && (match cs.Summary.cs_context with
                       | Some ctxt ->
                           adequately_sanitized a.c.opts.config
                             cs.Summary.cs_kind ctxt arg_taint
                       | None -> false)
                  in
                  if not suppressed then begin
                    let arg_var =
                      match List.nth_opt arg_exprs cs.Summary.cs_param with
                      | Some e -> name_of_expr e
                      | None -> "<arg>"
                    in
                    let t =
                      Taint.push_step arg_taint ~var:arg_var ~pos
                        ~note:
                          (Printf.sprintf "passed to %s (parameter %d)" key
                             (cs.Summary.cs_param + 1))
                    in
                    report a ?context:cs.Summary.cs_context
                      ~kind:cs.Summary.cs_kind ~pos:cs.Summary.cs_pos
                      ~sink_name:cs.Summary.cs_sink_name ~var:cs.Summary.cs_var
                      t
                  end
              | `Hoist cs -> (
                  match a.frame with
                  | Some frame -> frame.fr_csinks <- cs :: frame.fr_csinks
                  | None -> ()))
            (Summary.fire_cond_sinks summary arg_ts);
          Summary.instantiate_return summary arg_ts)

and analyze_closure a (cl : Phplang.Ast.closure) =
  (* closures are WordPress hook callbacks: analyze as an entry point with
     the captured variables' current taint *)
  let env = Env.create_scope ?current_class:a.env.Env.current_class a.c.globals in
  List.iter
    (fun (v, _by_ref) -> Env.set env v (Env.get a.env v))
    cl.Phplang.Ast.cl_uses;
  List.iter
    (fun (p : Phplang.Ast.param) -> Env.set env p.Phplang.Ast.p_name Taint.untainted)
    cl.Phplang.Ast.cl_params;
  let sub = { a with env; frame = None } in
  exec_body sub cl.Phplang.Ast.cl_body

(** {!analyze_function} behind the summary cache: a hit replays the
    recorded findings and publishes the recorded summaries instead of
    walking the body; a miss walks it and persists the delta.  Impure
    functions (and cache-off runs) go straight to the walk. *)
and obtain_summary (c : ctx) (fi : func_info) : Summary.t =
  match c.cache with
  | None -> analyze_function c fi
  | Some ic -> (
      match summary_key ic c.funcs fi.fi_key with
      | None -> analyze_function c fi
      | Some key -> (
          match Phplang.Store.get ~ns:"summary" ~key with
          | Some (e : summary_entry) ->
              List.iter (replay_finding c) e.se_findings;
              List.iter
                (fun (k, s) ->
                  if not (Hashtbl.mem c.summaries k) then begin
                    Hashtbl.replace c.summaries k s;
                    c.sum_log <- (k, s) :: c.sum_log
                  end)
                e.se_published;
              List.iter (record_so_write c) e.se_so_writes;
              e.se_summary
          | None ->
              let findings0 = List.length c.findings in
              let log0 = List.length c.sum_log in
              let so0 = c.so_writes in
              let s = analyze_function c fi in
              let rec take k l =
                if k <= 0 then []
                else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
              in
              let delta l n = List.rev (take (List.length l - n) l) in
              Phplang.Store.put ~ns:"summary" ~key
                {
                  se_summary = s;
                  se_findings = delta c.findings findings0;
                  se_published = delta c.sum_log log0;
                  se_so_writes = S.elements (S.diff c.so_writes so0);
                };
              s))

and analyze_function (c : ctx) (fi : func_info) : Summary.t =
  Obs.incr "phpsafe.summaries.built";
  Hashtbl.replace c.in_progress fi.fi_key ();
  let env = Env.create_scope ?current_class:fi.fi_class c.globals in
  List.iteri
    (fun i (p : Phplang.Ast.param) ->
      Option.iter (fun d -> ignore d) p.Phplang.Ast.p_default;
      Env.set env p.Phplang.Ast.p_name (Taint.of_param i))
    fi.fi_func.Phplang.Ast.f_params;
  let frame = { fr_ret = Taint.untainted; fr_csinks = [] } in
  let a = { c; env; frame = Some frame; file = fi.fi_file } in
  exec_body a fi.fi_func.Phplang.Ast.f_body;
  let cond_sinks = List.rev frame.fr_csinks in
  let cond_sinks =
    (* flow mode replays the body once per fixpoint pass, registering the
       same conditional sinks repeatedly; keep the first of each *)
    if c.opts.flow_sensitive then dedup_cond_sinks cond_sinks else cond_sinks
  in
  let summary = { Summary.ret = frame.fr_ret; cond_sinks } in
  Hashtbl.remove c.in_progress fi.fi_key;
  Hashtbl.replace c.summaries fi.fi_key summary;
  c.sum_log <- (fi.fi_key, summary) :: c.sum_log;
  summary

and exec_include a (arg : Phplang.Ast.expr) =
  (* a dynamic include path is the classic LFI sink: check the argument
     against the configured [include] sink entries (paper-class path
     traversal; a string literal resolves statically and is safe) *)
  let check_dynamic () =
    match Config.find_sinks a.c.opts.config "include" with
    | [] -> ignore (eval a arg)
    | include_sinks ->
        let pos = arg.Phplang.Ast.epos in
        let args = [ arg ] in
        if ctx_on a then (
          match
            List.filter
              (fun snk -> sink_applies snk ~args ~arg)
              include_sinks
          with
          | [] -> ignore (eval a arg)
          | applicable ->
              let targets =
                List.map
                  (fun (snk : Config.sink_entry) ->
                    (snk.Config.snk_kind, "include"))
                  applicable
              in
              ignore (check_sink_ctx a ~pos ~targets arg))
        else
          let t = eval a arg in
          List.iter
            (fun (snk : Config.sink_entry) ->
              if sink_applies snk ~args ~arg then
                check_sink a ~kind:snk.Config.snk_kind ~pos
                  ~sink_name:"include" ~var:(name_of_expr arg) t)
            include_sinks
  in
  match arg.Phplang.Ast.e with
  | _ when not a.c.opts.resolve_includes -> check_dynamic ()
  | Phplang.Ast.Str path when not (S.mem path a.c.include_stack) ->
      a.c.include_stack <- S.add path a.c.include_stack;
      (match Hashtbl.find_opt a.c.parsed path with
      | Some prog ->
          let sub = { a with file = path } in
          List.iter (exec_stmt sub) prog
      | None -> () (* WordPress core file or missing: skip, like the tools *));
      (* flow mode re-executes the include on every fixpoint pass so its
         effects stay part of the ascending state; flat mode keeps the
         once-per-entry semantics (the stack doubles as the cycle cut
         within one pass either way) *)
      if a.c.opts.flow_sensitive then
        a.c.include_stack <- S.remove path a.c.include_stack
  | Phplang.Ast.Str _ -> ()
  | _ -> check_dynamic ()

(* Body roots (file entries, function and closure bodies) go through here:
   one straight-line pass in the published phpSAFE, a CFG fixpoint under
   [--flow]. *)
and exec_body a (stmts : Phplang.Ast.stmt list) =
  if a.c.opts.flow_sensitive then exec_body_flow a stmts
  else List.iter (exec_stmt a) stmts

(* Flow-sensitive walk: the abstract state is a snapshot of the scope's
   local table (at top level, the shared global table), joined per variable
   at CFG merge points, so a sanitizer applied on one branch is killed at
   the join when the other branch kept the taint, and a loop back-edge
   re-generates taint assigned after a sink.

   The transfer function is the ordinary [exec_stmt] walk, replayed every
   pass, so its side effects need the usual fixpoint discipline:
   - findings de-duplicate through [report]'s occurrence set, and states
     only ascend (taint bits grow, applied-sanitizer sets shrink), so a
     finding emitted on an early pass is also justified by the final
     states;
   - conditional sinks accumulated in the frame are de-duplicated when the
     summary is built ({!analyze_function});
   - [fr_ret] joins monotonically across passes. *)
and exec_body_flow a stmts =
  let module F = Dataflow.Fixpoint in
  let cfg = Dataflow.Cfg.build stmts in
  let snapshot () = Hashtbl.fold SMap.add a.env.Env.locals SMap.empty in
  let restore st =
    Hashtbl.reset a.env.Env.locals;
    SMap.iter (Hashtbl.replace a.env.Env.locals) st
  in
  let res =
    F.solve ~check:Deadline.check
      {
        F.init = snapshot ();
        bottom = SMap.empty;
        join = SMap.union (fun _ x y -> Some (Taint.join x y));
        equal = SMap.equal Taint.equal_modulo_trace;
        transfer =
          (fun st s ->
            restore st;
            exec_stmt a s;
            snapshot ());
        max_passes = (Budget.get ()).Budget.fixpoint_passes;
      }
      cfg
  in
  Obs.add "phpsafe.flow.passes" res.F.passes;
  if not res.F.converged then Obs.incr "phpsafe.flow.exhausted";
  restore res.F.exit_state

and exec_stmt a (s : Phplang.Ast.stmt) =
  match s.Phplang.Ast.s with
  | Phplang.Ast.Expr e -> ignore (eval a e)
  | Phplang.Ast.Echo es ->
      List.iter
        (fun e ->
          if ctx_on a then
            ignore
              (check_sink_ctx a ~pos:e.Phplang.Ast.epos
                 ~targets:[ (Vuln.Xss, "echo") ] e)
          else begin
            let t = eval a e in
            check_sink a ~kind:Vuln.Xss ~pos:e.Phplang.Ast.epos ~sink_name:"echo"
              ~var:(name_of_expr e) t
          end)
        es
  | Phplang.Ast.If (branches, els) ->
      (* §III.C: "Conditions and loops do not change the data flow. Only the
         values of the variables involved are processed and updated. Also,
         the blocks of code are parsed normally." *)
      List.iter
        (fun (cond, body) ->
          ignore (eval a cond);
          List.iter (exec_stmt a) body)
        branches;
      Option.iter (List.iter (exec_stmt a)) els;
      if a.c.opts.respect_guards then apply_termination_guards a branches els
  | Phplang.Ast.While (cond, body) ->
      ignore (eval a cond);
      List.iter (exec_stmt a) body
  | Phplang.Ast.DoWhile (body, cond) ->
      List.iter (exec_stmt a) body;
      ignore (eval a cond)
  | Phplang.Ast.For (init, cond, update, body) ->
      List.iter (fun e -> ignore (eval a e)) init;
      List.iter (fun e -> ignore (eval a e)) cond;
      List.iter (exec_stmt a) body;
      List.iter (fun e -> ignore (eval a e)) update
  | Phplang.Ast.Foreach (subject, binding, body) ->
      let t = eval a subject in
      (match binding with
      | Phplang.Ast.ForeachValue v -> assign_lval a v t
      | Phplang.Ast.ForeachKeyValue (k, v) ->
          assign_lval a k t;
          assign_lval a v t);
      List.iter (exec_stmt a) body
  | Phplang.Ast.Switch (subject, cases) ->
      ignore (eval a subject);
      List.iter
        (fun (c : Phplang.Ast.case) ->
          Option.iter (fun g -> ignore (eval a g)) c.Phplang.Ast.case_guard;
          List.iter (exec_stmt a) c.Phplang.Ast.case_body)
        cases
  | Phplang.Ast.Return e -> (
      let t = match e with Some e -> eval a e | None -> Taint.untainted in
      match a.frame with
      | Some frame -> frame.fr_ret <- Taint.join frame.fr_ret t
      | None -> ())
  | Phplang.Ast.Global names -> List.iter (Env.declare_global a.env) names
  | Phplang.Ast.StaticVar vars ->
      List.iter
        (fun (v, init) ->
          let t = match init with Some e -> eval a e | None -> Taint.untainted in
          Env.set a.env v t)
        vars
  | Phplang.Ast.Unset es ->
      (* §III.C T_UNSET: "the properties of the variable are updated as
         untainted and marked as non-vulnerable" *)
      List.iter
        (fun e ->
          match e.Phplang.Ast.e with
          | Phplang.Ast.Var v -> Env.unset a.env v
          | _ -> ())
        es
  | Phplang.Ast.Block body -> List.iter (exec_stmt a) body
  | Phplang.Ast.FuncDef _ | Phplang.Ast.ClassDef _ ->
      () (* hoisted during model construction *)
  | Phplang.Ast.InlineHtml _ | Phplang.Ast.Nop | Phplang.Ast.Break
  | Phplang.Ast.Continue ->
      ()
  | Phplang.Ast.Throw e -> ignore (eval a e)
  | Phplang.Ast.TryCatch (body, catches) ->
      List.iter (exec_stmt a) body;
      List.iter
        (fun (c : Phplang.Ast.catch) ->
          Env.set a.env c.Phplang.Ast.catch_var Taint.untainted;
          List.iter (exec_stmt a) c.Phplang.Ast.catch_body)
        catches

(* [respect_guards] extension: after
   [if (!guard($x)) { ...exit/return/throw... }] with no else, execution can
   only continue when [guard($x)] held, so [$x] is validated. *)
and apply_termination_guards a branches els =
  match (branches, els) with
  | [ (cond, body) ], None when block_terminates body -> (
      match cond.Phplang.Ast.e with
      | Phplang.Ast.Un
          (Phplang.Ast.Not,
           { Phplang.Ast.e =
               Phplang.Ast.Call (g, [ { Phplang.Ast.e = Phplang.Ast.Var v; _ } ]);
             _ })
        when List.mem (lc g) guard_functions ->
          Env.set a.env v
            (Taint.sanitize_kinds Vuln.all_kinds (Env.get a.env v))
      | _ -> ())
  | _ -> ()

and block_terminates (body : Phplang.Ast.stmt list) =
  List.exists
    (fun (s : Phplang.Ast.stmt) ->
      match s.Phplang.Ast.s with
      | Phplang.Ast.Return _ | Phplang.Ast.Throw _ -> true
      | Phplang.Ast.Expr { Phplang.Ast.e = Phplang.Ast.Exit _; _ } -> true
      | _ -> false)
    body

(* ------------------------------------------------------------------ *)
(* Model construction (paper §III.B)                                  *)
(* ------------------------------------------------------------------ *)

let rec register_stmt ctx ~file (s : Phplang.Ast.stmt) =
  match s.Phplang.Ast.s with
  | Phplang.Ast.FuncDef f ->
      let key = lc f.Phplang.Ast.f_name in
      if not (Hashtbl.mem ctx.funcs key) then
        Hashtbl.replace ctx.funcs key
          { fi_key = key; fi_func = f; fi_class = None; fi_file = file };
      List.iter (register_stmt ctx ~file) f.Phplang.Ast.f_body
  | Phplang.Ast.ClassDef cls ->
      if not (Hashtbl.mem ctx.classes (lc cls.Phplang.Ast.c_name)) then
        Hashtbl.replace ctx.classes (lc cls.Phplang.Ast.c_name) cls;
      List.iter
        (fun (m : Phplang.Ast.method_def) ->
          let key = method_key cls.Phplang.Ast.c_name m.Phplang.Ast.m_func.Phplang.Ast.f_name in
          if not (Hashtbl.mem ctx.funcs key) then
            Hashtbl.replace ctx.funcs key
              { fi_key = key; fi_func = m.Phplang.Ast.m_func;
                fi_class = Some cls.Phplang.Ast.c_name; fi_file = file };
          List.iter (register_stmt ctx ~file) m.Phplang.Ast.m_func.Phplang.Ast.f_body)
        cls.Phplang.Ast.c_methods
  | Phplang.Ast.If (branches, els) ->
      List.iter (fun (_, b) -> List.iter (register_stmt ctx ~file) b) branches;
      Option.iter (List.iter (register_stmt ctx ~file)) els
  | Phplang.Ast.While (_, b) | Phplang.Ast.DoWhile (b, _)
  | Phplang.Ast.Foreach (_, _, b) | Phplang.Ast.Block b
  | Phplang.Ast.For (_, _, _, b) ->
      List.iter (register_stmt ctx ~file) b
  | Phplang.Ast.Switch (_, cases) ->
      List.iter
        (fun (c : Phplang.Ast.case) ->
          List.iter (register_stmt ctx ~file) c.Phplang.Ast.case_body)
        cases
  | Phplang.Ast.TryCatch (b, catches) ->
      List.iter (register_stmt ctx ~file) b;
      List.iter
        (fun (c : Phplang.Ast.catch) ->
          List.iter (register_stmt ctx ~file) c.Phplang.Ast.catch_body)
        catches
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Project driver                                                     *)
(* ------------------------------------------------------------------ *)

let analyze_project_internal ?(opts = default_options)
    (project : Phplang.Project.t) : Report.result * string list =
  (* stage 1 (§III.A): configuration — the run context carrying the sink/
     source/sanitizer model, plus the incremental-cache fingerprints when a
     cache root is configured.  The file fingerprint covers the whole
     option record (profile, [--contexts], [--flow], guards, the modeling
     budget) and the slice of the safety {!Budget} phpSAFE consults; the
     summary fingerprint deliberately excludes the include caps — function
     bodies with includes are never cached, so [--budget-include-*] must
     not invalidate summaries.  The fixpoint-pass cap is consulted only by
     the [--flow] walk (which also runs inside function bodies), so it
     joins both fingerprints exactly when that mode is on. *)
  let ctx =
    Obs.span "phpsafe.config" @@ fun () ->
    let cache =
      if not (Cache.enabled ()) then None
      else
        let b = Budget.get () in
        let flow_passes =
          if opts.flow_sensitive then b.Budget.fixpoint_passes else 0
        in
        Some
          {
            ic_file_fp =
              Phplang.Digest.structural
                ( "phpSAFE-file",
                  opts,
                  ( b.Budget.parse_depth,
                    b.Budget.include_depth,
                    b.Budget.include_files ),
                  flow_passes );
            ic_sum_fp =
              Phplang.Digest.structural
                ("phpSAFE-summary", opts, b.Budget.parse_depth, flow_passes);
            ic_meta = Hashtbl.create 64;
            ic_cacheable = Hashtbl.create 64;
          }
    in
    {
      opts;
      project;
      parsed = Hashtbl.create 64;
      funcs = Hashtbl.create 128;
      classes = Hashtbl.create 32;
      summaries = Hashtbl.create 128;
      in_progress = Hashtbl.create 8;
      globals = Hashtbl.create 64;
      findings = [];
      reported = Report.Occurrence_set.empty;
      include_stack = S.empty;
      errors = 0;
      sum_log = [];
      so_writes = S.empty;
      cache;
    }
  in
  let outcomes = ref [] in
  let unresolved = ref S.empty in
  let closures : (string, Phplang.Project.closure) Hashtbl.t =
    Hashtbl.create 64
  in
  (* stage 2 (§III.B): model construction — parse everything, check the
     include budget, hoist the function/class registry *)
  let analyzable =
    Obs.span "phpsafe.model" @@ fun () ->
    let parse_ok = ref [] in
    List.iter
      (fun (f : Phplang.Project.file) ->
        match Phplang.Project.parse_file f with
        | Ok prog ->
            Hashtbl.replace ctx.parsed f.Phplang.Project.path prog;
            parse_ok := f.Phplang.Project.path :: !parse_ok
        | Error err ->
            ctx.errors <- ctx.errors + 1;
            let reason =
              match err with
              | Phplang.Project.Syntax msg -> Report.Parse_failure msg
              | Phplang.Project.Over_budget msg -> Report.Budget_exhausted msg
            in
            outcomes :=
              (f.Phplang.Project.path, Report.fail reason) :: !outcomes)
      project.Phplang.Project.files;
    let parse_ok = List.rev !parse_ok in
    (* include closures: needed for the memory budget and for the result
       cache's closure digests; walked once, used by both.  No closure is
       built at all when include resolution is off. *)
    if opts.resolve_includes && (opts.budget <> None || ctx.cache <> None)
    then begin
      let safety = Budget.get () in
      List.iter
        (fun path ->
          let parse (f : Phplang.Project.file) =
            Hashtbl.find_opt ctx.parsed f.Phplang.Project.path
          in
          Hashtbl.replace closures path
            (Phplang.Project.include_closure
               ~max_depth:safety.Budget.include_depth
               ~max_files:safety.Budget.include_files ~parse project path))
        parse_ok
    end;
    (* memory budget: files whose include closure is too expensive fail *)
    let failed_mem = Hashtbl.create 4 in
    (match (if opts.resolve_includes then opts.budget else None) with
    | None -> ()
    | Some budget ->
        List.iter
          (fun path ->
            let closure = Hashtbl.find closures path in
            let closure_loc =
              List.fold_left
                (fun acc p ->
                  match Phplang.Project.find project p with
                  | Some f -> acc + Phplang.Loc.count f.Phplang.Project.source
                  | None ->
                      unresolved := S.add p !unresolved;
                      acc)
                0 closure.Phplang.Project.cl_paths
            in
            if closure.Phplang.Project.cl_truncated then begin
              (* the safety cap fired before the paper's modeling budget
                 could even be measured — a budget exhaustion, not the
                 paper's out-of-memory behaviour *)
              Obs.incr "phpsafe.files.failed_budget";
              Hashtbl.replace failed_mem path ();
              outcomes :=
                (path,
                 Report.fail
                   (Report.Budget_exhausted
                      "include closure exceeds the depth/size safety cap"))
                :: !outcomes
            end
            else if closure.Phplang.Project.cl_max_depth
                    > budget.max_include_depth
                    || closure_loc > budget.max_closure_loc
            then begin
              Obs.incr "phpsafe.files.failed_budget";
              Hashtbl.replace failed_mem path ();
              outcomes := (path, Report.fail Report.Out_of_memory) :: !outcomes
            end)
          parse_ok);
    let analyzable =
      List.filter (fun p -> not (Hashtbl.mem failed_mem p)) parse_ok
    in
    (* registry (hoisting): functions and classes from analyzable files *)
    List.iter
      (fun path ->
        List.iter (register_stmt ctx ~file:path) (Hashtbl.find ctx.parsed path))
      analyzable;
    analyzable
  in
  (match ctx.cache with
  | Some ic when Atomic.get dag_tracking ->
      track_definition_dag ctx ic analyzable
  | _ -> ());
  (* crash barrier: an exception escaping the taint walk poisons only the
     file that triggered it, never the project run *)
  let mark_file_crashed_msg path msg =
    ctx.errors <- ctx.errors + 1;
    Obs.incr "phpsafe.files.crashed";
    match List.assoc_opt path !outcomes with
    | Some (Report.Failed _) -> ()
    | Some Report.Analyzed | None ->
        let outcome = Report.fail (Report.Crashed msg) in
        if List.mem_assoc path !outcomes then
          outcomes :=
            List.map
              (fun (p, o) -> if String.equal p path then (p, outcome) else (p, o))
              !outcomes
        else outcomes := (path, outcome) :: !outcomes
  in
  let mark_file_crashed path exn =
    mark_file_crashed_msg path (Printexc.to_string exn)
  in
  (* per-file result cache key: everything the entry walk can observe —
     the fingerprint (configuration + budget slice), the file itself, and
     the source digest of every file in its include closure (missing
     closure members are part of the key by name, so creating one later
     invalidates).  Calls are assumed to resolve within the closure, as in
     the paper's per-file + includes model. *)
  let unit_key ic path =
    let closure_part =
      if not opts.resolve_includes then [ "no-includes" ]
      else
        match Hashtbl.find_opt closures path with
        | None -> [ "no-closure" ]
        | Some cl ->
            (if cl.Phplang.Project.cl_truncated then "truncated" else "full")
            :: List.map
                 (fun p ->
                   match Phplang.Project.find project p with
                   | Some f ->
                       p ^ "=" ^ Phplang.Digest.hex f.Phplang.Project.source
                   | None -> p ^ "=<missing>")
                 cl.Phplang.Project.cl_paths
    in
    let source =
      match Phplang.Project.find project path with
      | Some f -> Phplang.Digest.hex f.Phplang.Project.source
      | None -> "<missing>"
    in
    Phplang.Digest.combine
      (("unit:" ^ ic.ic_file_fp) :: path :: source :: closure_part)
  in
  let ukeys : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let replayed : (string, file_entry) Hashtbl.t = Hashtbl.create 64 in
  let pendings : (string, pending) Hashtbl.t = Hashtbl.create 64 in
  let findings_delta n0 =
    let rec take k l =
      if k <= 0 then []
      else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
    in
    List.rev (take (List.length ctx.findings - n0) ctx.findings)
  in
  (* stage 3 (§III.C): inter-procedural analysis from each file's "main
     function", then uncalled functions as entry points.  With a cache
     root configured, each file either replays its recorded entry (same
     findings, same outcome, no walk) or is walked live and recorded. *)
  Obs.span "phpsafe.analysis" (fun () ->
      List.iter
        (fun path ->
          (* file boundary: a per-request deadline cancels between files *)
          Deadline.check ();
          let entry =
            match ctx.cache with
            | None -> None
            | Some ic ->
                let key = unit_key ic path in
                Hashtbl.replace ukeys path key;
                (Cache.find ~key : file_entry option)
          in
          match entry with
          | Some e ->
              Obs.incr "cache.result.replayed.phpSAFE";
              Hashtbl.replace replayed path e;
              List.iter (replay_finding ctx) e.ue_findings;
              List.iter (record_so_write ctx) e.ue_so_writes;
              (match e.ue_outcome with
              | Report.Analyzed -> ()
              | Report.Failed _ -> ctx.errors <- ctx.errors + 1);
              outcomes := (path, e.ue_outcome) :: !outcomes
          | None ->
              let n0 =
                if ctx.cache = None then 0 else List.length ctx.findings
              in
              let so0 = ctx.so_writes in
              ctx.include_stack <- S.singleton path;
              let env = Env.create_toplevel ctx.globals in
              let a = { c = ctx; env; frame = None; file = path } in
              (match exec_body a (Hashtbl.find ctx.parsed path) with
              | () -> outcomes := (path, Report.Analyzed) :: !outcomes
              | exception (Deadline.Exceeded as e) -> raise e
              | exception exn -> mark_file_crashed path exn);
              if ctx.cache <> None then
                Hashtbl.replace pendings path
                  {
                    pd_findings = findings_delta n0;
                    pd_outcome =
                      (match List.assoc_opt path !outcomes with
                      | Some o -> o
                      | None -> Report.Analyzed);
                    pd_uncalled = [];
                    pd_so_writes = S.elements (S.diff ctx.so_writes so0);
                  })
        analyzable;
      if opts.analyze_uncalled then begin
        let uncalled =
          Hashtbl.fold
            (fun key fi acc ->
              if Hashtbl.mem ctx.summaries key then acc else (key, fi) :: acc)
            ctx.funcs []
          |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
        in
        let analyze_live fkey fi =
          Deadline.check ();
          let n0 = if ctx.cache = None then 0 else List.length ctx.findings in
          let so0 = ctx.so_writes in
          let crashed =
            match obtain_summary ctx fi with
            | _ -> None
            | exception (Deadline.Exceeded as e) -> raise e
            | exception exn ->
                mark_file_crashed fi.fi_file exn;
                Some (Printexc.to_string exn)
          in
          match Hashtbl.find_opt pendings fi.fi_file with
          | Some pd ->
              pd.pd_uncalled <-
                (fkey,
                 { ur_findings = findings_delta n0;
                   ur_crashed = crashed;
                   ur_so_writes = S.elements (S.diff ctx.so_writes so0) })
                :: pd.pd_uncalled
          | None -> ()
        in
        List.iter
          (fun (fkey, fi) ->
            match Hashtbl.find_opt replayed fi.fi_file with
            | Some e -> (
                match List.assoc_opt fkey e.ue_uncalled with
                | Some ur -> (
                    List.iter (replay_finding ctx) ur.ur_findings;
                    List.iter (record_so_write ctx) ur.ur_so_writes;
                    match ur.ur_crashed with
                    | Some msg -> mark_file_crashed_msg fi.fi_file msg
                    | None -> ())
                | None ->
                    (* recorded as called: its effects replay from the
                       entries of the files that called it *)
                    if not (List.mem fkey e.ue_called) then analyze_live fkey fi)
            | None -> analyze_live fkey fi)
          uncalled
      end);
  (* persist the entries recorded this run *)
  (match ctx.cache with
  | None -> ()
  | Some _ ->
      Hashtbl.iter
        (fun path (pd : pending) ->
          let ue_uncalled = List.rev pd.pd_uncalled in
          let ue_called =
            Hashtbl.fold
              (fun fkey (fi : func_info) acc ->
                if
                  String.equal fi.fi_file path
                  && Hashtbl.mem ctx.summaries fkey
                  && not (List.mem_assoc fkey ue_uncalled)
                then fkey :: acc
                else acc)
              ctx.funcs []
            |> List.sort String.compare
          in
          Cache.store
            ~key:(Hashtbl.find ukeys path)
            {
              ue_findings = pd.pd_findings;
              ue_outcome = pd.pd_outcome;
              ue_called;
              ue_uncalled;
              ue_so_writes = pd.pd_so_writes;
            })
        pendings);
  (* stage 4 (§III.D): results *)
  Obs.span "phpsafe.results" @@ fun () ->
  ( {
      Report.findings = List.rev ctx.findings;
      outcomes = List.rev !outcomes;
      errors = ctx.errors;
      unresolved_includes = S.cardinal !unresolved;
    },
    S.elements ctx.so_writes )

let analyze_project ?opts project = fst (analyze_project_internal ?opts project)

(** Two-phase second-order SQL-injection analysis (E16).  Phase 1 walks the
    project in [So_record] mode, collecting the DB-write keys reached by
    SQL-tainted data; when any were recorded, phase 2 re-walks it in
    [So_replay] mode with matching DB reads acting as tainted sources.  A
    project with no tainted writes gets the single-phase result (and
    cost). *)
let analyze_project_so ?(opts = default_options) (project : Phplang.Project.t)
    : Report.result =
  let r1, keys =
    analyze_project_internal ~opts:{ opts with so_mode = So_record } project
  in
  if keys = [] then r1
  else begin
    Obs.incr "phpsafe.so.replay_runs";
    analyze_project ~opts:{ opts with so_mode = So_replay keys } project
  end
