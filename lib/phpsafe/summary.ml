(** Function summaries (paper §III.C, "Functions summaries — a function is
    parsed only once. The summary of this analysis is reused in subsequent
    calls to determine the effects on the context of the calling code").

    A summary records the taint of the return value — including which formal
    parameters flow into it — and the {e conditional sinks}: sensitive sinks
    inside the function that fire when a given parameter is tainted.
    Unconditional flows (source and sink both inside the function) are
    reported during the single summary analysis itself. *)

open Secflow

type cond_sink = {
  cs_param : int;            (** formal parameter index feeding the sink *)
  cs_kind : Vuln.kind;
  cs_sink_name : string;
  cs_pos : Phplang.Ast.pos;  (** sink location inside the callee *)
  cs_var : string;           (** variable name at the sink *)
  cs_context : Context.t option;
      (** output context inferred at the callee's sink (context pass) *)
  cs_sans : Taint.sans;
      (** sanitizer delta the callee applied on the param-to-sink path;
          replayed on the caller argument's own set when the sink fires *)
}

type t = {
  ret : Taint.t;
      (** return-value taint; its [deps_*] fields name the flow-through
          parameters *)
  cond_sinks : cond_sink list;
}

let empty = { ret = Taint.untainted; cond_sinks = [] }

(* Restrict a taint value to one kind's live component: the concrete flag,
   the parameter dependencies and the provenance, but nothing of the other
   kinds.  Needed because a function may pass a parameter through for one
   vulnerability class while sanitizing another. *)
let restrict_kind = Taint.restrict

(** Instantiate the summary's return taint at a call site: the concrete part
    carries over, and each parameter dependency imports the matching
    argument's component for that kind — including the argument's own
    symbolic dependencies, so flow-through composes across nested calls. *)
let instantiate_return summary (args : Taint.t list) : Taint.t =
  let arg i = List.nth_opt args i |> Option.value ~default:Taint.untainted in
  let import kind deps acc =
    Taint.Int_set.fold
      (fun i acc ->
        let a = restrict_kind kind (arg i) in
        (* replay the callee's sanitizer delta on the imported argument *)
        let a =
          { a with
            Taint.sans =
              Taint.compose_sans ~outer:a.Taint.sans
                ~inner:summary.ret.Taint.sans }
        in
        Taint.join acc a)
      deps acc
  in
  let base = Taint.forget_deps summary.ret in
  let acc =
    List.fold_left
      (fun acc kind -> import kind (Taint.deps kind summary.ret) acc)
      Taint.untainted Vuln.all_kinds
  in
  Taint.join base acc

(** Conditional sinks triggered by a call with argument taints [args]:
    returns the findings to report ([`Fire]) and, when an argument is itself
    parameter-dependent (nested call during an enclosing summary analysis),
    the hoisted conditional sinks to propagate outward ([`Hoist]). *)
let fire_cond_sinks summary (args : Taint.t list) =
  let arg i = List.nth_opt args i |> Option.value ~default:Taint.untainted in
  List.concat_map
    (fun cs ->
      let a = arg cs.cs_param in
      let fire = if Taint.is_tainted cs.cs_kind a then [ `Fire (cs, a) ] else [] in
      let hoist =
        (* the hoisted sink's delta includes what already happened to the
           argument inside this callee's caller *)
        let hoisted_sans =
          Taint.compose_sans ~outer:a.Taint.sans ~inner:cs.cs_sans
        in
        Taint.Int_set.fold
          (fun outer acc ->
            `Hoist { cs with cs_param = outer; cs_sans = hoisted_sans } :: acc)
          (Taint.deps cs.cs_kind a) []
      in
      fire @ hoist)
    summary.cond_sinks
