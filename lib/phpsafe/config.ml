(** phpSAFE configuration stage (paper §III.A).

    The configuration correlates the vulnerability classes with PHP-language
    and CMS-framework functions, organised in the paper's four sections:
    potentially-malicious {e sources}, {e sanitization} functions,
    {e revert} functions (which undo sanitization, e.g. [stripslashes]) and
    sensitive {e output} (sink) functions.  The generic entries mirror the
    paper's [class-vulnerable-input.php] / [class-vulnerable-filter.php] /
    [class-vulnerable_output.php] files, which were themselves "based on the
    default configurations of the RIPS tool". *)

open Secflow

type source_entry = {
  src_name : string;       (** superglobal ("$_GET"), function or method name *)
  src_is_method : bool;    (** matched as [$obj->name(...)] when true *)
  src_kinds : Vuln.kind list;  (** which vulnerabilities it can feed *)
  src_desc : Vuln.source;
}

type sanitizer_entry = {
  san_name : string;
  san_is_method : bool;
  san_kinds : Vuln.kind list;  (** kinds this function neutralises *)
  san_contexts : Context.t list;
      (** output contexts the sanitizer is adequate for; defaults to every
          context of [san_kinds] (the flat, context-free behaviour).  Only
          consulted by the context-inference pass ([--contexts]). *)
}

(** Restriction on the {e statically-known prefix} of the argument a sink
    receives, used to split dual-role sinks such as [file_get_contents]:
    with a constant ["http(s)://"] prefix the call is a remote fetch (SSRF
    target); any other shape — including a bare dynamic argument — is a
    filesystem read (path-traversal target).  [`Any] ignores the shape. *)
type path_shape = [ `Any | `Url_prefix | `Non_url ]

type sink_entry = {
  snk_name : string;       (** "echo" and "print" are language constructs *)
  snk_is_method : bool;
  snk_kind : Vuln.kind;
  snk_when_const : (int * string) option;
      (** fire only when argument [i] is the named PHP constant — e.g.
          [curl_setopt] is an SSRF sink only for [CURLOPT_URL] *)
  snk_path_shape : path_shape;
      (** restriction on the checked argument's static prefix *)
}

(** One database write or read the second-order pass correlates
    ([--second-order]): a write reached by tainted data records its key;
    a read whose key matches a recorded write returns
    {!Vuln.Second_order_sqli}-tainted data in the replay phase. *)
type db_rw_entry = {
  rw_name : string;
  rw_is_method : bool;
  rw_key_arg : int;
      (** argument carrying the table/option name; [-1] = no statically
          attributable key (matches any, recorded as ["*"]) *)
  rw_val_args : int list option;
      (** value arguments whose taint constitutes a tainted write;
          [None] = every argument except the key (writes only) *)
}

type t = {
  name : string;
  superglobal_sources : (string * Vuln.kind list) list;
  function_sources : source_entry list;
  sanitizers : sanitizer_entry list;
  reverts : string list;    (** functions that undo sanitization *)
  sinks : sink_entry list;
  passthrough : string list;
      (** builtins that propagate their (first) argument's taint unchanged:
          [trim], [substr], ... *)
  concat_all_args : string list;
      (** builtins whose result joins the taint of all arguments:
          [sprintf], [implode], [str_replace], ... *)
  db_writes : db_rw_entry list;
      (** persistent-store writes the second-order pass records *)
  db_reads : db_rw_entry list;
      (** persistent-store reads the second-order replay phase taints *)
}

let both = [ Vuln.Xss; Vuln.Sqli ]
let xss = [ Vuln.Xss ]
let sqli = [ Vuln.Sqli ]

(* Direct attacker input can feed every injection family.  Second-order
   SQLi is deliberately absent: its taint exists only in the replay phase,
   introduced at matching database reads, never at ordinary sources. *)
let direct = [ Vuln.Xss; Vuln.Sqli; Vuln.Cmdi; Vuln.Path_traversal; Vuln.Ssrf ]

(* Sanitizers that reduce a value to a number/hash neutralise every
   injection family at once (including replayed second-order taint). *)
let numeric = Vuln.all_kinds

(* An escape-at-write is treated as sanitizing the stored value, so SQL
   string escapes cover the second-order kind too (a documented
   under-approximation: re-expansion after retrieval is not modeled). *)
let sqli_so = [ Vuln.Sqli; Vuln.Second_order_sqli ]

let fn_source ?(is_method = false) name kinds desc =
  { src_name = name; src_is_method = is_method; src_kinds = kinds; src_desc = desc }

let sanitizer ?(is_method = false) ?contexts name kinds =
  let contexts =
    match contexts with Some cs -> cs | None -> Context.all_for_kinds kinds
  in
  { san_name = name; san_is_method = is_method; san_kinds = kinds;
    san_contexts = contexts }

let sink ?(is_method = false) ?when_const ?(shape = `Any) name kind =
  { snk_name = name; snk_is_method = is_method; snk_kind = kind;
    snk_when_const = when_const; snk_path_shape = shape }

let db_rw ?(is_method = false) ?(key_arg = -1) ?val_args name =
  { rw_name = name; rw_is_method = is_method; rw_key_arg = key_arg;
    rw_val_args = val_args }

(* Adequacy matrix for the generic sanitizers (context pass, §VI future
   work).  [htmlspecialchars] without ENT_QUOTES leaves single quotes alone
   and never helps outside quotes, so it covers the HTML body and
   double-quoted attributes only; URL-encoders make any attribute or JS
   string safe but are no HTML-body escape; [addslashes] & co. only matter
   inside a quoted SQL string — a numeric or identifier position ignores
   the added backslashes entirely. *)
let html_text_ctx = [ Context.Html_body; Context.Html_attr_quoted ]
let html_body_ctx = [ Context.Html_body ]

let url_enc_ctx =
  [ Context.Url; Context.Html_attr_quoted; Context.Html_attr_unquoted;
    Context.Js_string ]

let js_ctx = [ Context.Js_string ]
let sql_quoted_ctx = [ Context.Sql_quoted_string ]
let shell_ctx = [ Context.Shell_arg ]
let path_ctx = [ Context.File_path ]
let url_remote_ctx = [ Context.Url_remote ]

(** Generic PHP configuration: detects XSS and SQLi in any PHP code,
    framework-agnostic ("ready for detecting generic XSS and SQLi
    vulnerabilities", §III.A). *)
let generic_php =
  {
    name = "generic-php";
    superglobal_sources =
      [ ("$_GET", direct); ("$_POST", direct); ("$_COOKIE", direct);
        ("$_REQUEST", direct); ("$_FILES", direct); ("$_SERVER", direct) ];
    function_sources =
      [ fn_source "file_get_contents" both (Vuln.File_read "file_get_contents");
        fn_source "fgets" both (Vuln.File_read "fgets");
        fn_source "fread" both (Vuln.File_read "fread");
        fn_source "file" both (Vuln.File_read "file");
        fn_source "fscanf" both (Vuln.File_read "fscanf");
        fn_source "mysql_query" xss (Vuln.Database "mysql_query");
        fn_source "mysql_fetch_assoc" xss (Vuln.Database "mysql_fetch_assoc");
        fn_source "mysql_fetch_array" xss (Vuln.Database "mysql_fetch_array");
        fn_source "mysql_fetch_row" xss (Vuln.Database "mysql_fetch_row");
        fn_source "mysql_fetch_object" xss (Vuln.Database "mysql_fetch_object");
        fn_source "mysql_result" xss (Vuln.Database "mysql_result");
        fn_source "getenv" both (Vuln.Function_return "getenv") ];
    sanitizers =
      [ sanitizer "htmlspecialchars" xss ~contexts:html_text_ctx;
        sanitizer "htmlentities" xss ~contexts:html_text_ctx;
        sanitizer "strip_tags" xss ~contexts:html_body_ctx;
        sanitizer "urlencode" xss ~contexts:url_enc_ctx;
        sanitizer "rawurlencode" xss ~contexts:url_enc_ctx;
        sanitizer "json_encode" xss ~contexts:js_ctx;
        sanitizer "intval" numeric;
        sanitizer "floatval" numeric;
        sanitizer "abs" numeric;
        sanitizer "count" numeric;
        sanitizer "strlen" numeric;
        sanitizer "md5" numeric;
        sanitizer "sha1" numeric;
        sanitizer "crc32" numeric;
        sanitizer "number_format" numeric;
        sanitizer "addslashes" sqli_so ~contexts:sql_quoted_ctx;
        sanitizer "mysql_escape_string" sqli_so ~contexts:sql_quoted_ctx;
        sanitizer "mysql_real_escape_string" sqli_so ~contexts:sql_quoted_ctx;
        sanitizer "escapeshellarg" [ Vuln.Cmdi ] ~contexts:shell_ctx;
        sanitizer "escapeshellcmd" [ Vuln.Cmdi ] ~contexts:shell_ctx;
        sanitizer "basename" [ Vuln.Path_traversal ] ~contexts:path_ctx;
        sanitizer "realpath" [ Vuln.Path_traversal ] ~contexts:path_ctx ];
    reverts =
      [ "stripslashes"; "stripcslashes"; "urldecode"; "rawurldecode";
        "html_entity_decode"; "htmlspecialchars_decode"; "base64_decode" ];
    sinks =
      [ sink "echo" Vuln.Xss;
        sink "print" Vuln.Xss;
        sink "printf" Vuln.Xss;
        sink "print_r" Vuln.Xss;
        sink "vprintf" Vuln.Xss;
        sink "die" Vuln.Xss;
        sink "exit" Vuln.Xss;
        sink "mysql_query" Vuln.Sqli;
        sink "mysql_db_query" Vuln.Sqli;
        sink "mysql_unbuffered_query" Vuln.Sqli;
        sink "system" Vuln.Cmdi;
        sink "exec" Vuln.Cmdi;
        sink "shell_exec" Vuln.Cmdi;
        sink "passthru" Vuln.Cmdi;
        sink "popen" Vuln.Cmdi;
        sink "proc_open" Vuln.Cmdi;
        sink "include" Vuln.Path_traversal;
        sink "fopen" Vuln.Path_traversal ~shape:`Non_url;
        sink "readfile" Vuln.Path_traversal ~shape:`Non_url;
        sink "file_get_contents" Vuln.Path_traversal ~shape:`Non_url;
        sink "file_get_contents" Vuln.Ssrf ~shape:`Url_prefix;
        sink "curl_init" Vuln.Ssrf;
        sink "curl_setopt" Vuln.Ssrf ~when_const:(1, "CURLOPT_URL");
        sink "fsockopen" Vuln.Ssrf ];
    passthrough =
      [ "trim"; "ltrim"; "rtrim"; "substr"; "strtolower"; "strtoupper";
        "ucfirst"; "ucwords"; "nl2br"; "strval"; "stristr"; "strstr";
        "wordwrap"; "chunk_split"; "strrev" ];
    concat_all_args = [ "sprintf"; "vsprintf"; "implode"; "join"; "str_replace"; "preg_replace"; "str_pad" ];
    db_writes = [];
    db_reads = [];
  }

let is_superglobal_source t name = List.assoc_opt name t.superglobal_sources

let find_function_source t name =
  List.find_opt
    (fun e -> (not e.src_is_method) && String.equal e.src_name name)
    t.function_sources

let find_method_source t name =
  List.find_opt
    (fun e -> e.src_is_method && String.equal e.src_name name)
    t.function_sources

let find_sanitizer t name =
  List.find_opt
    (fun e -> (not e.san_is_method) && String.equal e.san_name name)
    t.sanitizers

let find_method_sanitizer t name =
  List.find_opt
    (fun e -> e.san_is_method && String.equal e.san_name name)
    t.sanitizers

let is_revert t name = List.exists (String.equal name) t.reverts

let find_sinks t name =
  List.filter
    (fun e -> (not e.snk_is_method) && String.equal e.snk_name name)
    t.sinks

let find_method_sinks t name =
  List.filter
    (fun e -> e.snk_is_method && String.equal e.snk_name name)
    t.sinks

let is_passthrough t name = List.exists (String.equal name) t.passthrough
let is_concat_all t name = List.exists (String.equal name) t.concat_all_args

let find_db_write t ~is_method name =
  List.find_opt
    (fun e -> e.rw_is_method = is_method && String.equal e.rw_name name)
    t.db_writes

let find_db_read t ~is_method name =
  List.find_opt
    (fun e -> e.rw_is_method = is_method && String.equal e.rw_name name)
    t.db_reads

(** Contexts sanitizer [name] is adequate for, searching function and
    method entries alike (the applied-sanitizer set at a sink only carries
    names).  Unknown names are adequate nowhere. *)
let sanitizer_contexts t name =
  match List.find_opt (fun e -> String.equal e.san_name name) t.sanitizers with
  | Some e -> e.san_contexts
  | None -> []

(** [adequate t ~name ctx]: is sanitizer [name] adequate for output
    context [ctx]? *)
let adequate t ~name ctx =
  List.exists (Context.equal ctx) (sanitizer_contexts t name)

(* Which applied sanitizers each revert function undoes (context pass).
   Decoders undo exactly their encoding family; [base64_decode] (and any
   revert we have no model for) conservatively undoes everything. *)
let slash_escapers =
  [ "addslashes"; "mysql_escape_string"; "mysql_real_escape_string";
    "esc_sql"; "like_escape" ]

let html_escapers =
  [ "htmlspecialchars"; "htmlentities"; "esc_html"; "esc_attr";
    "esc_textarea"; "check_plain" ]

let url_encoders = [ "urlencode"; "rawurlencode"; "esc_url"; "check_url" ]

(** The set of applied sanitizers revert function [name] undoes. *)
let revert_undoes _t name =
  match name with
  | "stripslashes" | "stripcslashes" -> `Named slash_escapers
  | "html_entity_decode" | "htmlspecialchars_decode"
  | "wp_specialchars_decode" | "decode_entities" ->
      `Named html_escapers
  | "urldecode" | "rawurldecode" -> `Named url_encoders
  | _ -> `All

(** Merge an extension profile (e.g. WordPress) into a base configuration —
    "this ability can be easily extended to other CMSs, by adding their
    input, filtering and sink functions to the configuration files". *)
let extend base ext =
  {
    name = base.name ^ "+" ^ ext.name;
    superglobal_sources = base.superglobal_sources @ ext.superglobal_sources;
    function_sources = base.function_sources @ ext.function_sources;
    sanitizers = base.sanitizers @ ext.sanitizers;
    reverts = base.reverts @ ext.reverts;
    sinks = base.sinks @ ext.sinks;
    passthrough = base.passthrough @ ext.passthrough;
    concat_all_args = base.concat_all_args @ ext.concat_all_args;
    db_writes = base.db_writes @ ext.db_writes;
    db_reads = base.db_reads @ ext.db_reads;
  }
