(** Textual configuration format — the same extensibility as the original
    phpSAFE's editable configuration files (§III.A): a line-oriented spec
    that loads into a {!Config.t} and serialises back.  See the
    implementation header for the grammar. *)

exception Spec_error of string * int
(** Parse failure: message and 1-based line number. *)

val of_string : string -> Config.t

val of_string_with_warnings : string -> Config.t * string list
(** Like {!of_string}, but an unknown vulnerability-kind name in a kind
    list is collected as a warning (with its line number) and skipped
    rather than raised — a spec written for a newer kind taxonomy still
    loads, minus the unknown kinds.  Structural errors (unknown directives,
    malformed attributes) still raise {!Spec_error}. *)

val to_string : Config.t -> string
(** A fixpoint of [of_string ∘ to_string] up to the source classes. *)

val validate : Config.t -> string list
(** Sanity-check a profile: human-readable warnings for duplicate entries
    within a section and for names registered both as a source and as a
    sanitizer for the same vulnerability kind.  Empty for a coherent
    profile (all builtin profiles validate cleanly). *)

val load : string -> Config.t
(** Load a spec file from disk. *)

val load_with_warnings : string -> Config.t * string list
(** {!load} with the lenient unknown-kind policy of
    {!of_string_with_warnings}. *)
