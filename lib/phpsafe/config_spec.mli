(** Textual configuration format — the same extensibility as the original
    phpSAFE's editable configuration files (§III.A): a line-oriented spec
    that loads into a {!Config.t} and serialises back.  See the
    implementation header for the grammar. *)

exception Spec_error of string * int
(** Parse failure: message and 1-based line number. *)

val of_string : string -> Config.t
val to_string : Config.t -> string
(** A fixpoint of [of_string ∘ to_string] up to the source classes. *)

val validate : Config.t -> string list
(** Sanity-check a profile: human-readable warnings for duplicate entries
    within a section and for names registered both as a source and as a
    sanitizer for the same vulnerability kind.  Empty for a coherent
    profile (all builtin profiles validate cleanly). *)

val load : string -> Config.t
(** Load a spec file from disk. *)
