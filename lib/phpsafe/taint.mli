(** Taint values for phpSAFE's analysis stage (paper §III.C).

    A value records, per vulnerability kind, whether the data is currently
    attacker-controlled, which formal parameters it depends on (for the
    summary analysis), and — in the [was] fields — what sanitization could
    be undone by a {e revert} function such as [stripslashes] (§III.A).

    Per-kind state is a map indexed by {!Secflow.Vuln.kind}; all operations
    keep it canonical (no clean components, no empty sanitizer sets), so
    structural map equality is a sound convergence test. *)

open Secflow

module Int_set : Set.S with type elt = int
module San_set : Set.S with type elt = string
module Kmap : Map.S with type key = Vuln.kind

(** One vulnerability kind's component of a taint value. *)
type comp = {
  live : bool;            (** currently attacker-controlled *)
  was : bool;             (** tainted before sanitization (revertible) *)
  deps : Int_set.t;       (** parameter indices whose taint reaches here *)
  was_deps : Int_set.t;   (** dependencies neutralised by a sanitizer *)
}

(** Sanitizer-set tracking for the context-inference pass ([--contexts]):
    which sanitizers the value passed through per kind, plus the delta
    information ([undone]/[undone_all]) needed to replay revert effects on
    caller arguments across function-summary boundaries. *)
type sans = {
  applied : San_set.t Kmap.t;  (** per-kind sanitizers passed through *)
  undone : San_set.t;          (** sanitizer names undone by a revert *)
  undone_all : bool;           (** a revert with unknown scope undid them all *)
}

val no_sans : sans

type t = {
  comps : comp Kmap.t;       (** per-kind taint components; canonical *)
  sans : sans;               (** sanitizer set (context pass only) *)
  source : (Vuln.source * Phplang.Ast.pos) option;
  trace : Report.step list;  (** most recent first; bounded *)
  trace_truncated : bool;    (** [trace] hit {!max_trace_len}; steps dropped *)
}

val max_trace_len : int

val untainted : t

val of_source :
  kinds:Vuln.kind list -> source:Vuln.source -> pos:Phplang.Ast.pos -> t
(** Fresh taint from a configured source. *)

val of_param : int -> t
(** Symbolic taint of formal parameter [i] during summary analysis; the
    value depends on the parameter for every kind. *)

val comp : Vuln.kind -> t -> comp
(** [kind]'s component (all-clean when absent from the map). *)

val is_tainted : Vuln.kind -> t -> bool
val deps : Vuln.kind -> t -> Int_set.t
val was : Vuln.kind -> t -> bool
val has_deps : t -> bool
val any_tainted : t -> bool

val any_was : t -> bool
(** Some kind was sanitized away (and could be reverted). *)

val interesting : t -> bool
(** Live taint or parameter dependencies — worth tracing. *)

val join : t -> t -> t
(** Least upper bound; keeps the first available source and the trace of the
    "more tainted" operand. *)

val join_all : t list -> t

val equal_sans : sans -> sans -> bool

val equal_modulo_trace : t -> t -> bool
(** Structural equality ignoring the provenance fields ([source], [trace],
    [trace_truncated]) — the flow-sensitive fixpoint's convergence test. *)

val sanitize : Vuln.kind -> t -> t
(** Neutralise one kind, remembering the prior state for reverts. *)

val sanitize_kinds : Vuln.kind list -> t -> t

val revert : t -> t
(** Revert-function semantics: whatever was sanitized becomes live again. *)

val scrub : t -> t
(** Numeric/boolean results carry no taint at all. *)

val restrict : Vuln.kind -> t -> t
(** Keep only [kind]'s live component (flag, dependencies, provenance);
    the sanitizer set is kept whole. *)

val forget_deps : t -> t
(** Drop every parameter dependency while keeping concrete taint — the base
    of a summary's return-value instantiation. *)

val relevant : Vuln.kind -> t -> bool
(** [kind]'s component is live or parameter-dependent — its sanitizer set
    means something. *)

val applied : Vuln.kind -> t -> San_set.t
(** Sanitizers the value passed through for [kind]. *)

val record_sanitizer : name:string -> Vuln.kind list -> t -> t
(** Context-mode sanitizer call: add [name] to the applied set per kind,
    keeping the live taint bits (adequacy is decided at the sink). *)

val revert_named : undoes:[ `All | `Named of string list ] -> t -> t
(** Context-mode revert call: remove exactly the named sanitizers from the
    applied sets (or all of them for [`All]), remembering what was undone
    for {!compose_sans}. *)

val compose_sans : outer:sans -> inner:sans -> sans
(** Replay the callee delta [inner] on top of the caller argument's [outer]
    sanitizer state: reverts strip first, then the callee's own
    applications are added. *)

val push_step : var:string -> pos:Phplang.Ast.pos -> note:string -> t -> t
(** Append a data-flow hop to the trace (bounded by {!max_trace_len});
    sets [trace_truncated] instead of silently dropping at the cap. *)

val source_of : t -> Vuln.source * Phplang.Ast.pos
(** The recorded source, or [Unknown_source] with a dummy position. *)

val pp : Format.formatter -> t -> unit
