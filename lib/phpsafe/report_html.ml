(** HTML rendering of analysis results.

    The original phpSAFE "has a web interface ... the output of the analysis
    is presented in a web page that helps reviewing the results, including
    the vulnerable variables, the entry point of the vulnerability in the
    source code PHP file, the flow of the vulnerable data from variable to
    variable" (§III).  This module renders a {!Secflow.Report.result} as a
    self-contained HTML page with the same review aids. *)

open Secflow

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {css|
  body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  .finding { border: 1px solid #ccc; border-left: 6px solid #c0392b;
             border-radius: 4px; padding: .7em 1em; margin: 1em 0; }
  .finding.sqli { border-left-color: #8e44ad; }
  .finding.cmdi { border-left-color: #1a5276; }
  .finding.lfi { border-left-color: #117864; }
  .finding.ssrf { border-left-color: #b9770e; }
  .finding.so-sqli { border-left-color: #6c3483; }
  .kind { font-weight: bold; color: #c0392b; }
  .finding.sqli .kind { color: #8e44ad; }
  .finding.cmdi .kind { color: #1a5276; }
  .finding.lfi .kind { color: #117864; }
  .finding.ssrf .kind { color: #b9770e; }
  .finding.so-sqli .kind { color: #6c3483; }
  .loc { color: #555; font-family: monospace; }
  .flow { margin: .5em 0 0 1em; font-family: monospace; font-size: .92em; }
  .flow li { margin: .15em 0; }
  .failed { color: #b9770e; }
  .summary { background: #f4f6f7; padding: .6em 1em; border-radius: 4px; }
  code { background: #f4f6f7; padding: 0 .25em; border-radius: 3px; }
|css}

let render_finding buf (f : Report.finding) =
  let kind_class = Vuln.kind_spec_name f.Report.kind in
  Buffer.add_string buf (Printf.sprintf "<div class=\"finding %s\">\n" kind_class);
  Buffer.add_string buf
    (Printf.sprintf
       "<span class=\"kind\">%s</span> in <span class=\"loc\">%s:%d</span> \
        &mdash; sink <code>%s</code>, variable <code>%s</code>\n"
       (Vuln.kind_to_string f.Report.kind)
       (escape_html f.Report.sink_pos.Phplang.Ast.file)
       f.Report.sink_pos.Phplang.Ast.line
       (escape_html f.Report.sink)
       (escape_html f.Report.variable));
  Buffer.add_string buf
    (Printf.sprintf
       "<div>entry point: <code>%s</code> at <span class=\"loc\">%s:%d</span></div>\n"
       (escape_html (Vuln.source_to_string f.Report.source))
       (escape_html f.Report.source_pos.Phplang.Ast.file)
       f.Report.source_pos.Phplang.Ast.line);
  (match f.Report.context with
  | Some c ->
      Buffer.add_string buf
        (Printf.sprintf
           "<div>sink context: <code class=\"context\">%s</code></div>\n"
           (escape_html (Context.to_string c)))
  | None -> ());
  (match f.Report.sanitizers_applied with
  | [] -> ()
  | sans ->
      Buffer.add_string buf
        (Printf.sprintf
           "<div>sanitizers applied (inadequate for this context): %s</div>\n"
           (String.concat ", "
              (List.map
                 (fun s -> Printf.sprintf "<code>%s</code>" (escape_html s))
                 sans))));
  (match f.Report.trace with
  | [] -> ()
  | trace ->
      Buffer.add_string buf "<div>data flow:</div>\n<ol class=\"flow\">\n";
      List.iter
        (fun (s : Report.step) ->
          Buffer.add_string buf
            (Printf.sprintf "<li><code>%s</code> @ %s:%d &mdash; %s</li>\n"
               (escape_html s.Report.step_var)
               (escape_html s.Report.step_pos.Phplang.Ast.file)
               s.Report.step_pos.Phplang.Ast.line
               (escape_html s.Report.step_note)))
        trace;
      if f.Report.trace_truncated then
        Buffer.add_string buf
          "<li class=\"truncated\"><em>&hellip; flow continues; later steps \
           dropped at the analyzer's step cap</em></li>\n";
      Buffer.add_string buf "</ol>\n");
  Buffer.add_string buf "</div>\n"

(** Render a full analysis result as a standalone HTML page. *)
let render ?(title = "phpSAFE analysis report") (result : Report.result) :
    string =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">";
  Buffer.add_string buf
    (Printf.sprintf "<title>%s</title><style>%s</style></head>\n<body>\n"
       (escape_html title) style);
  Buffer.add_string buf (Printf.sprintf "<h1>%s</h1>\n" (escape_html title));
  let counts =
    List.filter_map
      (fun k ->
        match
          List.length
            (List.filter
               (fun (f : Report.finding) -> Vuln.equal_kind f.Report.kind k)
               result.Report.findings)
        with
        | 0 -> None
        | n -> Some (Printf.sprintf "<b>%d %s</b>" n (Vuln.kind_to_string k)))
      Vuln.all_kinds
  in
  Buffer.add_string buf
    (Printf.sprintf
       "<p class=\"summary\">%d file(s) processed &mdash; %s finding(s)%s.</p>\n"
       (List.length result.Report.outcomes)
       (match counts with [] -> "no" | cs -> String.concat ", " cs)
       (match Report.failed_files result with
       | [] -> ""
       | fs -> Printf.sprintf ", %d file(s) not analyzed" (List.length fs)));
  (match Report.failed_files result with
  | [] -> ()
  | failed ->
      Buffer.add_string buf "<h2>Files not analyzed</h2>\n<ul>\n";
      List.iter
        (fun path ->
          Buffer.add_string buf
            (Printf.sprintf "<li class=\"failed\"><code>%s</code></li>\n"
               (escape_html path)))
        failed;
      Buffer.add_string buf "</ul>\n");
  if result.Report.findings = [] then
    Buffer.add_string buf "<p>No vulnerabilities detected.</p>\n"
  else begin
    Buffer.add_string buf "<h2>Findings</h2>\n";
    List.iter (render_finding buf) result.Report.findings
  end;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
