(** Drupal 7 extension profile — the paper's future work (§VI), built the
    same way as the WordPress profile: the framework's input, filtering and
    output functions are added to the configuration (§III.A).

    Covers the Drupal 7 module idioms: [db_query]/[db_fetch_*] database
    access, [check_plain]/[filter_xss]/[check_url] output filtering and
    [drupal_set_message]-style output. *)

open Secflow

let profile : Config.t =
  {
    Config.name = "drupal";
    superglobal_sources = [];
    function_sources =
      [ Config.fn_source "db_query" [ Vuln.Xss ] (Vuln.Database "db_query");
        Config.fn_source "db_fetch_object" [ Vuln.Xss ]
          (Vuln.Database "db_fetch_object");
        Config.fn_source "db_fetch_array" [ Vuln.Xss ]
          (Vuln.Database "db_fetch_array");
        Config.fn_source ~is_method:true "fetchField" [ Vuln.Xss ]
          (Vuln.Database "$result->fetchField");
        Config.fn_source ~is_method:true "fetchAssoc" [ Vuln.Xss ]
          (Vuln.Database "$result->fetchAssoc");
        Config.fn_source "variable_get" [ Vuln.Xss ]
          (Vuln.Database "variable_get") ];
    sanitizers =
      [ Config.sanitizer "check_plain" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body; Context.Html_attr_quoted ];
        Config.sanitizer "filter_xss" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "filter_xss_admin" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "check_url" [ Vuln.Xss ]
          ~contexts:
            [ Context.Url; Context.Html_attr_quoted; Context.Html_body ];
        Config.sanitizer "check_markup" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        (* escapes a table/column name — the one identifier-safe escape *)
        Config.sanitizer "db_escape_table" [ Vuln.Sqli ]
          ~contexts:[ Context.Sql_identifier ] ];
    reverts = [ "decode_entities" ];
    sinks =
      [ Config.sink "db_query" Vuln.Sqli;
        Config.sink "db_query_range" Vuln.Sqli;
        Config.sink "drupal_set_message" Vuln.Xss;
        Config.sink "drupal_set_title" Vuln.Xss ];
    passthrough = [ "t" ];
    concat_all_args = [ "format_string" ];
    db_writes =
      [ (* persistent variable store: name, value *)
        Config.db_rw ~key_arg:0 ~val_args:[ 1 ] "variable_set" ];
    db_reads =
      [ Config.db_rw ~key_arg:0 "variable_get";
        Config.db_rw "db_query";
        Config.db_rw "db_fetch_object";
        Config.db_rw "db_fetch_array" ];
  }

(** Generic PHP plus the Drupal profile. *)
let default_config = Config.extend Config.generic_php profile
