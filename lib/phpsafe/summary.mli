(** Function summaries (paper §III.C: "a function is parsed only once; the
    summary of this analysis is reused in subsequent calls"). *)

open Secflow

type cond_sink = {
  cs_param : int;            (** formal parameter index feeding the sink *)
  cs_kind : Vuln.kind;
  cs_sink_name : string;
  cs_pos : Phplang.Ast.pos;  (** sink location inside the callee *)
  cs_var : string;           (** variable name at the sink *)
  cs_context : Context.t option;
      (** output context inferred at the callee's sink (context pass) *)
  cs_sans : Taint.sans;
      (** sanitizer delta the callee applied on the param-to-sink path *)
}

type t = {
  ret : Taint.t;
      (** return-value taint; its [deps_*] fields name the flow-through
          parameters *)
  cond_sinks : cond_sink list;
}

val empty : t

val restrict_kind : Vuln.kind -> Taint.t -> Taint.t
(** One kind's live component of a taint value (flag, dependencies,
    provenance) with the other kind removed. *)

val instantiate_return : t -> Taint.t list -> Taint.t
(** Apply a summary's return taint to concrete argument taints; argument
    dependencies are propagated so flow-through composes across nested
    calls. *)

val fire_cond_sinks :
  t ->
  Taint.t list ->
  [ `Fire of cond_sink * Taint.t | `Hoist of cond_sink ] list
(** Conditional sinks triggered by a call: [`Fire] for live argument taint
    (report now), [`Hoist] when the argument is itself parameter-dependent
    (propagate into the enclosing summary). *)
