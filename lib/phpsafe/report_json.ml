(** JSON rendering of analysis results, for machine consumption — the
    paper's integration story (§III: phpSAFE "can be tuned to produce and
    store the results in other formats or distribute them over the
    network").

    The layout loosely follows SARIF's run/result/location nesting while
    staying dependency-free. *)

open Secflow

(* -- minimal JSON writer -------------------------------------------- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_string of string
  | J_int of int
  | J_bool of bool
  | J_list of json list
  | J_obj of (string * json) list

let rec write buf = function
  | J_string s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_json s);
      Buffer.add_char buf '"'
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_bool b -> Buffer.add_string buf (if b then "true" else "false")
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (J_string k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  write buf j;
  Buffer.contents buf

(* -- result encoding ------------------------------------------------- *)

let of_pos (p : Phplang.Ast.pos) =
  J_obj [ ("file", J_string p.Phplang.Ast.file); ("line", J_int p.Phplang.Ast.line) ]

let of_step (s : Report.step) =
  J_obj
    [ ("variable", J_string s.Report.step_var);
      ("location", of_pos s.Report.step_pos);
      ("note", J_string s.Report.step_note) ]

let of_finding (f : Report.finding) =
  let context_fields =
    match f.Report.context with
    | Some c -> [ ("context", J_string (Context.to_string c)) ]
    | None -> []
  in
  J_obj
    ([ ("kind", J_string (Vuln.kind_to_string f.Report.kind));
       ("sink", J_string f.Report.sink);
       ("variable", J_string f.Report.variable);
       ("location", of_pos f.Report.sink_pos);
       ("source", J_string (Vuln.source_to_string f.Report.source));
       ("sourceLocation", of_pos f.Report.source_pos);
       ("vector",
        J_string (Vuln.vector_to_string (Vuln.vector_of_source f.Report.source))) ]
    @ context_fields
    @ [ ("sanitizersApplied",
         J_list (List.map (fun s -> J_string s) f.Report.sanitizers_applied));
        ("dataFlow", J_list (List.map of_step f.Report.trace));
        ("dataFlowTruncated", J_bool f.Report.trace_truncated) ])

let of_outcome (path, outcome) =
  let status, detail =
    match outcome with
    | Report.Analyzed -> ("analyzed", "")
    | Report.Failed Report.Out_of_memory ->
        ("failed", "include closure exceeds memory budget")
    | Report.Failed (Report.Unsupported_syntax what) -> ("failed", what)
    | Report.Failed (Report.Parse_failure msg) -> ("failed", msg)
    | Report.Failed (Report.Crashed msg) -> ("crashed", msg)
    | Report.Failed (Report.Budget_exhausted msg) -> ("budget-exhausted", msg)
  in
  J_obj
    [ ("file", J_string path); ("status", J_string status);
      ("detail", J_string detail) ]

(** Encode a result as a JSON document. *)
let encode ?(tool = "phpSAFE") (result : Report.result) : json =
  let xss, sqli =
    List.partition
      (fun (f : Report.finding) -> f.Report.kind = Vuln.Xss)
      result.Report.findings
  in
  J_obj
    [ ("tool", J_string tool);
      ("schema", J_string "phpsafe-report/1");
      ("summary",
       J_obj
         [ ("files", J_int (List.length result.Report.outcomes));
           ("failedFiles", J_int (List.length (Report.failed_files result)));
           ("xss", J_int (List.length xss));
           ("sqli", J_int (List.length sqli));
           ("errors", J_int result.Report.errors) ]);
      ("findings", J_list (List.map of_finding result.Report.findings));
      ("files", J_list (List.map of_outcome result.Report.outcomes)) ]

(** Render a result as a JSON string. *)
let render ?tool result = to_string (encode ?tool result)
