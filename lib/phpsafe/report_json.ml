(** JSON rendering of analysis results, for machine consumption — the
    paper's integration story (§III: phpSAFE "can be tuned to produce and
    store the results in other formats or distribute them over the
    network").

    The encoder itself now lives in {!Secflow.Report.to_json} so the CLI's
    [--format json] output and the [phpsafe_serve] daemon's scan replies
    share one verbatim encoding; this module remains as the phpSAFE-facing
    entry point. *)

(** Render a result as a JSON string (schema [phpsafe-report/1]). *)
let render ?tool result = Secflow.Report.to_json ?tool result
