(** Public API of the phpSAFE analyzer.

    Mirrors the paper's integration story (§III): "its functions become
    accessible through the instantiation of a single PHP class called
    PHP-SAFE, which receives as input the PHP file to be analyzed and
    delivers the results in the properties of the object". Here the entry
    points take a source string or a {!Phplang.Project.t} and return a
    {!Secflow.Report.result}. *)

module Config = Config
module Wordpress = Wordpress
module Taint = Taint
module Env = Env
module Summary = Summary
module Analyzer = Analyzer

type so_mode = Analyzer.so_mode = So_off | So_record | So_replay of string list

type options = Analyzer.options = {
  config : Config.t;
  budget : Analyzer.budget option;
  analyze_uncalled : bool;
  resolve_includes : bool;
  respect_guards : bool;
  infer_contexts : bool;
  flow_sensitive : bool;
  so_mode : so_mode;
  restrict_kinds : Secflow.Vuln.kind list option;
}

let default_options = Analyzer.default_options

(** Analyze a whole plugin project (stages 1–4 of §III). *)
let analyze_project ?opts project = Analyzer.analyze_project ?opts project

(** Two-phase second-order SQLi analysis (record DB writes, replay reads). *)
let analyze_project_so ?opts project = Analyzer.analyze_project_so ?opts project

(** Analyze a single PHP source string as a one-file project. *)
let analyze_source ?opts ~file source =
  let project =
    Phplang.Project.make ~name:file [ { Phplang.Project.path = file; source } ]
  in
  analyze_project ?opts project

(** The {!Secflow.Tool.t} facade used by the evaluation harness. *)
let tool : Secflow.Tool.t =
  {
    Secflow.Tool.name = "phpSAFE";
    analyze_project = (fun p -> analyze_project p);
  }

module Joomla = Joomla
module Drupal = Drupal
module Report_html = Report_html
module Report_json = Report_json
module Config_spec = Config_spec
module Stats = Stats
