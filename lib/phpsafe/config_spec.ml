(** Textual configuration format.

    The original phpSAFE keeps its knowledge in editable configuration files
    ([class-vulnerable-input.php], [class-vulnerable-filter.php],
    [class-vulnerable_output.php], §III.A) so that "data for other CMSs can
    be easily added to the configuration" without touching the tool.  This
    module provides the same extensibility: a line-oriented spec that loads
    into a {!Config.t} and serialises back.

    Grammar (one directive per line, [#] comments):
    {v
    profile <name>
    source superglobal <$NAME> <kinds>
    source function <name> <db|file|fn> <kinds>
    source method <name> <db|file|fn> <kinds>
    sanitizer function <name> <kinds> [ctx=<contexts>]
    sanitizer method <name> <kinds> [ctx=<contexts>]
    revert <name>
    sink construct|function <name> <xss|sqli>
    sink method <name> <xss|sqli>
    passthrough <name>
    concat <name>
    v}
    where [<kinds>] is a comma-separated subset of [xss,sqli] and the
    optional [ctx=<contexts>] narrows a sanitizer's adequacy to a
    comma-separated list of output contexts ([html-body],
    [sql-quoted-string], ... — see {!Secflow.Context}); without it the
    sanitizer is adequate in every context of its kinds. *)

open Secflow

exception Spec_error of string * int  (** message, 1-based line *)

let fail line msg = raise (Spec_error (msg, line))

let parse_kinds line s =
  String.split_on_char ',' s
  |> List.map (fun k ->
         match String.trim (String.lowercase_ascii k) with
         | "xss" -> Vuln.Xss
         | "sqli" -> Vuln.Sqli
         | other -> fail line (Printf.sprintf "unknown kind %S" other))

let kinds_to_string kinds =
  String.concat "," (List.map (fun k -> String.lowercase_ascii (Vuln.kind_to_string k)) kinds)

let parse_kind line s =
  match parse_kinds line s with
  | [ k ] -> k
  | _ -> fail line "expected exactly one kind"

let parse_contexts line s =
  String.split_on_char ',' s
  |> List.map (fun c ->
         let c = String.trim (String.lowercase_ascii c) in
         match
           List.find_opt (fun ctx -> String.equal (Context.to_string ctx) c)
             Context.all
         with
         | Some ctx -> ctx
         | None -> fail line (Printf.sprintf "unknown context %S" c))

let contexts_to_string cs = String.concat "," (List.map Context.to_string cs)

let source_desc line cls name =
  match cls with
  | "db" -> Vuln.Database name
  | "file" -> Vuln.File_read name
  | "fn" -> Vuln.Function_return name
  | other -> fail line (Printf.sprintf "unknown source class %S (db|file|fn)" other)

let desc_class = function
  | Vuln.Database _ -> "db"
  | Vuln.File_read _ -> "file"
  | Vuln.Function_return _ | Vuln.Superglobal _ | Vuln.Uninitialized _
  | Vuln.Unknown_source ->
      "fn"

(** Parse a spec into a configuration. *)
let of_string spec : Config.t =
  let empty =
    {
      Config.name = "spec";
      superglobal_sources = [];
      function_sources = [];
      sanitizers = [];
      reverts = [];
      sinks = [];
      passthrough = [];
      concat_all_args = [];
    }
  in
  let lines = String.split_on_char '\n' spec in
  let config = ref empty in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some at -> String.sub raw 0 at
        | None -> raw
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      let c = !config in
      match words with
      | [] -> ()
      | [ "profile"; name ] -> config := { c with Config.name }
      | [ "source"; "superglobal"; name; kinds ] ->
          config :=
            { c with
              Config.superglobal_sources =
                c.Config.superglobal_sources @ [ (name, parse_kinds line_no kinds) ] }
      | [ "source"; place; name; cls; kinds ] ->
          let is_method =
            match place with
            | "function" -> false
            | "method" -> true
            | other -> fail line_no (Printf.sprintf "unknown source place %S" other)
          in
          let entry =
            Config.fn_source ~is_method name (parse_kinds line_no kinds)
              (source_desc line_no cls name)
          in
          config :=
            { c with Config.function_sources = c.Config.function_sources @ [ entry ] }
      | "sanitizer" :: place :: name :: kinds :: rest ->
          let is_method =
            match place with
            | "function" -> false
            | "method" -> true
            | other -> fail line_no (Printf.sprintf "unknown sanitizer place %S" other)
          in
          let contexts =
            match rest with
            | [] -> None
            | [ ctx ] when String.length ctx > 4 && String.sub ctx 0 4 = "ctx="
              ->
                Some
                  (parse_contexts line_no
                     (String.sub ctx 4 (String.length ctx - 4)))
            | _ -> fail line_no "expected [ctx=<contexts>] after the kinds"
          in
          config :=
            { c with
              Config.sanitizers =
                c.Config.sanitizers
                @ [ Config.sanitizer ~is_method ?contexts name
                      (parse_kinds line_no kinds) ] }
      | [ "revert"; name ] ->
          config := { c with Config.reverts = c.Config.reverts @ [ name ] }
      | [ "sink"; place; name; kind ] ->
          let is_method =
            match place with
            | "construct" | "function" -> false
            | "method" -> true
            | other -> fail line_no (Printf.sprintf "unknown sink place %S" other)
          in
          config :=
            { c with
              Config.sinks =
                c.Config.sinks
                @ [ Config.sink ~is_method name (parse_kind line_no kind) ] }
      | [ "passthrough"; name ] ->
          config := { c with Config.passthrough = c.Config.passthrough @ [ name ] }
      | [ "concat"; name ] ->
          config :=
            { c with Config.concat_all_args = c.Config.concat_all_args @ [ name ] }
      | w :: _ -> fail line_no (Printf.sprintf "unknown directive %S" w))
    lines;
  !config

(** Serialise a configuration back to the spec format; a fixpoint of
    {!of_string} ∘ [to_string] up to the [db|file|fn] source classes. *)
let to_string (c : Config.t) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "profile %s" c.Config.name;
  List.iter
    (fun (name, kinds) ->
      line "source superglobal %s %s" name (kinds_to_string kinds))
    c.Config.superglobal_sources;
  List.iter
    (fun (e : Config.source_entry) ->
      line "source %s %s %s %s"
        (if e.Config.src_is_method then "method" else "function")
        e.Config.src_name
        (desc_class e.Config.src_desc)
        (kinds_to_string e.Config.src_kinds))
    c.Config.function_sources;
  List.iter
    (fun (e : Config.sanitizer_entry) ->
      let default_ctx = Context.all_for_kinds e.Config.san_kinds in
      let ctx_suffix =
        (* only spell out a narrowed adequacy; the default is implied *)
        if
          List.sort compare e.Config.san_contexts
          = List.sort compare default_ctx
        then ""
        else " ctx=" ^ contexts_to_string e.Config.san_contexts
      in
      line "sanitizer %s %s %s%s"
        (if e.Config.san_is_method then "method" else "function")
        e.Config.san_name
        (kinds_to_string e.Config.san_kinds)
        ctx_suffix)
    c.Config.sanitizers;
  List.iter (fun name -> line "revert %s" name) c.Config.reverts;
  List.iter
    (fun (e : Config.sink_entry) ->
      line "sink %s %s %s"
        (if e.Config.snk_is_method then "method" else "function")
        e.Config.snk_name
        (String.lowercase_ascii (Vuln.kind_to_string e.Config.snk_kind)))
    c.Config.sinks;
  List.iter (fun name -> line "passthrough %s" name) c.Config.passthrough;
  List.iter (fun name -> line "concat %s" name) c.Config.concat_all_args;
  Buffer.contents buf

(* -- profile validation --------------------------------------------------- *)

let place is_method = if is_method then "method" else "function"

let dups to_name entries =
  let tbl = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let n = to_name e in
      if Hashtbl.mem tbl n then Some n
      else begin
        Hashtbl.add tbl n ();
        None
      end)
    entries

(** Sanity-check a profile and return a list of human-readable warnings:
    duplicate entries within a section, and names registered both as a
    source and as a sanitizer for the same vulnerability kind (one of the
    two is certainly a configuration mistake — the analyzer would both
    taint and clear at the same call).  An empty list means the profile is
    coherent; the builtin profiles all are. *)
let validate (c : Config.t) : string list =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  List.iter
    (fun n -> warn "duplicate superglobal source %s" n)
    (dups fst c.Config.superglobal_sources);
  List.iter
    (fun (p, n) -> warn "duplicate %s source %s" p n)
    (dups
       (fun (e : Config.source_entry) ->
         (place e.Config.src_is_method, e.Config.src_name))
       c.Config.function_sources);
  List.iter
    (fun (p, n) -> warn "duplicate %s sanitizer %s" p n)
    (dups
       (fun (e : Config.sanitizer_entry) ->
         (place e.Config.san_is_method, e.Config.san_name))
       c.Config.sanitizers);
  List.iter (fun n -> warn "duplicate revert %s" n) (dups Fun.id c.Config.reverts);
  List.iter
    (fun (p, n, k) ->
      warn "duplicate %s sink %s (%s)" p n (Vuln.kind_to_string k))
    (dups
       (fun (e : Config.sink_entry) ->
         (place e.Config.snk_is_method, e.Config.snk_name, e.Config.snk_kind))
       c.Config.sinks);
  List.iter
    (fun n -> warn "duplicate passthrough %s" n)
    (dups Fun.id c.Config.passthrough);
  List.iter
    (fun n -> warn "duplicate concat %s" n)
    (dups Fun.id c.Config.concat_all_args);
  (* a name that both introduces and clears the same kind of taint *)
  List.iter
    (fun (s : Config.source_entry) ->
      List.iter
        (fun (san : Config.sanitizer_entry) ->
          if
            String.equal s.Config.src_name san.Config.san_name
            && Bool.equal s.Config.src_is_method san.Config.san_is_method
          then
            List.iter
              (fun k ->
                if List.exists (Vuln.equal_kind k) san.Config.san_kinds then
                  warn "%s %s is both a source and a sanitizer for %s"
                    (place s.Config.src_is_method)
                    s.Config.src_name (Vuln.kind_to_string k))
              s.Config.src_kinds)
        c.Config.sanitizers)
    c.Config.function_sources;
  List.rev !warnings

(** Load a spec file from disk. *)
let load path : Config.t =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string content
