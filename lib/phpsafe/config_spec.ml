(** Textual configuration format.

    The original phpSAFE keeps its knowledge in editable configuration files
    ([class-vulnerable-input.php], [class-vulnerable-filter.php],
    [class-vulnerable_output.php], §III.A) so that "data for other CMSs can
    be easily added to the configuration" without touching the tool.  This
    module provides the same extensibility: a line-oriented spec that loads
    into a {!Config.t} and serialises back.

    Grammar (one directive per line, [#] comments):
    {v
    profile <name>
    source superglobal <$NAME> <kinds>
    source function <name> <db|file|fn> <kinds>
    source method <name> <db|file|fn> <kinds>
    sanitizer function <name> <kinds> [ctx=<contexts>]
    sanitizer method <name> <kinds> [ctx=<contexts>]
    revert <name>
    sink construct|function <name> <kind> [when=<idx>:<CONST>] [shape=url|nonurl]
    sink method <name> <kind> [when=<idx>:<CONST>] [shape=url|nonurl]
    passthrough <name>
    concat <name>
    dbwrite function|method <name> [key=<idx>] [vals=<idx,...>]
    dbread function|method <name> [key=<idx>]
    v}
    where [<kinds>] is a comma-separated subset of the vulnerability-kind
    names [xss,sqli,cmdi,lfi,ssrf,so-sqli] (with the aliases
    [path-traversal] for [lfi] and [second-order-sqli] for [so-sqli]) and
    the optional [ctx=<contexts>] narrows a sanitizer's adequacy to a
    comma-separated list of output contexts ([html-body],
    [sql-quoted-string], ... — see {!Secflow.Context}); without it the
    sanitizer is adequate in every context of its kinds.

    Sink attributes: [when=<idx>:<CONST>] restricts the sink to calls whose
    argument [<idx>] (0-based) is the bare constant [<CONST>]
    ([curl_setopt] with [CURLOPT_URL]); [shape=url] fires only when the
    checked argument's constant prefix is an [http(s)://] URL, [shape=nonurl]
    only when it is not — the split that separates the SSRF and LFI
    readings of [file_get_contents].

    [dbwrite]/[dbread] declare the persistent-storage endpoints of the
    second-order SQLi analysis: [key=<idx>] names the 0-based argument
    holding the storage key (omitted = the key is never statically known);
    [vals=<idx,...>] lists the value arguments a write stores (omitted =
    every argument except the key). *)

open Secflow

exception Spec_error of string * int  (** message, 1-based line *)

let fail line msg = raise (Spec_error (msg, line))

(* [on_unknown] decides the policy for a kind name outside the taxonomy:
   the strict parser raises, the lenient one records a warning and drops
   the kind. *)
let parse_kinds ~on_unknown line s =
  String.split_on_char ',' s
  |> List.filter_map (fun k ->
         let k = String.trim (String.lowercase_ascii k) in
         match Vuln.kind_of_spec_name k with
         | Some kind -> Some kind
         | None ->
             on_unknown line k;
             None)

let kinds_to_string kinds =
  String.concat "," (List.map Vuln.kind_spec_name kinds)

let parse_contexts line s =
  String.split_on_char ',' s
  |> List.map (fun c ->
         let c = String.trim (String.lowercase_ascii c) in
         match
           List.find_opt (fun ctx -> String.equal (Context.to_string ctx) c)
             Context.all
         with
         | Some ctx -> ctx
         | None -> fail line (Printf.sprintf "unknown context %S" c))

let contexts_to_string cs = String.concat "," (List.map Context.to_string cs)

let source_desc line cls name =
  match cls with
  | "db" -> Vuln.Database name
  | "file" -> Vuln.File_read name
  | "fn" -> Vuln.Function_return name
  | other -> fail line (Printf.sprintf "unknown source class %S (db|file|fn)" other)

let desc_class = function
  | Vuln.Database _ -> "db"
  | Vuln.File_read _ -> "file"
  | Vuln.Function_return _ | Vuln.Superglobal _ | Vuln.Uninitialized _
  | Vuln.Unknown_source ->
      "fn"

let attr_value ~name w =
  let prefix = name ^ "=" in
  if
    String.length w > String.length prefix
    && String.equal (String.sub w 0 (String.length prefix)) prefix
  then Some (String.sub w (String.length prefix) (String.length w - String.length prefix))
  else None

let parse_int line what s =
  match int_of_string_opt s with
  | Some i when i >= 0 -> i
  | _ -> fail line (Printf.sprintf "expected a non-negative integer %s, got %S" what s)

(* sink attributes: when=<idx>:<CONST> and shape=url|nonurl *)
let parse_sink_attrs line rest =
  List.fold_left
    (fun (when_const, shape) w ->
      match attr_value ~name:"when" w with
      | Some v -> (
          match String.index_opt v ':' with
          | Some at ->
              let idx = parse_int line "in when=" (String.sub v 0 at) in
              let const = String.sub v (at + 1) (String.length v - at - 1) in
              if const = "" then fail line "empty constant in when= attribute";
              (Some (idx, const), shape)
          | None -> fail line "expected when=<idx>:<CONST>")
      | None -> (
          match attr_value ~name:"shape" w with
          | Some "url" -> (when_const, `Url_prefix)
          | Some "nonurl" -> (when_const, `Non_url)
          | Some other ->
              fail line (Printf.sprintf "unknown shape %S (url|nonurl)" other)
          | None -> fail line (Printf.sprintf "unknown sink attribute %S" w)))
    (None, `Any) rest

(* dbwrite/dbread attributes: key=<idx> and (writes only) vals=<idx,...> *)
let parse_db_attrs line ~allow_vals rest =
  List.fold_left
    (fun (key_arg, val_args) w ->
      match attr_value ~name:"key" w with
      | Some v -> (parse_int line "in key=" v, val_args)
      | None -> (
          match attr_value ~name:"vals" w with
          | Some v when allow_vals ->
              ( key_arg,
                Some
                  (String.split_on_char ',' v
                  |> List.map (parse_int line "in vals=")) )
          | Some _ -> fail line "vals= is only valid on dbwrite"
          | None ->
              fail line (Printf.sprintf "unknown db endpoint attribute %S" w)))
    (-1, None) rest

let parse_place line what = function
  | "function" -> false
  | "method" -> true
  | other -> fail line (Printf.sprintf "unknown %s place %S" what other)

(** Parse a spec into a configuration, applying [on_unknown] to kind names
    outside the taxonomy. *)
let parse ~on_unknown spec : Config.t =
  let empty =
    {
      Config.name = "spec";
      superglobal_sources = [];
      function_sources = [];
      sanitizers = [];
      reverts = [];
      sinks = [];
      passthrough = [];
      concat_all_args = [];
      db_writes = [];
      db_reads = [];
    }
  in
  let parse_kinds = parse_kinds ~on_unknown in
  let lines = String.split_on_char '\n' spec in
  let config = ref empty in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some at -> String.sub raw 0 at
        | None -> raw
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      let c = !config in
      match words with
      | [] -> ()
      | [ "profile"; name ] -> config := { c with Config.name }
      | [ "source"; "superglobal"; name; kinds ] -> (
          match parse_kinds line_no kinds with
          | [] -> ()
          | kinds ->
              config :=
                { c with
                  Config.superglobal_sources =
                    c.Config.superglobal_sources @ [ (name, kinds) ] })
      | [ "source"; place; name; cls; kinds ] -> (
          let is_method = parse_place line_no "source" place in
          match parse_kinds line_no kinds with
          | [] -> ()
          | kinds ->
              let entry =
                Config.fn_source ~is_method name kinds
                  (source_desc line_no cls name)
              in
              config :=
                { c with
                  Config.function_sources = c.Config.function_sources @ [ entry ] })
      | "sanitizer" :: place :: name :: kinds :: rest -> (
          let is_method = parse_place line_no "sanitizer" place in
          let contexts =
            match rest with
            | [] -> None
            | [ ctx ] when String.length ctx > 4 && String.sub ctx 0 4 = "ctx="
              ->
                Some
                  (parse_contexts line_no
                     (String.sub ctx 4 (String.length ctx - 4)))
            | _ -> fail line_no "expected [ctx=<contexts>] after the kinds"
          in
          match parse_kinds line_no kinds with
          | [] -> ()
          | kinds ->
              config :=
                { c with
                  Config.sanitizers =
                    c.Config.sanitizers
                    @ [ Config.sanitizer ~is_method ?contexts name kinds ] })
      | "sink" :: place :: name :: kind :: rest -> (
          let is_method =
            match place with
            | "construct" | "function" -> false
            | "method" -> true
            | other -> fail line_no (Printf.sprintf "unknown sink place %S" other)
          in
          let when_const, shape = parse_sink_attrs line_no rest in
          match parse_kinds line_no kind with
          | [ kind ] ->
              config :=
                { c with
                  Config.sinks =
                    c.Config.sinks
                    @ [ Config.sink ~is_method ?when_const ~shape name kind ] }
          | [] -> ()
          | _ -> fail line_no "expected exactly one kind")
      | [ "revert"; name ] ->
          config := { c with Config.reverts = c.Config.reverts @ [ name ] }
      | [ "passthrough"; name ] ->
          config := { c with Config.passthrough = c.Config.passthrough @ [ name ] }
      | [ "concat"; name ] ->
          config :=
            { c with Config.concat_all_args = c.Config.concat_all_args @ [ name ] }
      | "dbwrite" :: place :: name :: rest ->
          let is_method = parse_place line_no "dbwrite" place in
          let key_arg, val_args = parse_db_attrs line_no ~allow_vals:true rest in
          config :=
            { c with
              Config.db_writes =
                c.Config.db_writes
                @ [ Config.db_rw ~is_method ~key_arg ?val_args name ] }
      | "dbread" :: place :: name :: rest ->
          let is_method = parse_place line_no "dbread" place in
          let key_arg, _ = parse_db_attrs line_no ~allow_vals:false rest in
          config :=
            { c with
              Config.db_reads =
                c.Config.db_reads @ [ Config.db_rw ~is_method ~key_arg name ] }
      | w :: _ -> fail line_no (Printf.sprintf "unknown directive %S" w))
    lines;
  !config

(** Parse a spec; an unknown kind name raises {!Spec_error}. *)
let of_string spec : Config.t =
  parse spec ~on_unknown:(fun line k ->
      fail line (Printf.sprintf "unknown kind %S" k))

(** Parse a spec; unknown kind names become warnings, and the entries that
    mention them load with the unknown kinds dropped (an entry whose whole
    kind list is unknown is skipped). *)
let of_string_with_warnings spec : Config.t * string list =
  let warnings = ref [] in
  let c =
    parse spec ~on_unknown:(fun line k ->
        warnings :=
          Printf.sprintf "line %d: unknown kind %S (skipped)" line k
          :: !warnings)
  in
  (c, List.rev !warnings)

(** Serialise a configuration back to the spec format; a fixpoint of
    {!of_string} ∘ [to_string] up to the [db|file|fn] source classes. *)
let to_string (c : Config.t) : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "profile %s" c.Config.name;
  List.iter
    (fun (name, kinds) ->
      line "source superglobal %s %s" name (kinds_to_string kinds))
    c.Config.superglobal_sources;
  List.iter
    (fun (e : Config.source_entry) ->
      line "source %s %s %s %s"
        (if e.Config.src_is_method then "method" else "function")
        e.Config.src_name
        (desc_class e.Config.src_desc)
        (kinds_to_string e.Config.src_kinds))
    c.Config.function_sources;
  List.iter
    (fun (e : Config.sanitizer_entry) ->
      let default_ctx = Context.all_for_kinds e.Config.san_kinds in
      let ctx_suffix =
        (* only spell out a narrowed adequacy; the default is implied *)
        if
          List.sort compare e.Config.san_contexts
          = List.sort compare default_ctx
        then ""
        else " ctx=" ^ contexts_to_string e.Config.san_contexts
      in
      line "sanitizer %s %s %s%s"
        (if e.Config.san_is_method then "method" else "function")
        e.Config.san_name
        (kinds_to_string e.Config.san_kinds)
        ctx_suffix)
    c.Config.sanitizers;
  List.iter (fun name -> line "revert %s" name) c.Config.reverts;
  List.iter
    (fun (e : Config.sink_entry) ->
      let when_suffix =
        match e.Config.snk_when_const with
        | None -> ""
        | Some (idx, const) -> Printf.sprintf " when=%d:%s" idx const
      in
      let shape_suffix =
        match e.Config.snk_path_shape with
        | `Any -> ""
        | `Url_prefix -> " shape=url"
        | `Non_url -> " shape=nonurl"
      in
      line "sink %s %s %s%s%s"
        (if e.Config.snk_is_method then "method" else "function")
        e.Config.snk_name
        (Vuln.kind_spec_name e.Config.snk_kind)
        when_suffix shape_suffix)
    c.Config.sinks;
  List.iter (fun name -> line "passthrough %s" name) c.Config.passthrough;
  List.iter (fun name -> line "concat %s" name) c.Config.concat_all_args;
  let db_line directive (e : Config.db_rw_entry) ~with_vals =
    let key_suffix =
      if e.Config.rw_key_arg < 0 then ""
      else Printf.sprintf " key=%d" e.Config.rw_key_arg
    in
    let vals_suffix =
      match (with_vals, e.Config.rw_val_args) with
      | true, Some idxs ->
          " vals=" ^ String.concat "," (List.map string_of_int idxs)
      | _ -> ""
    in
    line "%s %s %s%s%s" directive
      (if e.Config.rw_is_method then "method" else "function")
      e.Config.rw_name key_suffix vals_suffix
  in
  List.iter (db_line "dbwrite" ~with_vals:true) c.Config.db_writes;
  List.iter (db_line "dbread" ~with_vals:false) c.Config.db_reads;
  Buffer.contents buf

(* -- profile validation --------------------------------------------------- *)

let place is_method = if is_method then "method" else "function"

let dups to_name entries =
  let tbl = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let n = to_name e in
      if Hashtbl.mem tbl n then Some n
      else begin
        Hashtbl.add tbl n ();
        None
      end)
    entries

(** Sanity-check a profile and return a list of human-readable warnings:
    duplicate entries within a section, and names registered both as a
    source and as a sanitizer for the same vulnerability kind (one of the
    two is certainly a configuration mistake — the analyzer would both
    taint and clear at the same call).  An empty list means the profile is
    coherent; the builtin profiles all are. *)
let validate (c : Config.t) : string list =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in
  List.iter
    (fun n -> warn "duplicate superglobal source %s" n)
    (dups fst c.Config.superglobal_sources);
  List.iter
    (fun (p, n) -> warn "duplicate %s source %s" p n)
    (dups
       (fun (e : Config.source_entry) ->
         (place e.Config.src_is_method, e.Config.src_name))
       c.Config.function_sources);
  List.iter
    (fun (p, n) -> warn "duplicate %s sanitizer %s" p n)
    (dups
       (fun (e : Config.sanitizer_entry) ->
         (place e.Config.san_is_method, e.Config.san_name))
       c.Config.sanitizers);
  List.iter (fun n -> warn "duplicate revert %s" n) (dups Fun.id c.Config.reverts);
  List.iter
    (fun (p, n, k) ->
      warn "duplicate %s sink %s (%s)" p n (Vuln.kind_to_string k))
    (dups
       (fun (e : Config.sink_entry) ->
         ( place e.Config.snk_is_method,
           e.Config.snk_name,
           e.Config.snk_kind,
           e.Config.snk_when_const,
           e.Config.snk_path_shape ))
       c.Config.sinks
    |> List.map (fun (p, n, k, _, _) -> (p, n, k)));
  List.iter
    (fun n -> warn "duplicate passthrough %s" n)
    (dups Fun.id c.Config.passthrough);
  List.iter
    (fun n -> warn "duplicate concat %s" n)
    (dups Fun.id c.Config.concat_all_args);
  List.iter
    (fun (p, n) -> warn "duplicate %s dbwrite %s" p n)
    (dups
       (fun (e : Config.db_rw_entry) ->
         (place e.Config.rw_is_method, e.Config.rw_name))
       c.Config.db_writes);
  List.iter
    (fun (p, n) -> warn "duplicate %s dbread %s" p n)
    (dups
       (fun (e : Config.db_rw_entry) ->
         (place e.Config.rw_is_method, e.Config.rw_name))
       c.Config.db_reads);
  (* a name that both introduces and clears the same kind of taint *)
  List.iter
    (fun (s : Config.source_entry) ->
      List.iter
        (fun (san : Config.sanitizer_entry) ->
          if
            String.equal s.Config.src_name san.Config.san_name
            && Bool.equal s.Config.src_is_method san.Config.san_is_method
          then
            List.iter
              (fun k ->
                if List.exists (Vuln.equal_kind k) san.Config.san_kinds then
                  warn "%s %s is both a source and a sanitizer for %s"
                    (place s.Config.src_is_method)
                    s.Config.src_name (Vuln.kind_to_string k))
              s.Config.src_kinds)
        c.Config.sanitizers)
    c.Config.function_sources;
  List.rev !warnings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Load a spec file from disk. *)
let load path : Config.t = of_string (read_file path)

let load_with_warnings path : Config.t * string list =
  of_string_with_warnings (read_file path)
