(** Taint values for phpSAFE's analysis stage (paper §III.C).

    A taint value records, per vulnerability kind, whether the data is
    currently attacker-controlled, and — for the function-summary analysis —
    {e which formal parameters} the value depends on.  Sanitization clears
    the live bits but remembers them in the [was] fields so that {e revert}
    functions ([stripslashes] & co., §III.A) can restore them, reproducing
    phpSAFE's revert semantics.

    The per-kind state lives in a map indexed by {!Vuln.kind}, so adding a
    vulnerability class extends the engine without touching this module.
    Every operation maintains the {b canonical-form invariant}: clean
    components and empty sanitizer sets are absent from their maps, which
    makes structural map equality the convergence test of the flow-sensitive
    fixpoint ({!equal_modulo_trace}). *)

open Secflow

module Int_set = Set.Make (Int)
module San_set = Set.Make (String)

module Kmap = Map.Make (struct
  type t = Vuln.kind

  let compare = Vuln.compare_kind
end)

(** One vulnerability kind's component of a taint value. *)
type comp = {
  live : bool;            (** currently attacker-controlled *)
  was : bool;             (** tainted before sanitization (revertible) *)
  deps : Int_set.t;       (** parameter indices whose taint reaches here *)
  was_deps : Int_set.t;   (** dependencies neutralised by a sanitizer *)
}

let clean_comp =
  { live = false; was = false; deps = Int_set.empty; was_deps = Int_set.empty }

let comp_is_clean c =
  (not c.live) && (not c.was)
  && Int_set.is_empty c.deps
  && Int_set.is_empty c.was_deps

(** Sanitizer-set tracking for the context-inference pass ([--contexts],
    §VI future work).  Instead of a per-kind boolean, the value carries the
    {e names} of the sanitizers it passed through; the verdict at the sink
    intersects this set with the sanitizers adequate for the inferred
    output context.  The record is also a {e delta}: [undone]/[undone_all]
    remember which previously-applied sanitizers a revert function undid,
    so function summaries can replay the effect on caller arguments
    ({!compose_sans}). *)
type sans = {
  applied : San_set.t Kmap.t;  (** per-kind sanitizers passed through *)
  undone : San_set.t;          (** sanitizer names undone by a revert *)
  undone_all : bool;           (** a revert with unknown scope undid them all *)
}

let no_sans =
  { applied = Kmap.empty; undone = San_set.empty; undone_all = false }

type t = {
  comps : comp Kmap.t;       (** per-kind taint components; canonical *)
  sans : sans;               (** sanitizer set (context pass only) *)
  source : (Vuln.source * Phplang.Ast.pos) option;
  trace : Report.step list;  (** most recent first; bounded *)
  trace_truncated : bool;    (** [trace] hit {!max_trace_len}; steps dropped *)
}

let max_trace_len = 16

let untainted =
  {
    comps = Kmap.empty;
    sans = no_sans;
    source = None;
    trace = [];
    trace_truncated = false;
  }

let comp kind t =
  match Kmap.find_opt kind t.comps with Some c -> c | None -> clean_comp

(* Canonicalising per-kind update: clean results leave the map. *)
let update_comp kind f t =
  let c = f (comp kind t) in
  {
    t with
    comps =
      (if comp_is_clean c then Kmap.remove kind t.comps
       else Kmap.add kind c t.comps);
  }

(** Fresh taint from a configured source. *)
let of_source ~kinds ~source ~pos =
  let comps =
    List.fold_left
      (fun m k -> Kmap.add k { clean_comp with live = true } m)
      Kmap.empty kinds
  in
  { untainted with comps; source = Some (source, pos) }

(** Symbolic taint of formal parameter [i] during summary analysis: the
    value depends on the parameter for every kind — which kinds matter is
    decided at the call site by the argument's own components. *)
let of_param i =
  let c = { clean_comp with deps = Int_set.singleton i } in
  {
    untainted with
    comps = List.fold_left (fun m k -> Kmap.add k c m) Kmap.empty Vuln.all_kinds;
  }

let is_tainted kind t = (comp kind t).live
let deps kind t = (comp kind t).deps
let was kind t = (comp kind t).was
let has_deps t = Kmap.exists (fun _ c -> not (Int_set.is_empty c.deps)) t.comps
let any_tainted t = Kmap.exists (fun _ c -> c.live) t.comps
let any_was t = Kmap.exists (fun _ c -> c.was) t.comps
let interesting t = any_tainted t || has_deps t

(** Is [kind]'s component of the value live or parameter-dependent — i.e.
    does its sanitizer set mean anything? *)
let relevant kind t =
  let c = comp kind t in
  c.live || not (Int_set.is_empty c.deps)

let applied kind t =
  match Kmap.find_opt kind t.sans.applied with
  | Some s -> s
  | None -> San_set.empty

(* Joined applied set: a sanitizer protects the join only if it protects
   every contributing component, so when both sides matter we intersect. *)
let join_applied rel_a rel_b a b =
  if rel_a && rel_b then San_set.inter a b
  else if rel_a then a
  else if rel_b then b
  else San_set.empty

let join_sans a b =
  let applied =
    Kmap.merge
      (fun k sa sb ->
        let sa = Option.value sa ~default:San_set.empty in
        let sb = Option.value sb ~default:San_set.empty in
        let s = join_applied (relevant k a) (relevant k b) sa sb in
        if San_set.is_empty s then None else Some s)
      a.sans.applied b.sans.applied
  in
  {
    applied;
    undone = San_set.union a.sans.undone b.sans.undone;
    undone_all = a.sans.undone_all || b.sans.undone_all;
  }

let join_comp a b =
  {
    live = a.live || b.live;
    was = a.was || b.was;
    deps = Int_set.union a.deps b.deps;
    was_deps = Int_set.union a.was_deps b.was_deps;
  }

let join a b =
  (* keep the trace (and its truncation flag) of the "more tainted" operand *)
  let a_leads = any_tainted a || has_deps a in
  {
    comps =
      Kmap.union (fun _ ca cb -> Some (join_comp ca cb)) a.comps b.comps;
    sans = join_sans a b;
    source =
      (match (a.source, b.source) with
      | (Some _ as s), _ -> s
      | None, s -> s);
    trace = (if a_leads then a.trace else b.trace);
    trace_truncated = (if a_leads then a.trace_truncated else b.trace_truncated);
  }

let join_all = List.fold_left join untainted

let equal_comp a b =
  a.live = b.live && a.was = b.was
  && Int_set.equal a.deps b.deps
  && Int_set.equal a.was_deps b.was_deps

let equal_sans a b =
  Kmap.equal San_set.equal a.applied b.applied
  && San_set.equal a.undone b.undone
  && a.undone_all = b.undone_all

(** Structural equality ignoring the provenance fields ([source], [trace],
    [trace_truncated]): they carry positions that may differ between join
    orders without changing the verdict.  Sound because every operation
    keeps [comps]/[applied] canonical (no clean/empty entries).  This is
    the convergence test of the flow-sensitive fixpoint ([--flow]). *)
let equal_modulo_trace a b =
  Kmap.equal equal_comp a.comps b.comps && equal_sans a.sans b.sans

(** Neutralise [kind], remembering the pre-sanitization state. *)
let sanitize kind t =
  update_comp kind
    (fun c ->
      {
        live = false;
        was = c.was || c.live;
        deps = Int_set.empty;
        was_deps = Int_set.union c.was_deps c.deps;
      })
    t

let sanitize_kinds kinds t = List.fold_left (fun t k -> sanitize k t) t kinds

(** Revert function semantics: whatever was sanitized becomes live again. *)
let revert t =
  {
    t with
    comps =
      Kmap.map
        (fun c ->
          { c with live = c.live || c.was; deps = Int_set.union c.deps c.was_deps })
        t.comps;
  }

(** Numeric / boolean results carry no taint at all. *)
let scrub _t = untainted

(** Restrict to one kind's live component: the concrete flag, the parameter
    dependencies and the provenance, but nothing of the other kinds — a
    function may pass a parameter through for one vulnerability class while
    sanitizing another.  The sanitizer set is kept whole (it is filtered by
    relevance at joins and sinks). *)
let restrict kind t =
  let c = comp kind t in
  let c = { c with was = false; was_deps = Int_set.empty } in
  {
    comps = (if comp_is_clean c then Kmap.empty else Kmap.singleton kind c);
    sans = t.sans;
    source = (if c.live || not (Int_set.is_empty c.deps) then t.source else None);
    trace = t.trace;
    trace_truncated = t.trace_truncated;
  }

(** Drop every parameter dependency (live and sanitized) while keeping the
    concrete taint — the base of a summary's return-value instantiation. *)
let forget_deps t =
  {
    t with
    comps =
      Kmap.filter_map
        (fun _ c ->
          let c = { c with deps = Int_set.empty; was_deps = Int_set.empty } in
          if comp_is_clean c then None else Some c)
        t.comps;
  }

(* -- sanitizer-set operations (context pass) ------------------------------

   In context mode a sanitizer call does NOT clear the live bits: it adds
   its name to the per-kind applied set and the verdict is deferred to the
   sink, where the set is intersected with the sanitizers adequate for the
   inferred output context. *)

(** Record that the value passed through sanitizer [name] for [kinds],
    keeping the live taint bits (the sink decides adequacy). *)
let record_sanitizer ~name kinds t =
  let applied =
    List.fold_left
      (fun m k ->
        Kmap.update k
          (fun s ->
            Some (San_set.add name (Option.value s ~default:San_set.empty)))
          m)
      t.sans.applied kinds
  in
  { t with sans = { t.sans with applied } }

(** Revert-function semantics on the sanitizer set: remove exactly the
    sanitizers the revert undoes ([`Named]), or every applied sanitizer when
    its scope is unknown ([`All], e.g. [base64_decode]).  The undone names
    are remembered so {!compose_sans} can replay the effect on caller
    arguments across a function-summary boundary. *)
let revert_named ~undoes t =
  match undoes with
  | `All ->
      {
        t with
        sans =
          { applied = Kmap.empty; undone = t.sans.undone; undone_all = true };
      }
  | `Named names ->
      let rm = San_set.of_list names in
      let applied =
        Kmap.filter_map
          (fun _ s ->
            let s = San_set.diff s rm in
            if San_set.is_empty s then None else Some s)
          t.sans.applied
      in
      {
        t with
        sans =
          {
            applied;
            undone = San_set.union t.sans.undone rm;
            undone_all = t.sans.undone_all;
          };
      }

(** [compose_sans ~outer ~inner] replays the delta [inner] (what a callee
    did to a value, parameters starting from {!no_sans}) on top of [outer]
    (what the caller argument had already been through): the callee's
    reverts strip the caller's applied sanitizers, then the callee's own
    applications are added. *)
let compose_sans ~outer ~inner =
  let strip s =
    if inner.undone_all then San_set.empty else San_set.diff s inner.undone
  in
  let applied =
    Kmap.merge
      (fun _ so si ->
        let s =
          San_set.union
            (strip (Option.value so ~default:San_set.empty))
            (Option.value si ~default:San_set.empty)
        in
        if San_set.is_empty s then None else Some s)
      outer.applied inner.applied
  in
  {
    applied;
    undone = San_set.union outer.undone inner.undone;
    undone_all = outer.undone_all || inner.undone_all;
  }

let push_step ~var ~pos ~note t =
  let step = { Report.step_var = var; step_pos = pos; step_note = note } in
  if List.length t.trace >= max_trace_len then
    (* mark the drop instead of losing it silently *)
    { t with trace_truncated = true }
  else { t with trace = step :: t.trace }

let source_of t =
  match t.source with
  | Some (s, pos) -> (s, pos)
  | None -> (Vuln.Unknown_source, Phplang.Ast.dummy_pos)

let pp ppf t =
  let pp_comp k c =
    Format.fprintf ppf " %s{live=%b; was=%b; deps=%d}"
      (Vuln.kind_to_string k) c.live c.was (Int_set.cardinal c.deps)
  in
  Format.pp_print_string ppf "{";
  Kmap.iter pp_comp t.comps;
  Format.pp_print_string ppf " }"
