(** Taint values for phpSAFE's analysis stage (paper §III.C).

    A taint value records, per vulnerability kind, whether the data is
    currently attacker-controlled, and — for the function-summary analysis —
    {e which formal parameters} the value depends on.  Sanitization clears
    the live bits but remembers them in the [was_*] fields so that {e revert}
    functions ([stripslashes] & co., §III.A) can restore them, reproducing
    phpSAFE's revert semantics. *)

open Secflow

module Int_set = Set.Make (Int)
module San_set = Set.Make (String)

(** Sanitizer-set tracking for the context-inference pass ([--contexts],
    §VI future work).  Instead of a per-kind boolean, the value carries the
    {e names} of the sanitizers it passed through; the verdict at the sink
    intersects this set with the sanitizers adequate for the inferred
    output context.  The record is also a {e delta}: [undone]/[undone_all]
    remember which previously-applied sanitizers a revert function undid,
    so function summaries can replay the effect on caller arguments
    ({!compose_sans}). *)
type sans = {
  applied_xss : San_set.t;   (** XSS sanitizers the value passed through *)
  applied_sqli : San_set.t;
  undone : San_set.t;        (** sanitizer names undone by a revert *)
  undone_all : bool;         (** a revert with unknown scope undid them all *)
}

let no_sans =
  {
    applied_xss = San_set.empty;
    applied_sqli = San_set.empty;
    undone = San_set.empty;
    undone_all = false;
  }

type t = {
  xss : bool;
  sqli : bool;
  was_xss : bool;   (** tainted before sanitization (revertible) *)
  was_sqli : bool;
  deps_xss : Int_set.t;   (** parameter indices whose XSS taint reaches here *)
  deps_sqli : Int_set.t;
  was_deps_xss : Int_set.t;
  was_deps_sqli : Int_set.t;
  sans : sans;              (** sanitizer set (context pass only) *)
  source : (Vuln.source * Phplang.Ast.pos) option;
  trace : Report.step list;  (** most recent first; bounded *)
  trace_truncated : bool;    (** [trace] hit {!max_trace_len}; steps dropped *)
}

let max_trace_len = 16

let untainted =
  {
    xss = false;
    sqli = false;
    was_xss = false;
    was_sqli = false;
    deps_xss = Int_set.empty;
    deps_sqli = Int_set.empty;
    was_deps_xss = Int_set.empty;
    was_deps_sqli = Int_set.empty;
    sans = no_sans;
    source = None;
    trace = [];
    trace_truncated = false;
  }

(** Fresh taint from a configured source. *)
let of_source ~kinds ~source ~pos =
  {
    untainted with
    xss = List.mem Vuln.Xss kinds;
    sqli = List.mem Vuln.Sqli kinds;
    source = Some (source, pos);
  }

(** Symbolic taint of formal parameter [i] during summary analysis. *)
let of_param i =
  {
    untainted with
    deps_xss = Int_set.singleton i;
    deps_sqli = Int_set.singleton i;
  }

let is_tainted kind t =
  match kind with Vuln.Xss -> t.xss | Vuln.Sqli -> t.sqli

let deps kind t =
  match kind with Vuln.Xss -> t.deps_xss | Vuln.Sqli -> t.deps_sqli

let has_deps t = not (Int_set.is_empty t.deps_xss && Int_set.is_empty t.deps_sqli)
let any_tainted t = t.xss || t.sqli
let interesting t = any_tainted t || has_deps t

(** Is [kind]'s component of the value live or parameter-dependent — i.e.
    does its sanitizer set mean anything? *)
let relevant kind t = is_tainted kind t || not (Int_set.is_empty (deps kind t))

(* Joined applied set: a sanitizer protects the join only if it protects
   every contributing component, so when both sides matter we intersect. *)
let join_applied rel_a rel_b a b =
  if rel_a && rel_b then San_set.inter a b
  else if rel_a then a
  else if rel_b then b
  else San_set.empty

let join_sans a b =
  {
    applied_xss =
      join_applied (relevant Vuln.Xss a) (relevant Vuln.Xss b)
        a.sans.applied_xss b.sans.applied_xss;
    applied_sqli =
      join_applied (relevant Vuln.Sqli a) (relevant Vuln.Sqli b)
        a.sans.applied_sqli b.sans.applied_sqli;
    undone = San_set.union a.sans.undone b.sans.undone;
    undone_all = a.sans.undone_all || b.sans.undone_all;
  }

let join a b =
  (* keep the trace (and its truncation flag) of the "more tainted" operand *)
  let a_leads = any_tainted a || has_deps a in
  {
    xss = a.xss || b.xss;
    sqli = a.sqli || b.sqli;
    was_xss = a.was_xss || b.was_xss;
    was_sqli = a.was_sqli || b.was_sqli;
    deps_xss = Int_set.union a.deps_xss b.deps_xss;
    deps_sqli = Int_set.union a.deps_sqli b.deps_sqli;
    was_deps_xss = Int_set.union a.was_deps_xss b.was_deps_xss;
    was_deps_sqli = Int_set.union a.was_deps_sqli b.was_deps_sqli;
    sans = join_sans a b;
    source =
      (match (a.source, b.source) with
      | (Some _ as s), _ -> s
      | None, s -> s);
    trace = (if a_leads then a.trace else b.trace);
    trace_truncated = (if a_leads then a.trace_truncated else b.trace_truncated);
  }

let join_all = List.fold_left join untainted

(** Structural equality ignoring the provenance fields ([source], [trace],
    [trace_truncated]): they carry positions that may differ between join
    orders without changing the verdict.  This is the convergence test of
    the flow-sensitive fixpoint ([--flow]). *)
let equal_modulo_trace a b =
  a.xss = b.xss && a.sqli = b.sqli
  && a.was_xss = b.was_xss && a.was_sqli = b.was_sqli
  && Int_set.equal a.deps_xss b.deps_xss
  && Int_set.equal a.deps_sqli b.deps_sqli
  && Int_set.equal a.was_deps_xss b.was_deps_xss
  && Int_set.equal a.was_deps_sqli b.was_deps_sqli
  && San_set.equal a.sans.applied_xss b.sans.applied_xss
  && San_set.equal a.sans.applied_sqli b.sans.applied_sqli
  && San_set.equal a.sans.undone b.sans.undone
  && a.sans.undone_all = b.sans.undone_all

(** Neutralise [kind], remembering the pre-sanitization state. *)
let sanitize kind t =
  match kind with
  | Vuln.Xss ->
      {
        t with
        xss = false;
        was_xss = t.was_xss || t.xss;
        deps_xss = Int_set.empty;
        was_deps_xss = Int_set.union t.was_deps_xss t.deps_xss;
      }
  | Vuln.Sqli ->
      {
        t with
        sqli = false;
        was_sqli = t.was_sqli || t.sqli;
        deps_sqli = Int_set.empty;
        was_deps_sqli = Int_set.union t.was_deps_sqli t.deps_sqli;
      }

let sanitize_kinds kinds t = List.fold_left (fun t k -> sanitize k t) t kinds

(** Revert function semantics: whatever was sanitized becomes live again. *)
let revert t =
  {
    t with
    xss = t.xss || t.was_xss;
    sqli = t.sqli || t.was_sqli;
    deps_xss = Int_set.union t.deps_xss t.was_deps_xss;
    deps_sqli = Int_set.union t.deps_sqli t.was_deps_sqli;
  }

(** Numeric / boolean results carry no taint at all. *)
let scrub _t = untainted

(* -- sanitizer-set operations (context pass) ------------------------------

   In context mode a sanitizer call does NOT clear the live bits: it adds
   its name to the per-kind applied set and the verdict is deferred to the
   sink, where the set is intersected with the sanitizers adequate for the
   inferred output context. *)

let applied kind t =
  match kind with
  | Vuln.Xss -> t.sans.applied_xss
  | Vuln.Sqli -> t.sans.applied_sqli

(** Record that the value passed through sanitizer [name] for [kinds],
    keeping the live taint bits (the sink decides adequacy). *)
let record_sanitizer ~name kinds t =
  let add k s = if List.mem k kinds then San_set.add name s else s in
  {
    t with
    sans =
      {
        t.sans with
        applied_xss = add Vuln.Xss t.sans.applied_xss;
        applied_sqli = add Vuln.Sqli t.sans.applied_sqli;
      };
  }

(** Revert-function semantics on the sanitizer set: remove exactly the
    sanitizers the revert undoes ([`Named]), or every applied sanitizer when
    its scope is unknown ([`All], e.g. [base64_decode]).  The undone names
    are remembered so {!compose_sans} can replay the effect on caller
    arguments across a function-summary boundary. *)
let revert_named ~undoes t =
  match undoes with
  | `All ->
      {
        t with
        sans =
          {
            applied_xss = San_set.empty;
            applied_sqli = San_set.empty;
            undone = t.sans.undone;
            undone_all = true;
          };
      }
  | `Named names ->
      let rm = San_set.of_list names in
      {
        t with
        sans =
          {
            applied_xss = San_set.diff t.sans.applied_xss rm;
            applied_sqli = San_set.diff t.sans.applied_sqli rm;
            undone = San_set.union t.sans.undone rm;
            undone_all = t.sans.undone_all;
          };
      }

(** [compose_sans ~outer ~inner] replays the delta [inner] (what a callee
    did to a value, parameters starting from {!no_sans}) on top of [outer]
    (what the caller argument had already been through): the callee's
    reverts strip the caller's applied sanitizers, then the callee's own
    applications are added. *)
let compose_sans ~outer ~inner =
  let strip s =
    if inner.undone_all then San_set.empty else San_set.diff s inner.undone
  in
  {
    applied_xss = San_set.union (strip outer.applied_xss) inner.applied_xss;
    applied_sqli = San_set.union (strip outer.applied_sqli) inner.applied_sqli;
    undone = San_set.union outer.undone inner.undone;
    undone_all = outer.undone_all || inner.undone_all;
  }

let push_step ~var ~pos ~note t =
  let step = { Report.step_var = var; step_pos = pos; step_note = note } in
  if List.length t.trace >= max_trace_len then
    (* mark the drop instead of losing it silently *)
    { t with trace_truncated = true }
  else { t with trace = step :: t.trace }

let source_of t =
  match t.source with
  | Some (s, pos) -> (s, pos)
  | None -> (Vuln.Unknown_source, Phplang.Ast.dummy_pos)

let pp ppf t =
  Format.fprintf ppf "{xss=%b; sqli=%b; was=(%b,%b); deps=(%d,%d)}" t.xss
    t.sqli t.was_xss t.was_sqli
    (Int_set.cardinal t.deps_xss)
    (Int_set.cardinal t.deps_sqli)
