(** Joomla extension profile — the paper's future work ("the analysis of
    other CMS applications like Drupal or Joomla", §VI): "this is what it
    takes for phpSAFE to be able to analyze plugins from other CMSs"
    (§III.A) — only the input, filtering and sink functions of the
    framework's API need to be added to the configuration.

    Covers the Joomla 2.5/3.x idioms used by components and modules:
    [JFactory::getDbo()] database objects ([loadResult], [loadObjectList],
    …), [JRequest]/[JInput] request accessors, [JFilterInput] and
    [$db->quote]/[escape] filtering. *)

open Secflow

let profile : Config.t =
  {
    Config.name = "joomla";
    superglobal_sources = [];
    function_sources =
      [ (* JDatabase result methods *)
        Config.fn_source ~is_method:true "loadResult" [ Vuln.Xss ]
          (Vuln.Database "$db->loadResult");
        Config.fn_source ~is_method:true "loadRow" [ Vuln.Xss ]
          (Vuln.Database "$db->loadRow");
        Config.fn_source ~is_method:true "loadObject" [ Vuln.Xss ]
          (Vuln.Database "$db->loadObject");
        Config.fn_source ~is_method:true "loadObjectList" [ Vuln.Xss ]
          (Vuln.Database "$db->loadObjectList");
        Config.fn_source ~is_method:true "loadAssocList" [ Vuln.Xss ]
          (Vuln.Database "$db->loadAssocList");
        (* request accessors: attacker-controlled *)
        Config.fn_source ~is_method:true "getVar" [ Vuln.Xss; Vuln.Sqli ]
          (Vuln.Function_return "JRequest::getVar");
        Config.fn_source ~is_method:true "getString" [ Vuln.Xss; Vuln.Sqli ]
          (Vuln.Function_return "JInput->getString") ];
    sanitizers =
      [ (* JDatabase escaping: [quote] wraps its result in quotes, so the
           quoted literal also works where a number is expected; [escape]
           only helps inside a string the caller already quoted *)
        Config.sanitizer ~is_method:true "quote" [ Vuln.Sqli ]
          ~contexts:[ Context.Sql_quoted_string; Context.Sql_numeric ];
        Config.sanitizer ~is_method:true "escape" [ Vuln.Sqli ]
          ~contexts:[ Context.Sql_quoted_string ];
        (* JFilterInput::clean and friends *)
        Config.sanitizer ~is_method:true "clean" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer ~is_method:true "getInt" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer ~is_method:true "getUint" [ Vuln.Xss; Vuln.Sqli ] ];
    reverts = [];
    sinks =
      [ (* query execution through the database object *)
        Config.sink ~is_method:true "setQuery" Vuln.Sqli;
        Config.sink ~is_method:true "execute" Vuln.Sqli ];
    passthrough = [ "JText_" ];
    concat_all_args = [];
    db_writes = [];
    db_reads =
      [ Config.db_rw ~is_method:true "loadResult";
        Config.db_rw ~is_method:true "loadRow";
        Config.db_rw ~is_method:true "loadObject";
        Config.db_rw ~is_method:true "loadObjectList";
        Config.db_rw ~is_method:true "loadAssocList" ];
  }

(** Generic PHP plus the Joomla profile. *)
let default_config = Config.extend Config.generic_php profile
