(** WordPress extension profile (paper §III.A, §III.E).

    phpSAFE ships "out-of-the-box" with the WordPress API functions and
    [$wpdb] class methods that act as sources, sanitizers or sinks.  This is
    the knowledge RIPS and Pixy lack, and the reason they miss every
    OOP/WordPress vulnerability in the evaluation ("RIPS and Pixy were not
    able to detect any vulnerability of this kind", §V.A). *)

open Secflow

let profile : Config.t =
  {
    Config.name = "wordpress";
    superglobal_sources = [];
    function_sources =
      [ (* $wpdb methods returning database rows — the entry point of the
           paper's running example (mail-subscribe-list). *)
        Config.fn_source ~is_method:true "get_results" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_results");
        Config.fn_source ~is_method:true "get_var" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_var");
        Config.fn_source ~is_method:true "get_row" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_row");
        Config.fn_source ~is_method:true "get_col" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_col");
        (* WordPress API functions that read likely-untrusted storage *)
        Config.fn_source "get_option" [ Vuln.Xss ] (Vuln.Database "get_option");
        Config.fn_source "get_post_meta" [ Vuln.Xss ]
          (Vuln.Database "get_post_meta");
        Config.fn_source "get_user_meta" [ Vuln.Xss ]
          (Vuln.Database "get_user_meta");
        Config.fn_source "get_query_var" [ Vuln.Xss; Vuln.Sqli ]
          (Vuln.Function_return "get_query_var") ];
    sanitizers =
      [ (* esc_html/esc_attr escape quotes too (ENT_QUOTES), but still
           cannot protect an unquoted attribute or a script block *)
        Config.sanitizer "esc_html" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body; Context.Html_attr_quoted ];
        Config.sanitizer "esc_attr" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body; Context.Html_attr_quoted ];
        Config.sanitizer "esc_js" [ Vuln.Xss ] ~contexts:[ Context.Js_string ];
        Config.sanitizer "esc_url" [ Vuln.Xss ]
          ~contexts:
            [ Context.Url; Context.Html_attr_quoted; Context.Html_body ];
        Config.sanitizer "esc_textarea" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "sanitize_text_field" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_email" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_key" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_title" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_file_name" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "absint" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "wp_kses" [ Vuln.Xss ] ~contexts:[ Context.Html_body ];
        Config.sanitizer "wp_kses_post" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "esc_sql" [ Vuln.Sqli ]
          ~contexts:[ Context.Sql_quoted_string ];
        Config.sanitizer "like_escape" [ Vuln.Sqli ]
          ~contexts:[ Context.Sql_quoted_string ];
        (* $wpdb->prepare builds a parameterized query *)
        Config.sanitizer ~is_method:true "prepare" [ Vuln.Sqli ] ];
    reverts = [ "wp_specialchars_decode" ];
    sinks =
      [ (* query-taking $wpdb methods are SQLi sinks *)
        Config.sink ~is_method:true "query" Vuln.Sqli;
        Config.sink ~is_method:true "get_results" Vuln.Sqli;
        Config.sink ~is_method:true "get_var" Vuln.Sqli;
        Config.sink ~is_method:true "get_row" Vuln.Sqli;
        Config.sink ~is_method:true "get_col" Vuln.Sqli;
        (* WP output helpers that echo their argument *)
        Config.sink "_e" Vuln.Xss;
        Config.sink "wp_die" Vuln.Xss ];
    passthrough =
      [ "__"; "apply_filters_value"; "maybe_unserialize"; "wp_unslash" ];
    concat_all_args = [];
  }

(** The default out-of-the-box phpSAFE configuration: generic PHP plus the
    WordPress profile. *)
let default_config = Config.extend Config.generic_php profile
