(** WordPress extension profile (paper §III.A, §III.E).

    phpSAFE ships "out-of-the-box" with the WordPress API functions and
    [$wpdb] class methods that act as sources, sanitizers or sinks.  This is
    the knowledge RIPS and Pixy lack, and the reason they miss every
    OOP/WordPress vulnerability in the evaluation ("RIPS and Pixy were not
    able to detect any vulnerability of this kind", §V.A). *)

open Secflow

let profile : Config.t =
  {
    Config.name = "wordpress";
    superglobal_sources = [];
    function_sources =
      [ (* $wpdb methods returning database rows — the entry point of the
           paper's running example (mail-subscribe-list). *)
        Config.fn_source ~is_method:true "get_results" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_results");
        Config.fn_source ~is_method:true "get_var" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_var");
        Config.fn_source ~is_method:true "get_row" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_row");
        Config.fn_source ~is_method:true "get_col" [ Vuln.Xss ]
          (Vuln.Database "$wpdb->get_col");
        (* WordPress API functions that read likely-untrusted storage *)
        Config.fn_source "get_option" [ Vuln.Xss ] (Vuln.Database "get_option");
        Config.fn_source "get_post_meta" [ Vuln.Xss ]
          (Vuln.Database "get_post_meta");
        Config.fn_source "get_user_meta" [ Vuln.Xss ]
          (Vuln.Database "get_user_meta");
        Config.fn_source "get_query_var" [ Vuln.Xss; Vuln.Sqli ]
          (Vuln.Function_return "get_query_var") ];
    sanitizers =
      [ (* esc_html/esc_attr escape quotes too (ENT_QUOTES), but still
           cannot protect an unquoted attribute or a script block *)
        Config.sanitizer "esc_html" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body; Context.Html_attr_quoted ];
        Config.sanitizer "esc_attr" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body; Context.Html_attr_quoted ];
        Config.sanitizer "esc_js" [ Vuln.Xss ] ~contexts:[ Context.Js_string ];
        Config.sanitizer "esc_url" [ Vuln.Xss ]
          ~contexts:
            [ Context.Url; Context.Html_attr_quoted; Context.Html_body ];
        Config.sanitizer "esc_textarea" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "sanitize_text_field" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_email" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_key" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_title" [ Vuln.Xss; Vuln.Sqli ];
        Config.sanitizer "sanitize_file_name"
          [ Vuln.Xss; Vuln.Sqli; Vuln.Path_traversal ];
        Config.sanitizer "absint" Vuln.all_kinds;
        Config.sanitizer "wp_kses" [ Vuln.Xss ] ~contexts:[ Context.Html_body ];
        Config.sanitizer "wp_kses_post" [ Vuln.Xss ]
          ~contexts:[ Context.Html_body ];
        Config.sanitizer "esc_sql" [ Vuln.Sqli; Vuln.Second_order_sqli ]
          ~contexts:[ Context.Sql_quoted_string ];
        Config.sanitizer "like_escape" [ Vuln.Sqli; Vuln.Second_order_sqli ]
          ~contexts:[ Context.Sql_quoted_string ];
        (* esc_url_raw validates a URL for non-display use (HTTP requests,
           storage) — the WordPress-sanctioned SSRF guard *)
        Config.sanitizer "esc_url_raw" [ Vuln.Ssrf ]
          ~contexts:[ Context.Url_remote; Context.Url ];
        (* $wpdb->prepare builds a parameterized query *)
        Config.sanitizer ~is_method:true "prepare"
          [ Vuln.Sqli; Vuln.Second_order_sqli ] ];
    reverts = [ "wp_specialchars_decode" ];
    sinks =
      [ (* query-taking $wpdb methods are SQLi sinks *)
        Config.sink ~is_method:true "query" Vuln.Sqli;
        Config.sink ~is_method:true "get_results" Vuln.Sqli;
        Config.sink ~is_method:true "get_var" Vuln.Sqli;
        Config.sink ~is_method:true "get_row" Vuln.Sqli;
        Config.sink ~is_method:true "get_col" Vuln.Sqli;
        (* WP output helpers that echo their argument *)
        Config.sink "_e" Vuln.Xss;
        Config.sink "wp_die" Vuln.Xss;
        (* HTTP API: a tainted URL is a server-side request forgery *)
        Config.sink "wp_remote_get" Vuln.Ssrf;
        Config.sink "wp_remote_post" Vuln.Ssrf;
        Config.sink "wp_remote_request" Vuln.Ssrf ];
    passthrough =
      [ "__"; "apply_filters_value"; "maybe_unserialize"; "wp_unslash" ];
    concat_all_args = [];
    db_writes =
      [ (* $wpdb row writes: argument 0 names the table, the data arrays
           carry the stored values *)
        Config.db_rw ~is_method:true ~key_arg:0 "insert";
        Config.db_rw ~is_method:true ~key_arg:0 "update";
        Config.db_rw ~is_method:true ~key_arg:0 "replace";
        (* options API: argument 0 is the option name, 1 the value *)
        Config.db_rw ~key_arg:0 ~val_args:[ 1 ] "update_option";
        Config.db_rw ~key_arg:0 ~val_args:[ 1 ] "add_option" ];
    db_reads =
      [ (* $wpdb reads take a SQL string, so no key is statically
           attributable — they match any recorded write *)
        Config.db_rw ~is_method:true "get_results";
        Config.db_rw ~is_method:true "get_var";
        Config.db_rw ~is_method:true "get_row";
        Config.db_rw ~is_method:true "get_col";
        Config.db_rw ~key_arg:0 "get_option" ];
  }

(** The default out-of-the-box phpSAFE configuration: generic PHP plus the
    WordPress profile. *)
let default_config = Config.extend Config.generic_php profile
