(** Generic forward dataflow engine over {!Cfg}: a round-robin worklist in
    reverse post-order, parameterized by the client's lattice (join /
    equality) and transfer function.

    The iteration discipline is exactly the one Pixy's solver used before
    the extraction, so a client that plugs in Pixy's lattice reproduces its
    findings byte for byte:

    - per pass, every reachable node is visited in {!Cfg.rpo} order;
    - a node's in-state is the join of its predecessors' out-states
      (predecessors not yet computed contribute nothing); the entry node
      additionally joins [init] — back-edges into the entry are honoured;
    - a node with no computed predecessor inputs gets [bottom] ([init] for
      the entry node);
    - iteration stops when no out-state changed during a pass, or after
      [max_passes] passes, whichever comes first.  In the latter case the
      states computed so far stand as an over-approximation and
      [converged] is [false].

    The transfer function may carry side effects (finding reports,
    observability counters): it runs once per node visit, every pass, so
    effectful clients must de-duplicate reports and make sure their state
    only ascends — both already true of the taint analyses here. *)

type 'st config = {
  init : 'st;  (** in-state of the entry node *)
  bottom : 'st;  (** state of nodes with no computed predecessors *)
  join : 'st -> 'st -> 'st;
  equal : 'st -> 'st -> bool;  (** convergence test *)
  transfer : 'st -> Phplang.Ast.stmt -> 'st;
  max_passes : int;  (** pass budget; exhaustion over-approximates *)
}

type 'st result = {
  exit_state : 'st;  (** out-state of the CFG's exit node *)
  out_states : 'st option array;
      (** per-node out-states; [None] for nodes never reached *)
  passes : int;
  converged : bool;  (** [false] when [max_passes] ran out first *)
}

let solve ?(check = fun () -> ()) (c : 'st config) (cfg : Cfg.t) :
    'st result =
  let n = Cfg.size cfg in
  let out_states = Array.make n None in
  let order = Cfg.rpo cfg in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < c.max_passes do
    check ();
    changed := false;
    incr passes;
    List.iter
      (fun id ->
        let node = Cfg.node cfg id in
        let pred_outs =
          List.filter_map (fun p -> out_states.(p)) node.Cfg.preds
        in
        let in_state =
          if id = cfg.Cfg.entry then List.fold_left c.join c.init pred_outs
          else
            match pred_outs with
            | [] -> c.bottom
            | o :: rest -> List.fold_left c.join o rest
        in
        let out_state = List.fold_left c.transfer in_state node.Cfg.stmts in
        match out_states.(id) with
        | Some prev when c.equal prev out_state -> ()
        | _ ->
            out_states.(id) <- Some out_state;
            changed := true)
      order
  done;
  {
    exit_state = Option.value out_states.(cfg.Cfg.exit_) ~default:c.bottom;
    out_states;
    passes = !passes;
    converged = not !changed;
  }
