(** Tool-agnostic control-flow graph of linked basic blocks over
    {!Phplang.Ast} (paper §II: the analysis "performs intra- and
    inter-procedural analysis to create the respective control flow graph,
    which consists of linked basic blocks and branches according to
    conditional program flow").

    Statements are kept at AST granularity inside each block; branch and
    loop structure becomes explicit edges.  [break]/[continue]/[return]/
    [exit] are wired to their targets.

    Grew out of Pixy's CFG; now shared by every analyzer that wants a
    flow-sensitive pass (see {!Fixpoint}). *)

module A = Phplang.Ast

type node = {
  id : int;
  mutable stmts : A.stmt list;  (** in execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
}

type builder = {
  mutable rev_nodes : node list;
  mutable count : int;
}

let new_node b =
  let n = { id = b.count; stmts = []; succs = []; preds = [] } in
  b.count <- b.count + 1;
  b.rev_nodes <- n :: b.rev_nodes;
  n

let add_edge src dst =
  if not (List.mem dst.id src.succs) then begin
    src.succs <- dst.id :: src.succs;
    dst.preds <- src.id :: dst.preds
  end

let append (n : node) (s : A.stmt) = n.stmts <- s :: n.stmts

type loop_targets = { break_to : node; continue_to : node }

(* An expression statement that certainly terminates the script. *)
let rec is_terminator_expr (e : A.expr) =
  match e.A.e with
  | A.Exit _ -> true
  | A.Assign (_, r) -> is_terminator_expr r
  | _ -> false

let mk_expr_stmt (e : A.expr) = A.mk_s ~pos:e.A.epos (A.Expr e)

(** Translate [stmts] starting in block [cur]; returns the block where
    control continues (possibly a fresh unreachable one after a jump). *)
let rec translate b ~exit_node ~(loops : loop_targets list) cur
    (stmts : A.stmt list) : node =
  List.fold_left (fun cur s -> translate_one b ~exit_node ~loops cur s) cur stmts

and translate_one b ~exit_node ~loops cur (s : A.stmt) : node =
  match s.A.s with
  | A.Expr e when is_terminator_expr e ->
      append cur s;
      add_edge cur exit_node;
      new_node b (* dead continuation *)
  | A.Expr _ | A.Echo _ | A.Global _ | A.StaticVar _ | A.Unset _
  | A.InlineHtml _ | A.Nop ->
      append cur s;
      cur
  | A.Throw _ ->
      append cur s;
      add_edge cur exit_node;
      new_node b
  | A.Return _ ->
      append cur s;
      add_edge cur exit_node;
      new_node b
  | A.Break -> (
      match loops with
      | { break_to; _ } :: _ ->
          add_edge cur break_to;
          new_node b
      | [] -> cur)
  | A.Continue -> (
      match loops with
      | { continue_to; _ } :: _ ->
          add_edge cur continue_to;
          new_node b
      | [] -> cur)
  | A.Block body -> translate b ~exit_node ~loops cur body
  | A.If (branches, els) ->
      let merge = new_node b in
      (* conditions evaluate in sequence along the "false" spine *)
      let spine =
        List.fold_left
          (fun spine (cond, body) ->
            append spine (mk_expr_stmt cond);
            let bnode = new_node b in
            add_edge spine bnode;
            let bend = translate b ~exit_node ~loops bnode body in
            add_edge bend merge;
            let next_spine = new_node b in
            add_edge spine next_spine;
            next_spine)
          cur branches
      in
      (match els with
      | Some body ->
          let eend = translate b ~exit_node ~loops spine body in
          add_edge eend merge
      | None -> add_edge spine merge);
      merge
  | A.While (cond, body) ->
      let header = new_node b in
      add_edge cur header;
      append header (mk_expr_stmt cond);
      let after = new_node b in
      let bnode = new_node b in
      add_edge header bnode;
      add_edge header after;
      let loops = { break_to = after; continue_to = header } :: loops in
      let bend = translate b ~exit_node ~loops bnode body in
      add_edge bend header;
      after
  | A.DoWhile (body, cond) ->
      let bnode = new_node b in
      add_edge cur bnode;
      let after = new_node b in
      let header = new_node b in
      let loops = { break_to = after; continue_to = header } :: loops in
      let bend = translate b ~exit_node ~loops bnode body in
      add_edge bend header;
      append header (mk_expr_stmt cond);
      add_edge header bnode;
      add_edge header after;
      after
  | A.For (init, conds, updates, body) ->
      List.iter (fun e -> append cur (mk_expr_stmt e)) init;
      let header = new_node b in
      add_edge cur header;
      List.iter (fun e -> append header (mk_expr_stmt e)) conds;
      let after = new_node b in
      let bnode = new_node b in
      add_edge header bnode;
      add_edge header after;
      let update = new_node b in
      let loops = { break_to = after; continue_to = update } :: loops in
      let bend = translate b ~exit_node ~loops bnode body in
      add_edge bend update;
      List.iter (fun e -> append update (mk_expr_stmt e)) updates;
      add_edge update header;
      after
  | A.Foreach (subject, binding, body) ->
      let header = new_node b in
      add_edge cur header;
      (* keep the binding as a body-less foreach; the transfer function
         interprets it as the per-iteration assignment *)
      append header (A.mk_s ~pos:s.A.spos (A.Foreach (subject, binding, [])));
      let after = new_node b in
      let bnode = new_node b in
      add_edge header bnode;
      add_edge header after;
      let loops = { break_to = after; continue_to = header } :: loops in
      let bend = translate b ~exit_node ~loops bnode body in
      add_edge bend header;
      after
  | A.Switch (subject, cases) ->
      append cur (mk_expr_stmt subject);
      let merge = new_node b in
      let loops = { break_to = merge; continue_to = merge } :: loops in
      (* each case entered from the switch head; fallthrough edges chain the
         case bodies *)
      let ends =
        List.map
          (fun (c : A.case) ->
            let cnode = new_node b in
            add_edge cur cnode;
            (cnode, translate b ~exit_node ~loops cnode c.A.case_body))
          cases
      in
      let rec chain = function
        | (_, e1) :: ((s2, _) :: _ as rest) ->
            add_edge e1 s2;
            chain rest
        | [ (_, elast) ] -> add_edge elast merge
        | [] -> ()
      in
      chain ends;
      add_edge cur merge;
      merge
  | A.TryCatch (body, catches) ->
      let merge = new_node b in
      let tnode = new_node b in
      add_edge cur tnode;
      let tend = translate b ~exit_node ~loops tnode body in
      add_edge tend merge;
      List.iter
        (fun (c : A.catch) ->
          let cnode = new_node b in
          add_edge cur cnode;
          let cend = translate b ~exit_node ~loops cnode c.A.catch_body in
          add_edge cend merge)
        catches;
      merge
  | A.FuncDef _ | A.ClassDef _ ->
      (* nested declarations are separate CFGs *)
      cur

(** Build the CFG of a statement list. *)
let build (stmts : A.stmt list) : t =
  let b = { rev_nodes = []; count = 0 } in
  let entry = new_node b in
  let exit_node = new_node b in
  let last = translate b ~exit_node ~loops:[] entry stmts in
  add_edge last exit_node;
  let nodes =
    List.rev b.rev_nodes |> Array.of_list
  in
  (* statements were accumulated in reverse *)
  Array.iter (fun n -> n.stmts <- List.rev n.stmts) nodes;
  { nodes; entry = entry.id; exit_ = exit_node.id }

let node t id = t.nodes.(id)
let size t = Array.length t.nodes

(** Reverse-post-order worklist seed for faster convergence. *)
let rpo t =
  let seen = Array.make (size t) false in
  let order = ref [] in
  let rec dfs id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter dfs (node t id).succs;
      order := id :: !order
    end
  in
  dfs t.entry;
  !order
