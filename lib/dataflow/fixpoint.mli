(** Generic forward dataflow engine over {!Cfg}, parameterized by the
    client's lattice and transfer function.  The iteration discipline is
    exactly Pixy's pre-extraction solver, so clients that plug in the same
    lattice reproduce its results byte for byte. *)

type 'st config = {
  init : 'st;  (** in-state of the entry node *)
  bottom : 'st;  (** state of nodes with no computed predecessors *)
  join : 'st -> 'st -> 'st;
  equal : 'st -> 'st -> bool;  (** convergence test *)
  transfer : 'st -> Phplang.Ast.stmt -> 'st;
      (** may carry side effects; runs once per node visit, every pass, so
          effectful clients must de-duplicate and keep their state
          monotonically ascending *)
  max_passes : int;  (** pass budget; exhaustion over-approximates *)
}

type 'st result = {
  exit_state : 'st;  (** out-state of the CFG's exit node *)
  out_states : 'st option array;
      (** per-node out-states; [None] for nodes never reached *)
  passes : int;
  converged : bool;  (** [false] when [max_passes] ran out first *)
}

val solve : ?check:(unit -> unit) -> 'st config -> Cfg.t -> 'st result
(** [solve ?check c cfg] runs the fixpoint to convergence or the pass
    budget.  [check] (default: no-op) is called at the top of every pass;
    it may raise to abandon the solve — the serving daemon passes
    [Secflow.Deadline.check] here so a per-request wall-clock deadline
    cancels long-running fixpoints at pass boundaries. *)
