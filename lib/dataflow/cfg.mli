(** Tool-agnostic control-flow graph of linked basic blocks over
    {!Phplang.Ast} (paper §II).  Statements stay at AST granularity inside
    blocks; branch/loop structure becomes explicit edges, with
    [break]/[continue]/[return]/[exit]/[throw] wired to their targets. *)

type node = {
  id : int;
  mutable stmts : Phplang.Ast.stmt list;  (** in execution order *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_ : int;
}

val build : Phplang.Ast.stmt list -> t
(** Build the CFG of a statement list.  Nested function/class declarations
    contribute no statements (they are separate CFGs).  A body-less
    {!Phplang.Ast.Foreach} in a loop header carries the per-iteration
    binding. *)

val node : t -> int -> node
val size : t -> int

val rpo : t -> int list
(** Reverse post-order of the reachable nodes, starting at [entry] — the
    worklist seed for fast dataflow convergence. *)
