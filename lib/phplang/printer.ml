(** PHP pretty-printer: renders an {!Ast.program} back to PHP source.

    The output is designed to re-parse to an equal AST (positions aside) —
    checked by QCheck round-trip properties — and to look like hand-written
    plugin code, since the corpus generator emits all its PHP through this
    printer. *)

let escape_single s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\'' -> Buffer.add_string buf "\\'"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_double s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '$' -> Buffer.add_string buf "\\$"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '{' -> Buffer.add_string buf "{"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  let s = Printf.sprintf "%.12g" f in
  if String.contains s 'e' || String.contains s 'E' then
    Printf.sprintf "%.6f" f
  else if String.contains s '.' then s
  else s ^ ".0"

(* Precedence levels, matching the parser's grammar. *)
let lv_assign = 1
let lv_ternary = 2
let lv_coalesce = 3
let lv_bool_or = 4
let lv_bool_and = 5
let lv_equality = 6
let lv_relational = 7
let lv_additive = 8
let lv_multiplicative = 9
let lv_unary = 10
let lv_postfix = 11
let lv_primary = 12

let binop_level = function
  | Ast.Coalesce -> lv_coalesce
  | Ast.BoolOr -> lv_bool_or
  | Ast.BoolAnd -> lv_bool_and
  | Ast.Eq | Ast.Neq | Ast.Identical | Ast.NotIdentical -> lv_equality
  | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> lv_relational
  | Ast.Concat | Ast.Plus | Ast.Minus -> lv_additive
  | Ast.Mul | Ast.Div | Ast.Mod -> lv_multiplicative

let binop_sym = function
  | Ast.Concat -> "."
  | Ast.Plus -> "+"
  | Ast.Minus -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Identical -> "==="
  | Ast.NotIdentical -> "!=="
  | Ast.Lt -> "<"
  | Ast.Gt -> ">"
  | Ast.Le -> "<="
  | Ast.Ge -> ">="
  | Ast.BoolAnd -> "&&"
  | Ast.BoolOr -> "||"
  | Ast.Coalesce -> "??"

let cast_sym = function
  | Ast.CastInt -> "(int)"
  | Ast.CastFloat -> "(float)"
  | Ast.CastString -> "(string)"
  | Ast.CastArray -> "(array)"
  | Ast.CastBool -> "(bool)"

let include_sym = function
  | Ast.Include -> "include"
  | Ast.IncludeOnce -> "include_once"
  | Ast.Require -> "require"
  | Ast.RequireOnce -> "require_once"

let vis_sym = function
  | Ast.Public -> "public"
  | Ast.Private -> "private"
  | Ast.Protected -> "protected"

(* leftmost leaf is a variable, as PHP's {$...} interpolation requires *)
let rec interpolatable (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var _ -> true
  | Ast.ArrayGet (b, _) | Ast.Prop (b, _) | Ast.MethodCall (b, _, _) ->
      interpolatable b
  | _ -> false

let rec expr_level (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Assign _ | Ast.AssignRef _ | Ast.OpAssign _ | Ast.ListAssign _
  | Ast.PrintE _ | Ast.IncludeE _ ->
      lv_assign
  | Ast.Ternary _ -> lv_ternary
  | Ast.Bin (op, _, _) -> binop_level op
  | Ast.Un ((Ast.Not | Ast.Neg | Ast.PreInc | Ast.PreDec | Ast.Silence), _)
  | Ast.CastE _ | Ast.New _ ->
      lv_unary
  | Ast.Un ((Ast.PostInc | Ast.PostDec), _)
  | Ast.Call _ | Ast.MethodCall _ | Ast.StaticCall _ | Ast.ArrayGet _
  | Ast.Prop _ ->
      lv_postfix
  | Ast.Null | Ast.True | Ast.False | Ast.Int _ | Ast.Float _ | Ast.Str _
  | Ast.Interp _ | Ast.Var _ | Ast.StaticProp _ | Ast.ClassConst _
  | Ast.Const _ | Ast.ArrayLit _ | Ast.Isset _ | Ast.EmptyE _ | Ast.Exit _
  | Ast.Closure _ ->
      lv_primary

and print_expr buf prec (e : Ast.expr) =
  let level = expr_level e in
  let parens = level < prec in
  if parens then Buffer.add_char buf '(';
  (match e.Ast.e with
  | Ast.Null -> Buffer.add_string buf "null"
  | Ast.True -> Buffer.add_string buf "true"
  | Ast.False -> Buffer.add_string buf "false"
  | Ast.Int n -> Buffer.add_string buf (string_of_int n)
  | Ast.Float f -> Buffer.add_string buf (float_literal f)
  | Ast.Str s ->
      Buffer.add_char buf '\'';
      Buffer.add_string buf (escape_single s);
      Buffer.add_char buf '\''
  | Ast.Interp parts ->
      (* PHP only interpolates expressions rooted at a variable ({$...});
         anything else is spliced out of the string as a concatenation *)
      Buffer.add_char buf '"';
      List.iter
        (function
          | Ast.ILit s -> Buffer.add_string buf (escape_double s)
          | Ast.IExpr e when interpolatable e ->
              Buffer.add_char buf '{';
              print_expr buf 0 e;
              Buffer.add_char buf '}'
          | Ast.IExpr e ->
              Buffer.add_string buf "\" . ";
              print_expr buf (lv_additive + 1) e;
              Buffer.add_string buf " . \"")
        parts;
      Buffer.add_char buf '"'
  | Ast.Var v -> Buffer.add_string buf v
  | Ast.ArrayGet (a, idx) ->
      print_expr buf lv_postfix a;
      Buffer.add_char buf '[';
      (match idx with Some i -> print_expr buf 0 i | None -> ());
      Buffer.add_char buf ']'
  | Ast.Prop (o, p) ->
      print_expr buf lv_postfix o;
      Buffer.add_string buf "->";
      Buffer.add_string buf p
  | Ast.StaticProp (c, p) ->
      Buffer.add_string buf c;
      Buffer.add_string buf "::";
      Buffer.add_string buf p
  | Ast.ClassConst (c, k) ->
      Buffer.add_string buf c;
      Buffer.add_string buf "::";
      Buffer.add_string buf k
  | Ast.Const c -> Buffer.add_string buf c
  | Ast.ArrayLit items ->
      Buffer.add_string buf "array(";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          (match k with
          | Some k ->
              print_expr buf lv_ternary k;
              Buffer.add_string buf " => "
          | None -> ());
          print_expr buf lv_ternary v)
        items;
      Buffer.add_char buf ')'
  | Ast.Call (f, args) ->
      Buffer.add_string buf f;
      print_args buf args
  | Ast.MethodCall (o, m, args) ->
      print_expr buf lv_postfix o;
      Buffer.add_string buf "->";
      Buffer.add_string buf m;
      print_args buf args
  | Ast.StaticCall (c, m, args) ->
      Buffer.add_string buf c;
      Buffer.add_string buf "::";
      Buffer.add_string buf m;
      print_args buf args
  | Ast.New (c, args) ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf c;
      print_args buf args
  | Ast.Assign (l, r) ->
      print_expr buf lv_ternary l;
      Buffer.add_string buf " = ";
      print_expr buf lv_assign r
  | Ast.AssignRef (l, r) ->
      print_expr buf lv_ternary l;
      Buffer.add_string buf " =& ";
      print_expr buf lv_assign r
  | Ast.OpAssign (op, l, r) ->
      print_expr buf lv_ternary l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_sym op);
      Buffer.add_string buf "= ";
      print_expr buf lv_assign r
  | Ast.Bin (Ast.Coalesce, l, r) ->
      (* ?? is right-associative, so the left operand needs the parens *)
      print_expr buf (lv_coalesce + 1) l;
      Buffer.add_string buf " ?? ";
      print_expr buf lv_coalesce r
  | Ast.Bin (op, l, r) ->
      let lv = binop_level op in
      print_expr buf lv l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_sym op);
      Buffer.add_char buf ' ';
      print_expr buf (lv + 1) r
  | Ast.Un (op, operand) -> (
      match op with
      | Ast.Not ->
          Buffer.add_char buf '!';
          print_expr buf lv_unary operand
      | Ast.Neg ->
          Buffer.add_char buf '-';
          (* avoid "--" fusing into T_DEC *)
          let needs_wrap =
            match operand.Ast.e with
            | Ast.Un ((Ast.Neg | Ast.PreDec), _) -> true
            | _ -> false
          in
          if needs_wrap then begin
            Buffer.add_char buf '(';
            print_expr buf 0 operand;
            Buffer.add_char buf ')'
          end
          else print_expr buf lv_unary operand
      | Ast.Silence ->
          Buffer.add_char buf '@';
          print_expr buf lv_unary operand
      | Ast.PreInc ->
          Buffer.add_string buf "++";
          print_expr buf lv_unary operand
      | Ast.PreDec ->
          Buffer.add_string buf "--";
          print_expr buf lv_unary operand
      | Ast.PostInc ->
          print_expr buf lv_postfix operand;
          Buffer.add_string buf "++"
      | Ast.PostDec ->
          print_expr buf lv_postfix operand;
          Buffer.add_string buf "--")
  | Ast.Ternary (c, thn, els) ->
      print_expr buf lv_coalesce c;
      (match thn with
      | Some thn ->
          Buffer.add_string buf " ? ";
          print_expr buf 0 thn;
          Buffer.add_string buf " : "
      | None -> Buffer.add_string buf " ?: ");
      print_expr buf lv_ternary els
  | Ast.CastE (c, operand) ->
      Buffer.add_string buf (cast_sym c);
      Buffer.add_char buf ' ';
      print_expr buf lv_unary operand
  | Ast.Isset es ->
      Buffer.add_string buf "isset(";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          print_expr buf 0 e)
        es;
      Buffer.add_char buf ')'
  | Ast.EmptyE e ->
      Buffer.add_string buf "empty(";
      print_expr buf 0 e;
      Buffer.add_char buf ')'
  | Ast.PrintE e ->
      Buffer.add_string buf "print ";
      print_expr buf lv_assign e
  | Ast.Exit None -> Buffer.add_string buf "exit"
  | Ast.Exit (Some e) ->
      Buffer.add_string buf "exit(";
      print_expr buf 0 e;
      Buffer.add_char buf ')'
  | Ast.IncludeE (kind, e) ->
      Buffer.add_string buf (include_sym kind);
      Buffer.add_char buf ' ';
      print_expr buf lv_assign e
  | Ast.Closure c ->
      Buffer.add_string buf "function";
      print_params buf c.Ast.cl_params;
      (match c.Ast.cl_uses with
      | [] -> ()
      | uses ->
          Buffer.add_string buf " use (";
          List.iteri
            (fun i (v, by_ref) ->
              if i > 0 then Buffer.add_string buf ", ";
              if by_ref then Buffer.add_char buf '&';
              Buffer.add_string buf v)
            uses;
          Buffer.add_char buf ')');
      Buffer.add_string buf " {\n";
      print_stmts buf 1 c.Ast.cl_body;
      Buffer.add_string buf "}"
  | Ast.ListAssign (slots, rhs) ->
      Buffer.add_string buf "list(";
      List.iteri
        (fun i slot ->
          if i > 0 then Buffer.add_string buf ", ";
          match slot with Some e -> print_expr buf 0 e | None -> ())
        slots;
      Buffer.add_string buf ") = ";
      print_expr buf lv_assign rhs);
  if parens then Buffer.add_char buf ')'

and print_args buf args =
  Buffer.add_char buf '(';
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      print_expr buf lv_ternary a)
    args;
  Buffer.add_char buf ')'

and print_params buf params =
  Buffer.add_char buf '(';
  List.iteri
    (fun i (p : Ast.param) ->
      if i > 0 then Buffer.add_string buf ", ";
      (match p.Ast.p_hint with
      | Some h ->
          Buffer.add_string buf h;
          Buffer.add_char buf ' '
      | None -> ());
      if p.Ast.p_by_ref then Buffer.add_char buf '&';
      Buffer.add_string buf p.Ast.p_name;
      match p.Ast.p_default with
      | Some d ->
          Buffer.add_string buf " = ";
          print_expr buf lv_ternary d
      | None -> ())
    params;
  Buffer.add_char buf ')'

and indent buf depth = Buffer.add_string buf (String.make (depth * 4) ' ')

and print_block buf depth body =
  Buffer.add_string buf "{\n";
  print_stmts buf (depth + 1) body;
  indent buf depth;
  Buffer.add_string buf "}"

and print_stmts buf depth stmts =
  List.iter (fun s -> print_stmt buf depth s) stmts

and print_stmt buf depth (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.InlineHtml html ->
      (* leave PHP mode; the lexer eats one newline right after ?> so the
         HTML text is emitted verbatim *)
      indent buf depth;
      Buffer.add_string buf "?>";
      Buffer.add_string buf html;
      Buffer.add_string buf "<?php\n"
  | Ast.Nop ->
      indent buf depth;
      Buffer.add_string buf ";\n"
  | Ast.Expr e ->
      indent buf depth;
      print_expr buf 0 e;
      Buffer.add_string buf ";\n"
  | Ast.Echo es ->
      indent buf depth;
      Buffer.add_string buf "echo ";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string buf ", ";
          print_expr buf 0 e)
        es;
      Buffer.add_string buf ";\n"
  | Ast.If (branches, els) ->
      indent buf depth;
      List.iteri
        (fun i (cond, body) ->
          if i > 0 then Buffer.add_string buf " elseif ("
          else Buffer.add_string buf "if (";
          print_expr buf 0 cond;
          Buffer.add_string buf ") ";
          print_block buf depth body)
        branches;
      (match els with
      | Some body ->
          Buffer.add_string buf " else ";
          print_block buf depth body
      | None -> ());
      Buffer.add_char buf '\n'
  | Ast.While (cond, body) ->
      indent buf depth;
      Buffer.add_string buf "while (";
      print_expr buf 0 cond;
      Buffer.add_string buf ") ";
      print_block buf depth body;
      Buffer.add_char buf '\n'
  | Ast.DoWhile (body, cond) ->
      indent buf depth;
      Buffer.add_string buf "do ";
      print_block buf depth body;
      Buffer.add_string buf " while (";
      print_expr buf 0 cond;
      Buffer.add_string buf ");\n"
  | Ast.For (init, cond, update, body) ->
      indent buf depth;
      Buffer.add_string buf "for (";
      print_expr_list buf init;
      Buffer.add_string buf "; ";
      print_expr_list buf cond;
      Buffer.add_string buf "; ";
      print_expr_list buf update;
      Buffer.add_string buf ") ";
      print_block buf depth body;
      Buffer.add_char buf '\n'
  | Ast.Foreach (subject, binding, body) ->
      indent buf depth;
      Buffer.add_string buf "foreach (";
      print_expr buf 0 subject;
      Buffer.add_string buf " as ";
      (match binding with
      | Ast.ForeachValue v -> print_expr buf 0 v
      | Ast.ForeachKeyValue (k, v) ->
          print_expr buf 0 k;
          Buffer.add_string buf " => ";
          print_expr buf 0 v);
      Buffer.add_string buf ") ";
      print_block buf depth body;
      Buffer.add_char buf '\n'
  | Ast.Switch (subject, cases) ->
      indent buf depth;
      Buffer.add_string buf "switch (";
      print_expr buf 0 subject;
      Buffer.add_string buf ") {\n";
      List.iter
        (fun (c : Ast.case) ->
          indent buf (depth + 1);
          (match c.Ast.case_guard with
          | Some g ->
              Buffer.add_string buf "case ";
              print_expr buf 0 g;
              Buffer.add_string buf ":\n"
          | None -> Buffer.add_string buf "default:\n");
          print_stmts buf (depth + 2) c.Ast.case_body)
        cases;
      indent buf depth;
      Buffer.add_string buf "}\n"
  | Ast.Break ->
      indent buf depth;
      Buffer.add_string buf "break;\n"
  | Ast.Continue ->
      indent buf depth;
      Buffer.add_string buf "continue;\n"
  | Ast.Return None ->
      indent buf depth;
      Buffer.add_string buf "return;\n"
  | Ast.Return (Some e) ->
      indent buf depth;
      Buffer.add_string buf "return ";
      print_expr buf 0 e;
      Buffer.add_string buf ";\n"
  | Ast.Global vars ->
      indent buf depth;
      Buffer.add_string buf "global ";
      Buffer.add_string buf (String.concat ", " vars);
      Buffer.add_string buf ";\n"
  | Ast.StaticVar vars ->
      indent buf depth;
      Buffer.add_string buf "static ";
      List.iteri
        (fun i (v, init) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf v;
          match init with
          | Some e ->
              Buffer.add_string buf " = ";
              print_expr buf lv_ternary e
          | None -> ())
        vars;
      Buffer.add_string buf ";\n"
  | Ast.Unset es ->
      indent buf depth;
      Buffer.add_string buf "unset(";
      print_expr_list buf es;
      Buffer.add_string buf ");\n"
  | Ast.Block body ->
      indent buf depth;
      print_block buf depth body;
      Buffer.add_char buf '\n'
  | Ast.FuncDef f ->
      indent buf depth;
      Buffer.add_string buf "function ";
      Buffer.add_string buf f.Ast.f_name;
      print_params buf f.Ast.f_params;
      Buffer.add_char buf ' ';
      print_block buf depth f.Ast.f_body;
      Buffer.add_char buf '\n'
  | Ast.ClassDef c ->
      indent buf depth;
      Buffer.add_string buf "class ";
      Buffer.add_string buf c.Ast.c_name;
      (match c.Ast.c_parent with
      | Some p ->
          Buffer.add_string buf " extends ";
          Buffer.add_string buf p
      | None -> ());
      (match c.Ast.c_implements with
      | [] -> ()
      | ifaces ->
          Buffer.add_string buf " implements ";
          Buffer.add_string buf (String.concat ", " ifaces));
      Buffer.add_string buf " {\n";
      List.iter
        (fun (name, v) ->
          indent buf (depth + 1);
          Buffer.add_string buf "const ";
          Buffer.add_string buf name;
          Buffer.add_string buf " = ";
          print_expr buf lv_ternary v;
          Buffer.add_string buf ";\n")
        c.Ast.c_consts;
      List.iter
        (fun (p : Ast.prop_def) ->
          indent buf (depth + 1);
          Buffer.add_string buf (vis_sym p.Ast.pr_vis);
          if p.Ast.pr_static then Buffer.add_string buf " static";
          Buffer.add_char buf ' ';
          Buffer.add_string buf p.Ast.pr_name;
          (match p.Ast.pr_default with
          | Some d ->
              Buffer.add_string buf " = ";
              print_expr buf lv_ternary d
          | None -> ());
          Buffer.add_string buf ";\n")
        c.Ast.c_props;
      List.iter
        (fun (m : Ast.method_def) ->
          indent buf (depth + 1);
          Buffer.add_string buf (vis_sym m.Ast.m_vis);
          if m.Ast.m_static then Buffer.add_string buf " static";
          Buffer.add_string buf " function ";
          Buffer.add_string buf m.Ast.m_func.Ast.f_name;
          print_params buf m.Ast.m_func.Ast.f_params;
          Buffer.add_char buf ' ';
          print_block buf (depth + 1) m.Ast.m_func.Ast.f_body;
          Buffer.add_char buf '\n')
        c.Ast.c_methods;
      indent buf depth;
      Buffer.add_string buf "}\n"
  | Ast.Throw e ->
      indent buf depth;
      Buffer.add_string buf "throw ";
      print_expr buf 0 e;
      Buffer.add_string buf ";\n"
  | Ast.TryCatch (body, catches) ->
      indent buf depth;
      Buffer.add_string buf "try ";
      print_block buf depth body;
      List.iter
        (fun (c : Ast.catch) ->
          Buffer.add_string buf " catch (";
          Buffer.add_string buf c.Ast.catch_class;
          Buffer.add_char buf ' ';
          Buffer.add_string buf c.Ast.catch_var;
          Buffer.add_string buf ") ";
          print_block buf depth c.Ast.catch_body)
        catches;
      Buffer.add_char buf '\n'

and print_expr_list buf es =
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ", ";
      print_expr buf 0 e)
    es

(** Render a whole program as a PHP file, starting with [<?php]. *)
let program_to_string (p : Ast.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?php\n";
  print_stmts buf 0 p;
  Buffer.contents buf

(** Render a single expression (without tags). *)
let expr_to_string (e : Ast.expr) =
  let buf = Buffer.create 64 in
  print_expr buf 0 e;
  Buffer.contents buf

(** Render a single statement at depth 0 (without tags). *)
let stmt_to_string (s : Ast.stmt) =
  let buf = Buffer.create 128 in
  print_stmt buf 0 s;
  Buffer.contents buf
