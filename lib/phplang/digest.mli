(** Content digests for the incremental-analysis cache — see digest.ml. *)

val string : string -> string
(** Raw 16-byte MD5 (same as [Stdlib.Digest.string]). *)

val hex : string -> string
(** Lowercase hex MD5 of a string — safe to use as a file name. *)

val structural : 'a -> string
(** Hex MD5 of the value's [Marshal] bytes.  The value must be
    closure-free; structurally equal values digest equal. *)

val combine : string list -> string
(** Order-sensitive digest of a list of strings. *)
