(** Abstract syntax tree for the PHP 5 subset used by WordPress-style
    plugins.  Every expression and statement carries a source position so
    analyzers can report the exact file/line of sources, sinks and
    intermediate assignments (paper §III.D). *)

type pos = { file : string; line : int }

let dummy_pos = { file = "<none>"; line = 0 }
let pp_pos ppf p = Format.fprintf ppf "%s:%d" p.file p.line

type binop =
  | Concat  (** [.] — the operator that matters most for taint analysis *)
  | Plus | Minus | Mul | Div | Mod
  | Eq | Neq | Identical | NotIdentical
  | Lt | Gt | Le | Ge
  | BoolAnd | BoolOr
  | Coalesce  (** [??] — value-selecting, so taint flows from both sides *)

type unop = Not | Neg | PreInc | PreDec | PostInc | PostDec | Silence

type cast = CastInt | CastFloat | CastString | CastArray | CastBool

type include_kind = Include | IncludeOnce | Require | RequireOnce

type visibility = Public | Private | Protected

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Null
  | True
  | False
  | Int of int
  | Float of float
  | Str of string                       (** decoded single-quoted literal *)
  | Interp of interp_part list          (** double-quoted string *)
  | Var of string                       (** ["$x"], dollar included *)
  | ArrayGet of expr * expr option      (** [$a[e]]; [None] is [$a[]] *)
  | Prop of expr * string               (** [$o->p] *)
  | StaticProp of string * string       (** [C::$p], property name w/ [$] *)
  | ClassConst of string * string       (** [C::K] *)
  | Const of string                     (** bare identifier constant *)
  | ArrayLit of (expr option * expr) list  (** [array(k => v, v2, ...)] *)
  | Call of string * expr list
  | MethodCall of expr * string * expr list    (** [$o->m(args)] *)
  | StaticCall of string * string * expr list  (** [C::m(args)] *)
  | New of string * expr list
  | Assign of expr * expr
  | AssignRef of expr * expr            (** [$a =& $b] (Pixy's -A flag) *)
  | OpAssign of binop * expr * expr     (** [.=], [+=], ... *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Ternary of expr * expr option * expr  (** [c ? a : b]; [c ?: b] *)
  | CastE of cast * expr
  | Isset of expr list
  | EmptyE of expr
  | PrintE of expr                      (** [print e] is an expression *)
  | Exit of expr option                 (** [exit] / [die] *)
  | IncludeE of include_kind * expr
  | Closure of closure
  | ListAssign of expr option list * expr  (** [list($a, , $b) = e] *)

and interp_part = ILit of string | IExpr of expr

and closure = {
  cl_params : param list;
  cl_uses : (string * bool) list;  (** captured vars; [true] = by reference *)
  cl_body : stmt list;
}

and param = {
  p_name : string;   (** with [$] *)
  p_default : expr option;
  p_by_ref : bool;
  p_hint : string option;  (** class type hint, e.g. [WP_Widget] *)
}

and stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Expr of expr
  | Echo of expr list
  | If of (expr * stmt list) list * stmt list option
      (** if / elseif* chain, optional else *)
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | For of expr list * expr list * expr list * stmt list
  | Foreach of expr * foreach_binding * stmt list
  | Switch of expr * case list
  | Break
  | Continue
  | Return of expr option
  | Global of string list                (** variable names with [$] *)
  | StaticVar of (string * expr option) list
  | Unset of expr list
  | Block of stmt list
  | FuncDef of func
  | ClassDef of cls
  | InlineHtml of string
  | Throw of expr
  | TryCatch of stmt list * catch list
  | Nop

and foreach_binding =
  | ForeachValue of expr                (** [as $v] *)
  | ForeachKeyValue of expr * expr      (** [as $k => $v] *)

and case = { case_guard : expr option; case_body : stmt list }
    (** [case_guard = None] is [default:] *)

and catch = { catch_class : string; catch_var : string; catch_body : stmt list }

and func = {
  f_name : string;
  f_params : param list;
  f_body : stmt list;
  f_pos : pos;
}

and cls = {
  c_name : string;
  c_parent : string option;
  c_implements : string list;
  c_consts : (string * expr) list;
  c_props : prop_def list;
  c_methods : method_def list;
  c_pos : pos;
}

and prop_def = {
  pr_vis : visibility;
  pr_static : bool;
  pr_name : string;  (** with [$] *)
  pr_default : expr option;
}

and method_def = {
  m_vis : visibility;
  m_static : bool;
  m_func : func;
}

type program = stmt list

let mk_e ?(pos = dummy_pos) e = { e; epos = pos }
let mk_s ?(pos = dummy_pos) s = { s; spos = pos }

(** Structural equality ignoring positions — used by the parse/print
    round-trip property tests. *)
let rec equal_expr (a : expr) (b : expr) =
  match (a.e, b.e) with
  | Null, Null | True, True | False, False -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Interp xs, Interp ys -> equal_list equal_interp xs ys
  | Var x, Var y | Const x, Const y -> String.equal x y
  | ArrayGet (a1, i1), ArrayGet (a2, i2) ->
      equal_expr a1 a2 && Option.equal equal_expr i1 i2
  | Prop (o1, p1), Prop (o2, p2) -> equal_expr o1 o2 && String.equal p1 p2
  | StaticProp (c1, p1), StaticProp (c2, p2)
  | ClassConst (c1, p1), ClassConst (c2, p2) ->
      String.equal c1 c2 && String.equal p1 p2
  | ArrayLit xs, ArrayLit ys ->
      equal_list
        (fun (k1, v1) (k2, v2) ->
          Option.equal equal_expr k1 k2 && equal_expr v1 v2)
        xs ys
  | Call (f1, a1), Call (f2, a2) ->
      String.equal f1 f2 && equal_list equal_expr a1 a2
  | MethodCall (o1, m1, a1), MethodCall (o2, m2, a2) ->
      equal_expr o1 o2 && String.equal m1 m2 && equal_list equal_expr a1 a2
  | StaticCall (c1, m1, a1), StaticCall (c2, m2, a2) ->
      String.equal c1 c2 && String.equal m1 m2 && equal_list equal_expr a1 a2
  | New (c1, a1), New (c2, a2) ->
      String.equal c1 c2 && equal_list equal_expr a1 a2
  | Assign (l1, r1), Assign (l2, r2) | AssignRef (l1, r1), AssignRef (l2, r2)
    ->
      equal_expr l1 l2 && equal_expr r1 r2
  | OpAssign (o1, l1, r1), OpAssign (o2, l2, r2) ->
      o1 = o2 && equal_expr l1 l2 && equal_expr r1 r2
  | Bin (o1, l1, r1), Bin (o2, l2, r2) ->
      o1 = o2 && equal_expr l1 l2 && equal_expr r1 r2
  | Un (o1, e1), Un (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Ternary (c1, t1, e1), Ternary (c2, t2, e2) ->
      equal_expr c1 c2 && Option.equal equal_expr t1 t2 && equal_expr e1 e2
  | CastE (c1, e1), CastE (c2, e2) -> c1 = c2 && equal_expr e1 e2
  | Isset xs, Isset ys -> equal_list equal_expr xs ys
  | EmptyE e1, EmptyE e2 | PrintE e1, PrintE e2 -> equal_expr e1 e2
  | Exit e1, Exit e2 -> Option.equal equal_expr e1 e2
  | IncludeE (k1, e1), IncludeE (k2, e2) -> k1 = k2 && equal_expr e1 e2
  | Closure c1, Closure c2 ->
      equal_list equal_param c1.cl_params c2.cl_params
      && c1.cl_uses = c2.cl_uses
      && equal_list equal_stmt c1.cl_body c2.cl_body
  | ListAssign (l1, r1), ListAssign (l2, r2) ->
      equal_list (Option.equal equal_expr) l1 l2 && equal_expr r1 r2
  | _, _ -> false

and equal_interp a b =
  match (a, b) with
  | ILit x, ILit y -> String.equal x y
  | IExpr x, IExpr y -> equal_expr x y
  | _, _ -> false

and equal_param (a : param) (b : param) =
  String.equal a.p_name b.p_name
  && Option.equal equal_expr a.p_default b.p_default
  && a.p_by_ref = b.p_by_ref
  && Option.equal String.equal a.p_hint b.p_hint

and equal_stmt (a : stmt) (b : stmt) =
  match (a.s, b.s) with
  | Expr e1, Expr e2 -> equal_expr e1 e2
  | Echo xs, Echo ys -> equal_list equal_expr xs ys
  | If (br1, el1), If (br2, el2) ->
      equal_list
        (fun (c1, b1) (c2, b2) -> equal_expr c1 c2 && equal_list equal_stmt b1 b2)
        br1 br2
      && Option.equal (equal_list equal_stmt) el1 el2
  | While (c1, b1), While (c2, b2) ->
      equal_expr c1 c2 && equal_list equal_stmt b1 b2
  | DoWhile (b1, c1), DoWhile (b2, c2) ->
      equal_list equal_stmt b1 b2 && equal_expr c1 c2
  | For (i1, c1, u1, b1), For (i2, c2, u2, b2) ->
      equal_list equal_expr i1 i2 && equal_list equal_expr c1 c2
      && equal_list equal_expr u1 u2 && equal_list equal_stmt b1 b2
  | Foreach (e1, bind1, b1), Foreach (e2, bind2, b2) ->
      equal_expr e1 e2 && equal_binding bind1 bind2 && equal_list equal_stmt b1 b2
  | Switch (e1, cs1), Switch (e2, cs2) ->
      equal_expr e1 e2
      && equal_list
           (fun c1 c2 ->
             Option.equal equal_expr c1.case_guard c2.case_guard
             && equal_list equal_stmt c1.case_body c2.case_body)
           cs1 cs2
  | Break, Break | Continue, Continue | Nop, Nop -> true
  | Return e1, Return e2 -> Option.equal equal_expr e1 e2
  | Global v1, Global v2 -> v1 = v2
  | StaticVar v1, StaticVar v2 ->
      equal_list
        (fun (n1, d1) (n2, d2) ->
          String.equal n1 n2 && Option.equal equal_expr d1 d2)
        v1 v2
  | Unset xs, Unset ys -> equal_list equal_expr xs ys
  | Block b1, Block b2 -> equal_list equal_stmt b1 b2
  | FuncDef f1, FuncDef f2 -> equal_func f1 f2
  | ClassDef c1, ClassDef c2 -> equal_cls c1 c2
  | InlineHtml h1, InlineHtml h2 -> String.equal h1 h2
  | Throw e1, Throw e2 -> equal_expr e1 e2
  | TryCatch (b1, c1), TryCatch (b2, c2) ->
      equal_list equal_stmt b1 b2
      && equal_list
           (fun x y ->
             String.equal x.catch_class y.catch_class
             && String.equal x.catch_var y.catch_var
             && equal_list equal_stmt x.catch_body y.catch_body)
           c1 c2
  | _, _ -> false

and equal_binding a b =
  match (a, b) with
  | ForeachValue e1, ForeachValue e2 -> equal_expr e1 e2
  | ForeachKeyValue (k1, v1), ForeachKeyValue (k2, v2) ->
      equal_expr k1 k2 && equal_expr v1 v2
  | _, _ -> false

and equal_func (a : func) (b : func) =
  String.equal a.f_name b.f_name
  && equal_list equal_param a.f_params b.f_params
  && equal_list equal_stmt a.f_body b.f_body

and equal_cls (a : cls) (b : cls) =
  String.equal a.c_name b.c_name
  && Option.equal String.equal a.c_parent b.c_parent
  && a.c_implements = b.c_implements
  && equal_list
       (fun (n1, e1) (n2, e2) -> String.equal n1 n2 && equal_expr e1 e2)
       a.c_consts b.c_consts
  && equal_list
       (fun p1 p2 ->
         p1.pr_vis = p2.pr_vis && p1.pr_static = p2.pr_static
         && String.equal p1.pr_name p2.pr_name
         && Option.equal equal_expr p1.pr_default p2.pr_default)
       a.c_props b.c_props
  && equal_list
       (fun m1 m2 ->
         m1.m_vis = m2.m_vis && m1.m_static = m2.m_static
         && equal_func m1.m_func m2.m_func)
       a.c_methods b.c_methods

and equal_list : 'a. ('a -> 'a -> bool) -> 'a list -> 'a list -> bool =
 fun eq xs ys ->
  List.length xs = List.length ys && List.for_all2 eq xs ys

let equal_program = equal_list equal_stmt

(** Rebase every recorded position by [delta] source lines — the reused
    suffix of an incrementally re-parsed file keeps its subtrees with their
    lines shifted by the edit's net newline count.  [delta = 0] returns the
    argument unchanged, sharing the whole tree. *)
let shift_pos d (p : pos) = { p with line = p.line + d }

let rec shift_expr d (x : expr) =
  { e = shift_expr_desc d x.e; epos = shift_pos d x.epos }

and shift_expr_desc d = function
  | ( Null | True | False | Int _ | Float _ | Str _ | Var _ | StaticProp _
    | ClassConst _ | Const _ ) as e ->
      e
  | Interp ps -> Interp (List.map (shift_interp d) ps)
  | ArrayGet (a, i) -> ArrayGet (shift_expr d a, Option.map (shift_expr d) i)
  | Prop (o, p) -> Prop (shift_expr d o, p)
  | ArrayLit kvs ->
      ArrayLit
        (List.map
           (fun (k, v) -> (Option.map (shift_expr d) k, shift_expr d v))
           kvs)
  | Call (f, args) -> Call (f, List.map (shift_expr d) args)
  | MethodCall (o, m, args) ->
      MethodCall (shift_expr d o, m, List.map (shift_expr d) args)
  | StaticCall (c, m, args) ->
      StaticCall (c, m, List.map (shift_expr d) args)
  | New (c, args) -> New (c, List.map (shift_expr d) args)
  | Assign (l, r) -> Assign (shift_expr d l, shift_expr d r)
  | AssignRef (l, r) -> AssignRef (shift_expr d l, shift_expr d r)
  | OpAssign (o, l, r) -> OpAssign (o, shift_expr d l, shift_expr d r)
  | Bin (o, l, r) -> Bin (o, shift_expr d l, shift_expr d r)
  | Un (o, e) -> Un (o, shift_expr d e)
  | Ternary (c, t, e) ->
      Ternary (shift_expr d c, Option.map (shift_expr d) t, shift_expr d e)
  | CastE (c, e) -> CastE (c, shift_expr d e)
  | Isset es -> Isset (List.map (shift_expr d) es)
  | EmptyE e -> EmptyE (shift_expr d e)
  | PrintE e -> PrintE (shift_expr d e)
  | Exit e -> Exit (Option.map (shift_expr d) e)
  | IncludeE (k, e) -> IncludeE (k, shift_expr d e)
  | Closure c ->
      Closure
        {
          c with
          cl_params = List.map (shift_param d) c.cl_params;
          cl_body = List.map (shift_stmt d) c.cl_body;
        }
  | ListAssign (ls, r) ->
      ListAssign (List.map (Option.map (shift_expr d)) ls, shift_expr d r)

and shift_interp d = function
  | ILit _ as p -> p
  | IExpr e -> IExpr (shift_expr d e)

and shift_param d (p : param) =
  { p with p_default = Option.map (shift_expr d) p.p_default }

and shift_stmt d (x : stmt) =
  { s = shift_stmt_desc d x.s; spos = shift_pos d x.spos }

and shift_stmt_desc d = function
  | Expr e -> Expr (shift_expr d e)
  | Echo es -> Echo (List.map (shift_expr d) es)
  | If (branches, els) ->
      If
        ( List.map
            (fun (c, b) -> (shift_expr d c, List.map (shift_stmt d) b))
            branches,
          Option.map (List.map (shift_stmt d)) els )
  | While (c, b) -> While (shift_expr d c, List.map (shift_stmt d) b)
  | DoWhile (b, c) -> DoWhile (List.map (shift_stmt d) b, shift_expr d c)
  | For (i, c, u, b) ->
      For
        ( List.map (shift_expr d) i,
          List.map (shift_expr d) c,
          List.map (shift_expr d) u,
          List.map (shift_stmt d) b )
  | Foreach (e, bind, b) ->
      Foreach (shift_expr d e, shift_binding d bind, List.map (shift_stmt d) b)
  | Switch (e, cs) ->
      Switch
        ( shift_expr d e,
          List.map
            (fun c ->
              {
                case_guard = Option.map (shift_expr d) c.case_guard;
                case_body = List.map (shift_stmt d) c.case_body;
              })
            cs )
  | (Break | Continue | Nop | Global _ | InlineHtml _) as s -> s
  | Return e -> Return (Option.map (shift_expr d) e)
  | StaticVar vs ->
      StaticVar (List.map (fun (n, e) -> (n, Option.map (shift_expr d) e)) vs)
  | Unset es -> Unset (List.map (shift_expr d) es)
  | Block b -> Block (List.map (shift_stmt d) b)
  | FuncDef f -> FuncDef (shift_func d f)
  | ClassDef c -> ClassDef (shift_cls d c)
  | Throw e -> Throw (shift_expr d e)
  | TryCatch (b, cs) ->
      TryCatch
        ( List.map (shift_stmt d) b,
          List.map
            (fun c -> { c with catch_body = List.map (shift_stmt d) c.catch_body })
            cs )

and shift_binding d = function
  | ForeachValue e -> ForeachValue (shift_expr d e)
  | ForeachKeyValue (k, v) -> ForeachKeyValue (shift_expr d k, shift_expr d v)

and shift_func d (f : func) =
  {
    f with
    f_params = List.map (shift_param d) f.f_params;
    f_body = List.map (shift_stmt d) f.f_body;
    f_pos = shift_pos d f.f_pos;
  }

and shift_cls d (c : cls) =
  {
    c with
    c_consts = List.map (fun (n, e) -> (n, shift_expr d e)) c.c_consts;
    c_props =
      List.map
        (fun p -> { p with pr_default = Option.map (shift_expr d) p.pr_default })
        c.c_props;
    c_methods =
      List.map (fun m -> { m with m_func = shift_func d m.m_func }) c.c_methods;
    c_pos = shift_pos d c.c_pos;
  }

let shift_lines delta (p : program) =
  if delta = 0 then p else List.map (shift_stmt delta) p

(** Number of statements in a program, counting nested bodies — a cheap
    complexity proxy used by tests and the corpus generator. *)
let rec program_size (p : program) =
  List.fold_left (fun acc s -> acc + stmt_size s) 0 p

and stmt_size (s : stmt) =
  1
  +
  match s.s with
  | Expr _ | Echo _ | Break | Continue | Return _ | Global _ | StaticVar _
  | Unset _ | InlineHtml _ | Throw _ | Nop ->
      0
  | If (branches, els) ->
      List.fold_left (fun acc (_, b) -> acc + program_size b) 0 branches
      + (match els with Some b -> program_size b | None -> 0)
  | While (_, b) | DoWhile (b, _) | Foreach (_, _, b) | Block b ->
      program_size b
  | For (_, _, _, b) -> program_size b
  | Switch (_, cases) ->
      List.fold_left (fun acc c -> acc + program_size c.case_body) 0 cases
  | FuncDef f -> program_size f.f_body
  | ClassDef c ->
      List.fold_left
        (fun acc m -> acc + program_size m.m_func.f_body)
        0 c.c_methods
  | TryCatch (b, catches) ->
      program_size b
      + List.fold_left (fun acc c -> acc + program_size c.catch_body) 0 catches
