(** Persistent content-addressed artifact store — see store.ml for the
    on-disk frame, layout and safety guarantees. *)

val format_version : int
(** Version stamp of the on-disk format; entries written under any other
    version are invisible (a miss). *)

val set_root : string option -> unit
(** Point the store at a directory (created on demand), or disable it with
    [None].  Call from the main domain before analysis starts. *)

val root : unit -> string option

val enabled : unit -> bool
(** [true] when a root directory is configured.  The initial root comes
    from [PHPSAFE_CACHE_DIR] when set and non-empty. *)

val get : ns:string -> key:string -> 'a option
(** Look up an entry.  [None] when the store is disabled, the entry is
    absent, was written by another format version, or fails verification
    (corrupt/truncated files are misses, never errors).  The caller must
    only read back values under the same [ns]/[key] discipline used to
    [put] them — the type is not checked beyond the digest frame. *)

val put : ns:string -> key:string -> 'a -> unit
(** Persist an entry (atomically: temp file + rename).  The value must be
    closure-free.  Disk faults on the write path — [ENOSPC], [EACCES], a
    short write, an unwritable root (surfacing as [Sys_error] or
    [Unix_error]) — degrade to "not cached" and are counted as a
    [write_error] for the namespace (Obs counter
    [cache.<ns>.write_error]); the temp file, if created, is removed.
    Programming errors (anything outside that set) still propagate. *)

type stats = {
  ns : string;
  hits : int;
  misses : int;
  stores : int;
  write_errors : int;
}

val counters : unit -> stats list
(** Per-namespace hit/miss/store/write-error counts since start (or the
    last {!reset_counters}), sorted by namespace. *)

val reset_counters : unit -> unit

val pp_counters : Format.formatter -> unit -> unit

(** {1 Tenant namespacing} *)

val with_tenant : string option -> (unit -> 'a) -> 'a
(** [with_tenant (Some t) f] runs [f] with every namespace prefixed as
    ["t/<ns>"] — on disk a per-tenant directory level, in the counters a
    per-tenant namespace — so the serving daemon's tenants never share
    cache entries.  The prefix is domain-local: set it inside the worker
    that analyzes one request and concurrent requests for other tenants
    are unaffected.  [with_tenant None f] runs [f] with plain namespaces.
    Tenant names are restricted to [A-Za-z0-9_.-] (and must not be ["."]
    or [".."]); anything else raises [Invalid_argument]. *)

val valid_tenant : string -> bool

(** {1 Disk-tier accounting} — a long-running daemon's view of how much
    the store holds, and the lever that keeps it bounded. *)

type disk_stats = { ds_ns : string; ds_entries : int; ds_bytes : int }

val stats : unit -> disk_stats list
(** Per-namespace entry count and payload bytes of the active format
    version on disk, sorted by namespace (per-tenant namespaces appear as
    ["tenant/ns"]).  Empty when the store is disabled. *)

val prune : max_age_s:float -> unit -> int
(** [prune ~max_age_s ()] removes every entry whose mtime is older than
    [max_age_s] seconds, returning how many were removed (each also bumps
    the [cache.pruned] counter).  Concurrent readers are safe: a pruned
    entry is simply a future miss.  Stale [.tmp] write droppings age out
    the same way. *)

type fsck_report = { fk_scanned : int; fk_ok : int; fk_quarantined : int }

val fsck : unit -> fsck_report
(** Verify every entry of the active format version (frame header +
    payload digest — the same check {!get} applies) and move corrupt ones
    to [<root>/quarantine/<ns>__<key>] rather than deleting them, so an
    operator can inspect what rotted.  In-flight [.wip*.tmp] files are
    skipped, and [quarantine/] itself lives outside the [v<N>] tree so it
    is never rescanned.  Each quarantined entry bumps
    [cache.fsck.quarantined].  All-zero report when the store is
    disabled.  Readers stay safe throughout: a quarantined entry is a
    future miss. *)

(** {1 Fault injection} *)

val set_fault_hook : ([ `Read | `Write ] -> string -> unit) option -> unit
(** Install (or clear) a process-global hook called just before the store
    reads or writes an entry file.  A hook that raises simulates a disk
    fault at exactly the points production error handling covers: on
    [`Read] the lookup degrades to a miss, on [`Write] the {!put} becomes
    a counted write error.  For tests and the chaos harness only. *)
