(** Persistent content-addressed artifact store — see store.ml for the
    on-disk frame, layout and safety guarantees. *)

val format_version : int
(** Version stamp of the on-disk format; entries written under any other
    version are invisible (a miss). *)

val set_root : string option -> unit
(** Point the store at a directory (created on demand), or disable it with
    [None].  Call from the main domain before analysis starts. *)

val root : unit -> string option

val enabled : unit -> bool
(** [true] when a root directory is configured.  The initial root comes
    from [PHPSAFE_CACHE_DIR] when set and non-empty. *)

val get : ns:string -> key:string -> 'a option
(** Look up an entry.  [None] when the store is disabled, the entry is
    absent, was written by another format version, or fails verification
    (corrupt/truncated files are misses, never errors).  The caller must
    only read back values under the same [ns]/[key] discipline used to
    [put] them — the type is not checked beyond the digest frame. *)

val put : ns:string -> key:string -> 'a -> unit
(** Persist an entry (atomically: temp file + rename).  The value must be
    closure-free.  I/O failures are swallowed; the entry is simply not
    cached. *)

type stats = { ns : string; hits : int; misses : int; stores : int }

val counters : unit -> stats list
(** Per-namespace hit/miss/store counts since start (or the last
    {!reset_counters}), sorted by namespace. *)

val reset_counters : unit -> unit

val pp_counters : Format.formatter -> unit -> unit
