(** PHP tokenizer — the [token_get_all] equivalent that phpSAFE's model
    construction stage builds on (paper §III.B).

    The lexer recognises the PHP 5 subset used by WordPress-style plugins:
    open/close tags with inline HTML, variables, identifiers/keywords,
    integer/float literals, single- and double-quoted strings (the latter kept
    raw; interpolation is expanded by the parser), comments, casts and the
    full operator set in {!Token.kind}. *)

exception Error of string * int  (** message, line *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable in_php : bool;  (* inside <?php ... ?> *)
  scratch : Buffer.t;
      (* one buffer per tokenize call, cleared and reused by every string
         literal — per-state rather than global so concurrent domains never
         share it *)
  interned : (string, string) Hashtbl.t;
      (* recurring lexemes (keywords, identifiers, variables, whitespace
         runs) share a single allocation per file *)
}

let fail st msg = raise (Error (msg, st.line))

(* Lexeme interning: the first occurrence is kept, every later equal lexeme
   returns the retained string and drops its own allocation.  The hit
   counter is the evidence: on a typical plugin file most ident/keyword
   tokens are intern hits. *)
let intern st s =
  match Hashtbl.find_opt st.interned s with
  | Some s' ->
      Obs.incr "lexer.intern.hits";
      Obs.add "lexer.intern.bytes_saved" (String.length s);
      s'
  | None ->
      Hashtbl.add st.interned s s;
      s

(* Shared one-character lexemes for punctuation — immutable, so safe to
   share across domains. *)
let single_char = Array.init 256 (fun i -> String.make 1 (Char.chr i))

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek st i =
  let p = st.pos + i in
  if p < String.length st.src then Some st.src.[p] else None

let looking_at st s =
  let n = String.length s and len = String.length st.src in
  st.pos + n <= len && String.sub st.src st.pos n = s

(* Case-insensitive [looking_at], for tags and casts. *)
let looking_at_ci st s =
  let n = String.length s and len = String.length st.src in
  st.pos + n <= len
  && String.lowercase_ascii (String.sub st.src st.pos n)
     = String.lowercase_ascii s

let count_newlines s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

let advance_over st s =
  st.line <- st.line + count_newlines s;
  st.pos <- st.pos + String.length s

let take_while st pred =
  let start = st.pos in
  while st.pos < String.length st.src && pred st.src.[st.pos] do
    if st.src.[st.pos] = '\n' then st.line <- st.line + 1;
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

(* Inline HTML up to the next open tag (or EOF). *)
let lex_inline_html st =
  let start = st.pos and line = st.line in
  let len = String.length st.src in
  let rec scan i =
    if i >= len then i
    else if i + 1 < len && st.src.[i] = '<' && st.src.[i + 1] = '?' then i
    else scan (i + 1)
  in
  let stop = scan st.pos in
  let text = String.sub st.src start (stop - start) in
  st.line <- st.line + count_newlines text;
  st.pos <- stop;
  Token.make Token.T_INLINE_HTML text line

let lex_single_quoted st =
  let line = st.line in
  let buf = st.scratch in
  Buffer.clear buf;
  Buffer.add_char buf '\'';
  st.pos <- st.pos + 1;
  let len = String.length st.src in
  let rec scan () =
    if st.pos >= len then fail st "unterminated single-quoted string"
    else
      let c = st.src.[st.pos] in
      if c = '\n' then st.line <- st.line + 1;
      if c = '\\' && st.pos + 1 < len then begin
        (* the escaped character is consumed too: a backslash-newline must
           still advance the line counter *)
        let c2 = st.src.[st.pos + 1] in
        if c2 = '\n' then st.line <- st.line + 1;
        Buffer.add_char buf c;
        Buffer.add_char buf c2;
        st.pos <- st.pos + 2;
        scan ()
      end
      else begin
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        if c <> '\'' then scan ()
      end
  in
  scan ();
  Token.make Token.T_CONSTANT_STRING (Buffer.contents buf) line

let lex_double_quoted st =
  let line = st.line in
  let buf = st.scratch in
  Buffer.clear buf;
  Buffer.add_char buf '"';
  st.pos <- st.pos + 1;
  let len = String.length st.src in
  let rec scan () =
    if st.pos >= len then fail st "unterminated double-quoted string"
    else
      let c = st.src.[st.pos] in
      if c = '\n' then st.line <- st.line + 1;
      if c = '\\' && st.pos + 1 < len then begin
        (* the escaped character is consumed too: a backslash-newline must
           still advance the line counter *)
        let c2 = st.src.[st.pos + 1] in
        if c2 = '\n' then st.line <- st.line + 1;
        Buffer.add_char buf c;
        Buffer.add_char buf c2;
        st.pos <- st.pos + 2;
        scan ()
      end
      else begin
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        if c <> '"' then scan ()
      end
  in
  scan ();
  Token.make Token.T_ENCAPSED_STRING (Buffer.contents buf) line

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_bin_digit c = c = '0' || c = '1'

(* Integer and float literals: decimal and leading-zero octal integers,
   0x../0b.. hex and binary, d.d floats and exponent notation (1e3, 1.5E-2,
   2e+10).  A trailing 'e' with no digits is not an exponent — "5en" stays
   T_LNUMBER "5" followed by an identifier, like PHP. *)
let lex_number st =
  let line = st.line in
  let prefixed prefix_len pred =
    let start = st.pos in
    st.pos <- st.pos + prefix_len;
    ignore (take_while st pred);
    Token.make Token.T_LNUMBER (String.sub st.src start (st.pos - start)) line
  in
  if (looking_at_ci st "0x")
     && (match peek st 2 with Some c -> is_hex_digit c | None -> false)
  then prefixed 2 is_hex_digit
  else if (looking_at_ci st "0b")
          && (match peek st 2 with Some c -> is_bin_digit c | None -> false)
  then prefixed 2 is_bin_digit
  else begin
    let intpart = take_while st is_digit in
    let frac =
      match (peek st 0, peek st 1) with
      | Some '.', Some d when is_digit d ->
          st.pos <- st.pos + 1;
          Some (take_while st is_digit)
      | _ -> None
    in
    let expo =
      match peek st 0 with
      | Some ('e' | 'E') ->
          let signed = match peek st 1 with Some ('+' | '-') -> true | _ -> false in
          let first_digit = if signed then peek st 2 else peek st 1 in
          (match first_digit with
          | Some d when is_digit d ->
              let start = st.pos in
              st.pos <- st.pos + (if signed then 2 else 1);
              ignore (take_while st is_digit);
              Some (String.sub st.src start (st.pos - start))
          | _ -> None)
      | _ -> None
    in
    match (frac, expo) with
    | None, None -> Token.make Token.T_LNUMBER intpart line
    | _ ->
        let lexeme =
          intpart
          ^ (match frac with Some f -> "." ^ f | None -> "")
          ^ (match expo with Some e -> e | None -> "")
        in
        Token.make Token.T_DNUMBER lexeme line
  end

let lex_line_comment st =
  let line = st.line in
  let text = take_while st (fun c -> c <> '\n') in
  Token.make Token.T_COMMENT text line

let lex_block_comment st =
  let line = st.line in
  let doc = looking_at st "/**" && not (looking_at st "/**/") in
  let start = st.pos in
  let len = String.length st.src in
  let rec scan i =
    if i + 1 >= len then fail st "unterminated block comment"
    else if st.src.[i] = '*' && st.src.[i + 1] = '/' then i + 2
    else scan (i + 1)
  in
  let stop = scan (st.pos + 2) in
  let text = String.sub st.src start (stop - start) in
  st.line <- st.line + count_newlines text;
  st.pos <- stop;
  Token.make (if doc then Token.T_DOC_COMMENT else Token.T_COMMENT) text line

(* Cast tokens: '(' ws* typename ws* ')'. Returns None when the parenthesis
   is not a cast. *)
let try_lex_cast st =
  let len = String.length st.src in
  let rec skip_ws i = if i < len && (st.src.[i] = ' ' || st.src.[i] = '\t') then skip_ws (i + 1) else i in
  let i = skip_ws (st.pos + 1) in
  let j =
    let rec scan j = if j < len && is_ident_char st.src.[j] then scan (j + 1) else j in
    scan i
  in
  if j = i then None
  else
    let word = String.lowercase_ascii (String.sub st.src i (j - i)) in
    let k = skip_ws j in
    if k < len && st.src.[k] = ')' then
      let kind =
        match word with
        | "int" | "integer" -> Some Token.T_INT_CAST
        | "float" | "double" | "real" -> Some Token.T_FLOAT_CAST
        | "string" -> Some Token.T_STRING_CAST
        | "array" -> Some Token.T_ARRAY_CAST
        | "bool" | "boolean" -> Some Token.T_BOOL_CAST
        | _ -> None
      in
      match kind with
      | Some kind ->
          let lexeme = String.sub st.src st.pos (k + 1 - st.pos) in
          let line = st.line in
          st.pos <- k + 1;
          Some (Token.make kind lexeme line)
      | None -> None
    else None

let two_char_ops : (string * Token.kind) list =
  [ ("=>", Token.T_DOUBLE_ARROW); ("->", Token.T_OBJECT_OPERATOR);
    ("::", Token.T_DOUBLE_COLON); ("&&", Token.T_BOOLEAN_AND);
    ("||", Token.T_BOOLEAN_OR); ("==", Token.T_IS_EQUAL);
    ("!=", Token.T_IS_NOT_EQUAL); ("<=", Token.T_IS_SMALLER_OR_EQUAL);
    (">=", Token.T_IS_GREATER_OR_EQUAL); ("+=", Token.T_PLUS_EQUAL);
    ("-=", Token.T_MINUS_EQUAL); ("*=", Token.T_MUL_EQUAL);
    ("/=", Token.T_DIV_EQUAL); (".=", Token.T_CONCAT_EQUAL);
    ("%=", Token.T_MOD_EQUAL); ("++", Token.T_INC); ("--", Token.T_DEC);
    ("??", Token.T_COALESCE) ]

(* Heredoc / nowdoc literals (PHP 5 closing rule: the label starts in
   column 0, optionally followed by a single [;]).  [<<<EOT] and
   [<<<"EOT"] interpolate (T_HEREDOC); [<<<'EOT'] does not (T_NOWDOC).
   Unlike the quoted-string tokens, the lexeme is the {e raw body} with no
   quote framing — the parser feeds it to its interpolation scanner (or
   takes it verbatim for a nowdoc), so bodies containing quotes or
   backslashes survive unharmed.  Bodies are not interned: each one is
   unique, so interning would only grow the table. *)
let lex_heredoc st =
  let line = st.line in
  let len = String.length st.src in
  st.pos <- st.pos + 3;
  while st.pos < len && (st.src.[st.pos] = ' ' || st.src.[st.pos] = '\t') do
    st.pos <- st.pos + 1
  done;
  let quote =
    match peek st 0 with
    | Some (('\'' | '"') as q) ->
        st.pos <- st.pos + 1;
        Some q
    | _ -> None
  in
  let label = take_while st is_ident_char in
  if String.equal label "" then fail st "heredoc: missing label after <<<";
  (match quote with
  | Some q ->
      if peek st 0 = Some q then st.pos <- st.pos + 1
      else fail st "heredoc: unterminated label quote"
  | None -> ());
  if peek st 0 = Some '\r' then st.pos <- st.pos + 1;
  (match peek st 0 with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.pos <- st.pos + 1
  | _ -> fail st "heredoc: label must be followed by a newline");
  let body_start = st.pos in
  let n = String.length label in
  (* find the line that starts with the closing label *)
  let rec find_close i =
    if i >= len then fail st "unterminated heredoc"
    else if
      i + n <= len
      && String.sub st.src i n = label
      && (i + n = len
          ||
          match st.src.[i + n] with ';' | '\n' | '\r' -> true | _ -> false)
    then i
    else
      let rec eol j = if j < len && st.src.[j] <> '\n' then eol (j + 1) else j in
      let j = eol i in
      if j >= len then fail st "unterminated heredoc" else find_close (j + 1)
  in
  let close = find_close st.pos in
  (* the newline that precedes the closing label belongs to the delimiter,
     not the body *)
  let body_end =
    if close > body_start && st.src.[close - 1] = '\n' then
      if close - 1 > body_start && st.src.[close - 2] = '\r' then close - 2
      else close - 1
    else close
  in
  let body = String.sub st.src body_start (body_end - body_start) in
  st.line <- st.line + count_newlines (String.sub st.src body_start (close - body_start));
  st.pos <- close + n;
  let kind = if quote = Some '\'' then Token.T_NOWDOC else Token.T_HEREDOC in
  Token.make kind body line

let punct_chars = ";,(){}[]=+-*/%.<>!?:&@|^~$"

let lex_php_token st =
  let line = st.line in
  let c =
    match peek st 0 with Some c -> c | None -> fail st "unexpected EOF"
  in
  if looking_at st "?>" then begin
    st.pos <- st.pos + 2;
    st.in_php <- false;
    (* PHP consumes a single newline straight after the close tag. *)
    (if peek st 0 = Some '\n' then begin st.line <- st.line + 1; st.pos <- st.pos + 1 end);
    Token.make Token.T_CLOSE_TAG "?>" line
  end
  else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
    let ws = take_while st (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') in
    Token.make Token.T_WHITESPACE (intern st ws) line
  else if looking_at st "===" then begin
    advance_over st "===";
    Token.make Token.T_IS_IDENTICAL "===" line
  end
  else if looking_at st "!==" then begin
    advance_over st "!==";
    Token.make Token.T_IS_NOT_IDENTICAL "!==" line
  end
  else if looking_at st "//" then lex_line_comment st
  else if c = '#' then lex_line_comment st
  else if looking_at st "/*" then lex_block_comment st
  else if c = '$' && (match peek st 1 with Some c1 -> is_ident_start c1 | None -> false)
  then begin
    st.pos <- st.pos + 1;
    let name = take_while st is_ident_char in
    Token.make Token.T_VARIABLE (intern st ("$" ^ name)) line
  end
  else if is_ident_start c then begin
    let word = intern st (take_while st is_ident_char) in
    match Token.keyword_kind word with
    | Some k -> Token.make k word line
    | None -> Token.make Token.T_STRING word line
  end
  else if is_digit c then lex_number st
  else if c = '\'' then lex_single_quoted st
  else if c = '"' then lex_double_quoted st
  else if looking_at st "<<<" then lex_heredoc st
  else if c = '(' then begin
    match try_lex_cast st with
    | Some t -> t
    | None ->
        st.pos <- st.pos + 1;
        Token.make Token.Punct "(" line
  end
  else
    let two =
      if st.pos + 2 <= String.length st.src then
        let s2 = String.sub st.src st.pos 2 in
        List.assoc_opt s2 two_char_ops |> Option.map (fun k -> (s2, k))
      else None
    in
    match two with
    | Some (s2, k) ->
        advance_over st s2;
        Token.make k s2 line
    | None ->
        if String.contains punct_chars c then begin
          st.pos <- st.pos + 1;
          Token.make Token.Punct single_char.(Char.code c) line
        end
        else fail st (Printf.sprintf "unexpected character %C" c)

(* One token from the current lexer state.  The precondition is
   [st.pos < String.length st.src]; the caller emits T_EOF itself.  Every
   path captures [st.line] before consuming input, so a token's [line] is
   always the lexer's line counter at the token's first byte — the
   incremental machinery below depends on that to reconstruct checkpoints
   from the token array alone. *)
let step st =
  if not st.in_php then
    if looking_at_ci st "<?php" then begin
      let line = st.line in
      advance_over st (String.sub st.src st.pos 5);
      st.in_php <- true;
      Token.make Token.T_OPEN_TAG "<?php" line
    end
    else if looking_at st "<?=" then begin
      (* short echo tag: open-tag + echo in one token *)
      let line = st.line in
      advance_over st "<?=";
      st.in_php <- true;
      Token.make Token.T_OPEN_TAG_WITH_ECHO "<?=" line
    end
    else if looking_at st "<?" then begin
      let line = st.line in
      advance_over st "<?";
      st.in_php <- true;
      Token.make Token.T_OPEN_TAG "<?" line
    end
    else lex_inline_html st
  else lex_php_token st

(** Tokenize a full PHP source file.  Returns every token, including
    whitespace and comments, terminated by a single {!Token.T_EOF}. *)
let tokenize src =
  let st =
    { src; pos = 0; line = 1; in_php = false;
      scratch = Buffer.create 64; interned = Hashtbl.create 128 }
  in
  let len = String.length src in
  let rec loop acc =
    if st.pos >= len then List.rev (Token.make Token.T_EOF "" st.line :: acc)
    else loop (step st :: acc)
  in
  loop []

(** Drop whitespace and comments — phpSAFE "cleans the AST by removing
    comments and extra whitespaces" (§III.B). *)
let significant tokens =
  List.filter
    (fun (t : Token.t) ->
      match t.Token.kind with
      | Token.T_WHITESPACE | Token.T_COMMENT | Token.T_DOC_COMMENT -> false
      | _ -> true)
    tokens

let tokenize_significant src = significant (tokenize src)

(* ------------------------------------------------------------------ *)
(* Checkpointed incremental lexing                                    *)
(* ------------------------------------------------------------------ *)

(* The lexer's complete inter-token state is (pos, line, in_php): [scratch]
   is cleared by every string lexer and [interned] is semantically
   transparent, and multi-line constructs (heredocs, block comments,
   strings) are consumed whole inside a single [step], so there is no
   heredoc-label stack to snapshot between tokens.  A checkpoint is that
   triple plus the index of the next token to be produced. *)

type checkpoint = {
  ck_index : int;  (* tokens [0, ck_index) precede this boundary *)
  ck_pos : int;
  ck_line : int;
  ck_in_php : bool;
}

type lexed = {
  lx_src : string;
  lx_tokens : Token.t array;  (* includes the trailing T_EOF *)
  lx_starts : int array;
      (* lx_starts.(i) = byte offset of token i's first byte; the trailing
         T_EOF entry is String.length lx_src.  Strictly increasing: tokens
         tile the source with no gaps. *)
  lx_php : bool array;  (* in_php at each token's start, same length *)
  lx_ckpts : checkpoint array;  (* ascending ck_index, first is index 0 *)
}

let checkpoint_interval = 32

(* The deepest lookahead past an emitted token's end is 3 bytes
   (lex_number's signed-exponent probe); anything at distance >= 8 from the
   first changed byte is therefore lexed from unchanged input only.  The
   margin also keeps a resumed run clear of multi-byte operators that start
   just before the damage. *)
let resume_margin = 8

(* Checkpoints are derived from the token arrays after the fact: because
   every token records the line of its first byte and tokens tile the
   source, the lexer state at the boundary before token i is exactly
   (lx_starts.(i), tokens.(i).line, lx_php.(i)). *)
let derive_ckpts (tokens : Token.t array) (starts : int array)
    (php : bool array) =
  let n = Array.length tokens in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    acc :=
      {
        ck_index = !i;
        ck_pos = starts.(!i);
        ck_line = tokens.(!i).Token.line;
        ck_in_php = php.(!i);
      }
      :: !acc;
    i := !i + checkpoint_interval
  done;
  Array.of_list (List.rev !acc)

let lex_all src : lexed =
  let st =
    { src; pos = 0; line = 1; in_php = false;
      scratch = Buffer.create 64; interned = Hashtbl.create 128 }
  in
  let len = String.length src in
  let toks = ref [] and starts = ref [] and phps = ref [] and count = ref 0 in
  while st.pos < len do
    starts := st.pos :: !starts;
    phps := st.in_php :: !phps;
    toks := step st :: !toks;
    Stdlib.incr count
  done;
  starts := len :: !starts;
  phps := st.in_php :: !phps;
  toks := Token.make Token.T_EOF "" st.line :: !toks;
  Stdlib.incr count;
  let tokens = Array.make !count (Token.make Token.T_EOF "" 1) in
  let starts_a = Array.make !count 0 and php_a = Array.make !count false in
  let i = ref (!count - 1) in
  List.iter2
    (fun t (s, p) ->
      tokens.(!i) <- t;
      starts_a.(!i) <- s;
      php_a.(!i) <- p;
      Stdlib.decr i)
    !toks
    (List.combine !starts !phps);
  {
    lx_src = src;
    lx_tokens = tokens;
    lx_starts = starts_a;
    lx_php = php_a;
    lx_ckpts = derive_ckpts tokens starts_a php_a;
  }

(* Binary search: index i with starts.(i) = pos, if any. *)
let token_index_of_start (starts : int array) pos =
  let lo = ref 0 and hi = ref (Array.length starts - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = starts.(mid) in
    if v = pos then found := mid
    else if v < pos then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

type relex_info = {
  rl_prefix : int;  (* old tokens [0, rl_prefix) reused verbatim *)
  rl_old_suffix : int;  (* old tokens [rl_old_suffix, n_old) reused *)
  rl_new_suffix : int;  (* ... appearing at [rl_new_suffix, n_new) *)
  rl_line_delta : int;  (* line shift applied to the reused suffix *)
}

let relex (old : lexed) (src : string) : lexed * relex_info =
  let olen = String.length old.lx_src and nlen = String.length src in
  let n_old = Array.length old.lx_tokens in
  (* damage region = everything between the byte-level common prefix and
     the (non-overlapping) common suffix *)
  let maxp = min olen nlen in
  let p = ref 0 in
  while !p < maxp && old.lx_src.[!p] = src.[!p] do Stdlib.incr p done;
  let p = !p in
  if p = olen && olen = nlen then
    ( old,
      {
        rl_prefix = n_old;
        rl_old_suffix = n_old;
        rl_new_suffix = n_old;
        rl_line_delta = 0;
      } )
  else begin
    let s = ref 0 in
    let maxs = maxp - p in
    while
      !s < maxs && old.lx_src.[olen - 1 - !s] = src.[nlen - 1 - !s]
    do
      Stdlib.incr s
    done;
    let s = !s in
    let delta = nlen - olen in
    let damage_new_end = nlen - s in
    (* resume from the last checkpoint safely before the damage *)
    let resume_limit =
      let limit = p - resume_margin in
      (* try_lex_cast probes forward over '(' ws* ident ws* ')' with no
         length bound, so an edit can retroactively flip a distant '('
         between Punct and a cast token.  If the bytes leading back from
         the damage are all spaces/tabs/ident chars and hit a '(', that
         parenthesis must be re-lexed too. *)
      let r = ref p in
      while
        !r > 0
        &&
        let c = old.lx_src.[!r - 1] in
        c = ' ' || c = '\t' || is_ident_char c
      do
        Stdlib.decr r
      done;
      if !r > 0 && old.lx_src.[!r - 1] = '(' then min limit (!r - 1)
      else limit
    in
    let ck = ref old.lx_ckpts.(0) in
    Array.iter
      (fun c ->
        if c.ck_pos <= resume_limit && c.ck_index >= !ck.ck_index then
          ck := c)
      old.lx_ckpts;
    let ck = !ck in
    Obs.Mirror.incr "lexer.ckpt.resume";
    let st =
      { src; pos = ck.ck_pos; line = ck.ck_line; in_php = ck.ck_in_php;
        scratch = Buffer.create 64; interned = Hashtbl.create 128 }
    in
    (* lex forward until the token stream re-synchronizes with the old one:
       same byte position (modulo the length delta) past the damage, same
       PHP/HTML mode *)
    let fresh = ref [] and fresh_count = ref 0 in
    let resync = ref (-1) in
    let continue_ = ref true in
    while !continue_ do
      if st.pos >= nlen then continue_ := false
      else begin
        (if st.pos >= damage_new_end then
           match token_index_of_start old.lx_starts (st.pos - delta) with
           | Some i
             when old.lx_php.(i) = st.in_php && i < n_old - 1 ->
               resync := i;
               continue_ := false
           | _ -> ());
        if !continue_ then begin
          let start = st.pos and php = st.in_php in
          let t = step st in
          fresh := (t, start, php) :: !fresh;
          Stdlib.incr fresh_count
        end
      end
    done;
    Obs.Mirror.add "lexer.ckpt.resync_tokens" !fresh_count;
    let fresh = List.rev !fresh in
    let resync = if !resync >= 0 then Some !resync else None in
    let line_delta =
      match resync with
      | Some i -> st.line - old.lx_tokens.(i).Token.line
      | None -> 0
    in
    let n_suffix = match resync with Some i -> n_old - i | None -> 0 in
    let n_new =
      ck.ck_index + !fresh_count + n_suffix
      + (match resync with None -> 1 | Some _ -> 0)
    in
    let tokens = Array.make n_new (Token.make Token.T_EOF "" 1) in
    let starts_a = Array.make n_new 0 and php_a = Array.make n_new false in
    Array.blit old.lx_tokens 0 tokens 0 ck.ck_index;
    Array.blit old.lx_starts 0 starts_a 0 ck.ck_index;
    Array.blit old.lx_php 0 php_a 0 ck.ck_index;
    List.iteri
      (fun j (t, start, php) ->
        tokens.(ck.ck_index + j) <- t;
        starts_a.(ck.ck_index + j) <- start;
        php_a.(ck.ck_index + j) <- php)
      fresh;
    (match resync with
    | Some i ->
        let base = ck.ck_index + !fresh_count in
        for k = 0 to n_suffix - 1 do
          let t = old.lx_tokens.(i + k) in
          tokens.(base + k) <-
            (if line_delta = 0 then t
             else Token.make t.Token.kind t.Token.lexeme
                    (t.Token.line + line_delta));
          starts_a.(base + k) <- old.lx_starts.(i + k) + delta;
          php_a.(base + k) <- old.lx_php.(i + k)
        done
    | None ->
        let i = n_new - 1 in
        tokens.(i) <- Token.make Token.T_EOF "" st.line;
        starts_a.(i) <- nlen;
        php_a.(i) <- st.in_php);
    let result =
      {
        lx_src = src;
        lx_tokens = tokens;
        lx_starts = starts_a;
        lx_php = php_a;
        lx_ckpts = derive_ckpts tokens starts_a php_a;
      }
    in
    let info =
      match resync with
      | Some i ->
          {
            rl_prefix = ck.ck_index;
            rl_old_suffix = i;
            rl_new_suffix = ck.ck_index + !fresh_count;
            rl_line_delta = line_delta;
          }
      | None ->
          {
            rl_prefix = ck.ck_index;
            rl_old_suffix = n_old;
            rl_new_suffix = n_new;
            rl_line_delta = 0;
          }
    in
    (result, info)
  end

let tokens_of_lexed (l : lexed) = Array.to_list l.lx_tokens
