(** PHP tokenizer — the [token_get_all] equivalent that phpSAFE's model
    construction stage builds on (paper §III.B).

    The lexer recognises the PHP 5 subset used by WordPress-style plugins:
    open/close tags with inline HTML, variables, identifiers/keywords,
    integer/float literals, single- and double-quoted strings (the latter kept
    raw; interpolation is expanded by the parser), comments, casts and the
    full operator set in {!Token.kind}. *)

exception Error of string * int  (** message, line *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable in_php : bool;  (* inside <?php ... ?> *)
  scratch : Buffer.t;
      (* one buffer per tokenize call, cleared and reused by every string
         literal — per-state rather than global so concurrent domains never
         share it *)
  interned : (string, string) Hashtbl.t;
      (* recurring lexemes (keywords, identifiers, variables, whitespace
         runs) share a single allocation per file *)
}

let fail st msg = raise (Error (msg, st.line))

(* Lexeme interning: the first occurrence is kept, every later equal lexeme
   returns the retained string and drops its own allocation.  The hit
   counter is the evidence: on a typical plugin file most ident/keyword
   tokens are intern hits. *)
let intern st s =
  match Hashtbl.find_opt st.interned s with
  | Some s' ->
      Obs.incr "lexer.intern.hits";
      Obs.add "lexer.intern.bytes_saved" (String.length s);
      s'
  | None ->
      Hashtbl.add st.interned s s;
      s

(* Shared one-character lexemes for punctuation — immutable, so safe to
   share across domains. *)
let single_char = Array.init 256 (fun i -> String.make 1 (Char.chr i))

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek st i =
  let p = st.pos + i in
  if p < String.length st.src then Some st.src.[p] else None

let looking_at st s =
  let n = String.length s and len = String.length st.src in
  st.pos + n <= len && String.sub st.src st.pos n = s

(* Case-insensitive [looking_at], for tags and casts. *)
let looking_at_ci st s =
  let n = String.length s and len = String.length st.src in
  st.pos + n <= len
  && String.lowercase_ascii (String.sub st.src st.pos n)
     = String.lowercase_ascii s

let count_newlines s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

let advance_over st s =
  st.line <- st.line + count_newlines s;
  st.pos <- st.pos + String.length s

let take_while st pred =
  let start = st.pos in
  while st.pos < String.length st.src && pred st.src.[st.pos] do
    if st.src.[st.pos] = '\n' then st.line <- st.line + 1;
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

(* Inline HTML up to the next open tag (or EOF). *)
let lex_inline_html st =
  let start = st.pos and line = st.line in
  let len = String.length st.src in
  let rec scan i =
    if i >= len then i
    else if i + 1 < len && st.src.[i] = '<' && st.src.[i + 1] = '?' then i
    else scan (i + 1)
  in
  let stop = scan st.pos in
  let text = String.sub st.src start (stop - start) in
  st.line <- st.line + count_newlines text;
  st.pos <- stop;
  Token.make Token.T_INLINE_HTML text line

let lex_single_quoted st =
  let line = st.line in
  let buf = st.scratch in
  Buffer.clear buf;
  Buffer.add_char buf '\'';
  st.pos <- st.pos + 1;
  let len = String.length st.src in
  let rec scan () =
    if st.pos >= len then fail st "unterminated single-quoted string"
    else
      let c = st.src.[st.pos] in
      if c = '\n' then st.line <- st.line + 1;
      if c = '\\' && st.pos + 1 < len then begin
        (* the escaped character is consumed too: a backslash-newline must
           still advance the line counter *)
        let c2 = st.src.[st.pos + 1] in
        if c2 = '\n' then st.line <- st.line + 1;
        Buffer.add_char buf c;
        Buffer.add_char buf c2;
        st.pos <- st.pos + 2;
        scan ()
      end
      else begin
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        if c <> '\'' then scan ()
      end
  in
  scan ();
  Token.make Token.T_CONSTANT_STRING (Buffer.contents buf) line

let lex_double_quoted st =
  let line = st.line in
  let buf = st.scratch in
  Buffer.clear buf;
  Buffer.add_char buf '"';
  st.pos <- st.pos + 1;
  let len = String.length st.src in
  let rec scan () =
    if st.pos >= len then fail st "unterminated double-quoted string"
    else
      let c = st.src.[st.pos] in
      if c = '\n' then st.line <- st.line + 1;
      if c = '\\' && st.pos + 1 < len then begin
        (* the escaped character is consumed too: a backslash-newline must
           still advance the line counter *)
        let c2 = st.src.[st.pos + 1] in
        if c2 = '\n' then st.line <- st.line + 1;
        Buffer.add_char buf c;
        Buffer.add_char buf c2;
        st.pos <- st.pos + 2;
        scan ()
      end
      else begin
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        if c <> '"' then scan ()
      end
  in
  scan ();
  Token.make Token.T_ENCAPSED_STRING (Buffer.contents buf) line

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_bin_digit c = c = '0' || c = '1'

(* Integer and float literals: decimal and leading-zero octal integers,
   0x../0b.. hex and binary, d.d floats and exponent notation (1e3, 1.5E-2,
   2e+10).  A trailing 'e' with no digits is not an exponent — "5en" stays
   T_LNUMBER "5" followed by an identifier, like PHP. *)
let lex_number st =
  let line = st.line in
  let prefixed prefix_len pred =
    let start = st.pos in
    st.pos <- st.pos + prefix_len;
    ignore (take_while st pred);
    Token.make Token.T_LNUMBER (String.sub st.src start (st.pos - start)) line
  in
  if (looking_at_ci st "0x")
     && (match peek st 2 with Some c -> is_hex_digit c | None -> false)
  then prefixed 2 is_hex_digit
  else if (looking_at_ci st "0b")
          && (match peek st 2 with Some c -> is_bin_digit c | None -> false)
  then prefixed 2 is_bin_digit
  else begin
    let intpart = take_while st is_digit in
    let frac =
      match (peek st 0, peek st 1) with
      | Some '.', Some d when is_digit d ->
          st.pos <- st.pos + 1;
          Some (take_while st is_digit)
      | _ -> None
    in
    let expo =
      match peek st 0 with
      | Some ('e' | 'E') ->
          let signed = match peek st 1 with Some ('+' | '-') -> true | _ -> false in
          let first_digit = if signed then peek st 2 else peek st 1 in
          (match first_digit with
          | Some d when is_digit d ->
              let start = st.pos in
              st.pos <- st.pos + (if signed then 2 else 1);
              ignore (take_while st is_digit);
              Some (String.sub st.src start (st.pos - start))
          | _ -> None)
      | _ -> None
    in
    match (frac, expo) with
    | None, None -> Token.make Token.T_LNUMBER intpart line
    | _ ->
        let lexeme =
          intpart
          ^ (match frac with Some f -> "." ^ f | None -> "")
          ^ (match expo with Some e -> e | None -> "")
        in
        Token.make Token.T_DNUMBER lexeme line
  end

let lex_line_comment st =
  let line = st.line in
  let text = take_while st (fun c -> c <> '\n') in
  Token.make Token.T_COMMENT text line

let lex_block_comment st =
  let line = st.line in
  let doc = looking_at st "/**" && not (looking_at st "/**/") in
  let start = st.pos in
  let len = String.length st.src in
  let rec scan i =
    if i + 1 >= len then fail st "unterminated block comment"
    else if st.src.[i] = '*' && st.src.[i + 1] = '/' then i + 2
    else scan (i + 1)
  in
  let stop = scan (st.pos + 2) in
  let text = String.sub st.src start (stop - start) in
  st.line <- st.line + count_newlines text;
  st.pos <- stop;
  Token.make (if doc then Token.T_DOC_COMMENT else Token.T_COMMENT) text line

(* Cast tokens: '(' ws* typename ws* ')'. Returns None when the parenthesis
   is not a cast. *)
let try_lex_cast st =
  let len = String.length st.src in
  let rec skip_ws i = if i < len && (st.src.[i] = ' ' || st.src.[i] = '\t') then skip_ws (i + 1) else i in
  let i = skip_ws (st.pos + 1) in
  let j =
    let rec scan j = if j < len && is_ident_char st.src.[j] then scan (j + 1) else j in
    scan i
  in
  if j = i then None
  else
    let word = String.lowercase_ascii (String.sub st.src i (j - i)) in
    let k = skip_ws j in
    if k < len && st.src.[k] = ')' then
      let kind =
        match word with
        | "int" | "integer" -> Some Token.T_INT_CAST
        | "float" | "double" | "real" -> Some Token.T_FLOAT_CAST
        | "string" -> Some Token.T_STRING_CAST
        | "array" -> Some Token.T_ARRAY_CAST
        | "bool" | "boolean" -> Some Token.T_BOOL_CAST
        | _ -> None
      in
      match kind with
      | Some kind ->
          let lexeme = String.sub st.src st.pos (k + 1 - st.pos) in
          let line = st.line in
          st.pos <- k + 1;
          Some (Token.make kind lexeme line)
      | None -> None
    else None

let two_char_ops : (string * Token.kind) list =
  [ ("=>", Token.T_DOUBLE_ARROW); ("->", Token.T_OBJECT_OPERATOR);
    ("::", Token.T_DOUBLE_COLON); ("&&", Token.T_BOOLEAN_AND);
    ("||", Token.T_BOOLEAN_OR); ("==", Token.T_IS_EQUAL);
    ("!=", Token.T_IS_NOT_EQUAL); ("<=", Token.T_IS_SMALLER_OR_EQUAL);
    (">=", Token.T_IS_GREATER_OR_EQUAL); ("+=", Token.T_PLUS_EQUAL);
    ("-=", Token.T_MINUS_EQUAL); ("*=", Token.T_MUL_EQUAL);
    ("/=", Token.T_DIV_EQUAL); (".=", Token.T_CONCAT_EQUAL);
    ("%=", Token.T_MOD_EQUAL); ("++", Token.T_INC); ("--", Token.T_DEC);
    ("??", Token.T_COALESCE) ]

(* Heredoc / nowdoc literals (PHP 5 closing rule: the label starts in
   column 0, optionally followed by a single [;]).  [<<<EOT] and
   [<<<"EOT"] interpolate (T_HEREDOC); [<<<'EOT'] does not (T_NOWDOC).
   Unlike the quoted-string tokens, the lexeme is the {e raw body} with no
   quote framing — the parser feeds it to its interpolation scanner (or
   takes it verbatim for a nowdoc), so bodies containing quotes or
   backslashes survive unharmed.  Bodies are not interned: each one is
   unique, so interning would only grow the table. *)
let lex_heredoc st =
  let line = st.line in
  let len = String.length st.src in
  st.pos <- st.pos + 3;
  while st.pos < len && (st.src.[st.pos] = ' ' || st.src.[st.pos] = '\t') do
    st.pos <- st.pos + 1
  done;
  let quote =
    match peek st 0 with
    | Some (('\'' | '"') as q) ->
        st.pos <- st.pos + 1;
        Some q
    | _ -> None
  in
  let label = take_while st is_ident_char in
  if String.equal label "" then fail st "heredoc: missing label after <<<";
  (match quote with
  | Some q ->
      if peek st 0 = Some q then st.pos <- st.pos + 1
      else fail st "heredoc: unterminated label quote"
  | None -> ());
  if peek st 0 = Some '\r' then st.pos <- st.pos + 1;
  (match peek st 0 with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.pos <- st.pos + 1
  | _ -> fail st "heredoc: label must be followed by a newline");
  let body_start = st.pos in
  let n = String.length label in
  (* find the line that starts with the closing label *)
  let rec find_close i =
    if i >= len then fail st "unterminated heredoc"
    else if
      i + n <= len
      && String.sub st.src i n = label
      && (i + n = len
          ||
          match st.src.[i + n] with ';' | '\n' | '\r' -> true | _ -> false)
    then i
    else
      let rec eol j = if j < len && st.src.[j] <> '\n' then eol (j + 1) else j in
      let j = eol i in
      if j >= len then fail st "unterminated heredoc" else find_close (j + 1)
  in
  let close = find_close st.pos in
  (* the newline that precedes the closing label belongs to the delimiter,
     not the body *)
  let body_end =
    if close > body_start && st.src.[close - 1] = '\n' then
      if close - 1 > body_start && st.src.[close - 2] = '\r' then close - 2
      else close - 1
    else close
  in
  let body = String.sub st.src body_start (body_end - body_start) in
  st.line <- st.line + count_newlines (String.sub st.src body_start (close - body_start));
  st.pos <- close + n;
  let kind = if quote = Some '\'' then Token.T_NOWDOC else Token.T_HEREDOC in
  Token.make kind body line

let punct_chars = ";,(){}[]=+-*/%.<>!?:&@|^~$"

let lex_php_token st =
  let line = st.line in
  let c =
    match peek st 0 with Some c -> c | None -> fail st "unexpected EOF"
  in
  if looking_at st "?>" then begin
    st.pos <- st.pos + 2;
    st.in_php <- false;
    (* PHP consumes a single newline straight after the close tag. *)
    (if peek st 0 = Some '\n' then begin st.line <- st.line + 1; st.pos <- st.pos + 1 end);
    Token.make Token.T_CLOSE_TAG "?>" line
  end
  else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
    let ws = take_while st (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') in
    Token.make Token.T_WHITESPACE (intern st ws) line
  else if looking_at st "===" then begin
    advance_over st "===";
    Token.make Token.T_IS_IDENTICAL "===" line
  end
  else if looking_at st "!==" then begin
    advance_over st "!==";
    Token.make Token.T_IS_NOT_IDENTICAL "!==" line
  end
  else if looking_at st "//" then lex_line_comment st
  else if c = '#' then lex_line_comment st
  else if looking_at st "/*" then lex_block_comment st
  else if c = '$' && (match peek st 1 with Some c1 -> is_ident_start c1 | None -> false)
  then begin
    st.pos <- st.pos + 1;
    let name = take_while st is_ident_char in
    Token.make Token.T_VARIABLE (intern st ("$" ^ name)) line
  end
  else if is_ident_start c then begin
    let word = intern st (take_while st is_ident_char) in
    match Token.keyword_kind word with
    | Some k -> Token.make k word line
    | None -> Token.make Token.T_STRING word line
  end
  else if is_digit c then lex_number st
  else if c = '\'' then lex_single_quoted st
  else if c = '"' then lex_double_quoted st
  else if looking_at st "<<<" then lex_heredoc st
  else if c = '(' then begin
    match try_lex_cast st with
    | Some t -> t
    | None ->
        st.pos <- st.pos + 1;
        Token.make Token.Punct "(" line
  end
  else
    let two =
      if st.pos + 2 <= String.length st.src then
        let s2 = String.sub st.src st.pos 2 in
        List.assoc_opt s2 two_char_ops |> Option.map (fun k -> (s2, k))
      else None
    in
    match two with
    | Some (s2, k) ->
        advance_over st s2;
        Token.make k s2 line
    | None ->
        if String.contains punct_chars c then begin
          st.pos <- st.pos + 1;
          Token.make Token.Punct single_char.(Char.code c) line
        end
        else fail st (Printf.sprintf "unexpected character %C" c)

(** Tokenize a full PHP source file.  Returns every token, including
    whitespace and comments, terminated by a single {!Token.T_EOF}. *)
let tokenize src =
  let st =
    { src; pos = 0; line = 1; in_php = false;
      scratch = Buffer.create 64; interned = Hashtbl.create 128 }
  in
  let len = String.length src in
  let rec loop acc =
    if st.pos >= len then List.rev (Token.make Token.T_EOF "" st.line :: acc)
    else if not st.in_php then
      if looking_at_ci st "<?php" then begin
        let line = st.line in
        advance_over st (String.sub st.src st.pos 5);
        st.in_php <- true;
        loop (Token.make Token.T_OPEN_TAG "<?php" line :: acc)
      end
      else if looking_at st "<?=" then begin
        (* short echo tag: open-tag + echo in one token *)
        let line = st.line in
        advance_over st "<?=";
        st.in_php <- true;
        loop (Token.make Token.T_OPEN_TAG_WITH_ECHO "<?=" line :: acc)
      end
      else if looking_at st "<?" then begin
        let line = st.line in
        advance_over st "<?";
        st.in_php <- true;
        loop (Token.make Token.T_OPEN_TAG "<?" line :: acc)
      end
      else loop (lex_inline_html st :: acc)
    else loop (lex_php_token st :: acc)
  in
  loop []

(** Drop whitespace and comments — phpSAFE "cleans the AST by removing
    comments and extra whitespaces" (§III.B). *)
let significant tokens =
  List.filter
    (fun (t : Token.t) ->
      match t.Token.kind with
      | Token.T_WHITESPACE | Token.T_COMMENT | Token.T_DOC_COMMENT -> false
      | _ -> true)
    tokens

let tokenize_significant src = significant (tokenize src)
