(** PHP token set, modelled on the identifiers returned by PHP's
    [token_get_all] / [token_name] (the API phpSAFE is built on, §III.B of
    the paper).  Single-character punctuation is carried by {!Punct} with the
    raw character, mirroring how [token_get_all] returns bare strings for
    code semantics such as [";"]. *)

type kind =
  | T_OPEN_TAG            (* <?php *)
  | T_OPEN_TAG_WITH_ECHO  (* <?= *)
  | T_CLOSE_TAG           (* ?> *)
  | T_INLINE_HTML         (* raw HTML between tags *)
  | T_VARIABLE            (* $foo *)
  | T_STRING              (* identifier: function/class/const name *)
  | T_LNUMBER             (* integer literal *)
  | T_DNUMBER             (* float literal *)
  | T_CONSTANT_STRING     (* 'single quoted' (T_CONSTANT_ENCAPSED_STRING) *)
  | T_ENCAPSED_STRING     (* "double quoted with $interpolation" *)
  | T_HEREDOC             (* <<<EOT body (raw, interpolated) *)
  | T_NOWDOC              (* <<<'EOT' body (raw, no interpolation) *)
  | T_IF
  | T_ELSE
  | T_ELSEIF
  | T_WHILE
  | T_DO
  | T_FOR
  | T_FOREACH
  | T_AS
  | T_SWITCH
  | T_CASE
  | T_DEFAULT
  | T_BREAK
  | T_CONTINUE
  | T_RETURN
  | T_FUNCTION
  | T_USE
  | T_CLASS
  | T_INTERFACE
  | T_EXTENDS
  | T_IMPLEMENTS
  | T_NEW
  | T_PUBLIC
  | T_PRIVATE
  | T_PROTECTED
  | T_STATIC
  | T_CONST
  | T_VAR
  | T_GLOBAL
  | T_ECHO
  | T_PRINT
  | T_UNSET
  | T_ISSET
  | T_EMPTY
  | T_EXIT                (* exit / die *)
  | T_INCLUDE
  | T_INCLUDE_ONCE
  | T_REQUIRE
  | T_REQUIRE_ONCE
  | T_LIST
  | T_ARRAY
  | T_TRY
  | T_CATCH
  | T_THROW
  | T_OBJECT_OPERATOR     (* -> *)
  | T_DOUBLE_COLON        (* :: (T_PAAMAYIM_NEKUDOTAYIM) *)
  | T_DOUBLE_ARROW        (* => *)
  | T_BOOLEAN_AND         (* && *)
  | T_BOOLEAN_OR          (* || *)
  | T_LOGICAL_AND         (* and *)
  | T_LOGICAL_OR          (* or *)
  | T_LOGICAL_XOR         (* xor *)
  | T_IS_EQUAL            (* == *)
  | T_IS_NOT_EQUAL        (* != *)
  | T_IS_IDENTICAL        (* === *)
  | T_IS_NOT_IDENTICAL    (* !== *)
  | T_IS_SMALLER_OR_EQUAL (* <= *)
  | T_IS_GREATER_OR_EQUAL (* >= *)
  | T_PLUS_EQUAL          (* += *)
  | T_MINUS_EQUAL         (* -= *)
  | T_MUL_EQUAL           (* *= *)
  | T_DIV_EQUAL           (* /= *)
  | T_CONCAT_EQUAL        (* .= *)
  | T_MOD_EQUAL           (* %= *)
  | T_INC                 (* ++ *)
  | T_DEC                 (* -- *)
  | T_COALESCE            (* ?? *)
  | T_INT_CAST            (* (int) / (integer) *)
  | T_FLOAT_CAST          (* (float) / (double) *)
  | T_STRING_CAST         (* (string) *)
  | T_ARRAY_CAST          (* (array) *)
  | T_BOOL_CAST           (* (bool) / (boolean) *)
  | T_NULL
  | T_TRUE
  | T_FALSE
  | T_COMMENT             (* // or /* ... *‍/ or # *)
  | T_DOC_COMMENT         (* /** ... *‍/ *)
  | T_WHITESPACE
  | Punct                 (* one of  ; , ( ) { } [ ] = + - * / % . < > ! ? : & @ | ^ ~ $ *)
  | T_EOF

type t = {
  kind : kind;
  lexeme : string;  (** raw source text of the token *)
  line : int;       (** 1-based line number, as in [token_get_all] *)
}

let make kind lexeme line = { kind; lexeme; line }

(** [token_name] equivalent: the PHP-style identifier of a token kind. *)
let name = function
  | T_OPEN_TAG -> "T_OPEN_TAG"
  | T_OPEN_TAG_WITH_ECHO -> "T_OPEN_TAG_WITH_ECHO"
  | T_CLOSE_TAG -> "T_CLOSE_TAG"
  | T_INLINE_HTML -> "T_INLINE_HTML"
  | T_VARIABLE -> "T_VARIABLE"
  | T_STRING -> "T_STRING"
  | T_LNUMBER -> "T_LNUMBER"
  | T_DNUMBER -> "T_DNUMBER"
  | T_CONSTANT_STRING -> "T_CONSTANT_ENCAPSED_STRING"
  | T_ENCAPSED_STRING -> "T_ENCAPSED_STRING"
  | T_HEREDOC -> "T_HEREDOC"
  | T_NOWDOC -> "T_NOWDOC"
  | T_IF -> "T_IF"
  | T_ELSE -> "T_ELSE"
  | T_ELSEIF -> "T_ELSEIF"
  | T_WHILE -> "T_WHILE"
  | T_DO -> "T_DO"
  | T_FOR -> "T_FOR"
  | T_FOREACH -> "T_FOREACH"
  | T_AS -> "T_AS"
  | T_SWITCH -> "T_SWITCH"
  | T_CASE -> "T_CASE"
  | T_DEFAULT -> "T_DEFAULT"
  | T_BREAK -> "T_BREAK"
  | T_CONTINUE -> "T_CONTINUE"
  | T_RETURN -> "T_RETURN"
  | T_FUNCTION -> "T_FUNCTION"
  | T_USE -> "T_USE"
  | T_CLASS -> "T_CLASS"
  | T_INTERFACE -> "T_INTERFACE"
  | T_EXTENDS -> "T_EXTENDS"
  | T_IMPLEMENTS -> "T_IMPLEMENTS"
  | T_NEW -> "T_NEW"
  | T_PUBLIC -> "T_PUBLIC"
  | T_PRIVATE -> "T_PRIVATE"
  | T_PROTECTED -> "T_PROTECTED"
  | T_STATIC -> "T_STATIC"
  | T_CONST -> "T_CONST"
  | T_VAR -> "T_VAR"
  | T_GLOBAL -> "T_GLOBAL"
  | T_ECHO -> "T_ECHO"
  | T_PRINT -> "T_PRINT"
  | T_UNSET -> "T_UNSET"
  | T_ISSET -> "T_ISSET"
  | T_EMPTY -> "T_EMPTY"
  | T_EXIT -> "T_EXIT"
  | T_INCLUDE -> "T_INCLUDE"
  | T_INCLUDE_ONCE -> "T_INCLUDE_ONCE"
  | T_REQUIRE -> "T_REQUIRE"
  | T_REQUIRE_ONCE -> "T_REQUIRE_ONCE"
  | T_LIST -> "T_LIST"
  | T_ARRAY -> "T_ARRAY"
  | T_TRY -> "T_TRY"
  | T_CATCH -> "T_CATCH"
  | T_THROW -> "T_THROW"
  | T_OBJECT_OPERATOR -> "T_OBJECT_OPERATOR"
  | T_DOUBLE_COLON -> "T_DOUBLE_COLON"
  | T_DOUBLE_ARROW -> "T_DOUBLE_ARROW"
  | T_BOOLEAN_AND -> "T_BOOLEAN_AND"
  | T_BOOLEAN_OR -> "T_BOOLEAN_OR"
  | T_LOGICAL_AND -> "T_LOGICAL_AND"
  | T_LOGICAL_OR -> "T_LOGICAL_OR"
  | T_LOGICAL_XOR -> "T_LOGICAL_XOR"
  | T_IS_EQUAL -> "T_IS_EQUAL"
  | T_IS_NOT_EQUAL -> "T_IS_NOT_EQUAL"
  | T_IS_IDENTICAL -> "T_IS_IDENTICAL"
  | T_IS_NOT_IDENTICAL -> "T_IS_NOT_IDENTICAL"
  | T_IS_SMALLER_OR_EQUAL -> "T_IS_SMALLER_OR_EQUAL"
  | T_IS_GREATER_OR_EQUAL -> "T_IS_GREATER_OR_EQUAL"
  | T_PLUS_EQUAL -> "T_PLUS_EQUAL"
  | T_MINUS_EQUAL -> "T_MINUS_EQUAL"
  | T_MUL_EQUAL -> "T_MUL_EQUAL"
  | T_DIV_EQUAL -> "T_DIV_EQUAL"
  | T_CONCAT_EQUAL -> "T_CONCAT_EQUAL"
  | T_MOD_EQUAL -> "T_MOD_EQUAL"
  | T_INC -> "T_INC"
  | T_DEC -> "T_DEC"
  | T_COALESCE -> "T_COALESCE"
  | T_INT_CAST -> "T_INT_CAST"
  | T_FLOAT_CAST -> "T_DOUBLE_CAST"
  | T_STRING_CAST -> "T_STRING_CAST"
  | T_ARRAY_CAST -> "T_ARRAY_CAST"
  | T_BOOL_CAST -> "T_BOOL_CAST"
  | T_NULL -> "T_NULL"
  | T_TRUE -> "T_TRUE"
  | T_FALSE -> "T_FALSE"
  | T_COMMENT -> "T_COMMENT"
  | T_DOC_COMMENT -> "T_DOC_COMMENT"
  | T_WHITESPACE -> "T_WHITESPACE"
  | Punct -> "PUNCT"
  | T_EOF -> "T_EOF"

(** Keyword table used by the lexer; PHP keywords are case-insensitive. *)
let keywords : (string * kind) list =
  [ ("if", T_IF); ("else", T_ELSE); ("elseif", T_ELSEIF); ("while", T_WHILE);
    ("do", T_DO); ("for", T_FOR); ("foreach", T_FOREACH); ("as", T_AS);
    ("switch", T_SWITCH); ("case", T_CASE); ("default", T_DEFAULT);
    ("break", T_BREAK); ("continue", T_CONTINUE); ("return", T_RETURN);
    ("function", T_FUNCTION); ("use", T_USE); ("class", T_CLASS);
    ("interface", T_INTERFACE); ("extends", T_EXTENDS);
    ("implements", T_IMPLEMENTS); ("new", T_NEW); ("public", T_PUBLIC);
    ("private", T_PRIVATE); ("protected", T_PROTECTED); ("static", T_STATIC);
    ("const", T_CONST); ("var", T_VAR); ("global", T_GLOBAL);
    ("echo", T_ECHO); ("print", T_PRINT); ("unset", T_UNSET);
    ("isset", T_ISSET); ("empty", T_EMPTY); ("exit", T_EXIT); ("die", T_EXIT);
    ("include", T_INCLUDE); ("include_once", T_INCLUDE_ONCE);
    ("require", T_REQUIRE); ("require_once", T_REQUIRE_ONCE);
    ("list", T_LIST); ("array", T_ARRAY); ("try", T_TRY); ("catch", T_CATCH);
    ("throw", T_THROW); ("and", T_LOGICAL_AND); ("or", T_LOGICAL_OR);
    ("xor", T_LOGICAL_XOR); ("null", T_NULL); ("true", T_TRUE);
    ("false", T_FALSE) ]

let keyword_kind s =
  let s = String.lowercase_ascii s in
  List.assoc_opt s keywords

let is_punct t c = t.kind = Punct && t.lexeme = String.make 1 c

let pp ppf t = Format.fprintf ppf "%s(%S)@%d" (name t.kind) t.lexeme t.line

let equal_kind (a : kind) (b : kind) = a = b
