(** Persistent content-addressed artifact store — the disk tier behind the
    parse, summary and analysis-result caches.

    Layout: [<root>/v<N>/<ns>/<k0k1>/<key>] where [key] is a hex digest and
    [k0k1] its first two characters (fan-out).  Each entry is a small
    framed file:

    {v
    phpsafe-store <format-version>
    <hex digest of payload>
    <payload: Marshal bytes>
    v}

    The frame makes reads safe: the payload is only unmarshalled after its
    digest verifies, so truncated, corrupt or foreign files — and entries
    written by an older format version, which live under a different
    [v<N>] directory — degrade to a miss, never to an error or a segfault.
    Writes go through a temp file in the destination directory and an
    atomic [rename], so concurrent readers (other domains or processes)
    only ever observe complete entries.

    The store is process-global, like {!Secflow.Budget}: the drivers point
    it at a directory once ([--cache-dir DIR], or the [PHPSAFE_CACHE_DIR]
    environment variable) before analysis starts.  With no root configured
    every operation is a no-op and the pipeline behaves exactly as an
    uncached build. *)

(** Bump when any marshalled artifact type (ASTs, summaries, findings) or
    the frame format changes: old entries become invisible, not invalid. *)
(* v4: Ast.Coalesce extends the binop type, so marshalled ASTs (and the
   summaries/findings derived from them) from v3 are incompatible. *)
(* v6: the sub-file incremental pipeline adds per-definition digest tables
   (ns "defdigest") and switches Digest.structural to No_sharing
   marshalling, changing every derived digest; v5 entries' keys and
   payloads are both stale. *)
let format_version = 6

let magic = "phpsafe-store"

let env_root () =
  match Sys.getenv_opt "PHPSAFE_CACHE_DIR" with
  | None -> None
  | Some s ->
      let s = String.trim s in
      if s = "" then None else Some s

let root_ref : string option Atomic.t = Atomic.make (env_root ())

let set_root r = Atomic.set root_ref r
let root () = Atomic.get root_ref
let enabled () = root () <> None

(* ------------------------------------------------------------------ *)
(* Tenant namespacing                                                 *)
(* ------------------------------------------------------------------ *)

(* The serving daemon isolates cache entries per tenant by prefixing every
   namespace with "<tenant>/" for the duration of one request's analysis.
   The prefix lives in domain-local storage: a [Sched] worker domain sets
   it around its work item, so concurrently-running requests for different
   tenants never see each other's prefix.  With no tenant set (the CLI,
   the evaluation drivers, tenant-less requests) namespaces are exactly as
   before. *)

let tenant_key : string option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let valid_tenant t =
  t <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       t
  && t <> "." && t <> ".."

let with_tenant tenant f =
  (match tenant with
  | Some t when not (valid_tenant t) ->
      invalid_arg (Printf.sprintf "Store.with_tenant: invalid tenant %S" t)
  | _ -> ());
  let old = Domain.DLS.get tenant_key in
  Domain.DLS.set tenant_key tenant;
  Fun.protect ~finally:(fun () -> Domain.DLS.set tenant_key old) f

(** The namespace as seen by the disk layout and the counters: tenant
    prefix applied ("/" nests a per-tenant directory level on disk). *)
let effective_ns ns =
  match Domain.DLS.get tenant_key with
  | None -> ns
  | Some t -> t ^ "/" ^ ns

(* ------------------------------------------------------------------ *)
(* Hit / miss / store accounting, per namespace                        *)
(* ------------------------------------------------------------------ *)

type counter = {
  mutable hit : int;
  mutable miss : int;
  mutable store : int;
  mutable write_error : int;
}

let counters_lock = Mutex.create ()
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 8

let counter_for ns =
  Mutex.lock counters_lock;
  let c =
    match Hashtbl.find_opt counters_tbl ns with
    | Some c -> c
    | None ->
        let c = { hit = 0; miss = 0; store = 0; write_error = 0 } in
        Hashtbl.replace counters_tbl ns c;
        c
  in
  Mutex.unlock counters_lock;
  c

let count ns what =
  let c = counter_for ns in
  Mutex.lock counters_lock;
  (match what with
  | `Hit -> c.hit <- c.hit + 1
  | `Miss -> c.miss <- c.miss + 1
  | `Store -> c.store <- c.store + 1
  | `Write_error -> c.write_error <- c.write_error + 1);
  Mutex.unlock counters_lock;
  Obs.incr
    (Printf.sprintf "cache.%s.%s" ns
       (match what with
       | `Hit -> "hit"
       | `Miss -> "miss"
       | `Store -> "store"
       | `Write_error -> "write_error"))

type stats = {
  ns : string;
  hits : int;
  misses : int;
  stores : int;
  write_errors : int;
}

let counters () =
  Mutex.lock counters_lock;
  let out =
    Hashtbl.fold
      (fun ns c acc ->
        {
          ns;
          hits = c.hit;
          misses = c.miss;
          stores = c.store;
          write_errors = c.write_error;
        }
        :: acc)
      counters_tbl []
  in
  Mutex.unlock counters_lock;
  List.sort (fun a b -> String.compare a.ns b.ns) out

let reset_counters () =
  Mutex.lock counters_lock;
  Hashtbl.reset counters_tbl;
  Mutex.unlock counters_lock

let pp_counters ppf () =
  List.iter
    (fun s ->
      let looked_up = s.hits + s.misses in
      Format.fprintf ppf
        "cache %-8s %6d hit(s) / %6d miss(es) (%3.0f%% hit rate), %6d \
         store(s)%s@."
        s.ns s.hits s.misses
        (if looked_up = 0 then 0.
         else 100. *. float_of_int s.hits /. float_of_int looked_up)
        s.stores
        (if s.write_errors = 0 then ""
         else Printf.sprintf ", %d write error(s)" s.write_errors))
    (counters ())

(* ------------------------------------------------------------------ *)
(* Fault injection (tests / chaos harness)                             *)
(* ------------------------------------------------------------------ *)

(* The hook runs just before the store touches the disk for an entry; a
   hook that raises simulates ENOSPC/EACCES/EIO at exactly the narrow
   points the production error handling covers: reads degrade to a miss,
   writes to a counted write error.  Process-global on purpose — the chaos
   harness arms it around requests flowing through worker domains. *)
let fault_hook : ([ `Read | `Write ] -> string -> unit) option Atomic.t =
  Atomic.make None

let set_fault_hook h = Atomic.set fault_hook h

let fault op path =
  match Atomic.get fault_hook with Some f -> f op path | None -> ()

(* ------------------------------------------------------------------ *)
(* Paths and I/O                                                       *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir

(** [<root>/v<N>/<ns>/<k0k1>] and the entry path inside it.  Keys are hex
    digests; anything shorter than two characters gets a flat directory. *)
let entry_path ~root ~ns ~key =
  let fan = if String.length key >= 2 then String.sub key 0 2 else "_" in
  let dir =
    List.fold_left Filename.concat root
      [ Printf.sprintf "v%d" format_version; ns; fan ]
  in
  (dir, Filename.concat dir key)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Parse and verify the frame; [Some payload] only when the header and
    payload digest check out.  Shared by {!decode} and {!fsck} so both
    apply the same notion of "intact". *)
let verify_frame (content : string) : string option =
  match String.index_opt content '\n' with
  | None -> None
  | Some nl1 -> (
      let header = String.sub content 0 nl1 in
      if header <> Printf.sprintf "%s %d" magic format_version then None
      else
        match String.index_from_opt content (nl1 + 1) '\n' with
        | None -> None
        | Some nl2 ->
            let digest = String.sub content (nl1 + 1) (nl2 - nl1 - 1) in
            let payload =
              String.sub content (nl2 + 1) (String.length content - nl2 - 1)
            in
            if String.equal digest (Digest.hex payload) then Some payload
            else None)

(** Parse and verify the frame; [None] on any mismatch. *)
let decode (content : string) : 'a option =
  match verify_frame content with
  | None -> None
  | Some payload ->
      (* digest verified: the payload is byte-identical to what [put]
         marshalled, so unmarshalling it is safe *)
      Some (Marshal.from_string payload 0)

let get ~ns ~key : 'a option =
  match root () with
  | None -> None
  | Some root -> (
      let ns = effective_ns ns in
      let _, path = entry_path ~root ~ns ~key in
      let data =
        Obs.span "cache.io.read" @@ fun () ->
        match
          fault `Read path;
          read_all path
        with
        | content -> decode content
        | exception _ -> None
      in
      match data with
      | Some v ->
          count ns `Hit;
          Some v
      | None ->
          count ns `Miss;
          None)

let put ~ns ~key (v : 'a) : unit =
  match root () with
  | None -> ()
  | Some root -> (
      let ns = effective_ns ns in
      let tmp_ref = ref None in
      try
        Obs.span "cache.io.write" @@ fun () ->
        let dir, path = entry_path ~root ~ns ~key in
        mkdir_p dir;
        fault `Write path;
        let payload = Marshal.to_string v [] in
        let tmp = Filename.temp_file ~temp_dir:dir ".wip" ".tmp" in
        tmp_ref := Some tmp;
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Printf.fprintf oc "%s %d\n%s\n%s" magic format_version
              (Digest.hex payload) payload);
        Sys.rename tmp path;
        count ns `Store
      with Sys_error _ | Unix.Unix_error (_, _, _) | Out_of_memory ->
        (* ENOSPC, EACCES, a short write, an unwritable root: degrade to
           "not cached", but count it — a silent swallow here turns a
           full disk into an invisible performance cliff.  Anything else
           (a Marshal bug, an assert) still propagates. *)
        (match !tmp_ref with
        | Some tmp -> ( try Sys.remove tmp with Sys_error _ -> ())
        | None -> ());
        count ns `Write_error)

(* ------------------------------------------------------------------ *)
(* Disk-tier accounting and pruning                                   *)
(* ------------------------------------------------------------------ *)

type disk_stats = { ds_ns : string; ds_entries : int; ds_bytes : int }

(** Walk every regular file under the active version directory, calling
    [f ns path st] with the entry's namespace (the directory components
    between [v<N>] and the two-character fan-out level, so per-tenant
    namespaces come back as ["tenant/parse"]). *)
let iter_entries ~root f =
  let vdir = Filename.concat root (Printf.sprintf "v%d" format_version) in
  let rec walk ns_rev dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            match Unix.lstat path with
            | exception Unix.Unix_error _ -> ()
            | st -> (
                match st.Unix.st_kind with
                | Unix.S_DIR -> walk (entry :: ns_rev) path
                | Unix.S_REG ->
                    (* the file's parent is the fan-out level, not part of
                       the namespace *)
                    let ns =
                      match ns_rev with
                      | [] -> "_"
                      | _ :: above -> String.concat "/" (List.rev above)
                    in
                    f ns path st
                | _ -> ()))
          entries
  in
  if Sys.file_exists vdir then walk [] vdir

let stats () : disk_stats list =
  match root () with
  | None -> []
  | Some root ->
      let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
      iter_entries ~root (fun ns _path st ->
          let entries, bytes =
            Option.value ~default:(0, 0) (Hashtbl.find_opt tbl ns)
          in
          Hashtbl.replace tbl ns (entries + 1, bytes + st.Unix.st_size));
      Hashtbl.fold
        (fun ns (entries, bytes) acc ->
          { ds_ns = ns; ds_entries = entries; ds_bytes = bytes } :: acc)
        tbl []
      |> List.sort (fun a b -> String.compare a.ds_ns b.ds_ns)

type fsck_report = { fk_scanned : int; fk_ok : int; fk_quarantined : int }

let fsck () : fsck_report =
  match root () with
  | None -> { fk_scanned = 0; fk_ok = 0; fk_quarantined = 0 }
  | Some root ->
      let qdir = Filename.concat root "quarantine" in
      let scanned = ref 0 and ok = ref 0 and quarantined = ref 0 in
      iter_entries ~root (fun ns path _st ->
          (* skip in-flight temp files: a .wip*.tmp is a concurrent writer
             mid-[put], not corruption *)
          let base = Filename.basename path in
          if not (Filename.check_suffix base ".tmp") then begin
            incr scanned;
            let intact =
              match read_all path with
              | content -> verify_frame content <> None
              | exception _ -> false
            in
            if intact then incr ok
            else begin
              (* quarantine, don't delete: the corrupt bytes are evidence
                 (bit rot? torn write? foreign file?) an operator may want *)
              mkdir_p qdir;
              let mangled_ns =
                String.map (fun c -> if c = '/' then '_' else c) ns
              in
              let dest =
                Filename.concat qdir (mangled_ns ^ "__" ^ base)
              in
              match Sys.rename path dest with
              | () ->
                  incr quarantined;
                  Obs.incr "cache.fsck.quarantined"
              | exception Sys_error _ -> ()
            end
          end);
      { fk_scanned = !scanned; fk_ok = !ok; fk_quarantined = !quarantined }

let prune ~max_age_s () =
  match root () with
  | None -> 0
  | Some root ->
      let cutoff = Unix.time () -. max_age_s in
      let removed = ref 0 in
      iter_entries ~root (fun _ns path st ->
          if st.Unix.st_mtime < cutoff then
            match Sys.remove path with
            | () ->
                incr removed;
                Obs.incr "cache.pruned"
            | exception Sys_error _ -> ());
      !removed
