(** Recursive-descent parser for the PHP 5 plugin subset (see {!Ast}).

    Follows PHP's operator precedence and expands double-quoted string
    interpolation ([$var], [$var->prop], [$arr[key]], [{$expr}]) into
    {!Ast.Interp} parts. *)

exception Parse_error of string * Ast.pos
(** Parse failure with a human-readable message and source position. *)

exception Depth_exceeded of string * Ast.pos
(** Raised when expression/statement nesting exceeds the fuel limit (see
    {!set_nesting_limit}) — a resource-budget exhaustion, distinct from a
    syntax error, so callers can report it as such. *)

val default_nesting_limit : int
(** The built-in nesting-depth budget (512 levels). *)

val set_nesting_limit : int -> unit
(** Set the process-global nesting-depth fuel for all subsequent parses
    (clamped to ≥ 16).  Bounds recursion in the expression, prefix-operator
    and statement parsers so pathological inputs raise {!Depth_exceeded}
    instead of overflowing the OCaml stack. *)

val nesting_limit : unit -> int
(** The nesting-depth fuel currently in force. *)

val parse_tokens : file:string -> Token.t list -> Ast.program
(** Parse a significant-token list (see {!Lexer.significant}); [file] is
    recorded in every position. *)

val parse_source : file:string -> string -> Ast.program
(** Tokenize and parse a complete PHP source file. *)

val expr_of_string : ?file:string -> string -> Ast.expr
(** Parse a single PHP expression given without [<?php] tags — used for
    [{$...}] interpolation and convenient in tests. *)

(** {1 Region re-parse}

    Support for sub-file incremental parsing: {!parse_program_spans}
    records each top-level statement's extent in the significant-token
    array, and {!parse_region} re-parses just a damaged token range,
    bounded by the old statement's end.  See [Project.Increment] for the
    splice logic and fallback rules. *)

type top_span = { sp_start : int; sp_stop : int }
(** A top-level statement's extent [sp_start, sp_stop) in the
    significant-token array.  Skipped [T_OPEN_TAG] tokens belong to no
    span. *)

val parse_program_spans :
  file:string -> Token.t array -> Ast.program * top_span array
(** Like {!parse_tokens} on the same (significant) tokens, additionally
    returning one {!top_span} per top-level statement, in order. *)

val parse_region :
  file:string ->
  Token.t array ->
  start:int ->
  stop:int ->
  (Ast.stmt list * top_span list) option
(** Parse top-level statements from [start] against the full token array
    until the cursor lands exactly on [stop].  [None] when the last
    statement overruns [stop] — the caller must fall back to a whole-file
    parse.  Raises {!Parse_error}/{!Depth_exceeded} as the full parse
    would. *)
