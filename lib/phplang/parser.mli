(** Recursive-descent parser for the PHP 5 plugin subset (see {!Ast}).

    Follows PHP's operator precedence and expands double-quoted string
    interpolation ([$var], [$var->prop], [$arr[key]], [{$expr}]) into
    {!Ast.Interp} parts. *)

exception Parse_error of string * Ast.pos
(** Parse failure with a human-readable message and source position. *)

exception Depth_exceeded of string * Ast.pos
(** Raised when expression/statement nesting exceeds the fuel limit (see
    {!set_nesting_limit}) — a resource-budget exhaustion, distinct from a
    syntax error, so callers can report it as such. *)

val default_nesting_limit : int
(** The built-in nesting-depth budget (512 levels). *)

val set_nesting_limit : int -> unit
(** Set the process-global nesting-depth fuel for all subsequent parses
    (clamped to ≥ 16).  Bounds recursion in the expression, prefix-operator
    and statement parsers so pathological inputs raise {!Depth_exceeded}
    instead of overflowing the OCaml stack. *)

val nesting_limit : unit -> int
(** The nesting-depth fuel currently in force. *)

val parse_tokens : file:string -> Token.t list -> Ast.program
(** Parse a significant-token list (see {!Lexer.significant}); [file] is
    recorded in every position. *)

val parse_source : file:string -> string -> Ast.program
(** Tokenize and parse a complete PHP source file. *)

val expr_of_string : ?file:string -> string -> Ast.expr
(** Parse a single PHP expression given without [<?php] tags — used for
    [{$...}] interpolation and convenient in tests. *)
