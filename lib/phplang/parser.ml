(** Recursive-descent parser for the PHP 5 subset in {!Ast}.

    The grammar follows PHP's operator precedence ([or]/[xor] < [and] <
    assignment < ternary < [||] < [&&] < equality < relational < additive/[.]
    < multiplicative < unary < postfix).  Double-quoted strings are expanded
    into {!Ast.Interp} parts here, including [$var], [$var->prop],
    [$arr[key]] and [{$expr}] interpolation — the construct behind the
    paper's running example
    ["SELECT * FROM " . $wpdb->prefix . "sml"]. *)

exception Parse_error of string * Ast.pos
exception Depth_exceeded of string * Ast.pos

(* Nesting-depth fuel: bounds recursion in [parse_expr]/[parse_unary]/
   [parse_stmt] so pathological inputs ("((((...))))", "!!!!...1") abort
   with {!Depth_exceeded} long before the OCaml stack is at risk.  The
   limit is process-global (an [Atomic.t], so parallel drivers may tune it
   once up front) and deliberately generous: real plugin code nests a few
   dozen levels at most. *)
let default_nesting_limit = 512
let nesting_fuel = Atomic.make default_nesting_limit
let set_nesting_limit n = Atomic.set nesting_fuel (max 16 n)
let nesting_limit () = Atomic.get nesting_fuel

type state = {
  tokens : Token.t array;
  mutable cur : int;
  mutable depth : int;
  file : string;
}

let pos_of st (t : Token.t) : Ast.pos = { file = st.file; line = t.Token.line }
let peek st = st.tokens.(st.cur)
let peek2 st =
  if st.cur + 1 < Array.length st.tokens then Some st.tokens.(st.cur + 1)
  else None

let here st = pos_of st (peek st)

(* [Depth_exceeded] aborts the whole parse and the state is then discarded,
   so [deepen]'s increment needs no exception-safe restore — the paired
   decrement in the wrappers below only matters on the success path. *)
let deepen st =
  st.depth <- st.depth + 1;
  let fuel = Atomic.get nesting_fuel in
  if st.depth > fuel then
    raise
      (Depth_exceeded
         ( Printf.sprintf "nesting depth exceeds the budget of %d" fuel,
           here st ))

let fail st msg =
  let t = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s (at %s %S)" msg (Token.name t.Token.kind) t.Token.lexeme,
        here st))

let advance st =
  let t = peek st in
  if t.Token.kind <> Token.T_EOF then st.cur <- st.cur + 1;
  t

let check st kind = (peek st).Token.kind = kind
let check_punct st c = Token.is_punct (peek st) c

let eat st kind =
  if check st kind then advance st
  else fail st (Printf.sprintf "expected %s" (Token.name kind))

let eat_punct st c =
  if check_punct st c then advance st
  else fail st (Printf.sprintf "expected %C" c)

let skip_if st kind = if check st kind then (ignore (advance st); true) else false
let skip_punct_if st c =
  if check_punct st c then (ignore (advance st); true) else false

(* ------------------------------------------------------------------ *)
(* String literal decoding                                            *)
(* ------------------------------------------------------------------ *)

(* Decode a single-quoted lexeme (quotes included): only \' and \\ escape. *)
let decode_single lexeme =
  let body = String.sub lexeme 1 (String.length lexeme - 2) in
  let buf = Buffer.create (String.length body) in
  let i = ref 0 in
  let n = String.length body in
  while !i < n do
    if body.[!i] = '\\' && !i + 1 < n && (body.[!i + 1] = '\'' || body.[!i + 1] = '\\')
    then begin
      Buffer.add_char buf body.[!i + 1];
      i := !i + 2
    end
    else begin
      Buffer.add_char buf body.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* PHP integer-literal semantics: 0x../0b.. are hex/binary (OCaml's
   [int_of_string] already reads those), a leading zero means octal
   ("0755" is 493), anything else is decimal.  Malformed octal like "08"
   falls back to decimal, the closest to PHP 5's silent truncation that
   keeps the literal's value recognisable. *)
let int_of_lnumber lexeme =
  let is_octal_digit c = c >= '0' && c <= '7' in
  let len = String.length lexeme in
  if len > 1 && lexeme.[0] = '0' then
    match lexeme.[1] with
    | 'x' | 'X' | 'b' | 'B' -> int_of_string lexeme
    | _ ->
        let body = String.sub lexeme 1 (len - 1) in
        if String.for_all is_octal_digit body then int_of_string ("0o" ^ body)
        else int_of_string lexeme
  else int_of_string lexeme

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st : Ast.expr =
  deepen st;
  let e = parse_logical_low st in
  st.depth <- st.depth - 1;
  e

(* or / xor — lowest precedence *)
and parse_logical_low st =
  let lhs = parse_logical_and_low st in
  let rec loop lhs =
    match (peek st).Token.kind with
    | Token.T_LOGICAL_OR ->
        let t = advance st in
        let rhs = parse_logical_and_low st in
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.BoolOr, lhs, rhs)))
    | Token.T_LOGICAL_XOR ->
        let t = advance st in
        let rhs = parse_logical_and_low st in
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.NotIdentical, lhs, rhs)))
    | _ -> lhs
  in
  loop lhs

and parse_logical_and_low st =
  let lhs = parse_assignment st in
  let rec loop lhs =
    if check st Token.T_LOGICAL_AND then begin
      let t = advance st in
      let rhs = parse_assignment st in
      loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.BoolAnd, lhs, rhs)))
    end
    else lhs
  in
  loop lhs

and parse_assignment st =
  let lhs = parse_ternary st in
  let t = peek st in
  let mk desc = Ast.mk_e ~pos:(pos_of st t) desc in
  match t.Token.kind with
  | Token.Punct when t.Token.lexeme = "=" ->
      ignore (advance st);
      if check_punct st '&' then begin
        ignore (advance st);
        let rhs = parse_assignment st in
        mk (Ast.AssignRef (lhs, rhs))
      end
      else
        let rhs = parse_assignment st in
        mk (Ast.Assign (lhs, rhs))
  | Token.T_CONCAT_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Concat, lhs, parse_assignment st))
  | Token.T_PLUS_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Plus, lhs, parse_assignment st))
  | Token.T_MINUS_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Minus, lhs, parse_assignment st))
  | Token.T_MUL_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Mul, lhs, parse_assignment st))
  | Token.T_DIV_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Div, lhs, parse_assignment st))
  | Token.T_MOD_EQUAL ->
      ignore (advance st);
      mk (Ast.OpAssign (Ast.Mod, lhs, parse_assignment st))
  | _ -> lhs

and parse_ternary st =
  let cond = parse_coalesce st in
  if check_punct st '?' then begin
    let t = advance st in
    if skip_punct_if st ':' then
      let els = parse_ternary st in
      Ast.mk_e ~pos:(pos_of st t) (Ast.Ternary (cond, None, els))
    else
      let thn = parse_expr st in
      ignore (eat_punct st ':');
      let els = parse_ternary st in
      Ast.mk_e ~pos:(pos_of st t) (Ast.Ternary (cond, Some thn, els))
  end
  else cond

(* ?? — between the ternary and ||, right-associative as in PHP *)
and parse_coalesce st =
  let lhs = parse_bool_or st in
  if check st Token.T_COALESCE then begin
    let t = advance st in
    let rhs = parse_coalesce st in
    Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.Coalesce, lhs, rhs))
  end
  else lhs

and parse_bool_or st =
  let lhs = parse_bool_and st in
  let rec loop lhs =
    if check st Token.T_BOOLEAN_OR then begin
      let t = advance st in
      loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.BoolOr, lhs, parse_bool_and st)))
    end
    else lhs
  in
  loop lhs

and parse_bool_and st =
  let lhs = parse_equality st in
  let rec loop lhs =
    if check st Token.T_BOOLEAN_AND then begin
      let t = advance st in
      loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (Ast.BoolAnd, lhs, parse_equality st)))
    end
    else lhs
  in
  loop lhs

and parse_equality st =
  let lhs = parse_relational st in
  let rec loop lhs =
    let t = peek st in
    let op =
      match t.Token.kind with
      | Token.T_IS_EQUAL -> Some Ast.Eq
      | Token.T_IS_NOT_EQUAL -> Some Ast.Neq
      | Token.T_IS_IDENTICAL -> Some Ast.Identical
      | Token.T_IS_NOT_IDENTICAL -> Some Ast.NotIdentical
      | _ -> None
    in
    match op with
    | Some op ->
        ignore (advance st);
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (op, lhs, parse_relational st)))
    | None -> lhs
  in
  loop lhs

and parse_relational st =
  let lhs = parse_additive st in
  let rec loop lhs =
    let t = peek st in
    let op =
      match t.Token.kind with
      | Token.Punct when t.Token.lexeme = "<" -> Some Ast.Lt
      | Token.Punct when t.Token.lexeme = ">" -> Some Ast.Gt
      | Token.T_IS_SMALLER_OR_EQUAL -> Some Ast.Le
      | Token.T_IS_GREATER_OR_EQUAL -> Some Ast.Ge
      | _ -> None
    in
    match op with
    | Some op ->
        ignore (advance st);
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (op, lhs, parse_additive st)))
    | None -> lhs
  in
  loop lhs

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    let t = peek st in
    let op =
      match t.Token.kind with
      | Token.Punct when t.Token.lexeme = "+" -> Some Ast.Plus
      | Token.Punct when t.Token.lexeme = "-" -> Some Ast.Minus
      | Token.Punct when t.Token.lexeme = "." -> Some Ast.Concat
      | _ -> None
    in
    match op with
    | Some op ->
        ignore (advance st);
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (op, lhs, parse_multiplicative st)))
    | None -> lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    let op =
      match t.Token.kind with
      | Token.Punct when t.Token.lexeme = "*" -> Some Ast.Mul
      | Token.Punct when t.Token.lexeme = "/" -> Some Ast.Div
      | Token.Punct when t.Token.lexeme = "%" -> Some Ast.Mod
      | _ -> None
    in
    match op with
    | Some op ->
        ignore (advance st);
        loop (Ast.mk_e ~pos:(pos_of st t) (Ast.Bin (op, lhs, parse_unary st)))
    | None -> lhs
  in
  loop lhs

and parse_unary st =
  (* guarded separately from [parse_expr]: prefix-operator chains recurse
     through [parse_unary] without ever re-entering [parse_expr] *)
  deepen st;
  let e = parse_unary_body st in
  st.depth <- st.depth - 1;
  e

and parse_unary_body st =
  let t = peek st in
  let pos = pos_of st t in
  match t.Token.kind with
  | Token.Punct when t.Token.lexeme = "!" ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Un (Ast.Not, parse_unary st))
  | Token.Punct when t.Token.lexeme = "-" ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Un (Ast.Neg, parse_unary st))
  | Token.Punct when t.Token.lexeme = "@" ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Un (Ast.Silence, parse_unary st))
  | Token.T_INC ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Un (Ast.PreInc, parse_unary st))
  | Token.T_DEC ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Un (Ast.PreDec, parse_unary st))
  | Token.T_INT_CAST ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.CastE (Ast.CastInt, parse_unary st))
  | Token.T_FLOAT_CAST ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.CastE (Ast.CastFloat, parse_unary st))
  | Token.T_STRING_CAST ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.CastE (Ast.CastString, parse_unary st))
  | Token.T_ARRAY_CAST ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.CastE (Ast.CastArray, parse_unary st))
  | Token.T_BOOL_CAST ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.CastE (Ast.CastBool, parse_unary st))
  | Token.T_NEW ->
      ignore (advance st);
      let name = (eat st Token.T_STRING).Token.lexeme in
      let args = if check_punct st '(' then parse_args st else [] in
      parse_postfix st (Ast.mk_e ~pos (Ast.New (name, args)))
  | Token.T_PRINT ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.PrintE (parse_expr st))
  | Token.T_EXIT ->
      ignore (advance st);
      if skip_punct_if st '(' then
        if skip_punct_if st ')' then Ast.mk_e ~pos (Ast.Exit None)
        else
          let e = parse_expr st in
          ignore (eat_punct st ')');
          Ast.mk_e ~pos (Ast.Exit (Some e))
      else Ast.mk_e ~pos (Ast.Exit None)
  | Token.T_INCLUDE | Token.T_INCLUDE_ONCE | Token.T_REQUIRE
  | Token.T_REQUIRE_ONCE ->
      let kind =
        match t.Token.kind with
        | Token.T_INCLUDE -> Ast.Include
        | Token.T_INCLUDE_ONCE -> Ast.IncludeOnce
        | Token.T_REQUIRE -> Ast.Require
        | _ -> Ast.RequireOnce
      in
      ignore (advance st);
      (* Parenthesised or bare operand; either way one expression. *)
      Ast.mk_e ~pos (Ast.IncludeE (kind, parse_expr st))
  | _ -> parse_postfix_chain st

and parse_args st =
  ignore (eat_punct st '(');
  if skip_punct_if st ')' then []
  else
    let rec loop acc =
      (* by-reference call-site markers (&$x) are parsed and dropped *)
      ignore (skip_punct_if st '&');
      let e = parse_expr st in
      if skip_punct_if st ',' then loop (e :: acc)
      else begin
        ignore (eat_punct st ')');
        List.rev (e :: acc)
      end
    in
    loop []

and parse_postfix_chain st =
  let base = parse_primary st in
  parse_postfix st base

and parse_postfix st base =
  let t = peek st in
  match t.Token.kind with
  | Token.T_OBJECT_OPERATOR ->
      ignore (advance st);
      let name = (eat st Token.T_STRING).Token.lexeme in
      if check_punct st '(' then
        let args = parse_args st in
        parse_postfix st
          (Ast.mk_e ~pos:(pos_of st t) (Ast.MethodCall (base, name, args)))
      else
        parse_postfix st (Ast.mk_e ~pos:(pos_of st t) (Ast.Prop (base, name)))
  | Token.Punct when t.Token.lexeme = "[" ->
      ignore (advance st);
      if skip_punct_if st ']' then
        parse_postfix st (Ast.mk_e ~pos:(pos_of st t) (Ast.ArrayGet (base, None)))
      else begin
        let idx = parse_expr st in
        ignore (eat_punct st ']');
        parse_postfix st
          (Ast.mk_e ~pos:(pos_of st t) (Ast.ArrayGet (base, Some idx)))
      end
  | Token.T_INC ->
      ignore (advance st);
      parse_postfix st (Ast.mk_e ~pos:(pos_of st t) (Ast.Un (Ast.PostInc, base)))
  | Token.T_DEC ->
      ignore (advance st);
      parse_postfix st (Ast.mk_e ~pos:(pos_of st t) (Ast.Un (Ast.PostDec, base)))
  | _ -> base

and parse_primary st =
  let t = peek st in
  let pos = pos_of st t in
  match t.Token.kind with
  | Token.T_LNUMBER ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Int (int_of_lnumber t.Token.lexeme))
  | Token.T_DNUMBER ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Float (float_of_string t.Token.lexeme))
  | Token.T_CONSTANT_STRING ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Str (decode_single t.Token.lexeme))
  | Token.T_ENCAPSED_STRING ->
      ignore (advance st);
      parse_interp st t
  | Token.T_NOWDOC ->
      (* <<<'EOT': no interpolation, the raw body is the literal *)
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Str t.Token.lexeme)
  | Token.T_HEREDOC ->
      (* <<<EOT: interpolates exactly like a double-quoted body *)
      ignore (advance st);
      parse_interp_body st ~pos t.Token.lexeme
  | Token.T_NULL ->
      ignore (advance st);
      Ast.mk_e ~pos Ast.Null
  | Token.T_TRUE ->
      ignore (advance st);
      Ast.mk_e ~pos Ast.True
  | Token.T_FALSE ->
      ignore (advance st);
      Ast.mk_e ~pos Ast.False
  | Token.T_VARIABLE ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.Var t.Token.lexeme)
  | Token.T_ISSET ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let rec loop acc =
        let e = parse_expr st in
        if skip_punct_if st ',' then loop (e :: acc)
        else begin
          ignore (eat_punct st ')');
          List.rev (e :: acc)
        end
      in
      Ast.mk_e ~pos (Ast.Isset (loop []))
  | Token.T_EMPTY ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let e = parse_expr st in
      ignore (eat_punct st ')');
      Ast.mk_e ~pos (Ast.EmptyE e)
  | Token.T_LIST ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let rec loop acc =
        if check_punct st ',' then begin
          ignore (advance st);
          loop (None :: acc)
        end
        else if check_punct st ')' then acc
        else
          let e = parse_expr st in
          if skip_punct_if st ',' then loop (Some e :: acc)
          else Some e :: acc
      in
      let slots = List.rev (loop []) in
      ignore (eat_punct st ')');
      ignore (eat_punct st '=');
      let rhs = parse_expr st in
      Ast.mk_e ~pos (Ast.ListAssign (slots, rhs))
  | Token.T_ARRAY ->
      ignore (advance st);
      Ast.mk_e ~pos (Ast.ArrayLit (parse_array_items st '(' ')'))
  | Token.Punct when t.Token.lexeme = "[" ->
      Ast.mk_e ~pos (Ast.ArrayLit (parse_array_items st '[' ']'))
  | Token.Punct when t.Token.lexeme = "(" ->
      ignore (advance st);
      let e = parse_expr st in
      ignore (eat_punct st ')');
      e
  | Token.T_FUNCTION ->
      (* closure expression *)
      ignore (advance st);
      let params = parse_params st in
      let uses =
        if skip_if st Token.T_USE then begin
          ignore (eat_punct st '(');
          let rec loop acc =
            let by_ref = skip_punct_if st '&' in
            let v = (eat st Token.T_VARIABLE).Token.lexeme in
            if skip_punct_if st ',' then loop ((v, by_ref) :: acc)
            else begin
              ignore (eat_punct st ')');
              List.rev ((v, by_ref) :: acc)
            end
          in
          loop []
        end
        else []
      in
      let body = parse_braced_block st in
      Ast.mk_e ~pos
        (Ast.Closure { Ast.cl_params = params; cl_uses = uses; cl_body = body })
  | Token.T_STRING -> (
      let name = t.Token.lexeme in
      ignore (advance st);
      match (peek st).Token.kind with
      | Token.Punct when (peek st).Token.lexeme = "(" ->
          let args = parse_args st in
          Ast.mk_e ~pos (Ast.Call (name, args))
      | Token.T_DOUBLE_COLON -> (
          ignore (advance st);
          let nt = peek st in
          match nt.Token.kind with
          | Token.T_VARIABLE ->
              ignore (advance st);
              Ast.mk_e ~pos (Ast.StaticProp (name, nt.Token.lexeme))
          | Token.T_STRING ->
              ignore (advance st);
              if check_punct st '(' then
                let args = parse_args st in
                Ast.mk_e ~pos (Ast.StaticCall (name, nt.Token.lexeme, args))
              else Ast.mk_e ~pos (Ast.ClassConst (name, nt.Token.lexeme))
          | _ -> fail st "expected member after ::")
      | _ -> Ast.mk_e ~pos (Ast.Const name))
  | _ -> fail st "unexpected token in expression"

and parse_array_items st opener closer =
  ignore (eat_punct st opener);
  if skip_punct_if st closer then []
  else
    let rec loop acc =
      if check_punct st closer then begin
        ignore (advance st);
        List.rev acc
      end
      else begin
        let first = parse_expr st in
        let item =
          if skip_if st Token.T_DOUBLE_ARROW then begin
            ignore (skip_punct_if st '&');
            (Some first, parse_expr st)
          end
          else (None, first)
        in
        if skip_punct_if st ',' then loop (item :: acc)
        else begin
          ignore (eat_punct st closer);
          List.rev (item :: acc)
        end
      end
    in
    loop []

(* --- double-quoted string interpolation ---------------------------- *)

and parse_interp st (tok : Token.t) : Ast.expr =
  let pos = pos_of st tok in
  let body = String.sub tok.Token.lexeme 1 (String.length tok.Token.lexeme - 2) in
  parse_interp_body st ~pos body

(* Shared by double-quoted strings (quotes already stripped) and heredoc
   bodies (raw, never quote-framed). *)
and parse_interp_body st ~pos body : Ast.expr =
  let n = String.length body in
  let parts = ref [] in
  let lit = Buffer.create 16 in
  let flush_lit () =
    if Buffer.length lit > 0 then begin
      parts := Ast.ILit (Buffer.contents lit) :: !parts;
      Buffer.clear lit
    end
  in
  let mk desc = Ast.mk_e ~pos desc in
  let i = ref 0 in
  while !i < n do
    let c = body.[!i] in
    if c = '\\' && !i + 1 < n then begin
      (let e = body.[!i + 1] in
       match e with
       | 'n' -> Buffer.add_char lit '\n'
       | 't' -> Buffer.add_char lit '\t'
       | 'r' -> Buffer.add_char lit '\r'
       | '"' -> Buffer.add_char lit '"'
       | '\\' -> Buffer.add_char lit '\\'
       | '$' -> Buffer.add_char lit '$'
       | '0' -> Buffer.add_char lit '\000'
       | _ ->
           Buffer.add_char lit '\\';
           Buffer.add_char lit e);
      i := !i + 2
    end
    else if c = '$' && !i + 1 < n && is_ident_start body.[!i + 1] then begin
      flush_lit ();
      let j = ref (!i + 1) in
      while !j < n && is_ident_char body.[!j] do incr j done;
      let var = mk (Ast.Var (String.sub body !i (!j - !i))) in
      i := !j;
      (* optional one-level suffix: ->prop or [key] *)
      if !i + 2 < n && body.[!i] = '-' && body.[!i + 1] = '>'
         && is_ident_start body.[!i + 2]
      then begin
        let k = ref (!i + 2) in
        while !k < n && is_ident_char body.[!k] do incr k done;
        let prop = String.sub body (!i + 2) (!k - (!i + 2)) in
        parts := Ast.IExpr (mk (Ast.Prop (var, prop))) :: !parts;
        i := !k
      end
      else if !i < n && body.[!i] = '[' then begin
        let close =
          match String.index_from_opt body !i ']' with
          | Some c -> c
          | None -> raise (Parse_error ("unterminated [ in string", pos))
        in
        let key = String.sub body (!i + 1) (close - !i - 1) in
        let key_expr =
          if String.length key > 0 && key.[0] = '$' then mk (Ast.Var key)
          else
            match int_of_string_opt key with
            | Some v -> mk (Ast.Int v)
            | None ->
                (* bare or quoted word key *)
                let key =
                  if String.length key >= 2
                     && (key.[0] = '\'' || key.[0] = '"')
                  then String.sub key 1 (String.length key - 2)
                  else key
                in
                mk (Ast.Str key)
        in
        parts := Ast.IExpr (mk (Ast.ArrayGet (var, Some key_expr))) :: !parts;
        i := close + 1
      end
      else parts := Ast.IExpr var :: !parts
    end
    else if c = '{' && !i + 1 < n && body.[!i + 1] = '$' then begin
      flush_lit ();
      (* find matching close brace, tracking nesting *)
      let depth = ref 1 in
      let j = ref (!i + 1) in
      while !depth > 0 && !j < n do
        (match body.[!j] with
        | '{' -> incr depth
        | '}' -> decr depth
        | _ -> ());
        if !depth > 0 then incr j
      done;
      if !depth > 0 then raise (Parse_error ("unterminated {$ in string", pos));
      let inner = String.sub body (!i + 1) (!j - !i - 1) in
      let e = expr_of_string ~file:st.file inner in
      parts := Ast.IExpr e :: !parts;
      i := !j + 1
    end
    else begin
      Buffer.add_char lit c;
      incr i
    end
  done;
  flush_lit ();
  match List.rev !parts with
  | [ Ast.ILit s ] -> mk (Ast.Str s)
  | [] -> mk (Ast.Str "")
  | parts -> mk (Ast.Interp parts)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

and parse_params st : Ast.param list =
  ignore (eat_punct st '(');
  if skip_punct_if st ')' then []
  else
    let rec loop acc =
      let hint =
        if check st Token.T_STRING then Some (advance st).Token.lexeme
        else if check st Token.T_ARRAY then begin
          ignore (advance st);
          Some "array"
        end
        else None
      in
      let by_ref = skip_punct_if st '&' in
      let name = (eat st Token.T_VARIABLE).Token.lexeme in
      let default =
        if skip_punct_if st '=' then Some (parse_expr st) else None
      in
      let p = { Ast.p_name = name; p_default = default; p_by_ref = by_ref; p_hint = hint } in
      if skip_punct_if st ',' then loop (p :: acc)
      else begin
        ignore (eat_punct st ')');
        List.rev (p :: acc)
      end
    in
    loop []

and parse_braced_block st : Ast.stmt list =
  ignore (eat_punct st '{');
  let rec loop acc =
    if check_punct st '}' then begin
      ignore (advance st);
      List.rev acc
    end
    else if check st Token.T_EOF then fail st "unexpected EOF in block"
    else loop (parse_stmt st :: acc)
  in
  loop []

(* a single statement or a braced group, as the body of if/while/... *)
and parse_body st : Ast.stmt list =
  if check_punct st '{' then parse_braced_block st else [ parse_stmt st ]

and parse_stmt st : Ast.stmt =
  deepen st;
  let s = parse_stmt_body st in
  st.depth <- st.depth - 1;
  s

and parse_stmt_body st : Ast.stmt =
  let t = peek st in
  let pos = pos_of st t in
  let mk desc = Ast.mk_s ~pos desc in
  match t.Token.kind with
  | Token.Punct when t.Token.lexeme = ";" ->
      ignore (advance st);
      mk Ast.Nop
  | Token.Punct when t.Token.lexeme = "{" -> mk (Ast.Block (parse_braced_block st))
  | Token.T_ECHO | Token.T_OPEN_TAG_WITH_ECHO ->
      (* <?= is an open-tag + echo in one token *)
      ignore (advance st);
      let rec loop acc =
        let e = parse_expr st in
        if skip_punct_if st ',' then loop (e :: acc)
        else begin
          end_stmt st;
          List.rev (e :: acc)
        end
      in
      mk (Ast.Echo (loop []))
  | Token.T_IF -> parse_if st pos
  | Token.T_WHILE ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let cond = parse_expr st in
      ignore (eat_punct st ')');
      mk (Ast.While (cond, parse_body st))
  | Token.T_DO ->
      ignore (advance st);
      let body = parse_body st in
      ignore (eat st Token.T_WHILE);
      ignore (eat_punct st '(');
      let cond = parse_expr st in
      ignore (eat_punct st ')');
      end_stmt st;
      mk (Ast.DoWhile (body, cond))
  | Token.T_FOR ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let init = parse_expr_list_until st ';' in
      let cond = parse_expr_list_until st ';' in
      let update = parse_expr_list_until st ')' in
      mk (Ast.For (init, cond, update, parse_body st))
  | Token.T_FOREACH ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let subject = parse_expr st in
      ignore (eat st Token.T_AS);
      ignore (skip_punct_if st '&');
      let first = parse_expr st in
      let binding =
        if skip_if st Token.T_DOUBLE_ARROW then begin
          ignore (skip_punct_if st '&');
          Ast.ForeachKeyValue (first, parse_expr st)
        end
        else Ast.ForeachValue first
      in
      ignore (eat_punct st ')');
      mk (Ast.Foreach (subject, binding, parse_body st))
  | Token.T_SWITCH ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let subject = parse_expr st in
      ignore (eat_punct st ')');
      ignore (eat_punct st '{');
      let rec cases acc =
        if skip_punct_if st '}' then List.rev acc
        else if skip_if st Token.T_CASE then begin
          let guard = parse_expr st in
          if not (skip_punct_if st ':') then ignore (eat_punct st ';');
          let body = parse_case_body st in
          cases ({ Ast.case_guard = Some guard; case_body = body } :: acc)
        end
        else if skip_if st Token.T_DEFAULT then begin
          if not (skip_punct_if st ':') then ignore (eat_punct st ';');
          let body = parse_case_body st in
          cases ({ Ast.case_guard = None; case_body = body } :: acc)
        end
        else fail st "expected case/default/}"
      in
      mk (Ast.Switch (subject, cases []))
  | Token.T_BREAK ->
      ignore (advance st);
      (* optional break level, ignored *)
      if check st Token.T_LNUMBER then ignore (advance st);
      end_stmt st;
      mk Ast.Break
  | Token.T_CONTINUE ->
      ignore (advance st);
      if check st Token.T_LNUMBER then ignore (advance st);
      end_stmt st;
      mk Ast.Continue
  | Token.T_RETURN ->
      ignore (advance st);
      if check_punct st ';' || check st Token.T_CLOSE_TAG then begin
        end_stmt st;
        mk (Ast.Return None)
      end
      else begin
        let e = parse_expr st in
        end_stmt st;
        mk (Ast.Return (Some e))
      end
  | Token.T_GLOBAL ->
      ignore (advance st);
      let rec loop acc =
        let v = (eat st Token.T_VARIABLE).Token.lexeme in
        if skip_punct_if st ',' then loop (v :: acc)
        else begin
          end_stmt st;
          List.rev (v :: acc)
        end
      in
      mk (Ast.Global (loop []))
  | Token.T_STATIC when (match peek2 st with
                         | Some t2 -> t2.Token.kind = Token.T_VARIABLE
                         | None -> false) ->
      ignore (advance st);
      let rec loop acc =
        let v = (eat st Token.T_VARIABLE).Token.lexeme in
        let init = if skip_punct_if st '=' then Some (parse_expr st) else None in
        if skip_punct_if st ',' then loop ((v, init) :: acc)
        else begin
          end_stmt st;
          List.rev ((v, init) :: acc)
        end
      in
      mk (Ast.StaticVar (loop []))
  | Token.T_UNSET ->
      ignore (advance st);
      ignore (eat_punct st '(');
      let rec loop acc =
        let e = parse_expr st in
        if skip_punct_if st ',' then loop (e :: acc)
        else begin
          ignore (eat_punct st ')');
          end_stmt st;
          List.rev (e :: acc)
        end
      in
      mk (Ast.Unset (loop []))
  | Token.T_FUNCTION when (match peek2 st with
                           | Some t2 -> t2.Token.kind = Token.T_STRING
                           | None -> false) ->
      ignore (advance st);
      let name = (eat st Token.T_STRING).Token.lexeme in
      let params = parse_params st in
      let body = parse_braced_block st in
      mk (Ast.FuncDef { Ast.f_name = name; f_params = params; f_body = body; f_pos = pos })
  | Token.T_CLASS -> parse_class st pos false
  | Token.T_INTERFACE -> parse_class st pos true
  | Token.T_TRY ->
      ignore (advance st);
      let body = parse_braced_block st in
      let rec catches acc =
        if skip_if st Token.T_CATCH then begin
          ignore (eat_punct st '(');
          let cls = (eat st Token.T_STRING).Token.lexeme in
          let var = (eat st Token.T_VARIABLE).Token.lexeme in
          ignore (eat_punct st ')');
          let cbody = parse_braced_block st in
          catches ({ Ast.catch_class = cls; catch_var = var; catch_body = cbody } :: acc)
        end
        else List.rev acc
      in
      mk (Ast.TryCatch (body, catches []))
  | Token.T_THROW ->
      ignore (advance st);
      let e = parse_expr st in
      end_stmt st;
      mk (Ast.Throw e)
  | Token.T_CLOSE_TAG ->
      ignore (advance st);
      let buf = Buffer.create 64 in
      let rec gather () =
        if check st Token.T_INLINE_HTML then begin
          Buffer.add_string buf (advance st).Token.lexeme;
          gather ()
        end
      in
      gather ();
      (if check st Token.T_OPEN_TAG then ignore (advance st));
      mk (Ast.InlineHtml (Buffer.contents buf))
  | Token.T_INLINE_HTML ->
      ignore (advance st);
      mk (Ast.InlineHtml t.Token.lexeme)
  | Token.T_OPEN_TAG ->
      ignore (advance st);
      parse_stmt st
  | _ ->
      let e = parse_expr st in
      end_stmt st;
      mk (Ast.Expr e)

(* Statement terminator: ';', or a close tag (which PHP accepts in place of
   the final semicolon). The close tag itself is left for parse_stmt. *)
and end_stmt st =
  if check_punct st ';' then ignore (advance st)
  else if check st Token.T_CLOSE_TAG || check st Token.T_EOF then ()
  else fail st "expected ';'"

and parse_expr_list_until st closer =
  if check_punct st closer then begin
    ignore (advance st);
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      if skip_punct_if st ',' then loop (e :: acc)
      else begin
        ignore (eat_punct st closer);
        List.rev (e :: acc)
      end
    in
    loop []

and parse_case_body st =
  let rec loop acc =
    if check st Token.T_CASE || check st Token.T_DEFAULT || check_punct st '}'
    then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_if st pos =
  ignore (eat st Token.T_IF);
  ignore (eat_punct st '(');
  let cond = parse_expr st in
  ignore (eat_punct st ')');
  let body = parse_body st in
  let rec elifs acc =
    if check st Token.T_ELSEIF then begin
      ignore (advance st);
      ignore (eat_punct st '(');
      let c = parse_expr st in
      ignore (eat_punct st ')');
      let b = parse_body st in
      elifs ((c, b) :: acc)
    end
    else if check st Token.T_ELSE
            && (match peek2 st with
               | Some t2 -> t2.Token.kind = Token.T_IF
               | None -> false)
    then begin
      ignore (advance st);
      ignore (eat st Token.T_IF);
      ignore (eat_punct st '(');
      let c = parse_expr st in
      ignore (eat_punct st ')');
      let b = parse_body st in
      elifs ((c, b) :: acc)
    end
    else List.rev acc
  in
  let branches = (cond, body) :: elifs [] in
  let els = if skip_if st Token.T_ELSE then Some (parse_body st) else None in
  Ast.mk_s ~pos (Ast.If (branches, els))

and parse_class st pos is_interface =
  ignore (advance st);
  let name = (eat st Token.T_STRING).Token.lexeme in
  let parent =
    if skip_if st Token.T_EXTENDS then Some (eat st Token.T_STRING).Token.lexeme
    else None
  in
  let implements =
    if skip_if st Token.T_IMPLEMENTS then begin
      let rec loop acc =
        let n = (eat st Token.T_STRING).Token.lexeme in
        if skip_punct_if st ',' then loop (n :: acc) else List.rev (n :: acc)
      in
      loop []
    end
    else []
  in
  ignore (eat_punct st '{');
  let consts = ref [] and props = ref [] and methods = ref [] in
  let rec members () =
    if skip_punct_if st '}' then ()
    else begin
      (* gather modifiers *)
      let vis = ref Ast.Public and is_static = ref false in
      let rec mods () =
        match (peek st).Token.kind with
        | Token.T_PUBLIC | Token.T_VAR ->
            ignore (advance st);
            vis := Ast.Public;
            mods ()
        | Token.T_PRIVATE ->
            ignore (advance st);
            vis := Ast.Private;
            mods ()
        | Token.T_PROTECTED ->
            ignore (advance st);
            vis := Ast.Protected;
            mods ()
        | Token.T_STATIC ->
            ignore (advance st);
            is_static := true;
            mods ()
        | _ -> ()
      in
      mods ();
      (match (peek st).Token.kind with
      | Token.T_CONST ->
          ignore (advance st);
          let rec cl () =
            let n = (eat st Token.T_STRING).Token.lexeme in
            ignore (eat_punct st '=');
            let v = parse_expr st in
            consts := (n, v) :: !consts;
            if skip_punct_if st ',' then cl () else ignore (eat_punct st ';')
          in
          cl ()
      | Token.T_VARIABLE ->
          let rec pl () =
            let n = (eat st Token.T_VARIABLE).Token.lexeme in
            let d = if skip_punct_if st '=' then Some (parse_expr st) else None in
            props :=
              { Ast.pr_vis = !vis; pr_static = !is_static; pr_name = n; pr_default = d }
              :: !props;
            if skip_punct_if st ',' then pl () else ignore (eat_punct st ';')
          in
          pl ()
      | Token.T_FUNCTION ->
          ignore (advance st);
          let fpos = here st in
          let fname = (eat st Token.T_STRING).Token.lexeme in
          let params = parse_params st in
          let body =
            if is_interface || check_punct st ';' then begin
              ignore (eat_punct st ';');
              []
            end
            else parse_braced_block st
          in
          methods :=
            { Ast.m_vis = !vis; m_static = !is_static;
              m_func = { Ast.f_name = fname; f_params = params; f_body = body; f_pos = fpos } }
            :: !methods
      | _ -> fail st "unexpected class member");
      members ()
    end
  in
  members ();
  Ast.mk_s ~pos
    (Ast.ClassDef
       { Ast.c_name = name; c_parent = parent; c_implements = implements;
         c_consts = List.rev !consts; c_props = List.rev !props;
         c_methods = List.rev !methods; c_pos = pos })

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

and parse_tokens ~file tokens : Ast.program =
  let st = { tokens = Array.of_list tokens; cur = 0; depth = 0; file } in
  let rec loop acc =
    if check st Token.T_EOF then List.rev acc
    else if check st Token.T_OPEN_TAG then begin
      ignore (advance st);
      loop acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(** Parse a full PHP source file. *)
and parse_source ~file src : Ast.program =
  let tokens = Obs.span "phplang.lex" (fun () -> Lexer.tokenize_significant src) in
  Obs.span "phplang.parse" (fun () -> parse_tokens ~file tokens)

(** Parse a single expression given as PHP text (no [<?php] tag). *)
and expr_of_string ?(file = "<expr>") src : Ast.expr =
  let tokens = Lexer.significant (Lexer.tokenize ("<?php " ^ src ^ ";")) in
  let st = { tokens = Array.of_list tokens; cur = 0; depth = 0; file } in
  ignore (eat st Token.T_OPEN_TAG);
  let e = parse_expr st in
  e

(* ------------------------------------------------------------------ *)
(* Region re-parse support                                            *)
(* ------------------------------------------------------------------ *)

(* A top-level statement's extent in the significant-token array:
   [sp_start, sp_stop).  Skipped T_OPEN_TAG tokens belong to no span (they
   are gaps between spans). *)
type top_span = { sp_start : int; sp_stop : int }

(* Same loop as [parse_tokens], recording each top-level statement's token
   extent.  The program is statement-for-statement identical to
   [parse_tokens] on the same tokens. *)
let parse_program_spans ~file (tokens : Token.t array) :
    Ast.program * top_span array =
  let st = { tokens; cur = 0; depth = 0; file } in
  let spans = ref [] in
  let rec loop acc =
    if check st Token.T_EOF then
      (List.rev acc, Array.of_list (List.rev !spans))
    else if check st Token.T_OPEN_TAG then begin
      ignore (advance st);
      loop acc
    end
    else begin
      let start = st.cur in
      let s = parse_stmt st in
      spans := { sp_start = start; sp_stop = st.cur } :: !spans;
      loop (s :: acc)
    end
  in
  loop []

(* Bounded re-parse of a damaged region: parse top-level statements from
   [start] against the {e full} token array until the cursor lands exactly
   on [stop].  Parsing against the full array (rather than a slice with a
   synthetic T_EOF) matters because the grammar accepts T_EOF in place of
   ';' at statement end — a slice would accept input the whole-file parse
   rejects.  [None] = the region's last statement overran the boundary
   (splice ambiguity); the caller falls back to a whole-file parse.
   Parse_error/Depth_exceeded propagate, as they would from the full
   parse. *)
let parse_region ~file (tokens : Token.t array) ~start ~stop :
    (Ast.stmt list * top_span list) option =
  let st = { tokens; cur = start; depth = 0; file } in
  let rec loop acc spans =
    if st.cur >= stop then
      if st.cur = stop then Some (List.rev acc, List.rev spans) else None
    else if check st Token.T_EOF then None
    else if check st Token.T_OPEN_TAG then begin
      ignore (advance st);
      loop acc spans
    end
    else begin
      let s0 = st.cur in
      let s = parse_stmt st in
      loop (s :: acc) ({ sp_start = s0; sp_stop = st.cur } :: spans)
    end
  in
  loop [] []
