(** Multi-file plugin model.

    A WordPress-style plugin is a named collection of PHP files.  Analyzers
    work per file but need the whole project to resolve [include]/[require]
    statements (paper §III.B: "the PHP file can include other PHP files
    recursively, all of them must be analyzed in order to obtain the complete
    AST"). *)

type file = { path : string; source : string }

type t = { name : string; files : file list }

let make ~name files = { name; files }

let find t path = List.find_opt (fun f -> String.equal f.path path) t.files

let file_count t = List.length t.files

(** Literal include targets of a program: the string arguments of
    [include]/[require] expressions, in order.  Dynamic include arguments
    (anything but a string literal) are skipped, like the real tools do. *)
let include_targets (prog : Ast.program) : string list =
  let acc = ref [] in
  let rec visit_expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.IncludeE (_, { Ast.e = Ast.Str path; _ }) -> acc := path :: !acc
    | Ast.IncludeE (_, arg) -> visit_expr arg
    | Ast.Assign (l, r) | Ast.AssignRef (l, r) | Ast.OpAssign (_, l, r)
    | Ast.Bin (_, l, r) ->
        visit_expr l;
        visit_expr r
    | Ast.Un (_, x) | Ast.CastE (_, x) | Ast.EmptyE x | Ast.PrintE x
    | Ast.Prop (x, _) ->
        visit_expr x
    | Ast.Ternary (c, t, e2) ->
        visit_expr c;
        Option.iter visit_expr t;
        visit_expr e2
    | Ast.ArrayGet (a, i) ->
        visit_expr a;
        Option.iter visit_expr i
    | Ast.ArrayLit items ->
        List.iter
          (fun (k, v) ->
            Option.iter visit_expr k;
            visit_expr v)
          items
    | Ast.Call (_, args) | Ast.New (_, args) | Ast.StaticCall (_, _, args) ->
        List.iter visit_expr args
    | Ast.MethodCall (o, _, args) ->
        visit_expr o;
        List.iter visit_expr args
    | Ast.Isset es -> List.iter visit_expr es
    | Ast.Exit e -> Option.iter visit_expr e
    | Ast.Closure c -> List.iter visit_stmt c.Ast.cl_body
    | Ast.ListAssign (slots, rhs) ->
        List.iter (Option.iter visit_expr) slots;
        visit_expr rhs
    | Ast.Null | Ast.True | Ast.False | Ast.Int _ | Ast.Float _ | Ast.Str _
    | Ast.Var _ | Ast.StaticProp _ | Ast.ClassConst _ | Ast.Const _ ->
        ()
    | Ast.Interp parts ->
        List.iter (function Ast.IExpr e -> visit_expr e | Ast.ILit _ -> ()) parts
  and visit_stmt (s : Ast.stmt) =
    match s.Ast.s with
    | Ast.Expr e | Ast.Throw e -> visit_expr e
    | Ast.Echo es | Ast.Unset es -> List.iter visit_expr es
    | Ast.If (branches, els) ->
        List.iter
          (fun (c, b) ->
            visit_expr c;
            List.iter visit_stmt b)
          branches;
        Option.iter (List.iter visit_stmt) els
    | Ast.While (c, b) ->
        visit_expr c;
        List.iter visit_stmt b
    | Ast.DoWhile (b, c) ->
        List.iter visit_stmt b;
        visit_expr c
    | Ast.For (i, c, u, b) ->
        List.iter visit_expr i;
        List.iter visit_expr c;
        List.iter visit_expr u;
        List.iter visit_stmt b
    | Ast.Foreach (subject, binding, b) ->
        visit_expr subject;
        (match binding with
        | Ast.ForeachValue v -> visit_expr v
        | Ast.ForeachKeyValue (k, v) ->
            visit_expr k;
            visit_expr v);
        List.iter visit_stmt b
    | Ast.Switch (subject, cases) ->
        visit_expr subject;
        List.iter (fun c -> List.iter visit_stmt c.Ast.case_body) cases
    | Ast.Return e -> Option.iter visit_expr e
    | Ast.StaticVar vars -> List.iter (fun (_, d) -> Option.iter visit_expr d) vars
    | Ast.Block b -> List.iter visit_stmt b
    | Ast.FuncDef f -> List.iter visit_stmt f.Ast.f_body
    | Ast.ClassDef c ->
        List.iter (fun m -> List.iter visit_stmt m.Ast.m_func.Ast.f_body) c.Ast.c_methods
    | Ast.TryCatch (b, catches) ->
        List.iter visit_stmt b;
        List.iter (fun c -> List.iter visit_stmt c.Ast.catch_body) catches
    | Ast.Break | Ast.Continue | Ast.Global _ | Ast.InlineHtml _ | Ast.Nop -> ()
  in
  List.iter visit_stmt prog;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Memoized parsing                                                   *)
(* ------------------------------------------------------------------ *)

(** Why a parse failed — analyzers map [Syntax] to a parse-failure outcome
    and [Over_budget] to a resource-budget one in the §V.E robustness
    table. *)
type parse_error =
  | Syntax of string  (** the lexer or parser rejected the input *)
  | Over_budget of string  (** the nesting-depth fuel ran out *)

let parse_error_message = function Syntax m | Over_budget m -> m

(** Content-keyed parse memoization shared by every analyzer.  A file's AST
    depends only on its path (recorded in positions) and its source text, so
    entries are keyed by path + source digest and can be shared across
    plugins, analyzers and domains: each distinct file is parsed exactly
    once per process, the second and third tool reuse the first tool's
    work.

    Domain safety: the table is guarded by a mutex, and a miss publishes an
    [In_progress] marker before parsing outside the lock, so concurrent
    requests for the same file wait on the condition variable instead of
    parsing twice — the "exactly once" stats guarantee holds under
    parallelism. *)
module Parse_cache = struct
  type entry =
    | In_progress
    | Done of (Ast.program, parse_error) result

  type t = {
    table : (string * string, entry) Hashtbl.t;  (** (path, digest) *)
    lock : Mutex.t;
    cond : Condition.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    {
      table = Hashtbl.create 256;
      lock = Mutex.create ();
      cond = Condition.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  (** Process-wide default used by the analyzers. *)
  let shared = create ()

  (* Global kill switch, for A/B-testing the cache (test_sched) and for
     memory-constrained runs; flip only from a quiescent main domain. *)
  let enabled_flag = Atomic.make true
  let set_enabled b = Atomic.set enabled_flag b
  let enabled () = Atomic.get enabled_flag

  let hits t = Atomic.get t.hits
  let misses t = Atomic.get t.misses

  let clear t =
    Mutex.lock t.lock;
    Hashtbl.reset t.table;
    Mutex.unlock t.lock;
    Atomic.set t.hits 0;
    Atomic.set t.misses 0

  let memo t key parse =
    Mutex.lock t.lock;
    let rec await () =
      match Hashtbl.find_opt t.table key with
      | Some (Done v) ->
          Mutex.unlock t.lock;
          Atomic.incr t.hits;
          Obs.incr "phplang.parse_cache.hit";
          v
      | Some In_progress ->
          Condition.wait t.cond t.lock;
          await ()
      | None -> (
          Hashtbl.replace t.table key In_progress;
          Mutex.unlock t.lock;
          match parse () with
          | v ->
              Mutex.lock t.lock;
              Hashtbl.replace t.table key (Done v);
              Condition.broadcast t.cond;
              Mutex.unlock t.lock;
              Atomic.incr t.misses;
              Obs.incr "phplang.parse_cache.miss";
              v
          | exception e ->
              (* Exception safety: drop the [In_progress] marker and wake
                 the waiters, otherwise they block on the condition
                 variable forever.  The entry is simply retried by the
                 next caller — "parsed exactly once" only holds for
                 parses that return. *)
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock t.lock;
              Hashtbl.remove t.table key;
              Condition.broadcast t.cond;
              Mutex.unlock t.lock;
              Obs.incr "phplang.parse_cache.aborted";
              Printexc.raise_with_backtrace e bt)
    in
    await ()
end

(** Parse [f], memoized in [cache] (default: {!Parse_cache.shared}) unless
    the cache is globally disabled.  [Error _] is a parse failure — cached
    too, so a broken file is diagnosed once, not once per tool.  Lexer
    errors, parse errors and nesting-budget exhaustion all land here as
    structured {!parse_error}s; only genuinely unexpected exceptions (a
    front-end bug) escape, and those the analyzers' crash barriers catch. *)
let parse_file ?(cache = Parse_cache.shared) (f : file) :
    (Ast.program, parse_error) result =
  let parse () =
    match Parser.parse_source ~file:f.path f.source with
    | prog -> Ok prog
    | exception Parser.Parse_error (msg, _) -> Error (Syntax msg)
    | exception Lexer.Error (msg, line) ->
        Error (Syntax (Printf.sprintf "lexical error on line %d: %s" line msg))
    | exception Parser.Depth_exceeded (msg, _) -> Error (Over_budget msg)
  in
  (* Disk tier ({!Store}): the parse artifact depends on the path (recorded
     in positions), the source bytes and the parser nesting fuel
     ([--budget-parse-depth]); nothing else reaches the front end.  The
     disk lookup sits inside the in-memory memo's miss path, so the
     exactly-once-per-process guarantee is untouched — a disk hit simply
     replaces the parse work by an unmarshal. *)
  let parse_via_store () =
    if not (Store.enabled ()) then parse ()
    else begin
      let key =
        Digest.combine
          [ f.path; Digest.hex f.source; string_of_int (Parser.nesting_limit ()) ]
      in
      match Store.get ~ns:"parse" ~key with
      | Some v -> v
      | None ->
          let v = parse () in
          Store.put ~ns:"parse" ~key v;
          v
    end
  in
  if not (Parse_cache.enabled ()) then parse_via_store ()
  else Parse_cache.memo cache (f.path, Digest.string f.source) parse_via_store

(** Result of {!include_closure} — see the .mli for field semantics. *)
type closure = {
  cl_paths : string list;
  cl_max_depth : int;
  cl_unresolved : int;
  cl_truncated : bool;
}

(** Transitive include closure of [path] within project [t], parsed on
    demand with [parse].  Cycles are cut by the visited set; missing files
    (WordPress core, typically) are tolerated, counted as unresolved and
    still part of the closure.  [max_depth]/[max_files] are safety caps:
    when either is hit the walk stops expanding and the closure is marked
    truncated instead of recursing without bound. *)
let include_closure ?(max_depth = max_int) ?(max_files = max_int) ~parse t
    path =
  Obs.span "phplang.includes" @@ fun () ->
  let visited = Hashtbl.create 16 in
  let deepest = ref 0 in
  let unresolved = ref 0 in
  let truncated = ref false in
  let rec go depth p =
    if Hashtbl.mem visited p then ()
    else if depth > max_depth || Hashtbl.length visited >= max_files then
      truncated := true
    else begin
      Hashtbl.add visited p ();
      if depth > !deepest then deepest := depth;
      match find t p with
      | None ->
          incr unresolved;
          Obs.incr "phplang.includes.unresolved"
      | Some f -> (
          match parse f with
          | Some prog -> List.iter (go (depth + 1)) (include_targets prog)
          | None -> ())
    end
  in
  go 0 path;
  {
    cl_paths =
      Hashtbl.fold (fun k () acc -> k :: acc) visited [] |> List.sort compare;
    cl_max_depth = !deepest;
    cl_unresolved = !unresolved;
    cl_truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Loading a project from the filesystem                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_php_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then collect_php_files path
         else if Filename.check_suffix entry ".php" then [ path ]
         else [])

(** Load a target from disk: a directory becomes a project of all its
    [.php] files (deterministic order: lexicographic per directory level,
    paths relative to the target), a single file a one-file project.  This
    is the one target reader shared by [phpsafe_cli] and the
    [phpsafe_serve] client, so both build byte-identical projects — the
    precondition for their reports being byte-identical. *)
let load target =
  if Sys.is_directory target then
    let files = collect_php_files target in
    let strip path =
      let prefix = target ^ Filename.dir_sep in
      if
        String.length path > String.length prefix
        && String.sub path 0 (String.length prefix) = prefix
      then String.sub path (String.length prefix)
             (String.length path - String.length prefix)
      else path
    in
    make ~name:(Filename.basename target)
      (List.map (fun p -> { path = strip p; source = read_file p }) files)
  else
    make ~name:(Filename.basename target)
      [ { path = Filename.basename target; source = read_file target } ]
