(** Multi-file plugin model.

    A WordPress-style plugin is a named collection of PHP files.  Analyzers
    work per file but need the whole project to resolve [include]/[require]
    statements (paper §III.B: "the PHP file can include other PHP files
    recursively, all of them must be analyzed in order to obtain the complete
    AST"). *)

type file = { path : string; source : string }

type t = { name : string; files : file list }

let make ~name files = { name; files }

let find t path = List.find_opt (fun f -> String.equal f.path path) t.files

let file_count t = List.length t.files

(** Literal include targets of a program: the string arguments of
    [include]/[require] expressions, in order.  Dynamic include arguments
    (anything but a string literal) are skipped, like the real tools do. *)
let include_targets (prog : Ast.program) : string list =
  let acc = ref [] in
  let rec visit_expr (e : Ast.expr) =
    match e.Ast.e with
    | Ast.IncludeE (_, { Ast.e = Ast.Str path; _ }) -> acc := path :: !acc
    | Ast.IncludeE (_, arg) -> visit_expr arg
    | Ast.Assign (l, r) | Ast.AssignRef (l, r) | Ast.OpAssign (_, l, r)
    | Ast.Bin (_, l, r) ->
        visit_expr l;
        visit_expr r
    | Ast.Un (_, x) | Ast.CastE (_, x) | Ast.EmptyE x | Ast.PrintE x
    | Ast.Prop (x, _) ->
        visit_expr x
    | Ast.Ternary (c, t, e2) ->
        visit_expr c;
        Option.iter visit_expr t;
        visit_expr e2
    | Ast.ArrayGet (a, i) ->
        visit_expr a;
        Option.iter visit_expr i
    | Ast.ArrayLit items ->
        List.iter
          (fun (k, v) ->
            Option.iter visit_expr k;
            visit_expr v)
          items
    | Ast.Call (_, args) | Ast.New (_, args) | Ast.StaticCall (_, _, args) ->
        List.iter visit_expr args
    | Ast.MethodCall (o, _, args) ->
        visit_expr o;
        List.iter visit_expr args
    | Ast.Isset es -> List.iter visit_expr es
    | Ast.Exit e -> Option.iter visit_expr e
    | Ast.Closure c -> List.iter visit_stmt c.Ast.cl_body
    | Ast.ListAssign (slots, rhs) ->
        List.iter (Option.iter visit_expr) slots;
        visit_expr rhs
    | Ast.Null | Ast.True | Ast.False | Ast.Int _ | Ast.Float _ | Ast.Str _
    | Ast.Var _ | Ast.StaticProp _ | Ast.ClassConst _ | Ast.Const _ ->
        ()
    | Ast.Interp parts ->
        List.iter (function Ast.IExpr e -> visit_expr e | Ast.ILit _ -> ()) parts
  and visit_stmt (s : Ast.stmt) =
    match s.Ast.s with
    | Ast.Expr e | Ast.Throw e -> visit_expr e
    | Ast.Echo es | Ast.Unset es -> List.iter visit_expr es
    | Ast.If (branches, els) ->
        List.iter
          (fun (c, b) ->
            visit_expr c;
            List.iter visit_stmt b)
          branches;
        Option.iter (List.iter visit_stmt) els
    | Ast.While (c, b) ->
        visit_expr c;
        List.iter visit_stmt b
    | Ast.DoWhile (b, c) ->
        List.iter visit_stmt b;
        visit_expr c
    | Ast.For (i, c, u, b) ->
        List.iter visit_expr i;
        List.iter visit_expr c;
        List.iter visit_expr u;
        List.iter visit_stmt b
    | Ast.Foreach (subject, binding, b) ->
        visit_expr subject;
        (match binding with
        | Ast.ForeachValue v -> visit_expr v
        | Ast.ForeachKeyValue (k, v) ->
            visit_expr k;
            visit_expr v);
        List.iter visit_stmt b
    | Ast.Switch (subject, cases) ->
        visit_expr subject;
        List.iter (fun c -> List.iter visit_stmt c.Ast.case_body) cases
    | Ast.Return e -> Option.iter visit_expr e
    | Ast.StaticVar vars -> List.iter (fun (_, d) -> Option.iter visit_expr d) vars
    | Ast.Block b -> List.iter visit_stmt b
    | Ast.FuncDef f -> List.iter visit_stmt f.Ast.f_body
    | Ast.ClassDef c ->
        List.iter (fun m -> List.iter visit_stmt m.Ast.m_func.Ast.f_body) c.Ast.c_methods
    | Ast.TryCatch (b, catches) ->
        List.iter visit_stmt b;
        List.iter (fun c -> List.iter visit_stmt c.Ast.catch_body) catches
    | Ast.Break | Ast.Continue | Ast.Global _ | Ast.InlineHtml _ | Ast.Nop -> ()
  in
  List.iter visit_stmt prog;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Memoized parsing                                                   *)
(* ------------------------------------------------------------------ *)

(** Why a parse failed — analyzers map [Syntax] to a parse-failure outcome
    and [Over_budget] to a resource-budget one in the §V.E robustness
    table. *)
type parse_error =
  | Syntax of string  (** the lexer or parser rejected the input *)
  | Over_budget of string  (** the nesting-depth fuel ran out *)

let parse_error_message = function Syntax m | Over_budget m -> m

(** Content-keyed parse memoization shared by every analyzer.  A file's AST
    depends only on its path (recorded in positions) and its source text, so
    entries are keyed by path + source digest and can be shared across
    plugins, analyzers and domains: each distinct file is parsed exactly
    once per process, the second and third tool reuse the first tool's
    work.

    Domain safety: the table is guarded by a mutex, and a miss publishes an
    [In_progress] marker before parsing outside the lock, so concurrent
    requests for the same file wait on the condition variable instead of
    parsing twice — the "exactly once" stats guarantee holds under
    parallelism. *)
module Parse_cache = struct
  type entry =
    | In_progress
    | Done of (Ast.program, parse_error) result

  type t = {
    table : (string * string, entry) Hashtbl.t;  (** (path, digest) *)
    lock : Mutex.t;
    cond : Condition.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    {
      table = Hashtbl.create 256;
      lock = Mutex.create ();
      cond = Condition.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  (** Process-wide default used by the analyzers. *)
  let shared = create ()

  (* Global kill switch, for A/B-testing the cache (test_sched) and for
     memory-constrained runs; flip only from a quiescent main domain. *)
  let enabled_flag = Atomic.make true
  let set_enabled b = Atomic.set enabled_flag b
  let enabled () = Atomic.get enabled_flag

  let hits t = Atomic.get t.hits
  let misses t = Atomic.get t.misses

  let clear t =
    Mutex.lock t.lock;
    Hashtbl.reset t.table;
    Mutex.unlock t.lock;
    Atomic.set t.hits 0;
    Atomic.set t.misses 0

  (* Publish a result computed outside the memo (the incremental pipeline)
     so later [memo] calls for the same key hit.  An [In_progress] marker is
     left alone: the live parse will publish the same value. *)
  let seed t key v =
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.table key with
    | Some In_progress -> ()
    | _ -> Hashtbl.replace t.table key (Done v));
    Mutex.unlock t.lock

  let memo t key parse =
    Mutex.lock t.lock;
    let rec await () =
      match Hashtbl.find_opt t.table key with
      | Some (Done v) ->
          Mutex.unlock t.lock;
          Atomic.incr t.hits;
          Obs.incr "phplang.parse_cache.hit";
          v
      | Some In_progress ->
          Condition.wait t.cond t.lock;
          await ()
      | None -> (
          Hashtbl.replace t.table key In_progress;
          Mutex.unlock t.lock;
          match parse () with
          | v ->
              Mutex.lock t.lock;
              Hashtbl.replace t.table key (Done v);
              Condition.broadcast t.cond;
              Mutex.unlock t.lock;
              Atomic.incr t.misses;
              Obs.incr "phplang.parse_cache.miss";
              v
          | exception e ->
              (* Exception safety: drop the [In_progress] marker and wake
                 the waiters, otherwise they block on the condition
                 variable forever.  The entry is simply retried by the
                 next caller — "parsed exactly once" only holds for
                 parses that return. *)
              let bt = Printexc.get_raw_backtrace () in
              Mutex.lock t.lock;
              Hashtbl.remove t.table key;
              Condition.broadcast t.cond;
              Mutex.unlock t.lock;
              Obs.incr "phplang.parse_cache.aborted";
              Printexc.raise_with_backtrace e bt)
    in
    await ()
end

(** Parse [f], memoized in [cache] (default: {!Parse_cache.shared}) unless
    the cache is globally disabled.  [Error _] is a parse failure — cached
    too, so a broken file is diagnosed once, not once per tool.  Lexer
    errors, parse errors and nesting-budget exhaustion all land here as
    structured {!parse_error}s; only genuinely unexpected exceptions (a
    front-end bug) escape, and those the analyzers' crash barriers catch. *)
let parse_file ?(cache = Parse_cache.shared) (f : file) :
    (Ast.program, parse_error) result =
  let parse () =
    match Parser.parse_source ~file:f.path f.source with
    | prog -> Ok prog
    | exception Parser.Parse_error (msg, _) -> Error (Syntax msg)
    | exception Lexer.Error (msg, line) ->
        Error (Syntax (Printf.sprintf "lexical error on line %d: %s" line msg))
    | exception Parser.Depth_exceeded (msg, _) -> Error (Over_budget msg)
  in
  (* Disk tier ({!Store}): the parse artifact depends on the path (recorded
     in positions), the source bytes and the parser nesting fuel
     ([--budget-parse-depth]); nothing else reaches the front end.  The
     disk lookup sits inside the in-memory memo's miss path, so the
     exactly-once-per-process guarantee is untouched — a disk hit simply
     replaces the parse work by an unmarshal. *)
  let parse_via_store () =
    if not (Store.enabled ()) then parse ()
    else begin
      let key =
        Digest.combine
          [ f.path; Digest.hex f.source; string_of_int (Parser.nesting_limit ()) ]
      in
      match Store.get ~ns:"parse" ~key with
      | Some v -> v
      | None ->
          let v = parse () in
          Store.put ~ns:"parse" ~key v;
          v
    end
  in
  if not (Parse_cache.enabled ()) then parse_via_store ()
  else Parse_cache.memo cache (f.path, Digest.string f.source) parse_via_store

(** Result of {!include_closure} — see the .mli for field semantics. *)
type closure = {
  cl_paths : string list;
  cl_max_depth : int;
  cl_unresolved : int;
  cl_truncated : bool;
}

(** Transitive include closure of [path] within project [t], parsed on
    demand with [parse].  Cycles are cut by the visited set; missing files
    (WordPress core, typically) are tolerated, counted as unresolved and
    still part of the closure.  [max_depth]/[max_files] are safety caps:
    when either is hit the walk stops expanding and the closure is marked
    truncated instead of recursing without bound. *)
let include_closure ?(max_depth = max_int) ?(max_files = max_int) ~parse t
    path =
  Obs.span "phplang.includes" @@ fun () ->
  let visited = Hashtbl.create 16 in
  let deepest = ref 0 in
  let unresolved = ref 0 in
  let truncated = ref false in
  let rec go depth p =
    if Hashtbl.mem visited p then ()
    else if depth > max_depth || Hashtbl.length visited >= max_files then
      truncated := true
    else begin
      Hashtbl.add visited p ();
      if depth > !deepest then deepest := depth;
      match find t p with
      | None ->
          incr unresolved;
          Obs.incr "phplang.includes.unresolved"
      | Some f -> (
          match parse f with
          | Some prog -> List.iter (go (depth + 1)) (include_targets prog)
          | None -> ())
    end
  in
  go 0 path;
  {
    cl_paths =
      Hashtbl.fold (fun k () acc -> k :: acc) visited [] |> List.sort compare;
    cl_max_depth = !deepest;
    cl_unresolved = !unresolved;
    cl_truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Sub-file incremental re-parse                                      *)
(* ------------------------------------------------------------------ *)

(** Per-file incremental parsing sessions: an edit re-lexes only the
    damaged region ({!Lexer.relex}), maps the damaged significant tokens to
    the enclosing top-level statement, re-parses just that region
    ({!Parser.parse_region}) and splices the fresh statements into the
    cached AST with the reused suffix's positions rebased
    ({!Ast.shift_lines}).  Any ambiguity — damage touching several
    top-level statements, region parse overrunning its boundary, a
    previously failed parse — falls back to a whole-file parse, counted in
    [parser.region.fallback].

    Every update publishes its result into {!Parse_cache.shared} and the
    disk {!Store} under exactly the keys {!parse_file} uses, so the
    analyzers downstream hit transparently. *)
module Increment = struct
  type entry = {
    mutable ie_source : string;
    mutable ie_lexed : Lexer.lexed option;  (* None after a lex error *)
    mutable ie_sig : Token.t array;  (* significant tokens, incl T_EOF *)
    mutable ie_sig_raw : int array;  (* raw token index per sig token *)
    mutable ie_result : (Ast.program, parse_error) result;
    mutable ie_spans : Parser.top_span array;  (* valid when Ok *)
  }

  type session = { ses_files : (string, entry) Hashtbl.t }

  let create () = { ses_files = Hashtbl.create 16 }

  (* Verification mode (tests, E17): after every sub-file splice, re-parse
     the whole file and compare structural digests.  A mismatch uses the
     full parse (safety) and bumps [parser.region.verify_mismatch]. *)
  let verify_flag = Atomic.make false
  let set_verify b = Atomic.set verify_flag b

  let is_significant (t : Token.t) =
    match t.Token.kind with
    | Token.T_WHITESPACE | Token.T_COMMENT | Token.T_DOC_COMMENT -> false
    | _ -> true

  let sig_of (lx : Lexer.lexed) : Token.t array * int array =
    let n = Array.length lx.Lexer.lx_tokens in
    let toks = ref [] and raws = ref [] in
    for i = n - 1 downto 0 do
      let t = lx.Lexer.lx_tokens.(i) in
      if is_significant t then begin
        toks := t :: !toks;
        raws := i :: !raws
      end
    done;
    (Array.of_list !toks, Array.of_list !raws)

  (* Number of sig tokens whose raw index is < [bound]; [raw] is strictly
     increasing. *)
  let count_sig_below (raw : int array) bound =
    let lo = ref 0 and hi = ref (Array.length raw) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if raw.(mid) < bound then lo := mid + 1 else hi := mid
    done;
    !lo

  let lex_error_result line msg : (Ast.program, parse_error) result =
    Error (Syntax (Printf.sprintf "lexical error on line %d: %s" line msg))

  let parse_sig ~path (sigt : Token.t array) :
      (Ast.program, parse_error) result * Parser.top_span array =
    match Parser.parse_program_spans ~file:path sigt with
    | prog, spans -> (Ok prog, spans)
    | exception Parser.Parse_error (msg, _) -> (Error (Syntax msg), [||])
    | exception Parser.Depth_exceeded (msg, _) ->
        (Error (Over_budget msg), [||])

  (* Whole-file lex + parse producing exactly [parse_file]'s result value
     (same error mapping), plus the incremental bookkeeping. *)
  let full ~path ~source : entry =
    match Lexer.lex_all source with
    | exception Lexer.Error (msg, line) ->
        {
          ie_source = source;
          ie_lexed = None;
          ie_sig = [||];
          ie_sig_raw = [||];
          ie_result = lex_error_result line msg;
          ie_spans = [||];
        }
    | lexed ->
        let sigt, sigraw = sig_of lexed in
        let result, spans = parse_sig ~path sigt in
        {
          ie_source = source;
          ie_lexed = Some lexed;
          ie_sig = sigt;
          ie_sig_raw = sigraw;
          ie_result = result;
          ie_spans = spans;
        }

  let token_eq (a : Token.t) (b : Token.t) =
    a.Token.kind = b.Token.kind && String.equal a.Token.lexeme b.Token.lexeme

  (* Attempt the sub-file re-parse of [nsig] against the previous entry.
     Returns the spliced (program, spans), or None when any splice
     ambiguity demands the whole-file fallback. *)
  let try_region (e : entry) ~path (oldprog : Ast.program)
      (info : Lexer.relex_info) (nsig : Token.t array) :
      (Ast.program * Parser.top_span array) option =
    let osig = e.ie_sig and osigraw = e.ie_sig_raw and ospans = e.ie_spans in
    let m_old = Array.length osig and m_new = Array.length nsig in
    let shift = m_new - m_old in
    let ld = info.Lexer.rl_line_delta in
    (* maximal verbatim sig prefix (kind, lexeme and line), seeded from the
       lexer's raw-token reuse: sig tokens below rl_prefix are identical by
       construction, the scan only walks the re-lexed middle *)
    let p = ref (count_sig_below osigraw info.Lexer.rl_prefix) in
    while
      !p < m_old && !p < m_new
      && token_eq osig.(!p) nsig.(!p)
      && osig.(!p).Token.line = nsig.(!p).Token.line
    do
      Stdlib.incr p
    done;
    let prefix = !p in
    (* maximal reused sig suffix: old index j reappears at j + shift with
       lines uniformly shifted by ld *)
    let s = ref (count_sig_below osigraw info.Lexer.rl_old_suffix) in
    while
      !s > 0
      &&
      let j = !s - 1 in
      let nj = j + shift in
      nj >= 0 && nj < m_new
      && token_eq osig.(j) nsig.(nj)
      && nsig.(nj).Token.line = osig.(j).Token.line + ld
    do
      Stdlib.decr s
    done;
    let su = !s in
    if prefix >= m_old && m_old = m_new && prefix >= m_new then
      (* token streams fully identical (lines included): AST unchanged *)
      Some (oldprog, ospans)
    else begin
      (* damaged old window [pfx, sfx); clamp so the matched regions map to
         disjoint ranges of the new stream *)
      let sfx = max su prefix in
      let pfx = min prefix (sfx + shift) in
      if pfx < 0 || sfx > m_old || sfx + shift > m_new then None
      else begin
        (* classify top-level statements against the window *)
        let n_spans = Array.length ospans in
        let dirty = ref [] in
        Array.iteri
          (fun k (sp : Parser.top_span) ->
            if sp.Parser.sp_stop <= pfx then ()
            else if sp.Parser.sp_start >= sfx then ()
            else dirty := k :: !dirty)
          ospans;
        match List.rev !dirty with
        | _ :: _ :: _ -> None (* damage straddles several definitions *)
        | dirty_list -> (
            (* old region to re-parse: the dirty statement's full extent,
               widened to cover the whole damaged window *)
            let r_lo, r_hi =
              match dirty_list with
              | [ k ] ->
                  ( min pfx ospans.(k).Parser.sp_start,
                    max sfx ospans.(k).Parser.sp_stop )
              | _ -> (pfx, sfx)
            in
            let stop_new = r_hi + shift in
            if stop_new < r_lo || stop_new > m_new then None
            else
              (* splice point: statements strictly before / after region *)
              let n_before =
                let c = ref 0 in
                Array.iter
                  (fun (sp : Parser.top_span) ->
                    if sp.Parser.sp_stop <= r_lo then Stdlib.incr c)
                  ospans;
                !c
              in
              let n_after =
                let c = ref 0 in
                Array.iter
                  (fun (sp : Parser.top_span) ->
                    if sp.Parser.sp_start >= r_hi then Stdlib.incr c)
                  ospans;
                !c
              in
              let n_dirty = List.length dirty_list in
              if n_before + n_dirty + n_after <> n_spans then None
              else
                match Parser.parse_region ~file:path nsig ~start:r_lo ~stop:stop_new with
                | None -> None
                | Some (fresh_stmts, fresh_spans) ->
                    Obs.Mirror.incr "parser.region.reparse";
                    let rec split n acc = function
                      | rest when n = 0 -> (List.rev acc, rest)
                      | x :: rest -> split (n - 1) (x :: acc) rest
                      | [] -> (List.rev acc, [])
                    in
                    let before, rest = split n_before [] oldprog in
                    let _, after = split n_dirty [] rest in
                    let program =
                      before @ fresh_stmts @ Ast.shift_lines ld after
                    in
                    let spans =
                      Array.of_list
                        (List.concat
                           [
                             Array.to_list (Array.sub ospans 0 n_before);
                             fresh_spans;
                             Array.to_list
                               (Array.sub ospans (n_before + n_dirty) n_after)
                             |> List.map (fun (sp : Parser.top_span) ->
                                    {
                                      Parser.sp_start = sp.Parser.sp_start + shift;
                                      sp_stop = sp.Parser.sp_stop + shift;
                                    });
                           ])
                    in
                    Some (program, spans))
      end
    end

  (* One file update: relex incrementally, splice or fall back, publish. *)
  let compute (e : entry option) ~path ~source : entry =
    match e with
    | Some ({ ie_lexed = Some oldlx; ie_result = Ok oldprog; _ } as e) -> (
        match Lexer.relex oldlx source with
        | exception Lexer.Error (msg, line) ->
            {
              ie_source = source;
              ie_lexed = None;
              ie_sig = [||];
              ie_sig_raw = [||];
              ie_result = lex_error_result line msg;
              ie_spans = [||];
            }
        | nlx, info -> (
            let nsig, nsigraw = sig_of nlx in
            let spliced =
              match try_region e ~path oldprog info nsig with
              | v -> v
              | exception (Parser.Parse_error _ | Parser.Depth_exceeded _) ->
                  (* the region parse failed where the full parse would
                     fail too; run the fallback to produce the identical
                     structured error *)
                  None
            in
            match spliced with
            | Some (program, spans) ->
                let program, spans =
                  if Atomic.get verify_flag then begin
                    let fresult, fspans = parse_sig ~path nsig in
                    match fresult with
                    | Ok fprog
                      when String.equal
                             (Digest.structural fprog)
                             (Digest.structural program) ->
                        (program, spans)
                    | Ok fprog ->
                        Obs.Mirror.incr "parser.region.verify_mismatch";
                        (fprog, fspans)
                    | Error _ ->
                        Obs.Mirror.incr "parser.region.verify_mismatch";
                        (program, spans)
                  end
                  else (program, spans)
                in
                {
                  ie_source = source;
                  ie_lexed = Some nlx;
                  ie_sig = nsig;
                  ie_sig_raw = nsigraw;
                  ie_result = Ok program;
                  ie_spans = spans;
                }
            | None ->
                Obs.Mirror.incr "parser.region.fallback";
                let result, spans = parse_sig ~path nsig in
                {
                  ie_source = source;
                  ie_lexed = Some nlx;
                  ie_sig = nsig;
                  ie_sig_raw = nsigraw;
                  ie_result = result;
                  ie_spans = spans;
                }))
    | Some _ | None -> full ~path ~source

  (* Publish into the same two cache tiers [parse_file] reads, under its
     exact keys, so downstream analyzers hit without code changes. *)
  let seed_caches ~path ~source result =
    if Parse_cache.enabled () then
      Parse_cache.seed Parse_cache.shared (path, Digest.string source) result;
    if Store.enabled () then begin
      let key =
        Digest.combine
          [ path; Digest.hex source; string_of_int (Parser.nesting_limit ()) ]
      in
      Store.put ~ns:"parse" ~key result
    end

  let update session ~path ~source : (Ast.program, parse_error) result =
    match Hashtbl.find_opt session.ses_files path with
    | Some e when String.equal e.ie_source source -> e.ie_result
    | prev ->
        let e = compute prev ~path ~source in
        Hashtbl.replace session.ses_files path e;
        seed_caches ~path ~source e.ie_result;
        e.ie_result

  let forget session path = Hashtbl.remove session.ses_files path

  let result session path =
    Option.map
      (fun e -> e.ie_result)
      (Hashtbl.find_opt session.ses_files path)
end

(* ------------------------------------------------------------------ *)
(* Loading a project from the filesystem                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec collect_php_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then collect_php_files path
         else if Filename.check_suffix entry ".php" then [ path ]
         else [])

(** Load a target from disk: a directory becomes a project of all its
    [.php] files (deterministic order: lexicographic per directory level,
    paths relative to the target), a single file a one-file project.  This
    is the one target reader shared by [phpsafe_cli] and the
    [phpsafe_serve] client, so both build byte-identical projects — the
    precondition for their reports being byte-identical. *)
let load target =
  if Sys.is_directory target then
    let files = collect_php_files target in
    let strip path =
      let prefix = target ^ Filename.dir_sep in
      if
        String.length path > String.length prefix
        && String.sub path 0 (String.length prefix) = prefix
      then String.sub path (String.length prefix)
             (String.length path - String.length prefix)
      else path
    in
    make ~name:(Filename.basename target)
      (List.map (fun p -> { path = strip p; source = read_file p }) files)
  else
    make ~name:(Filename.basename target)
      [ { path = Filename.basename target; source = read_file target } ]
