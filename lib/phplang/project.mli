(** Multi-file plugin model: a named collection of PHP files with
    [include]/[require] resolution (paper §III.B). *)

type file = { path : string; source : string }

type t = { name : string; files : file list }

val make : name:string -> file list -> t

val find : t -> string -> file option
(** Look a file up by its exact project-relative path. *)

val file_count : t -> int

(** Why a parse failed.  [Syntax] is a lexer/parser rejection; [Over_budget]
    means the nesting-depth fuel (see {!Parser.set_nesting_limit}) ran out —
    analyzers report the two differently in the robustness table. *)
type parse_error =
  | Syntax of string
  | Over_budget of string

val parse_error_message : parse_error -> string

(** Content-keyed parse memoization shared by analyzers and domains:
    entries are keyed by file path + source digest, so each distinct file
    is parsed exactly once per process even when three tools (or several
    domains) visit it.  Safe to use concurrently: the table is
    mutex-guarded and concurrent misses for the same key parse only once. *)
module Parse_cache : sig
  type t

  val create : unit -> t

  val shared : t
  (** Process-wide default cache used by {!parse_file}. *)

  val memo :
    t ->
    string * string ->
    (unit -> (Ast.program, parse_error) result) ->
    (Ast.program, parse_error) result
  (** [memo t (path, digest) parse] returns the cached entry for the key,
      or runs [parse] (outside the lock, publishing an in-progress marker
      so concurrent requests wait rather than parse twice) and caches its
      result.  Exception-safe: if [parse] raises, the marker is removed,
      waiters are woken (the next caller retries), and the exception is
      re-raised with its backtrace. *)

  val seed :
    t -> string * string -> (Ast.program, parse_error) result -> unit
  (** Publish a result computed outside the memo (the incremental
      pipeline), so later {!memo} calls for the key hit.  A key currently
      being parsed is left alone — the live parse publishes the same
      value. *)

  val set_enabled : bool -> unit
  (** Globally enable/disable memoization ([true] initially).  Flip only
      from the main domain while no analysis is running. *)

  val enabled : unit -> bool

  val hits : t -> int
  (** Parses avoided because the entry was already cached. *)

  val misses : t -> int
  (** Actual parses performed through this cache. *)

  val clear : t -> unit
  (** Drop all entries and reset the hit/miss counters. *)
end

val parse_file :
  ?cache:Parse_cache.t -> file -> (Ast.program, parse_error) result
(** Parse one project file, memoized in [cache] (default
    {!Parse_cache.shared}) unless the cache is disabled.  [Error _] is a
    structured parse failure (lexical/syntax error or nesting-budget
    exhaustion); failures are cached too. *)

val include_targets : Ast.program -> string list
(** Literal include targets of a program, in source order; dynamic include
    arguments are skipped, like the real tools do. *)

(** Result of {!include_closure}. *)
type closure = {
  cl_paths : string list;
      (** reachable paths, sorted, including the entry file and unresolved
          targets *)
  cl_max_depth : int;  (** maximum include depth encountered *)
  cl_unresolved : int;
      (** distinct include targets not present in the project (WordPress
          core files, typically) — each bumps the
          [phplang.includes.unresolved] counter *)
  cl_truncated : bool;
      (** true when a [max_depth]/[max_files] cap stopped the walk *)
}

val include_closure :
  ?max_depth:int ->
  ?max_files:int ->
  parse:(file -> Ast.program option) ->
  t ->
  string ->
  closure
(** [include_closure ~parse t path] is the transitive include closure of
    [path].  Cycles are cut; missing files are tolerated but counted as
    unresolved (and still part of the closure, as before).  [max_depth]
    bounds the include-chain depth and [max_files] the closure size (both
    default to unlimited); exceeding either stops the walk and marks the
    closure truncated — the caller reports that as a budget exhaustion. *)

(** Sub-file incremental re-parse sessions (the [--watch]/daemon hot
    path).  {!Increment.update} re-lexes only an edit's damaged region
    ({!Lexer.relex}), re-parses the enclosing top-level statement
    ({!Parser.parse_region}) and splices it into the cached AST with the
    unchanged suffix's positions rebased; any ambiguity falls back to a
    whole-file parse, counted in [parser.region.fallback].  Results are
    byte-identical to {!parse_file} on the same input (verifiable per
    update with {!Increment.set_verify}) and are published into
    {!Parse_cache.shared} and the disk {!Store} under {!parse_file}'s
    keys, so downstream analyzers hit transparently. *)
module Increment : sig
  type session

  val create : unit -> session

  val update :
    session -> path:string -> source:string -> (Ast.program, parse_error) result
  (** Bring [path] up to date with [source], incrementally when the
      session has seen the file before, and seed the process parse caches.
      Returns exactly what {!parse_file} would for the same input. *)

  val forget : session -> string -> unit
  (** Drop a file (deleted from the project); the next update re-parses it
      from scratch. *)

  val result :
    session -> string -> (Ast.program, parse_error) result option
  (** Last known result for [path], if the session has seen it. *)

  val set_verify : bool -> unit
  (** When on, every sub-file splice is checked against a whole-file parse
      (structural digests must match; a mismatch bumps
      [parser.region.verify_mismatch] and uses the full parse).  For tests
      and E17; process-global. *)
end

val load : string -> t
(** [load target] reads a project from disk: a directory becomes a project
    of all its [.php] files (recursive, lexicographically sorted per
    level, paths relative to the target), a plain file a one-file project;
    the project name is the target's basename.  Shared by [phpsafe_cli]
    and the [phpsafe_serve] client so both sides build identical projects
    from the same target.  Raises [Sys_error] on unreadable paths. *)
