(** Multi-file plugin model: a named collection of PHP files with
    [include]/[require] resolution (paper §III.B). *)

type file = { path : string; source : string }

type t = { name : string; files : file list }

val make : name:string -> file list -> t

val find : t -> string -> file option
(** Look a file up by its exact project-relative path. *)

val file_count : t -> int

(** Content-keyed parse memoization shared by analyzers and domains:
    entries are keyed by file path + source digest, so each distinct file
    is parsed exactly once per process even when three tools (or several
    domains) visit it.  Safe to use concurrently: the table is
    mutex-guarded and concurrent misses for the same key parse only once. *)
module Parse_cache : sig
  type t

  val create : unit -> t

  val shared : t
  (** Process-wide default cache used by {!parse_file}. *)

  val set_enabled : bool -> unit
  (** Globally enable/disable memoization ([true] initially).  Flip only
      from the main domain while no analysis is running. *)

  val enabled : unit -> bool

  val hits : t -> int
  (** Parses avoided because the entry was already cached. *)

  val misses : t -> int
  (** Actual parses performed through this cache. *)

  val clear : t -> unit
  (** Drop all entries and reset the hit/miss counters. *)
end

val parse_file :
  ?cache:Parse_cache.t -> file -> (Ast.program, string) result
(** Parse one project file, memoized in [cache] (default
    {!Parse_cache.shared}) unless the cache is disabled.  [Error msg] is a
    parse failure; failures are cached too. *)

val include_targets : Ast.program -> string list
(** Literal include targets of a program, in source order; dynamic include
    arguments are skipped, like the real tools do. *)

val include_closure :
  parse:(file -> Ast.program option) -> t -> string -> string list * int
(** [include_closure ~parse t path] is the transitive include closure of
    [path] (sorted, including [path]) together with the maximum include
    depth.  Cycles are cut; missing files (WordPress core, typically) are
    tolerated but still count toward the depth. *)
