(** Content digests for the incremental-analysis cache.

    Two flavours:
    - {!string}/{!hex} hash raw bytes (file sources) — the fast path, one
      MD5 pass over the text;
    - {!structural} hashes arbitrary OCaml values (ASTs, configurations,
      budgets) through their [Marshal] representation, so two values digest
      equal exactly when they are structurally equal — including source
      positions, which analysis results depend on.

    Digests are returned as lowercase hex so they can double as on-disk
    file names in {!Store}. *)

(** Raw 16-byte MD5 of a string (compatible with [Stdlib.Digest.string]);
    used where the digest is only a hash-table key. *)
let string s = Stdlib.Digest.string s

(** Lowercase hex MD5 of a string. *)
let hex s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

(** Structural digest of an arbitrary (closure-free) value: hex MD5 of its
    [Marshal] bytes.  Structurally equal values — same constructors, same
    strings, same positions — digest equal.  [No_sharing] matters: default
    marshalling encodes repeated physical blocks as back-references, so two
    structurally equal values with different internal sharing (a spliced
    incremental AST vs. a cold parse, whose interned lexemes share
    differently) would otherwise digest differently. *)
let structural v = hex (Marshal.to_string v [ Marshal.No_sharing ])

(** Digest of a list of digests (or any strings): order-sensitive. *)
let combine parts = hex (String.concat "\x00" parts)
