(** PHP tokenizer — the [token_get_all] equivalent the analyzers build on
    (paper §III.B). *)

exception Error of string * int
(** Lexing failure: message and 1-based line number. *)

val tokenize : string -> Token.t list
(** [tokenize src] splits a PHP source file into tokens, including
    whitespace, comments and inline HTML, terminated by {!Token.T_EOF}.
    Raises {!Error} on malformed input (unterminated strings/comments,
    characters outside the supported subset). *)

val significant : Token.t list -> Token.t list
(** Drop whitespace and comment tokens — phpSAFE "cleans the AST by removing
    comments and extra whitespaces" (§III.B). *)

val tokenize_significant : string -> Token.t list
(** [significant (tokenize src)]. *)

(** {1 Checkpointed incremental lexing}

    The lexer's complete inter-token state is (byte position, line,
    in-PHP flag): heredocs, strings and comments are consumed whole within
    a single token, so there is no extra mode stack.  {!lex_all} records a
    checkpoint of that state every {!checkpoint_interval} tokens; {!relex}
    resumes from the nearest checkpoint safely before an edit's damage
    region and stops as soon as the fresh tokens re-synchronize with the
    old stream, reusing the unchanged prefix and suffix.  Counters:
    [lexer.ckpt.resume] (one per resumed re-lex) and
    [lexer.ckpt.resync_tokens] (tokens actually re-lexed). *)

type checkpoint = {
  ck_index : int;  (** tokens [0, ck_index) precede this boundary *)
  ck_pos : int;
  ck_line : int;
  ck_in_php : bool;
}

type lexed = {
  lx_src : string;
  lx_tokens : Token.t array;  (** includes the trailing {!Token.T_EOF} *)
  lx_starts : int array;
      (** byte offset of each token's first byte; strictly increasing *)
  lx_php : bool array;  (** in-PHP flag at each token's start *)
  lx_ckpts : checkpoint array;
}

type relex_info = {
  rl_prefix : int;  (** old tokens [0, rl_prefix) reused verbatim *)
  rl_old_suffix : int;  (** old tokens [rl_old_suffix, n_old) reused... *)
  rl_new_suffix : int;  (** ...reappearing at [rl_new_suffix, n_new) *)
  rl_line_delta : int;  (** line shift applied to the reused suffix *)
}

val checkpoint_interval : int

val lex_all : string -> lexed
(** Full tokenization with checkpoints; token-for-token identical to
    {!tokenize}.  Raises {!Error} like {!tokenize}. *)

val relex : lexed -> string -> lexed * relex_info
(** [relex old src] re-tokenizes [src] incrementally against the previous
    result [old], resuming from a checkpoint before the first changed byte
    and re-synchronizing with [old]'s token stream after the last changed
    byte.  The result is token-for-token identical to [lex_all src]
    (reused suffix tokens are rebuilt with shifted line numbers when the
    edit changed the line count).  Raises {!Error} exactly when
    [lex_all src] would. *)

val tokens_of_lexed : lexed -> Token.t list
