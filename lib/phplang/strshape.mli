(** String-shape analysis for sink arguments: flatten the literal structure
    of an expression and classify where a dynamic hole lands inside the
    surrounding constant HTML or SQL text.  Used by the phpSAFE
    context-inference pass ([--contexts]). *)

(** Constant fragment or dynamic hole of a flattened string expression. *)
type piece = Lit of string | Dyn of Ast.expr

(** Flatten [Str] / [Interp] / [Concat] structure (numeric literals become
    text too); any other expression is an opaque [Dyn] hole. *)
val pieces : Ast.expr -> piece list

(** HTML output position of a hole.  Empty prefix defaults to [H_body]. *)
type html_ctx = H_body | H_attr_quoted | H_attr_unquoted | H_url | H_js_string

(** SQL position of a hole.  Empty prefix defaults to [S_quoted]. *)
type sql_ctx = S_quoted | S_numeric | S_identifier

(** Classify the position after the given constant HTML prefix: element
    body, quoted/unquoted attribute, URL attribute or [<script>] string. *)
val classify_html : string -> html_ctx

(** Classify the position after the given constant SQL prefix: inside a
    quoted string, numeric position or identifier position. *)
val classify_sql : string -> sql_ctx
