(** String-shape analysis for sink arguments: flattens the literal structure
    of an expression ([Str] / double-quoted [Interp] / [Concat] chains) into
    an ordered list of constant fragments and dynamic holes, then classifies
    where a hole lands inside the constant text by lightweight HTML or SQL
    lexing of the fragments before it.  The phpSAFE context-inference pass
    ([--contexts]) uses this to decide which sanitizers are adequate at each
    sink occurrence. *)

(** One element of the flattened string: either constant text known at
    analysis time or a dynamic sub-expression (a hole). *)
type piece = Lit of string | Dyn of Ast.expr

(** [pieces e] flattens [e]'s literal structure.  String/numeric literals
    and the constant parts of interpolated strings become [Lit]s;
    concatenation chains and interpolations are walked recursively; any
    other expression is an opaque [Dyn] hole. *)
let rec pieces (e : Ast.expr) : piece list =
  match e.Ast.e with
  | Ast.Str s -> [ Lit s ]
  | Ast.Int n -> [ Lit (string_of_int n) ]
  | Ast.Float f -> [ Lit (Printf.sprintf "%g" f) ]
  | Ast.Interp parts ->
      List.concat_map
        (function Ast.ILit s -> [ Lit s ] | Ast.IExpr e -> pieces e)
        parts
  | Ast.Bin (Ast.Concat, a, b) -> pieces a @ pieces b
  | _ -> [ Dyn e ]

(** HTML output position of a hole, judged from the constant prefix.  When
    no constant text precedes the hole the classification defaults to
    [H_body] — the flat (context-free) behaviour. *)
type html_ctx = H_body | H_attr_quoted | H_attr_unquoted | H_url | H_js_string

(** SQL position of a hole.  An empty prefix defaults to [S_quoted] so that
    sinks with no literal structure keep the flat verdict. *)
type sql_ctx = S_quoted | S_numeric | S_identifier

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(** [classify_html prefix] runs a small HTML tokenizer over the constant
    text preceding a hole and reports where the hole lands: element body,
    quoted/unquoted attribute value, URL attribute ([href]/[src]/...) or a
    string inside a [<script>] block.  Intentionally lightweight: tracks
    tag/attribute/quote state and [<script>] sections, nothing more. *)
let classify_html prefix =
  let n = String.length prefix in
  let in_tag = ref false and closing = ref false in
  let tag = Buffer.create 8 and attr = Buffer.create 8 in
  let tag_done = ref false in
  let after_eq = ref false and quote = ref None in
  let in_script = ref false and js_quote = ref None in
  let i = ref 0 in
  while !i < n do
    let c = prefix.[!i] in
    if !in_script then begin
      if
        c = '<'
        && !i + 8 <= n
        && String.lowercase_ascii (String.sub prefix !i 8) = "</script"
      then begin
        in_script := false;
        js_quote := None;
        let j = ref (!i + 8) in
        while !j < n && prefix.[!j] <> '>' do incr j done;
        i := !j
      end
      else begin
        match !js_quote with
        | Some q -> if c = '\\' then incr i else if c = q then js_quote := None
        | None -> if c = '\'' || c = '"' then js_quote := Some c
      end
    end
    else if not !in_tag then begin
      if c = '<' then begin
        in_tag := true;
        closing := false;
        tag_done := false;
        Buffer.clear tag;
        Buffer.clear attr;
        after_eq := false;
        quote := None;
        if !i + 1 < n && prefix.[!i + 1] = '/' then begin
          closing := true;
          incr i
        end
      end
    end
    else begin
      match !quote with
      | Some q ->
          if c = q then begin
            quote := None;
            after_eq := false;
            Buffer.clear attr
          end
      | None ->
          if c = '>' then begin
            in_tag := false;
            if
              (not !closing)
              && String.lowercase_ascii (Buffer.contents tag) = "script"
            then in_script := true
          end
          else if c = '"' || c = '\'' then begin
            if !after_eq then quote := Some c
          end
          else if c = '=' then after_eq := true
          else if is_space c then begin
            if !after_eq then after_eq := false;
            if !tag_done then Buffer.clear attr;
            tag_done := true
          end
          else if not !tag_done then Buffer.add_char tag c
          else if not !after_eq then Buffer.add_char attr c
      (* characters of an unquoted attribute value are consumed silently *)
    end;
    incr i
  done;
  let url_attr =
    match String.lowercase_ascii (Buffer.contents attr) with
    | "href" | "src" | "action" | "formaction" -> true
    | _ -> false
  in
  if !in_script then H_js_string
  else if !in_tag then
    if !quote <> None then (if url_attr then H_url else H_attr_quoted)
    else if !after_eq then (if url_attr then H_url else H_attr_unquoted)
    else H_attr_unquoted
  else H_body

(** [classify_sql prefix] tracks SQL quote state over the constant text
    before a hole; outside quotes the trailing token decides between a
    numeric position (after [=], [(], an arithmetic operator, ...) and an
    identifier position (after [FROM], [ORDER BY], [JOIN], ...). *)
let classify_sql prefix =
  let n = String.length prefix in
  let quote = ref None in
  let i = ref 0 in
  while !i < n do
    let c = prefix.[!i] in
    (match !quote with
    | Some q -> if c = '\\' then incr i else if c = q then quote := None
    | None -> if c = '\'' || c = '"' || c = '`' then quote := Some c);
    incr i
  done;
  match !quote with
  | Some _ -> S_quoted
  | None ->
      let j = ref (n - 1) in
      while !j >= 0 && is_space prefix.[!j] do decr j done;
      if !j < 0 then S_quoted (* no constant text: keep the flat verdict *)
      else
        let last = prefix.[!j] in
        if
          last = '=' || last = '<' || last = '>' || last = '(' || last = ','
          || last = '+' || last = '-' || last = '*' || last = '/'
        then S_numeric
        else begin
          let e = !j in
          let s = ref e in
          let is_word c =
            (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9')
            || c = '_'
          in
          while !s >= 0 && is_word prefix.[!s] do decr s done;
          let w =
            String.lowercase_ascii (String.sub prefix (!s + 1) (e - !s))
          in
          match w with
          | "by" | "from" | "into" | "update" | "table" | "join" | "select" ->
              S_identifier
          | _ -> S_numeric
        end
