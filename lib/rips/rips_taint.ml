(** RIPS taint values: a set of live vulnerability kinds plus the revert
    bookkeeping RIPS's "secure and unsecure PHP built-in functions" model
    needs.  Simpler than phpSAFE's {!Phpsafe.Taint} — RIPS's backward
    analysis carries no parameter dependency sets, because parameters are
    resolved by walking to the call sites instead. *)

open Secflow

module Kset = Set.Make (struct
  type t = Vuln.kind

  let compare = Vuln.compare_kind
end)

type t = {
  live : Kset.t;  (** kinds the value is currently tainted for *)
  was : Kset.t;  (** kinds sanitized away, revivable by a revert *)
  source : Vuln.source option;
  source_pos : Phplang.Ast.pos option;
}

let clean =
  { live = Kset.empty; was = Kset.empty; source = None; source_pos = None }

let of_source kinds source pos =
  { clean with
    live = Kset.of_list kinds;
    source = Some source;
    source_pos = Some pos }

let is_tainted kind t = Kset.mem kind t.live
let any t = not (Kset.is_empty t.live)

let join a b =
  { live = Kset.union a.live b.live;
    was = Kset.union a.was b.was;
    source = (match a.source with Some _ -> a.source | None -> b.source);
    source_pos = (match a.source with Some _ -> a.source_pos | None -> b.source_pos) }

let join_all = List.fold_left join clean

let sanitize kinds t =
  let ks = Kset.of_list kinds in
  { t with
    live = Kset.diff t.live ks;
    was = Kset.union t.was (Kset.inter t.live ks) }

let revert t = { t with live = Kset.union t.live t.was }
