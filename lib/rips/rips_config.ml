(** RIPS knowledge base.

    RIPS performs "a comprehensive analysis and simulation of built-in
    language features, such as PHP functions" (paper §II) — it knows the PHP
    built-in sources, sanitizers, reverts and sinks very well, but it has no
    CMS-framework profile: WordPress API functions and [$wpdb] methods are
    unknown to it, and it "does not parse PHP objects". *)

open Secflow

(** The vulnerability classes RIPS 0.55 reports on request input: XSS, SQLi,
    command execution and file inclusion/disclosure (paper §II).  No SSRF —
    the class post-dates the tool — and no second-order flows: RIPS has no
    model of data coming back out of storage. *)
let input_kinds = [ Vuln.Xss; Vuln.Sqli; Vuln.Cmdi; Vuln.Path_traversal ]

type role =
  | Source of Vuln.kind list * Vuln.source
  | Sanitizer of Vuln.kind list
  | Revert
  | Passthrough
  | Join_args   (** result tainted if any argument is *)

let builtin name =
  match name with
  (* input functions *)
  | "file_get_contents" -> Some (Source ([ Vuln.Xss; Vuln.Sqli ], Vuln.File_read name))
  | "fgets" | "fread" | "file" | "fscanf" ->
      Some (Source ([ Vuln.Xss; Vuln.Sqli ], Vuln.File_read name))
  | "getenv" -> Some (Source ([ Vuln.Xss; Vuln.Sqli ], Vuln.Function_return name))
  | "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row"
  | "mysql_fetch_object" | "mysql_result" | "mysql_query" ->
      Some (Source ([ Vuln.Xss ], Vuln.Database name))
  (* securing functions *)
  | "htmlspecialchars" | "htmlentities" | "strip_tags" | "urlencode"
  | "rawurlencode" | "json_encode" ->
      Some (Sanitizer [ Vuln.Xss ])
  | "intval" | "floatval" | "abs" | "count" | "strlen" | "md5" | "sha1"
  | "crc32" | "number_format" ->
      (* numeric results are harmless in every class RIPS knows *)
      Some (Sanitizer input_kinds)
  | "addslashes" | "mysql_escape_string" | "mysql_real_escape_string" ->
      Some (Sanitizer [ Vuln.Sqli ])
  | "escapeshellarg" | "escapeshellcmd" -> Some (Sanitizer [ Vuln.Cmdi ])
  | "basename" | "realpath" -> Some (Sanitizer [ Vuln.Path_traversal ])
  (* reverting functions *)
  | "stripslashes" | "stripcslashes" | "urldecode" | "rawurldecode"
  | "html_entity_decode" | "htmlspecialchars_decode" | "base64_decode" ->
      Some Revert
  (* taint-preserving string builtins *)
  | "trim" | "ltrim" | "rtrim" | "substr" | "strtolower" | "strtoupper"
  | "ucfirst" | "ucwords" | "nl2br" | "strval" | "strrev" | "wordwrap" ->
      Some Passthrough
  | "sprintf" | "vsprintf" | "implode" | "join" | "str_replace"
  | "preg_replace" | "str_pad" ->
      Some Join_args
  | _ -> None

let superglobals =
  [ "$_GET"; "$_POST"; "$_COOKIE"; "$_REQUEST"; "$_FILES"; "$_SERVER" ]

let is_superglobal v = List.mem v superglobals

(** XSS sinks (language constructs handled separately by the analyzer). *)
let xss_sink_functions = [ "printf"; "print_r"; "vprintf" ]

let sqli_sink_functions =
  [ "mysql_query"; "mysql_db_query"; "mysql_unbuffered_query" ]

(** Command-execution sinks (RIPS 0.55's "code execution" class); the
    command is the first argument. *)
let cmdi_sink_functions =
  [ "system"; "exec"; "shell_exec"; "passthru"; "popen"; "proc_open" ]

(** File-access sinks whose first argument is a path — RIPS's file
    inclusion / file disclosure class ([include] constructs are handled
    separately by the analyzer). *)
let lfi_sink_functions = [ "fopen"; "readfile"; "file_get_contents" ]
