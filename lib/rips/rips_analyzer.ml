(** RIPS-like analyzer: backward-directed taint analysis (paper §II: "RIPS
    is able to perform backward-directed taint analysis ... based on the
    abstract syntax tree of the PHP script").

    Behavioural model, per the paper's characterisation:
    - analyzes one file at a time (its web UI is driven per file, §IV.B);
    - procedural code only — class bodies are skipped and method calls are
      opaque ("the tool does not parse PHP objects, consequently it misses
      encapsulated vulnerabilities", §II);
    - no CMS knowledge: calls to unknown (WordPress) functions conservatively
      propagate their arguments' taint, which yields false alarms on
      WP-sanitized code and finds flows through unknown wrappers;
    - robust: it never fails a file (§V.E "RIPS succeeded in completing the
      analysis of all files");
    - functions that are never called are still scanned for sinks, so
      plugin callbacks are covered (§V.A).

    The engine linearizes every procedural scope into an event sequence and
    resolves each sink argument {e backwards} through assignments, foreach
    bindings, function returns and call sites. *)

open Secflow
module A = Phplang.Ast

type event =
  | Ev_assign of string * A.expr * bool * A.pos
      (** base variable, rhs, [true] when concat-style (joins old value) *)
  | Ev_foreach of string * A.expr * A.pos  (** bound var, subject *)
  | Ev_unset of string list
  | Ev_global of string list
  | Ev_call of string * A.expr list * A.pos  (** call site, for param backtracking *)
  | Ev_return of A.expr option * A.pos

type sink_occ = {
  so_scope : int;
  so_index : int;  (** event index; resolution starts just below it *)
  so_expr : A.expr;
  so_kind : Vuln.kind;
  so_sink : string;
  so_pos : A.pos;
}

type scope = {
  sc_id : int;
  sc_fname : string option;  (** lowercase function name; [None] = top level *)
  sc_params : string list;
  mutable sc_events : event array;
}

type fstate = {
  file : string;
  mutable scopes : scope list;
  mutable sinks : sink_occ list;
  funcs : (string, int) Hashtbl.t;  (** lowercase name -> scope id *)
  mutable work : int;
      (** resolution steps spent on the current sink; self-referential
          definition chains ([$a = $a . $a;] repeated) make naive backward
          resolution exponential, so each sink gets a work budget and
          resolves to clean beyond it — the answer real RIPS's time-boxed
          analysis would give *)
}

let max_work = 50_000

(* ------------------------------------------------------------------ *)
(* Linearization                                                      *)
(* ------------------------------------------------------------------ *)

let base_var_of_lval (e : A.expr) : string option =
  let rec go (e : A.expr) =
    match e.A.e with
    | A.Var v -> Some v
    | A.ArrayGet (b, _) -> go b
    | _ -> None  (* property writes are invisible to RIPS *)
  in
  go e

type lin = {
  mutable events : event list;  (** reversed *)
  mutable count : int;
  st : fstate;
  scope_id : int;
}

let push l ev =
  l.events <- ev :: l.events;
  l.count <- l.count + 1

let push_sink l ~kind ~sink (e : A.expr) =
  l.st.sinks <-
    { so_scope = l.scope_id; so_index = l.count; so_expr = e; so_kind = kind;
      so_sink = sink; so_pos = e.A.epos }
    :: l.st.sinks

(* Emit events for the sub-assignments and call sites inside an expression,
   in evaluation order, then classify the expression's own effect. *)
let rec lin_expr l (e : A.expr) =
  match e.A.e with
  | A.Assign (lhs, rhs) | A.AssignRef (lhs, rhs) -> (
      lin_expr l rhs;
      match base_var_of_lval lhs with
      | Some v ->
          let concatish =
            match lhs.A.e with A.ArrayGet _ -> true | _ -> false
          in
          push l (Ev_assign (v, rhs, concatish, e.A.epos))
      | None -> ())
  | A.OpAssign (op, lhs, rhs) -> (
      lin_expr l rhs;
      match base_var_of_lval lhs with
      | Some v ->
          let concatish = op = A.Concat in
          if concatish then push l (Ev_assign (v, rhs, true, e.A.epos))
          else push l (Ev_assign (v, rhs, false, e.A.epos))
      | None -> ())
  | A.ListAssign (slots, rhs) ->
      lin_expr l rhs;
      List.iter
        (fun slot ->
          match slot with
          | Some lv -> (
              match base_var_of_lval lv with
              | Some v -> push l (Ev_assign (v, rhs, false, e.A.epos))
              | None -> ())
          | None -> ())
        slots
  | A.Call (fname, args) ->
      List.iter (lin_expr l) args;
      push l (Ev_call (String.lowercase_ascii fname, args, e.A.epos));
      (* sink functions *)
      let fname_lc = String.lowercase_ascii fname in
      if List.mem fname_lc Rips_config.xss_sink_functions then
        List.iter (fun a -> push_sink l ~kind:Vuln.Xss ~sink:fname a) args;
      if List.mem fname_lc Rips_config.sqli_sink_functions then (
        match args with
        | q :: _ -> push_sink l ~kind:Vuln.Sqli ~sink:fname q
        | [] -> ());
      if List.mem fname_lc Rips_config.cmdi_sink_functions then (
        match args with
        | c :: _ -> push_sink l ~kind:Vuln.Cmdi ~sink:fname c
        | [] -> ());
      if List.mem fname_lc Rips_config.lfi_sink_functions then (
        match args with
        | p :: _ -> push_sink l ~kind:Vuln.Path_traversal ~sink:fname p
        | [] -> ())
  | A.MethodCall (obj, _, args) ->
      lin_expr l obj;
      List.iter (lin_expr l) args
  | A.StaticCall (_, _, args) | A.New (_, args) -> List.iter (lin_expr l) args
  | A.Bin (_, x, y) -> lin_expr l x; lin_expr l y
  | A.Un (_, x) | A.CastE (_, x) | A.EmptyE x | A.Prop (x, _) -> lin_expr l x
  | A.PrintE x ->
      lin_expr l x;
      push_sink l ~kind:Vuln.Xss ~sink:"print" x
  | A.Exit (Some x) ->
      lin_expr l x;
      push_sink l ~kind:Vuln.Xss ~sink:"exit" x
  | A.Exit None -> ()
  | A.Ternary (c, t, e2) ->
      lin_expr l c;
      Option.iter (lin_expr l) t;
      lin_expr l e2
  | A.ArrayGet (b, i) ->
      lin_expr l b;
      Option.iter (lin_expr l) i
  | A.ArrayLit items ->
      List.iter
        (fun (k, v) ->
          Option.iter (lin_expr l) k;
          lin_expr l v)
        items
  | A.Isset es -> List.iter (lin_expr l) es
  | A.IncludeE (_, x) ->
      lin_expr l x;
      (* a dynamic include path is RIPS's file-inclusion sink *)
      push_sink l ~kind:Vuln.Path_traversal ~sink:"include" x
  | A.Interp parts ->
      List.iter (function A.IExpr x -> lin_expr l x | A.ILit _ -> ()) parts
  | A.Closure _ ->
      () (* closures are opaque to RIPS *)
  | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Var _
  | A.StaticProp _ | A.ClassConst _ | A.Const _ ->
      ()

let rec lin_stmt l (s : A.stmt) =
  match s.A.s with
  | A.Expr e -> lin_expr l e
  | A.Echo es ->
      List.iter
        (fun e ->
          lin_expr l e;
          push_sink l ~kind:Vuln.Xss ~sink:"echo" e)
        es
  | A.If (branches, els) ->
      List.iter
        (fun (c, b) ->
          lin_expr l c;
          List.iter (lin_stmt l) b)
        branches;
      Option.iter (List.iter (lin_stmt l)) els
  | A.While (c, b) ->
      lin_expr l c;
      List.iter (lin_stmt l) b
  | A.DoWhile (b, c) ->
      List.iter (lin_stmt l) b;
      lin_expr l c
  | A.For (i, c, u, b) ->
      List.iter (lin_expr l) i;
      List.iter (lin_expr l) c;
      List.iter (lin_stmt l) b;
      List.iter (lin_expr l) u
  | A.Foreach (subject, binding, b) ->
      lin_expr l subject;
      (match binding with
      | A.ForeachValue v | A.ForeachKeyValue (_, v) -> (
          match base_var_of_lval v with
          | Some name -> push l (Ev_foreach (name, subject, s.A.spos))
          | None -> ()));
      List.iter (lin_stmt l) b
  | A.Switch (subject, cases) ->
      lin_expr l subject;
      List.iter (fun (c : A.case) -> List.iter (lin_stmt l) c.A.case_body) cases
  | A.Return e ->
      Option.iter (lin_expr l) e;
      push l (Ev_return (e, s.A.spos))
  | A.Global names -> push l (Ev_global names)
  | A.StaticVar vars ->
      List.iter
        (fun (v, init) ->
          match init with
          | Some rhs ->
              lin_expr l rhs;
              push l (Ev_assign (v, rhs, false, s.A.spos))
          | None -> ())
        vars
  | A.Unset es ->
      push l
        (Ev_unset (List.filter_map base_var_of_lval es))
  | A.Block b -> List.iter (lin_stmt l) b
  | A.FuncDef _ -> () (* handled by scope collection *)
  | A.ClassDef _ -> () (* RIPS skips OOP code entirely *)
  | A.TryCatch (b, catches) ->
      List.iter (lin_stmt l) b;
      List.iter
        (fun (c : A.catch) -> List.iter (lin_stmt l) c.A.catch_body)
        catches
  | A.Throw e -> lin_expr l e
  | A.InlineHtml _ | A.Nop | A.Break | A.Continue -> ()

(* Collect scopes: top level + every free function (recursively). *)
let build_fstate ~file (prog : A.program) : fstate =
  let st =
    { file; scopes = []; sinks = []; funcs = Hashtbl.create 16; work = 0 }
  in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let rec collect_funcs (stmts : A.stmt list) =
    List.iter
      (fun (s : A.stmt) ->
        match s.A.s with
        | A.FuncDef f ->
            let id = fresh () in
            let key = String.lowercase_ascii f.A.f_name in
            if not (Hashtbl.mem st.funcs key) then Hashtbl.replace st.funcs key id;
            let sc =
              { sc_id = id; sc_fname = Some key;
                sc_params = List.map (fun (p : A.param) -> p.A.p_name) f.A.f_params;
                sc_events = [||] }
            in
            st.scopes <- sc :: st.scopes;
            let l = { events = []; count = 0; st; scope_id = id } in
            List.iter (lin_stmt l) f.A.f_body;
            sc.sc_events <- Array.of_list (List.rev l.events);
            collect_funcs f.A.f_body
        | A.If (branches, els) ->
            List.iter (fun (_, b) -> collect_funcs b) branches;
            Option.iter collect_funcs els
        | A.While (_, b) | A.DoWhile (b, _) | A.Foreach (_, _, b)
        | A.Block b | A.For (_, _, _, b) ->
            collect_funcs b
        | A.Switch (_, cases) ->
            List.iter (fun (c : A.case) -> collect_funcs c.A.case_body) cases
        | A.TryCatch (b, catches) ->
            collect_funcs b;
            List.iter (fun (c : A.catch) -> collect_funcs c.A.catch_body) catches
        | _ -> ())
      stmts
  in
  (* top level first so its scope id is deterministic *)
  let top_id = fresh () in
  let top =
    { sc_id = top_id; sc_fname = None; sc_params = []; sc_events = [||] }
  in
  st.scopes <- [ top ];
  collect_funcs prog;
  let l = { events = []; count = 0; st; scope_id = top_id } in
  List.iter (lin_stmt l) prog;
  top.sc_events <- Array.of_list (List.rev l.events);
  st.scopes <- List.sort (fun a b -> compare a.sc_id b.sc_id) st.scopes;
  st.sinks <- List.rev st.sinks;
  st

let scope_by_id st id = List.find (fun s -> s.sc_id = id) st.scopes

(* ------------------------------------------------------------------ *)
(* Backward resolution                                                *)
(* ------------------------------------------------------------------ *)

let max_depth = 60

(* visited keys prevent infinite regress through recursive code *)
module Visited = Set.Make (String)

let rec resolve st ~visited ~depth (scope : scope) (idx : int) (e : A.expr) :
    Rips_taint.t =
  st.work <- st.work + 1;
  if depth > max_depth || st.work > max_work then Rips_taint.clean
  else
    let resolve_here = resolve st ~visited ~depth:(depth + 1) scope idx in
    match e.A.e with
    | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Const _
    | A.ClassConst _ ->
        Rips_taint.clean
    | A.Interp parts ->
        Rips_taint.join_all
          (List.map
             (function A.ILit _ -> Rips_taint.clean | A.IExpr x -> resolve_here x)
             parts)
    | A.Var v -> resolve_var st ~visited ~depth scope idx v e.A.epos
    | A.ArrayGet (b, _) -> resolve_here b
    | A.Prop _ | A.StaticProp _ | A.MethodCall _ | A.StaticCall _ | A.New _ ->
        Rips_taint.clean  (* OOP constructs are opaque *)
    | A.Assign (_, rhs) | A.AssignRef (_, rhs) -> resolve_here rhs
    | A.OpAssign (A.Concat, lhs, rhs) ->
        Rips_taint.join (resolve_here lhs) (resolve_here rhs)
    | A.OpAssign (_, _, _) -> Rips_taint.clean
    | A.ListAssign (_, rhs) -> resolve_here rhs
    | A.Bin ((A.Concat | A.Coalesce), x, y) ->
        Rips_taint.join (resolve_here x) (resolve_here y)
    | A.Bin (_, _, _) -> Rips_taint.clean
    | A.Un (A.Silence, x) -> resolve_here x
    | A.Un (_, _) -> Rips_taint.clean
    | A.Ternary (c, t, e2) ->
        let tt = match t with Some t -> resolve_here t | None -> resolve_here c in
        Rips_taint.join tt (resolve_here e2)
    | A.CastE ((A.CastInt | A.CastFloat | A.CastBool), _) -> Rips_taint.clean
    | A.CastE ((A.CastString | A.CastArray), x) -> resolve_here x
    | A.Isset _ | A.EmptyE _ | A.Exit _ | A.Closure _ -> Rips_taint.clean
    | A.PrintE x | A.IncludeE (_, x) -> resolve_here x
    | A.ArrayLit items ->
        Rips_taint.join_all (List.map (fun (_, v) -> resolve_here v) items)
    | A.Call (fname, args) -> resolve_call st ~visited ~depth scope idx fname args e.A.epos

and resolve_var st ~visited ~depth scope idx v pos : Rips_taint.t =
  if Rips_config.is_superglobal v then
    Rips_taint.of_source Rips_config.input_kinds (Vuln.Superglobal v) pos
  else
    let key = Printf.sprintf "v:%d:%d:%s" scope.sc_id idx v in
    if Visited.mem key visited then Rips_taint.clean
    else
      let visited = Visited.add key visited in
      (* walk backwards for the most recent definition *)
      let rec scan j =
        if j < 0 then not_found ()
        else
          match scope.sc_events.(j) with
          | Ev_assign (v', rhs, concatish, _) when String.equal v v' ->
              let t = resolve st ~visited ~depth:(depth + 1) scope j rhs in
              if concatish then Rips_taint.join t (scan (j - 1)) else t
          | Ev_foreach (v', subject, _) when String.equal v v' ->
              resolve st ~visited ~depth:(depth + 1) scope j subject
          | Ev_unset vs when List.mem v vs -> Rips_taint.clean
          | _ -> scan (j - 1)
      and not_found () =
        (* parameter? walk to the call sites *)
        match find_param_index scope v with
        | Some pi -> resolve_param st ~visited ~depth scope pi
        | None ->
            (* global declared in this scope resolves at file top level *)
            let declared_global =
              Array.exists
                (function Ev_global names -> List.mem v names | _ -> false)
                scope.sc_events
            in
            if declared_global && scope.sc_fname <> None then
              let top = scope_by_id st 0 in
              resolve_var st ~visited ~depth:(depth + 1) top
                (Array.length top.sc_events) v pos
            else Rips_taint.clean (* RIPS: uninitialized is harmless *)
      in
      scan (idx - 1)

and find_param_index scope v =
  let rec go i = function
    | [] -> None
    | p :: rest -> if String.equal p v then Some i else go (i + 1) rest
  in
  go 0 scope.sc_params

and resolve_param st ~visited ~depth scope pi : Rips_taint.t =
  match scope.sc_fname with
  | None -> Rips_taint.clean
  | Some fname ->
      let key = Printf.sprintf "p:%d:%d" scope.sc_id pi in
      if Visited.mem key visited then Rips_taint.clean
      else
        let visited = Visited.add key visited in
        (* every call site of [fname], in any scope of this file *)
        let acc = ref Rips_taint.clean in
        List.iter
          (fun caller ->
            Array.iteri
              (fun j ev ->
                match ev with
                | Ev_call (callee, args, _) when String.equal callee fname -> (
                    match List.nth_opt args pi with
                    | Some arg ->
                        acc :=
                          Rips_taint.join !acc
                            (resolve st ~visited ~depth:(depth + 1) caller j arg)
                    | None -> ())
                | _ -> ())
              caller.sc_events)
          st.scopes;
        !acc

and resolve_call st ~visited ~depth scope idx fname args pos : Rips_taint.t =
  let resolve_arg a = resolve st ~visited ~depth:(depth + 1) scope idx a in
  let arg0 () =
    match args with a :: _ -> resolve_arg a | [] -> Rips_taint.clean
  in
  let fname_lc = String.lowercase_ascii fname in
  match Rips_config.builtin fname_lc with
  | Some (Rips_config.Source (kinds, src)) -> Rips_taint.of_source kinds src pos
  | Some (Rips_config.Sanitizer kinds) -> Rips_taint.sanitize kinds (arg0 ())
  | Some Rips_config.Revert -> Rips_taint.revert (arg0 ())
  | Some Rips_config.Passthrough -> arg0 ()
  | Some Rips_config.Join_args -> Rips_taint.join_all (List.map resolve_arg args)
  | None -> (
      match Hashtbl.find_opt st.funcs fname_lc with
      | Some callee_id ->
          (* user function: resolve its return expressions with this call's
             arguments bound to the parameters *)
          let key = Printf.sprintf "r:%d:%s" scope.sc_id fname_lc in
          if Visited.mem key visited then Rips_taint.clean
          else
            let visited = Visited.add key visited in
            let callee = scope_by_id st callee_id in
            let acc = ref Rips_taint.clean in
            Array.iteri
              (fun j ev ->
                match ev with
                | Ev_return (Some rexpr, _) ->
                    let t =
                      resolve_with_binding st ~visited ~depth:(depth + 1)
                        ~binding:(callee, scope, idx, args) callee j rexpr
                    in
                    acc := Rips_taint.join !acc t
                | _ -> ())
              callee.sc_events;
            !acc
      | None ->
          (* unknown (framework) function: conservatively taint-preserving —
             RIPS has no WordPress profile *)
          Rips_taint.join_all (List.map resolve_arg args))

(* Resolution inside a callee with parameters bound to call-site arguments:
   a parameter that has no local redefinition resolves to the argument at the
   recorded call site instead of to "all callers". *)
and resolve_with_binding st ~visited ~depth ~binding callee j rexpr =
  let callee_scope, caller_scope, caller_idx, args = binding in
  let rec subst_resolve scope idx (e : A.expr) =
    match e.A.e with
    | A.Var v
      when scope.sc_id = callee_scope.sc_id
           && find_param_index callee_scope v <> None
           && not (locally_defined scope idx v) -> (
        match find_param_index callee_scope v with
        | Some pi -> (
            match List.nth_opt args pi with
            | Some arg ->
                resolve st ~visited ~depth:(depth + 1) caller_scope caller_idx arg
            | None -> Rips_taint.clean)
        | None -> Rips_taint.clean)
    | A.Bin ((A.Concat | A.Coalesce), x, y) ->
        Rips_taint.join (subst_resolve scope idx x) (subst_resolve scope idx y)
    | A.Interp parts ->
        Rips_taint.join_all
          (List.map
             (function
               | A.ILit _ -> Rips_taint.clean
               | A.IExpr x -> subst_resolve scope idx x)
             parts)
    | A.Call (fname, cargs) ->
        (* builtins keep their semantics with substituted arguments *)
        let fname_lc = String.lowercase_ascii fname in
        let sub0 () =
          match cargs with
          | a :: _ -> subst_resolve scope idx a
          | [] -> Rips_taint.clean
        in
        (match Rips_config.builtin fname_lc with
        | Some (Rips_config.Source (kinds, src)) ->
            Rips_taint.of_source kinds src e.A.epos
        | Some (Rips_config.Sanitizer kinds) -> Rips_taint.sanitize kinds (sub0 ())
        | Some Rips_config.Revert -> Rips_taint.revert (sub0 ())
        | Some Rips_config.Passthrough -> sub0 ()
        | Some Rips_config.Join_args ->
            Rips_taint.join_all (List.map (subst_resolve scope idx) cargs)
        | None ->
            Rips_taint.join_all (List.map (subst_resolve scope idx) cargs))
    | _ -> resolve st ~visited ~depth:(depth + 1) scope idx e
  and locally_defined scope idx v =
    let rec scan j =
      if j < 0 then false
      else
        match scope.sc_events.(j) with
        | Ev_assign (v', _, _, _) when String.equal v v' -> true
        | Ev_foreach (v', _, _) when String.equal v v' -> true
        | _ -> scan (j - 1)
    in
    scan (idx - 1)
  in
  subst_resolve callee j rexpr

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let name = "RIPS"

let analyze_file_exn ~file source :
    Report.finding list * Report.file_outcome * int =
  match Phplang.Project.parse_file { Phplang.Project.path = file; source } with
  | Error (Phplang.Project.Syntax msg) ->
      (* RIPS is robust: a parse problem is reported but does not abort *)
      ([], Report.fail (Report.Parse_failure msg), 1)
  | Error (Phplang.Project.Over_budget msg) ->
      ([], Report.fail (Report.Budget_exhausted msg), 1)
  | Ok prog ->
      let st = Obs.span "rips.model" (fun () -> build_fstate ~file prog) in
      let findings =
        Obs.span "rips.analysis" @@ fun () ->
        List.filter_map
          (fun so ->
            let scope = scope_by_id st so.so_scope in
            st.work <- 0;
            let t =
              resolve st ~visited:Visited.empty ~depth:0 scope so.so_index
                so.so_expr
            in
            if Rips_taint.is_tainted so.so_kind t then
              let source =
                Option.value t.Rips_taint.source ~default:Vuln.Unknown_source
              in
              let source_pos =
                Option.value t.Rips_taint.source_pos ~default:A.dummy_pos
              in
              Some
                {
                  Report.kind = so.so_kind;
                  sink_pos = so.so_pos;
                  sink = so.so_sink;
                  variable = Analyzer_names.name_of_expr so.so_expr;
                  source;
                  source_pos;
                  trace =
                    [ { Report.step_var = Vuln.source_to_string source;
                        step_pos = source_pos;
                        step_note = "tainted source (backward-resolved)" } ];
                  context = None;
                  sanitizers_applied = [];
                  trace_truncated = false;
                }
            else None)
          st.sinks
      in
      (findings, Report.Analyzed, 0)

(* Crash barrier: any exception escaping the backward resolution (a
   resolver bug, stack exhaustion, ...) fails this file only. *)
let analyze_file ~file source =
  match analyze_file_exn ~file source with
  | result -> result
  | exception (Secflow.Deadline.Exceeded as e) ->
      (* cooperative cancellation is not a crash: let it reach the
         scheduler so the whole request becomes [Cancelled] *)
      raise e
  | exception exn ->
      Obs.incr "rips.files.crashed";
      ([], Report.fail (Report.Crashed (Printexc.to_string exn)), 1)

(* Per-file result-cache fingerprint: RIPS has no runtime configuration;
   of the process-global {!Budget} it only (indirectly) consults the
   parser nesting fuel.  The sink work budget is a compile-time constant,
   covered by {!Phplang.Store.format_version}. *)
let cache_fingerprint () =
  Phplang.Digest.combine
    [ name; string_of_int (Budget.get ()).Budget.parse_depth ]

let analyze_project (project : Phplang.Project.t) : Report.result =
  Cache.file_loop ~tool:name ~fingerprint:(cache_fingerprint ())
    ~dedup:(`By_key "rips.findings")
    ~analyze:(fun (f : Phplang.Project.file) ->
      analyze_file ~file:f.Phplang.Project.path f.Phplang.Project.source)
    project
