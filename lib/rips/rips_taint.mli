(** RIPS taint values: per-kind flags plus revert bookkeeping.  Simpler than
    phpSAFE's {!Phpsafe.Taint} — the backward analysis resolves parameters
    by walking to call sites instead of carrying dependency sets. *)

open Secflow

module Kset : Set.S with type elt = Vuln.kind

type t = {
  live : Kset.t;
  was : Kset.t;
  source : Vuln.source option;
  source_pos : Phplang.Ast.pos option;
}

val clean : t
val of_source : Vuln.kind list -> Vuln.source -> Phplang.Ast.pos -> t
val is_tainted : Vuln.kind -> t -> bool
val any : t -> bool
val join : t -> t -> t
val join_all : t list -> t
val sanitize : Vuln.kind list -> t -> t
val revert : t -> t
