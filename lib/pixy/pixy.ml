(** Public facade for the Pixy-like baseline analyzer. *)

module Config = Pixy_config
module Taint = Pixy_taint
module Cfg = Dataflow.Cfg
module Analyzer = Pixy_analyzer

let analyze_project = Pixy_analyzer.analyze_project

let analyze_source ~file source =
  analyze_project
    (Phplang.Project.make ~name:file [ { Phplang.Project.path = file; source } ])

let tool : Secflow.Tool.t =
  { Secflow.Tool.name = "Pixy"; analyze_project }
