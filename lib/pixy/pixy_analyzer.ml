(** Pixy-like analyzer: flow-sensitive, intra- and inter-procedural forward
    data-flow analysis over a CFG of basic blocks (paper §II, after
    Jovanovic et al., S&P'06).

    Behavioural model, per the paper's characterisation:
    - {b no OOP}: any file containing object-oriented constructs fails with
      an error message ("Pixy failed to complete the analysis on 32 files...
      probably because it is an old tool and does not recognize OOP code",
      §V.E);
    - {b register_globals = 1} is assumed, so possibly-uninitialized
      variables in the global scope count as attacker-controlled ("half of
      the vulnerabilities it found were due to this directive", §V.A);
    - per-file analysis, no include resolution;
    - functions are analyzed {e only when called} — "although phpSAFE and
      RIPS are able to detect vulnerabilities in functions that are not
      called from the plugin code, Pixy is unable to do so" (§V.A);
    - 2007-era knowledge: classic sanitizers only, no WordPress profile, no
      revert modelling. *)

open Secflow
module A = Phplang.Ast
module T = Pixy_taint
module Cfg = Dataflow.Cfg

(* ------------------------------------------------------------------ *)
(* OOP detection                                                      *)
(* ------------------------------------------------------------------ *)

exception Oop of string

let rec oop_expr (e : A.expr) =
  match e.A.e with
  | A.MethodCall _ -> raise (Oop "method call")
  | A.New _ -> raise (Oop "object instantiation")
  | A.Prop _ -> raise (Oop "property access")
  | A.StaticCall _ | A.StaticProp _ | A.ClassConst _ ->
      raise (Oop "static member access")
  | A.Assign (l, r) | A.AssignRef (l, r) | A.OpAssign (_, l, r)
  | A.Bin (_, l, r) ->
      oop_expr l;
      oop_expr r
  | A.Un (_, x) | A.CastE (_, x) | A.EmptyE x | A.PrintE x
  | A.IncludeE (_, x) ->
      oop_expr x
  | A.Ternary (c, t, e2) ->
      oop_expr c;
      Option.iter oop_expr t;
      oop_expr e2
  | A.ArrayGet (b, i) ->
      oop_expr b;
      Option.iter oop_expr i
  | A.ArrayLit items ->
      List.iter
        (fun (k, v) ->
          Option.iter oop_expr k;
          oop_expr v)
        items
  | A.Call (_, args) -> List.iter oop_expr args
  | A.Isset es -> List.iter oop_expr es
  | A.Exit x -> Option.iter oop_expr x
  | A.Interp parts ->
      List.iter (function A.IExpr x -> oop_expr x | A.ILit _ -> ()) parts
  | A.Closure c -> List.iter oop_stmt c.A.cl_body
  | A.ListAssign (slots, rhs) ->
      List.iter (Option.iter oop_expr) slots;
      oop_expr rhs
  | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Var _
  | A.Const _ ->
      ()

and oop_stmt (s : A.stmt) =
  match s.A.s with
  | A.ClassDef _ -> raise (Oop "class declaration")
  | A.Expr e | A.Throw e -> oop_expr e
  | A.Echo es | A.Unset es -> List.iter oop_expr es
  | A.If (branches, els) ->
      List.iter
        (fun (c, b) ->
          oop_expr c;
          List.iter oop_stmt b)
        branches;
      Option.iter (List.iter oop_stmt) els
  | A.While (c, b) ->
      oop_expr c;
      List.iter oop_stmt b
  | A.DoWhile (b, c) ->
      List.iter oop_stmt b;
      oop_expr c
  | A.For (i, c, u, b) ->
      List.iter oop_expr i;
      List.iter oop_expr c;
      List.iter oop_expr u;
      List.iter oop_stmt b
  | A.Foreach (subject, binding, b) ->
      oop_expr subject;
      (match binding with
      | A.ForeachValue v -> oop_expr v
      | A.ForeachKeyValue (k, v) ->
          oop_expr k;
          oop_expr v);
      List.iter oop_stmt b
  | A.Switch (subject, cases) ->
      oop_expr subject;
      List.iter (fun (c : A.case) -> List.iter oop_stmt c.A.case_body) cases
  | A.Return e -> Option.iter oop_expr e
  | A.StaticVar vars -> List.iter (fun (_, d) -> Option.iter oop_expr d) vars
  | A.Block b -> List.iter oop_stmt b
  | A.FuncDef f -> List.iter oop_stmt f.A.f_body
  | A.TryCatch (b, catches) ->
      List.iter oop_stmt b;
      List.iter (fun (c : A.catch) -> List.iter oop_stmt c.A.catch_body) catches
  | A.InlineHtml _ | A.Nop | A.Break | A.Continue | A.Global _ -> ()

(* ------------------------------------------------------------------ *)
(* Analysis context                                                   *)
(* ------------------------------------------------------------------ *)

type fctx = {
  file : string;
  funcs : (string, A.func) Hashtbl.t;
  mutable findings : Report.finding list;
  mutable seen : Report.Key_set.t;
  memo : (string, T.taint) Hashtbl.t;
      (** return taint per (function, argument-taint signature) *)
  mutable in_progress : string list;
  mutable over_budget : bool;
      (** a dataflow fixpoint hit the pass budget before converging — the
          states computed so far are kept (over-approximate result) but the
          file is reported as budget-exhausted *)
}

let max_inline_depth = 8

let report fx ~kind ~pos ~sink_name ~var (t : T.taint) =
  let key =
    { Report.k_kind = kind; k_file = pos.A.file; k_line = pos.A.line }
  in
  if not (Report.Key_set.mem key fx.seen) then begin
    fx.seen <- Report.Key_set.add key fx.seen;
    let source = Option.value t.T.source ~default:Vuln.Unknown_source in
    let source_pos = Option.value t.T.spos ~default:A.dummy_pos in
    fx.findings <-
      { Report.kind; sink_pos = pos; sink = sink_name; variable = var;
        source; source_pos;
        trace =
          [ { Report.step_var = Vuln.source_to_string source;
              step_pos = source_pos;
              step_note = "tainted on some program path" } ];
        context = None; sanitizers_applied = []; trace_truncated = false }
      :: fx.findings
  end

let rec name_of (e : A.expr) =
  match e.A.e with
  | A.Var v -> v
  | A.ArrayGet (b, _) -> name_of b ^ "[...]"
  | A.Call (f, _) -> f ^ "()"
  | A.Interp _ -> "<string>"
  | A.Bin (A.Concat, _, _) -> "<concat>"
  | _ -> "<expr>"

(* ------------------------------------------------------------------ *)
(* Transfer function                                                  *)
(* ------------------------------------------------------------------ *)

type scope = {
  fx : fctx;
  global_scope : bool;
  depth : int;
  returns : T.taint ref;  (** accumulated return taint of this scope *)
}

let rec eval sc (st : T.state) (e : A.expr) : T.state * T.taint =
  let pos = e.A.epos in
  match e.A.e with
  | A.Null | A.True | A.False | A.Int _ | A.Float _ | A.Str _ | A.Const _
  | A.ClassConst _ ->
      (st, T.clean)
  | A.Interp parts ->
      List.fold_left
        (fun (st, acc) part ->
          match part with
          | A.ILit _ -> (st, acc)
          | A.IExpr x ->
              let st, t = eval sc st x in
              (st, T.join acc t))
        (st, T.clean) parts
  | A.Var v ->
      if Pixy_config.is_superglobal v then
        (st, T.of_source [ Vuln.Xss; Vuln.Sqli ] (Vuln.Superglobal v) pos)
      else (st, T.read ~global_scope:sc.global_scope st v pos)
  | A.ArrayGet (b, i) ->
      let st =
        match i with
        | Some i ->
            let st, _ = eval sc st i in
            st
        | None -> st
      in
      eval sc st b
  | A.Prop (b, _) -> eval sc st b  (* unreachable: OOP files fail earlier *)
  | A.StaticProp _ | A.MethodCall _ | A.StaticCall _ | A.New _ -> (st, T.clean)
  | A.Assign (lhs, rhs) | A.AssignRef (lhs, rhs) ->
      let st, t = eval sc st rhs in
      (assign sc st lhs t, t)
  | A.ListAssign (slots, rhs) ->
      let st, t = eval sc st rhs in
      let st =
        List.fold_left
          (fun st slot ->
            match slot with Some lv -> assign sc st lv t | None -> st)
          st slots
      in
      (st, t)
  | A.OpAssign (op, lhs, rhs) ->
      let st, old = eval sc st lhs in
      let st, rt = eval sc st rhs in
      let t = match op with A.Concat -> T.join old rt | _ -> T.clean in
      (assign sc st lhs t, t)
  (* ?? yields one operand's value, so both sides contribute taint *)
  | A.Bin ((A.Concat | A.Coalesce), x, y) ->
      let st, tx = eval sc st x in
      let st, ty = eval sc st y in
      (st, T.join tx ty)
  | A.Bin (_, x, y) ->
      let st, _ = eval sc st x in
      let st, _ = eval sc st y in
      (st, T.clean)
  | A.Un (A.Silence, x) -> eval sc st x
  | A.Un (_, x) ->
      let st, _ = eval sc st x in
      (st, T.clean)
  | A.Ternary (c, thn, els) ->
      let st, ct = eval sc st c in
      let st, tt =
        match thn with Some t -> eval sc st t | None -> (st, ct)
      in
      let st, et = eval sc st els in
      (st, T.join tt et)
  | A.CastE ((A.CastInt | A.CastFloat | A.CastBool), x) ->
      let st, _ = eval sc st x in
      (st, T.clean)
  | A.CastE ((A.CastString | A.CastArray), x) -> eval sc st x
  | A.Isset es ->
      let st =
        List.fold_left
          (fun st e ->
            let st, _ = eval sc st e in
            st)
          st es
      in
      (st, T.clean)
  | A.EmptyE x ->
      let st, _ = eval sc st x in
      (st, T.clean)
  | A.PrintE x ->
      let st, t = eval sc st x in
      report sc.fx ~kind:Vuln.Xss ~pos ~sink_name:"print" ~var:(name_of x) t;
      (st, T.clean)
  | A.Exit (Some x) ->
      let st, t = eval sc st x in
      report sc.fx ~kind:Vuln.Xss ~pos ~sink_name:"exit" ~var:(name_of x) t;
      (st, T.clean)
  | A.Exit None -> (st, T.clean)
  | A.IncludeE (_, x) ->
      let st, _ = eval sc st x in
      (st, T.clean)  (* Pixy does not resolve includes *)
  | A.Closure _ -> (st, T.clean)
  | A.ArrayLit items ->
      List.fold_left
        (fun (st, acc) (k, v) ->
          let st =
            match k with
            | Some k ->
                let st, _ = eval sc st k in
                st
            | None -> st
          in
          let st, t = eval sc st v in
          (st, T.join acc t))
        (st, T.clean) items
  | A.Call (fname, args) -> eval_call sc st fname args pos

and report_if_tainted sc ~kind ~pos ~sink_name arg t =
  if T.is_tainted kind t then
    report sc.fx ~kind ~pos ~sink_name ~var:(name_of arg) t
  else
    (* register_globals makes everything possibly tainted only in the global
       scope; nothing to do otherwise *)
    ()

and eval_call sc st fname args pos : T.state * T.taint =
  let fname_lc = String.lowercase_ascii fname in
  (* evaluate arguments left to right *)
  let st, arg_ts =
    List.fold_left
      (fun (st, acc) a ->
        let st, t = eval sc st a in
        (st, t :: acc))
      (st, []) args
  in
  let arg_ts = List.rev arg_ts in
  let arg0 () = match arg_ts with t :: _ -> t | [] -> T.clean in
  (* sinks *)
  if List.mem fname_lc Pixy_config.xss_sink_functions then
    List.iter2
      (fun a t -> report_if_tainted sc ~kind:Vuln.Xss ~pos ~sink_name:fname a t)
      args arg_ts;
  if List.mem fname_lc Pixy_config.sqli_sink_functions then (
    match (args, arg_ts) with
    | a :: _, t :: _ ->
        report_if_tainted sc ~kind:Vuln.Sqli ~pos ~sink_name:fname a t
    | _ -> ());
  match Pixy_config.builtin fname_lc with
  | Some (Pixy_config.Source (kinds, src)) -> (st, T.of_source kinds src pos)
  | Some (Pixy_config.Sanitizer kinds) -> (st, T.sanitize kinds (arg0 ()))
  | Some Pixy_config.Passthrough -> (st, arg0 ())
  | Some Pixy_config.Join_args -> (st, T.join_all arg_ts)
  | None -> (
      match Hashtbl.find_opt sc.fx.funcs fname_lc with
      | Some f when sc.depth < max_inline_depth ->
          (st, call_function sc fname_lc f arg_ts)
      | Some _ -> (st, T.clean)
      | None ->
          (* unknown (framework) function: pessimistic, taint-preserving *)
          (st, T.join_all arg_ts))

(* Inline inter-procedural analysis: run the callee's CFG with the
   arguments' taint bound to the parameters, memoized per taint signature. *)
and call_function sc fname (f : A.func) (arg_ts : T.taint list) : T.taint =
  let signature =
    fname ^ ":"
    ^ String.concat ""
        (List.map (fun t -> if t.T.xss then "x" else if t.T.sqli then "s" else "-") arg_ts)
  in
  match Hashtbl.find_opt sc.fx.memo signature with
  | Some t -> t
  | None ->
      if List.mem signature sc.fx.in_progress then T.clean
      else begin
        sc.fx.in_progress <- signature :: sc.fx.in_progress;
        let init =
          List.fold_left
            (fun st (i, (p : A.param)) ->
              let t = List.nth_opt arg_ts i |> Option.value ~default:T.clean in
              T.write st p.A.p_name t)
            T.empty_state
            (List.mapi (fun i p -> (i, p)) f.A.f_params)
        in
        let returns = ref T.clean in
        let sub =
          { fx = sc.fx; global_scope = false; depth = sc.depth + 1; returns }
        in
        ignore (run_dataflow sub f.A.f_body init);
        sc.fx.in_progress <-
          List.filter (fun s -> not (String.equal s signature)) sc.fx.in_progress;
        Hashtbl.replace sc.fx.memo signature !returns;
        !returns
      end

and assign sc (st : T.state) (lhs : A.expr) (t : T.taint) : T.state =
  match lhs.A.e with
  | A.Var v -> T.write st v t
  | A.ArrayGet (b, i) ->
      let st =
        match i with
        | Some i ->
            let st, _ = eval sc st i in
            st
        | None -> st
      in
      assign_join sc st b t
  | _ -> st

and assign_join sc st (lhs : A.expr) t =
  match lhs.A.e with
  | A.Var v -> T.write_join st v t
  | A.ArrayGet (b, _) -> assign_join sc st b t
  | _ -> st

and exec_stmt sc (st : T.state) (s : A.stmt) : T.state =
  match s.A.s with
  | A.Expr e ->
      let st, _ = eval sc st e in
      st
  | A.Echo es ->
      List.fold_left
        (fun st e ->
          let st, t = eval sc st e in
          report_if_tainted sc ~kind:Vuln.Xss ~pos:e.A.epos ~sink_name:"echo" e t;
          st)
        st es
  | A.Foreach (subject, binding, []) ->
      let st, t = eval sc st subject in
      let st =
        match binding with
        | A.ForeachValue v -> assign sc st v t
        | A.ForeachKeyValue (k, v) -> assign sc (assign sc st k t) v t
      in
      st
  | A.Global names ->
      (* globals exist after startup: not register_globals candidates *)
      List.fold_left
        (fun st v ->
          match T.VMap.find_opt v st with
          | Some _ -> st
          | None -> T.write st v T.clean)
        st names
  | A.StaticVar vars ->
      List.fold_left
        (fun st (v, init) ->
          let st, t =
            match init with
            | Some e -> eval sc st e
            | None -> (st, T.clean)
          in
          T.write st v t)
        st vars
  | A.Unset es ->
      List.fold_left
        (fun st e ->
          match e.A.e with A.Var v -> T.write st v T.clean | _ -> st)
        st es
  | A.Return e ->
      let st, t =
        match e with Some e -> eval sc st e | None -> (st, T.clean)
      in
      sc.returns := T.join !(sc.returns) t;
      st
  | A.Throw e ->
      let st, _ = eval sc st e in
      st
  | _ -> st  (* structure handled by the CFG; declarations skipped *)

(* ------------------------------------------------------------------ *)
(* Worklist solver — Pixy's taint as a config of the shared engine    *)
(* ------------------------------------------------------------------ *)

and run_dataflow sc (stmts : A.stmt list) (init : T.state) : T.state =
  let cfg = Cfg.build stmts in
  let res =
    Dataflow.Fixpoint.solve ~check:Secflow.Deadline.check
      {
        Dataflow.Fixpoint.init;
        bottom = T.empty_state;
        join = T.join_state ~global_scope:sc.global_scope;
        equal = T.equal_state;
        transfer = exec_stmt sc;
        max_passes = (Budget.get ()).Budget.fixpoint_passes;
      }
      cfg
  in
  Obs.add "pixy.fixpoint.passes" res.Dataflow.Fixpoint.passes;
  if not res.Dataflow.Fixpoint.converged then begin
    (* the pass budget ran out before a fixpoint: the last states stand as
       an over-approximation, and the file is flagged instead of looping *)
    sc.fx.over_budget <- true;
    Obs.incr "pixy.fixpoint.exhausted"
  end;
  res.Dataflow.Fixpoint.exit_state

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let rec collect_funcs tbl (stmts : A.stmt list) =
  List.iter
    (fun (s : A.stmt) ->
      match s.A.s with
      | A.FuncDef f ->
          let key = String.lowercase_ascii f.A.f_name in
          if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key f;
          collect_funcs tbl f.A.f_body
      | A.If (branches, els) ->
          List.iter (fun (_, b) -> collect_funcs tbl b) branches;
          Option.iter (collect_funcs tbl) els
      | A.While (_, b) | A.DoWhile (b, _) | A.Foreach (_, _, b) | A.Block b
      | A.For (_, _, _, b) ->
          collect_funcs tbl b
      | A.Switch (_, cases) ->
          List.iter (fun (c : A.case) -> collect_funcs tbl c.A.case_body) cases
      | A.TryCatch (b, catches) ->
          collect_funcs tbl b;
          List.iter (fun (c : A.catch) -> collect_funcs tbl c.A.catch_body) catches
      | _ -> ())
    stmts

let analyze_file_exn ~file source :
    Report.finding list * Report.file_outcome * int =
  match Phplang.Project.parse_file { Phplang.Project.path = file; source } with
  | Error (Phplang.Project.Syntax msg) ->
      ([], Report.fail (Report.Parse_failure msg), 1)
  | Error (Phplang.Project.Over_budget msg) ->
      ([], Report.fail (Report.Budget_exhausted msg), 1)
  | Ok prog -> (
      (* model stage: the OOP gate plus the callable registry *)
      match
        Obs.span "pixy.model" (fun () ->
            List.iter oop_stmt prog;
            let funcs = Hashtbl.create 16 in
            collect_funcs funcs prog;
            funcs)
      with
      | exception Oop what ->
          ([], Report.fail (Report.Unsupported_syntax what), 1)
      | funcs ->
          let fx =
            { file; funcs; findings = []; seen = Report.Key_set.empty;
              memo = Hashtbl.create 32; in_progress = []; over_budget = false }
          in
          let sc =
            { fx; global_scope = true; depth = 0; returns = ref T.clean }
          in
          Obs.span "pixy.analysis" (fun () ->
              ignore (run_dataflow sc prog T.empty_state));
          if fx.over_budget then
            ( List.rev fx.findings,
              Report.fail
                (Report.Budget_exhausted
                   "dataflow fixpoint pass budget exhausted"),
              1 )
          else (List.rev fx.findings, Report.Analyzed, 0))

(* Crash barrier: any exception escaping the solver or the evaluator fails
   this file only, never the project run. *)
let analyze_file ~file source =
  match analyze_file_exn ~file source with
  | result -> result
  | exception (Secflow.Deadline.Exceeded as e) ->
      (* cooperative cancellation is not a crash: let it reach the
         scheduler so the whole request becomes [Cancelled] *)
      raise e
  | exception exn ->
      Obs.incr "pixy.files.crashed";
      ([], Report.fail (Report.Crashed (Printexc.to_string exn)), 1)

(* Per-file result-cache fingerprint: Pixy consults the parser nesting
   fuel and the dataflow fixpoint pass cap; the include caps are
   irrelevant (it never resolves includes), so [--budget-include-*]
   leaves Pixy entries valid. *)
let cache_fingerprint () =
  let b = Budget.get () in
  Phplang.Digest.combine
    [ "Pixy";
      string_of_int b.Budget.parse_depth;
      string_of_int b.Budget.fixpoint_passes ]

let analyze_project (project : Phplang.Project.t) : Report.result =
  Cache.file_loop ~tool:"Pixy" ~fingerprint:(cache_fingerprint ()) ~dedup:`None
    ~analyze:(fun (f : Phplang.Project.file) ->
      analyze_file ~file:f.Phplang.Project.path f.Phplang.Project.source)
    project
