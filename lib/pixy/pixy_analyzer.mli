(** Pixy-like analyzer: flow-sensitive forward dataflow over a CFG of basic
    blocks (paper §II, after Jovanovic et al., S&P'06), with
    register_globals modelling, per-file analysis, called-functions-only
    inter-procedural inlining — and hard failure on any OOP construct.
    See the implementation header for the full behavioural model. *)

exception Oop of string
(** Raised internally when an OOP construct is encountered. *)

val max_inline_depth : int
(** The fixpoint pass cap moved to [Secflow.Budget.fixpoint_passes];
    exhausting it degrades the file to an over-approximate result reported
    as [Failed (Budget_exhausted _)] instead of iterating further. *)

val analyze_file :
  file:string ->
  string ->
  Secflow.Report.finding list * Secflow.Report.file_outcome * int
(** Analyze one file: findings, outcome (failed with an error message when
    the file uses OOP), error count. *)

val analyze_project : Phplang.Project.t -> Secflow.Report.result
