(** Pixy's taint lattice and abstract state: a flow-sensitive map from
    variable names to taint values, joined at control-flow merge points.
    There is no revert bookkeeping (2007-era tool).

    register_globals: a variable read in the {e global scope} with no prior
    assignment on some path may have been seeded from the request, so it is
    treated as attacker-controlled (paper §V.A). *)

open Secflow

type taint = {
  xss : bool;
  sqli : bool;
  source : Vuln.source option;
  spos : Phplang.Ast.pos option;
}

let clean = { xss = false; sqli = false; source = None; spos = None }

let of_source kinds source pos =
  { xss = List.mem Vuln.Xss kinds;
    sqli = List.mem Vuln.Sqli kinds;
    source = Some source;
    spos = Some pos }

let uninitialized v pos =
  of_source [ Vuln.Xss; Vuln.Sqli ] (Pixy_config.uninitialized_source v) pos

(* Pixy's 2007 taxonomy stops at XSS and SQLi: every newer kind is
   permanently clean (the paper-fidelity gap the E16 evaluation measures). *)
let is_tainted kind t =
  match kind with
  | Vuln.Xss -> t.xss
  | Vuln.Sqli -> t.sqli
  | Vuln.Cmdi | Vuln.Path_traversal | Vuln.Ssrf | Vuln.Second_order_sqli ->
      false

let join a b =
  { xss = a.xss || b.xss;
    sqli = a.sqli || b.sqli;
    source = (match a.source with Some _ -> a.source | None -> b.source);
    spos = (match a.source with Some _ -> a.spos | None -> b.spos) }

let join_all = List.fold_left join clean

let sanitize kinds t =
  List.fold_left
    (fun t k ->
      match k with
      | Vuln.Xss -> { t with xss = false }
      | Vuln.Sqli -> { t with sqli = false }
      | Vuln.Cmdi | Vuln.Path_traversal | Vuln.Ssrf | Vuln.Second_order_sqli
        ->
          t)
    t kinds

(* -- abstract state -------------------------------------------------- *)

module VMap = Map.Make (String)

type state = taint VMap.t
(** a variable absent from the map has never been assigned *)

let empty_state : state = VMap.empty

(** Read with register_globals semantics: in the global scope, an unassigned
    variable is attacker-controllable. *)
let read ~global_scope (st : state) v pos =
  match VMap.find_opt v st with
  | Some t -> t
  | None -> if global_scope then uninitialized v pos else clean

let write (st : state) v t : state = VMap.add v t st
let write_join (st : state) v t : state =
  VMap.add v (match VMap.find_opt v st with Some old -> join old t | None -> t) st

(** Merge-point join: a variable assigned on only one incoming path is still
    possibly uninitialized, which keeps the register_globals signal. *)
let join_state ~global_scope (a : state) (b : state) : state =
  VMap.merge
    (fun v ta tb ->
      match (ta, tb) with
      | Some ta, Some tb -> Some (join ta tb)
      | Some t, None | None, Some t ->
          if global_scope then
            Some (join t (uninitialized v Phplang.Ast.dummy_pos))
          else Some t
      | None, None -> None)
    a b

(** Convergence test; sources are ignored so the fixpoint terminates on the
    boolean lattice. *)
let equal_state (a : state) (b : state) =
  VMap.equal (fun x y -> x.xss = y.xss && x.sqli = y.sqli) a b
