(** Catalog of seeded code patterns.

    Each builder returns PHP statements plus a ground-truth label.  The sink
    line always carries the unique marker [m_<id>] inside a string literal,
    so {!Gt.line_of_needle} can recover the exact line after printing.

    Real-vulnerability shapes come straight from the paper:
    - [$wpdb->get_results] rows echoed without filtering (§III.E,
      mail-subscribe-list 2.1.1);
    - [$_POST['img_path']] echoed (§V.C, wp-symposium);
    - database value echoed after [stripslashes] (§V.C, wp-photo-album-plus);
    - [fgets] result echoed (§V.C, qtranslate).

    Trap shapes encode the documented imprecision of each tool:
    path-insensitive numeric guards (everybody), unknown WordPress sanitizers
    (RIPS/Pixy), revert-function pessimism (phpSAFE/RIPS), and unresolved
    includes under register_globals (Pixy). *)

open Secflow
open Dsl

type piece = {
  stmts : Phplang.Ast.stmt list;  (** placed in the instance's file *)
  defaults : Phplang.Ast.stmt list;
      (** placed in the plugin's defaults file (uninit traps) *)
  label : Gt.label;
}

let vuln ?(oop = false) kind vector =
  Gt.Real_vuln { kind; vector; oop_wordpress = oop }

let trap kind why = Gt.Fp_trap { kind; why }

(* marker inside an HTML attribute on the sink line *)
let mk id = Gt.marker id
let open_tag id tag = Printf.sprintf "<%s class=\"%s\">" tag (mk id)
let close_tag tag = Printf.sprintf "</%s>" tag

let source_of_vector rng vector =
  match vector with
  | Vuln.Get -> get (Prng.pick rng [ "id"; "page"; "tab"; "q"; "ref"; "item" ])
  | Vuln.Post ->
      post (Prng.pick rng [ "img_path"; "title"; "comment"; "email"; "name" ])
  | Vuln.Post_get_cookie ->
      if Prng.bool rng then request (Prng.pick rng [ "lang"; "mode"; "view" ])
      else cookie (Prng.pick rng [ "session_pref"; "track"; "theme" ])
  | Vuln.Db | Vuln.File_function_array ->
      invalid_arg "source_of_vector: use the dedicated db/file patterns"

let no_defaults stmts label = { stmts; defaults = []; label }

(* ------------------------------------------------------------------ *)
(* Real vulnerabilities — procedural                                  *)
(* ------------------------------------------------------------------ *)

(** Superglobal flows straight (or through benign transforms) to [echo] —
    the wp-symposium §V.C shape. *)
let direct_echo ~id ~rng ~vector =
  let x = v ("$val_" ^ id) in
  let src = source_of_vector rng vector in
  let stmts =
    match Prng.int rng 6 with
    | 0 ->
        [ expr (assign x src);
          echo1 (concat3 (s (open_tag id "p")) x (s (close_tag "p"))) ]
    | 1 ->
        [ expr (assign x (call "trim" [ src ]));
          expr (concat_assign x (s "!"));
          echo1 (concat (s (open_tag id "em")) x) ]
    | 2 ->
        [ expr (assign x (ternary (isset [ src ]) src (s "default")));
          echo1 (interp [ `L (open_tag id "div"); `E x; `L (close_tag "div") ]) ]
    | 3 ->
        [ expr (assign x src);
          expr (call "printf" [ s ("%s " ^ open_tag id "span"); x ]) ]
    | 4 ->
        (* taint through str_replace, which every tool joins over *)
        [ expr (assign x (call "str_replace" [ s "-"; s "_"; src ]));
          echo1 (concat3 (s (open_tag id "td")) x (s (close_tag "td"))) ]
    | _ ->
        let y = v ("$html_" ^ id) in
        [ expr (assign x src);
          expr (assign y (concat x (s (close_tag "ul"))));
          echo1 (concat (s (open_tag id "ul")) y) ]
  in
  no_defaults stmts (vuln Vuln.Xss vector)

(** Database row fetched with the procedural [mysql_*] API and echoed. *)
let db_proc_echo ~id ~rng =
  let res = v ("$res_" ^ id) and row = v ("$row_" ^ id) in
  let col = Prng.pick rng [ "name"; "excerpt"; "author"; "body" ] in
  let stmts =
    match Prng.int rng 3 with
    | 0 ->
        [ expr (assign res (call "mysql_query" [ s ("SELECT " ^ col ^ " FROM entries") ]));
          expr (assign row (call "mysql_fetch_assoc" [ res ]));
          echo1 (concat3 (s (open_tag id "td")) (idx row (s col)) (s (close_tag "td"))) ]
    | 1 ->
        [ expr (assign res (call "mysql_query" [ s ("SELECT " ^ col ^ " FROM log") ]));
          expr (assign row (call "mysql_result" [ res; i 0 ]));
          echo1 (concat (s (open_tag id "li")) row) ]
    | _ ->
        [ expr (assign res (call "mysql_query" [ s ("SELECT " ^ col ^ " FROM meta") ]));
          expr (assign row (call "mysql_fetch_array" [ res ]));
          foreach row (v ("$cell_" ^ id))
            [ echo1 (concat (s (open_tag id "dd")) (v ("$cell_" ^ id))) ] ]
  in
  no_defaults stmts (vuln Vuln.Xss Vuln.Db)

(** OS-file content echoed — the qtranslate §V.C shape. *)
let file_proc_echo ~id ~rng =
  let fp = v ("$fp_" ^ id) and line = v ("$line_" ^ id) in
  let stmts =
    match Prng.int rng 3 with
    | 0 ->
        [ expr (assign fp (call "fopen" [ s "import.csv"; s "r" ]));
          expr (assign line (call "fgets" [ fp; i 128 ]));
          echo1 (concat (s (open_tag id "pre")) line) ]
    | 1 ->
        [ expr (assign line (call "file_get_contents" [ s "banner.txt" ]));
          echo1 (concat3 (s (open_tag id "div")) line (s (close_tag "div"))) ]
    | _ ->
        [ expr (assign fp (call "fopen" [ s ("cache_" ^ id ^ ".dat"); s "rb" ]));
          expr (assign line (call "fread" [ fp; i 512 ]));
          echo1 (interp [ `L (open_tag id "code"); `E line; `L (close_tag "code") ]) ]
  in
  no_defaults stmts (vuln Vuln.Xss Vuln.File_function_array)

(** register_globals vulnerability: a variable that is never initialized is
    echoed; with [register_globals = 1] an attacker seeds it from the
    request.  Only Pixy models this (§V.A). *)
let rg_echo ~id ~rng:_ =
  let x = v ("$theme_title_" ^ id) in
  no_defaults
    [ echo1 (concat x (s (open_tag id "h3"))) ]
    (vuln Vuln.Xss Vuln.Post_get_cookie)

(** Vulnerable function never called from plugin code — WordPress calls it
    as a hook (§III.B). *)
let uncalled_fn_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$arg_" ^ id) in
  let body =
    match Prng.int rng 2 with
    | 0 ->
        [ expr (assign x src);
          echo1 (concat3 (s (open_tag id "li")) x (s (close_tag "li"))) ]
    | _ ->
        [ expr (assign x (call "trim" [ src ]));
          if_ (neq x (s "")) [ echo1 (concat (s (open_tag id "p")) x) ] ]
  in
  no_defaults
    [ func ("ajax_handler_" ^ id) [] body ]
    (vuln Vuln.Xss vector)

(** Taint through a user-defined helper's parameter (inter-procedural). *)
let interproc_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let fn = "render_field_" ^ id in
  let p = v ("$text_" ^ id) in
  let stmts =
    match Prng.int rng 2 with
    | 0 ->
        [ func fn [ param ("$text_" ^ id) ]
            [ echo1 (concat3 (s (open_tag id "label")) p (s (close_tag "label"))) ];
          expr (call fn [ src ]) ]
    | _ ->
        (* through the return value *)
        let wrap = "format_value_" ^ id in
        [ func wrap [ param ("$text_" ^ id) ]
            [ ret (concat (s "» ") p) ];
          echo1 (concat (s (open_tag id "b")) (call wrap [ src ])) ]
  in
  no_defaults stmts (vuln Vuln.Xss vector)

(* ------------------------------------------------------------------ *)
(* Real vulnerabilities — WordPress objects ($wpdb)                   *)
(* ------------------------------------------------------------------ *)

let wpdb = v "$wpdb"

(** The paper's running example (§III.E): [$wpdb->get_results] rows echoed
    without sanitization.  Only an OOP-aware, WordPress-aware tool finds
    these. *)
let wpdb_oop_xss ~id ~rng =
  let rows = v ("$rows_" ^ id) and row = v ("$row_" ^ id) in
  let col = Prng.pick rng [ "sml_name"; "subscriber"; "caption"; "meta_value" ] in
  let stmts =
    match Prng.int rng 4 with
    | 0 ->
        [ expr
            (assign rows
               (mcall wpdb "get_results"
                  [ interp
                      [ `L "SELECT * FROM "; `E (prop wpdb "prefix");
                        `L ("sml_" ^ id) ] ]));
          foreach rows row
            [ echo1 (concat3 (s (open_tag id "li")) (prop row col) (s (close_tag "li"))) ] ]
    | 1 ->
        let val_ = v ("$val_" ^ id) in
        [ expr
            (assign val_
               (mcall wpdb "get_var" [ s ("SELECT setting FROM opts_" ^ id) ]));
          echo1 (concat (s (open_tag id "span")) (call "stripslashes" [ val_ ])) ]
    | 2 ->
        let r = v ("$rec_" ^ id) in
        [ expr (assign r (mcall wpdb "get_row" [ s ("SELECT * FROM rec_" ^ id) ]));
          echo1 (interp [ `L (open_tag id "td"); `E (prop r col); `L (close_tag "td") ]) ]
    | _ ->
        let names = v ("$names_" ^ id) and n = v ("$n_" ^ id) in
        [ expr (assign names (mcall wpdb "get_col" [ s ("SELECT name FROM col_" ^ id) ]));
          foreach names n
            [ echo1 (concat3 (s (open_tag id "option")) n (s (close_tag "option"))) ] ]
  in
  no_defaults stmts (vuln ~oop:true Vuln.Xss Vuln.Db)

(** SQL injection through a [$wpdb] query method. *)
let wpdb_sqli ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$id_" ^ id) in
  let q_method = Prng.pick rng [ "query"; "get_results" ] in
  no_defaults
    [ expr (assign x src);
      expr
        (mcall wpdb q_method
           [ interp
               [ `L ("UPDATE items SET flag = 1 /* " ^ mk id ^ " */ WHERE id = ");
                 `E x ] ]) ]
    (vuln ~oop:true Vuln.Sqli vector)

(* ------------------------------------------------------------------ *)
(* Real vulnerabilities — inside plugin classes (OOP, non-$wpdb)      *)
(* ------------------------------------------------------------------ *)

let method_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let cls = "Widget_" ^ id in
  let x = v ("$raw_" ^ id) in
  no_defaults
    [ class_ ~parent:"WP_Widget" cls
        [ meth "render" []
            [ expr (assign x src);
              echo1 (concat3 (s (open_tag id "td")) x (s (close_tag "td"))) ] ] ]
    (vuln Vuln.Xss vector)

let method_db_echo ~id ~rng =
  let cls = "Model_" ^ id in
  let res = v ("$res_" ^ id) and row = v ("$row_" ^ id) in
  let col = Prng.pick rng [ "label"; "content"; "slug" ] in
  no_defaults
    [ class_ cls
        [ meth "show_latest" []
            [ expr (assign res (call "mysql_query" [ s ("SELECT " ^ col ^ " FROM posts") ]));
              expr (assign row (call "mysql_fetch_assoc" [ res ]));
              echo1 (concat (s (open_tag id "p")) (idx row (s col))) ] ] ]
    (vuln Vuln.Xss Vuln.Db)

let method_file_echo ~id ~rng:_ =
  let cls = "Importer_" ^ id in
  let line = v ("$line_" ^ id) in
  no_defaults
    [ class_ cls
        [ meth "preview" []
            [ expr (assign line (call "file_get_contents" [ s ("export_" ^ id ^ ".txt") ]));
              echo1 (concat (s (open_tag id "pre")) line) ] ] ]
    (vuln Vuln.Xss Vuln.File_function_array)

(** Taint stored into an object property by one method and echoed by
    another — exercises phpSAFE's full-name property tracking (§III.E). *)
let method_prop_flow ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let cls = "Form_" ^ id in
  no_defaults
    [ class_ cls
        ~props:[ prop_def ("$data_" ^ id) ]
        [ meth "capture" []
            [ expr (assign (prop (v "$this") ("data_" ^ id)) src) ];
          meth "display" []
            [ echo1
                (concat3 (s (open_tag id "dd"))
                   (prop (v "$this") ("data_" ^ id))
                   (s (close_tag "dd"))) ] ] ]
    (vuln Vuln.Xss vector)

(* ------------------------------------------------------------------ *)
(* Real vulnerabilities — hidden from every tool (Fig. 2 empty circle) *)
(* ------------------------------------------------------------------ *)

let dynamic_hidden ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let fn = "emit_" ^ id in
  let p = v ("$payload_" ^ id) in
  no_defaults
    [ func fn [ param ("$payload_" ^ id) ]
        [ echo1 (concat (s (open_tag id "u")) p) ];
      expr (call "call_user_func" [ s fn; src ]) ]
    (vuln Vuln.Xss vector)

(* ------------------------------------------------------------------ *)
(* False-positive traps                                               *)
(* ------------------------------------------------------------------ *)

(** Path-insensitive numeric-guard trap: genuinely safe, flagged by all
    three tools (§V.C notes 39% of vulnerable variables are numeric). *)
let guard_trap ~id ~rng =
  let x = v ("$num_" ^ id) in
  let guard_call =
    match Prng.int rng 2 with
    | 0 -> call "is_numeric" [ x ]
    | _ -> call "ctype_digit" [ x ]
  in
  no_defaults
    [ expr (assign x (get ("n" ^ id)));
      if_ (not_ guard_call) [ expr exit_ ];
      echo1 (concat3 (s (open_tag id "b")) x (s (close_tag "b"))) ]
    (trap Vuln.Xss "numeric guard, path-insensitive tools flag it")

(** WordPress sanitizer unknown to RIPS/Pixy: safe, but tools without the
    WP profile see an unknown function and propagate the taint. *)
let wp_san_trap ~id ~rng =
  let san =
    Prng.pick rng [ "esc_html"; "esc_attr"; "esc_js"; "sanitize_text_field" ]
  in
  no_defaults
    [ echo1 (concat (s (open_tag id "i")) (call san [ get ("s" ^ id) ])) ]
    (trap Vuln.Xss "WordPress sanitizer unknown to non-WP tools")

(** Revert pessimism: [stripslashes] after [htmlspecialchars] does not undo
    the HTML encoding, but revert-modelling tools re-taint it. *)
let revert_trap ~id ~rng:_ =
  let x = v ("$clean_" ^ id) in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ get ("r" ^ id) ]));
      expr (assign x (call "stripslashes" [ x ]));
      echo1 (concat3 (s (open_tag id "q")) x (s (close_tag "q"))) ]
    (trap Vuln.Xss "stripslashes cannot undo htmlspecialchars")

(** Variable defined in an included settings file: safe, but a per-file tool
    with register_globals on flags the read as uninitialized. *)
let uninit_trap ~id ~rng:_ ~defaults_file =
  let name = "$opt_label_" ^ id in
  {
    stmts =
      [ echo1 (concat3 (s (open_tag id "dt")) (v name) (s (close_tag "dt"))) ];
    defaults = [ expr (assign (v name) (s ("Label " ^ id))) ];
    label = trap Vuln.Xss ("defined in " ^ defaults_file ^ ", invisible per-file");
  }

(** Safe parameterized query via [$wpdb->prepare] — a pure true negative. *)
let prepare_ok_trap ~id ~rng:_ =
  no_defaults
    [ expr
        (mcall wpdb "query"
           [ mcall wpdb "prepare"
               [ s ("SELECT id /* " ^ mk id ^ " */ FROM t WHERE k = %s");
                 get ("k" ^ id) ] ]) ]
    (trap Vuln.Sqli "parameterized query, nobody should flag")

(** Numeric guard before a [$wpdb] query: safe, but phpSAFE (the only tool
    that sees the method sink) is path-insensitive. *)
let sqli_guard_wpdb_trap ~id ~rng:_ =
  let x = v ("$uid_" ^ id) in
  no_defaults
    [ expr (assign x (get ("u" ^ id)));
      if_ (not_ (call "ctype_digit" [ x ])) [ expr exit_ ];
      expr
        (mcall wpdb "query"
           [ interp
               [ `L ("DELETE /* " ^ mk id ^ " */ FROM members WHERE id = ");
                 `E x ] ]) ]
    (trap Vuln.Sqli "numeric guard before $wpdb query")

(** Same trap with the procedural [mysql_query]: RIPS flags it too. *)
let sqli_guard_proc_trap ~id ~rng:_ =
  let x = v ("$pid_" ^ id) in
  no_defaults
    [ expr (assign x (post ("p" ^ id)));
      if_ (not_ (call "is_numeric" [ x ])) [ expr exit_ ];
      expr
        (call "mysql_query"
           [ interp
               [ `L ("UPDATE hits /* " ^ mk id ^ " */ SET n = n + 1 WHERE id = ");
                 `E x ] ]) ]
    (trap Vuln.Sqli "numeric guard before mysql_query")

(** Properly sanitized echo with a PHP builtin — true negative everywhere. *)
let san_ok_trap ~id ~rng:_ =
  no_defaults
    [ echo1 (concat (s (open_tag id "i")) (call "htmlspecialchars" [ get ("h" ^ id) ])) ]
    (trap Vuln.Xss "standard sanitizer, nobody should flag")

(* ------------------------------------------------------------------ *)
(* Context-sensitivity suite (experiment E11)                          *)
(* ------------------------------------------------------------------ *)

(** Context mismatch: [htmlspecialchars] output lands in an {e unquoted}
    attribute value.  The encoding keeps spaces, so
    [value=x onfocus=alert(1)] still injects — the sanitizer is inadequate
    for the context, and only the [--contexts] pass flags it. *)
let ctx_attr_unquoted ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$val_" ^ id) in
  let field = Prng.pick rng [ "value"; "placeholder"; "title" ] in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ src ]));
      echo1
        (concat3
           (s (Printf.sprintf "<input class=\"%s\" type=text %s=" (mk id) field))
           x (s ">")) ]
    (vuln Vuln.Xss vector)

(** Context mismatch: [htmlspecialchars] into a single-quoted JavaScript
    string.  The default flags leave [']/[\\]/newlines alone, so the string
    can be broken out of inside [<script>]. *)
let ctx_js_string ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$q_" ^ id) in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ src ]));
      echo1
        (concat3
           (s (Printf.sprintf "<script>/* %s */ var q = '" (mk id)))
           x (s "';</script>")) ]
    (vuln Vuln.Xss vector)

(** Context mismatch: [addslashes] into a {e numeric} SQL position — there
    is no quote to escape out of, so [1 OR 1=1] passes straight through. *)
let ctx_sql_numeric ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$id_" ^ id) in
  let table = Prng.pick rng [ "items"; "members"; "orders" ] in
  no_defaults
    [ expr (assign x (call "addslashes" [ src ]));
      expr
        (call "mysql_query"
           [ concat
               (s
                  (Printf.sprintf "UPDATE %s SET flag = 1 /* %s */ WHERE id = "
                     table (mk id)))
               x ]) ]
    (vuln Vuln.Sqli vector)

(** Adequate-sanitizer foil: [stripslashes] after [htmlspecialchars] echoed
    into the element body.  The flat revert model re-taints and flags it;
    the context pass knows [stripslashes] only undoes slash escaping, so
    [htmlspecialchars] stays applied and is adequate for the body. *)
let ctx_revert_body_foil ~id ~rng:_ =
  let x = v ("$clean_" ^ id) in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ get ("cb" ^ id) ]));
      expr (assign x (call "stripslashes" [ x ]));
      echo1 (concat3 (s (open_tag id "p")) x (s (close_tag "p"))) ]
    (trap Vuln.Xss "stripslashes does not undo htmlspecialchars (body)")

(** Same foil into a properly double-quoted attribute value, where
    [htmlspecialchars] (which escapes the double quote) is also adequate. *)
let ctx_revert_attr_foil ~id ~rng:_ =
  let x = v ("$attr_" ^ id) in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ get ("ca" ^ id) ]));
      expr (assign x (call "stripslashes" [ x ]));
      echo1
        (concat3
           (s (Printf.sprintf "<input class=\"%s\" value=\"" (mk id)))
           x (s "\">")) ]
    (trap Vuln.Xss "htmlspecialchars adequate for a quoted attribute")

(* ------------------------------------------------------------------ *)
(* Flow-sensitivity suite (experiment E13)                             *)
(* ------------------------------------------------------------------ *)

(** Branch-carried taint: the superglobal lands in [then], the [else]
    overwrites the variable with a harmless value.  The flat walk (§III.C:
    "conditions and loops do not change the data flow") executes both
    bodies in order, so the clean overwrite wins and the sink looks safe —
    only the flow join keeps the tainted branch alive. *)
let flow_branch_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$msg_" ^ id) in
  let clean =
    if Prng.bool rng then s "(none)" else call "htmlspecialchars" [ src ]
  in
  no_defaults
    [ if_else (isset [ src ]) [ expr (assign x src) ] [ expr (assign x clean) ];
      echo1 (concat3 (s (open_tag id "p")) x (s (close_tag "p"))) ]
    (vuln Vuln.Xss vector)

(** Loop-carried taint: the sink sits {e before} the tainted assignment in
    the body, so only the back edge feeds taint to it; the flat single walk
    reaches the sink while the variable is still clean. *)
let flow_loop_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let w = v ("$row_" ^ id) and n = v ("$i_" ^ id) in
  no_defaults
    [ expr (assign w (s "ready"));
      expr (assign n (i 0));
      while_ (lt n (i 3))
        [ echo1 (concat3 (s (open_tag id "li")) w (s (close_tag "li")));
          expr (assign w src);
          expr (incr_ n) ] ]
    (vuln Vuln.Xss vector)

(** Straight-line [??] default: both the flat and the flow walk must keep
    this one — it pins down that the null-coalescing operator carries taint
    from its left operand through the calibrated printer path. *)
let flow_coalesce_echo ~id ~rng ~vector =
  let src = source_of_vector rng vector in
  let x = v ("$view_" ^ id) in
  no_defaults
    [ expr (assign x (coalesce src (s "overview")));
      echo1 (concat3 (s (open_tag id "b")) x (s (close_tag "b"))) ]
    (vuln Vuln.Xss vector)

(** Exiting-branch foil: the value is sanitized, a branch re-assigns it
    tainted but leaves through [exit], so the sink only ever sees the
    sanitized value at runtime.  The flat walk ignores the control flow,
    keeps the tainted overwrite and flags the sink; in the CFG the exiting
    branch never reaches the join, so the flow pass stays quiet. *)
let flow_exit_trap ~id ~rng:_ =
  let x = v ("$out_" ^ id) in
  let raw = get ("fx" ^ id) in
  no_defaults
    [ expr (assign x (call "htmlspecialchars" [ raw ]));
      if_ (call "headers_sent" []) [ expr (assign x raw); expr exit_ ];
      echo1 (concat3 (s (open_tag id "div")) x (s (close_tag "div"))) ]
    (trap Vuln.Xss "tainted overwrite only in an exiting branch")
