(** Benign WordPress-flavoured filler code: realistic bulk that cannot
    perturb the calibration — every variable is initialized (no spurious
    register_globals hits), nothing reads a taint source, everything echoed
    is a literal. *)

type unit_ = {
  u_stmts : Phplang.Ast.stmt list;
  u_lines : int;     (** approximate printed lines *)
  u_has_oop : bool;  (** contains a class declaration *)
}

val reset : unit -> unit
(** Reset the fresh-name scopes; call once per corpus build for
    determinism. *)

val set_scope : string -> unit
(** Scope subsequent fresh names under [tag] (a short string derived from
    the plugin and file path).  Names embed the tag plus a per-scope
    counter, so a file's content depends only on the file — not on how
    many files were generated before it. *)

val any : Prng.t -> allow_oop:bool -> unit_
val fill : Prng.t -> allow_oop:bool -> lines:int -> unit_ list

val oop_marker : Prng.t -> unit_
(** A helper class — the marker that makes a file fail under Pixy. *)
