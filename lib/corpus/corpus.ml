(** Synthetic WordPress-plugin corpus — the substitution for the paper's 35
    real plugins (2012 and 2014 snapshots).  See DESIGN.md for the
    substitution rationale and Plan for the calibration. *)

module Prng = Prng
module Dsl = Dsl
module Gt = Gt
module Pattern = Pattern
module Filler = Filler
module Plan = Plan
module Builder = Builder
module Catalog = Catalog
module Context_suite = Context_suite
module Flow_suite = Flow_suite
module Classes_suite = Classes_suite

type version = Plan.version = V2012 | V2014

type t = Catalog.corpus = {
  version : Plan.version;
  plugins : Catalog.plugin_output list;
  seeds : Gt.seed list;
}

let generate ?scale version = Catalog.generate ?scale version
let stats = Catalog.stats

(** Ground-truth vulnerabilities (excluding FP traps). *)
let real_vulns t = List.filter Gt.is_real t.seeds

(** FP trap seeds. *)
let traps t = List.filter (fun s -> not (Gt.is_real s)) t.seeds

let projects t = List.map (fun p -> p.Catalog.po_project) t.plugins
