(** Assembles one synthetic plugin (one version) from its planned pattern
    instances: groups instances into files by placement, pads every file
    with benign filler to its LOC quota, prints the ASTs to PHP source, and
    resolves the ground-truth sink lines via the markers.

    Cross-version file identity: instances that persist from 2012 into 2014
    are chunked into their own files (sorted by id), ahead of the
    version-specific ones, and those files are padded to the {e 2012}
    quota with filler drawn from a per-file RNG seeded by (plugin, path).
    A carried file therefore prints byte-identically in both corpus
    versions, so the content-addressed analysis cache reuses its 2012
    results when analyzing 2014. *)

module A = Phplang.Ast

type pending_file = {
  pf_path : string;
  pf_kind : [ `Clean | `Oop | `Deep | `Chain | `Defaults | `Main | `Extra ];
  pf_carried : bool;
      (** identical content in both corpus versions: padded to the 2012
          quota *)
  mutable pf_stmts : A.stmt list;  (** reversed chunks *)
  mutable pf_seeds : (Plan.inst * Gt.label) list;
  mutable pf_approx_lines : int;
}

let new_file ~carried path kind =
  { pf_path = path; pf_kind = kind; pf_carried = carried; pf_stmts = [];
    pf_seeds = []; pf_approx_lines = 0 }

let add_stmts pf stmts ~lines =
  pf.pf_stmts <- List.rev_append stmts pf.pf_stmts;
  pf.pf_approx_lines <- pf.pf_approx_lines + lines

let defaults_path = "includes/defaults.php"

let defaults_extra_path = "includes/defaults-extra.php"

(** Instantiate a pattern; returns the piece. *)
let build_piece ?(defaults_file = defaults_path) ~(inst : Plan.inst) ~rng () :
    Pattern.piece =
  let id = inst.Plan.in_id in
  match inst.Plan.in_pattern with
  | Plan.P_direct -> Pattern.direct_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_db_proc -> Pattern.db_proc_echo ~id ~rng
  | Plan.P_file_proc -> Pattern.file_proc_echo ~id ~rng
  | Plan.P_rg -> Pattern.rg_echo ~id ~rng
  | Plan.P_uncalled -> Pattern.uncalled_fn_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_interproc -> Pattern.interproc_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_wpdb_xss -> Pattern.wpdb_oop_xss ~id ~rng
  | Plan.P_wpdb_sqli -> Pattern.wpdb_sqli ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_method -> Pattern.method_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_method_db -> Pattern.method_db_echo ~id ~rng
  | Plan.P_method_file -> Pattern.method_file_echo ~id ~rng
  | Plan.P_method_prop -> Pattern.method_prop_flow ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_dynamic -> Pattern.dynamic_hidden ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.T_guard -> Pattern.guard_trap ~id ~rng
  | Plan.T_wp_san -> Pattern.wp_san_trap ~id ~rng
  | Plan.T_revert -> Pattern.revert_trap ~id ~rng
  | Plan.T_uninit -> Pattern.uninit_trap ~id ~rng ~defaults_file
  | Plan.T_prepare_ok -> Pattern.prepare_ok_trap ~id ~rng
  | Plan.T_sqli_guard_wpdb -> Pattern.sqli_guard_wpdb_trap ~id ~rng
  | Plan.T_sqli_guard_proc -> Pattern.sqli_guard_proc_trap ~id ~rng
  | Plan.T_san_ok -> Pattern.san_ok_trap ~id ~rng
  | Plan.P_ctx_attr -> Pattern.ctx_attr_unquoted ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_ctx_js -> Pattern.ctx_js_string ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_ctx_sql_num -> Pattern.ctx_sql_numeric ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.T_ctx_revert_body -> Pattern.ctx_revert_body_foil ~id ~rng
  | Plan.T_ctx_revert_attr -> Pattern.ctx_revert_attr_foil ~id ~rng
  | Plan.P_flow_branch -> Pattern.flow_branch_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_flow_loop -> Pattern.flow_loop_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.P_flow_coalesce -> Pattern.flow_coalesce_echo ~id ~rng ~vector:inst.Plan.in_vector
  | Plan.T_flow_exit -> Pattern.flow_exit_trap ~id ~rng

let chunk size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

(** Number of include-chain files behind a deep file.  The chain gives the
    deep file an include depth of [chain_len], just over phpSAFE's
    [max_include_depth] budget, so exactly the deep file fails. *)
let chain_len = 7

(** Instances per clean (resp. options, OOP) file. *)
let clean_chunk = 7

let uninit_chunk = 9

let oop_chunk = 7

type built = {
  project : Phplang.Project.t;
  seeds : Gt.seed list;
}

let build ~version ~plugin_name ~(instances : Plan.inst list)
    ~(carried : Plan.inst -> bool) ~extra_files ~carried_extra_files
    ~chains_carried ~file_quota ~carried_file_quota : built =
  let files : pending_file list ref = ref [] in
  let push f =
    files := f :: !files;
    f
  in
  (* per-file determinism: names and filler depend only on (plugin, path),
     never on how much of the corpus was generated before this file *)
  let scope_tag path =
    Printf.sprintf "%x" (Hashtbl.hash (plugin_name, path) land 0xFFFFFF)
  in
  let file_rng path salt =
    Prng.create (Hashtbl.hash (plugin_name, path, salt))
  in
  let defaults_file = ref None in
  let get_defaults () =
    match !defaults_file with
    | Some f -> f
    | None ->
        let f = push (new_file ~carried:true defaults_path `Defaults) in
        defaults_file := Some f;
        f
  in
  let defaults_extra_file = ref None in
  let get_defaults_extra () =
    match !defaults_extra_file with
    | Some f -> f
    | None ->
        let f = push (new_file ~carried:false defaults_extra_path `Defaults) in
        defaults_extra_file := Some f;
        f
  in
  (* --- main file --- *)
  let main = push (new_file ~carried:true (plugin_name ^ ".php") `Main) in
  (* --- group instances --- *)
  let clean_insts, oop_insts, deep_insts =
    List.fold_left
      (fun (c, o, d) i ->
        match i.Plan.in_placement with
        | Plan.Clean_file -> (i :: c, o, d)
        | Plan.Oop_file -> (c, i :: o, d)
        | Plan.Deep_file -> (c, o, i :: d))
      ([], [], []) instances
  in
  let clean_insts = List.rev clean_insts
  and oop_insts = List.rev oop_insts
  and deep_insts = List.rev deep_insts in
  (* uninit traps go to options files that include the defaults file *)
  let uninit, clean_rest =
    List.partition (fun i -> i.Plan.in_pattern = Plan.T_uninit) clean_insts
  in
  (* persistent instances first, sorted by id: both corpus versions chunk
     them identically, so the resulting files match across versions *)
  let split insts =
    let pers, fresh = List.partition carried insts in
    ( List.sort
        (fun (a : Plan.inst) b -> String.compare a.Plan.in_id b.Plan.in_id)
        pers,
      fresh )
  in
  let place_instances ?defaults_dest pf insts =
    List.iter
      (fun (i : Plan.inst) ->
        let irng = Prng.create (Hashtbl.hash (i.Plan.in_id, plugin_name)) in
        let defaults_file =
          match defaults_dest with
          | Some (path, _) -> path
          | None -> defaults_path
        in
        let piece = build_piece ~defaults_file ~inst:i ~rng:irng () in
        add_stmts pf piece.Pattern.stmts ~lines:(4 * 1);
        (match piece.Pattern.defaults with
        | [] -> ()
        | d ->
            let dest =
              match defaults_dest with
              | Some (_, get) -> get ()
              | None -> get_defaults ()
            in
            add_stmts dest d ~lines:(List.length d));
        pf.pf_seeds <- (i, piece.Pattern.label) :: pf.pf_seeds)
      insts
  in
  let pers_clean, new_clean = split clean_rest in
  let pers_clean_chunks = chunk clean_chunk pers_clean in
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:true
             (Printf.sprintf "admin/page%d.php" (k + 1))
             `Clean)
      in
      place_instances pf group)
    pers_clean_chunks;
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:false
             (Printf.sprintf "admin/page%d.php"
                (List.length pers_clean_chunks + k + 1))
             `Clean)
      in
      place_instances pf group)
    (chunk clean_chunk new_clean);
  let pers_uninit, new_uninit = split uninit in
  let pers_uninit_chunks = chunk uninit_chunk pers_uninit in
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:true
             (Printf.sprintf "admin/options%d.php" (k + 1))
             `Clean)
      in
      ignore (get_defaults ());
      add_stmts pf [ Dsl.require_once defaults_path ] ~lines:1;
      place_instances ~defaults_dest:(defaults_path, get_defaults) pf group)
    pers_uninit_chunks;
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:false
             (Printf.sprintf "admin/options%d.php"
                (List.length pers_uninit_chunks + k + 1))
             `Clean)
      in
      ignore (get_defaults_extra ());
      add_stmts pf [ Dsl.require_once defaults_extra_path ] ~lines:1;
      place_instances
        ~defaults_dest:(defaults_extra_path, get_defaults_extra)
        pf group)
    (chunk uninit_chunk new_uninit);
  let add_oop_marker pf =
    (* OOP marker: guarantees Pixy fails this file *)
    Filler.set_scope (scope_tag pf.pf_path);
    let marker = Filler.oop_marker (file_rng pf.pf_path "marker") in
    add_stmts pf marker.Filler.u_stmts ~lines:marker.Filler.u_lines
  in
  let pers_oop, new_oop = split oop_insts in
  let pers_oop_chunks = chunk oop_chunk pers_oop in
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:true
             (Printf.sprintf "inc/module%d.php" (k + 1))
             `Oop)
      in
      add_oop_marker pf;
      place_instances pf group)
    pers_oop_chunks;
  List.iteri
    (fun k group ->
      let pf =
        push
          (new_file ~carried:false
             (Printf.sprintf "inc/module%d.php"
                (List.length pers_oop_chunks + k + 1))
             `Oop)
      in
      add_oop_marker pf;
      place_instances pf group)
    (chunk oop_chunk new_oop);
  (match deep_insts with
  | [] -> ()
  | deep ->
      let engine = push (new_file ~carried:false "core/engine.php" `Deep) in
      add_oop_marker engine;
      add_stmts engine [ Dsl.inc "core/chain1.php" ] ~lines:1;
      place_instances engine deep;
      for k = 1 to chain_len do
        let pf =
          push
            (new_file ~carried:chains_carried
               (Printf.sprintf "core/chain%d.php" k)
               `Chain)
        in
        if k < chain_len then
          add_stmts pf [ Dsl.inc (Printf.sprintf "core/chain%d.php" (k + 1)) ] ~lines:1
      done);
  for k = 1 to extra_files do
    ignore
      (push
         (new_file
            ~carried:(k <= carried_extra_files)
            (Printf.sprintf "lib/extra%d.php" k)
            `Extra))
  done;
  ignore main;
  (* --- pad every file with filler to its quota --- *)
  let all_files = List.rev !files in
  List.iter
    (fun pf ->
      let allow_oop = match pf.pf_kind with `Oop | `Deep -> true | _ -> false in
      let quota = if pf.pf_carried then carried_file_quota else file_quota in
      let want = max 0 (quota - pf.pf_approx_lines) in
      Filler.set_scope (scope_tag pf.pf_path);
      let rng = file_rng pf.pf_path "fill" in
      let units = Filler.fill rng ~allow_oop ~lines:want in
      List.iter (fun u -> add_stmts pf u.Filler.u_stmts ~lines:u.Filler.u_lines) units)
    all_files;
  (* --- print and resolve seeds --- *)
  let printed =
    List.map
      (fun pf ->
        let prog = List.rev pf.pf_stmts in
        let source = Phplang.Printer.program_to_string prog in
        (pf, source))
      all_files
  in
  let seeds =
    List.concat_map
      (fun ((pf : pending_file), source) ->
        List.rev_map
          (fun ((i : Plan.inst), label) ->
            let needle = Gt.marker i.Plan.in_id in
            let line = Gt.line_of_needle ~file:pf.pf_path ~needle source in
            { Gt.seed_id = i.Plan.in_id;
              pattern = Plan.pkind_name i.Plan.in_pattern;
              label;
              plugin = plugin_name;
              file = pf.pf_path;
              line })
          pf.pf_seeds)
      printed
  in
  let project_files =
    List.map
      (fun ((pf : pending_file), source) ->
        { Phplang.Project.path = pf.pf_path; source })
      printed
  in
  ignore version;
  { project = Phplang.Project.make ~name:plugin_name project_files; seeds }
