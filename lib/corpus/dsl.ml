(** Compact AST-building combinators for the corpus generator.  All nodes
    carry dummy positions: real line numbers are recovered from the printed
    source via ground-truth needles (see {!Gt}). *)

module A = Phplang.Ast

let e d = A.mk_e d
let st d = A.mk_s d

(* expressions *)
let v name = e (A.Var name)
let s text = e (A.Str text)
let i n = e (A.Int n)
let b value = e (if value then A.True else A.False)
let null = e A.Null
let cst name = e (A.Const name)
let arr items = e (A.ArrayLit (List.map (fun x -> (None, x)) items))
let arr_kv items =
  e (A.ArrayLit (List.map (fun (k, x) -> (Some k, x)) items))

let idx a k = e (A.ArrayGet (a, Some k))
let get key = idx (v "$_GET") (s key)
let post key = idx (v "$_POST") (s key)
let cookie key = idx (v "$_COOKIE") (s key)
let request key = idx (v "$_REQUEST") (s key)

let call f args = e (A.Call (f, args))
let mcall obj m args = e (A.MethodCall (obj, m, args))
let scall cls m args = e (A.StaticCall (cls, m, args))
let new_ cls args = e (A.New (cls, args))
let prop obj p = e (A.Prop (obj, p))
let assign lhs rhs = e (A.Assign (lhs, rhs))
let concat_assign lhs rhs = e (A.OpAssign (A.Concat, lhs, rhs))
let concat a c = e (A.Bin (A.Concat, a, c))
let concat3 a c d = concat (concat a c) d
let plus a c = e (A.Bin (A.Plus, a, c))
let lt a c = e (A.Bin (A.Lt, a, c))
let gt a c = e (A.Bin (A.Gt, a, c))
let eq a c = e (A.Bin (A.Eq, a, c))
let neq a c = e (A.Bin (A.Neq, a, c))
let not_ a = e (A.Un (A.Not, a))
let incr_ a = e (A.Un (A.PostInc, a))
let ternary c t f = e (A.Ternary (c, Some t, f))
let coalesce a c = e (A.Bin (A.Coalesce, a, c))
let isset xs = e (A.Isset xs)
let exit_ = e (A.Exit None)
let cast_int x = e (A.CastE (A.CastInt, x))

(** Double-quoted string with interpolation: alternation of literal and
    expression parts. *)
let interp parts =
  e
    (A.Interp
       (List.map
          (function `L text -> A.ILit text | `E x -> A.IExpr x)
          parts))

(* statements *)
let expr x = st (A.Expr x)
let echo xs = st (A.Echo xs)
let echo1 x = echo [ x ]
let if_ cond then_ = st (A.If ([ (cond, then_) ], None))
let if_else cond then_ else_ = st (A.If ([ (cond, then_) ], Some else_))
let while_ cond body = st (A.While (cond, body))
let for_upto var bound body =
  st
    (A.For
       ( [ assign (v var) (i 0) ],
         [ lt (v var) bound ],
         [ incr_ (v var) ],
         body ))

let foreach subject value body = st (A.Foreach (subject, A.ForeachValue value, body))
let foreach_kv subject key value body =
  st (A.Foreach (subject, A.ForeachKeyValue (key, value), body))

let ret x = st (A.Return (Some x))
let ret_void = st (A.Return None)
let global names = st (A.Global names)
let inc path = expr (e (A.IncludeE (A.Include, s path)))
let require_once path = expr (e (A.IncludeE (A.RequireOnce, s path)))
let unset xs = st (A.Unset xs)

let param ?default ?(by_ref = false) name =
  { A.p_name = name; p_default = default; p_by_ref = by_ref; p_hint = None }

let func name params body =
  st (A.FuncDef { A.f_name = name; f_params = params; f_body = body; f_pos = A.dummy_pos })

let meth ?(vis = A.Public) ?(static = false) name params body =
  { A.m_vis = vis; m_static = static;
    m_func = { A.f_name = name; f_params = params; f_body = body; f_pos = A.dummy_pos } }

let prop_def ?(vis = A.Public) ?(static = false) ?default name =
  { A.pr_vis = vis; pr_static = static; pr_name = name; pr_default = default }

let class_ ?parent ?(props = []) name methods =
  st
    (A.ClassDef
       { A.c_name = name; c_parent = parent; c_implements = [];
         c_consts = []; c_props = props; c_methods = methods;
         c_pos = A.dummy_pos })

let html text = st (A.InlineHtml text)
