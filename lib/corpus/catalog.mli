(** The 35-plugin catalog (19 OOP + 16 procedural, §V.A) and whole-corpus
    assembly. *)

val plugin_names : string array
(** 35 names; indices 0–18 are the OOP plugins. *)

type plugin_output = {
  po_name : string;
  po_project : Phplang.Project.t;
  po_seeds : Gt.seed list;
}

type corpus = {
  version : Plan.version;
  plugins : plugin_output list;
  seeds : Gt.seed list;  (** all plugins *)
}

type plugin_layout = {
  pl_files : int;  (** base files (before padding-only extras) *)
  pl_carried : int;
      (** base files identical in both corpus versions (extras counted
          separately) *)
}

val plugin_layout :
  carried:(Plan.inst -> bool) ->
  chains_carried:bool ->
  Plan.inst list ->
  plugin_layout
(** Mirror of the builder's file layout, used to size the padding that
    brings the corpus to the paper's file counts and to apportion the LOC
    quota between carried and version-specific files. *)

val generate : ?scale:float -> Plan.version -> corpus
(** Deterministic generation.  [scale] multiplies the corpus bulk (files
    and LOC) without touching the seeded instances — used by the E10
    scaling study. *)

val stats : corpus -> int * int
(** (files, LOC) for the §V.E size report. *)
