(** New-vulnerability-class evaluation suite (experiment E16).

    A small dedicated corpus — separate from the calibrated 35-plugin
    2012/2014 plans, whose instance counts must not change — seeding the
    four vulnerability classes added on top of the paper's XSS/SQLi
    taxonomy, one plugin per class:

    - {e command injection} ([cmdi]): tainted data reaching [system]/
      [exec]/[shell_exec]/[passthru], directly, through a user function
      and through an OOP method, with [escapeshellarg] and [intval]
      foils;
    - {e path traversal / LFI} ([lfi]): tainted paths reaching dynamic
      [include], [readfile], [fopen] and a non-URL [file_get_contents],
      with [basename] and [realpath] foils;
    - {e SSRF} ([ssrf]): tainted URLs reaching [wp_remote_get],
      [curl_setopt(CURLOPT_URL)], a URL-prefixed [file_get_contents] and
      [fsockopen], with an [esc_url_raw] foil.  The URL-prefixed
      [file_get_contents] line doubles as an {e LFI trap}: a tool that
      cannot tell remote fetches from file reads flags it as path
      traversal;
    - {e second-order SQLi} ([so-sqli]): attacker data persisted through
      [update_option]/[add_option]/[$wpdb->insert] and read back into SQL
      sinks in a different file, with a sanitized-write foil and a
      never-written-key foil.  These seeds are invisible to any
      single-pass analysis — only the two-phase record/replay pass
      ([--second-order]) can connect the write to the read.

    Every file is hand-written (the pattern DSL does not emit the new
    builtins); each seed carries exact ground truth via the usual sink
    markers, so the E16 per-class precision/recall table is computed
    against labels, not expectations. *)

open Secflow

let get = Vuln.Get
let post = Vuln.Post

(** One hand-written seed before line resolution: the marker of
    [cs_needle_of] must occur exactly once in the file. *)
type spec = {
  sp_id : string;
  sp_pattern : string;
  sp_label_of : int -> Gt.label;  (** line is irrelevant to the label *)
}

let real ?(oop = false) kind vector : int -> Gt.label =
 fun _ -> Gt.Real_vuln { kind; vector; oop_wordpress = oop }

let trap kind why : int -> Gt.label = fun _ -> Gt.Fp_trap { kind; why }

(** Resolve every spec's marker to its sink line in [source]. *)
let seeds_of ~plugin ~file ~source (specs : spec list) : Gt.seed list =
  List.map
    (fun sp ->
      let line =
        Gt.line_of_needle ~file ~needle:(Gt.marker sp.sp_id) source
      in
      { Gt.seed_id = sp.sp_id; pattern = sp.sp_pattern;
        label = sp.sp_label_of line; plugin; file; line })
    specs

(* ------------------------------------------------------------------ *)
(* Plugin 1: command injection                                         *)
(* ------------------------------------------------------------------ *)

let cmdi_name = "backup-runner-cls"

let cmdi_run_php =
  String.concat "\n"
    [ "<?php";
      "// direct: request data concatenated into a shell command";
      Printf.sprintf
        "system('tar czf /tmp/backup.tgz ' . $_GET['dir']); // %s"
        (Gt.marker "k0001");
      "";
      "// interprocedural: the sink is inside a helper, tainted at the call";
      "function cls_run_archive($label) {";
      Printf.sprintf "    exec('logger -t backup ' . $label); // %s"
        (Gt.marker "k0002");
      "}";
      "cls_run_archive($_POST['label']);";
      "";
      "// foil: escapeshellarg neutralizes the shell metacharacters";
      Printf.sprintf "system('ls ' . escapeshellarg($_GET['path'])); // %s"
        (Gt.marker "k9001");
      "" ]

let cmdi_class_php =
  String.concat "\n"
    [ "<?php";
      "class Cls_Runner {";
      "    public function launch($cmd) {";
      Printf.sprintf "        shell_exec('nice ' . $cmd); // %s"
        (Gt.marker "k0003");
      "    }";
      "}";
      "$runner = new Cls_Runner();";
      "$runner->launch($_GET['tool']);";
      "";
      "// foil: intval yields a number, harmless in a shell command";
      Printf.sprintf "passthru('kill -9 ' . intval($_POST['pid'])); // %s"
        (Gt.marker "k9002");
      "" ]

let cmdi_plugin () =
  let files =
    [ ("admin/run.php", cmdi_run_php);
      ("includes/class-runner.php", cmdi_class_php) ]
  in
  let seeds =
    seeds_of ~plugin:cmdi_name ~file:"admin/run.php" ~source:cmdi_run_php
      [ { sp_id = "k0001"; sp_pattern = "cmdi-direct";
          sp_label_of = real Vuln.Cmdi get };
        { sp_id = "k0002"; sp_pattern = "cmdi-interproc";
          sp_label_of = real Vuln.Cmdi post };
        { sp_id = "k9001"; sp_pattern = "cmdi-escapeshellarg-foil";
          sp_label_of = trap Vuln.Cmdi "escapeshellarg-quoted argument" } ]
    @ seeds_of ~plugin:cmdi_name ~file:"includes/class-runner.php"
        ~source:cmdi_class_php
        [ { sp_id = "k0003"; sp_pattern = "cmdi-method";
            sp_label_of = real Vuln.Cmdi get };
          { sp_id = "k9002"; sp_pattern = "cmdi-intval-foil";
            sp_label_of = trap Vuln.Cmdi "intval-numeric argument" } ]
  in
  (files, seeds)

(* ------------------------------------------------------------------ *)
(* Plugin 2: path traversal / LFI                                      *)
(* ------------------------------------------------------------------ *)

let lfi_name = "media-loader-cls"

let lfi_loader_php =
  String.concat "\n"
    [ "<?php";
      "// dynamic include of a request-controlled page name";
      Printf.sprintf "include($_GET['page'] . '.php'); // %s"
        (Gt.marker "k0004");
      "";
      Printf.sprintf "readfile('/var/uploads/' . $_POST['file']); // %s"
        (Gt.marker "k0005");
      "";
      "$base = '/var/data/';";
      Printf.sprintf "$fh = fopen($base . $_GET['name'], 'r'); // %s"
        (Gt.marker "k0006");
      "";
      "// a bare dynamic path is a file read, not a remote fetch";
      Printf.sprintf "$raw = file_get_contents($_GET['tpl']); // %s"
        (Gt.marker "k0007");
      "";
      "// foil: basename strips every directory component";
      Printf.sprintf "readfile('/var/uploads/' . basename($_POST['safe'])); // %s"
        (Gt.marker "k9003");
      "// foil: realpath canonicalizes before use";
      Printf.sprintf "include(realpath($_GET['theme'])); // %s"
        (Gt.marker "k9004");
      "" ]

let lfi_plugin () =
  let files = [ ("loader.php", lfi_loader_php) ] in
  let seeds =
    seeds_of ~plugin:lfi_name ~file:"loader.php" ~source:lfi_loader_php
      [ { sp_id = "k0004"; sp_pattern = "lfi-include";
          sp_label_of = real Vuln.Path_traversal get };
        { sp_id = "k0005"; sp_pattern = "lfi-readfile";
          sp_label_of = real Vuln.Path_traversal post };
        { sp_id = "k0006"; sp_pattern = "lfi-fopen";
          sp_label_of = real Vuln.Path_traversal get };
        { sp_id = "k0007"; sp_pattern = "lfi-file-get-contents";
          sp_label_of = real Vuln.Path_traversal get };
        { sp_id = "k9003"; sp_pattern = "lfi-basename-foil";
          sp_label_of = trap Vuln.Path_traversal "basename-flattened path" };
        { sp_id = "k9004"; sp_pattern = "lfi-realpath-foil";
          sp_label_of = trap Vuln.Path_traversal "realpath-canonicalized path" } ]
  in
  (files, seeds)

(* ------------------------------------------------------------------ *)
(* Plugin 3: SSRF                                                      *)
(* ------------------------------------------------------------------ *)

let ssrf_name = "link-preview-cls"

let ssrf_preview_php =
  String.concat "\n"
    [ "<?php";
      Printf.sprintf "$resp = wp_remote_get($_GET['url']); // %s"
        (Gt.marker "k0008");
      "";
      "$ch = curl_init();";
      Printf.sprintf "curl_setopt($ch, CURLOPT_URL, $_POST['target']); // %s"
        (Gt.marker "k0009");
      "";
      "// remote fetch: the literal scheme pins this to SSRF, not LFI";
      Printf.sprintf
        "$body = file_get_contents('http://feeds.example.com/' . $_GET['feed']); // %s"
        (Gt.marker "k0010");
      "";
      Printf.sprintf "$sock = fsockopen($_POST['host'], 80); // %s"
        (Gt.marker "k0011");
      "";
      "// foil: esc_url_raw validates the URL before the request";
      Printf.sprintf "wp_remote_get(esc_url_raw($_GET['url2'])); // %s"
        (Gt.marker "k9006");
      "" ]

let ssrf_plugin () =
  let files = [ ("preview.php", ssrf_preview_php) ] in
  let url_fetch_line =
    Gt.line_of_needle ~file:"preview.php" ~needle:(Gt.marker "k0010")
      ssrf_preview_php
  in
  let seeds =
    seeds_of ~plugin:ssrf_name ~file:"preview.php" ~source:ssrf_preview_php
      [ { sp_id = "k0008"; sp_pattern = "ssrf-wp-remote-get";
          sp_label_of = real Vuln.Ssrf get };
        { sp_id = "k0009"; sp_pattern = "ssrf-curl-url";
          sp_label_of = real Vuln.Ssrf post };
        { sp_id = "k0010"; sp_pattern = "ssrf-url-prefixed-fetch";
          sp_label_of = real Vuln.Ssrf get };
        { sp_id = "k0011"; sp_pattern = "ssrf-fsockopen";
          sp_label_of = real Vuln.Ssrf post };
        { sp_id = "k9006"; sp_pattern = "ssrf-esc-url-raw-foil";
          sp_label_of = trap Vuln.Ssrf "esc_url_raw-validated URL" } ]
    (* the same sink line, read as a file operation: a URL-blind tool
       reports path traversal here, and that detection is a planned FP *)
    @ [ { Gt.seed_id = "k9005"; pattern = "lfi-url-shape-trap";
          label =
            Gt.Fp_trap
              { kind = Vuln.Path_traversal;
                why = "URL-prefixed remote fetch, not a file path" };
          plugin = ssrf_name; file = "preview.php"; line = url_fetch_line } ]
  in
  (files, seeds)

(* ------------------------------------------------------------------ *)
(* Plugin 4: second-order SQLi                                         *)
(* ------------------------------------------------------------------ *)

let so_name = "comment-store-cls"

(** Write side: attacker data persisted under known option keys and a
    [$wpdb] table, plus a sanitized write whose key must NOT poison
    reads. *)
let so_store_php =
  String.concat "\n"
    [ "<?php";
      "// attacker-controlled values persisted for a later request";
      "update_option('cls_banner', $_POST['banner']);";
      "$wpdb->insert('wp_cls_notes', array('body' => $_GET['note']));";
      "add_option('cls_tagline', $_GET['tagline']);";
      "// sanitized write: this key never stores live SQL taint";
      "update_option('cls_count', intval($_POST['n']));";
      "" ]

(** Read side (a different file, as in a real stored attack): the values
    come back through [get_option]/[$wpdb] reads and reach SQL sinks. *)
let so_render_php =
  String.concat "\n"
    [ "<?php";
      "$banner = get_option('cls_banner');";
      Printf.sprintf
        "$wpdb->query(\"UPDATE wp_opts SET banner = '\" . $banner . \"'\"); // %s"
        (Gt.marker "k0012");
      "";
      "$note = $wpdb->get_var(\"SELECT body FROM wp_cls_notes LIMIT 1\");";
      Printf.sprintf
        "mysql_query(\"INSERT INTO cls_log (msg) VALUES ('\" . $note . \"')\"); // %s"
        (Gt.marker "k0013");
      "";
      "$tag = get_option('cls_tagline');";
      Printf.sprintf
        "$wpdb->query(\"UPDATE wp_opts SET tagline = '\" . $tag . \"'\"); // %s"
        (Gt.marker "k0014");
      "";
      "// foil: the only write to cls_count is intval-sanitized";
      "$count = get_option('cls_count');";
      Printf.sprintf
        "$wpdb->query(\"UPDATE wp_opts SET cnt = \" . $count); // %s"
        (Gt.marker "k9007");
      "";
      "// foil: cls_theme is never written by attacker-reachable code";
      "$theme = get_option('cls_theme');";
      Printf.sprintf
        "$wpdb->query(\"UPDATE wp_opts SET theme = '\" . $theme . \"'\"); // %s"
        (Gt.marker "k9008");
      "" ]

let so_plugin () =
  let files =
    [ ("store.php", so_store_php); ("render.php", so_render_php) ]
  in
  let seeds =
    seeds_of ~plugin:so_name ~file:"render.php" ~source:so_render_php
      [ { sp_id = "k0012"; sp_pattern = "so-option-roundtrip";
          sp_label_of = real ~oop:true Vuln.Second_order_sqli post };
        { sp_id = "k0013"; sp_pattern = "so-wpdb-table-roundtrip";
          sp_label_of = real ~oop:true Vuln.Second_order_sqli get };
        { sp_id = "k0014"; sp_pattern = "so-add-option-roundtrip";
          sp_label_of = real ~oop:true Vuln.Second_order_sqli get };
        { sp_id = "k9007"; sp_pattern = "so-sanitized-write-foil";
          sp_label_of =
            trap Vuln.Second_order_sqli "the stored value was intval-sanitized" };
        { sp_id = "k9008"; sp_pattern = "so-unwritten-key-foil";
          sp_label_of =
            trap Vuln.Second_order_sqli "no attacker write reaches this key" } ]
  in
  (files, seeds)

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let plugin_names = [| cmdi_name; lfi_name; ssrf_name; so_name |]

(** Build the suite.  Deterministic: every file is a fixed literal. *)
let generate () : Catalog.corpus =
  let plugins =
    List.map
      (fun (name, (files, seeds)) ->
        let project =
          { Phplang.Project.name;
            files =
              List.map
                (fun (path, source) -> { Phplang.Project.path; source })
                files }
        in
        { Catalog.po_name = name; po_project = project; po_seeds = seeds })
      [ (cmdi_name, cmdi_plugin ()); (lfi_name, lfi_plugin ());
        (ssrf_name, ssrf_plugin ()); (so_name, so_plugin ()) ]
  in
  {
    Catalog.version = Plan.V2014;
    plugins;
    seeds = List.concat_map (fun p -> p.Catalog.po_seeds) plugins;
  }
