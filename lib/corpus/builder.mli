(** Assembles one synthetic plugin (one version) from its planned pattern
    instances: groups instances into files by placement, pads every file
    with benign filler to a LOC quota, prints the ASTs, and resolves the
    ground-truth sink lines via the markers.

    Instances that persist across versions are chunked into their own
    files, padded to the carried quota with per-file-seeded filler, so a
    carried file prints byte-identically in both corpus versions. *)

val defaults_path : string
(** Path of the per-plugin defaults file the persistent uninit traps
    include. *)

val defaults_extra_path : string
(** Defaults file for the version-specific uninit traps — kept separate so
    the carried defaults file stays identical across versions. *)

val chain_len : int
(** Length of the include chain behind a deep file — one more than
    phpSAFE's [max_include_depth] budget, so exactly the deep file fails. *)

val clean_chunk : int
(** Instances per clean file. *)

val uninit_chunk : int
(** Uninit traps per options file. *)

val oop_chunk : int
(** Instances per OOP file. *)

val build_piece :
  ?defaults_file:string -> inst:Plan.inst -> rng:Prng.t -> unit -> Pattern.piece
(** Instantiate one pattern (exposed for the detectability-contract
    tests).  [defaults_file] is the path named in uninit-trap labels. *)

type built = {
  project : Phplang.Project.t;
  seeds : Gt.seed list;
}

val build :
  version:Plan.version ->
  plugin_name:string ->
  instances:Plan.inst list ->
  carried:(Plan.inst -> bool) ->
  extra_files:int ->
  carried_extra_files:int ->
  chains_carried:bool ->
  file_quota:int ->
  carried_file_quota:int ->
  built
(** Build the plugin.  [carried] marks the instances that persist across
    versions: they are chunked first (sorted by id) into files padded to
    [carried_file_quota]; everything else fills version-specific files
    padded to [file_quota].  The first [carried_extra_files] padding-only
    extra files and (when [chains_carried]) the include-chain files also
    use the carried quota.  Per-instance and per-file RNGs are seeded from
    (id, plugin) and (plugin, path), so carried files print identically in
    both corpus versions. *)
