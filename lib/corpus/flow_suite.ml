(** Flow-sensitivity evaluation suite (experiment E13).

    A small dedicated corpus — separate from the calibrated 35-plugin
    2012/2014 plans, whose instance counts must not change — exercising the
    flow-sensitive body walk ([--flow], DESIGN.md):

    - {e real} flow-carried flaws the flat walk misses by last-write-wins:
      taint assigned in one branch but overwritten clean in the other, and
      loop-carried taint reaching a sink only through the back edge;
    - {e foils} the flat walk flags: a sanitized value re-assigned tainted
      only inside a branch that exits, so the sink never sees the taint;
    - straight-line [??]-defaulted sinks both walks must keep, pinning the
      null-coalescing taint join.

    Each plugin additionally ships one {e raw} (non-printed) file combining
    a heredoc SQL sink, a [<?=] echo sink and [??] defaults — the printer
    never emits those surface forms, so the raw file is what keeps the
    lexer paths exercised end-to-end.

    Every seed carries exact ground truth via the usual sink markers, so
    the E13 delta (new true positives, removed false positives) is computed
    against labels, not expectations. *)

let plugin_names = [| "gallery-flow"; "event-list-flow" |]

let get = Secflow.Vuln.Get
let post = Secflow.Vuln.Post

(** Pattern mix per plugin: (pattern, vector) in emission order. *)
let mixes : (Plan.pkind * Secflow.Vuln.vector) list array =
  [|
    (* gallery-flow *)
    [ (Plan.P_flow_branch, get); (Plan.P_flow_branch, post);
      (Plan.P_flow_loop, get);
      (Plan.P_flow_coalesce, get); (Plan.P_flow_coalesce, post);
      (Plan.T_flow_exit, get); (Plan.T_flow_exit, get) ];
    (* event-list-flow *)
    [ (Plan.P_flow_branch, get);
      (Plan.P_flow_loop, get); (Plan.P_flow_loop, post);
      (Plan.P_flow_coalesce, get);
      (Plan.T_flow_exit, get); (Plan.T_flow_exit, get); (Plan.T_flow_exit, get) ];
  |]

(** Instances for plugin [k], with ids ["f%04d"] disjoint from the main
    plans' ["s"]/["t"] and the context suite's ["c"] prefixes. *)
let instances () : Plan.inst list array =
  let next = ref 1 in
  Array.mapi
    (fun k mix ->
      List.map
        (fun (pattern, vector) ->
          let id = Printf.sprintf "f%04d" !next in
          incr next;
          { Plan.in_id = id; in_pattern = pattern; in_vector = vector;
            in_placement = Plan.Clean_file; in_plugin = k;
            in_persistent = false })
        mix)
    mixes

let file_quota = 60

(* ------------------------------------------------------------------ *)
(* Raw front-end file: heredoc + <?= + ??                              *)
(* ------------------------------------------------------------------ *)

let raw_path = "views/raw-widget.php"

(** The heredoc body interpolates the [??]-defaulted POST value into the
    query; the marker rides in a literal concatenated on the sink line.
    The [<?=] sink carries its marker in the inline HTML opening the same
    line.  Both seeds are straight-line, so flat and flow must keep them. *)
let raw_source ~id_sql ~id_echo =
  String.concat "\n"
    [ "<?php";
      Printf.sprintf "$title_%s = $_POST['title'] ?? 'untitled';" id_sql;
      Printf.sprintf "$sql_%s = <<<SQL" id_sql;
      Printf.sprintf "UPDATE notes SET title = '$title_%s' WHERE id = 1" id_sql;
      "SQL;";
      Printf.sprintf "mysql_query($sql_%s . \" -- %s\");" id_sql
        (Gt.marker id_sql);
      "?>";
      Printf.sprintf "<h2 class=\"%s\"><?= $_GET['caption'] ?? 'photo' ?></h2>"
        (Gt.marker id_echo);
      "" ]

(** Append the raw file to a built plugin and seed its two sinks. *)
let with_raw_file k ({ Builder.project; seeds } : Builder.built) =
  let id_sql = Printf.sprintf "fh%02d" (k + 1)
  and id_echo = Printf.sprintf "fe%02d" (k + 1) in
  let source = raw_source ~id_sql ~id_echo in
  let seed id pattern kind vector =
    { Gt.seed_id = id; pattern;
      label = Gt.Real_vuln { kind; vector; oop_wordpress = false };
      plugin = project.Phplang.Project.name; file = raw_path;
      line = Gt.line_of_needle ~file:raw_path ~needle:(Gt.marker id) source }
  in
  let raw_seeds =
    [ seed id_sql "flow-heredoc-sqli" Secflow.Vuln.Sqli Secflow.Vuln.Post;
      seed id_echo "flow-short-echo-xss" Secflow.Vuln.Xss Secflow.Vuln.Get ]
  in
  let project =
    { project with
      Phplang.Project.files =
        project.Phplang.Project.files
        @ [ { Phplang.Project.path = raw_path; source } ] }
  in
  { Builder.project; seeds = seeds @ raw_seeds }

(** Build the suite.  Deterministic: fixed seeds, fresh filler state. *)
let generate () : Catalog.corpus =
  Filler.reset ();
  let per_plugin = instances () in
  let plugins =
    Array.to_list
      (Array.mapi
         (fun k insts ->
           let name = plugin_names.(k) in
           let built =
             Builder.build ~version:Plan.V2014 ~plugin_name:name
               ~instances:insts ~carried:(fun _ -> false) ~extra_files:0
               ~carried_extra_files:0 ~chains_carried:false ~file_quota
               ~carried_file_quota:file_quota
           in
           let { Builder.project; seeds } = with_raw_file k built in
           { Catalog.po_name = name; po_project = project; po_seeds = seeds })
         per_plugin)
  in
  {
    Catalog.version = Plan.V2014;
    plugins;
    seeds = List.concat_map (fun p -> p.Catalog.po_seeds) plugins;
  }
