(** Context-sensitivity evaluation suite (experiment E11).

    A small dedicated corpus — separate from the calibrated 35-plugin
    2012/2014 plans, whose instance counts must not change — exercising the
    sink-context-sensitive sanitization pass ([--contexts]):

    - {e real} context mismatches a context-free analysis misses: an
      [htmlspecialchars]-encoded value in an unquoted attribute or a
      [<script>] string, and an [addslashes]-escaped value in a numeric SQL
      position;
    - {e foils} a context-free analysis flags: [stripslashes] after
      [htmlspecialchars] flowing into a body or quoted-attribute position,
      where the HTML encoding is intact and adequate.

    Every seed carries exact ground truth via the usual sink markers, so
    the E11 precision delta (new true positives, removed false positives)
    is computed against labels, not expectations. *)

let plugin_names = [| "form-mailer-ctx"; "report-exporter-ctx" |]

let get = Secflow.Vuln.Get
let post = Secflow.Vuln.Post

(** Pattern mix per plugin: (pattern, vector) in emission order. *)
let mixes : (Plan.pkind * Secflow.Vuln.vector) list array =
  [|
    (* form-mailer-ctx *)
    [ (Plan.P_ctx_attr, get); (Plan.P_ctx_attr, post);
      (Plan.P_ctx_js, get);
      (Plan.P_ctx_sql_num, get); (Plan.P_ctx_sql_num, post);
      (Plan.T_ctx_revert_body, get); (Plan.T_ctx_revert_body, get);
      (Plan.T_ctx_revert_attr, get) ];
    (* report-exporter-ctx *)
    [ (Plan.P_ctx_attr, get);
      (Plan.P_ctx_js, get); (Plan.P_ctx_js, post);
      (Plan.P_ctx_sql_num, get);
      (Plan.T_ctx_revert_body, get);
      (Plan.T_ctx_revert_attr, get); (Plan.T_ctx_revert_attr, get) ];
  |]

(** Instances for plugin [k], with ids ["c%04d"] disjoint from the main
    plans' ["s"]/["t"] prefixes. *)
let instances () : Plan.inst list array =
  let next = ref 1 in
  Array.mapi
    (fun k mix ->
      List.map
        (fun (pattern, vector) ->
          let id = Printf.sprintf "c%04d" !next in
          incr next;
          { Plan.in_id = id; in_pattern = pattern; in_vector = vector;
            in_placement = Plan.Clean_file; in_plugin = k;
            in_persistent = false })
        mix)
    mixes

let file_quota = 60

(** Build the suite.  Deterministic: fixed seeds, fresh filler state. *)
let generate () : Catalog.corpus =
  Filler.reset ();
  let per_plugin = instances () in
  let plugins =
    Array.to_list
      (Array.mapi
         (fun k insts ->
           let name = plugin_names.(k) in
           let { Builder.project; seeds } =
             Builder.build ~version:Plan.V2014 ~plugin_name:name
               ~instances:insts ~carried:(fun _ -> false) ~extra_files:0
               ~carried_extra_files:0 ~chains_carried:false ~file_quota
               ~carried_file_quota:file_quota
           in
           { Catalog.po_name = name; po_project = project; po_seeds = seeds })
         per_plugin)
  in
  {
    Catalog.version = Plan.V2014;
    plugins;
    seeds = List.concat_map (fun p -> p.Catalog.po_seeds) plugins;
  }
