(** Calibration plan: how many instances of each pattern each plugin gets,
    per corpus version.

    The counts are derived from the paper's Tables I and II and Fig. 2 by
    solving the per-tool detectability system (see DESIGN.md).  Detectability
    is determined by {e placement}, not by fiat — the analyzers genuinely
    behave differently on each placement:

    - [Clean_file]: procedural file, no OOP, no includes → all three tools
      analyze it.
    - [Oop_file]: contains OOP constructs → Pixy fails the file; RIPS skips
      class bodies but sees top-level code; phpSAFE handles everything.
    - [Deep_file]: OOP constructs {e and} an include chain deeper than
      phpSAFE's memory budget → only RIPS sees its top-level code.

    Buckets realised (2012 / 2014 targets):
    - C = found by all three          : 26 / 12
    - E = Pixy-only (register_globals): 24 /  8
    - D = RIPS-only (deep files)      : 55 / 195
    - B = phpSAFE∩RIPS                : 53 /  81
    - A = phpSAFE-only (OOP/WordPress): 236 / 290
    - F = found by nobody (Fig. 2's empty circle): 6 / 8 *)

open Secflow

type version = V2012 | V2014

let version_to_string = function V2012 -> "2012" | V2014 -> "2014"
let version_year = function V2012 -> 2012 | V2014 -> 2014

type pkind =
  | P_direct       (** superglobal → echo, procedural *)
  | P_db_proc      (** mysql_* chain → echo *)
  | P_file_proc    (** fgets / file_get_contents → echo *)
  | P_rg           (** register_globals uninitialized echo *)
  | P_uncalled     (** vulnerable hook function never called *)
  | P_interproc    (** taint through a user function *)
  | P_wpdb_xss     (** $wpdb->get_results rows echoed (OOP) *)
  | P_wpdb_sqli    (** $wpdb->query SQL injection (OOP) *)
  | P_method       (** superglobal echo inside a class method *)
  | P_method_db    (** mysql chain inside a method *)
  | P_method_file  (** file read inside a method *)
  | P_method_prop  (** property store/show flow across methods *)
  | P_dynamic      (** call_user_func — invisible to every tool *)
  | T_guard        (** numeric-guard FP trap (all tools) *)
  | T_wp_san       (** WP-sanitizer FP trap (RIPS, Pixy) *)
  | T_revert       (** stripslashes-revert FP trap (phpSAFE, RIPS) *)
  | T_uninit       (** include-defined variable FP trap (Pixy) *)
  | T_prepare_ok   (** $wpdb->prepare true negative *)
  | T_sqli_guard_wpdb  (** guard before $wpdb query (phpSAFE FP) *)
  | T_sqli_guard_proc  (** guard before mysql_query (phpSAFE+RIPS FP) *)
  | T_san_ok       (** htmlspecialchars true negative *)
  (* context-sensitivity suite (experiment E11) — these kinds appear only in
     Context_suite, never in the calibrated 2012/2014 plans above *)
  | P_ctx_attr     (** htmlspecialchars into an unquoted attribute *)
  | P_ctx_js       (** htmlspecialchars into a <script> string *)
  | P_ctx_sql_num  (** addslashes into a numeric SQL position *)
  | T_ctx_revert_body  (** stripslashes-after-htmlspecialchars foil, body *)
  | T_ctx_revert_attr  (** same foil into a quoted attribute *)
  (* flow-sensitivity suite (experiment E13) — these kinds appear only in
     Flow_suite, never in the calibrated 2012/2014 plans above *)
  | P_flow_branch  (** tainted in one branch, overwritten clean in the other *)
  | P_flow_loop    (** loop-carried taint reaching a sink on the back edge *)
  | P_flow_coalesce  (** ??-defaulted superglobal echoed *)
  | T_flow_exit    (** sanitized value, tainted re-assign only in an exiting
                       branch *)

let pkind_name = function
  | P_direct -> "direct-echo"
  | P_db_proc -> "db-proc-echo"
  | P_file_proc -> "file-proc-echo"
  | P_rg -> "register-globals-echo"
  | P_uncalled -> "uncalled-fn-echo"
  | P_interproc -> "interproc-echo"
  | P_wpdb_xss -> "wpdb-oop-xss"
  | P_wpdb_sqli -> "wpdb-sqli"
  | P_method -> "method-echo"
  | P_method_db -> "method-db-echo"
  | P_method_file -> "method-file-echo"
  | P_method_prop -> "method-prop-flow"
  | P_dynamic -> "dynamic-hidden"
  | T_guard -> "trap-guard"
  | T_wp_san -> "trap-wp-sanitizer"
  | T_revert -> "trap-revert"
  | T_uninit -> "trap-uninit-include"
  | T_prepare_ok -> "trap-prepare-ok"
  | T_sqli_guard_wpdb -> "trap-sqli-guard-wpdb"
  | T_sqli_guard_proc -> "trap-sqli-guard-proc"
  | T_san_ok -> "trap-sanitized-ok"
  | P_ctx_attr -> "ctx-attr-unquoted"
  | P_ctx_js -> "ctx-js-string"
  | P_ctx_sql_num -> "ctx-sql-numeric"
  | T_ctx_revert_body -> "trap-ctx-revert-body"
  | T_ctx_revert_attr -> "trap-ctx-revert-attr"
  | P_flow_branch -> "flow-branch-taint"
  | P_flow_loop -> "flow-loop-carried"
  | P_flow_coalesce -> "flow-coalesce-default"
  | T_flow_exit -> "trap-flow-exit-branch"

type placement = Clean_file | Oop_file | Deep_file

type inst = {
  in_id : string;
  in_pattern : pkind;
  in_vector : Vuln.vector;
  in_placement : placement;
  in_plugin : int;  (** 0..34 *)
  in_persistent : bool;  (** carried from 2012 into 2014 *)
}

(* -- plugin population --------------------------------------------- *)

let plugin_count = 35
let oop_plugins = List.init 19 Fun.id            (* 0..18 *)
let proc_plugins = List.init 16 (fun i -> 19 + i) (* 19..34 *)

(** Plugins with $wpdb vulnerabilities: 10 in 2012, 7 in 2014 (§V.A) —
    plugins 7–9 fixed theirs. *)
let wpdb_plugins = function
  | V2012 -> [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  | V2014 -> [ 0; 1; 2; 3; 4; 5; 6 ]

(** Plugins with a memory-exhausting deep-include file: phpSAFE "was unable
    to analyze one file [2012] and three files [2014]" (§V.E). *)
let deep_plugins = function V2012 -> [ 7 ] | V2014 -> [ 7; 12; 16 ]

(* -- emission -------------------------------------------------------- *)

type emitter = {
  mutable next : int;
  mutable out : inst list;  (** reversed *)
  prefix : string;
}

let emit em ~n ~pattern ~vector ~placement ~plugins =
  let plugins = Array.of_list plugins in
  for k = 0 to n - 1 do
    let id = Printf.sprintf "%s%04d" em.prefix em.next in
    em.next <- em.next + 1;
    em.out <-
      { in_id = id; in_pattern = pattern; in_vector = vector;
        in_placement = placement; in_plugin = plugins.(k mod Array.length plugins);
        in_persistent = false }
      :: em.out
  done

(** Weighted emission: [shares.(i)] instances to [plugins.(i)]. *)
let emit_weighted em ~pattern ~vector ~placement ~plugin_shares =
  List.iter
    (fun (plugin, n) ->
      emit em ~n ~pattern ~vector ~placement ~plugins:[ plugin ])
    plugin_shares

let get = Vuln.Get
let post = Vuln.Post
let mixed = Vuln.Post_get_cookie
let db = Vuln.Db
let file = Vuln.File_function_array

(* ------------------------------------------------------------------ *)
(* 2012 plan                                                          *)
(* ------------------------------------------------------------------ *)

let instances_2012 () : inst list =
  let em = { next = 1; out = []; prefix = "s" } in
  let e = emit em in
  (* C: all three tools (clean files in procedural plugins): 26 *)
  e ~n:20 ~pattern:P_direct ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  e ~n:6 ~pattern:P_interproc ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  (* E: Pixy-only register_globals: 24 *)
  e ~n:24 ~pattern:P_rg ~vector:mixed ~placement:Clean_file ~plugins:proc_plugins;
  (* D: RIPS-only, the one file phpSAFE cannot parse: 55 in plugin 7 *)
  e ~n:30 ~pattern:P_direct ~vector:get ~placement:Deep_file ~plugins:[ 7 ];
  e ~n:10 ~pattern:P_direct ~vector:post ~placement:Deep_file ~plugins:[ 7 ];
  e ~n:15 ~pattern:P_file_proc ~vector:file ~placement:Deep_file ~plugins:[ 7 ];
  (* B: phpSAFE ∩ RIPS (procedural code in OOP files): 53 *)
  e ~n:20 ~pattern:P_db_proc ~vector:db ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:10 ~pattern:P_file_proc ~vector:file ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:10 ~pattern:P_direct ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:3 ~pattern:P_uncalled ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:2 ~pattern:P_interproc ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:5 ~pattern:P_direct ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:3 ~pattern:P_uncalled ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  (* A: phpSAFE-only — $wpdb OOP: 143 XSS + 8 SQLi = 151 over 10 plugins,
     weighted so the 7 plugins that stay vulnerable in 2014 hold most *)
  emit_weighted em ~pattern:P_wpdb_xss ~vector:db ~placement:Oop_file
    ~plugin_shares:
      [ (0, 20); (1, 20); (2, 20); (3, 20); (4, 20); (5, 20); (6, 20);
        (7, 1); (8, 1); (9, 1) ];
  e ~n:8 ~pattern:P_wpdb_sqli ~vector:get ~placement:Oop_file
    ~plugins:(wpdb_plugins V2012);
  (* A: phpSAFE-only — plugin-class methods: 85 *)
  e ~n:48 ~pattern:P_method_db ~vector:db ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:16 ~pattern:P_method_file ~vector:file ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:12 ~pattern:P_method ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:5 ~pattern:P_method_prop ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:4 ~pattern:P_method ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  (* F: invisible to every tool (Fig. 2 empty circle): 6 *)
  e ~n:6 ~pattern:P_dynamic ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  (* traps *)
  e ~n:40 ~pattern:T_guard ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  e ~n:16 ~pattern:T_wp_san ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  e ~n:23 ~pattern:T_revert ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:2 ~pattern:T_sqli_guard_wpdb ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:131 ~pattern:T_uninit ~vector:mixed ~placement:Clean_file ~plugins:proc_plugins;
  e ~n:6 ~pattern:T_prepare_ok ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:8 ~pattern:T_san_ok ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  List.rev em.out

(* ------------------------------------------------------------------ *)
(* 2014 plan: persistent seeds carried over + new ones                *)
(* ------------------------------------------------------------------ *)

(** Take the first [n] 2012 instances matching [pattern]/[vector]
    (and, optionally, placement), marked persistent. *)
let persist ~from ~pattern ~vector ?placement ~n () =
  let matches i =
    i.in_pattern = pattern && i.in_vector = vector
    && match placement with Some p -> i.in_placement = p | None -> true
  in
  let rec take acc k = function
    | [] -> List.rev acc
    | i :: rest ->
        if k = 0 then List.rev acc
        else if matches i then take ({ i with in_persistent = true } :: acc) (k - 1) rest
        else take acc k rest
  in
  take [] n from

let instances_2014 () : inst list =
  let old = instances_2012 () in
  let p = persist ~from:old in
  let carried =
    List.concat
      [ (* C persists 12 of 26 *)
        p ~pattern:P_direct ~vector:get ~placement:Clean_file ~n:10 ();
        p ~pattern:P_interproc ~vector:get ~placement:Clean_file ~n:2 ();
        (* E persists 8 of 24 *)
        p ~pattern:P_rg ~vector:mixed ~n:8 ();
        (* B persists: GET 10, POST 5, DB 15, FILE 4 *)
        p ~pattern:P_direct ~vector:get ~placement:Oop_file ~n:10 ();
        p ~pattern:P_direct ~vector:post ~placement:Oop_file ~n:5 ();
        p ~pattern:P_db_proc ~vector:db ~n:20 ();
        p ~pattern:P_file_proc ~vector:file ~placement:Oop_file ~n:4 ();
        (* A persists: wpdb 140, sqli 5, methods GET 9 (7 direct + 2 prop),
           POST 4, DB 17 — total persistence lands at ~40% of the 2014
           union, the paper's headline inertia figure (§VI) *)
        p ~pattern:P_wpdb_xss ~vector:db ~n:140 ();
        p ~pattern:P_wpdb_sqli ~vector:get ~n:5 ();
        p ~pattern:P_method ~vector:get ~n:7 ();
        p ~pattern:P_method_prop ~vector:get ~n:2 ();
        p ~pattern:P_method ~vector:post ~n:4 ();
        p ~pattern:P_method_db ~vector:db ~n:17 ();
        (* traps linger too: developers did not fix them because they are
           not vulnerabilities *)
        p ~pattern:T_guard ~vector:get ~n:40 ();
        p ~pattern:T_wp_san ~vector:get ~n:16 ();
        p ~pattern:T_revert ~vector:get ~n:17 ();
        p ~pattern:T_uninit ~vector:mixed ~n:131 ();
        p ~pattern:T_prepare_ok ~vector:get ~n:6 ();
        p ~pattern:T_san_ok ~vector:get ~n:8 ();
      ]
  in
  let em = { next = 1; out = []; prefix = "t" } in
  let e = emit em in
  (* C new: 12 total - 12 carried = 0.  E new: 0. *)
  (* D: three deep files, 195 new *)
  let deep = deep_plugins V2014 in
  e ~n:55 ~pattern:P_direct ~vector:get ~placement:Deep_file ~plugins:deep;
  e ~n:20 ~pattern:P_direct ~vector:post ~placement:Deep_file ~plugins:deep;
  e ~n:30 ~pattern:P_direct ~vector:mixed ~placement:Deep_file ~plugins:deep;
  e ~n:87 ~pattern:P_db_proc ~vector:db ~placement:Deep_file ~plugins:deep;
  e ~n:3 ~pattern:P_file_proc ~vector:file ~placement:Deep_file ~plugins:deep;
  (* B new: GET 10 (2 direct + 4 uncalled + 4 interproc), POST 5, MIX 10,
     DB 22, FILE 0 *)
  e ~n:2 ~pattern:P_direct ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:4 ~pattern:P_uncalled ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:4 ~pattern:P_interproc ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:5 ~pattern:P_direct ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:10 ~pattern:P_direct ~vector:mixed ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:17 ~pattern:P_db_proc ~vector:db ~placement:Oop_file ~plugins:oop_plugins;
  (* A new: wpdb 30 (over the 7 still-vulnerable plugins), sqli 4,
     methods: DB 62, GET 6 (4 direct + 2 prop), POST 9, MIX 9, FILE 5 *)
  e ~n:30 ~pattern:P_wpdb_xss ~vector:db ~placement:Oop_file
    ~plugins:(wpdb_plugins V2014);
  e ~n:4 ~pattern:P_wpdb_sqli ~vector:get ~placement:Oop_file
    ~plugins:(wpdb_plugins V2014);
  e ~n:52 ~pattern:P_method_db ~vector:db ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:4 ~pattern:P_method ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:2 ~pattern:P_method_prop ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:9 ~pattern:P_method ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:9 ~pattern:P_method ~vector:mixed ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:5 ~pattern:P_method_file ~vector:file ~placement:Oop_file ~plugins:oop_plugins;
  (* F new: 8 *)
  e ~n:8 ~pattern:P_dynamic ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  (* new traps *)
  e ~n:6 ~pattern:T_wp_san ~vector:get ~placement:Clean_file ~plugins:proc_plugins;
  e ~n:4 ~pattern:T_sqli_guard_wpdb ~vector:get ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:1 ~pattern:T_sqli_guard_proc ~vector:post ~placement:Oop_file ~plugins:oop_plugins;
  e ~n:15 ~pattern:T_uninit ~vector:mixed ~placement:Clean_file ~plugins:proc_plugins;
  carried @ List.rev em.out

let instances = function V2012 -> instances_2012 () | V2014 -> instances_2014 ()

module SS = Set.Make (String)

(** Ids of the 2012 instances that persist into 2014.  The builder chunks
    these into their own files (in both versions) so that a carried file's
    content is identical across versions and the cross-version analysis
    cache can reuse its results. *)
let persistent_ids : unit -> SS.t =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some s -> s
    | None ->
        let s =
          List.fold_left
            (fun acc i -> if i.in_persistent then SS.add i.in_id acc else acc)
            SS.empty (instances_2014 ())
        in
        memo := Some s;
        s

(* -- corpus size targets (paper §V.E) -------------------------------- *)

let target_files = function V2012 -> 266 | V2014 -> 356
let target_loc = function V2012 -> 89_560 | V2014 -> 180_801
