(** Benign WordPress-flavoured filler code.

    Filler gives each generated plugin realistic bulk (option pages, hook
    registrations, i18n tables, templates) without perturbing the
    calibration: every variable is initialized before use (no spurious
    register_globals hits), nothing reads a taint source, and everything
    echoed is a literal.  Each unit reports its approximate printed line
    count so files can be padded to a LOC quota. *)

open Dsl

type unit_ = {
  u_stmts : Phplang.Ast.stmt list;
  u_lines : int;     (** approximate printed lines *)
  u_has_oop : bool;  (** contains a class declaration *)
}

(* Fresh names are scoped per generated file: the builder calls
   {!set_scope} with a tag derived from (plugin, path) before emitting a
   file's units, and names embed that tag plus a per-scope counter.  This
   keeps names unique across the whole plugin (distinct tags) while making
   a file's content a function of the file alone — the same file generated
   for the 2012 and the 2014 corpus prints byte-identically, which is what
   lets the cross-version analysis cache reuse it. *)
let scopes : (string, int ref) Hashtbl.t = Hashtbl.create 64

let current = ref (ref 0, "g")

let set_scope tag =
  let c =
    match Hashtbl.find_opt scopes tag with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.add scopes tag c;
        c
  in
  current := (c, tag)

let fresh prefix =
  let c, tag = !current in
  incr c;
  Printf.sprintf "%s_%s_%d" prefix tag !c

(* reset between corpus builds for determinism *)
let reset () =
  Hashtbl.reset scopes;
  current := (ref 0, "g")

let words =
  [| "gallery"; "widget"; "feed"; "panel"; "layout"; "option"; "cache";
     "notice"; "column"; "excerpt"; "footer"; "sidebar"; "menu"; "badge";
     "banner"; "avatar"; "digest"; "summary"; "preview"; "archive" |]

let word rng = words.(Prng.int rng (Array.length words))

(** Top-level hook registrations: [add_action('init', 'cb_N');] plus the
    callback function with a literal-only body. *)
let hook_block rng =
  let cb = fresh "on_init" in
  let hook = Prng.pick rng [ "init"; "admin_menu"; "wp_head"; "widgets_init" ] in
  let body =
    [ expr (assign (v "$ok") (call "register_setting" [ s (word rng); s (word rng) ]));
      if_ (not_ (v "$ok")) [ ret_void ];
      expr (call "do_action" [ s (hook ^ "_done") ]) ]
  in
  {
    u_stmts =
      [ expr (call "add_action" [ s hook; s cb ]); func cb [] body ];
    u_lines = 8;
    u_has_oop = false;
  }

(** An options/settings function that builds and returns literal data. *)
let settings_fn rng =
  let name = fresh "get_settings" in
  let d = v "$defaults" in
  let entries =
    List.init (Prng.between rng 3 6) (fun _ ->
        (s (word rng), s (word rng ^ " value")))
  in
  {
    u_stmts =
      [ func name
          [ param ~default:(b false) "$reset" ]
          [ expr (assign d (arr_kv entries));
            if_ (v "$reset") [ expr (call "delete_option" [ s name ]) ];
            expr (assign (v "$stored") (call "get_option" [ s name; d ]));
            ret (v "$stored") ] ];
    u_lines = 8;
    u_has_oop = false;
  }

(** Template rendering with literal-only output. *)
let template_fn rng =
  let name = fresh "render_box" in
  let out = v "$out" in
  let n = Prng.between rng 3 7 in
  let appends =
    List.init n (fun k ->
        expr (concat_assign out (s (Printf.sprintf "<div class=\"%s-%d\">" (word rng) k))))
  in
  {
    u_stmts =
      [ func name
          [ param ~default:(i 10) "$count" ]
          ([ expr (assign out (s "<section>")) ]
          @ appends
          @ [ expr (concat_assign out (s "</section>"));
              echo1 (call "esc_html" [ s "rendered" ]);
              ret out ]) ];
    u_lines = n + 7;
    u_has_oop = false;
  }

(** A loop computing literal-derived data (never echoed). *)
let compute_fn rng =
  let name = fresh "compute_stats" in
  let total = v "$total" in
  {
    u_stmts =
      [ func name []
          [ expr (assign total (i 0));
            expr (assign (v "$sizes") (arr [ i 4; i 8; i (Prng.between rng 10 60) ]));
            foreach (v "$sizes") (v "$size")
              [ expr (assign total (plus total (v "$size"))) ];
            if_else (gt total (i 32))
              [ ret (s "large") ]
              [ ret (s "small") ] ] ];
    u_lines = 11;
    u_has_oop = false;
  }

(** Inline HTML chunk — admin page markup between PHP tags. *)
let html_block rng =
  let n = Prng.between rng 4 9 in
  let lines =
    List.init n (fun k ->
        Printf.sprintf "<tr><td class=\"%s\">row %d</td></tr>" (word rng) k)
  in
  let text = "\n<table>\n" ^ String.concat "\n" lines ^ "\n</table>\n" in
  { u_stmts = [ html text ]; u_lines = n + 4; u_has_oop = false }

(** A helper class with literal-only methods — also serves as the OOP marker
    that makes a file fail under Pixy. *)
let helper_class rng =
  let cls = fresh "Helper" in
  let label = word rng in
  {
    u_stmts =
      [ class_ cls
          ~props:
            [ prop_def ~default:(s label) "$label";
              prop_def ~default:(i 0) ~vis:Phplang.Ast.Private "$hits" ]
          [ meth "label" [] [ ret (prop (v "$this") "label") ];
            meth "describe" []
              [ expr (assign (v "$text") (concat (s "mod: ") (prop (v "$this") "label")));
                ret (call "htmlspecialchars" [ v "$text" ]) ];
            meth ~static:true "version" [] [ ret (s "1.4.2") ] ] ];
    u_lines = 13;
    u_has_oop = true;
  }

(** Shortcode handler: switch over literal modes. *)
let shortcode_fn rng =
  let name = fresh "shortcode" in
  let mode = v "$mode" in
  let cases =
    List.map
      (fun w ->
        { Phplang.Ast.case_guard = Some (s w);
          case_body = [ ret (s ("<span>" ^ w ^ "</span>")) ] })
      [ word rng; word rng; word rng ]
  in
  let all_cases =
    cases @ [ { Phplang.Ast.case_guard = None; case_body = [ ret (s "") ] } ]
  in
  {
    u_stmts =
      [ expr (call "add_shortcode" [ s name; s name ]);
        func name
          [ param ~default:(arr []) "$atts" ]
          [ expr (assign mode (s "default"));
            if_ (isset [ idx (v "$atts") (s "mode") ])
              [ expr (assign mode (s "named")) ];
            st (Phplang.Ast.Switch (mode, all_cases)) ] ];
    u_lines = 16;
    u_has_oop = false;
  }

(** i18n table: many short assignments (safe, line-dense). *)
let i18n_block rng =
  let tbl = fresh "$i18n" in
  let n = Prng.between rng 4 8 in
  let stmts =
    expr (assign (v tbl) (arr []))
    :: List.init n (fun k ->
           expr
             (assign
                (idx (v tbl) (s (Printf.sprintf "key_%d" k)))
                (call "__" [ s (word rng); s "plugin-domain" ])))
  in
  { u_stmts = stmts; u_lines = n + 1; u_has_oop = false }

(** Pick a random filler unit. *)
let any rng ~allow_oop =
  let makers =
    if allow_oop then
      [ hook_block; settings_fn; template_fn; compute_fn; html_block;
        helper_class; shortcode_fn; i18n_block ]
    else
      [ hook_block; settings_fn; template_fn; compute_fn; html_block;
        shortcode_fn; i18n_block ]
  in
  (Prng.pick rng makers) rng

(** Generate filler until [lines] are (approximately) reached. *)
let fill rng ~allow_oop ~lines =
  let rec go acc got =
    if got >= lines then List.rev acc
    else
      let u = any rng ~allow_oop in
      go (u :: acc) (got + u.u_lines)
  in
  go [] 0

(** A guaranteed OOP marker unit. *)
let oop_marker rng = helper_class rng
