(** The 35-plugin catalog.  Names echo the plugins the paper quotes
    (wp-symposium, mail-subscribe-list, wp-photo-album-plus, qtranslate) plus
    invented ones in the same style.  The first 19 are the OOP plugins
    ("Of the 35 plugins analyzed, 19 are developed in OOP", §V.A). *)

let plugin_names =
  [| (* OOP plugins: 0..18 *)
     "mail-subscribe-list"; "wp-photo-album-plus"; "wp-symposium";
     "event-ticket-desk"; "simple-donation-box"; "member-directory-pro";
     "recipe-card-maker"; "gallery-grid-view"; "forum-digest-mailer";
     "booking-calendar-lite"; "store-locator-map"; "quiz-builder-plus";
     "newsletter-archive"; "download-counter-hub"; "testimonial-slider";
     "job-board-manager"; "faq-accordion-pack"; "poll-widget-deluxe";
     "classified-ads-board";
     (* procedural plugins: 19..34 *)
     "qtranslate"; "contact-form-basic"; "related-posts-simple";
     "social-share-bar"; "custom-footer-text"; "maintenance-mode-page";
     "rss-importer-light"; "search-highlighter"; "broken-link-notifier";
     "image-watermarker"; "visitor-counter-classic"; "sitemap-pinger";
     "comment-guard"; "price-table-shortcode"; "weather-badge";
     "archive-dropdown-plus" |]

let () = assert (Array.length plugin_names = 35)

type plugin_output = {
  po_name : string;
  po_project : Phplang.Project.t;
  po_seeds : Gt.seed list;
}

type corpus = {
  version : Plan.version;
  plugins : plugin_output list;
  seeds : Gt.seed list;  (** all plugins *)
}

(* Mirror of the builder's file layout, used to size the padding and to
   count the files whose content carries across versions.  Checked against
   the real build by the corpus size tests. *)
type plugin_layout = {
  pl_files : int;  (** base files (before padding-only extras) *)
  pl_carried : int;
      (** base files identical in both corpus versions (main, persistent
          chunks, defaults, carried chains — extras counted separately) *)
}

let plugin_layout ~carried ~chains_carried (instances : Plan.inst list) =
  let sel p = List.length (List.filter p instances) in
  let selc p = List.length (List.filter (fun i -> p i && carried i) instances) in
  let is_clean (i : Plan.inst) =
    i.Plan.in_placement = Plan.Clean_file && i.Plan.in_pattern <> Plan.T_uninit
  in
  let is_uninit (i : Plan.inst) = i.Plan.in_pattern = Plan.T_uninit in
  let is_oop (i : Plan.inst) = i.Plan.in_placement = Plan.Oop_file in
  let is_deep (i : Plan.inst) = i.Plan.in_placement = Plan.Deep_file in
  let ceil_div a b = (a + b - 1) / b in
  let c = sel is_clean and pc = selc is_clean in
  let u = sel is_uninit and pu = selc is_uninit in
  let o = sel is_oop and po = selc is_oop in
  let deep = sel is_deep in
  {
    pl_files =
      1 (* main *)
      + ceil_div pc Builder.clean_chunk
      + ceil_div (c - pc) Builder.clean_chunk
      + ceil_div pu Builder.uninit_chunk
      + ceil_div (u - pu) Builder.uninit_chunk
      + (if pu > 0 then 1 else 0) (* defaults.php *)
      + (if u - pu > 0 then 1 else 0) (* defaults-extra.php *)
      + ceil_div po Builder.oop_chunk
      + ceil_div (o - po) Builder.oop_chunk
      + (if deep > 0 then 1 + Builder.chain_len else 0);
    pl_carried =
      1
      + ceil_div pc Builder.clean_chunk
      + ceil_div pu Builder.uninit_chunk
      + (if pu > 0 then 1 else 0)
      + ceil_div po Builder.oop_chunk
      + (if deep > 0 && chains_carried then Builder.chain_len else 0);
  }

let generate ?(scale = 1.0) version : corpus =
  Filler.reset ();
  let pers_ids = Plan.persistent_ids () in
  let carried (i : Plan.inst) = Plan.SS.mem i.Plan.in_id pers_ids in
  (* chain files carry over only where the plugin is deep in BOTH versions
     (the engine file itself is version-specific) *)
  let chains_carried k =
    List.mem k (Plan.deep_plugins Plan.V2012)
    && List.mem k (Plan.deep_plugins Plan.V2014)
  in
  let layout v =
    let instances = Plan.instances v in
    let by_plugin = Array.make 35 [] in
    List.iter
      (fun (i : Plan.inst) ->
        by_plugin.(i.Plan.in_plugin) <- i :: by_plugin.(i.Plan.in_plugin))
      instances;
    Array.iteri (fun k l -> by_plugin.(k) <- List.rev l) by_plugin;
    let layouts =
      Array.mapi
        (fun k insts ->
          plugin_layout ~carried ~chains_carried:(chains_carried k) insts)
        by_plugin
    in
    (* padding: bring the total file count up to the paper's corpus size *)
    let base_total =
      Array.fold_left (fun acc l -> acc + l.pl_files) 0 layouts
    in
    let scaled_files =
      max base_total
        (int_of_float (scale *. float_of_int (Plan.target_files v)))
    in
    let extra_total = max 0 (scaled_files - base_total) in
    let extras = Array.make 35 (extra_total / 35) in
    for k = 0 to (extra_total mod 35) - 1 do
      extras.(k) <- extras.(k) + 1
    done;
    (by_plugin, layouts, extras, scaled_files)
  in
  let _, _, extras12, scaled12 = layout Plan.V2012 in
  (* every carried file — in either version — is padded to the 2012 quota,
     so its content is the same bytes in both corpora *)
  let q12 =
    int_of_float
      (scale *. float_of_int (Plan.target_loc Plan.V2012)
      /. float_of_int scaled12)
  in
  let by_plugin, extras, carried_extras, file_quota =
    match version with
    | Plan.V2012 ->
        let by, _, ex, _ = layout Plan.V2012 in
        (by, ex, Array.copy ex, q12)
    | Plan.V2014 ->
        let by, layouts, ex, scaled14 = layout Plan.V2014 in
        let carried_extras =
          Array.init 35 (fun k -> min extras12.(k) ex.(k))
        in
        let carried_total =
          Array.fold_left (fun acc l -> acc + l.pl_carried) 0 layouts
          + Array.fold_left ( + ) 0 carried_extras
        in
        (* version-specific files absorb the LOC the carried files do not
           provide, keeping the corpus on the paper's 2014 size *)
        let new_files = max 1 (scaled14 - carried_total) in
        let q_new =
          int_of_float
            ((scale *. float_of_int (Plan.target_loc Plan.V2014)
             -. float_of_int (carried_total * q12))
            /. float_of_int new_files)
        in
        (by, ex, carried_extras, max 1 q_new)
  in
  let plugins =
    List.init 35 (fun k ->
        let name = plugin_names.(k) in
        let { Builder.project; seeds } =
          Builder.build ~version ~plugin_name:name ~instances:by_plugin.(k)
            ~carried ~extra_files:extras.(k)
            ~carried_extra_files:carried_extras.(k)
            ~chains_carried:(chains_carried k) ~file_quota
            ~carried_file_quota:q12
        in
        { po_name = name; po_project = project; po_seeds = seeds })
  in
  {
    version;
    plugins;
    seeds = List.concat_map (fun p -> p.po_seeds) plugins;
  }

(** Total files and LOC across the corpus, for the §V.E size report. *)
let stats corpus =
  List.fold_left
    (fun (files, loc) p ->
      ( files + Phplang.Project.file_count p.po_project,
        loc + Phplang.Loc.project_loc p.po_project ))
    (0, 0) corpus.plugins
