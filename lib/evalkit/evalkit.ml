(** Evaluation harness facade: runs the three tools on both corpus versions
    and regenerates every table and figure of the paper's §V. *)

module Metrics = Metrics
module Matching = Matching
module Runner = Runner
module Venn = Venn
module Vectors = Vectors
module Inertia = Inertia
module Robustness = Robustness
module Tables = Tables

let evaluate = Runner.evaluate

module Ablation = Ablation
module Context_delta = Context_delta
module Flow_delta = Flow_delta
module Class_delta = Class_delta

(** Run both versions and print the full report to [ppf].  With [~pool] the
    analysis fans out across domains (same results, less wall time). *)
let evaluate_and_report ?with_ablation ?pool ppf =
  let ev2012 = Runner.evaluate ?pool Corpus.Plan.V2012 in
  let ev2014 = Runner.evaluate ?pool Corpus.Plan.V2014 in
  Tables.full_report ?with_ablation ppf ~ev2012 ~ev2014;
  (ev2012, ev2014)

module History = History
module Scaling = Scaling
module Incremental = Incremental
module Editstorm = Editstorm
module Serve_bench = Serve_bench
module Chaos = Chaos
module Pattern_report = Pattern_report
module Faults = Faults
