(** Matching tool findings against the corpus ground truth.

    A finding matches a seed when plugin, file, sink line and vulnerability
    kind all agree — the normalized "single repository" comparison of the
    paper's §IV.B step 5, with the generator's labels replacing the manual
    expert verification. *)

open Secflow

(** Finding identity across the whole corpus. *)
module Qkey = struct
  type t = { plugin : string; key : Report.key }

  let compare a b =
    match String.compare a.plugin b.plugin with
    | 0 -> Report.compare_key a.key b.key
    | c -> c
end

module Qset = Set.Make (Qkey)
module Qmap = Map.Make (Qkey)

let qkey_of_seed (s : Corpus.Gt.seed) : Qkey.t =
  { Qkey.plugin = s.Corpus.Gt.plugin; key = Corpus.Gt.key_of s }

(** Per-tool, per-plugin raw results. *)
type tool_output = {
  to_tool : string;
  to_results : (string * Report.result) list;  (** plugin name × result *)
}

(** De-duplicated detection set of a tool over the whole corpus. *)
let detections (out : tool_output) : Qset.t =
  List.fold_left
    (fun acc (plugin, result) ->
      Report.Key_set.fold
        (fun key acc -> Qset.add { Qkey.plugin; key } acc)
        (Report.keys result) acc)
    Qset.empty out.to_results

type classified = {
  cl_tool : string;
  cl_tp : Corpus.Gt.seed list;       (** real vulnerabilities detected *)
  cl_trap_fp : Corpus.Gt.seed list;  (** planned FP traps triggered *)
  cl_stray_fp : Qkey.t list;
      (** detections matching no seed at all — should stay at zero; any
          entry is an analyzer or generator bug worth investigating *)
}

let classify ~(seeds : Corpus.Gt.seed list) (out : tool_output) : classified =
  Obs.span "evalkit.matching" @@ fun () ->
  let index =
    List.fold_left
      (fun m s -> Qmap.add (qkey_of_seed s) s m)
      Qmap.empty seeds
  in
  let dets = detections out in
  let tp = ref [] and trap = ref [] and stray = ref [] in
  Qset.iter
    (fun q ->
      match Qmap.find_opt q index with
      | Some seed ->
          if Corpus.Gt.is_real seed then tp := seed :: !tp
          else trap := seed :: !trap
      | None -> stray := q :: !stray)
    dets;
  {
    cl_tool = out.to_tool;
    cl_tp = List.rev !tp;
    cl_trap_fp = List.rev !trap;
    cl_stray_fp = List.rev !stray;
  }

let seed_ids seeds =
  List.fold_left
    (fun acc (s : Corpus.Gt.seed) -> s.Corpus.Gt.seed_id :: acc)
    [] seeds
  |> List.sort_uniq String.compare

(** The union of real vulnerabilities found by any tool — the paper's
    reference set for Recall ("we considered as the FN of one tool the
    vulnerabilities that it did not detect but were detected by the other
    tools"). *)
let detected_union (cls : classified list) : Corpus.Gt.seed list =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun c ->
      List.iter
        (fun (s : Corpus.Gt.seed) ->
          if not (Hashtbl.mem tbl s.Corpus.Gt.seed_id) then
            Hashtbl.replace tbl s.Corpus.Gt.seed_id s)
        c.cl_tp)
    cls;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun (a : Corpus.Gt.seed) b ->
         String.compare a.Corpus.Gt.seed_id b.Corpus.Gt.seed_id)

(** TP/FP/FN for one tool restricted to vulnerability kind [kind]
    ([None] = global). *)
let metrics_for ?kind ~(union : Corpus.Gt.seed list) (c : classified) :
    Metrics.t =
  let of_kind (s : Corpus.Gt.seed) =
    match kind with
    | None -> true
    | Some k -> Vuln.equal_kind (Corpus.Gt.kind_of s) k
  in
  let tp = List.filter of_kind c.cl_tp in
  let fp =
    List.length (List.filter of_kind c.cl_trap_fp)
    + List.length
        (match kind with
        | None -> c.cl_stray_fp
        | Some k ->
            List.filter (fun (q : Qkey.t) -> q.Qkey.key.Report.k_kind = k) c.cl_stray_fp)
  in
  let tp_ids = seed_ids tp in
  let fn =
    List.length
      (List.filter
         (fun (s : Corpus.Gt.seed) ->
           of_kind s && not (List.mem s.Corpus.Gt.seed_id tp_ids))
         union)
  in
  Metrics.make ~tp:(List.length tp) ~fp ~fn
