(** Formatting of every table and figure in the paper's evaluation section,
    with the paper-reported values printed alongside the measured ones so
    reproduction quality is visible at a glance. *)

open Secflow

let tool_names = [ "phpSAFE"; "RIPS"; "Pixy" ]

(* Paper-reported Table I values: (tool, version) -> tp, fp per kind.
   Used only for display, never for computation. *)
let paper_table1 ~tool ~year ~kind =
  match (tool, year, kind) with
  | "phpSAFE", 2012, `Xss -> Some (307, 63)
  | "phpSAFE", 2014, `Xss -> Some (374, 57)
  | "RIPS", 2012, `Xss -> Some (134, 79)
  | "RIPS", 2014, `Xss -> Some (288, 47)
  | "Pixy", 2012, `Xss -> Some (50, 185)
  | "Pixy", 2014, `Xss -> Some (20, 197)
  | "phpSAFE", 2012, `Sqli -> Some (8, 2)
  | "phpSAFE", 2014, `Sqli -> Some (9, 5)
  | "RIPS", 2012, `Sqli -> Some (0, 0)
  | "RIPS", 2014, `Sqli -> Some (0, 1)
  | "Pixy", (2012 | 2014), `Sqli -> Some (0, 0)
  | "phpSAFE", 2012, `Global -> Some (315, 65)
  | "phpSAFE", 2014, `Global -> Some (387, 62)
  | "RIPS", 2012, `Global -> Some (134, 79)
  | "RIPS", 2014, `Global -> Some (304, 79)
  | "Pixy", 2012, `Global -> Some (50, 187)
  | "Pixy", 2014, `Global -> Some (20, 208)
  | _ -> None

let section ppf title =
  Format.fprintf ppf "@.== %s ==@." title

let metrics_of ev tool kind =
  let c = Runner.classified_for ev tool in
  let kind = match kind with `Xss -> Some Vuln.Xss | `Sqli -> Some Vuln.Sqli | `Global -> None in
  Matching.metrics_for ?kind ~union:ev.Runner.ev_union c

(** Table I — vulnerabilities of the 2012 and 2014 plugin versions. *)
let table1 ppf ~(ev2012 : Runner.evaluation) ~(ev2014 : Runner.evaluation) =
  section ppf
    "TABLE I: vulnerabilities of 2012 and 2014 plugin versions (measured | paper)";
  let print_block kind_label kind =
    Format.fprintf ppf "@.-- %s --@." kind_label;
    Format.fprintf ppf "%-10s %-8s %27s %27s@." "metric" "tool" "V.2012" "V.2014";
    let row label f =
      List.iter
        (fun tool ->
          let m12 = metrics_of ev2012 tool kind in
          let m14 = metrics_of ev2014 tool kind in
          let p12 =
            match paper_table1 ~tool ~year:2012 ~kind with
            | Some (tp, fp) -> f (`Paper (tp, fp))
            | None -> "-"
          in
          let p14 =
            match paper_table1 ~tool ~year:2014 ~kind with
            | Some (tp, fp) -> f (`Paper (tp, fp))
            | None -> "-"
          in
          Format.fprintf ppf "%-10s %-8s %15s | %9s %15s | %9s@." label tool
            (f (`Measured m12)) p12
            (f (`Measured m14)) p14)
        tool_names
    in
    row "TP" (function
      | `Measured m -> string_of_int m.Metrics.tp
      | `Paper (tp, _) -> string_of_int tp);
    row "FP" (function
      | `Measured m -> string_of_int m.Metrics.fp
      | `Paper (_, fp) -> string_of_int fp);
    row "Precision" (function
      | `Measured m -> Metrics.pct (Metrics.precision m)
      | `Paper (tp, fp) ->
          Metrics.pct (Metrics.precision (Metrics.make ~tp ~fp ~fn:0)));
    row "Recall" (function
      | `Measured m -> Metrics.pct (Metrics.recall m)
      | `Paper _ -> "");
    row "F-score" (function
      | `Measured m -> Metrics.pct (Metrics.f_score m)
      | `Paper _ -> "")
  in
  print_block "XSS" `Xss;
  print_block "SQLi" `Sqli;
  print_block "Global" `Global;
  Format.fprintf ppf
    "@.note: paper Recall/F-score use the paper's own union; see EXPERIMENTS.md@."

(** Fig. 2 — tools' vulnerability detection overlap. *)
let figure2 ppf ~(ev : Runner.evaluation) =
  let get name = Runner.classified_for ev name in
  let regions =
    Venn.compute
      ~all_real:(Corpus.real_vulns ev.Runner.ev_corpus)
      ~phpsafe:(get "phpSAFE") ~rips:(get "RIPS") ~pixy:(get "Pixy")
  in
  section ppf
    (Printf.sprintf "FIG. 2 data: detection overlap, version %s"
       (Corpus.Plan.version_to_string ev.Runner.ev_version));
  Format.fprintf ppf "phpSAFE only          : %d@." regions.Venn.only_phpsafe;
  Format.fprintf ppf "RIPS only             : %d@." regions.Venn.only_rips;
  Format.fprintf ppf "Pixy only             : %d@." regions.Venn.only_pixy;
  Format.fprintf ppf "phpSAFE ∩ RIPS        : %d@." regions.Venn.phpsafe_rips;
  Format.fprintf ppf "phpSAFE ∩ Pixy        : %d@." regions.Venn.phpsafe_pixy;
  Format.fprintf ppf "RIPS ∩ Pixy           : %d@." regions.Venn.rips_pixy;
  Format.fprintf ppf "all three             : %d@." regions.Venn.all_three;
  Format.fprintf ppf "no tool (empty circle): %d@." regions.Venn.none;
  Format.fprintf ppf "distinct vulnerabilities detected: %d  (paper: %s)@."
    regions.Venn.union
    (match ev.Runner.ev_version with
    | Corpus.Plan.V2012 -> "394"
    | Corpus.Plan.V2014 -> "586")

(** Table II — malicious input vector types. *)
let table2 ppf ~(ev2012 : Runner.evaluation) ~(ev2014 : Runner.evaluation) =
  let rows =
    Vectors.compute ~union_2012:ev2012.Runner.ev_union
      ~union_2014:ev2014.Runner.ev_union
  in
  section ppf "TABLE II: malicious input vector type (measured | paper)";
  let paper = function
    | Vuln.Post -> (22, 43, 11)
    | Vuln.Get -> (96, 111, 36)
    | Vuln.Post_get_cookie -> (24, 57, 19)
    | Vuln.Db -> (211, 363, 162)
    | Vuln.File_function_array -> (41, 11, 4)
  in
  Format.fprintf ppf "%-22s %13s %13s %13s@." "Input Vectors" "V.2012" "V.2014" "Both";
  List.iter
    (fun (r : Vectors.row) ->
      let p12, p14, pb = paper r.Vectors.vector in
      Format.fprintf ppf "%-22s %5d | %5d %5d | %5d %5d | %5d@."
        (Vuln.vector_to_string r.Vectors.vector)
        r.Vectors.v2012 p12 r.Vectors.v2014 p14 r.Vectors.both pb)
    rows

(** Table III — detection time of all plugins in seconds. *)
let table3 ppf ~(ev2012 : Runner.evaluation) ~(ev2014 : Runner.evaluation) =
  section ppf "TABLE III: detection time of all plugins in seconds (measured; paper on i5 2.8GHz)";
  let paper_time = function
    | "phpSAFE", 2012 -> 17.87
    | "phpSAFE", 2014 -> 180.91
    | "RIPS", 2012 -> 69.42
    | "RIPS", 2014 -> 178.46
    | "Pixy", 2012 -> 49.57
    | "Pixy", 2014 -> 106.54
    | _ -> nan
  in
  let size12 = Robustness.corpus_size ev2012.Runner.ev_corpus in
  let size14 = Robustness.corpus_size ev2014.Runner.ev_corpus in
  Format.fprintf ppf "%-8s %18s %18s %14s@." "tool" "V.2012 (paper)" "V.2014 (paper)"
    "s/kLOC 12/14";
  List.iter
    (fun tool ->
      let r12 = Runner.run_for ev2012 tool and r14 = Runner.run_for ev2014 tool in
      Format.fprintf ppf "%-8s %8.2f (%6.2f) %8.2f (%6.2f) %6.3f/%6.3f@." tool
        r12.Runner.tr_seconds (paper_time (tool, 2012))
        r14.Runner.tr_seconds (paper_time (tool, 2014))
        (Robustness.sec_per_kloc ~seconds:r12.Runner.tr_seconds ~loc:size12.Robustness.cs_loc)
        (Robustness.sec_per_kloc ~seconds:r14.Runner.tr_seconds ~loc:size14.Robustness.cs_loc))
    tool_names

(** §V.A — OOP/WordPress-object vulnerabilities detected per tool. *)
let oop_summary ppf ~(ev : Runner.evaluation) =
  section ppf
    (Printf.sprintf "§V.A: WordPress-object (OOP) vulnerabilities, version %s"
       (Corpus.Plan.version_to_string ev.Runner.ev_version));
  let module SS = Set.Make (String) in
  List.iter
    (fun tool ->
      let c = Runner.classified_for ev tool in
      let oop =
        List.filter (fun s -> Corpus.Gt.is_oop_wordpress s) c.Matching.cl_tp
      in
      let plugins =
        List.fold_left
          (fun acc (s : Corpus.Gt.seed) -> SS.add s.Corpus.Gt.plugin acc)
          SS.empty oop
      in
      Format.fprintf ppf "%-8s: %d OOP vulnerabilities in %d plugins@." tool
        (List.length oop) (SS.cardinal plugins))
    tool_names;
  Format.fprintf ppf "(paper: phpSAFE 151 in 10 plugins [2012], 179 in 7 [2014]; RIPS/Pixy 0)@."

(** §V.D — inertia in fixing vulnerabilities. *)
let inertia ppf ~(ev2012 : Runner.evaluation) ~(ev2014 : Runner.evaluation) =
  let t =
    Inertia.compute ~union_2012:ev2012.Runner.ev_union
      ~union_2014:ev2014.Runner.ev_union
  in
  section ppf "§V.D: inertia in fixing vulnerabilities";
  Format.fprintf ppf
    "2014 vulns: %d; already disclosed in 2012: %d (%.0f%%)  [paper: 249, 42%%]@."
    t.Inertia.total_2014 t.Inertia.persisted (100. *. t.Inertia.persisted_ratio);
  Format.fprintf ppf
    "persisted & easily exploitable (GET/POST/COOKIE): %d (%.0f%% of persisted)  [paper: 59, 24%%]@."
    t.Inertia.persisted_easy (100. *. t.Inertia.persisted_easy_ratio)

(** §V.E — robustness: corpus size, failed files, errors. *)
let robustness ppf ~(ev : Runner.evaluation) =
  let size = Robustness.corpus_size ev.Runner.ev_corpus in
  let year = Corpus.Plan.version_year ev.Runner.ev_version in
  section ppf (Printf.sprintf "§V.E: corpus size and robustness, version %d" year);
  let paper_size =
    match ev.Runner.ev_version with
    | Corpus.Plan.V2012 -> "266 files, 89,560 LOC"
    | Corpus.Plan.V2014 -> "356 files, 180,801 LOC"
  in
  Format.fprintf ppf "corpus: %d files, %d LOC  [paper: %s]@."
    size.Robustness.cs_files size.Robustness.cs_loc paper_size;
  List.iter
    (fun run ->
      let rb = Robustness.of_run run in
      let breakdown =
        match rb.Robustness.rb_by_reason with
        | [] -> ""
        | reasons ->
            Printf.sprintf " (%s)"
              (String.concat ", "
                 (List.map
                    (fun (label, n) -> Printf.sprintf "%s: %d" label n)
                    reasons))
      in
      let unresolved =
        if rb.Robustness.rb_unresolved_includes = 0 then ""
        else
          Printf.sprintf ", %d unresolved include(s)"
            rb.Robustness.rb_unresolved_includes
      in
      Format.fprintf ppf "%-8s: %d files failed%s, %d errors%s@."
        rb.Robustness.rb_tool rb.Robustness.rb_failed_files breakdown
        rb.Robustness.rb_errors unresolved)
    ev.Runner.ev_runs;
  Format.fprintf ppf
    "(paper: phpSAFE missed 1 file [2012] / 3 files [2014]; RIPS none; Pixy failed 32 files, errors 1/37)@."

(** Stray false positives (detections matching no seed) — must be zero. *)
let stray_report ppf ~(ev : Runner.evaluation) =
  List.iter
    (fun (c : Matching.classified) ->
      if c.Matching.cl_stray_fp <> [] then begin
        Format.fprintf ppf "!! %s has %d unplanned detections:@." c.Matching.cl_tool
          (List.length c.Matching.cl_stray_fp);
        List.iter
          (fun (q : Matching.Qkey.t) ->
            Format.fprintf ppf "   %s %s %s:%d@." q.Matching.Qkey.plugin
              (Vuln.kind_to_string q.Matching.Qkey.key.Report.k_kind)
              q.Matching.Qkey.key.Report.k_file q.Matching.Qkey.key.Report.k_line)
          c.Matching.cl_stray_fp
      end)
    ev.Runner.ev_classified

(** The complete evaluation report (all tables and figures).
    [with_ablation] additionally runs the six-variant E8 study (six extra
    whole-corpus phpSAFE runs per version). *)
let full_report ?(with_ablation = false) ppf ~(ev2012 : Runner.evaluation)
    ~(ev2014 : Runner.evaluation) =
  table1 ppf ~ev2012 ~ev2014;
  figure2 ppf ~ev:ev2012;
  figure2 ppf ~ev:ev2014;
  table2 ppf ~ev2012 ~ev2014;
  oop_summary ppf ~ev:ev2012;
  oop_summary ppf ~ev:ev2014;
  inertia ppf ~ev2012 ~ev2014;
  robustness ppf ~ev:ev2012;
  robustness ppf ~ev:ev2014;
  table3 ppf ~ev2012 ~ev2014;
  History.print ppf
    (History.compute ~union_2012:ev2012.Runner.ev_union
       ~union_2014:ev2014.Runner.ev_union);
  if with_ablation then begin
    Ablation.print ppf ~ev:ev2012 (Ablation.run ev2012);
    Ablation.print ppf ~ev:ev2014 (Ablation.run ev2014)
  end;
  stray_report ppf ~ev:ev2012;
  stray_report ppf ~ev:ev2014
