(** E13: precision/recall delta of the flow-sensitive body walk ([--flow])
    over the dedicated {!Corpus.Flow_suite}.  Runs phpSAFE twice (flat vs
    flow-sensitive) sequentially, so the printed table is byte-identical at
    any [--jobs] setting. *)

type t = {
  fd_reals : int;                        (** real seeds in the suite *)
  fd_foils : int;                        (** FP-trap seeds in the suite *)
  fd_flat : Matching.classified;
  fd_flow : Matching.classified;
  fd_flat_metrics : Metrics.t;
  fd_flow_metrics : Metrics.t;
  fd_new_tp : Corpus.Gt.seed list;       (** TP under flow, missed by flat *)
  fd_removed_fp : Corpus.Gt.seed list;   (** FP under flat, clean under flow *)
}

val run : unit -> t
val print : Format.formatter -> t -> unit
