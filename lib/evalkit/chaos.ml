(* E15 — deterministic service-layer chaos.  See chaos.mli. *)

type row = {
  cr_scenario : string;
  cr_report : int;
  cr_deadline : int;
  cr_overloaded : int;
  cr_transport : int;
  cr_other : int;
}

type report = {
  ch_seed : int;
  ch_rounds : int;
  ch_jobs : int;
  ch_requests : int;
  ch_rows : row list;
  ch_crashes : int;
  ch_unterminated : int;
  ch_identity_ok : bool;
  ch_overshoot_p99_ms : float;
  ch_tolerance_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Temporary directories (serve_bench style)                           *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d = Filename.concat base (Printf.sprintf "phpsafe-e15-%s-%d" tag n) in
    if Sys.file_exists d then go (n + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let project name files =
  Phplang.Project.make ~name
    (List.map (fun (path, source) -> { Phplang.Project.path; source }) files)

let vuln_project =
  project "e15-vuln"
    [ ("index.php", "<?php\n$x = $_GET['q'];\necho $x;\n");
      ("db.php",
       "<?php\n$id = $_POST['id'];\nmysql_query(\"SELECT * FROM t WHERE id \
        = $id\");\n") ]

let plain_project = project "e15-plain" [ ("ok.php", "<?php echo 'ok';\n") ]
let slow_project = project "e15-slow" [ ("s.php", "<?php echo 's';\n") ]
let disk_project = project "e15-disk" [ ("d.php", "<?php\necho $_GET['d'];\n") ]

let scan_payload ?deadline_ms ~id proj =
  Serve.Protocol.encode_scan_request
    { Serve.Protocol.sr_id = Some id;
      sr_tenant = None;
      sr_project = proj;
      sr_opts = Serve.Scan.default;
      sr_budget = Secflow.Budget.default;
      sr_deadline_ms = deadline_ms }

(* the scan hook that makes "e15-slow*" projects burn wall-clock while
   still honouring cooperative cancellation, exactly like a long analysis
   hitting its file/pass-boundary checks *)
let slow_hook (p : Phplang.Project.t) =
  let name = p.Phplang.Project.name in
  let pre = "e15-slow" in
  if
    String.length name >= String.length pre
    && String.equal (String.sub name 0 (String.length pre)) pre
  then begin
    let stop = Obs.Clock.now () +. 2.0 in
    while Obs.Clock.now () < stop do
      Thread.delay 0.005;
      Secflow.Deadline.check ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

(* every request terminates in exactly one of these *)
type outcome =
  | O_report of bool  (** delivered report; payload byte-identical? *)
  | O_deadline
  | O_overloaded
  | O_transport
  | O_other

let connect sock =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  (* a wedged daemon must surface as O_other, not hang the harness *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let classify ~expected reply =
  match Serve.Protocol.scan_report_of_reply reply with
  | Ok report -> O_report (String.equal report expected)
  | Error _ -> (
      match Secflow.Json.parse reply with
      | Error _ -> O_other
      | Ok json -> (
          match
            Option.bind
              (Option.bind (Secflow.Json.member "error" json)
                 (Secflow.Json.member "code"))
              Secflow.Json.to_string_opt
          with
          | Some "deadline_exceeded" -> O_deadline
          | Some ("overloaded" | "shutting_down") -> O_overloaded
          | Some _ | None -> O_other))

(* One request whose bytes reach the daemon via [write]; the reply (or its
   absence) is classified. *)
let exchange ~sock ~expected write =
  match connect sock with
  | exception _ -> O_transport
  | fd -> (
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      match
        write fd;
        Serve.Protocol.read_frame fd
      with
      | Serve.Protocol.Frame reply -> classify ~expected reply
      | Serve.Protocol.Eof | Serve.Protocol.Oversized _ -> O_transport
      | Serve.Protocol.Timed_out -> O_other
      | exception Serve.Protocol.Closed -> O_transport
      | exception Unix.Unix_error _ -> O_transport)

let frame_bytes payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  b

let write_slice fd b off len =
  let p = ref off in
  while !p < off + len do
    p := !p + Unix.write fd b !p (off + len - !p)
  done

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let start_daemon cfg sock =
  let t = Thread.create Serve.Daemon.run cfg in
  let give_up = Obs.Clock.now () +. 10. in
  while (not (Sys.file_exists sock)) && Obs.Clock.now () < give_up do
    Thread.delay 0.005
  done;
  if not (Sys.file_exists sock) then failwith "chaos: daemon did not come up";
  t

let stop_daemon t sock =
  (match connect sock with
  | exception _ -> ()
  | fd ->
      (try
         Serve.Protocol.write_frame fd
           (Serve.Protocol.encode_simple_request ~op:"shutdown" ());
         ignore (Serve.Protocol.read_frame fd)
       with _ -> ());
      close_quietly fd);
  Thread.join t

(* the per-round liveness probe: a daemon that can still answer [status]
   has not crashed *)
let alive sock =
  match connect sock with
  | exception _ -> false
  | fd -> (
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      match
        Serve.Protocol.write_frame fd
          (Serve.Protocol.encode_simple_request ~op:"status" ());
        Serve.Protocol.read_frame fd
      with
      | Serve.Protocol.Frame reply -> (
          match Secflow.Json.parse reply with
          | Ok json ->
              Option.bind (Secflow.Json.member "ok" json)
                Secflow.Json.to_bool_opt
              = Some true
          | Error _ -> false)
      | _ -> false
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* The suite                                                           *)
(* ------------------------------------------------------------------ *)

let scenario_order =
  [ "clean-vuln"; "clean-plain"; "trickle"; "mid-frame-cut"; "stall";
    "slow-deadline"; "disk-fault"; "overload-shed" ]

let io_timeout_s = 0.25
let tolerance_ms = 500.

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let run ?(seed = 1105) ?(rounds = 4) ~jobs () : report =
  (* identity baselines come from the in-process encoder, computed before
     the harness redirects the store to its private directory *)
  let expected_vuln = Serve.Scan.run_json Serve.Scan.default vuln_project in
  let expected_plain = Serve.Scan.run_json Serve.Scan.default plain_project in
  let expected_slow = Serve.Scan.run_json Serve.Scan.default slow_project in
  let expected_disk = Serve.Scan.run_json Serve.Scan.default disk_project in
  let saved_root = Phplang.Store.root () in
  let cache_dir = fresh_dir "cache" and sock_dir = fresh_dir "sock" in
  let sock_a = Filename.concat sock_dir "e15-a.sock" in
  let sock_b = Filename.concat sock_dir "e15-b.sock" in
  let outcomes = ref [] in
  let record scenario o = outcomes := (scenario, o) :: !outcomes in
  let overshoots = ref [] in
  let crashes = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Serve.Scan.set_before_analyze_hook None;
      Phplang.Store.set_fault_hook None;
      Phplang.Store.set_root saved_root;
      rm_rf cache_dir;
      rm_rf sock_dir)
  @@ fun () ->
  Phplang.Store.set_root (Some cache_dir);
  Serve.Scan.set_before_analyze_hook (Some slow_hook);

  (* ---- phase A: one daemon, every per-connection scenario ---- *)
  let cfg_a =
    { (Serve.Daemon.default_config (Serve.Daemon.Unix_sock sock_a)) with
      Serve.Daemon.jobs = Some jobs;
      max_queue = 16;
      io_timeout_s = Some io_timeout_s }
  in
  let daemon_a = start_daemon cfg_a sock_a in
  (try
     for round = 0 to rounds - 1 do
       let rng = Corpus.Prng.split (Corpus.Prng.create seed) ~salt:round in
       (* plain frame round-trips: the fault-free control group *)
       record "clean-vuln"
         (exchange ~sock:sock_a ~expected:expected_vuln (fun fd ->
              Serve.Protocol.write_frame fd
                (scan_payload ~id:"clean-vuln" vuln_project)));
       record "clean-plain"
         (exchange ~sock:sock_a ~expected:expected_plain (fun fd ->
              Serve.Protocol.write_frame fd
                (scan_payload ~id:"clean-plain" plain_project)));
       (* a valid frame delivered one byte at a time still scans *)
       record "trickle"
         (exchange ~sock:sock_a ~expected:expected_vuln (fun fd ->
              let b =
                frame_bytes (scan_payload ~id:"trickle" vuln_project)
              in
              for i = 0 to Bytes.length b - 1 do
                write_slice fd b i 1
              done));
       (* a frame cut mid-payload terminates as a transport error *)
       (record "mid-frame-cut"
          (match connect sock_a with
          | exception _ -> O_transport
          | fd ->
              let b =
                frame_bytes (scan_payload ~id:"cut" vuln_project)
              in
              let keep = 5 + Corpus.Prng.int rng 24 in
              (try write_slice fd b 0 (min keep (Bytes.length b))
               with Unix.Unix_error _ -> ());
              close_quietly fd;
              O_transport));
       (* a peer silent past io_timeout loses the connection — and only
          the connection *)
       record "stall"
         (exchange ~sock:sock_a ~expected:"" (fun fd ->
              let b = frame_bytes (scan_payload ~id:"stall" vuln_project) in
              write_slice fd b 0 (4 + Corpus.Prng.int rng 8);
              Thread.delay (io_timeout_s +. 0.35)));
       (* a deadlined request against an artificially slow scan *)
       let deadline_ms = 30 + Corpus.Prng.int rng 31 in
       let t0 = Obs.Clock.now () in
       let o =
         exchange ~sock:sock_a ~expected:expected_slow (fun fd ->
             Serve.Protocol.write_frame fd
               (scan_payload ~deadline_ms ~id:"slow" slow_project))
       in
       (match o with
       | O_deadline ->
           let elapsed_ms = (Obs.Clock.now () -. t0) *. 1000. in
           overshoots :=
             max 0. (elapsed_ms -. float_of_int deadline_ms) :: !overshoots
       | _ -> ());
       record "slow-deadline" o;
       (* every cache write failing with ENOSPC must not change the reply *)
       Phplang.Store.set_fault_hook
         (Some
            (fun op _path ->
              if op = `Write then
                raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))));
       Fun.protect
         ~finally:(fun () -> Phplang.Store.set_fault_hook None)
         (fun () ->
           record "disk-fault"
             (exchange ~sock:sock_a ~expected:expected_disk (fun fd ->
                  Serve.Protocol.write_frame fd
                    (scan_payload ~id:"disk" disk_project))));
       if not (alive sock_a) then incr crashes
     done
   with e ->
     stop_daemon daemon_a sock_a;
     raise e);
  stop_daemon daemon_a sock_a;

  (* ---- phase B: a zero-queue daemon sheds every scan ---- *)
  let cfg_b =
    { (Serve.Daemon.default_config (Serve.Daemon.Unix_sock sock_b)) with
      Serve.Daemon.jobs = Some jobs;
      max_queue = 0 }
  in
  let daemon_b = start_daemon cfg_b sock_b in
  (try
     for _ = 1 to rounds do
       record "overload-shed"
         (exchange ~sock:sock_b ~expected:expected_plain (fun fd ->
              Serve.Protocol.write_frame fd
                (scan_payload ~id:"shed" plain_project)))
     done;
     if not (alive sock_b) then incr crashes
   with e ->
     stop_daemon daemon_b sock_b;
     raise e);
  stop_daemon daemon_b sock_b;

  (* ---- tally ---- *)
  let rows =
    List.map
      (fun scenario ->
        List.fold_left
          (fun row (s, o) ->
            if not (String.equal s scenario) then row
            else
              match o with
              | O_report _ -> { row with cr_report = row.cr_report + 1 }
              | O_deadline -> { row with cr_deadline = row.cr_deadline + 1 }
              | O_overloaded ->
                  { row with cr_overloaded = row.cr_overloaded + 1 }
              | O_transport ->
                  { row with cr_transport = row.cr_transport + 1 }
              | O_other -> { row with cr_other = row.cr_other + 1 })
          { cr_scenario = scenario; cr_report = 0; cr_deadline = 0;
            cr_overloaded = 0; cr_transport = 0; cr_other = 0 }
          !outcomes)
      scenario_order
  in
  let identity_ok =
    List.for_all (function _, O_report ok -> ok | _ -> true) !outcomes
  in
  let sorted = Array.of_list !overshoots in
  Array.sort compare sorted;
  {
    ch_seed = seed;
    ch_rounds = rounds;
    ch_jobs = jobs;
    ch_requests = List.length !outcomes;
    ch_rows = rows;
    ch_crashes = !crashes;
    ch_unterminated = List.fold_left (fun n r -> n + r.cr_other) 0 rows;
    ch_identity_ok = identity_ok;
    ch_overshoot_p99_ms = percentile sorted 99.;
    ch_tolerance_ms = tolerance_ms;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let outcome_table (r : report) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-14s %7s %9s %11s %10s %6s\n" "scenario" "report"
       "deadline" "overloaded" "transport" "other");
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %7d %9d %11d %10d %6d\n" row.cr_scenario
           row.cr_report row.cr_deadline row.cr_overloaded row.cr_transport
           row.cr_other))
    r.ch_rows;
  let t f = List.fold_left (fun n row -> n + f row) 0 r.ch_rows in
  Buffer.add_string b
    (Printf.sprintf "%-14s %7d %9d %11d %10d %6d\n" "total"
       (t (fun r -> r.cr_report))
       (t (fun r -> r.cr_deadline))
       (t (fun r -> r.cr_overloaded))
       (t (fun r -> r.cr_transport))
       (t (fun r -> r.cr_other)));
  Buffer.contents b

let print ppf (r : report) =
  Format.fprintf ppf "@.== E15: service-layer chaos (phpsafe_serve) ==@.";
  Format.fprintf ppf
    "seed %d, %d rounds, %d requests, %d worker domains, io timeout %.2fs@."
    r.ch_seed r.ch_rounds r.ch_requests r.ch_jobs io_timeout_s;
  Format.pp_print_string ppf (outcome_table r);
  Format.fprintf ppf
    "crashes: %d   unterminated: %d   report identity: %s@." r.ch_crashes
    r.ch_unterminated
    (if r.ch_identity_ok then "byte-identical" else "MISMATCH");
  Format.fprintf ppf
    "deadline overshoot p99: %.1fms (tolerance %.0fms)   (cache and socket \
     dirs are temporary; removed)@."
    r.ch_overshoot_p99_ms r.ch_tolerance_ms
