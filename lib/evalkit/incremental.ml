(** E12 — incremental cross-version re-analysis (beyond the paper).

    The paper re-ran every tool from scratch on both plugin collections.
    With the persistent content-addressed cache ({!Phplang.Store} +
    {!Secflow.Cache}) a re-analysis only pays for what changed; this
    experiment quantifies both halves of that claim, per tool:

    - {e cold vs warm}: the V.2014 corpus analyzed against an empty cache
      directory, then again against the directory the first run populated
      (same process, so the in-memory parse memo is equally warm in both
      passes — the delta isolates the result-cache replay path);
    - {e cross-version reuse}: a fresh directory is populated by analyzing
      the V.2012 corpus, then V.2014 is analyzed against it; the
      result-namespace hit delta counts the 2014 files whose analysis was
      replayed verbatim from their unchanged 2012 counterparts.

    Everything runs sequentially in temporary cache directories (removed
    afterwards); the store root active before the experiment is restored. *)

type tool_point = {
  ip_tool : string;
  ip_cold_s : float;  (** V.2014, empty cache directory *)
  ip_warm_s : float;  (** V.2014 again, cache populated by the cold run *)
  ip_warm_hits : int;  (** result-cache replays during the warm run *)
  ip_reused : int;  (** V.2014 files replayed from a V.2012-populated cache *)
}

type report = {
  ir_files_2014 : int;  (** files in the V.2014 corpus *)
  ir_points : tool_point list;
  ir_cold_total : float;
  ir_warm_total : float;
}

(* ------------------------------------------------------------------ *)
(* Temporary cache directories                                        *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d = Filename.concat base (Printf.sprintf "phpsafe-e12-%s-%d" tag n) in
    if Sys.file_exists d then go (n + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)
(* ------------------------------------------------------------------ *)

let result_hits () =
  match
    List.find_opt
      (fun (s : Phplang.Store.stats) -> String.equal s.Phplang.Store.ns "result")
      (Phplang.Store.counters ())
  with
  | Some s -> s.Phplang.Store.hits
  | None -> 0

let run_tool (tool : Secflow.Tool.t) (corpus : Corpus.t) =
  List.iter
    (fun (p : Corpus.Catalog.plugin_output) ->
      ignore
        (tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project
          : Secflow.Report.result))
    corpus.Corpus.plugins

let timed f =
  let t0 = Obs.Clock.now () in
  f ();
  Obs.Clock.now () -. t0

let measure ?(tools = Runner.default_tools ()) ?corpus12 ?corpus14 () : report =
  Obs.span "evalkit.incremental" @@ fun () ->
  let corpus12 =
    match corpus12 with
    | Some c -> c
    | None -> Corpus.generate Corpus.Plan.V2012
  in
  let corpus14 =
    match corpus14 with
    | Some c -> c
    | None -> Corpus.generate Corpus.Plan.V2014
  in
  let files14, _ = Corpus.stats corpus14 in
  let saved_root = Phplang.Store.root () in
  let cold_dir = fresh_dir "cold" and cross_dir = fresh_dir "cross" in
  Fun.protect ~finally:(fun () ->
      Phplang.Store.set_root saved_root;
      rm_rf cold_dir;
      rm_rf cross_dir)
  @@ fun () ->
  (* cold and warm V.2014 passes against [cold_dir] *)
  Phplang.Store.set_root (Some cold_dir);
  let cold = List.map (fun t -> timed (fun () -> run_tool t corpus14)) tools in
  let warm =
    List.map
      (fun t ->
        let h0 = result_hits () in
        let s = timed (fun () -> run_tool t corpus14) in
        (s, result_hits () - h0))
      tools
  in
  (* cross-version pass: populate with V.2012, then analyze V.2014 *)
  Phplang.Store.set_root (Some cross_dir);
  List.iter (fun t -> run_tool t corpus12) tools;
  let reused =
    List.map
      (fun t ->
        let h0 = result_hits () in
        run_tool t corpus14;
        result_hits () - h0)
      tools
  in
  let points =
    List.map2
      (fun ((tool : Secflow.Tool.t), ip_cold_s) ((ip_warm_s, ip_warm_hits), ip_reused) ->
        { ip_tool = tool.Secflow.Tool.name; ip_cold_s; ip_warm_s;
          ip_warm_hits; ip_reused })
      (List.combine tools cold)
      (List.combine warm reused)
  in
  {
    ir_files_2014 = files14;
    ir_points = points;
    ir_cold_total = List.fold_left ( +. ) 0. cold;
    ir_warm_total = List.fold_left (fun acc (s, _) -> acc +. s) 0. warm;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let print ppf (r : report) =
  Format.fprintf ppf
    "@.== E12: incremental re-analysis (persistent result cache) ==@.";
  Format.fprintf ppf "%-8s %10s %10s %8s %13s %20s@." "tool" "cold 2014"
    "warm 2014" "speedup" "warm replays" "2012->2014 reuse";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-8s %9.2fs %9.2fs %7.1fx %9d/%-3d %11d/%-3d (%.1f%%)@."
        p.ip_tool p.ip_cold_s p.ip_warm_s
        (if p.ip_warm_s > 0. then p.ip_cold_s /. p.ip_warm_s else nan)
        p.ip_warm_hits r.ir_files_2014 p.ip_reused r.ir_files_2014
        (100. *. float_of_int p.ip_reused /. float_of_int r.ir_files_2014))
    r.ir_points;
  Format.fprintf ppf
    "total     %8.2fs %9.2fs %7.1fx   (cache dirs are temporary; removed)@."
    r.ir_cold_total r.ir_warm_total
    (if r.ir_warm_total > 0. then r.ir_cold_total /. r.ir_warm_total else nan)
