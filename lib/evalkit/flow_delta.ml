(** E13: precision/recall delta of the flow-sensitive body walk ([--flow],
    DESIGN.md) over the dedicated flow suite ({!Corpus.Flow_suite}).

    phpSAFE runs twice on the same suite — once with the paper's flat
    sequential walk (§III.C: "conditions and loops do not change the data
    flow"), once with [flow_sensitive] — and both runs are classified
    against the suite's exact ground truth.  The delta splits into:

    - {b new true positives}: branch- and loop-carried taint the flat
      last-write-wins walk loses before the sink;
    - {b removed false positives}: exiting-branch foils where the flat walk
      keeps a tainted overwrite the CFG never joins back.

    Both runs are sequential ({!Runner.run_tool}), so the table is
    byte-identical at any [--jobs] setting. *)

type t = {
  fd_reals : int;                        (** real seeds in the suite *)
  fd_foils : int;                        (** FP-trap seeds in the suite *)
  fd_flat : Matching.classified;
  fd_flow : Matching.classified;
  fd_flat_metrics : Metrics.t;
  fd_flow_metrics : Metrics.t;
  fd_new_tp : Corpus.Gt.seed list;       (** TP under flow, missed by flat *)
  fd_removed_fp : Corpus.Gt.seed list;   (** FP under flat, clean under flow *)
}

let seed_mem (s : Corpus.Gt.seed) seeds =
  List.exists
    (fun (s' : Corpus.Gt.seed) ->
      String.equal s.Corpus.Gt.seed_id s'.Corpus.Gt.seed_id)
    seeds

let by_id =
  List.sort (fun (a : Corpus.Gt.seed) b ->
      String.compare a.Corpus.Gt.seed_id b.Corpus.Gt.seed_id)

let run () : t =
  let suite = Corpus.Flow_suite.generate () in
  let d = Phpsafe.default_options in
  let run_variant name opts =
    let tool : Secflow.Tool.t =
      {
        Secflow.Tool.name = name;
        analyze_project = (fun p -> Phpsafe.analyze_project ~opts p);
      }
    in
    let run = Runner.run_tool tool suite in
    Matching.classify ~seeds:suite.Corpus.seeds run.Runner.tr_output
  in
  let cl_flat = run_variant "phpSAFE (flat)" d in
  let cl_flow =
    run_variant "phpSAFE (--flow)" { d with Phpsafe.flow_sensitive = true }
  in
  (* the suite's ground truth is exact, so recall is measured against all
     real seeds rather than a detected union *)
  let union = List.filter Corpus.Gt.is_real suite.Corpus.seeds in
  {
    fd_reals = List.length union;
    fd_foils = List.length suite.Corpus.seeds - List.length union;
    fd_flat = cl_flat;
    fd_flow = cl_flow;
    fd_flat_metrics = Matching.metrics_for ~union cl_flat;
    fd_flow_metrics = Matching.metrics_for ~union cl_flow;
    fd_new_tp =
      by_id
        (List.filter
           (fun s -> not (seed_mem s cl_flat.Matching.cl_tp))
           cl_flow.Matching.cl_tp);
    fd_removed_fp =
      by_id
        (List.filter
           (fun s -> not (seed_mem s cl_flow.Matching.cl_trap_fp))
           cl_flat.Matching.cl_trap_fp);
  }

let pp_seed_ids ppf seeds =
  Format.fprintf ppf "%s"
    (String.concat ", "
       (List.map
          (fun (s : Corpus.Gt.seed) ->
            Printf.sprintf "%s/%s" s.Corpus.Gt.seed_id s.Corpus.Gt.pattern)
          seeds))

let print ppf (t : t) =
  Format.fprintf ppf
    "@.== E13: flow-sensitive sanitization (--flow) precision delta ==@.";
  Format.fprintf ppf
    "flow suite: %d seeded sinks (%d real flow-carried flaws, %d \
     exiting-branch foils)@."
    (t.fd_reals + t.fd_foils) t.fd_reals t.fd_foils;
  Format.fprintf ppf "%-22s %5s %5s %5s %6s %6s@." "variant" "TP" "FP" "FN"
    "Prec" "Rec";
  List.iter
    (fun ((cl : Matching.classified), (m : Metrics.t)) ->
      Format.fprintf ppf "%-22s %5d %5d %5d %6s %6s@." cl.Matching.cl_tool
        m.Metrics.tp m.Metrics.fp m.Metrics.fn
        (Metrics.pct (Metrics.precision m))
        (Metrics.pct (Metrics.recall m)))
    [ (t.fd_flat, t.fd_flat_metrics); (t.fd_flow, t.fd_flow_metrics) ];
  Format.fprintf ppf "new true positives (flow-carried taint): %d [%a]@."
    (List.length t.fd_new_tp) pp_seed_ids t.fd_new_tp;
  Format.fprintf ppf "removed false positives (exiting branch): %d [%a]@."
    (List.length t.fd_removed_fp) pp_seed_ids t.fd_removed_fp
