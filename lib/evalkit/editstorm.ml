(** E17 — sub-file incremental re-analysis under an edit storm (beyond
    the paper).

    A deterministic, seeded storm of small edits is applied to the largest
    V.2012 plugin, and after every edit the {e whole corpus} is
    re-analyzed twice — the unit of work is the corpus because that is
    what a watch session over a plugin collection re-checks on every
    change:

    - {e incremental}: the long-lived warm path — the edited file goes
      through {!Phplang.Project.Increment.update} (checkpointed re-lexing
      of the damaged region, region re-parse, AST splice), the persistent
      {!Phplang.Store} stays on, and the analysis replays unchanged
      summaries and per-file results from cache for every plugin;
    - {e full}: the cold path — the store is disabled, the in-memory parse
      memo is bypassed, and every plugin is parsed and analyzed from
      scratch.

    The two rendered reports must be byte-identical after every edit —
    incrementality is an accelerator, never an approximation.  Four edit
    shapes exercise every pipeline path: [single-def] (a statement
    inserted into one function body — the region re-parse sweet spot),
    [whitespace] (lexically trivial damage), [cross-def] (one update
    touching two definitions — the counted region fallback), and
    [signature] (a parameter added — summary-DAG invalidation of the
    def and its callers). *)

type kind = Single_def | Whitespace | Cross_def | Signature

let kind_name = function
  | Single_def -> "single-def"
  | Whitespace -> "whitespace"
  | Cross_def -> "cross-def"
  | Signature -> "signature"

type point = {
  pt_kind : kind;
  pt_full_ms : float;
  pt_inc_ms : float;
  pt_identical : bool;  (** incremental report == cold report, byte-wise *)
}

type report = {
  es_seed : int;
  es_plugin : string;
  es_projects : int;  (** plugins re-analyzed after every edit *)
  es_files : int;
  es_edits : int;
  es_points : point list;
  es_violations : int;  (** edits whose two reports differed (must be 0) *)
  es_single_full_p50_ms : float;
  es_single_inc_p50_ms : float;
  es_single_speedup : float;  (** full p50 / incremental p50, single-def *)
  es_reparse : int;  (** parser.region.reparse over the storm *)
  es_fallback : int;  (** parser.region.fallback over the storm *)
  es_resume : int;  (** lexer.ckpt.resume over the storm *)
  es_resync_tokens : int;  (** lexer.ckpt.resync_tokens over the storm *)
  es_dag_invalidated : int;  (** summary.dag.invalidated over the storm *)
  es_dag_retained : int;  (** summary.dag.retained over the storm *)
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                      *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d = Filename.concat base (Printf.sprintf "phpsafe-e17-%s-%d" tag n) in
    if Sys.file_exists d then go (n + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let p50 = function
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      a.((Array.length a - 1) / 2)

(* every start offset of [sub] in [s], ascending *)
let occurrences ~sub s =
  let n = String.length s and m = String.length sub in
  let acc = ref [] in
  if m > 0 then
    for i = n - m downto 0 do
      if String.sub s i m = sub then acc := i :: !acc
    done;
  !acc

let insert_at s pos frag =
  String.sub s 0 pos ^ frag ^ String.sub s pos (String.length s - pos)

(* ------------------------------------------------------------------ *)
(* Edit generators (cumulative: each edit applies to the storm's       *)
(* current source, like a user typing)                                 *)
(* ------------------------------------------------------------------ *)

(* a statement inserted just inside one function's body *)
let edit_single_def rng src =
  match occurrences ~sub:"function " src with
  | [] -> None
  | fns -> (
      let at = Corpus.Prng.pick rng fns in
      match String.index_from_opt src at '{' with
      | None -> None
      | Some brace -> Some (insert_at src (brace + 1) " $e17 = 1; "))

(* one space after a statement terminator: lexically trivial damage *)
let edit_whitespace rng src =
  match occurrences ~sub:";" src with
  | [] -> None
  | semis -> Some (insert_at src (Corpus.Prng.pick rng semis + 1) " ")

(* one update touching two adjacent definitions' bodies: the region
   re-parse must detect the straddle and fall back (counted).  Comments
   would not do — they are insignificant tokens, absorbed by the
   full-identity reuse path — so real statements go in. *)
let edit_cross_def _rng src =
  match occurrences ~sub:"function " src with
  | a :: b :: _ -> (
      match
        (String.index_from_opt src a '{', String.index_from_opt src b '{')
      with
      | Some ab, Some bb when ab < bb ->
          (* later site first so the earlier offset stays valid *)
          Some
            (insert_at
               (insert_at src (bb + 1) " $e17b = 1; ")
               (ab + 1) " $e17a = 1; ")
      | _ -> None)
  | _ -> None

(* a parameter added to one function's signature: its structural digest
   changes, invalidating the def and its transitive callers in the DAG *)
let edit_signature rng src =
  match occurrences ~sub:"function " src with
  | [] -> None
  | fns -> (
      let at = Corpus.Prng.pick rng fns in
      match String.index_from_opt src at '(' with
      | None -> None
      | Some p ->
          let frag =
            if p + 1 < String.length src && src.[p + 1] = ')' then "$e17x"
            else "$e17x, "
          in
          Some (insert_at src (p + 1) frag))

let generate_edit rng kind src =
  match kind with
  | Single_def -> edit_single_def rng src
  | Whitespace -> edit_whitespace rng src
  | Cross_def -> edit_cross_def rng src
  | Signature -> edit_signature rng src

(* ------------------------------------------------------------------ *)
(* Measurement                                                        *)
(* ------------------------------------------------------------------ *)

let default_seed = 0x5afe17
let default_edits = 48

let analyze project =
  (Phpsafe.tool.Secflow.Tool.analyze_project project
    : Secflow.Report.result)

let render result = Secflow.Report.to_json ~tool:"phpSAFE" result

let measure ?(seed = default_seed) ?(edits = default_edits) ?corpus () :
    report =
  Obs.span "evalkit.editstorm" @@ fun () ->
  let corpus =
    match corpus with Some c -> c | None -> Corpus.generate Corpus.Plan.V2012
  in
  (* the largest plugin: the most summaries and files to retain *)
  let plugin =
    List.fold_left
      (fun best (p : Corpus.Catalog.plugin_output) ->
        if
          Phplang.Project.file_count p.Corpus.Catalog.po_project
          > Phplang.Project.file_count best.Corpus.Catalog.po_project
        then p
        else best)
      (List.hd corpus.Corpus.plugins)
      corpus.Corpus.plugins
  in
  let base = plugin.Corpus.Catalog.po_project in
  let name = base.Phplang.Project.name in
  let others =
    List.filter_map
      (fun (p : Corpus.Catalog.plugin_output) ->
        let pr = p.Corpus.Catalog.po_project in
        if String.equal pr.Phplang.Project.name name then None else Some pr)
      corpus.Corpus.plugins
  in
  let paths =
    List.map (fun (f : Phplang.Project.file) -> f.path) base.files
  in
  let sources : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Phplang.Project.file) -> Hashtbl.replace sources f.path f.source)
    base.files;
  let current_project () =
    Phplang.Project.make ~name
      (List.map
         (fun p ->
           { Phplang.Project.path = p; source = Hashtbl.find sources p })
         paths)
  in
  (* the corpus after the storm's edits so far: the edited plugin is
     rebuilt from [sources], every other plugin is untouched *)
  let current_corpus () = current_project () :: others in
  let saved_root = Phplang.Store.root () in
  let store_dir = fresh_dir "store" in
  let session = Phplang.Project.Increment.create () in
  Phpsafe.Analyzer.set_dag_tracking true;
  Fun.protect
    ~finally:(fun () ->
      Phpsafe.Analyzer.set_dag_tracking false;
      Phplang.Project.Parse_cache.set_enabled true;
      Phplang.Store.set_root saved_root;
      rm_rf store_dir)
  @@ fun () ->
  (* warm-up: populate the store (every plugin) and the incremental
     session (untimed) *)
  Phplang.Store.set_root (Some store_dir);
  List.iter
    (fun p ->
      ignore
        (Phplang.Project.Increment.update session ~path:p
           ~source:(Hashtbl.find sources p)
          : (Phplang.Ast.program, Phplang.Project.parse_error) result))
    paths;
  let analyze_all projects =
    String.concat "\n"
      (List.map (fun p -> render (analyze p)) projects)
  in
  ignore (analyze_all (current_corpus ()) : string);
  let counter = Obs.Mirror.get in
  let c0 =
    [ counter "parser.region.reparse"; counter "parser.region.fallback";
      counter "lexer.ckpt.resume"; counter "lexer.ckpt.resync_tokens";
      counter "summary.dag.invalidated"; counter "summary.dag.retained" ]
  in
  let rng = Corpus.Prng.create seed in
  let kinds = [| Single_def; Whitespace; Cross_def; Signature |] in
  let editable =
    List.filter
      (fun p ->
        occurrences ~sub:"function " (Hashtbl.find sources p) <> [])
      paths
  in
  let points = ref [] in
  for i = 0 to edits - 1 do
    let kind = kinds.(i mod Array.length kinds) in
    let path =
      match editable with
      | [] -> Corpus.Prng.pick rng paths
      | ps -> Corpus.Prng.pick rng ps
    in
    let src = Hashtbl.find sources path in
    match generate_edit rng kind src with
    | None -> ()
    | Some src' ->
        Hashtbl.replace sources path src';
        let projects = current_corpus () in
        (* incremental (warm) pass: damaged-region re-parse on the edited
           file, then cached summary/result replay across the corpus *)
        let t0 = Obs.Clock.now () in
        ignore
          (Phplang.Project.Increment.update session ~path ~source:src'
            : (Phplang.Ast.program, Phplang.Project.parse_error) result);
        let inc_render = analyze_all projects in
        let inc_ms = (Obs.Clock.now () -. t0) *. 1000. in
        (* full (cold) pass on the same bytes: no store, and the parse
           memo bypassed (not cleared — the incremental pass is modelling
           a long-lived warm process and must keep its entries) *)
        Phplang.Store.set_root None;
        Phplang.Project.Parse_cache.set_enabled false;
        let t0 = Obs.Clock.now () in
        let full_render = analyze_all projects in
        let full_ms = (Obs.Clock.now () -. t0) *. 1000. in
        Phplang.Project.Parse_cache.set_enabled true;
        Phplang.Store.set_root (Some store_dir);
        points :=
          {
            pt_kind = kind;
            pt_full_ms = full_ms;
            pt_inc_ms = inc_ms;
            pt_identical = String.equal inc_render full_render;
          }
          :: !points
  done;
  let points = List.rev !points in
  let deltas =
    List.map2 (fun k v0 -> counter k - v0)
      [ "parser.region.reparse"; "parser.region.fallback";
        "lexer.ckpt.resume"; "lexer.ckpt.resync_tokens";
        "summary.dag.invalidated"; "summary.dag.retained" ]
      c0
  in
  let d i = List.nth deltas i in
  let single = List.filter (fun p -> p.pt_kind = Single_def) points in
  let full_p50 = p50 (List.map (fun p -> p.pt_full_ms) single) in
  let inc_p50 = p50 (List.map (fun p -> p.pt_inc_ms) single) in
  {
    es_seed = seed;
    es_plugin = name;
    es_projects = 1 + List.length others;
    es_files = List.length paths;
    es_edits = List.length points;
    es_points = points;
    es_violations =
      List.length (List.filter (fun p -> not p.pt_identical) points);
    es_single_full_p50_ms = full_p50;
    es_single_inc_p50_ms = inc_p50;
    es_single_speedup = (if inc_p50 > 0. then full_p50 /. inc_p50 else nan);
    es_reparse = d 0;
    es_fallback = d 1;
    es_resume = d 2;
    es_resync_tokens = d 3;
    es_dag_invalidated = d 4;
    es_dag_retained = d 5;
  }

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let print ppf (r : report) =
  Format.fprintf ppf
    "@.== E17: edit-storm incremental re-analysis (seed %#x, edits in %s/%d \
     files, %d plugins re-checked per edit) ==@."
    r.es_seed r.es_plugin r.es_files r.es_projects;
  Format.fprintf ppf "%-11s %6s %12s %12s %9s@." "edit kind" "edits"
    "full p50" "incr p50" "speedup";
  List.iter
    (fun kind ->
      let ps = List.filter (fun p -> p.pt_kind = kind) r.es_points in
      if ps <> [] then begin
        let f = p50 (List.map (fun p -> p.pt_full_ms) ps) in
        let i = p50 (List.map (fun p -> p.pt_inc_ms) ps) in
        Format.fprintf ppf "%-11s %6d %9.2f ms %9.2f ms %8.1fx@."
          (kind_name kind) (List.length ps) f i
          (if i > 0. then f /. i else nan)
      end)
    [ Single_def; Whitespace; Cross_def; Signature ];
  Format.fprintf ppf
    "report identity: %d/%d byte-identical (%d violation(s))@."
    (r.es_edits - r.es_violations)
    r.es_edits r.es_violations;
  Format.fprintf ppf
    "pipeline: %d region re-parse(s), %d fallback(s), %d checkpoint \
     resume(s), %d token(s) re-lexed@."
    r.es_reparse r.es_fallback r.es_resume r.es_resync_tokens;
  Format.fprintf ppf
    "summary DAG: %d invalidated, %d retained across the storm@."
    r.es_dag_invalidated r.es_dag_retained;
  Format.fprintf ppf
    "single-def edits: %.2f ms full vs %.2f ms incremental (%.1fx; goal \
     >= 5x)@."
    r.es_single_full_p50_ms r.es_single_inc_p50_ms r.es_single_speedup
