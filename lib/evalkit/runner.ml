(** Drives the three analyzers over a corpus version and collects raw
    results plus wall time (paper §IV.B step 4: automated execution of each
    tool on all plugin files; §V.E responsiveness).

    All timing goes through {!Obs.Clock} (monotonic wall clock).  The old
    [Sys.time] measurement was process CPU time, which sums across domains
    and over-reported "wall" time by up to the pool size under [--jobs > 1];
    Table III / E4 / E10 now report true wall seconds in both modes. *)

type tool_run = {
  tr_output : Matching.tool_output;
  tr_seconds : float;  (** wall seconds to analyze the whole corpus *)
}

type evaluation = {
  ev_version : Corpus.Plan.version;
  ev_corpus : Corpus.t;
  ev_runs : tool_run list;
  ev_classified : Matching.classified list;
  ev_union : Corpus.Gt.seed list;  (** union of detected real vulns *)
}

let default_tools () : Secflow.Tool.t list =
  [ Phpsafe.tool; Rips.tool; Pixy.tool ]

(* Last-resort crash containment for one (tool, plugin) work item: the
   analyzers have their own per-file barriers, so anything arriving here is
   a whole-project abort (a tool bug, OOM, ...).  Degrading it to a result
   with every file [Failed (Crashed _)] keeps the §V.E accounting intact
   and — because the sequential and parallel drivers share this function —
   byte-identical at any pool size. *)
let crashed_result (p : Corpus.Catalog.plugin_output) exn =
  Obs.incr "evalkit.plugins.crashed";
  Secflow.Report.crashed_result
    ~files:
      (List.map
         (fun (f : Phplang.Project.file) -> f.Phplang.Project.path)
         p.Corpus.Catalog.po_project.Phplang.Project.files)
    (Printexc.to_string exn)

let run_tool (tool : Secflow.Tool.t) (corpus : Corpus.t) : tool_run =
  let t0 = Obs.Clock.now () in
  let results =
    List.map
      (fun (p : Corpus.Catalog.plugin_output) ->
        Obs.span ("evalkit.run." ^ tool.Secflow.Tool.name) (fun () ->
            let r =
              match
                tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project
              with
              | r -> r
              | exception exn -> crashed_result p exn
            in
            (p.Corpus.Catalog.po_name, r)))
      corpus.Corpus.plugins
  in
  let seconds = Obs.Clock.now () -. t0 in
  {
    tr_output = { Matching.to_tool = tool.Secflow.Tool.name; to_results = results };
    tr_seconds = seconds;
  }

(** Parallel fan-out: the unit of work is one [analyze_project] call (the
    analyzers keep all mutable state in per-run contexts), so the
    (tool × plugin) grid is scheduled dynamically across the pool.
    [Sched.map] returns results in input order, so regrouping them per tool
    reproduces the sequential output exactly — findings, outcomes and
    classification are byte-identical; only the timing fields differ.
    [tr_seconds] becomes the summed per-item wall time, the closest
    parallel analogue of the sequential CPU measurement. *)
let run_tools_parallel ~pool tools (corpus : Corpus.t) : tool_run list =
  let items =
    List.concat_map
      (fun (tool : Secflow.Tool.t) ->
        List.map (fun p -> (tool, p)) corpus.Corpus.plugins)
      tools
  in
  let results =
    Sched.map_result ~pool
      (fun ((tool : Secflow.Tool.t), (p : Corpus.Catalog.plugin_output)) ->
        Obs.span ("evalkit.run." ^ tool.Secflow.Tool.name) (fun () ->
            let t0 = Obs.Clock.now () in
            let r =
              tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project
            in
            (tool.Secflow.Tool.name, p.Corpus.Catalog.po_name, r,
             Obs.Clock.now () -. t0)))
      items
    |> List.map2
         (fun ((tool : Secflow.Tool.t), p) outcome ->
           match outcome with
           | Sched.Done item -> item
           | Sched.Cancelled ->
               (* evaluation runs never set deadlines, but account for a
                  cancellation the same way as a crash if one ever arrives *)
               ( tool.Secflow.Tool.name,
                 p.Corpus.Catalog.po_name,
                 crashed_result p Sched.Cancel,
                 0. )
           | Sched.Crashed (exn, _bt) ->
               (* per-item isolation: this (tool, plugin) crashed; the other
                  items' results are all still in the list *)
               ( tool.Secflow.Tool.name,
                 p.Corpus.Catalog.po_name,
                 crashed_result p exn,
                 0. ))
         items
  in
  List.map
    (fun (tool : Secflow.Tool.t) ->
      let mine =
        List.filter
          (fun (tn, _, _, _) -> String.equal tn tool.Secflow.Tool.name)
          results
      in
      {
        tr_output =
          { Matching.to_tool = tool.Secflow.Tool.name;
            to_results = List.map (fun (_, pn, r, _) -> (pn, r)) mine };
        tr_seconds =
          List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0. mine;
      })
    tools

let evaluate ?(tools = default_tools ()) ?pool version : evaluation =
  let corpus = Obs.span "evalkit.corpus" (fun () -> Corpus.generate version) in
  let runs =
    match pool with
    | None -> List.map (fun t -> run_tool t corpus) tools
    | Some pool -> run_tools_parallel ~pool tools corpus
  in
  let classified =
    Obs.span "evalkit.classify" @@ fun () ->
    List.map
      (fun r -> Matching.classify ~seeds:corpus.Corpus.seeds r.tr_output)
      runs
  in
  let union = Matching.detected_union classified in
  {
    ev_version = version;
    ev_corpus = corpus;
    ev_runs = runs;
    ev_classified = classified;
    ev_union = union;
  }

(** [evaluate] plus the {!Sched.stats} instrumentation of the run: work-item
    count, parse-cache hit/miss delta and wall time, overall and per tool. *)
let evaluate_with_stats ?(tools = default_tools ()) ?pool version :
    evaluation * Sched.stats =
  let cache = Phplang.Project.Parse_cache.shared in
  let hits0 = Phplang.Project.Parse_cache.hits cache in
  let misses0 = Phplang.Project.Parse_cache.misses cache in
  let t0 = Obs.Clock.now () in
  let ev = evaluate ~tools ?pool version in
  let wall = Obs.Clock.now () -. t0 in
  let stats =
    {
      Sched.st_pool_size =
        (match pool with Some p -> Sched.size p | None -> 1);
      st_work_items = List.length tools * List.length ev.ev_corpus.Corpus.plugins;
      st_files_parsed = Phplang.Project.Parse_cache.misses cache - misses0;
      st_cache_hits = Phplang.Project.Parse_cache.hits cache - hits0;
      st_wall_total = wall;
      st_wall_per_tool =
        List.map
          (fun r -> (r.tr_output.Matching.to_tool, r.tr_seconds))
          ev.ev_runs;
    }
  in
  (ev, stats)

let classified_for ev tool_name =
  List.find
    (fun (c : Matching.classified) -> String.equal c.Matching.cl_tool tool_name)
    ev.ev_classified

let run_for ev tool_name =
  List.find
    (fun r -> String.equal r.tr_output.Matching.to_tool tool_name)
    ev.ev_runs
