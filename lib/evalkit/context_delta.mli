(** E11: precision/recall delta of the sink-context-sensitive sanitization
    pass ([--contexts]) over the dedicated {!Corpus.Context_suite}.  Runs
    phpSAFE twice (flat vs context-aware) sequentially, so the printed
    table is byte-identical at any [--jobs] setting. *)

type t = {
  cd_reals : int;                        (** real seeds in the suite *)
  cd_foils : int;                        (** FP-trap seeds in the suite *)
  cd_default : Matching.classified;
  cd_ctx : Matching.classified;
  cd_default_metrics : Metrics.t;
  cd_ctx_metrics : Metrics.t;
  cd_new_tp : Corpus.Gt.seed list;       (** TP under ctx, missed by default *)
  cd_removed_fp : Corpus.Gt.seed list;   (** FP under default, clean under ctx *)
}

val run : unit -> t
val print : Format.formatter -> t -> unit
