(** E12 — incremental cross-version re-analysis: cold vs warm wall clock
    per tool against the persistent cache, and the fraction of V.2014 files
    whose analysis replays verbatim from a V.2012-populated cache. *)

type tool_point = {
  ip_tool : string;
  ip_cold_s : float;  (** V.2014, empty cache directory *)
  ip_warm_s : float;  (** V.2014 again, cache populated by the cold run *)
  ip_warm_hits : int;  (** result-cache replays during the warm run *)
  ip_reused : int;  (** V.2014 files replayed from a V.2012-populated cache *)
}

type report = {
  ir_files_2014 : int;  (** files in the V.2014 corpus *)
  ir_points : tool_point list;
  ir_cold_total : float;
  ir_warm_total : float;
}

val measure :
  ?tools:Secflow.Tool.t list ->
  ?corpus12:Corpus.t ->
  ?corpus14:Corpus.t ->
  unit ->
  report
(** Runs in temporary cache directories (removed afterwards) and restores
    the store root that was active on entry.  Corpora are generated when
    not supplied. *)

val print : Format.formatter -> report -> unit
