(** E16: per-class precision/recall of the four new vulnerability classes
    (command injection, path traversal/LFI, SSRF, second-order SQLi) over
    the dedicated class suite ({!Corpus.Classes_suite}).

    Four analyzer variants run on the same suite:

    - {b phpSAFE --second-order}: the full two-phase record/replay pass —
      the only configuration expected to reach the stored-SQLi seeds;
    - {b phpSAFE} (single-pass): same taxonomy, no persistence phase — it
      must find every first-order seed and miss every [so-sqli] seed,
      isolating the contribution of the two-phase machinery;
    - {b RIPS}: knows the PHP builtins for CMDi and LFI (its 2010 feature
      set) but has no CMS profile, no URL-shape discrimination and no
      persistence model;
    - {b Pixy}: XSS/SQLi only (2007) — the per-class floor.

    All runs are sequential ({!Runner.run_tool}) and classified against
    exact generator labels, so the table is byte-identical at any
    [--jobs] setting. *)

open Secflow

(** The classes the experiment measures, in display order. *)
let kinds =
  [ Vuln.Cmdi; Vuln.Path_traversal; Vuln.Ssrf; Vuln.Second_order_sqli ]

type variant = {
  cv_name : string;
  cv_classified : Matching.classified;
  cv_by_kind : (Vuln.kind * Metrics.t) list;
}

type t = {
  cd_reals : int;                  (** real seeds in the suite *)
  cd_foils : int;                  (** FP-trap seeds in the suite *)
  cd_variants : variant list;      (** two-phase, flat, RIPS, Pixy *)
  cd_so_only_two_phase : bool;
      (** every [so-sqli] seed found by the two-phase pass and none by any
          single-pass variant — the tentpole invariant *)
}

let so_variant_name = "phpSAFE (--second-order)"
let flat_variant_name = "phpSAFE"

let run () : t =
  let suite = Corpus.Classes_suite.generate () in
  let union = List.filter Corpus.Gt.is_real suite.Corpus.seeds in
  let classify tool =
    let run = Runner.run_tool tool suite in
    Matching.classify ~seeds:suite.Corpus.seeds run.Runner.tr_output
  in
  let d = Phpsafe.default_options in
  let variant name analyze =
    let cl = classify { Secflow.Tool.name; analyze_project = analyze } in
    { cv_name = name;
      cv_classified = cl;
      cv_by_kind =
        List.map (fun k -> (k, Matching.metrics_for ~kind:k ~union cl)) kinds }
  in
  let variants =
    [ variant so_variant_name (fun p -> Phpsafe.analyze_project_so ~opts:d p);
      variant flat_variant_name (fun p -> Phpsafe.analyze_project ~opts:d p);
      variant Rips.tool.Secflow.Tool.name Rips.tool.Secflow.Tool.analyze_project;
      variant Pixy.tool.Secflow.Tool.name Pixy.tool.Secflow.Tool.analyze_project ]
  in
  let so_metrics_of name =
    let v = List.find (fun v -> String.equal v.cv_name name) variants in
    List.assoc Vuln.Second_order_sqli v.cv_by_kind
  in
  let so_reals =
    List.filter
      (fun s -> Vuln.equal_kind (Corpus.Gt.kind_of s) Vuln.Second_order_sqli)
      union
  in
  let two_phase = so_metrics_of so_variant_name in
  let single_pass_clean =
    List.for_all
      (fun v ->
        String.equal v.cv_name so_variant_name
        || (List.assoc Vuln.Second_order_sqli v.cv_by_kind).Metrics.tp = 0)
      variants
  in
  {
    cd_reals = List.length union;
    cd_foils = List.length suite.Corpus.seeds - List.length union;
    cd_variants = variants;
    cd_so_only_two_phase =
      two_phase.Metrics.tp = List.length so_reals && single_pass_clean;
  }

let variant_for (t : t) name =
  List.find (fun v -> String.equal v.cv_name name) t.cd_variants

let metrics_for_kind (v : variant) kind = List.assoc kind v.cv_by_kind

let kind_label k = Vuln.kind_spec_name k

let print ppf (t : t) =
  Format.fprintf ppf
    "@.== E16: new vulnerability classes (cmdi, lfi, ssrf, so-sqli) ==@.";
  Format.fprintf ppf
    "class suite: %d seeded sinks (%d real, %d sanitized/shape foils)@."
    (t.cd_reals + t.cd_foils) t.cd_reals t.cd_foils;
  Format.fprintf ppf "%-24s %-8s %3s %3s %3s %6s %6s@." "variant" "class" "TP"
    "FP" "FN" "Prec" "Rec";
  List.iter
    (fun v ->
      List.iter
        (fun (k, (m : Metrics.t)) ->
          Format.fprintf ppf "%-24s %-8s %3d %3d %3d %6s %6s@." v.cv_name
            (kind_label k) m.Metrics.tp m.Metrics.fp m.Metrics.fn
            (Metrics.pct (Metrics.precision m))
            (Metrics.pct (Metrics.recall m)))
        v.cv_by_kind)
    t.cd_variants;
  Format.fprintf ppf
    "second-order seeds reachable only through the two-phase pass: %b@."
    t.cd_so_only_two_phase
