(** E14 — sustained-throughput serving (beyond the paper).

    The paper's tools are batch programs: every scan pays process startup,
    configuration loading and cold caches.  The [phpsafe_serve] daemon
    amortizes all three; this experiment quantifies the serving path
    end-to-end over its real wire protocol:

    - an in-process daemon ([Serve.Daemon.run] on its own thread) listens
      on a Unix socket in a temporary directory, with a fresh temporary
      cache directory ({!Phplang.Store});
    - [clients] client threads issue one [scan] request per V.2012 corpus
      plugin over [phpsafe-serve/1] frames — encode, connect, frame,
      decode, exactly what an external client pays;
    - the {e cold} pass runs against the empty cache, the {e warm} pass
      repeats the same requests against whatever the cold pass populated
      (disk store and in-process parse memo both hot);
    - per-pass: wall seconds, requests per second, client-observed p50 and
      p99 latency (nearest-rank, milliseconds).

    Cache and socket directories are temporary and removed; the store root
    active before the experiment is restored. *)

type pass = {
  sp_wall_s : float;
  sp_rps : float;  (** requests per second over the pass *)
  sp_p50_ms : float;  (** client-observed median latency *)
  sp_p99_ms : float;
}

type report = {
  sb_requests : int;  (** scan requests per pass (one per plugin) *)
  sb_clients : int;
  sb_jobs : int;  (** daemon worker-pool size *)
  sb_cold : pass;
  sb_warm : pass;
}

(* ------------------------------------------------------------------ *)
(* Temporary directories                                               *)
(* ------------------------------------------------------------------ *)

let fresh_dir tag =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d = Filename.concat base (Printf.sprintf "phpsafe-e14-%s-%d" tag n) in
    if Sys.file_exists d then go (n + 1)
    else begin
      Sys.mkdir d 0o755;
      d
    end
  in
  go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)
(* ------------------------------------------------------------------ *)

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let request_of (p : Corpus.Catalog.plugin_output) =
  Serve.Protocol.encode_scan_request
    { Serve.Protocol.sr_id = Some p.Corpus.Catalog.po_name;
      sr_tenant = None;
      sr_project = p.Corpus.Catalog.po_project;
      sr_opts = Serve.Scan.default;
      sr_budget = Secflow.Budget.default;
      sr_deadline_ms = None }

(* nearest-rank percentile over a sorted array *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* One pass: [clients] threads stripe the request array; each request is a
   full frame round-trip on that thread's own connection. *)
let run_pass ~sock ~clients requests =
  let n = Array.length requests in
  let lats = Array.make n 0. in
  let failure = Atomic.make None in
  let worker c =
    match connect sock with
    | exception e -> Atomic.set failure (Some e)
    | fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            try
              let i = ref c in
              while !i < n do
                let t0 = Obs.Clock.now () in
                Serve.Protocol.write_frame fd requests.(!i);
                (match Serve.Protocol.read_frame fd with
                | Serve.Protocol.Frame reply -> (
                    match Serve.Protocol.scan_report_of_reply reply with
                    | Ok _ -> ()
                    | Error msg -> failwith ("scan error reply: " ^ msg))
                | Serve.Protocol.Eof | Serve.Protocol.Oversized _
                | Serve.Protocol.Timed_out ->
                    failwith "connection lost mid-pass");
                lats.(!i) <- (Obs.Clock.now () -. t0) *. 1000.;
                i := !i + clients
              done
            with e -> Atomic.set failure (Some e))
  in
  let t0 = Obs.Clock.now () in
  let threads = List.init clients (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  let wall = Obs.Clock.now () -. t0 in
  (match Atomic.get failure with
  | Some e -> raise (Failure ("serve_bench: " ^ Printexc.to_string e))
  | None -> ());
  let sorted = Array.copy lats in
  Array.sort compare sorted;
  {
    sp_wall_s = wall;
    sp_rps = (if wall > 0. then float_of_int n /. wall else 0.);
    sp_p50_ms = percentile sorted 50.;
    sp_p99_ms = percentile sorted 99.;
  }

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let measure ?(clients = 4) ?corpus () : report =
  let corpus =
    match corpus with Some c -> c | None -> Corpus.generate Corpus.Plan.V2012
  in
  let requests =
    Array.of_list (List.map request_of corpus.Corpus.plugins)
  in
  let saved_root = Phplang.Store.root () in
  let cache_dir = fresh_dir "cache" and sock_dir = fresh_dir "sock" in
  let sock = Filename.concat sock_dir "e14.sock" in
  Fun.protect
    ~finally:(fun () ->
      Phplang.Store.set_root saved_root;
      rm_rf cache_dir;
      rm_rf sock_dir)
  @@ fun () ->
  Phplang.Store.set_root (Some cache_dir);
  let cfg =
    { (Serve.Daemon.default_config (Serve.Daemon.Unix_sock sock)) with
      Serve.Daemon.max_queue = max 64 clients }
  in
  let daemon = Thread.create Serve.Daemon.run cfg in
  (* the socket file appearing is the daemon's ready signal *)
  let deadline = Obs.Clock.now () +. 5. in
  while (not (Sys.file_exists sock)) && Obs.Clock.now () < deadline do
    Thread.delay 0.01
  done;
  if not (Sys.file_exists sock) then
    failwith "serve_bench: daemon did not come up";
  let finish () =
    (* drain and join even when a pass failed, so no thread leaks *)
    (match connect sock with
    | exception _ -> ()
    | fd ->
        (try
           Serve.Protocol.write_frame fd
             (Serve.Protocol.encode_simple_request ~op:"shutdown" ());
           ignore (Serve.Protocol.read_frame fd)
         with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ()));
    Thread.join daemon
  in
  match
    let cold = run_pass ~sock ~clients requests in
    let warm = run_pass ~sock ~clients requests in
    (cold, warm)
  with
  | cold, warm ->
      finish ();
      {
        sb_requests = Array.length requests;
        sb_clients = clients;
        sb_jobs = Sched.default_size ();
        sb_cold = cold;
        sb_warm = warm;
      }
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let print ppf (r : report) =
  Format.fprintf ppf
    "@.== E14: sustained-throughput serving (phpsafe_serve) ==@.";
  Format.fprintf ppf
    "%d scan requests/pass, %d client connections, %d worker domains@."
    r.sb_requests r.sb_clients r.sb_jobs;
  Format.fprintf ppf "%-6s %9s %9s %10s %10s@." "pass" "wall" "req/s" "p50"
    "p99";
  let line name p =
    Format.fprintf ppf "%-6s %8.2fs %9.1f %8.1fms %8.1fms@." name p.sp_wall_s
      p.sp_rps p.sp_p50_ms p.sp_p99_ms
  in
  line "cold" r.sb_cold;
  line "warm" r.sb_warm;
  Format.fprintf ppf
    "warm speedup: %.1fx   (cache and socket dirs are temporary; removed)@."
    (if r.sb_warm.sp_wall_s > 0. then
       r.sb_cold.sp_wall_s /. r.sb_warm.sp_wall_s
     else nan)
