(** E10 — scaling study: per-tool wall time and seconds/kLOC on corpora
    regenerated at several size multipliers (the measured form of §V.E's
    "should scale to larger files"). *)

type point = {
  sp_scale : float;
  sp_files : int;
  sp_loc : int;
  sp_seconds : (string * float) list;  (** per tool *)
}

val default_scales : float list
(** [0.5; 1.0; 2.0; 4.0] *)

val measure :
  ?scales:float list ->
  ?tools:Secflow.Tool.t list ->
  Corpus.Plan.version ->
  point list

val print : Format.formatter -> point list -> unit
