(** Deterministic fault injection for the robustness harness.

    Mutates well-formed corpus plugins into the pathological inputs the
    fault-tolerance layer must survive: truncated and byte-corrupted
    sources, unterminated strings/heredocs, nesting beyond the parser
    fuel, include cycles, binary blobs and empty files.  All randomness
    comes from the corpus PRNG ({!Corpus.Prng}), so a (seed, count) pair
    always produces the same mutants — the fault suite's robustness table
    is reproducible bit-for-bit, sequentially or across domains.

    The invariant under test ([test/test_faults.ml]): every analyzer
    returns a {!Secflow.Report.result} for every mutant — structured
    [Failed _] outcomes, never an escaped exception, never a hang. *)

type kind =
  | Truncate  (** cut the source at a random byte offset *)
  | Corrupt_bytes  (** overwrite 1–8 random bytes with random values *)
  | Unterminated_string  (** append a string literal that never closes *)
  | Unterminated_heredoc  (** append a [<<<EOT] with no terminator *)
  | Deep_nesting
      (** append expressions nested past the parser's fuel limit *)
  | Include_cycle
      (** add mutually-including files wired into an existing one *)
  | Binary_blob  (** replace a source with random binary data *)
  | Empty_file  (** replace a source with the empty string *)

val all_kinds : kind list

val kind_label : kind -> string

val mutate : Corpus.Prng.t -> kind -> Phplang.Project.t -> Phplang.Project.t
(** Apply one fault of the given kind to a (PRNG-chosen) file of the
    project; the mutant's name records the fault kind. *)

val mutants :
  seed:int -> count:int -> Phplang.Project.t -> (kind * Phplang.Project.t) list
(** [mutants ~seed ~count project] derives [count] mutants, cycling through
    {!all_kinds} with an independent PRNG per mutant.  Deterministic in
    (seed, count, project). *)
