(** E10 — scaling study (beyond the paper).

    §V.E argues from two corpus sizes that "phpSAFE and RIPS should scale to
    larger files".  This study measures it: the 2012 corpus is regenerated
    at several size multipliers (same seeded vulnerabilities, more realistic
    plugin bulk) and each tool's wall time and seconds-per-kLOC are recorded.
    Near-constant s/kLOC across scales means linear scaling. *)

type point = {
  sp_scale : float;
  sp_files : int;
  sp_loc : int;
  sp_seconds : (string * float) list;  (** per tool *)
}

let default_scales = [ 0.5; 1.0; 2.0; 4.0 ]

let measure ?(scales = default_scales) ?(tools = Runner.default_tools ())
    version : point list =
  Obs.span "evalkit.scaling" @@ fun () ->
  List.map
    (fun scale ->
      let corpus = Corpus.generate ~scale version in
      let files, loc = Corpus.stats corpus in
      let seconds =
        List.map
          (fun (tool : Secflow.Tool.t) ->
            (* wall clock, not Sys.time CPU time: E10's s/kLOC would
               otherwise be inflated whenever domains are active *)
            let t0 = Obs.Clock.now () in
            List.iter
              (fun (p : Corpus.Catalog.plugin_output) ->
                ignore
                  (tool.Secflow.Tool.analyze_project p.Corpus.Catalog.po_project))
              corpus.Corpus.plugins;
            (tool.Secflow.Tool.name, Obs.Clock.now () -. t0))
          tools
      in
      { sp_scale = scale; sp_files = files; sp_loc = loc; sp_seconds = seconds })
    scales

let print ppf (points : point list) =
  Format.fprintf ppf
    "@.== E10: scaling study (2012 corpus at several size multipliers) ==@.";
  Format.fprintf ppf "%-7s %7s %9s" "scale" "files" "kLOC";
  (match points with
  | p :: _ ->
      List.iter (fun (tool, _) -> Format.fprintf ppf " %9s (s/kLOC)" tool) p.sp_seconds
  | [] -> ());
  Format.fprintf ppf "@.";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-7.2f %7d %9.1f" p.sp_scale p.sp_files
        (float_of_int p.sp_loc /. 1000.);
      List.iter
        (fun (_, s) ->
          Format.fprintf ppf " %7.2fs (%6.4f)" s
            (Robustness.sec_per_kloc ~seconds:s ~loc:p.sp_loc))
        p.sp_seconds;
      Format.fprintf ppf "@.")
    points
