(** E17 — sub-file incremental re-analysis under a deterministic edit
    storm: per-edit wall clock of the warm incremental pipeline
    (checkpointed re-lexing, region re-parse, cached summary/result
    replay) against a cold full re-analysis of the same bytes, with
    byte-identical-report verification after every edit.  See editstorm.ml
    for the edit shapes and what each exercises. *)

type kind = Single_def | Whitespace | Cross_def | Signature

val kind_name : kind -> string

type point = {
  pt_kind : kind;
  pt_full_ms : float;  (** cold full re-analysis of the whole corpus *)
  pt_inc_ms : float;  (** incremental update + warm corpus re-analysis *)
  pt_identical : bool;  (** the two rendered reports match byte-for-byte *)
}

type report = {
  es_seed : int;
  es_plugin : string;  (** the plugin the edits landed in *)
  es_projects : int;  (** plugins re-analyzed after every edit *)
  es_files : int;
  es_edits : int;
  es_points : point list;
  es_violations : int;  (** points with differing reports — must be 0 *)
  es_single_full_p50_ms : float;
  es_single_inc_p50_ms : float;
  es_single_speedup : float;
      (** median full / median incremental, single-definition edits only —
          the headline claim (goal: >= 5x) *)
  es_reparse : int;
  es_fallback : int;
  es_resume : int;
  es_resync_tokens : int;
  es_dag_invalidated : int;
  es_dag_retained : int;
}

val measure : ?seed:int -> ?edits:int -> ?corpus:Corpus.t -> unit -> report
(** Run the storm (default: seed [0x5afe17], 48 edits landing in the
    largest V.2012 plugin; every edit re-analyzes the whole corpus both
    ways).  Uses its own temporary store directory; the store root active
    before the call is restored, and summary-DAG tracking is turned back
    off. *)

val print : Format.formatter -> report -> unit
