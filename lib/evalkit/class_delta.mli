(** E16: per-class precision/recall of the four new vulnerability classes
    over the dedicated class suite ({!Corpus.Classes_suite}) — see the
    implementation header for the four analyzer variants compared. *)

open Secflow

val kinds : Vuln.kind list
(** The measured classes, in display order: cmdi, lfi, ssrf, so-sqli. *)

type variant = {
  cv_name : string;
  cv_classified : Matching.classified;
  cv_by_kind : (Vuln.kind * Metrics.t) list;  (** one entry per {!kinds} *)
}

type t = {
  cd_reals : int;
  cd_foils : int;
  cd_variants : variant list;  (** two-phase, flat, RIPS, Pixy *)
  cd_so_only_two_phase : bool;
      (** every [so-sqli] seed found by the two-phase pass and none by any
          single-pass variant *)
}

val so_variant_name : string
(** ["phpSAFE (--second-order)"]. *)

val flat_variant_name : string
(** ["phpSAFE"] — single-pass, same taxonomy. *)

val run : unit -> t
(** Sequential and deterministic: byte-identical at any [--jobs]. *)

val variant_for : t -> string -> variant
(** Lookup by variant name; raises [Not_found]. *)

val metrics_for_kind : variant -> Vuln.kind -> Metrics.t

val print : Format.formatter -> t -> unit
