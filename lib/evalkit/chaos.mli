(** E15 — deterministic service-layer chaos (beyond the paper).

    Drives a live [phpsafe_serve] daemon through seed-derived fault
    scenarios at the three layers the robustness work hardened:

    - {b socket faults}: a full frame trickled one byte at a time, a
      connection cut mid-frame, a peer that stalls past the daemon's I/O
      timeout;
    - {b disk faults}: the {!Phplang.Store} fault hook raising [ENOSPC]
      on every cache write during a scan;
    - {b time faults}: artificially slow scans (a
      {!Serve.Scan.set_before_analyze_hook} that burns wall-clock while
      honouring {!Secflow.Deadline} checks) against tight [deadline_ms]
      requests, plus a zero-queue daemon shedding everything as
      [overloaded].

    The invariant: the daemon never crashes, and {e every} request
    terminates in exactly one of {report, deadline_exceeded, overloaded,
    transport error} — nothing hangs, nothing escapes.  All randomness
    comes from {!Corpus.Prng}, scenarios run sequentially, and
    {!outcome_table} contains counts only — so the table is byte-identical
    for the same seed at any worker-pool size ([test/test_chaos.ml]
    diffs [jobs:1] against [jobs:4]). *)

type row = {
  cr_scenario : string;
  cr_report : int;  (** delivered scan reports *)
  cr_deadline : int;  (** structured [deadline_exceeded] replies *)
  cr_overloaded : int;  (** structured [overloaded] replies *)
  cr_transport : int;  (** clean transport-level terminations *)
  cr_other : int;  (** anything else — must be 0 *)
}

type report = {
  ch_seed : int;
  ch_rounds : int;
  ch_jobs : int;  (** daemon worker-pool size *)
  ch_requests : int;  (** total requests issued across both phases *)
  ch_rows : row list;  (** one row per scenario, fixed order *)
  ch_crashes : int;  (** failed per-round daemon liveness probes *)
  ch_unterminated : int;  (** requests outside the four terminal classes *)
  ch_identity_ok : bool;
      (** every delivered report was byte-identical to the in-process
          [Scan.run_json] for the same project *)
  ch_overshoot_p99_ms : float;
      (** p99 of (reply latency − deadline) over the slow-deadline
          scenarios: how far past its deadline a cancelled request's
          reply arrived *)
  ch_tolerance_ms : float;  (** stated overshoot tolerance *)
}

val scenario_order : string list
(** The fixed scenario row order of {!report.ch_rows}; every round issues
    one request per phase-A scenario and phase B adds the
    ["overload-shed"] batch. *)

val run : ?seed:int -> ?rounds:int -> jobs:int -> unit -> report
(** Run the full chaos suite against private daemons (temporary cache and
    socket directories, removed afterwards; the ambient store root and
    both process-global fault hooks are restored whatever happens).
    Defaults: [seed 1105], [rounds 4]. *)

val outcome_table : report -> string
(** The per-scenario outcome counts as a fixed-width table.  Counts only —
    no timings — so equal seeds must render byte-identical tables at any
    [jobs]. *)

val print : Format.formatter -> report -> unit
(** {!outcome_table} plus the non-deterministic trailer (overshoot p99,
    crash and termination verdicts). *)
