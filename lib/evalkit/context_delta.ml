(** E11: precision/recall delta of the sink-context-sensitive sanitization
    pass ([--contexts], DESIGN.md) over the dedicated context suite
    ({!Corpus.Context_suite}).

    phpSAFE runs twice on the same suite — once with the paper's flat
    (context-free) sanitizer model, once with [infer_contexts] — and both
    runs are classified against the suite's exact ground truth.  The delta
    splits into:

    - {b new true positives}: real context mismatches (inadequate sanitizer
      for the inferred sink context) the flat model accepts as sanitized;
    - {b removed false positives}: adequate-sanitizer foils the flat revert
      model flags.

    Both runs are sequential ({!Runner.run_tool}), so the table is
    byte-identical at any [--jobs] setting. *)

type t = {
  cd_reals : int;                        (** real seeds in the suite *)
  cd_foils : int;                        (** FP-trap seeds in the suite *)
  cd_default : Matching.classified;
  cd_ctx : Matching.classified;
  cd_default_metrics : Metrics.t;
  cd_ctx_metrics : Metrics.t;
  cd_new_tp : Corpus.Gt.seed list;       (** TP under ctx, missed by default *)
  cd_removed_fp : Corpus.Gt.seed list;   (** FP under default, clean under ctx *)
}

let seed_mem (s : Corpus.Gt.seed) seeds =
  List.exists
    (fun (s' : Corpus.Gt.seed) ->
      String.equal s.Corpus.Gt.seed_id s'.Corpus.Gt.seed_id)
    seeds

let by_id =
  List.sort (fun (a : Corpus.Gt.seed) b ->
      String.compare a.Corpus.Gt.seed_id b.Corpus.Gt.seed_id)

let run () : t =
  let suite = Corpus.Context_suite.generate () in
  let d = Phpsafe.default_options in
  let run_variant name opts =
    let tool : Secflow.Tool.t =
      {
        Secflow.Tool.name = name;
        analyze_project = (fun p -> Phpsafe.analyze_project ~opts p);
      }
    in
    let run = Runner.run_tool tool suite in
    Matching.classify ~seeds:suite.Corpus.seeds run.Runner.tr_output
  in
  let cl_default = run_variant "phpSAFE (flat)" d in
  let cl_ctx =
    run_variant "phpSAFE (--contexts)" { d with Phpsafe.infer_contexts = true }
  in
  (* the suite's ground truth is exact, so recall is measured against all
     real seeds rather than a detected union *)
  let union =
    List.filter Corpus.Gt.is_real suite.Corpus.seeds
  in
  {
    cd_reals = List.length union;
    cd_foils =
      List.length suite.Corpus.seeds - List.length union;
    cd_default = cl_default;
    cd_ctx = cl_ctx;
    cd_default_metrics = Matching.metrics_for ~union cl_default;
    cd_ctx_metrics = Matching.metrics_for ~union cl_ctx;
    cd_new_tp =
      by_id
        (List.filter
           (fun s -> not (seed_mem s cl_default.Matching.cl_tp))
           cl_ctx.Matching.cl_tp);
    cd_removed_fp =
      by_id
        (List.filter
           (fun s -> not (seed_mem s cl_ctx.Matching.cl_trap_fp))
           cl_default.Matching.cl_trap_fp);
  }

let pp_seed_ids ppf seeds =
  Format.fprintf ppf "%s"
    (String.concat ", "
       (List.map
          (fun (s : Corpus.Gt.seed) ->
            Printf.sprintf "%s/%s" s.Corpus.Gt.seed_id s.Corpus.Gt.pattern)
          seeds))

let print ppf (t : t) =
  Format.fprintf ppf
    "@.== E11: context-sensitive sanitization (--contexts) precision delta ==@.";
  Format.fprintf ppf
    "context suite: %d seeded sinks (%d real context mismatches, %d \
     adequate-sanitizer foils)@."
    (t.cd_reals + t.cd_foils) t.cd_reals t.cd_foils;
  Format.fprintf ppf "%-22s %5s %5s %5s %6s %6s@." "variant" "TP" "FP" "FN"
    "Prec" "Rec";
  List.iter
    (fun ((cl : Matching.classified), (m : Metrics.t)) ->
      Format.fprintf ppf "%-22s %5d %5d %5d %6s %6s@." cl.Matching.cl_tool
        m.Metrics.tp m.Metrics.fp m.Metrics.fn
        (Metrics.pct (Metrics.precision m))
        (Metrics.pct (Metrics.recall m)))
    [ (t.cd_default, t.cd_default_metrics); (t.cd_ctx, t.cd_ctx_metrics) ];
  Format.fprintf ppf "new true positives (context mismatch): %d [%a]@."
    (List.length t.cd_new_tp) pp_seed_ids t.cd_new_tp;
  Format.fprintf ppf "removed false positives (adequate sanitizer): %d [%a]@."
    (List.length t.cd_removed_fp) pp_seed_ids t.cd_removed_fp
