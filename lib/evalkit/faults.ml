(** Deterministic fault injection for the robustness harness — see
    faults.mli. *)

type kind =
  | Truncate
  | Corrupt_bytes
  | Unterminated_string
  | Unterminated_heredoc
  | Deep_nesting
  | Include_cycle
  | Binary_blob
  | Empty_file

let all_kinds =
  [ Truncate; Corrupt_bytes; Unterminated_string; Unterminated_heredoc;
    Deep_nesting; Include_cycle; Binary_blob; Empty_file ]

let kind_label = function
  | Truncate -> "truncate"
  | Corrupt_bytes -> "corrupt-bytes"
  | Unterminated_string -> "unterminated-string"
  | Unterminated_heredoc -> "unterminated-heredoc"
  | Deep_nesting -> "deep-nesting"
  | Include_cycle -> "include-cycle"
  | Binary_blob -> "binary-blob"
  | Empty_file -> "empty-file"

(* Pick the file the fault lands on.  Plugins always have at least one
   file; an empty project passes through untouched. *)
let pick_victim rng (files : Phplang.Project.file list) =
  match files with
  | [] -> None
  | _ -> Some (Corpus.Prng.int rng (List.length files))

let replace_nth files idx f =
  List.mapi
    (fun i (file : Phplang.Project.file) -> if i = idx then f file else file)
    files

let truncate rng (src : string) =
  let len = String.length src in
  String.sub src 0 (Corpus.Prng.int rng (max 1 len))

let corrupt_bytes rng (src : string) =
  if String.length src = 0 then src
  else begin
    let b = Bytes.of_string src in
    let hits = 1 + Corpus.Prng.int rng 8 in
    for _ = 1 to hits do
      Bytes.set b
        (Corpus.Prng.int rng (Bytes.length b))
        (Char.chr (Corpus.Prng.int rng 256))
    done;
    Bytes.to_string b
  end

let unterminated_string rng src =
  let quote = if Corpus.Prng.bool rng then '"' else '\'' in
  Printf.sprintf "%s\n$oops = %cnever closed" src quote

let unterminated_heredoc src =
  src ^ "\n$oops = <<<EOT\nthis heredoc never terminates"

(* Exceed the parser's nesting fuel: a deeply parenthesised expression plus
   a prefix-operator chain, both of which recurse in the parser. *)
let deep_nesting src =
  let n = Phplang.Parser.nesting_limit () + 64 in
  String.concat ""
    [ src; "\n$deep = "; String.make n '('; "1"; String.make n ')';
      ";\n$bang = "; String.make n '!'; "1;" ]

let binary_blob rng =
  let len = 64 + Corpus.Prng.int rng 448 in
  String.init len (fun _ -> Char.chr (Corpus.Prng.int rng 256))

let mutate rng kind (project : Phplang.Project.t) : Phplang.Project.t =
  let files = project.Phplang.Project.files in
  let name = project.Phplang.Project.name ^ "+" ^ kind_label kind in
  match pick_victim rng files with
  | None -> project
  | Some idx ->
      let files =
        match kind with
        | Truncate ->
            replace_nth files idx (fun f ->
                { f with Phplang.Project.source = truncate rng f.source })
        | Corrupt_bytes ->
            replace_nth files idx (fun f ->
                { f with Phplang.Project.source = corrupt_bytes rng f.source })
        | Unterminated_string ->
            replace_nth files idx (fun f ->
                { f with
                  Phplang.Project.source = unterminated_string rng f.source })
        | Unterminated_heredoc ->
            replace_nth files idx (fun f ->
                { f with
                  Phplang.Project.source = unterminated_heredoc f.source })
        | Deep_nesting ->
            replace_nth files idx (fun f ->
                { f with Phplang.Project.source = deep_nesting f.source })
        | Include_cycle ->
            (* two fresh mutually-including files, wired into an existing
               file so the cycle is reachable from a real entry point *)
            let victim = List.nth files idx in
            [ { Phplang.Project.path = "fault_cycle_a.php";
                source =
                  Printf.sprintf
                    "<?php include 'fault_cycle_b.php'; include '%s';"
                    victim.Phplang.Project.path };
              { Phplang.Project.path = "fault_cycle_b.php";
                source = "<?php include 'fault_cycle_a.php';" } ]
            @ replace_nth files idx (fun f ->
                  { f with
                    Phplang.Project.source =
                      f.source ^ "\ninclude 'fault_cycle_a.php';" })
        | Binary_blob ->
            replace_nth files idx (fun f ->
                { f with Phplang.Project.source = binary_blob rng })
        | Empty_file ->
            replace_nth files idx (fun f ->
                { f with Phplang.Project.source = "" })
      in
      Phplang.Project.make ~name files

let mutants ~seed ~count (project : Phplang.Project.t) :
    (kind * Phplang.Project.t) list =
  let base = Corpus.Prng.create seed in
  let n_kinds = List.length all_kinds in
  (* explicit loop: [split] advances [base], so derivation order matters
     for reproducibility ([List.init]'s application order is unspecified) *)
  let rec go i acc =
    if i >= count then List.rev acc
    else begin
      let rng = Corpus.Prng.split base ~salt:i in
      let kind = List.nth all_kinds (i mod n_kinds) in
      let m = mutate rng kind project in
      let m =
        { m with
          Phplang.Project.name = m.Phplang.Project.name ^ "#" ^ string_of_int i
        }
      in
      go (i + 1) ((kind, m) :: acc)
    end
  in
  go 0 []
