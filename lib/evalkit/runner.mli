(** Drives the analyzers over a corpus version and collects raw results and
    wall time (paper §IV.B step 4, §V.E responsiveness).  Timing is
    {!Obs.Clock} monotonic wall seconds, correct under [--jobs > 1] where
    the old [Sys.time] CPU measurement over-reported. *)

type tool_run = {
  tr_output : Matching.tool_output;
  tr_seconds : float;  (** wall seconds to analyze the whole corpus *)
}

type evaluation = {
  ev_version : Corpus.Plan.version;
  ev_corpus : Corpus.t;
  ev_runs : tool_run list;
  ev_classified : Matching.classified list;
  ev_union : Corpus.Gt.seed list;  (** union of detected real vulns *)
}

val default_tools : unit -> Secflow.Tool.t list
(** phpSAFE, RIPS, Pixy — the paper's §IV.B tool set. *)

val run_tool : Secflow.Tool.t -> Corpus.t -> tool_run
(** Sequential driver.  Crash containment: a tool whose [analyze_project]
    raises on some plugin yields a result with every file of that plugin
    [Failed (Crashed _)] — the remaining plugins are still analyzed. *)

val run_tools_parallel :
  pool:Sched.pool -> Secflow.Tool.t list -> Corpus.t -> tool_run list
(** Fan the (tool × plugin) grid out across the pool's domains via
    {!Sched.map_result}, so a crashing work item degrades to the same
    all-files-[Failed (Crashed _)] result as in {!run_tool} while every
    other item keeps its output.  The reduce is deterministic: findings,
    outcomes and per-plugin ordering are identical to running {!run_tool}
    sequentially; only the timing fields differ ([tr_seconds] is summed
    per-item wall time, 0 for a crashed item). *)

val evaluate :
  ?tools:Secflow.Tool.t list ->
  ?pool:Sched.pool ->
  Corpus.Plan.version ->
  evaluation
(** Generate the corpus, run every tool, classify against ground truth and
    compute the detected union.  With [~pool] the (tool × plugin) work items
    run in parallel across domains; without it the driver is the original
    sequential fold.  Both produce identical results modulo timing. *)

val evaluate_with_stats :
  ?tools:Secflow.Tool.t list ->
  ?pool:Sched.pool ->
  Corpus.Plan.version ->
  evaluation * Sched.stats
(** [evaluate] plus scheduler/parse-cache instrumentation for the run. *)

val classified_for : evaluation -> string -> Matching.classified
(** Lookup by tool name; raises [Not_found] for unknown tools. *)

val run_for : evaluation -> string -> tool_run
