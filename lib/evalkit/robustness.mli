(** §V.E — responsiveness and robustness: corpus size, failed files and
    error counts per tool, and the seconds-per-kLOC unit. *)

type tool_robustness = {
  rb_tool : string;
  rb_failed_files : int;
  rb_errors : int;
  rb_unresolved_includes : int;
      (** include targets that resolved to no project file, summed over
          plugins — the signal {!Phplang.Project.include_closure} counts
          instead of silently dropping *)
  rb_by_reason : (string * int) list;
      (** failed files per {!Secflow.Report.failure_label}, sorted by
          label — the failure taxonomy behind [rb_failed_files] *)
}

val of_run : Runner.tool_run -> tool_robustness

type corpus_size = { cs_files : int; cs_loc : int }

val corpus_size : Corpus.t -> corpus_size

val sec_per_kloc : seconds:float -> loc:int -> float
