(** §V.E — responsiveness and robustness: corpus size, per-tool CPU time,
    files each tool failed to analyze and errors raised. *)

open Secflow

type tool_robustness = {
  rb_tool : string;
  rb_failed_files : int;
  rb_errors : int;
  rb_unresolved_includes : int;
  rb_by_reason : (string * int) list;
}

let of_run (run : Runner.tool_run) : tool_robustness =
  let failed = ref 0 and errors = ref 0 and unresolved = ref 0 in
  let by_reason = Hashtbl.create 8 in
  List.iter
    (fun (_plugin, (result : Report.result)) ->
      errors := !errors + result.Report.errors;
      unresolved := !unresolved + result.Report.unresolved_includes;
      List.iter
        (fun (_path, outcome) ->
          match outcome with
          | Report.Analyzed -> ()
          | Report.Failed reason ->
              incr failed;
              let label = Report.failure_label reason in
              Hashtbl.replace by_reason label
                (1 + Option.value (Hashtbl.find_opt by_reason label) ~default:0))
        result.Report.outcomes)
    run.Runner.tr_output.Matching.to_results;
  {
    rb_tool = run.Runner.tr_output.Matching.to_tool;
    rb_failed_files = !failed;
    rb_errors = !errors;
    rb_unresolved_includes = !unresolved;
    rb_by_reason =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_reason []
      |> List.sort compare;
  }

type corpus_size = { cs_files : int; cs_loc : int }

let corpus_size (corpus : Corpus.t) =
  let files, loc = Corpus.stats corpus in
  { cs_files = files; cs_loc = loc }

(** Seconds per thousand lines of code — the paper's responsiveness unit. *)
let sec_per_kloc ~seconds ~loc =
  if loc = 0 then nan else seconds /. (float_of_int loc /. 1000.)
