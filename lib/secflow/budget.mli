(** Process-global resource budgets for the analysis pipeline.

    Budgets bound the places where a pathological input could otherwise
    consume unbounded stack, memory or time: parser nesting, Pixy's
    dataflow fixpoint, and the include-closure walk.  Exhausting a budget
    is never fatal — the affected file degrades to a
    [Failed (Budget_exhausted _)] outcome in the §V.E robustness table
    (for Pixy's fixpoint, with the over-approximate findings kept) while
    the rest of the run proceeds.

    The budget is one process-global value (an [Atomic.t]): the drivers
    set it once from their [--budget-*] flags before any analysis runs.
    [set] also pushes [parse_depth] down into {!Phplang.Parser}'s nesting
    fuel, which lives below this module in the library stack.

    This is distinct from phpSAFE's own include-closure *modeling* budget
    (paper §III.B, reported as [Out_of_memory]): that one reproduces the
    paper's observed tool behaviour, these are safety rails of the
    reproduction itself. *)

type t = {
  parse_depth : int;
      (** parser nesting fuel (expression/statement depth); default 512 *)
  fixpoint_passes : int;
      (** cap on Pixy dataflow fixpoint passes per function/file body;
          default 64 *)
  include_depth : int;
      (** include-closure chain-depth cap; default 64 *)
  include_files : int;
      (** include-closure size cap (files per closure); default 4096 *)
}

val default : t

val get : unit -> t
(** The budget currently in force. *)

val set : t -> unit
(** Install a new budget (fields clamped to sane minimums) and push the
    parser nesting fuel down into {!Phplang.Parser}.  Call from the main
    domain before analysis starts; the value is read atomically by every
    worker. *)

val reset : unit -> unit
(** [set default]. *)
