(** Process-global resource budgets — see budget.mli. *)

type t = {
  parse_depth : int;
  fixpoint_passes : int;
  include_depth : int;
  include_files : int;
}

let default =
  {
    parse_depth = Phplang.Parser.default_nesting_limit;
    fixpoint_passes = 64;
    include_depth = 64;
    include_files = 4096;
  }

let current = Atomic.make default

let get () = Atomic.get current

let set b =
  let b =
    {
      parse_depth = max 16 b.parse_depth;
      fixpoint_passes = max 1 b.fixpoint_passes;
      include_depth = max 1 b.include_depth;
      include_files = max 1 b.include_files;
    }
  in
  Atomic.set current b;
  (* the parser cannot see this module (it sits below secflow), so the
     nesting fuel is pushed down rather than pulled *)
  Phplang.Parser.set_nesting_limit b.parse_depth

let reset () = set default
