(** Per-file analysis-result cache, shared by the three analyzers through
    the {!Phplang.Store} disk tier (namespace ["result"]).

    The contract: an entry's key must cover {e everything} the cached value
    depends on —

    - the analyzer's name and configuration fingerprint (so switching the
      phpSAFE profile from WordPress to Drupal, or toggling [--contexts],
      misses rather than reuses);
    - the slice of the process-global {!Budget} the analyzer actually
      consults (so [--budget-fixpoint-passes] invalidates Pixy entries but
      not phpSAFE's, and vice versa for the include caps);
    - the file's path (positions embed it) and source digest;
    - for analyzers that resolve includes, the digest of the whole include
      closure (editing a callee's file invalidates exactly the entries
      whose closure contains it).

    Values are replayed verbatim into the analyzer's normal result
    assembly, so a warm run's [Report.result] is byte-identical to the cold
    run that populated the cache. *)

let ns = "result"

let enabled () = Phplang.Store.enabled ()

(** What the simple per-file analyzers (RIPS, Pixy — no cross-file state
    beyond global finding de-duplication) persist per file. *)
type file_entry = {
  fe_findings : Report.finding list;
  fe_outcome : Report.file_outcome;
  fe_errors : int;
}

let file_key ~tool ~fingerprint ~path ~source =
  Phplang.Digest.combine
    [ "file"; tool; fingerprint; path; Phplang.Digest.hex source ]

let find_file ~key : file_entry option = Phplang.Store.get ~ns ~key
let store_file ~key (e : file_entry) = Phplang.Store.put ~ns ~key e

(** Raw access for analyzers with richer per-file entries (phpSAFE).  The
    caller owns the key discipline: one entry type per key shape. *)
let find ~key : 'a option = Phplang.Store.get ~ns ~key

let store ~key (v : 'a) : unit = Phplang.Store.put ~ns ~key v

(** Per-file analysis loop with replay, shared by RIPS and Pixy (the two
    analyzers with no cross-file state beyond finding de-duplication):
    runs [analyze] per project file unless a cached entry replays it.
    Entries hold the file's {e pre-dedup} findings; the loop re-applies
    the analyzer's deterministic cross-file dedup ([`By_key] for RIPS,
    [`None] for Pixy, which de-duplicates per file inside [analyze]), so
    warm results are byte-identical to cold ones.  [fingerprint] must
    cover everything but the file itself: analyzer name, configuration
    and the {!Budget} slice the analyzer consults. *)
let file_loop ~tool ~fingerprint ~(dedup : [ `None | `By_key of string ])
    ~analyze (project : Phplang.Project.t) : Report.result =
  let findings = ref [] in
  let outcomes = ref [] in
  let errors = ref 0 in
  let seen = ref Report.Key_set.empty in
  List.iter
    (fun (f : Phplang.Project.file) ->
      (* file boundary: a per-request deadline cancels between files, with
         or without the result cache enabled *)
      Deadline.check ();
      let path = f.Phplang.Project.path in
      let fs, outcome, errs =
        if not (enabled ()) then analyze f
        else
          let key =
            file_key ~tool ~fingerprint ~path ~source:f.Phplang.Project.source
          in
          match find_file ~key with
          | Some e ->
              Obs.incr (Printf.sprintf "cache.result.replayed.%s" tool);
              (* Touch the shared parse memo even though the walk is
                 skipped: the scheduler's parse-cache statistics (printed
                 on stdout) count memo requests, and a warm run must
                 report the same numbers as a cold one.  After the first
                 tool this is a memo hit, i.e. a hashtable lookup. *)
              ignore
                (Phplang.Project.parse_file f
                  : (Phplang.Ast.program, Phplang.Project.parse_error) result);
              (e.fe_findings, e.fe_outcome, e.fe_errors)
          | None ->
              let fs, outcome, errs = analyze f in
              store_file ~key
                { fe_findings = fs; fe_outcome = outcome; fe_errors = errs };
              (fs, outcome, errs)
      in
      errors := !errors + errs;
      outcomes := (path, outcome) :: !outcomes;
      match dedup with
      | `None -> findings := List.rev_append fs !findings
      | `By_key counter_prefix ->
          List.iter
            (fun finding ->
              Obs.incr (counter_prefix ^ ".pre_dedup");
              let key = Report.key_of_finding finding in
              if not (Report.Key_set.mem key !seen) then begin
                Obs.incr (counter_prefix ^ ".post_dedup");
                seen := Report.Key_set.add key !seen;
                findings := finding :: !findings
              end)
            fs)
    project.Phplang.Project.files;
  {
    Report.findings = List.rev !findings;
    outcomes = List.rev !outcomes;
    errors = !errors;
    unresolved_includes = 0;
  }
