(** Minimal dependency-free JSON value, writer and parser — see json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  write buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Bad (Printf.sprintf "%s at byte %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* UTF-8 encode one code point into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 c =
  let digit ch =
    match ch with
    | '0' .. '9' -> Char.code ch - Char.code '0'
    | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
    | _ -> fail c "bad \\u escape"
  in
  if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
  let v =
    (digit c.src.[c.pos] lsl 12)
    lor (digit c.src.[c.pos + 1] lsl 8)
    lor (digit c.src.[c.pos + 2] lsl 4)
    lor digit c.src.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let cp = hex4 c in
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: require the low half *)
                  if
                    c.pos + 2 <= String.length c.src
                    && c.src.[c.pos] = '\\'
                    && c.src.[c.pos + 1] = 'u'
                  then begin
                    c.pos <- c.pos + 2;
                    let lo = hex4 c in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      add_utf8 buf
                        (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                    else fail c "unpaired surrogate"
                  end
                  else fail c "unpaired surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail c "unpaired surrogate"
                else add_utf8 buf cp
            | _ -> fail c "unknown escape");
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c "raw control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  (match peek c with Some '-' -> advance c | _ -> ());
  let rec digits () =
    match peek c with
    | Some '0' .. '9' ->
        advance c;
        digits ()
    | _ -> ()
  in
  digits ();
  (match peek c with
  | Some '.' ->
      is_float := true;
      advance c;
      digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  if text = "" || text = "-" then fail c "expected a number";
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* integer literal too wide for an int: keep it as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c depth =
  if depth <= 0 then fail c "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c (depth - 1) in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c (depth - 1) in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let parse ?(max_depth = 512) src =
  let c = { src; pos = 0 } in
  match parse_value c max_depth with
  | v ->
      skip_ws c;
      if c.pos <> String.length src then
        Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
