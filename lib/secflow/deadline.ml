(** Per-request wall-clock deadline — see deadline.mli. *)

exception Exceeded = Sched.Cancel

(* Unlike Budget (one process-global Atomic the driver sets per batch),
   deadlines differ per request *within* a batch, so the deadline in force
   is scoped to the domain running the work item: [Daemon.execute_job]
   wraps each scan in [with_deadline] on the worker domain that runs it. *)
let key : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get () = Domain.DLS.get key

let with_deadline at f =
  let old = Domain.DLS.get key in
  Domain.DLS.set key at;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key old) f

let remaining_s () =
  match Domain.DLS.get key with
  | None -> None
  | Some at -> Some (at -. Obs.Clock.now ())

let expired () =
  match Domain.DLS.get key with
  | None -> false
  | Some at -> Obs.Clock.now () > at

let check () =
  if expired () then begin
    Obs.incr "deadline.exceeded";
    raise Exceeded
  end
