(** Sink output-context taxonomy (paper §VI future work): *where* tainted
    data lands inside the text a sink emits.  A sanitizer is only adequate
    for some contexts — [htmlspecialchars] without [ENT_QUOTES] protects an
    HTML body or a double-quoted attribute, but not an unquoted attribute;
    [addslashes] only helps inside a quoted SQL string, never in a numeric
    position.  The context-sensitive verdict pass intersects the sanitizers
    applied to a value with the context inferred at the sink. *)

type t =
  (* XSS output contexts *)
  | Html_body           (** element content: [<p>HERE</p>] *)
  | Html_attr_quoted    (** inside a ["..."] or ['...'] attribute value *)
  | Html_attr_unquoted  (** attribute value with no quotes: [value=HERE] *)
  | Url                 (** inside a URL attribute ([href]/[src]) or query *)
  | Js_string           (** inside a string literal in a [<script>] block *)
  (* SQLi output contexts *)
  | Sql_quoted_string   (** inside ['...'] or ["..."] in a SQL statement *)
  | Sql_numeric         (** numeric position: [WHERE id = HERE] *)
  | Sql_identifier      (** table/column position: [ORDER BY HERE] *)
  (* Other injection-class contexts; each class has a single sink context,
     so the adequacy matrix degenerates to "was the right escaper used". *)
  | Shell_arg           (** argument position in a shell command line *)
  | File_path           (** filesystem path handed to include/fopen *)
  | Url_remote          (** URL fetched by an HTTP client (SSRF target) *)

(** The vulnerability kind a context belongs to.  [Second_order_sqli]
    reuses the SQL contexts at the sink (a second-order flow still lands in
    a SQL statement) so it contributes no contexts of its own here. *)
let kind = function
  | Html_body | Html_attr_quoted | Html_attr_unquoted | Url | Js_string ->
      Vuln.Xss
  | Sql_quoted_string | Sql_numeric | Sql_identifier -> Vuln.Sqli
  | Shell_arg -> Vuln.Cmdi
  | File_path -> Vuln.Path_traversal
  | Url_remote -> Vuln.Ssrf

let all =
  [ Html_body; Html_attr_quoted; Html_attr_unquoted; Url; Js_string;
    Sql_quoted_string; Sql_numeric; Sql_identifier;
    Shell_arg; File_path; Url_remote ]

let all_for_kind k = List.filter (fun c -> Vuln.equal_kind (kind c) k) all
let all_for_kinds kinds = List.concat_map all_for_kind kinds

let to_string = function
  | Html_body -> "html-body"
  | Html_attr_quoted -> "html-attr-quoted"
  | Html_attr_unquoted -> "html-attr-unquoted"
  | Url -> "url"
  | Js_string -> "js-string"
  | Sql_quoted_string -> "sql-quoted-string"
  | Sql_numeric -> "sql-numeric"
  | Sql_identifier -> "sql-identifier"
  | Shell_arg -> "shell-arg"
  | File_path -> "file-path"
  | Url_remote -> "url-remote"

let equal (a : t) b = a = b
let compare (a : t) b = compare a b
let pp ppf c = Format.pp_print_string ppf (to_string c)
