(** Vulnerability taxonomy shared by all three analyzers and the evaluation
    harness. *)

(** The vulnerability classes the engine detects.  [Xss] and [Sqli] are the
    paper's original two (§I); [Cmdi] (command injection),
    [Path_traversal] (LFI), [Ssrf] and [Second_order_sqli] extend the same
    source/sink/sanitizer architecture to further injection families. *)
type kind = Xss | Sqli | Cmdi | Path_traversal | Ssrf | Second_order_sqli

val all_kinds : kind list
(** Every kind, in declaration (= display) order. *)

val kind_to_string : kind -> string
(** ["XSS"], ["SQLi"], ["CMDi"], ["LFI"], ["SSRF"], ["SO-SQLi"]. *)

val kind_spec_name : kind -> string
(** Lowercase identifier used in config files, report-summary keys and
    [--kind(s)] command lines: ["xss"], ["sqli"], ["cmdi"], ["lfi"],
    ["ssrf"], ["so-sqli"]. *)

val kind_of_spec_name : string -> kind option
(** Inverse of {!kind_spec_name}; also accepts the aliases
    ["path-traversal"] and ["second-order-sqli"].  [None] on unknown
    names. *)

val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

(** Malicious input-vector classes of Table II, in the paper's order —
    graded by how easily an attacker controls the source (§V.C). *)
type vector =
  | Post
  | Get
  | Post_get_cookie
  | Db
  | File_function_array

val all_vectors : vector list
val vector_to_string : vector -> string
val pp_vector : Format.formatter -> vector -> unit

val vector_is_direct : vector -> bool
(** Directly manipulable (GET/POST/COOKIE) — the "very easy to exploit"
    class of the §V.D inertia analysis. *)

(** Where tainted data enters the plugin. *)
type source =
  | Superglobal of string       (** e.g. ["$_GET"] *)
  | Database of string          (** producing function/method *)
  | File_read of string
  | Function_return of string
  | Uninitialized of string     (** register_globals-style *)
  | Unknown_source

val source_to_string : source -> string

val vector_of_source : source -> vector
(** The Table II class a source falls into. *)
