(** Per-request wall-clock fuel for the analysis pipeline.

    {!Budget} bounds *logical* resources (parser nesting, fixpoint passes,
    include closures) with one process-global value per batch.  Deadlines
    bound *time*, and time budgets differ per request within a batch, so
    the deadline in force is domain-local ([Domain.DLS]): the serving
    daemon wraps each work item in {!with_deadline} on the worker domain
    that executes it, and the analyzers call {!check} at file and
    fixpoint-pass boundaries.

    Cancellation is cooperative and travels as {!Exceeded}, an alias of
    [Sched.Cancel]: the per-file crash barriers re-raise it instead of
    degrading it to a [Crashed] file outcome, so it escapes the analyzer,
    reaches [Sched.map_result], and surfaces as the [Cancelled] outcome
    for exactly that item.  Code that never sets a deadline pays one
    DLS read and a float compare per {!check} — the CLI and evaluation
    paths are unaffected. *)

exception Exceeded
(** Alias of [Sched.Cancel] — raised by {!check} once the deadline has
    passed.  Catch-all handlers between an analysis loop and the scheduler
    must re-raise it ([with e when e <> Deadline.Exceeded -> ...] or an
    explicit first arm), otherwise the request degrades to a crash report
    instead of a [deadline_exceeded] reply. *)

val with_deadline : float option -> (unit -> 'a) -> 'a
(** [with_deadline at f] runs [f] with the absolute deadline [at] (in
    [Obs.Clock.now] monotonic seconds) in force on the calling domain,
    restoring the previous deadline on exit (normal or exceptional).
    [None] means unbounded. *)

val get : unit -> float option
(** The absolute deadline in force on this domain, if any. *)

val remaining_s : unit -> float option
(** Seconds until the deadline (negative once past), [None] if unbounded. *)

val expired : unit -> bool
(** [true] once the deadline in force has passed. *)

val check : unit -> unit
(** Raise {!Exceeded} (bumping the [deadline.exceeded] counter) if the
    deadline in force has passed; no-op otherwise.  Called at file
    boundaries ([Cache.file_loop], the phpSAFE per-file loops) and at
    fixpoint-pass boundaries ([Dataflow.Fixpoint.solve ~check]). *)
