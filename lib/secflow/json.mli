(** Minimal dependency-free JSON: a value type, a deterministic writer and
    a defensive parser.

    The writer is the one encoding every machine-readable findings surface
    shares — [Secflow.Report.to_json], [phpsafe_cli --format json] and the
    [phpsafe_serve] daemon all go through it, which is what makes their
    outputs byte-identical for the same result.  Field order is the order
    of the association list; no whitespace is emitted, so two structurally
    equal values always render to the same bytes.

    The parser exists for the serving layer's request decoding.  It is
    strict (one complete value, nothing but whitespace after it) and
    defensive: nesting is fuel-limited so a crafted deeply-nested payload
    returns [Error _] instead of overflowing the stack. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render without any whitespace.  [Float] values render with [%.17g]
    (shortest round-trippable is not needed here; non-finite floats render
    as [null] to stay inside the JSON grammar). *)

val escape : string -> string
(** The writer's string-body escaping (no surrounding quotes), exposed for
    code that splices raw JSON fragments around an encoded string. *)

val parse : ?max_depth:int -> string -> (t, string) result
(** Parse one complete JSON document ([max_depth] defaults to 512 nesting
    levels).  Numbers without ['.'], exponent, or overflow parse as [Int],
    everything else as [Float].  [\uXXXX] escapes decode to UTF-8
    (surrogate pairs combined; lone surrogates are an error). *)

(** {1 Accessors} — tolerant field navigation for decoded requests. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
