(** Vulnerability taxonomy shared by all three analyzers and the evaluation
    harness. *)

(** The vulnerability classes the engine detects.  [Xss] and [Sqli] are the
    paper's original two (§I); the remaining four extend the same
    source/sink/sanitizer architecture to other injection families:
    command injection ([Cmdi]), path traversal / local file inclusion
    ([Path_traversal]), server-side request forgery ([Ssrf]) and
    second-order SQL injection through a database round-trip
    ([Second_order_sqli], detected by a two-phase persistent-taint pass). *)
type kind = Xss | Sqli | Cmdi | Path_traversal | Ssrf | Second_order_sqli

let all_kinds = [ Xss; Sqli; Cmdi; Path_traversal; Ssrf; Second_order_sqli ]

let kind_to_string = function
  | Xss -> "XSS"
  | Sqli -> "SQLi"
  | Cmdi -> "CMDi"
  | Path_traversal -> "LFI"
  | Ssrf -> "SSRF"
  | Second_order_sqli -> "SO-SQLi"

(* Lowercase spec/JSON name, e.g. "xss", "so-sqli" — the identifier used in
   config files, report-summary keys and --kind(s) command lines. *)
let kind_spec_name k = String.lowercase_ascii (kind_to_string k)

let kind_of_spec_name = function
  | "xss" -> Some Xss
  | "sqli" -> Some Sqli
  | "cmdi" -> Some Cmdi
  | "lfi" | "path-traversal" -> Some Path_traversal
  | "ssrf" -> Some Ssrf
  | "so-sqli" | "second-order-sqli" -> Some Second_order_sqli
  | _ -> None

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)
let equal_kind (a : kind) b = a = b
let compare_kind (a : kind) b = compare a b

(** Malicious input-vector classes of Table II, ordered as in the paper.
    They grade how easily an attacker controls the source (§V.C):
    direct manipulation (POST/GET/COOKIE), indirect via the database, or
    hard-to-reach OS files / framework functions / arrays. *)
type vector =
  | Post
  | Get
  | Post_get_cookie
  | Db
  | File_function_array

let all_vectors = [ Post; Get; Post_get_cookie; Db; File_function_array ]

let vector_to_string = function
  | Post -> "POST"
  | Get -> "GET"
  | Post_get_cookie -> "POST/GET/COOKIE"
  | Db -> "DB"
  | File_function_array -> "File/Function/Array"

let pp_vector ppf v = Format.pp_print_string ppf (vector_to_string v)

(** Directly-manipulable vectors — the "very easy to exploit" class used by
    the §V.D inertia analysis (GET, POST or COOKIE manipulation). *)
let vector_is_direct = function
  | Post | Get | Post_get_cookie -> true
  | Db | File_function_array -> false

(** Where tainted data enters the plugin. *)
type source =
  | Superglobal of string       (** e.g. ["$_GET"], ["$_POST"] *)
  | Database of string          (** producing function/method, e.g. ["$wpdb->get_results"] *)
  | File_read of string         (** e.g. ["fgets"], ["file_get_contents"] *)
  | Function_return of string   (** framework function returning untrusted data *)
  | Uninitialized of string     (** register_globals-style uninitialized variable *)
  | Unknown_source

let source_to_string = function
  | Superglobal s -> s
  | Database f -> f ^ " [db]"
  | File_read f -> f ^ " [file]"
  | Function_return f -> f ^ " [fn]"
  | Uninitialized v -> v ^ " [uninit]"
  | Unknown_source -> "<unknown>"

(** The Table II class a given source falls into.  [Post_get_cookie] is used
    for sources reachable through more than one direct vector
    ([$_REQUEST], [$_COOKIE]). *)
let vector_of_source = function
  | Superglobal "$_POST" -> Post
  | Superglobal "$_GET" -> Get
  | Superglobal _ -> Post_get_cookie
  | Uninitialized _ -> Post_get_cookie
  | Database _ -> Db
  | File_read _ | Function_return _ | Unknown_source -> File_function_array
