(** Analyzer output: findings with data-flow traces, plus per-file analysis
    outcomes.  This is the "single repository" format the paper normalizes
    every tool's output into (§IV.B step 5). *)

(** One hop of a tainted data flow, for the §III.D review aids ("the flow of
    the vulnerable data from variable to variable"). *)
type step = {
  step_var : string;      (** variable/property name, e.g. ["$row->sml_name"] *)
  step_pos : Phplang.Ast.pos;
  step_note : string;     (** what happened: "assigned from $_GET", ... *)
}

type finding = {
  kind : Vuln.kind;
  sink_pos : Phplang.Ast.pos;     (** file/line of the sensitive sink *)
  sink : string;                  (** sink function, e.g. ["echo"] *)
  variable : string;              (** the vulnerable variable at the sink *)
  source : Vuln.source;           (** where the taint entered *)
  source_pos : Phplang.Ast.pos;
  trace : step list;              (** source-to-sink flow, in order *)
  context : Context.t option;
      (** inferred output context at the sink, when the analyzer ran its
          context-inference pass (phpSAFE [--contexts]) *)
  sanitizers_applied : string list;
      (** sanitizer functions the value passed through on its way to the
          sink (sorted); only populated by the context-inference pass *)
  trace_truncated : bool;
      (** [trace] hit the analyzer's step cap and older steps were
          dropped — the flow shown is incomplete *)
}

(** Identity used for de-duplication and ground-truth matching: a
    vulnerability is a (kind, file, line) sink occurrence. *)
type key = { k_kind : Vuln.kind; k_file : string; k_line : int }

let key_of_finding f =
  { k_kind = f.kind;
    k_file = f.sink_pos.Phplang.Ast.file;
    k_line = f.sink_pos.Phplang.Ast.line }

let compare_key a b =
  match String.compare a.k_file b.k_file with
  | 0 -> (
      match Int.compare a.k_line b.k_line with
      | 0 -> Vuln.compare_kind a.k_kind b.k_kind
      | c -> c)
  | c -> c

module Key_set = Set.Make (struct
  type t = key

  let compare = compare_key
end)

module Key_map = Map.Make (struct
  type t = key

  let compare = compare_key
end)

(** Finer identity used for in-analyzer de-duplication: positions only
    carry file/line, so two distinct sinks on one line ([echo $a; echo $b;])
    share a {!key}; keeping the sink name and vulnerable variable apart
    stops them collapsing into a single finding.  Ground-truth matching
    still uses the coarse (kind, file, line) {!key}. *)
type occurrence = { o_key : key; o_sink : string; o_var : string }

let occurrence_of_finding f =
  { o_key = key_of_finding f; o_sink = f.sink; o_var = f.variable }

let compare_occurrence a b =
  match compare_key a.o_key b.o_key with
  | 0 -> (
      match String.compare a.o_sink b.o_sink with
      | 0 -> String.compare a.o_var b.o_var
      | c -> c)
  | c -> c

module Occurrence_set = Set.Make (struct
  type t = occurrence

  let compare = compare_occurrence
end)

(** Why a file could not be analyzed (the §V.E robustness dimension). *)
type failure_reason =
  | Out_of_memory        (** phpSAFE: include closure exceeded its budget *)
  | Unsupported_syntax of string  (** Pixy: OOP constructs *)
  | Parse_failure of string
  | Crashed of string
      (** an exception escaped the analyzer and was contained by its crash
          barrier — the analysis aborted but the run survives *)
  | Budget_exhausted of string
      (** a resource budget (parser nesting fuel, fixpoint pass cap,
          include-closure cap — see {!Budget}) ran out; the result may be
          partial/over-approximate *)

(** Stable label for a failure reason, used for per-reason [Obs] counters
    and report breakdowns. *)
let failure_label = function
  | Out_of_memory -> "out_of_memory"
  | Unsupported_syntax _ -> "unsupported_syntax"
  | Parse_failure _ -> "parse_failure"
  | Crashed _ -> "crashed"
  | Budget_exhausted _ -> "budget_exhausted"

type file_outcome =
  | Analyzed
  | Failed of failure_reason

(** [fail reason] is [Failed reason], bumping the per-reason
    [secflow.failed.<label>] counter — the one constructor every analyzer
    barrier goes through, so the robustness metrics see each failure
    exactly once. *)
let fail reason =
  Obs.incr ("secflow.failed." ^ failure_label reason);
  Failed reason

type result = {
  findings : finding list;
  outcomes : (string * file_outcome) list;  (** per file path *)
  errors : int;  (** diagnostics emitted while analyzing (Pixy's "error messages") *)
  unresolved_includes : int;
      (** distinct include targets that resolved to no project file —
          WordPress core references, typically (§V.E context) *)
}

let empty_result =
  { findings = []; outcomes = []; errors = 0; unresolved_includes = 0 }

(** The result an analyzer's crash barrier reports when the whole project
    analysis died: every file [Failed (Crashed msg)], one error. *)
let crashed_result ~files msg =
  {
    findings = [];
    outcomes = List.map (fun path -> (path, fail (Crashed msg))) files;
    errors = 1;
    unresolved_includes = 0;
  }

(** De-duplicated finding keys of a result. *)
let keys result =
  List.fold_left
    (fun acc f -> Key_set.add (key_of_finding f) acc)
    Key_set.empty result.findings

let failed_files result =
  List.filter_map
    (fun (path, o) -> match o with Failed _ -> Some path | Analyzed -> None)
    result.outcomes

let pp_finding ppf f =
  Format.fprintf ppf "%a at %a: %s(%s) <- %s"
    Vuln.pp_kind f.kind Phplang.Ast.pp_pos f.sink_pos f.sink f.variable
    (Vuln.source_to_string f.source)

let pp_trace ppf f =
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s @ %a: %s@." s.step_var Phplang.Ast.pp_pos
        s.step_pos s.step_note)
    f.trace

(* ------------------------------------------------------------------ *)
(* Machine-readable encoding (schema phpsafe-report/1)                 *)
(* ------------------------------------------------------------------ *)

(* This is the one findings encoder every machine surface shares:
   [phpsafe_cli --format json] / [--json FILE], the phpsafe_serve daemon's
   scan replies and the HTML report's JSON sibling all emit exactly these
   bytes for the same result, so byte-identity between the CLI and the
   daemon reduces to both calling [to_json].  The layout loosely follows
   SARIF's run/result/location nesting while staying dependency-free. *)

let json_of_pos (p : Phplang.Ast.pos) =
  Json.Obj
    [ ("file", Json.String p.Phplang.Ast.file);
      ("line", Json.Int p.Phplang.Ast.line) ]

let json_of_step (s : step) =
  Json.Obj
    [ ("variable", Json.String s.step_var);
      ("location", json_of_pos s.step_pos);
      ("note", Json.String s.step_note) ]

let json_of_finding (f : finding) =
  let context_fields =
    match f.context with
    | Some c -> [ ("context", Json.String (Context.to_string c)) ]
    | None -> []
  in
  Json.Obj
    ([ ("kind", Json.String (Vuln.kind_to_string f.kind));
       ("sink", Json.String f.sink);
       ("variable", Json.String f.variable);
       ("location", json_of_pos f.sink_pos);
       ("source", Json.String (Vuln.source_to_string f.source));
       ("sourceLocation", json_of_pos f.source_pos);
       ("vector",
        Json.String (Vuln.vector_to_string (Vuln.vector_of_source f.source))) ]
    @ context_fields
    @ [ ("sanitizersApplied",
         Json.List (List.map (fun s -> Json.String s) f.sanitizers_applied));
        ("dataFlow", Json.List (List.map json_of_step f.trace));
        ("dataFlowTruncated", Json.Bool f.trace_truncated) ])

let json_of_outcome (path, outcome) =
  let status, detail =
    match outcome with
    | Analyzed -> ("analyzed", "")
    | Failed Out_of_memory -> ("failed", "include closure exceeds memory budget")
    | Failed (Unsupported_syntax what) -> ("failed", what)
    | Failed (Parse_failure msg) -> ("failed", msg)
    | Failed (Crashed msg) -> ("crashed", msg)
    | Failed (Budget_exhausted msg) -> ("budget-exhausted", msg)
  in
  Json.Obj
    [ ("file", Json.String path); ("status", Json.String status);
      ("detail", Json.String detail) ]

(** Finding count per kind, in {!Vuln.all_kinds} order — the generic
    grouping every table/report surface uses (a binary XSS/else partition
    here would silently fold new classes into the SQLi bucket). *)
let count_by_kind (findings : finding list) =
  List.map
    (fun k ->
      ( k,
        List.length
          (List.filter (fun (f : finding) -> Vuln.equal_kind f.kind k) findings)
      ))
    Vuln.all_kinds

let to_json_value ?(tool = "phpSAFE") (result : result) : Json.t =
  let kind_counts =
    List.map
      (fun (k, n) -> (Vuln.kind_spec_name k, Json.Int n))
      (count_by_kind result.findings)
  in
  Json.Obj
    [ ("tool", Json.String tool);
      ("schema", Json.String "phpsafe-report/1");
      ("summary",
       Json.Obj
         ([ ("files", Json.Int (List.length result.outcomes));
            ("failedFiles", Json.Int (List.length (failed_files result))) ]
         @ kind_counts
         @ [ ("errors", Json.Int result.errors) ]));
      ("findings", Json.List (List.map json_of_finding result.findings));
      ("files", Json.List (List.map json_of_outcome result.outcomes)) ]

let to_json ?tool result = Json.to_string (to_json_value ?tool result)
