(** Domain-based work scheduler for the analysis drivers.

    The analyzers keep all mutable state in per-run contexts, so one
    [analyze_project] call is an independent unit of work; this module fans
    such units out across a fixed-size pool of OCaml 5 domains while keeping
    the reduce deterministic: {!map} returns results in input order, so the
    parallel driver produces byte-identical tables to the sequential one. *)

exception Cancel
(** Cooperative cancellation.  Work-item code (or a deadline/fuel check it
    calls, e.g. [Secflow.Deadline.check]) raises [Cancel] to abandon the
    current item; {!map_result} maps it to the {!Cancelled} outcome for
    that item instead of treating it as a crash.  Analyzer crash barriers
    must re-raise it rather than swallow it into a [Crashed] file result. *)

(** Per-item outcome of a fan-out: the item's value, a cooperative
    cancellation ({!Cancel} escaped the item), or an escaped exception with
    the backtrace captured at the raise site. *)
type 'a outcome =
  | Done of 'a
  | Cancelled
  | Crashed of exn * Printexc.raw_backtrace

type pool
(** A fixed-size worker pool.  The pool only records its size; domains are
    spawned per {!map} call and joined before it returns, so a pool value
    can be shared freely and never leaks threads. *)

val default_size : unit -> int
(** Pool size used when none is given: [$PHPSAFE_JOBS] if set to a positive
    integer, otherwise [Domain.recommended_domain_count () - 1], capped at
    [Domain.recommended_domain_count ()] and — on hosts running under a
    cgroup-v2 CPU quota (containers, oversubscribed CI) — at the quota in
    whole CPUs, clamped to at least 1.  An invalid or non-positive
    [$PHPSAFE_JOBS] value falls back to that default and emits a one-time
    warning on stderr naming the bad value; an empty value counts as
    unset.  An explicitly valid [$PHPSAFE_JOBS] is always trusted. *)

val parse_cpu_quota : string -> int option
(** Parse one line of [/sys/fs/cgroup/cpu.max] ("<quota|max> <period>",
    microseconds) into a whole-CPU budget, rounding up; [None] for "max"
    (no quota) or malformed input.  Exposed for tests. *)

val cpu_quota : unit -> int option
(** The host's cgroup-v2 CPU quota in whole CPUs, when one applies. *)

val create : ?size:int -> unit -> pool
(** [create ()] sizes the pool with {!default_size}; [~size] overrides it
    (clamped to ≥ 1).  Size 1 means strictly sequential execution on the
    calling domain. *)

val size : pool -> int

val refresh : pool -> unit
(** Re-fit an auto-sized pool to the current environment by re-reading
    {!default_size} — including [/sys/fs/cgroup/cpu.max], so a long-lived
    daemon or [--watch] loop tracks container CPU-quota resizes instead of
    keeping its start-time size forever.  A pool created with an explicit
    [~size] is pinned and never changes.  Call between fan-outs (the
    daemon does so between batches, the watch loop between iterations) —
    never while a {!map} on the pool is in flight.  An actual size change
    bumps the [sched.pool.resized] counter. *)

val map_result :
  ?chunk:int -> pool:pool -> ('a -> 'b) -> 'a list -> 'b outcome list
(** [map_result ~pool f items] applies [f] to every item, using up to
    [size pool - 1] extra domains plus the calling domain, and returns the
    results in input order.  Work is distributed dynamically (an atomic
    next-chunk counter), so stragglers don't idle the pool.

    [chunk] sets how many consecutive items a worker claims per counter
    increment (clamped to ≥ 1).  The default is automatic: 1 item while
    there are fewer than 4 items per pool slot (small grids stay maximally
    balanced), then [n / (4 × size)] so long lists of cheap items amortize
    the contended counter while still leaving ~4 chunks per slot for load
    balancing.  Chunking never affects results or their order — only which
    worker computes what.

    Each item is isolated: an [f] that raises yields [Crashed (exn, bt)]
    for that item (with the backtrace captured at the raise site) while
    every other item still produces its result — one poisoned input cannot
    abort the whole fan-out.  An [f] that raises {!Cancel} (cooperative
    deadline/fuel cancellation) yields [Cancelled].  Crashed items bump the
    [sched.items.crashed] counter, cancelled ones [sched.items.cancelled];
    each claimed chunk bumps [sched.chunks.claimed]. *)

val map : ?chunk:int -> pool:pool -> ('a -> 'b) -> 'a list -> 'b list
(** Fail-fast wrapper over {!map_result}: returns the plain results in
    input order; if any [f] raised, re-raises the first exception in input
    order (with its original backtrace) after all domains have joined.  A
    [Cancelled] item re-raises {!Cancel}.

    Observability: when {!Obs} recording is on, the whole call is a
    [sched.map] span, each execution context (the calling domain and every
    spawned worker) a [sched.worker] span on its own trace track, and each
    work item a [sched.item] span — so per-worker idle time is
    [sched.worker] minus [sched.item] on that track.  Timing now lives in
    [Obs.Clock] (monotonic wall clock); the old [Sched.now] is gone. *)

(** Instrumentation for one evaluation run, printed by [bin/evaluate] and
    [bench/main]: how much work there was, how well the parse cache did and
    where the wall time went. *)
type stats = {
  st_pool_size : int;
  st_work_items : int;  (** (tool × plugin) analysis units scheduled *)
  st_files_parsed : int;  (** parse-cache misses, i.e. actual parses *)
  st_cache_hits : int;  (** parses avoided by the shared cache *)
  st_wall_total : float;  (** wall-clock seconds for the whole fan-out *)
  st_wall_per_tool : (string * float) list;
      (** summed per-item wall seconds, per tool *)
}

val pp_stats : Format.formatter -> stats -> unit
