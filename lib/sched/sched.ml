(** Domain-based work scheduler — see sched.mli. *)

exception Cancel

type 'a outcome =
  | Done of 'a
  | Cancelled
  | Crashed of exn * Printexc.raw_backtrace

type pool = {
  mutable pool_size : int;
  pinned : bool;
      (* explicitly sized pools never track the environment; auto-sized
         ones can be re-fitted with [refresh] *)
}

(* Cgroup-v2 CPU quota, for the oversubscribed-host case: a container
   pinned to "200000 100000" (2 CPUs) still sees the machine's full core
   count through [Domain.recommended_domain_count] on some kernels, and a
   long-running daemon sized to raw cores would thrash.  The quota file's
   first field is the per-period budget in microseconds ("max" = none),
   the second the period; whole CPUs = ceil(quota / period). *)
let parse_cpu_quota line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "max"; _ ] | [ "max" ] -> None
  | [ quota; period ] -> (
      match (int_of_string_opt quota, int_of_string_opt period) with
      | Some q, Some p when q > 0 && p > 0 -> Some ((q + p - 1) / p)
      | _ -> None)
  | _ -> None

let cpu_quota () =
  match open_in "/sys/fs/cgroup/cpu.max" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | line -> parse_cpu_quota line
          | exception End_of_file -> None)

let recommended () =
  (* capped at the recommended domain count, never raw CPU count, and at
     the cgroup CPU quota when the host is oversubscribed *)
  let cap =
    match cpu_quota () with
    | Some q -> min q (Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ()
  in
  max 1 (min cap (Domain.recommended_domain_count () - 1))

let warned_invalid_jobs = Atomic.make false

let default_size () =
  match Sys.getenv_opt "PHPSAFE_JOBS" with
  | None -> recommended ()
  | Some s when String.trim s = "" -> recommended ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          (* invalid or non-positive: fall back, but say so once *)
          let fb = recommended () in
          if not (Atomic.exchange warned_invalid_jobs true) then
            Printf.eprintf
              "sched: ignoring invalid PHPSAFE_JOBS=%S (expected a positive \
               integer); using %d job(s)\n\
               %!"
              s fb;
          fb)

let create ?size () =
  match size with
  | Some n -> { pool_size = max 1 n; pinned = true }
  | None -> { pool_size = default_size (); pinned = false }

let size p = p.pool_size

let refresh p =
  if not p.pinned then begin
    let n = default_size () in
    if n <> p.pool_size then begin
      Obs.incr "sched.pool.resized";
      p.pool_size <- n
    end
  end

let run_item f x =
  match Obs.span "sched.item" (fun () -> f x) with
  | v -> Done v
  | exception Cancel ->
      Obs.incr "sched.items.cancelled";
      Cancelled
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Obs.incr "sched.items.crashed";
      Crashed (e, bt)

(* Chunked dynamic dispatch: workers claim [chunk] consecutive items per
   atomic increment, amortizing the contended counter over long item lists
   (the E10 scaled corpora schedule hundreds of cheap items).  The auto
   heuristic keeps chunks at 1 item until there are at least 4 items per
   pool slot — small grids (the 3×35 evaluation) stay maximally balanced —
   and then targets ~4 chunks per slot so stragglers still even out.
   Results land at their input index whatever the chunking, so the reduce
   stays deterministic. *)
let auto_chunk ~pool_size n = max 1 (n / (pool_size * 4))

let map_result ?chunk ~pool f items =
  Obs.span "sched.map" @@ fun () ->
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else if pool.pool_size <= 1 || n = 1 then
    Obs.span "sched.worker" (fun () -> List.map (run_item f) items)
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ | None -> auto_chunk ~pool_size:pool.pool_size n
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      Obs.span "sched.worker" @@ fun () ->
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        let lo = c * chunk in
        if lo < n then begin
          Obs.incr "sched.chunks.claimed";
          let hi = min n (lo + chunk) - 1 in
          for i = lo to hi do
            results.(i) <- Some (run_item f arr.(i))
          done;
          loop ()
        end
      in
      loop ()
    in
    let slots_needed = (n + chunk - 1) / chunk in
    let helpers = min (pool.pool_size - 1) (slots_needed - 1) in
    let domains = Array.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* deterministic reduce: results come back in input order *)
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* every index < n was claimed *))
  end

let map ?chunk ~pool f items =
  (* fail-fast wrapper: the first failure in input order wins *)
  map_result ?chunk ~pool f items
  |> List.map (function
       | Done v -> v
       | Cancelled -> raise Cancel
       | Crashed (e, bt) -> Printexc.raise_with_backtrace e bt)

type stats = {
  st_pool_size : int;
  st_work_items : int;
  st_files_parsed : int;
  st_cache_hits : int;
  st_wall_total : float;
  st_wall_per_tool : (string * float) list;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "scheduler: %d domain(s), %d work item(s), %.2fs wall@." s.st_pool_size
    s.st_work_items s.st_wall_total;
  Format.fprintf ppf
    "parse cache: %d file(s) parsed, %d hit(s) (%.0f%% hit rate)@."
    s.st_files_parsed s.st_cache_hits
    (let total = s.st_files_parsed + s.st_cache_hits in
     if total = 0 then 0. else 100. *. float_of_int s.st_cache_hits /. float_of_int total);
  List.iter
    (fun (tool, secs) ->
      Format.fprintf ppf "  %-8s %6.2fs item wall time@." tool secs)
    s.st_wall_per_tool
