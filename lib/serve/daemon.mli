(** The analysis-as-a-service daemon.

    A long-running server that keeps the in-memory parse memo and the
    persistent {!Phplang.Store} tiers warm across requests, listens on a
    Unix or TCP socket for {!Protocol} frames, and executes scans through
    a {!Sched} pool:

    - {b batching}: one scheduler thread drains the queue into batches of
      same-budget requests (budgets are process-global, so a batch shares
      one {!Secflow.Budget.set}) and fans each batch out with
      [Sched.map_result] — per-request crash isolation included;
    - {b admission control}: at most [max_queue] requests wait and at most
      [max_inflight] execute; a scan arriving over capacity is shed with a
      structured [overloaded] reply instead of queueing without bound;
    - {b deadlines}: a request's [deadline_ms] becomes an absolute
      deadline at admission (queue time counts against it).  A queued
      request past its deadline is shed without running; a running one is
      cancelled cooperatively ({!Secflow.Deadline} checks at file and
      fixpoint-pass boundaries surface as [Sched.Cancelled]); both get a
      structured [deadline_exceeded] reply;
    - {b I/O timeouts}: with [io_timeout_s] set, accepted sockets get
      [SO_RCVTIMEO]/[SO_SNDTIMEO], so a peer silent (or not reading) for
      a whole interval loses its connection instead of pinning a handler
      thread.  The timeout is per syscall: a slowly-trickling peer resets
      it with every byte;
    - {b tenancy}: a request's [tenant] label prefixes every cache
      namespace for its analysis ({!Phplang.Store.with_tenant}), so
      tenants never share cache entries;
    - {b ops surface}: [status] reports queue depth, in-flight count,
      served/shed totals, uptime and the store's per-namespace disk usage
      ({!Phplang.Store.stats}); [metrics] adds per-namespace cache
      hit/miss/store counters and a latency histogram (count, mean, p50,
      p99).  When {!Obs} recording is on, the scheduler thread also
      maintains [serve.*] counters and gauges and wraps each batch in a
      [serve.batch] span;
    - {b graceful shutdown}: a [shutdown] request stops admission, drains
      every queued and in-flight scan (their replies are still delivered),
      wakes idle connections and joins every thread before {!run}
      returns. *)

type listen =
  | Unix_sock of string  (** socket path; unlinked on shutdown *)
  | Tcp of string * int  (** bind address and port *)

type config = {
  listen : listen;
  jobs : int option;  (** pool size; [None] = {!Sched.default_size} *)
  max_queue : int;  (** queued-scan cap before shedding; default 64 *)
  max_inflight : int option;  (** batch-size cap; [None] = 4 × jobs *)
  max_frame_bytes : int;  (** per-frame cap; oversized frames are refused *)
  prune_age_s : float option;
      (** when set, every batch boundary prunes store entries older than
          this many seconds, bounding the disk tier of a long-running
          daemon *)
  io_timeout_s : float option;
      (** when set (> 0), accepted connections get per-syscall
          receive/send timeouts of this many seconds; a timed-out
          connection is counted ([serve.io_timeouts]) and closed *)
}

val default_config : listen -> config

val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> unit
(** Serve until a [shutdown] request arrives.  Blocks the calling thread;
    run it in a [Thread] (the benchmark does) or dedicate the process to
    it (the [phpsafe_serve] binary does).  [SIGPIPE] is ignored
    process-wide — a vanishing client must not kill the server.

    [on_ready] is called once, on the calling thread, as soon as the
    listener is bound and accepting — with the bound address, so an
    embedder that asked for TCP port 0 learns the real port.  The status
    reply's [heartbeat_age_s] (also the [serve.heartbeat.age_s] gauge in
    [metrics]) is the watchdog: seconds since the scheduler last made
    observable progress (batch picked up, item finished, batch
    delivered).  While scans are in flight a small age means "busy", an
    age that keeps growing means "wedged"; with an empty queue the age
    just measures idle time and is harmless. *)
