(** One scan request's analysis options and the shared execution engine.

    Both [phpsafe_cli] (for targets read from disk) and the
    [phpsafe_serve] daemon (for projects received over the wire) turn a
    [(tool, kind, contexts, flow)] quadruple into an analysis through this
    module, and both render the result with {!Secflow.Report.to_json} —
    which is why their outputs are byte-identical for the same inputs and
    flags. *)

type opts = {
  tool : string;  (** "phpsafe" (default), "rips" or "pixy"; case-insensitive *)
  kind : Secflow.Vuln.kind option;  (** report filter; [None] = all kinds *)
  contexts : bool;  (** phpSAFE sink-context-sensitive sanitization pass *)
  flow : bool;  (** phpSAFE flow-sensitive body walks *)
  second_order : bool;
      (** phpSAFE two-phase second-order SQLi analysis (record DB writes,
          replay matching reads); only affects phpSAFE *)
}

val default : opts

val kind_of_string : string -> (Secflow.Vuln.kind option, string) result
(** ["all"] or a vulnerability-kind spec name (["xss"], ["sqli"], ["cmdi"],
    ["lfi"], ["ssrf"], ["so-sqli"] and their aliases — see
    {!Secflow.Vuln.kind_of_spec_name}); anything else is an [Error] naming
    the bad value. *)

val kind_to_string : Secflow.Vuln.kind option -> string

val tool_of : opts -> (Secflow.Tool.t, string) result
(** The analyzer the options select, with [contexts]/[flow] applied (they
    only affect phpSAFE).  [Error] names an unknown tool. *)

val run : opts -> Phplang.Project.t -> string * Secflow.Report.result
(** Analyze the project and filter findings by [kind] (per-file outcomes
    are never filtered).  Returns the tool's display name and the result.
    Raises [Failure] on an unknown tool — callers are expected to have
    validated [opts] with {!tool_of} first. *)

val run_json : opts -> Phplang.Project.t -> string
(** [Secflow.Report.to_json] of {!run} — the byte-identity currency. *)

val set_before_analyze_hook : (Phplang.Project.t -> unit) option -> unit
(** Install (or clear) a process-global hook called at the top of {!run},
    inside the caller's deadline and tenant scopes.  The chaos harness and
    tests use it to simulate slow scans: a hook that loops
    [Thread.delay]/[Secflow.Deadline.check] burns wall-clock time while
    still honouring cooperative cancellation.  Not for production use. *)
