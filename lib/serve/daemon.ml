(** Analysis-as-a-service daemon — see daemon.mli for the contract. *)

module Json = Secflow.Json

type listen =
  | Unix_sock of string
  | Tcp of string * int

type config = {
  listen : listen;
  jobs : int option;
  max_queue : int;
  max_inflight : int option;
  max_frame_bytes : int;
  prune_age_s : float option;
  io_timeout_s : float option;
}

let default_config listen =
  {
    listen;
    jobs = None;
    max_queue = 64;
    max_inflight = None;
    max_frame_bytes = Protocol.default_max_frame_bytes;
    prune_age_s = None;
    io_timeout_s = None;
  }

(* ------------------------------------------------------------------ *)
(* Latency histogram: total count/sum plus a ring of recent samples    *)
(* for the percentile estimates.                                       *)
(* ------------------------------------------------------------------ *)

module Latency = struct
  let ring_size = 4096

  type t = {
    mutable count : int;
    mutable sum_ms : float;
    ring : float array;
    mutable filled : int;  (* valid entries in [ring] *)
    mutable next : int;
  }

  let create () =
    { count = 0; sum_ms = 0.; ring = Array.make ring_size 0.; filled = 0;
      next = 0 }

  let record t ms =
    t.count <- t.count + 1;
    t.sum_ms <- t.sum_ms +. ms;
    t.ring.(t.next) <- ms;
    t.next <- (t.next + 1) mod ring_size;
    if t.filled < ring_size then t.filled <- t.filled + 1

  (* nearest-rank percentile over the retained window *)
  let percentile t p =
    if t.filled = 0 then 0.
    else begin
      let sorted = Array.sub t.ring 0 t.filled in
      Array.sort compare sorted;
      let rank =
        int_of_float (ceil (p /. 100. *. float_of_int t.filled)) - 1
      in
      sorted.(max 0 (min (t.filled - 1) rank))
    end

  let mean t = if t.count = 0 then 0. else t.sum_ms /. float_of_int t.count
end

(* ------------------------------------------------------------------ *)
(* Jobs and reply mailboxes                                            *)
(* ------------------------------------------------------------------ *)

type box = {
  bm : Mutex.t;
  bc : Condition.t;
  mutable bv : string option;  (* the full reply payload *)
}

let box_create () = { bm = Mutex.create (); bc = Condition.create (); bv = None }

let box_put box reply =
  Mutex.lock box.bm;
  box.bv <- Some reply;
  Condition.signal box.bc;
  Mutex.unlock box.bm

let box_take box =
  Mutex.lock box.bm;
  while box.bv = None do
    Condition.wait box.bc box.bm
  done;
  let v = Option.get box.bv in
  Mutex.unlock box.bm;
  v

type job = {
  jb_req : Protocol.scan_request;
  jb_box : box;
  jb_t0 : float;  (* enqueue time, for queue+execution latency *)
  jb_deadline : float option;
      (* absolute monotonic deadline, fixed at admission so queue time
         counts against the client's budget *)
}

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  pool : Sched.pool;
  max_inflight : int;
  started : float;
  (* request queue + counters, under [m] *)
  m : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable inflight : int;
  mutable served : int;
  mutable shed : int;  (* scans refused with [overloaded] *)
  mutable deadlined : int;  (* scans answered [deadline_exceeded] *)
  mutable io_timeouts : int;  (* connections dropped by SO_RCVTIMEO *)
  mutable protocol_errors : int;
  mutable shutting : bool;
  lat : Latency.t;
  (* watchdog: monotonic time of the scheduler's last observable progress
     (batch picked up, item finished, batch delivered).  Read lock-free by
     [status] so operators can tell "busy" (age ≈ one item's runtime)
     from "wedged" (age grows without bound). *)
  heartbeat : float Atomic.t;
  (* connection registry, under [cm] *)
  cm : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_seq : int;
  mutable threads : Thread.t list;
  listen_fd : Unix.file_descr;
  (* per-(tenant, project, opts) incremental parse sessions, under [wm]:
     a client re-scanning an edited project re-parses only the damaged
     regions (see {!Watch}), and the seeded parse caches make the analysis
     itself warm.  Bounded: the table is dropped wholesale past
     [max_watch_sessions] — sessions are an accelerator, losing one only
     costs a cold parse. *)
  wm : Mutex.t;
  watch_sessions : (string, Watch.session) Hashtbl.t;
}

let max_watch_sessions = 64

let watch_session_of t (req : Protocol.scan_request) =
  let o = req.Protocol.sr_opts in
  let key =
    String.concat "\x00"
      [ Option.value ~default:"" req.Protocol.sr_tenant;
        req.Protocol.sr_project.Phplang.Project.name;
        String.lowercase_ascii o.Scan.tool;
        Scan.kind_to_string o.Scan.kind;
        string_of_bool o.Scan.contexts;
        string_of_bool o.Scan.flow;
        string_of_bool o.Scan.second_order ]
  in
  Mutex.lock t.wm;
  let session =
    match Hashtbl.find_opt t.watch_sessions key with
    | Some s -> s
    | None ->
        if Hashtbl.length t.watch_sessions >= max_watch_sessions then
          Hashtbl.reset t.watch_sessions;
        let s = Watch.create o in
        Hashtbl.replace t.watch_sessions key s;
        s
  in
  Mutex.unlock t.wm;
  session

(* ------------------------------------------------------------------ *)
(* Ops replies                                                         *)
(* ------------------------------------------------------------------ *)

let status_reply t id =
  Mutex.lock t.m;
  let queue_depth = Queue.length t.queue in
  let inflight = t.inflight in
  let served = t.served in
  let shed = t.shed in
  let deadlined = t.deadlined in
  let shutting = t.shutting in
  Mutex.unlock t.m;
  let heartbeat_age = Obs.Clock.now () -. Atomic.get t.heartbeat in
  let store_stats =
    List.map
      (fun (s : Phplang.Store.disk_stats) ->
        Json.Obj
          [ ("ns", Json.String s.Phplang.Store.ds_ns);
            ("entries", Json.Int s.Phplang.Store.ds_entries);
            ("bytes", Json.Int s.Phplang.Store.ds_bytes) ])
      (Phplang.Store.stats ())
  in
  Protocol.ok_reply ~op:"status" ?id
    [ ("uptime_s", Json.Float (Obs.Clock.now () -. t.started));
      ("jobs", Json.Int (Sched.size t.pool));
      ("max_queue", Json.Int t.cfg.max_queue);
      ("max_inflight", Json.Int t.max_inflight);
      ("queue_depth", Json.Int queue_depth);
      ("inflight", Json.Int inflight);
      ("served", Json.Int served);
      ("overloaded", Json.Int shed);
      ("deadline_exceeded", Json.Int deadlined);
      ("heartbeat_age_s", Json.Float heartbeat_age);
      ("draining", Json.Bool shutting);
      ("store",
       Json.Obj
         [ ("enabled", Json.Bool (Phplang.Store.enabled ()));
           ("namespaces", Json.List store_stats) ]) ]

let metrics_reply t id =
  Mutex.lock t.m;
  let counters =
    [ ("serve.requests.scan", t.served + t.inflight + Queue.length t.queue);
      ("serve.served", t.served);
      ("serve.overloaded", t.shed);
      ("serve.deadline_exceeded", t.deadlined);
      ("serve.io_timeouts", t.io_timeouts);
      ("serve.protocol_errors", t.protocol_errors) ]
  in
  let queue_depth = Queue.length t.queue in
  let inflight = t.inflight in
  let lat_count = t.lat.Latency.count in
  let lat_mean = Latency.mean t.lat in
  let lat_p50 = Latency.percentile t.lat 50. in
  let lat_p99 = Latency.percentile t.lat 99. in
  Mutex.unlock t.m;
  let cache =
    List.map
      (fun (s : Phplang.Store.stats) ->
        ( s.Phplang.Store.ns,
          Json.Obj
            [ ("hits", Json.Int s.Phplang.Store.hits);
              ("misses", Json.Int s.Phplang.Store.misses);
              ("stores", Json.Int s.Phplang.Store.stores);
              ("write_errors", Json.Int s.Phplang.Store.write_errors) ] ))
      (Phplang.Store.counters ())
  in
  (* the sub-file incremental pipeline's process-lifetime counters:
     checkpointed-lexing resumes, region re-parses and their fallbacks,
     summary-DAG invalidation.  [Obs.Mirror] is always on and readable
     from this connection thread, unlike an [Obs] snapshot. *)
  let incremental =
    List.map (fun (k, v) -> (k, Json.Int v)) (Obs.Mirror.all ())
  in
  Protocol.ok_reply ~op:"metrics" ?id
    [ ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
      ("incremental", Json.Obj incremental);
      ("gauges",
       Json.Obj
         [ ("serve.queue.depth", Json.Int queue_depth);
           ("serve.inflight", Json.Int inflight);
           ("serve.heartbeat.age_s",
            Json.Float (Obs.Clock.now () -. Atomic.get t.heartbeat)) ]);
      ("latency_ms",
       Json.Obj
         [ ("count", Json.Int lat_count);
           ("mean", Json.Float lat_mean);
           ("p50", Json.Float lat_p50);
           ("p99", Json.Float lat_p99) ]);
      ("cache", Json.Obj cache) ]

(* ------------------------------------------------------------------ *)
(* Scan execution: the scheduler thread                                *)
(* ------------------------------------------------------------------ *)

(* One work item, run inside a [Sched] worker domain: the tenant prefix
   scopes every cache namespace the analyzers touch for this request, and
   the deadline scopes the wall-clock fuel the analyzers' cooperative
   checks consume.  Heartbeat updates bracket the item so the watchdog
   gauge reflects per-item progress, not just per-batch. *)
let execute_job t (job : job) =
  Atomic.set t.heartbeat (Obs.Clock.now ());
  let req = job.jb_req in
  Fun.protect
    ~finally:(fun () -> Atomic.set t.heartbeat (Obs.Clock.now ()))
    (fun () ->
      Secflow.Deadline.with_deadline job.jb_deadline (fun () ->
          Phplang.Store.with_tenant req.Protocol.sr_tenant (fun () ->
              (* sub-file incremental warm-up: re-parse only what changed
                 since this (tenant, project, opts)'s last scan and seed
                 the parse caches; the analysis below hits them.  The
                 session lock only covers this refresh — analyses still
                 fan out in parallel. *)
              let session = watch_session_of t req in
              ignore
                (Watch.refresh_sources session req.Protocol.sr_project
                  : string list * string list);
              Protocol.scan_reply ?id:req.Protocol.sr_id
                ~report:
                  (Scan.run_json req.Protocol.sr_opts req.Protocol.sr_project)
                ())))

let same_budget (a : job) (b : job) =
  a.jb_req.Protocol.sr_budget = b.jb_req.Protocol.sr_budget

let job_expired now (j : job) =
  match j.jb_deadline with Some d -> now > d | None -> false

(* Under [t.m]: a queued request already past its deadline is shed without
   running — the client's time budget covers queue time by design. *)
let shed_expired t (j : job) =
  t.deadlined <- t.deadlined + 1;
  Obs.incr "serve.deadline_exceeded";
  box_put j.jb_box
    (Protocol.error_reply ~op:"scan" ?id:j.jb_req.Protocol.sr_id
       ~code:"deadline_exceeded"
       ~msg:"deadline expired while the request was queued" ())

let scheduler_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.shutting do
      Condition.wait t.nonempty t.m
    done;
    if Queue.is_empty t.queue then begin
      (* shutting down with nothing left to drain *)
      Mutex.unlock t.m;
      ()
    end
    else begin
      (* batch: longest same-budget prefix of the queue, capped at
         [max_inflight] — budgets are process-global, so one [Budget.set]
         must cover the whole fan-out.  Jobs already past their deadline
         are shed as they surface, whatever their budget: they never run,
         so they cannot break the batch's budget invariant. *)
      let now = Obs.Clock.now () in
      let rec first_live () =
        if Queue.is_empty t.queue then None
        else begin
          let j = Queue.pop t.queue in
          if job_expired now j then begin
            shed_expired t j;
            first_live ()
          end
          else Some j
        end
      in
      match first_live () with
      | None ->
          Mutex.unlock t.m;
          loop ()
      | Some first ->
          Atomic.set t.heartbeat now;
          let batch = ref [ first ] in
          let n = ref 1 in
          let stop = ref false in
          while
            (not !stop)
            && !n < t.max_inflight
            && not (Queue.is_empty t.queue)
          do
            let next = Queue.peek t.queue in
            if job_expired now next then shed_expired t (Queue.pop t.queue)
            else if same_budget next first then begin
              batch := Queue.pop t.queue :: !batch;
              incr n
            end
            else stop := true
          done;
          let batch = List.rev !batch in
          t.inflight <- !n;
          let depth = Queue.length t.queue in
          Mutex.unlock t.m;
          Obs.set_gauge "serve.queue.depth" (float_of_int depth);
          Obs.set_gauge "serve.inflight" (float_of_int !n);
          Secflow.Budget.set first.jb_req.Protocol.sr_budget;
          let results =
            Obs.span "serve.batch" @@ fun () ->
            Sched.map_result ~pool:t.pool (execute_job t) batch
          in
          let now = Obs.Clock.now () in
          Atomic.set t.heartbeat now;
          Mutex.lock t.m;
          t.inflight <- 0;
          List.iter2
            (fun job result ->
              t.served <- t.served + 1;
              Latency.record t.lat ((now -. job.jb_t0) *. 1000.);
              let reply =
                match result with
                | Sched.Done reply -> reply
                | Sched.Cancelled ->
                    (* the analyzers' cooperative deadline check fired *)
                    t.deadlined <- t.deadlined + 1;
                    Obs.incr "serve.deadline_exceeded";
                    Protocol.error_reply ~op:"scan"
                      ?id:job.jb_req.Protocol.sr_id ~code:"deadline_exceeded"
                      ~msg:"deadline exceeded during analysis" ()
                | Sched.Crashed (e, _bt) ->
                    (* the analyzers have their own crash barriers, so this
                       is a serving-layer bug or an out-of-resources
                       condition; the client still gets a structured
                       reply *)
                    Protocol.error_reply ~op:"scan"
                      ?id:job.jb_req.Protocol.sr_id ~code:"internal"
                      ~msg:("scan failed: " ^ Printexc.to_string e)
                      ()
              in
              box_put job.jb_box reply)
            batch results;
          Mutex.unlock t.m;
          Obs.add "serve.requests.scan" !n;
          Obs.incr "serve.batches";
      (* bound the disk tier between batches, where nothing is executing *)
      (match t.cfg.prune_age_s with
      | Some age when Phplang.Store.enabled () ->
          ignore (Phplang.Store.prune ~max_age_s:age () : int)
      | _ -> ());
      (* re-fit an auto-sized pool to the current cgroup CPU quota while
         no map is in flight — a daemon in a resized container tracks it
         instead of keeping its start-time size forever *)
      Sched.refresh t.pool;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

(* Admission control: run under [t.m].  A scan over capacity is shed with
   a structured reply — the queue never grows past [max_queue]. *)
let admit t req =
  Mutex.lock t.m;
  let verdict =
    if t.shutting then
      Error
        (Protocol.error_reply ~op:"scan" ?id:req.Protocol.sr_id
           ~code:"shutting_down" ~msg:"server is draining; retry elsewhere"
           ())
    else if Queue.length t.queue >= t.cfg.max_queue then begin
      t.shed <- t.shed + 1;
      Error
        (Protocol.error_reply ~op:"scan" ?id:req.Protocol.sr_id
           ~code:"overloaded"
           ~msg:
             (Printf.sprintf "queue full (%d pending); retry later"
                t.cfg.max_queue)
           ())
    end
    else begin
      let t0 = Obs.Clock.now () in
      let job =
        {
          jb_req = req;
          jb_box = box_create ();
          jb_t0 = t0;
          jb_deadline =
            Option.map
              (fun ms -> t0 +. (float_of_int ms /. 1000.))
              req.Protocol.sr_deadline_ms;
        }
      in
      Queue.push job t.queue;
      Condition.signal t.nonempty;
      Ok job
    end
  in
  Mutex.unlock t.m;
  verdict

let initiate_shutdown t =
  Mutex.lock t.m;
  t.shutting <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let count_protocol_error t =
  Mutex.lock t.m;
  t.protocol_errors <- t.protocol_errors + 1;
  Mutex.unlock t.m

let count_io_timeout t =
  Mutex.lock t.m;
  t.io_timeouts <- t.io_timeouts + 1;
  Mutex.unlock t.m;
  Obs.incr "serve.io_timeouts"

let handle_connection t conn_id fd =
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      Mutex.lock t.cm;
      Hashtbl.remove t.conns conn_id;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.unlock t.cm
    end
  in
  let send payload =
    try
      Protocol.write_frame fd payload;
      true
    with Protocol.Closed | Unix.Unix_error _ ->
      (* mid-request disconnect: drop the reply, keep the server alive *)
      close ();
      false
  in
  let rec serve () =
    if !closed then ()
    else
      match Protocol.read_frame ~max_bytes:t.cfg.max_frame_bytes fd with
      | Protocol.Eof -> close ()
      | Protocol.Timed_out ->
          (* slow-loris peer: silent past SO_RCVTIMEO mid-frame (or
             between frames).  The stream can't be resynchronized, and a
             reply could block on the same dead peer — just close. *)
          count_io_timeout t;
          close ()
      | Protocol.Oversized len ->
          (* the stream can't be resynchronized past an unread body, so
             refuse and close *)
          count_protocol_error t;
          ignore
            (send
               (Protocol.error_reply ~op:"" ~code:"oversized"
                  ~msg:
                    (Printf.sprintf
                       "frame of %d bytes exceeds the %d-byte limit" len
                       t.cfg.max_frame_bytes)
                  ()));
          close ()
      | Protocol.Frame payload -> (
          match Protocol.decode_request payload with
          | Error e ->
              count_protocol_error t;
              if
                send
                  (Protocol.error_reply ~op:e.Protocol.e_op
                     ?id:e.Protocol.e_id ~code:e.Protocol.e_code
                     ~msg:e.Protocol.e_msg ())
              then serve ()
          | Ok (Protocol.Status id) ->
              if send (status_reply t id) then serve ()
          | Ok (Protocol.Metrics id) ->
              if send (metrics_reply t id) then serve ()
          | Ok (Protocol.Shutdown id) ->
              initiate_shutdown t;
              if send (Protocol.ok_reply ~op:"shutdown" ?id []) then serve ()
          | Ok (Protocol.Scan req) -> (
              match admit t req with
              | Error reply -> if send reply then serve ()
              | Ok job ->
                  (* the scheduler always delivers, even while draining *)
                  let reply = box_take job.jb_box in
                  if send reply then serve ()))
  in
  (try serve ()
   with _ ->
     (* no exception may take the daemon down with it *)
     ());
  close ()

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

(* The accept backlog follows [max_queue]: connections the admission
   control would shed anyway gain nothing from queueing in the kernel
   first (floored so tiny-queue test configs still accept connection
   bursts). *)
let make_listener ~backlog = function
  | Unix_sock path ->
      if Sys.file_exists path then (try Unix.unlink path with _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd backlog;
      fd
  | Tcp (host, port) ->
      let addr = (Unix.gethostbyname host).Unix.h_addr_list.(0) in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd backlog;
      fd

(* Per-syscall receive/send timeouts on an accepted connection: a peer
   that goes silent (or stops reading) for a whole interval can no longer
   pin this connection's handler thread.  Best-effort — a platform
   without the option just runs untimed, as before. *)
let arm_io_timeouts cfg fd =
  match cfg.io_timeout_s with
  | Some s when s > 0. -> (
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ()

let accept_loop t =
  let rec loop () =
    let shutting =
      Mutex.lock t.m;
      let s = t.shutting in
      Mutex.unlock t.m;
      s
    in
    if not shutting then begin
      (* short select timeout so a shutdown requested on some connection
         is noticed without relying on close() waking accept() *)
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              arm_io_timeouts t.cfg fd;
              Mutex.lock t.cm;
              t.conn_seq <- t.conn_seq + 1;
              let conn_id = t.conn_seq in
              Hashtbl.replace t.conns conn_id fd;
              let th = Thread.create (handle_connection t conn_id) fd in
              t.threads <- th :: t.threads;
              Mutex.unlock t.cm;
              loop ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
          | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

let run ?on_ready cfg =
  (* a client hanging up mid-reply must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = make_listener ~backlog:(max 16 cfg.max_queue) cfg.listen in
  (* the listener is bound and accepting: tell the embedder (tests bind
     TCP port 0 and need the real port back) *)
  (match on_ready with
  | Some f -> f (Unix.getsockname listen_fd)
  | None -> ());
  (* an explicit --jobs pins the pool; an auto-sized one is re-fitted to
     the cgroup CPU quota between batches (Sched.refresh) *)
  let pool = Sched.create ?size:cfg.jobs () in
  let jobs = Sched.size pool in
  let t =
    {
      cfg;
      pool;
      max_inflight =
        (match cfg.max_inflight with Some n -> max 1 n | None -> 4 * jobs);
      started = Obs.Clock.now ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      inflight = 0;
      served = 0;
      shed = 0;
      deadlined = 0;
      io_timeouts = 0;
      protocol_errors = 0;
      shutting = false;
      lat = Latency.create ();
      heartbeat = Atomic.make (Obs.Clock.now ());
      cm = Mutex.create ();
      conns = Hashtbl.create 16;
      conn_seq = 0;
      threads = [];
      listen_fd;
      wm = Mutex.create ();
      watch_sessions = Hashtbl.create 16;
    }
  in
  Obs.set_gauge "serve.jobs" (float_of_int jobs);
  let scheduler = Thread.create scheduler_loop t in
  accept_loop t;
  (* draining: the scheduler finishes every queued scan and exits *)
  Thread.join scheduler;
  (* wake connections idling in read so their threads can exit; replies
     already in flight still go out — SHUTDOWN_RECEIVE leaves the write
     half open *)
  Mutex.lock t.cm;
  Hashtbl.iter
    (fun _ fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  let threads = t.threads in
  Mutex.unlock t.cm;
  List.iter Thread.join threads;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  match cfg.listen with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
