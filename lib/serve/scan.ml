(** Shared scan execution — see scan.mli. *)

type opts = {
  tool : string;
  kind : Secflow.Vuln.kind option;
  contexts : bool;
  flow : bool;
  second_order : bool;
}

let default =
  { tool = "phpsafe"; kind = None; contexts = false; flow = false;
    second_order = false }

let kind_of_string s =
  if String.equal s "all" then Ok None
  else
    match Secflow.Vuln.kind_of_spec_name s with
    | Some k -> Ok (Some k)
    | None -> Error ("unknown vulnerability kind: " ^ s)

let kind_to_string = function
  | None -> "all"
  | Some k -> Secflow.Vuln.kind_spec_name k

let tool_of opts =
  match String.lowercase_ascii opts.tool with
  | "phpsafe" ->
      let phpsafe_opts =
        { Phpsafe.default_options with
          Phpsafe.infer_contexts = opts.contexts;
          Phpsafe.flow_sensitive = opts.flow }
      in
      Ok
        { Secflow.Tool.name = "phpSAFE";
          analyze_project =
            (fun p ->
              if opts.second_order then
                Phpsafe.analyze_project_so ~opts:phpsafe_opts p
              else Phpsafe.analyze_project ~opts:phpsafe_opts p) }
  | "rips" -> Ok Rips.tool
  | "pixy" -> Ok Pixy.tool
  | other -> Error ("unknown tool: " ^ other)

(* Chaos/test instrumentation: runs at the top of [run], inside the
   caller's deadline and tenant scopes, so a hook that burns time
   cooperatively ([Thread.delay] + [Secflow.Deadline.check]) simulates an
   arbitrarily slow scan that still honours cancellation. *)
let before_analyze_hook : (Phplang.Project.t -> unit) option Atomic.t =
  Atomic.make None

let set_before_analyze_hook h = Atomic.set before_analyze_hook h

let run opts project =
  (match Atomic.get before_analyze_hook with
  | Some f -> f project
  | None -> ());
  let tool =
    match tool_of opts with Ok t -> t | Error msg -> failwith msg
  in
  let result = tool.Secflow.Tool.analyze_project project in
  let findings =
    match opts.kind with
    | None -> result.Secflow.Report.findings
    | Some k ->
        List.filter
          (fun (f : Secflow.Report.finding) ->
            Secflow.Vuln.equal_kind f.Secflow.Report.kind k)
          result.Secflow.Report.findings
  in
  (tool.Secflow.Tool.name, { result with Secflow.Report.findings })

let run_json opts project =
  let tool, result = run opts project in
  Secflow.Report.to_json ~tool result
