(** The [phpsafe-serve/1] wire protocol: length-framed, versioned JSON.

    {2 Framing}

    Every message — request or reply — is one frame: a 4-byte big-endian
    payload length followed by that many bytes of UTF-8 JSON.  Framing is
    what keeps the stream recoverable: a malformed payload only poisons
    its own frame, so the server can reply with a structured error and
    keep reading.  Frames larger than the receiver's cap are the one
    unrecoverable case (the declared length can't be trusted), answered
    with an [oversized] error and a close.

    {2 Requests}

    [{"proto":"phpsafe-serve/1","op":<op>,...}] where [op] is one of
    [scan], [status], [metrics], [shutdown].  Every request may carry an
    ["id"] string, echoed verbatim in the reply.  A [scan] adds:

    - ["project"]: [{"name":string,"files":[{"path","source"},...]}]
    - ["tool"] ("phpsafe"|"rips"|"pixy"), ["kind"] ("all"|"xss"|"sqli"),
      ["contexts"], ["flow"] — all optional, CLI-default semantics;
    - ["tenant"]: optional cache-namespace label ([A-Za-z0-9_.-]);
    - ["budget"]: optional per-request resource caps, fields of
      {!Secflow.Budget.t}; omitted fields default;
    - ["deadline_ms"]: optional positive integer — the client's
      end-to-end time budget for this request, measured from admission.
      Absent means unbounded (backward compatible).  A request past its
      deadline is shed from the queue or cancelled cooperatively
      mid-analysis, either way answered with a [deadline_exceeded] error.

    {2 Replies}

    [{"proto":"phpsafe-serve/1","ok":true,"op":<op>,...}] on success;
    scan replies carry the {!Secflow.Report.to_json} document, spliced in
    verbatim as the (always last) ["report"] field so its bytes are exactly
    what [phpsafe_cli --format json] prints.  Failures are
    [{"proto":...,"ok":false,"op":...,"error":{"code":...,"message":...}}]
    with codes: [bad_json], [bad_proto], [bad_request], [oversized],
    [overloaded], [shutting_down], [deadline_exceeded], [internal]. *)

val version : string
(** ["phpsafe-serve/1"]. *)

val default_max_frame_bytes : int
(** 64 MiB. *)

(** {1 Frame I/O} *)

exception Closed
(** The peer vanished mid-write ([EPIPE]/[ECONNRESET]), or — with
    [SO_SNDTIMEO] set on the socket — stalled past the send timeout with
    its receive window full, leaving the frame undeliverable. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (length header + payload), looping over partial
    writes and retrying [EINTR].  Raises {!Closed} when the peer is
    gone. *)

type read_result =
  | Frame of string
  | Eof  (** clean close, or the peer vanished mid-frame *)
  | Oversized of int  (** declared length exceeded the cap *)
  | Timed_out
      (** [SO_RCVTIMEO] expired mid-read.  The timeout is per [read(2)]
          call, so this fires when the peer goes silent for the whole
          interval — a trickling peer resets it with every byte.  The
          stream cannot be resynchronized; drop the connection. *)

val read_frame : ?max_bytes:int -> Unix.file_descr -> read_result
(** Read one frame, looping over partial reads ([max_bytes] defaults to
    {!default_max_frame_bytes}) and retrying [EINTR].  Partial and
    coalesced socket delivery are invisible here: exactly the framed
    bytes are consumed. *)

(** {1 Requests} *)

type scan_request = {
  sr_id : string option;
  sr_tenant : string option;
  sr_project : Phplang.Project.t;
  sr_opts : Scan.opts;
  sr_budget : Secflow.Budget.t;
  sr_deadline_ms : int option;
      (** end-to-end time budget, measured from admission; [None] =
          unbounded *)
}

type request =
  | Scan of scan_request
  | Status of string option  (** the request id *)
  | Metrics of string option
  | Shutdown of string option

(** Structured decode failure, carrying everything an error reply needs. *)
type error = {
  e_code : string;
  e_msg : string;
  e_id : string option;
  e_op : string;
}

val decode_request : string -> (request, error) result
(** Decode one frame payload.  Never raises: malformed JSON, a wrong or
    missing protocol version, unknown ops, invalid tenants/tools/kinds and
    type confusion all come back as [Error _]. *)

val encode_scan_request : scan_request -> string
(** The client-side encoder ({!decode_request} round-trips it). *)

val encode_simple_request : op:string -> ?id:string -> unit -> string

(** {1 Replies} *)

val scan_reply : ?id:string -> report:string -> unit -> string
(** Success envelope with [report] — a pre-rendered
    {!Secflow.Report.to_json} document — spliced in verbatim as the last
    field. *)

val ok_reply : op:string -> ?id:string -> (string * Secflow.Json.t) list -> string

val error_reply :
  op:string -> ?id:string -> code:string -> msg:string -> unit -> string

val scan_report_of_reply : string -> (string, string) result
(** Extract the ["report"] document from a scan reply {e without
    re-encoding it} — the returned string is byte-identical to what the
    server spliced in.  [Error] carries the server's error message (or a
    description of why the reply is unintelligible). *)
