(** Edit-delta scanning: the engine behind [phpsafe_cli --watch] and the
    daemon's warm re-scan path.

    A {!session} owns a {!Phplang.Project.Increment} parse session plus
    the previous scan's findings.  Each {!scan} first brings the parse
    session in line with the project — every changed file is re-lexed from
    its edit's damage region and region-re-parsed, with the result seeded
    into the process parse caches — then runs the ordinary {!Scan.run}
    (which hits those caches) and diffs the findings against the previous
    scan.  Reports stay byte-identical to a cold scan of the same bytes:
    incrementality only changes how fast the parse artifacts appear, never
    what they contain. *)

(** What one re-scan observed, relative to the session's previous scan. *)
type delta = {
  d_initial : bool;  (** first scan of this session: everything is new *)
  d_changed : string list;  (** new or edited paths, sorted *)
  d_deleted : string list;  (** paths gone from the project, sorted *)
  d_added : Secflow.Report.finding list;
      (** findings not present before, in report order *)
  d_removed : Secflow.Report.finding list;
      (** previous findings no longer present, in previous-report order *)
  d_total : int;  (** findings after this scan (post [kind] filter) *)
  d_ms : float;  (** analysis wall time, excluding source refresh *)
  d_report : string;
      (** the full {!Scan.run_json} document for this scan — what the
          daemon splices into a scan reply *)
}

type session

val create : Scan.opts -> session
(** Also turns on {!Phpsafe.Analyzer.set_dag_tracking}: a watch session is
    a long-lived incremental consumer, so every scan accounts summary-DAG
    invalidation ([summary.dag.invalidated]/[summary.dag.retained]). *)

val refresh_sources :
  session -> Phplang.Project.t -> string list * string list
(** Update the incremental parse session to [project] without analyzing:
    [(changed, deleted)] paths, each sorted.  Changed files are re-parsed
    incrementally and seeded into the shared parse caches.  Thread-safe
    (the daemon calls this from worker domains); the analysis itself can
    then run outside the session lock. *)

val scan : session -> Phplang.Project.t -> delta
(** {!refresh_sources} + {!Scan.run} + finding diff, atomically with
    respect to other calls on the session. *)

val scan_if_changed : session -> Phplang.Project.t -> delta option
(** [None] when the session has scanned before and no file changed —
    the poll loop's cheap idle path. *)

val loop :
  session ->
  load:(unit -> Phplang.Project.t) ->
  poll_ms:int ->
  ?max_events:int ->
  on_event:(delta -> unit) ->
  unit ->
  unit
(** Poll-driven watch: scan once immediately, then reload every [poll_ms]
    milliseconds and deliver a {!delta} to [on_event] whenever anything
    changed.  [max_events] bounds how many deltas are delivered (the
    initial scan counts) — the CI smoke test's exit condition; omit it to
    run until the process is killed. *)
