(** Edit-delta scanning over a long-lived incremental session — see
    watch.mli. *)

type delta = {
  d_initial : bool;
  d_changed : string list;
  d_deleted : string list;
  d_added : Secflow.Report.finding list;
  d_removed : Secflow.Report.finding list;
  d_total : int;
  d_ms : float;
  d_report : string;
}

type session = {
  w_opts : Scan.opts;
  w_inc : Phplang.Project.Increment.session;
  w_sources : (string, string) Hashtbl.t;  (* path -> last seen source *)
  mutable w_prev : Secflow.Report.finding list option;
  w_lock : Mutex.t;
}

let create opts =
  (* a long-lived session is exactly the consumer the summary-DAG
     bookkeeping exists for: every scan reports how much of the summary
     graph the latest edits dirtied *)
  Phpsafe.Analyzer.set_dag_tracking true;
  {
    w_opts = opts;
    w_inc = Phplang.Project.Increment.create ();
    w_sources = Hashtbl.create 64;
    w_prev = None;
    w_lock = Mutex.create ();
  }

let locked s f =
  Mutex.lock s.w_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.w_lock) f

(* Under the session lock: bring the incremental parse session in line
   with [project], returning the changed and deleted paths (each sorted).
   Each changed file goes through {!Phplang.Project.Increment.update},
   which re-parses sub-file-incrementally and seeds the process parse
   caches — the analysis that follows hits them transparently. *)
let refresh_locked s (project : Phplang.Project.t) =
  let changed = ref [] in
  List.iter
    (fun (f : Phplang.Project.file) ->
      let same =
        match Hashtbl.find_opt s.w_sources f.path with
        | Some old -> String.equal old f.source
        | None -> false
      in
      if not same then begin
        changed := f.path :: !changed;
        Hashtbl.replace s.w_sources f.path f.source;
        ignore
          (Phplang.Project.Increment.update s.w_inc ~path:f.path
             ~source:f.source
            : (Phplang.Ast.program, Phplang.Project.parse_error) result)
      end)
    project.files;
  let live = Hashtbl.create 64 in
  List.iter
    (fun (f : Phplang.Project.file) -> Hashtbl.replace live f.path ())
    project.files;
  let deleted =
    Hashtbl.fold
      (fun path _ acc -> if Hashtbl.mem live path then acc else path :: acc)
      s.w_sources []
  in
  List.iter
    (fun path ->
      Hashtbl.remove s.w_sources path;
      Phplang.Project.Increment.forget s.w_inc path)
    deleted;
  (List.sort String.compare !changed, List.sort String.compare deleted)

let refresh_sources s project = locked s (fun () -> refresh_locked s project)

let finding_key (f : Secflow.Report.finding) =
  Format.asprintf "%a" Secflow.Report.pp_finding f

(* Stable-order finding diff: [added] keeps the new report's order,
   [removed] the old one's.  Keys carry multiplicity so two identical
   findings minus one of them still shows a removal. *)
let diff_findings ~old ~fresh =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = finding_key f in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    old;
  let added =
    List.filter
      (fun f ->
        let k = finding_key f in
        match Hashtbl.find_opt counts k with
        | Some n when n > 0 ->
            Hashtbl.replace counts k (n - 1);
            false
        | _ -> true)
      fresh
  in
  let removed =
    List.filter
      (fun f ->
        let k = finding_key f in
        match Hashtbl.find_opt counts k with
        | Some n when n > 0 ->
            Hashtbl.replace counts k (n - 1);
            true
        | _ -> false)
      old
  in
  (added, removed)

let scan s project =
  locked s @@ fun () ->
  let changed, deleted = refresh_locked s project in
  let t0 = Obs.Clock.now () in
  let tool, result = Scan.run s.w_opts project in
  let ms = (Obs.Clock.now () -. t0) *. 1000. in
  let fresh = result.Secflow.Report.findings in
  let initial = s.w_prev = None in
  let old = Option.value ~default:[] s.w_prev in
  let added, removed = diff_findings ~old ~fresh in
  s.w_prev <- Some fresh;
  {
    d_initial = initial;
    d_changed = changed;
    d_deleted = deleted;
    d_added = added;
    d_removed = removed;
    d_total = List.length fresh;
    d_ms = ms;
    d_report = Secflow.Report.to_json ~tool result;
  }

let scan_if_changed s project =
  let quiescent =
    locked s @@ fun () ->
    s.w_prev <> None
    && List.length project.Phplang.Project.files = Hashtbl.length s.w_sources
    && List.for_all
         (fun (f : Phplang.Project.file) ->
           match Hashtbl.find_opt s.w_sources f.path with
           | Some old -> String.equal old f.source
           | None -> false)
         project.files
  in
  if quiescent then None else Some (scan s project)

let loop s ~load ~poll_ms ?max_events ~on_event () =
  let events = ref 0 in
  let budget_left () =
    match max_events with Some n -> !events < n | None -> true
  in
  let deliver d =
    incr events;
    on_event d
  in
  if budget_left () then deliver (scan s (load ()));
  while budget_left () do
    Unix.sleepf (float_of_int (max 1 poll_ms) /. 1000.);
    match scan_if_changed s (load ()) with
    | Some d -> deliver d
    | None -> ()
  done
