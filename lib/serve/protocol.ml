(** Length-framed, versioned JSON wire protocol — see protocol.mli. *)

module Json = Secflow.Json

let version = "phpsafe-serve/1"

let default_max_frame_bytes = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                          *)
(* ------------------------------------------------------------------ *)

exception Closed

let write_all fd buf ofs len =
  let rec go ofs len =
    if len > 0 then begin
      match Unix.write fd buf ofs len with
      | n -> go (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* a signal mid-write is a retry, not a dead peer — same
             discipline as the accept loop *)
          go ofs len
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          raise Closed
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_SNDTIMEO expired with the peer's window still full: a
             stalled reader.  The frame can no longer be delivered
             whole, so the connection is unusable. *)
          raise Closed
    end
  in
  go ofs len

let write_frame fd payload =
  let len = String.length payload in
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  write_all fd header 0 4;
  write_all fd (Bytes.of_string payload) 0 len

type read_result =
  | Frame of string
  | Eof
  | Oversized of int
  | Timed_out

(* Outcome of reading exactly [len] bytes.  Partial reads (slow or
   chunking peers) just loop; coalesced frames are untouched because only
   [len] bytes are consumed. *)
type rr = Rr_data of bytes | Rr_eof | Rr_timeout

let really_read fd len =
  let buf = Bytes.create len in
  let rec go ofs =
    if ofs >= len then Rr_data buf
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> Rr_eof
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          (* a signal mid-read is a retry, not a dead peer *)
          go ofs
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
          Rr_eof
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_RCVTIMEO expired: the peer stalled mid-frame (or went
             silent between frames).  The stream can no longer be
             resynchronized, so the caller should drop the connection. *)
          Rr_timeout
  in
  go 0

let read_frame ?(max_bytes = default_max_frame_bytes) fd =
  match really_read fd 4 with
  | Rr_eof -> Eof
  | Rr_timeout -> Timed_out
  | Rr_data header ->
      let len =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if len > max_bytes then Oversized len
      else if len = 0 then Frame ""
      else (
        match really_read fd len with
        | Rr_eof -> Eof
        | Rr_timeout -> Timed_out
        | Rr_data payload -> Frame (Bytes.unsafe_to_string payload))

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type scan_request = {
  sr_id : string option;
  sr_tenant : string option;
  sr_project : Phplang.Project.t;
  sr_opts : Scan.opts;
  sr_budget : Secflow.Budget.t;
  sr_deadline_ms : int option;
}

type request =
  | Scan of scan_request
  | Status of string option
  | Metrics of string option
  | Shutdown of string option

type error = {
  e_code : string;
  e_msg : string;
  e_id : string option;
  e_op : string;
}

let err ?(op = "") ?id code msg =
  Error { e_code = code; e_msg = msg; e_id = id; e_op = op }

let decode_budget ?id ~op json =
  let default = Secflow.Budget.default in
  match json with
  | None -> Ok default
  | Some (Json.Obj _ as obj) ->
      let field name fallback =
        match Json.member name obj with
        | None -> Ok fallback
        | Some v -> (
            match Json.to_int_opt v with
            | Some n when n >= 1 -> Ok n
            | _ -> err ?id ~op "bad_request"
                     (Printf.sprintf "budget.%s must be a positive integer"
                        name))
      in
      Result.bind (field "parse_depth" default.Secflow.Budget.parse_depth)
        (fun parse_depth ->
          Result.bind
            (field "fixpoint_passes" default.Secflow.Budget.fixpoint_passes)
            (fun fixpoint_passes ->
              Result.bind
                (field "include_depth" default.Secflow.Budget.include_depth)
                (fun include_depth ->
                  Result.bind
                    (field "include_files"
                       default.Secflow.Budget.include_files)
                    (fun include_files ->
                      Ok
                        { Secflow.Budget.parse_depth; fixpoint_passes;
                          include_depth; include_files }))))
  | Some _ -> err ?id ~op "bad_request" "budget must be an object"

let decode_project ?id ~op json =
  match json with
  | None -> err ?id ~op "bad_request" "scan requires a project"
  | Some obj -> (
      let name =
        match Json.member "name" obj with
        | Some (Json.String s) when s <> "" -> Some s
        | _ -> None
      in
      match (name, Option.bind (Json.member "files" obj) Json.to_list_opt) with
      | None, _ -> err ?id ~op "bad_request" "project.name must be a non-empty string"
      | _, None -> err ?id ~op "bad_request" "project.files must be a list"
      | Some name, Some files ->
          let decode_file f =
            match
              ( Option.bind (Json.member "path" f) Json.to_string_opt,
                Option.bind (Json.member "source" f) Json.to_string_opt )
            with
            | Some path, Some source
              when path <> "" && not (String.contains path '\000') ->
                Ok { Phplang.Project.path; source }
            | _ ->
                err ?id ~op "bad_request"
                  "each project file needs a \"path\" and a \"source\" string"
          in
          let rec decode_files acc = function
            | [] -> Ok (List.rev acc)
            | f :: rest -> (
                match decode_file f with
                | Ok file -> decode_files (file :: acc) rest
                | Error e -> Error e)
          in
          Result.map
            (fun files -> Phplang.Project.make ~name files)
            (decode_files [] files))

let decode_request payload =
  match Json.parse payload with
  | Error msg -> err "bad_json" ("request is not valid JSON: " ^ msg)
  | Ok json -> (
      let id = Option.bind (Json.member "id" json) Json.to_string_opt in
      let op =
        Option.bind (Json.member "op" json) Json.to_string_opt
        |> Option.value ~default:""
      in
      match Option.bind (Json.member "proto" json) Json.to_string_opt with
      | None -> err ?id ~op "bad_proto" "missing \"proto\" field"
      | Some p when p <> version ->
          err ?id ~op "bad_proto"
            (Printf.sprintf "unsupported protocol %S (this server speaks %s)"
               p version)
      | Some _ -> (
          match op with
          | "status" -> Ok (Status id)
          | "metrics" -> Ok (Metrics id)
          | "shutdown" -> Ok (Shutdown id)
          | "scan" -> (
              let tenant =
                Option.bind (Json.member "tenant" json) Json.to_string_opt
              in
              match tenant with
              | Some t when not (Phplang.Store.valid_tenant t) ->
                  err ?id ~op "bad_request"
                    (Printf.sprintf
                       "invalid tenant %S (allowed: A-Za-z0-9_.-)" t)
              | _ -> (
                  let tool =
                    Option.bind (Json.member "tool" json) Json.to_string_opt
                    |> Option.value ~default:"phpsafe"
                  in
                  let kind_s =
                    Option.bind (Json.member "kind" json) Json.to_string_opt
                    |> Option.value ~default:"all"
                  in
                  let flag name =
                    Option.bind (Json.member name json) Json.to_bool_opt
                    |> Option.value ~default:false
                  in
                  match Scan.kind_of_string kind_s with
                  | Error msg -> err ?id ~op "bad_request" msg
                  | Ok kind -> (
                      let opts =
                        { Scan.tool; kind; contexts = flag "contexts";
                          flow = flag "flow";
                          second_order = flag "second_order" }
                      in
                      match Scan.tool_of opts with
                      | Error msg -> err ?id ~op "bad_request" msg
                      | Ok _ -> (
                          let deadline =
                            match Json.member "deadline_ms" json with
                            | None -> Ok None
                            | Some v -> (
                                match Json.to_int_opt v with
                                | Some ms when ms >= 1 -> Ok (Some ms)
                                | _ ->
                                    err ?id ~op "bad_request"
                                      "deadline_ms must be a positive \
                                       integer (milliseconds)")
                          in
                          match deadline with
                          | Error e -> Error e
                          | Ok deadline_ms -> (
                          match
                            decode_budget ?id ~op (Json.member "budget" json)
                          with
                          | Error e -> Error e
                          | Ok budget -> (
                              match
                                decode_project ?id ~op
                                  (Json.member "project" json)
                              with
                              | Error e -> Error e
                              | Ok project ->
                                  Ok
                                    (Scan
                                       { sr_id = id; sr_tenant = tenant;
                                         sr_project = project;
                                         sr_opts = opts;
                                         sr_budget = budget;
                                         sr_deadline_ms = deadline_ms })))))))
          | "" -> err ?id "bad_request" "missing \"op\" field"
          | other ->
              err ?id ~op "bad_request"
                (Printf.sprintf
                   "unknown op %S (expected scan, status, metrics or \
                    shutdown)"
                   other)))

let encode_scan_request sr =
  let b = Secflow.Budget.default in
  let budget_fields =
    let f name v d = if v = d then [] else [ (name, Json.Int v) ] in
    f "parse_depth" sr.sr_budget.Secflow.Budget.parse_depth
      b.Secflow.Budget.parse_depth
    @ f "fixpoint_passes" sr.sr_budget.Secflow.Budget.fixpoint_passes
        b.Secflow.Budget.fixpoint_passes
    @ f "include_depth" sr.sr_budget.Secflow.Budget.include_depth
        b.Secflow.Budget.include_depth
    @ f "include_files" sr.sr_budget.Secflow.Budget.include_files
        b.Secflow.Budget.include_files
  in
  Json.to_string
    (Json.Obj
       ([ ("proto", Json.String version); ("op", Json.String "scan") ]
       @ (match sr.sr_id with
         | Some id -> [ ("id", Json.String id) ]
         | None -> [])
       @ (match sr.sr_tenant with
         | Some t -> [ ("tenant", Json.String t) ]
         | None -> [])
       @ [ ("tool", Json.String sr.sr_opts.Scan.tool);
           ("kind", Json.String (Scan.kind_to_string sr.sr_opts.Scan.kind));
           ("contexts", Json.Bool sr.sr_opts.Scan.contexts);
           ("flow", Json.Bool sr.sr_opts.Scan.flow);
           ("second_order", Json.Bool sr.sr_opts.Scan.second_order) ]
       @ (match sr.sr_deadline_ms with
         | Some ms -> [ ("deadline_ms", Json.Int ms) ]
         | None -> [])
       @ (match budget_fields with
         | [] -> []
         | fields -> [ ("budget", Json.Obj fields) ])
       @ [ ("project",
            Json.Obj
              [ ("name", Json.String sr.sr_project.Phplang.Project.name);
                ("files",
                 Json.List
                   (List.map
                      (fun (f : Phplang.Project.file) ->
                        Json.Obj
                          [ ("path", Json.String f.Phplang.Project.path);
                            ("source", Json.String f.Phplang.Project.source)
                          ])
                      sr.sr_project.Phplang.Project.files)) ]) ]))

let encode_simple_request ~op ?id () =
  Json.to_string
    (Json.Obj
       ([ ("proto", Json.String version); ("op", Json.String op) ]
       @ match id with Some id -> [ ("id", Json.String id) ] | None -> []))

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

let id_fragment = function
  | Some id -> Printf.sprintf ",\"id\":\"%s\"" (Json.escape id)
  | None -> ""

(* The report document is spliced in verbatim (not re-encoded) as the
   final field, so the client can cut it back out byte-for-byte. *)
let scan_reply ?id ~report () =
  Printf.sprintf "{\"proto\":\"%s\",\"ok\":true,\"op\":\"scan\"%s,\"report\":%s}"
    version (id_fragment id) report

let ok_reply ~op ?id fields =
  Json.to_string
    (Json.Obj
       ([ ("proto", Json.String version); ("ok", Json.Bool true);
          ("op", Json.String op) ]
       @ (match id with Some id -> [ ("id", Json.String id) ] | None -> [])
       @ fields))

let error_reply ~op ?id ~code ~msg () =
  Json.to_string
    (Json.Obj
       ([ ("proto", Json.String version); ("ok", Json.Bool false);
          ("op", Json.String op) ]
       @ (match id with Some id -> [ ("id", Json.String id) ] | None -> [])
       @ [ ("error",
            Json.Obj
              [ ("code", Json.String code); ("message", Json.String msg) ])
         ]))

let report_marker = ",\"report\":"

let scan_report_of_reply reply =
  match Json.parse reply with
  | Error msg -> Error ("reply is not valid JSON: " ^ msg)
  | Ok json -> (
      match Option.bind (Json.member "ok" json) Json.to_bool_opt with
      | Some true -> (
          (* the marker bytes cannot occur inside an encoded string (every
             interior quote is escaped), so the first occurrence is the
             real field boundary *)
          let mlen = String.length report_marker in
          let rec find i =
            if i + mlen > String.length reply then None
            else if String.sub reply i mlen = report_marker then Some i
            else find (i + 1)
          in
          match find 0 with
          | Some i ->
              Ok (String.sub reply (i + mlen) (String.length reply - i - mlen - 1))
          | None -> Error "scan reply carries no report field")
      | Some false ->
          let code, msg =
            match Json.member "error" json with
            | Some e ->
                ( Option.bind (Json.member "code" e) Json.to_string_opt
                  |> Option.value ~default:"unknown",
                  Option.bind (Json.member "message" e) Json.to_string_opt
                  |> Option.value ~default:"" )
            | None -> ("unknown", "")
          in
          Error (Printf.sprintf "server error [%s]: %s" code msg)
      | None -> Error "reply carries no \"ok\" field")
