(** Observability subsystem — see obs.mli for the contract. *)

module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
end

type span_agg = { sa_name : string; sa_count : int; sa_total_ns : int64 }

type event = {
  ev_domain : int;
  ev_seq : int;
  ev_name : string;
  ev_depth : int;
  ev_start_ns : int64;
  ev_dur_ns : int64;
}

type snapshot = {
  sn_counters : (string * int) list;
  sn_gauges : (string * float) list;
  sn_spans : span_agg list;
  sn_events : event list;
}

(* ------------------------------------------------------------------ *)
(* Recording state                                                    *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let epoch_ns = Atomic.make 0L

(** One per domain, reached through [Domain.DLS]: owning-domain writes need
    no lock.  The registry only adds buffers (under its mutex); merging
    reads them from a quiescent main domain. *)
type buffer = {
  buf_domain : int;
  mutable buf_events : event list;  (** reversed *)
  mutable buf_depth : int;  (** open spans on this domain *)
  mutable buf_seq : int;
  buf_counters : (string, int ref) Hashtbl.t;
  buf_spans : (string, int ref * int64 ref) Hashtbl.t;
}

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          buf_domain = (Domain.self () :> int);
          buf_events = [];
          buf_depth = 0;
          buf_seq = 0;
          buf_counters = Hashtbl.create 32;
          buf_spans = Hashtbl.create 32;
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get buffer_key

let gauges : (string, float) Hashtbl.t = Hashtbl.create 16
let gauges_lock = Mutex.create ()

(* ------------------------------------------------------------------ *)
(* Recording API                                                      *)
(* ------------------------------------------------------------------ *)

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then
    Atomic.set epoch_ns (Clock.now_ns ());
  Atomic.set enabled_flag b

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.buf_events <- [];
      b.buf_depth <- 0;
      b.buf_seq <- 0;
      Hashtbl.reset b.buf_counters;
      Hashtbl.reset b.buf_spans)
    !registry;
  Mutex.unlock registry_lock;
  Mutex.lock gauges_lock;
  Hashtbl.reset gauges;
  Mutex.unlock gauges_lock;
  Atomic.set epoch_ns (Clock.now_ns ())

let add name n =
  if Atomic.get enabled_flag then begin
    let b = buffer () in
    match Hashtbl.find_opt b.buf_counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace b.buf_counters name (ref n)
  end

let incr name = add name 1

let set_gauge name v =
  if Atomic.get enabled_flag then begin
    Mutex.lock gauges_lock;
    Hashtbl.replace gauges name v;
    Mutex.unlock gauges_lock
  end

let record_span b name ~depth ~t0 =
  let t1 = Clock.now_ns () in
  let dur = Int64.sub t1 t0 in
  b.buf_depth <- depth;
  b.buf_seq <- b.buf_seq + 1;
  b.buf_events <-
    {
      ev_domain = b.buf_domain;
      ev_seq = b.buf_seq;
      ev_name = name;
      ev_depth = depth;
      ev_start_ns = Int64.sub t0 (Atomic.get epoch_ns);
      ev_dur_ns = dur;
    }
    :: b.buf_events;
  match Hashtbl.find_opt b.buf_spans name with
  | Some (count, total) ->
      Stdlib.incr count;
      total := Int64.add !total dur
  | None -> Hashtbl.replace b.buf_spans name (ref 1, ref dur)

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = buffer () in
    let depth = b.buf_depth in
    b.buf_depth <- depth + 1;
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        record_span b name ~depth ~t0;
        v
    | exception e ->
        record_span b name ~depth ~t0;
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Mirrored counters                                                  *)
(* ------------------------------------------------------------------ *)

let by_name (a, _) (b, _) = String.compare a b

module Mirror = struct
  let table : (string, int ref) Hashtbl.t = Hashtbl.create 16
  let lock = Mutex.create ()

  let add name n =
    add name n;
    Mutex.lock lock;
    (match Hashtbl.find_opt table name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace table name (ref n));
    Mutex.unlock lock

  let incr name = add name 1

  let get name =
    Mutex.lock lock;
    let v =
      match Hashtbl.find_opt table name with Some r -> !r | None -> 0
    in
    Mutex.unlock lock;
    v

  let all () =
    Mutex.lock lock;
    let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) table [] in
    Mutex.unlock lock;
    List.sort by_name l

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset table;
    Mutex.unlock lock
end

(* ------------------------------------------------------------------ *)
(* Snapshot merge                                                     *)
(* ------------------------------------------------------------------ *)

let snapshot () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  let counters = Hashtbl.create 32 in
  let spans = Hashtbl.create 32 in
  let events = ref [] in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.replace counters name (ref !r))
        b.buf_counters;
      Hashtbl.iter
        (fun name (count, total) ->
          match Hashtbl.find_opt spans name with
          | Some (c, t) ->
              c := !c + !count;
              t := Int64.add !t !total
          | None -> Hashtbl.replace spans name (ref !count, ref !total))
        b.buf_spans;
      events := List.rev_append b.buf_events !events)
    buffers;
  Mutex.lock gauges_lock;
  let gs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) gauges [] in
  Mutex.unlock gauges_lock;
  {
    sn_counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters []
      |> List.sort by_name;
    sn_gauges = List.sort by_name gs;
    sn_spans =
      Hashtbl.fold
        (fun k (c, t) acc ->
          { sa_name = k; sa_count = !c; sa_total_ns = !t } :: acc)
        spans []
      |> List.sort (fun a b -> String.compare a.sa_name b.sa_name);
    sn_events =
      List.sort
        (fun a b ->
          match compare a.ev_domain b.ev_domain with
          | 0 -> compare a.ev_seq b.ev_seq
          | c -> c)
        !events;
  }

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let ns_to_s ns = Int64.to_float ns /. 1e9
let ns_to_us ns = Int64.to_float ns /. 1e3

let pp_summary ppf s =
  Format.fprintf ppf "== observability summary ==@.";
  if s.sn_gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12.2f@." name v)
      s.sn_gauges
  end;
  if s.sn_counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %12d@." name v)
      s.sn_counters
  end;
  if s.sn_spans <> [] then begin
    Format.fprintf ppf "spans:%42s %10s %10s@." "count" "total" "mean";
    List.iter
      (fun a ->
        let total = ns_to_s a.sa_total_ns in
        Format.fprintf ppf "  %-40s %7d %9.3fs %8.3fms@." a.sa_name a.sa_count
          total
          (if a.sa_count = 0 then 0. else total *. 1e3 /. float_of_int a.sa_count))
      s.sn_spans
  end

(* Minimal JSON writer: the only strings we emit are span/counter names and
   fixed keys, but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let category_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let trace_json s =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun piece ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf piece)
      fmt
  in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"phpsafe\"}}";
  let module IS = Set.Make (Int) in
  let domains =
    List.fold_left (fun acc e -> IS.add e.ev_domain acc) IS.empty s.sn_events
  in
  IS.iter
    (fun d ->
      emit
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
        d d)
    domains;
  List.iter
    (fun e ->
      emit
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
        (json_escape e.ev_name)
        (json_escape (category_of e.ev_name))
        e.ev_domain (ns_to_us e.ev_start_ns) (ns_to_us e.ev_dur_ns))
    s.sn_events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let metrics_json s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"phpsafe-obs/1\",\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%.6f" (json_escape name) v))
    s.sn_gauges;
  Buffer.add_string buf "},\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    s.sn_counters;
  Buffer.add_string buf "},\"spans\":{";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"count\":%d,\"total_s\":%.9f}"
           (json_escape a.sa_name) a.sa_count (ns_to_s a.sa_total_ns)))
    s.sn_spans;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
