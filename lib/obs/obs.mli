(** Observability: hierarchical wall-clock spans, counters and gauges for
    the whole analysis stack, with domain-safe per-worker buffers and three
    exporters (human summary, Chrome trace-event JSON, metrics JSON).

    Instrumentation points call {!span}, {!incr}, {!add} and {!set_gauge}
    unconditionally; all four are no-ops while recording is disabled (the
    default), so the instrumented hot paths pay one atomic load and nothing
    else.  Drivers that want data call [set_enabled true] before the run and
    {!snapshot} after it.

    Concurrency model: every domain records into its own buffer
    ([Domain.DLS]), so workers spawned by [Sched.map] never contend; buffers
    register themselves in a global list on first use.  {!snapshot} and
    {!reset} must be called from a quiescent main domain (no workers
    running), which is exactly the drivers' situation — [Sched.map] joins
    all domains before returning.  The merge is deterministic: counters and
    span aggregates are summed and sorted by name, so a parallel run at any
    pool size produces the same counter values as a sequential one (only
    durations differ); events sort by (domain id, per-domain sequence
    number). *)

module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic clock, nanoseconds ([clock_gettime(CLOCK_MONOTONIC)]).
      Unlike [Sys.time] this is wall time, not process CPU time, so it
      stays correct when work fans out across domains. *)

  val now : unit -> float
  (** {!now_ns} in seconds. *)
end

val set_enabled : bool -> unit
(** Turn recording on or off.  Enabling records the trace epoch: event
    timestamps in the trace export are relative to the [set_enabled true]
    call.  Flip only from a quiescent main domain. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events, counters, span aggregates and gauges (the
    enabled flag is untouched).  Quiescent main domain only. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a named span: a trace event on the
    calling domain's track plus a (count, total duration) aggregate under
    [name].  Spans nest; exceptions close the span and re-raise.  When
    recording is disabled this is exactly [f ()]. *)

val incr : string -> unit
(** Add 1 to a named counter. *)

val add : string -> int -> unit
(** Add [n] to a named counter. *)

val set_gauge : string -> float -> unit
(** Set a named gauge (last write wins; main-domain configuration values
    like pool size, not merged counters). *)

(** {1 Mirrored counters}

    A small always-on counter registry for low-frequency machinery counters
    (the sub-file incremental pipeline: [lexer.ckpt.*], [parser.region.*],
    [summary.dag.*]).  {!Mirror.incr}/{!Mirror.add} feed both the regular
    Obs counter (visible in snapshots when recording is enabled) and a
    mutex-guarded process-global mirror that can be read from {e any}
    thread at any time — unlike {!snapshot}, which requires a quiescent
    main domain.  The serving daemon's [metrics] reply reads the mirror
    from its connection threads. *)
module Mirror : sig
  val incr : string -> unit
  val add : string -> int -> unit

  val get : string -> int
  (** Current mirrored value; 0 for a name never incremented. *)

  val all : unit -> (string * int) list
  (** Every mirrored counter, sorted by name. *)

  val reset : unit -> unit
  (** Drop the mirror (the regular Obs counters are untouched). *)
end

(** {1 Snapshots and exporters} *)

type span_agg = {
  sa_name : string;
  sa_count : int;  (** completed spans under this name, all domains *)
  sa_total_ns : int64;  (** summed duration *)
}

type event = {
  ev_domain : int;  (** domain id — one trace track per domain *)
  ev_seq : int;  (** per-domain completion order *)
  ev_name : string;
  ev_depth : int;  (** nesting depth at entry, 0 = top level *)
  ev_start_ns : int64;  (** relative to the trace epoch *)
  ev_dur_ns : int64;
}

type snapshot = {
  sn_counters : (string * int) list;  (** sorted by name *)
  sn_gauges : (string * float) list;  (** sorted by name *)
  sn_spans : span_agg list;  (** sorted by name *)
  sn_events : event list;  (** sorted by (domain, seq) *)
}

val snapshot : unit -> snapshot
(** Merge every domain's buffer deterministically.  Quiescent main domain
    only. *)

val pp_summary : Format.formatter -> snapshot -> unit
(** Human-readable summary table: gauges, counters, span aggregates. *)

val trace_json : snapshot -> string
(** Chrome trace-event JSON (the [{"traceEvents": [...]}] envelope): one
    complete ("ph":"X") event per span, one track ("tid") per domain, with
    thread-name metadata.  Load in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing]. *)

val metrics_json : snapshot -> string
(** Machine-readable metrics: [{"schema":"phpsafe-obs/1","gauges":{...},
    "counters":{...},"spans":{name:{"count":n,"total_s":s}}}] — the format
    committed as [BENCH_*.json] trajectory data. *)

val write_file : string -> string -> unit
(** [write_file path contents] — tiny helper shared by the drivers. *)
