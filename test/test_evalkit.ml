(** Evaluation-harness tests: metric formulas, finding↔seed matching,
    Venn region algebra, input-vector classification and inertia, all on
    small hand-built inputs. *)

open Secflow

let case name f = Alcotest.test_case name `Quick f

let metrics_cases =
  [
    case "precision/recall/f-score formulas" (fun () ->
        let m = Evalkit.Metrics.make ~tp:8 ~fp:2 ~fn:0 in
        Alcotest.(check (float 1e-9)) "precision" 0.8 (Evalkit.Metrics.precision m);
        Alcotest.(check (float 1e-9)) "recall" 1.0 (Evalkit.Metrics.recall m);
        Alcotest.(check (float 1e-6)) "f-score" (2. *. 0.8 /. 1.8)
          (Evalkit.Metrics.f_score m));
    case "degenerate cases are NaN" (fun () ->
        let m = Evalkit.Metrics.make ~tp:0 ~fp:0 ~fn:0 in
        Alcotest.(check bool) "precision nan" true
          (Float.is_nan (Evalkit.Metrics.precision m));
        Alcotest.(check bool) "recall nan" true
          (Float.is_nan (Evalkit.Metrics.recall m));
        Alcotest.(check string) "pct" "-" (Evalkit.Metrics.pct nan));
    case "paper Table I row reproduces: phpSAFE XSS 2012" (fun () ->
        (* TP 307, FP 63 -> 83% precision; TP 307, FN 55 -> 85% recall *)
        let m = Evalkit.Metrics.make ~tp:307 ~fp:63 ~fn:55 in
        Alcotest.(check string) "precision" "83%"
          (Evalkit.Metrics.pct (Evalkit.Metrics.precision m));
        Alcotest.(check string) "recall" "85%"
          (Evalkit.Metrics.pct (Evalkit.Metrics.recall m)));
    case "add and zero" (fun () ->
        let a = Evalkit.Metrics.make ~tp:1 ~fp:2 ~fn:3 in
        let s = Evalkit.Metrics.add a Evalkit.Metrics.zero in
        Alcotest.(check int) "tp" 1 s.Evalkit.Metrics.tp;
        Alcotest.(check int) "fn" 3 s.Evalkit.Metrics.fn);
  ]

(* -- hand-built seeds and findings ----------------------------------- *)

let seed ?(plugin = "p1") ?(kind = Vuln.Xss) ?(vector = Vuln.Get) ?(real = true)
    ~id ~file ~line () : Corpus.Gt.seed =
  {
    Corpus.Gt.seed_id = id;
    pattern = "test";
    label =
      (if real then Corpus.Gt.Real_vuln { kind; vector; oop_wordpress = false }
       else Corpus.Gt.Fp_trap { kind; why = "trap" });
    plugin;
    file;
    line;
  }

let finding ?(kind = Vuln.Xss) ~file ~line () : Report.finding =
  {
    Report.kind;
    sink_pos = { Phplang.Ast.file; line };
    sink = "echo";
    variable = "$x";
    source = Vuln.Superglobal "$_GET";
    source_pos = Phplang.Ast.dummy_pos;
    trace = [];
    context = None;
    sanitizers_applied = [];
    trace_truncated = false;
  }

let output tool (per_plugin : (string * Report.finding list) list) :
    Evalkit.Matching.tool_output =
  {
    Evalkit.Matching.to_tool = tool;
    to_results =
      List.map
        (fun (plugin, fs) ->
          (plugin, { Report.findings = fs; outcomes = []; errors = 0; unresolved_includes = 0 }))
        per_plugin;
  }

let matching_cases =
  [
    case "classify: tp, trap fp, stray fp" (fun () ->
        let seeds =
          [ seed ~id:"v1" ~file:"a.php" ~line:3 ();
            seed ~id:"t1" ~file:"a.php" ~line:9 ~real:false () ]
        in
        let out =
          output "T"
            [ ("p1",
               [ finding ~file:"a.php" ~line:3 ();
                 finding ~file:"a.php" ~line:9 ();
                 finding ~file:"a.php" ~line:99 () ]) ]
        in
        let c = Evalkit.Matching.classify ~seeds out in
        Alcotest.(check int) "tp" 1 (List.length c.Evalkit.Matching.cl_tp);
        Alcotest.(check int) "trap fp" 1 (List.length c.Evalkit.Matching.cl_trap_fp);
        Alcotest.(check int) "stray fp" 1 (List.length c.Evalkit.Matching.cl_stray_fp));
    case "kind must match for a hit" (fun () ->
        let seeds = [ seed ~id:"v1" ~kind:Vuln.Sqli ~file:"a.php" ~line:3 () ] in
        let out = output "T" [ ("p1", [ finding ~kind:Vuln.Xss ~file:"a.php" ~line:3 () ]) ] in
        let c = Evalkit.Matching.classify ~seeds out in
        Alcotest.(check int) "no tp" 0 (List.length c.Evalkit.Matching.cl_tp);
        Alcotest.(check int) "stray" 1 (List.length c.Evalkit.Matching.cl_stray_fp));
    case "same file/line in another plugin does not match" (fun () ->
        let seeds = [ seed ~plugin:"p1" ~id:"v1" ~file:"a.php" ~line:3 () ] in
        let out = output "T" [ ("p2", [ finding ~file:"a.php" ~line:3 () ]) ] in
        let c = Evalkit.Matching.classify ~seeds out in
        Alcotest.(check int) "no tp" 0 (List.length c.Evalkit.Matching.cl_tp));
    case "duplicate findings count once" (fun () ->
        let seeds = [ seed ~id:"v1" ~file:"a.php" ~line:3 () ] in
        let out =
          output "T"
            [ ("p1",
               [ finding ~file:"a.php" ~line:3 (); finding ~file:"a.php" ~line:3 () ]) ]
        in
        let c = Evalkit.Matching.classify ~seeds out in
        Alcotest.(check int) "tp once" 1 (List.length c.Evalkit.Matching.cl_tp));
    case "union-based FN (paper convention)" (fun () ->
        let s1 = seed ~id:"v1" ~file:"a.php" ~line:1 () in
        let s2 = seed ~id:"v2" ~file:"a.php" ~line:2 () in
        let seeds = [ s1; s2 ] in
        let c1 =
          Evalkit.Matching.classify ~seeds
            (output "A" [ ("p1", [ finding ~file:"a.php" ~line:1 () ]) ])
        in
        let c2 =
          Evalkit.Matching.classify ~seeds
            (output "B" [ ("p1", [ finding ~file:"a.php" ~line:2 () ]) ])
        in
        let union = Evalkit.Matching.detected_union [ c1; c2 ] in
        Alcotest.(check int) "union of 2" 2 (List.length union);
        let m = Evalkit.Matching.metrics_for ~union c1 in
        Alcotest.(check int) "tp" 1 m.Evalkit.Metrics.tp;
        Alcotest.(check int) "fn = union minus own tp" 1 m.Evalkit.Metrics.fn);
    case "metrics_for restricted by kind" (fun () ->
        let s1 = seed ~id:"v1" ~kind:Vuln.Xss ~file:"a.php" ~line:1 () in
        let s2 = seed ~id:"v2" ~kind:Vuln.Sqli ~file:"a.php" ~line:2 () in
        let c =
          Evalkit.Matching.classify ~seeds:[ s1; s2 ]
            (output "A"
               [ ("p1",
                  [ finding ~kind:Vuln.Xss ~file:"a.php" ~line:1 ();
                    finding ~kind:Vuln.Sqli ~file:"a.php" ~line:2 () ]) ])
        in
        let union = Evalkit.Matching.detected_union [ c ] in
        let mx = Evalkit.Matching.metrics_for ~kind:Vuln.Xss ~union c in
        Alcotest.(check int) "xss tp" 1 mx.Evalkit.Metrics.tp;
        let ms = Evalkit.Matching.metrics_for ~kind:Vuln.Sqli ~union c in
        Alcotest.(check int) "sqli tp" 1 ms.Evalkit.Metrics.tp);
  ]

let venn_cases =
  [
    case "regions partition the union" (fun () ->
        let mk_seed id line = seed ~id ~file:"a.php" ~line () in
        let all = List.init 6 (fun i -> mk_seed (Printf.sprintf "v%d" i) (i + 1)) in
        let classify tool lines =
          Evalkit.Matching.classify ~seeds:all
            (output tool
               [ ("p1", List.map (fun l -> finding ~file:"a.php" ~line:l ()) lines) ])
        in
        (* P: 1,2,3  R: 2,3,4  X: 3,5 ; seed 6 undetected *)
        let p = classify "P" [ 1; 2; 3 ]
        and r = classify "R" [ 2; 3; 4 ]
        and x = classify "X" [ 3; 5 ] in
        let v = Evalkit.Venn.compute ~all_real:all ~phpsafe:p ~rips:r ~pixy:x in
        Alcotest.(check int) "only P" 1 v.Evalkit.Venn.only_phpsafe;
        Alcotest.(check int) "only R" 1 v.Evalkit.Venn.only_rips;
        Alcotest.(check int) "only X" 1 v.Evalkit.Venn.only_pixy;
        Alcotest.(check int) "P∩R" 1 v.Evalkit.Venn.phpsafe_rips;
        Alcotest.(check int) "P∩X" 0 v.Evalkit.Venn.phpsafe_pixy;
        Alcotest.(check int) "R∩X" 0 v.Evalkit.Venn.rips_pixy;
        Alcotest.(check int) "all three" 1 v.Evalkit.Venn.all_three;
        Alcotest.(check int) "none" 1 v.Evalkit.Venn.none;
        Alcotest.(check int) "union" 5 v.Evalkit.Venn.union;
        let sum =
          v.Evalkit.Venn.only_phpsafe + v.Evalkit.Venn.only_rips
          + v.Evalkit.Venn.only_pixy + v.Evalkit.Venn.phpsafe_rips
          + v.Evalkit.Venn.phpsafe_pixy + v.Evalkit.Venn.rips_pixy
          + v.Evalkit.Venn.all_three
        in
        Alcotest.(check int) "regions sum to union" v.Evalkit.Venn.union sum);
  ]

let vector_inertia_cases =
  [
    case "vector classification of sources" (fun () ->
        Alcotest.(check string) "GET"
          "GET" (Vuln.vector_to_string (Vuln.vector_of_source (Vuln.Superglobal "$_GET")));
        Alcotest.(check string) "POST"
          "POST" (Vuln.vector_to_string (Vuln.vector_of_source (Vuln.Superglobal "$_POST")));
        Alcotest.(check string) "cookie is mixed" "POST/GET/COOKIE"
          (Vuln.vector_to_string (Vuln.vector_of_source (Vuln.Superglobal "$_COOKIE")));
        Alcotest.(check string) "db" "DB"
          (Vuln.vector_to_string (Vuln.vector_of_source (Vuln.Database "x")));
        Alcotest.(check string) "file" "File/Function/Array"
          (Vuln.vector_to_string (Vuln.vector_of_source (Vuln.File_read "fgets"))));
    case "direct vectors per the paper's easy-to-exploit class" (fun () ->
        Alcotest.(check bool) "GET" true (Vuln.vector_is_direct Vuln.Get);
        Alcotest.(check bool) "POST" true (Vuln.vector_is_direct Vuln.Post);
        Alcotest.(check bool) "mixed" true (Vuln.vector_is_direct Vuln.Post_get_cookie);
        Alcotest.(check bool) "DB" false (Vuln.vector_is_direct Vuln.Db);
        Alcotest.(check bool) "file" false
          (Vuln.vector_is_direct Vuln.File_function_array));
    case "table II rows and the both column" (fun () ->
        let u12 =
          [ seed ~id:"a" ~vector:Vuln.Get ~file:"f" ~line:1 ();
            seed ~id:"b" ~vector:Vuln.Db ~file:"f" ~line:2 () ]
        in
        let u14 =
          [ seed ~id:"a" ~vector:Vuln.Get ~file:"f" ~line:5 ();
            seed ~id:"c" ~vector:Vuln.Get ~file:"f" ~line:6 ();
            seed ~id:"d" ~vector:Vuln.Db ~file:"f" ~line:7 () ]
        in
        let rows = Evalkit.Vectors.compute ~union_2012:u12 ~union_2014:u14 in
        let get_row v =
          List.find (fun (r : Evalkit.Vectors.row) -> r.Evalkit.Vectors.vector = v) rows
        in
        let g = get_row Vuln.Get in
        Alcotest.(check int) "get 2012" 1 g.Evalkit.Vectors.v2012;
        Alcotest.(check int) "get 2014" 2 g.Evalkit.Vectors.v2014;
        Alcotest.(check int) "get both" 1 g.Evalkit.Vectors.both;
        let d = get_row Vuln.Db in
        Alcotest.(check int) "db both" 0 d.Evalkit.Vectors.both);
    case "inertia ratios" (fun () ->
        let u12 = [ seed ~id:"a" ~vector:Vuln.Get ~file:"f" ~line:1 () ] in
        let u14 =
          [ seed ~id:"a" ~vector:Vuln.Get ~file:"f" ~line:2 ();
            seed ~id:"b" ~vector:Vuln.Db ~file:"f" ~line:3 () ]
        in
        let t = Evalkit.Inertia.compute ~union_2012:u12 ~union_2014:u14 in
        Alcotest.(check int) "total" 2 t.Evalkit.Inertia.total_2014;
        Alcotest.(check int) "persisted" 1 t.Evalkit.Inertia.persisted;
        Alcotest.(check (float 1e-9)) "ratio" 0.5 t.Evalkit.Inertia.persisted_ratio;
        Alcotest.(check int) "easy" 1 t.Evalkit.Inertia.persisted_easy);
    case "sec/kLOC responsiveness" (fun () ->
        Alcotest.(check (float 1e-9)) "unit" 0.5
          (Evalkit.Robustness.sec_per_kloc ~seconds:1.0 ~loc:2000));
    case "per-plugin history join" (fun () ->
        let u12 =
          [ seed ~plugin:"alpha" ~id:"a" ~file:"f" ~line:1 ();
            seed ~plugin:"alpha" ~id:"b" ~file:"f" ~line:2 ();
            seed ~plugin:"beta" ~id:"c" ~file:"f" ~line:3 () ]
        in
        let u14 =
          [ seed ~plugin:"alpha" ~id:"a" ~file:"f" ~line:9 ();
            seed ~plugin:"alpha" ~id:"d" ~file:"f" ~line:10 () ]
        in
        let rows = Evalkit.History.compute ~union_2012:u12 ~union_2014:u14 in
        let alpha =
          List.find
            (fun (r : Evalkit.History.plugin_history) ->
              r.Evalkit.History.ph_plugin = "alpha")
            rows
        in
        Alcotest.(check int) "alpha 2012" 2 alpha.Evalkit.History.ph_2012;
        Alcotest.(check int) "alpha 2014" 2 alpha.Evalkit.History.ph_2014;
        Alcotest.(check int) "alpha fixed" 1 alpha.Evalkit.History.ph_fixed;
        Alcotest.(check int) "alpha persisted" 1 alpha.Evalkit.History.ph_persisted;
        Alcotest.(check int) "alpha introduced" 1 alpha.Evalkit.History.ph_introduced;
        let beta =
          List.find
            (fun (r : Evalkit.History.plugin_history) ->
              r.Evalkit.History.ph_plugin = "beta")
            rows
        in
        Alcotest.(check int) "beta fixed everything" 1 beta.Evalkit.History.ph_fixed;
        Alcotest.(check int) "beta 2014" 0 beta.Evalkit.History.ph_2014;
        let fixed, persisted, introduced = Evalkit.History.totals rows in
        Alcotest.(check (triple int int int)) "totals" (2, 1, 1)
          (fixed, persisted, introduced));
  ]

let harness_cases =
  [
    case "scaling harness measures every tool at every scale" (fun () ->
        (* one tiny scale keeps this fast; full scales run in the bench *)
        let points =
          Evalkit.Scaling.measure ~scales:[ 0.25 ] Corpus.Plan.V2012
        in
        match points with
        | [ p ] ->
            Alcotest.(check (float 1e-9)) "scale" 0.25 p.Evalkit.Scaling.sp_scale;
            Alcotest.(check int) "three tools" 3
              (List.length p.Evalkit.Scaling.sp_seconds);
            Alcotest.(check bool) "loc shrank" true
              (p.Evalkit.Scaling.sp_loc < 50_000);
            List.iter
              (fun (_, s) ->
                Alcotest.(check bool) "non-negative time" true (s >= 0.))
              p.Evalkit.Scaling.sp_seconds
        | _ -> Alcotest.fail "expected one point");
    case "ablation variants are distinct and complete" (fun () ->
        let names =
          List.map
            (fun (v : Evalkit.Ablation.variant) -> v.Evalkit.Ablation.ab_name)
            Evalkit.Ablation.variants
        in
        Alcotest.(check int) "six variants" 6 (List.length names);
        Alcotest.(check int) "unique names" 6
          (List.length (List.sort_uniq compare names)));
  ]

let () =
  Alcotest.run "evalkit"
    [ ("metrics", metrics_cases);
      ("matching", matching_cases);
      ("venn", venn_cases);
      ("vectors and inertia", vector_inertia_cases);
      ("study harnesses", harness_cases) ]
