(** Project model and LOC accounting tests: include-target extraction,
    transitive closure with cycles, and the line-counting rules. *)

open Phplang

let parse ~file src = Parser.parse_source ~file src

let file path source = { Project.path; source }

let case name f = Alcotest.test_case name `Quick f

let include_cases =
  [
    case "literal include targets in order" (fun () ->
        let prog =
          parse ~file:"a.php"
            "<?php include 'x.php'; require_once 'y.php'; if ($c) { include 'z.php'; }"
        in
        Alcotest.(check (list string)) "targets" [ "x.php"; "y.php"; "z.php" ]
          (Project.include_targets prog));
    case "dynamic includes are skipped" (fun () ->
        let prog = parse ~file:"a.php" "<?php include $path; include 'ok.php';" in
        Alcotest.(check (list string)) "targets" [ "ok.php" ]
          (Project.include_targets prog));
    case "includes found inside functions and classes" (fun () ->
        let prog =
          parse ~file:"a.php"
            "<?php function f() { include 'in-fn.php'; } class C { public function m() { include 'in-m.php'; } }"
        in
        Alcotest.(check (list string)) "targets" [ "in-fn.php"; "in-m.php" ]
          (Project.include_targets prog));
    case "closure depth and membership" (fun () ->
        let p =
          Project.make ~name:"p"
            [ file "a.php" "<?php include 'b.php';";
              file "b.php" "<?php include 'c.php';";
              file "c.php" "<?php $x = 1;" ]
        in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let cl = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check (list string)) "closure" [ "a.php"; "b.php"; "c.php" ]
          cl.Project.cl_paths;
        Alcotest.(check int) "depth" 2 cl.Project.cl_max_depth;
        Alcotest.(check int) "no unresolved" 0 cl.Project.cl_unresolved;
        Alcotest.(check bool) "not truncated" false cl.Project.cl_truncated);
    case "closure cuts cycles" (fun () ->
        let p =
          Project.make ~name:"p"
            [ file "a.php" "<?php include 'b.php';";
              file "b.php" "<?php include 'a.php';" ]
        in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let cl = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check (list string)) "closure" [ "a.php"; "b.php" ]
          cl.Project.cl_paths);
    case "missing include files are tolerated" (fun () ->
        let p = Project.make ~name:"p" [ file "a.php" "<?php include 'wp-load.php';" ] in
        let parse_file (f : Project.file) =
          Some (parse ~file:f.Project.path f.Project.source)
        in
        let cl = Project.include_closure ~parse:parse_file p "a.php" in
        Alcotest.(check int) "closure size" 2 (List.length cl.Project.cl_paths);
        Alcotest.(check int) "depth counts the attempt" 1 cl.Project.cl_max_depth;
        Alcotest.(check int) "unresolved counted" 1 cl.Project.cl_unresolved);
    case "find and file_count" (fun () ->
        let p = Project.make ~name:"p" [ file "a.php" "x"; file "b.php" "y" ] in
        Alcotest.(check int) "count" 2 (Project.file_count p);
        Alcotest.(check bool) "find hit" true (Project.find p "a.php" <> None);
        Alcotest.(check bool) "find miss" true (Project.find p "c.php" = None));
  ]

let loc_cases =
  [
    case "count skips blank lines" (fun () ->
        Alcotest.(check int) "loc" 3 (Loc.count "a\n\nb\n   \nc"));
    case "count of empty string" (fun () ->
        Alcotest.(check int) "loc" 0 (Loc.count ""));
    case "physical lines" (fun () ->
        Alcotest.(check int) "lines" 3 (Loc.physical_lines "a\nb\nc");
        Alcotest.(check int) "trailing newline" 3 (Loc.physical_lines "a\nb\nc\n");
        Alcotest.(check int) "empty" 0 (Loc.physical_lines ""));
    case "tabs and spaces are blank" (fun () ->
        Alcotest.(check int) "loc" 1 (Loc.count "\t \r\nreal"));
    case "project_loc sums files" (fun () ->
        let p =
          Project.make ~name:"p" [ file "a.php" "x\ny"; file "b.php" "z" ]
        in
        Alcotest.(check int) "total" 3 (Loc.project_loc p));
  ]

(* Regression for the memo deadlock: a [parse] thunk that raised used to
   leave the In_progress marker in the table forever, so every later caller
   for the same key blocked on the condition variable.  Now the marker is
   removed and waiters are woken; the next caller retries. *)
let cache_cases =
  [
    case "a raising parse doesn't poison the cache entry" (fun () ->
        let cache = Project.Parse_cache.create () in
        let key = ("crash.php", "digest") in
        (match
           Project.Parse_cache.memo cache key (fun () -> failwith "boom")
         with
        | _ -> Alcotest.fail "memo should re-raise"
        | exception Failure _ -> ());
        (* the key is free again: the next memo runs its thunk *)
        let ran = ref false in
        (match
           Project.Parse_cache.memo cache key (fun () ->
               ran := true;
               Error (Project.Syntax "after crash"))
         with
        | Error (Project.Syntax "after crash") -> ()
        | _ -> Alcotest.fail "expected the retried thunk's result");
        Alcotest.(check bool) "thunk ran" true !ran);
    case "waiters on a raising parse unblock" (fun () ->
        let cache = Project.Parse_cache.create () in
        let key = ("slow.php", "digest") in
        let others_may_finish = Semaphore.Binary.make false in
        (* domain 1 holds the In_progress marker, then raises *)
        let crasher =
          Domain.spawn (fun () ->
              match
                Project.Parse_cache.memo cache key (fun () ->
                    Semaphore.Binary.release others_may_finish;
                    Unix.sleepf 0.05;
                    raise Exit)
              with
              | _ -> false
              | exception Exit -> true)
        in
        (* domains 2..4 pile up on the same key while the marker is live;
           before the fix they blocked forever once the parse raised *)
        Semaphore.Binary.acquire others_may_finish;
        let waiters =
          List.init 3 (fun i ->
              Domain.spawn (fun () ->
                  Project.Parse_cache.memo cache key (fun () ->
                      Error (Project.Syntax ("waiter " ^ string_of_int i)))))
        in
        Alcotest.(check bool) "crasher saw its exception" true
          (Domain.join crasher);
        List.iter
          (fun d ->
            match Domain.join d with
            | Error (Project.Syntax _) -> ()
            | _ -> Alcotest.fail "waiter should see a retried Error")
          waiters);
  ]

let () =
  Alcotest.run "project"
    [
      ("includes", include_cases);
      ("loc", loc_cases);
      ("parse cache", cache_cases);
    ]
