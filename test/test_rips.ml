(** RIPS baseline behaviour tests: backward-directed resolution, procedural
    scope model, OOP blindness, per-file analysis and robustness. *)

open Secflow

let analyze src = Rips.analyze_source ~file:"t.php" ("<?php\n" ^ src)

let findings src =
  (analyze src).Report.findings
  |> List.map (fun (f : Report.finding) ->
         Printf.sprintf "%s@%d" (Vuln.kind_to_string f.Report.kind)
           (f.Report.sink_pos.Phplang.Ast.line - 1))
  |> List.sort compare

let expect name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) name (List.sort compare expected) (findings src))

let backward_cases =
  [
    expect "direct superglobal" "echo $_GET['x'];" [ "XSS@1" ];
    expect "latest definition wins (flow-sensitive backward scan)"
      "$a = $_GET['x'];\n$a = 'safe';\necho $a;" [];
    expect "definition before sink"
      "$a = 'safe';\n$a = $_GET['x'];\necho $a;" [ "XSS@3" ];
    expect "concat-assign joins older defs"
      "$a = $_GET['x'];\n$a .= 'tail';\necho $a;" [ "XSS@3" ];
    expect "foreach binding resolves to subject"
      "$xs = array($_POST['x']);\nforeach ($xs as $v) {\necho $v;\n}" [ "XSS@3" ];
    expect "unset stops the walk" "$a = $_GET['x'];\nunset($a);\necho $a;" [];
    expect "uninitialized variable is harmless (no register_globals)"
      "echo $page_title;" [];
    expect "mysql_fetch_assoc is a db source"
      "$r = mysql_query('q');\n$row = mysql_fetch_assoc($r);\necho $row['c'];"
      [ "XSS@3" ];
    expect "mysql_query is a SQLi sink"
      "$q = $_GET['id'];\nmysql_query(\"SELECT $q\");" [ "SQLi@2" ];
    expect "sanitizer respected" "echo htmlspecialchars($_GET['x']);" [];
    expect "intval respected for SQLi"
      "$id = intval($_GET['id']);\nmysql_query(\"SELECT $id\");" [];
    expect "revert model re-taints"
      "$a = htmlspecialchars($_GET['x']);\n$b = stripslashes($a);\necho $b;"
      [ "XSS@3" ];
    expect "ternary joins" "$a = $c ? $_GET['x'] : 'd';\necho $a;" [ "XSS@2" ];
    expect "interpolation resolved" "$x = $_GET['q'];\necho \"v=$x\";" [ "XSS@2" ];
    expect "print and exit sinks" "print $_GET['a'];\nexit($_GET['b']);"
      [ "XSS@1"; "XSS@2" ];
  ]

let interproc_cases =
  [
    expect "sink inside function resolved through call sites"
      "function f($m) {\necho $m;\n}\nf($_GET['x']);" [ "XSS@2" ];
    expect "function with only clean callers is silent"
      "function f($m) {\necho $m;\n}\nf('hi');" [];
    expect "any tainted caller fires the sink"
      "function f($m) {\necho $m;\n}\nf('hi');\nf($_GET['x']);" [ "XSS@2" ];
    expect "return value resolution with bound arguments"
      "function wrap($m) {\nreturn '<b>' . $m;\n}\necho wrap($_POST['x']);"
      [ "XSS@4" ];
    expect "return of source inside callee"
      "function f() {\nreturn fgets($fp);\n}\necho f();" [ "XSS@4" ];
    expect "uncalled function still scanned (unlike Pixy)"
      "function hook() {\necho $_COOKIE['t'];\n}" [ "XSS@2" ];
    expect "recursive function terminates"
      "function f($a) {\necho $a;\nreturn f($a);\n}\nf($_GET['x']);" [ "XSS@2" ];
    expect "global resolves at file top level"
      "$g = $_GET['x'];\nfunction f() {\nglobal $g;\necho $g;\n}\nf();" [ "XSS@4" ];
    expect "unknown function conservatively propagates (no WP profile)"
      "echo esc_html($_GET['x']);" [ "XSS@1" ];
    expect "unknown function with clean args is silent"
      "echo esc_html('static');" [];
  ]

let oop_cases =
  [
    expect "method calls are opaque (misses $wpdb source)"
      "$rows = $wpdb->get_results('SELECT 1');\nforeach ($rows as $r) {\necho $r->name;\n}"
      [];
    expect "code inside class bodies is skipped"
      "class W {\npublic function render() {\necho $_GET['x'];\n}\n}" [];
    expect "top-level code in an OOP file is still analyzed"
      "class W {\npublic function render() {\necho $_GET['x'];\n}\n}\necho $_GET['y'];"
      [ "XSS@6" ];
    expect "wpdb SQLi invisible"
      "$id = $_GET['id'];\n$wpdb->query(\"DELETE $id\");" [];
    expect "property reads are untainted"
      "$v = $obj->data;\necho $v;" [];
  ]

let robustness_cases =
  [
    Alcotest.test_case "parse failure does not abort the project" `Quick
      (fun () ->
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "bad.php"; source = "<?php $a = ;" };
              { Phplang.Project.path = "ok.php";
                source = "<?php echo $_GET['x'];" } ]
        in
        let r = Rips.analyze_project project in
        Alcotest.(check int) "finding from ok.php" 1
          (List.length r.Report.findings);
        Alcotest.(check int) "one error" 1 r.Report.errors);
    Alcotest.test_case "per-file analysis: no cross-file taint" `Quick
      (fun () ->
        (* phpSAFE resolves this include; RIPS does not *)
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "main.php";
                source = "<?php $t = $_GET['x']; include 'view.php';" };
              { Phplang.Project.path = "view.php"; source = "<?php echo $t;" } ]
        in
        let r = Rips.analyze_project project in
        Alcotest.(check int) "no findings" 0 (List.length r.Report.findings));
    Alcotest.test_case "duplicate sinks deduplicated across project" `Quick
      (fun () ->
        let r = analyze "function f($a) {\necho $a;\n}\nf($_GET['x']);\nf($_GET['y']);" in
        Alcotest.(check int) "one finding" 1 (List.length r.Report.findings));
    Alcotest.test_case "deep backward chains bounded" `Quick (fun () ->
        (* 100 chained assignments still resolve *)
        let buf = Buffer.create 1024 in
        Buffer.add_string buf "<?php\n$v0 = $_GET['x'];\n";
        for i = 1 to 100 do
          Buffer.add_string buf (Printf.sprintf "$v%d = $v%d;\n" i (i - 1))
        done;
        Buffer.add_string buf "echo $v100;\n";
        let r = Rips.analyze_source ~file:"t.php" (Buffer.contents buf) in
        (* depth limiting may stop the walk, but it must terminate quickly
           and never crash *)
        Alcotest.(check bool) "terminates" true
          (List.length r.Report.findings <= 1));
  ]

(* heredoc/nowdoc, <?= and ?? reaching the backward resolver end to end *)
let frontend_cases =
  [
    expect "heredoc interpolation reaches a SQL sink"
      "$id = $_GET['id'];\n$q = <<<SQL\nSELECT $id\nSQL;\nmysql_query($q);"
      [ "SQLi@5" ];
    expect "nowdoc body stays a literal"
      "$id = $_GET['id'];\n$q = <<<'SQL'\nSELECT $id\nSQL;\nmysql_query($q);"
      [];
    expect "short echo tag is an XSS sink" "?>\n<?= $_GET['x'] ?>" [ "XSS@2" ];
    expect "?? joins taint from both operands"
      "$a = $_GET['x'] ?? 'd';\necho $a;" [ "XSS@2" ];
    expect "?? of two literals is clean" "$a = 'x' ?? 'y';\necho $a;" [];
  ]

let () =
  Alcotest.run "rips"
    [ ("backward resolution", backward_cases);
      ("front-end gaps (heredoc, <?=, ??)", frontend_cases);
      ("inter-procedural", interproc_cases);
      ("OOP blindness", oop_cases);
      ("robustness", robustness_cases) ]
