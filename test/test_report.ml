(** Tests for the report outputs: the HTML review page (§III.D web output)
    and the text pretty-printers. *)

open Secflow

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let sample_result =
  Phpsafe.analyze_source ~file:"plugin.php"
    "<?php\n$x = $_GET['q<script>'];\necho $x;\n$id = $_POST['id'];\n$wpdb->query(\"DELETE $id\");"

let case name f = Alcotest.test_case name `Quick f

(* One project exercising all six vulnerability kinds; the second-order
   finding needs the two-phase pass (stored write in one file, read-back
   SQL sink in another). *)
let all_kinds_result =
  Phpsafe.analyze_project_so
    (Phplang.Project.make ~name:"kinds"
       [ { Phplang.Project.path = "store.php";
           source = "<?php update_option('ak_banner', $_POST['banner']);" };
         { Phplang.Project.path = "use.php";
           source =
             "<?php\n\
              echo $_GET['a'];\n\
              mysql_query(\"SELECT \" . $_POST['b']);\n\
              system('run ' . $_GET['c']);\n\
              readfile('/data/' . $_GET['d']);\n\
              wp_remote_get($_GET['e']);\n\
              $v = get_option('ak_banner');\n\
              $wpdb->query(\"UPDATE t SET b = '\" . $v . \"'\");" } ])

let html_cases =
  [
    case "renders a complete page" (fun () ->
        let html = Phpsafe.Report_html.render sample_result in
        Alcotest.(check bool) "doctype" true (contains html "<!DOCTYPE html>");
        Alcotest.(check bool) "closes body" true (contains html "</body></html>"));
    case "summary counts both kinds" (fun () ->
        let html = Phpsafe.Report_html.render sample_result in
        Alcotest.(check bool) "xss count" true (contains html "<b>1 XSS</b>");
        Alcotest.(check bool) "sqli count" true (contains html "<b>1 SQLi</b>"));
    case "summary and badges cover the new kinds" (fun () ->
        let html = Phpsafe.Report_html.render all_kinds_result in
        List.iter
          (fun k ->
            Alcotest.(check bool)
              ("count " ^ Vuln.kind_to_string k)
              true
              (contains html
                 (Printf.sprintf "<b>1 %s</b>" (Vuln.kind_to_string k)));
            Alcotest.(check bool)
              ("badge class " ^ Vuln.kind_spec_name k)
              true
              (contains html
                 (Printf.sprintf "class=\"finding %s\"" (Vuln.kind_spec_name k))))
          Vuln.all_kinds);
    case "shows sink location and data flow" (fun () ->
        let html = Phpsafe.Report_html.render sample_result in
        Alcotest.(check bool) "file:line" true (contains html "plugin.php:3");
        Alcotest.(check bool) "flow list" true (contains html "<ol class=\"flow\">");
        Alcotest.(check bool) "entry point" true (contains html "entry point"));
    case "escapes HTML in variable names" (fun () ->
        (* the tainted key contains <script>; it must not survive raw *)
        let html = Phpsafe.Report_html.render sample_result in
        Alcotest.(check bool) "no raw script tag" false (contains html "<script>"));
    case "escape_html covers the metacharacters" (fun () ->
        Alcotest.(check string) "escaped" "&lt;a href=&quot;x&amp;y&quot;&gt;&#39;"
          (Phpsafe.Report_html.escape_html "<a href=\"x&y\">'"));
    case "reports failed files" (fun () ->
        let result =
          { sample_result with
            Report.outcomes =
              [ ("plugin.php", Report.Analyzed);
                ("big.php", Report.Failed Report.Out_of_memory) ] }
        in
        let html = Phpsafe.Report_html.render result in
        Alcotest.(check bool) "section present" true
          (contains html "Files not analyzed");
        Alcotest.(check bool) "file listed" true (contains html "big.php"));
    case "clean result says so" (fun () ->
        let clean = Phpsafe.analyze_source ~file:"ok.php" "<?php echo 'hi';" in
        let html = Phpsafe.Report_html.render clean in
        Alcotest.(check bool) "no findings text" true
          (contains html "No vulnerabilities detected"));
    case "custom title is escaped and used" (fun () ->
        let html =
          Phpsafe.Report_html.render ~title:"scan <x>" sample_result
        in
        Alcotest.(check bool) "escaped title" true
          (contains html "<title>scan &lt;x&gt;</title>"));
    case "truncated traces are marked, complete ones are not" (fun () ->
        let truncated =
          { sample_result with
            Report.findings =
              List.map
                (fun f -> { f with Report.trace_truncated = true })
                sample_result.Report.findings }
        in
        let html = Phpsafe.Report_html.render truncated in
        Alcotest.(check bool) "note present" true
          (contains html "later steps dropped");
        let html' = Phpsafe.Report_html.render sample_result in
        Alcotest.(check bool) "absent when complete" false
          (contains html' "later steps dropped"));
    case "context and applied sanitizers render when present" (fun () ->
        let opts =
          { Phpsafe.default_options with Phpsafe.infer_contexts = true }
        in
        let r =
          Phpsafe.analyze_source ~opts ~file:"ctx.php"
            "<?php\n$v = htmlspecialchars($_GET['x']);\necho \"<input value=\" . $v . \">\";"
        in
        let html = Phpsafe.Report_html.render r in
        Alcotest.(check bool) "context shown" true
          (contains html "sink context");
        Alcotest.(check bool) "context value" true
          (contains html "html-attr-unquoted");
        Alcotest.(check bool) "sanitizer set shown" true
          (contains html "htmlspecialchars"));
  ]

let text_cases =
  [
    case "pp_finding mentions kind, sink and source" (fun () ->
        match sample_result.Report.findings with
        | f :: _ ->
            let text = Format.asprintf "%a" Report.pp_finding f in
            Alcotest.(check bool) "kind" true (contains text "XSS");
            Alcotest.(check bool) "sink" true (contains text "echo");
            Alcotest.(check bool) "source" true (contains text "$_GET")
        | [] -> Alcotest.fail "expected findings");
    case "pp_trace prints one line per hop" (fun () ->
        match sample_result.Report.findings with
        | f :: _ ->
            let text = Format.asprintf "%a" Report.pp_trace f in
            let lines =
              String.split_on_char '\n' text
              |> List.filter (fun l -> String.trim l <> "")
            in
            Alcotest.(check bool) "multiple hops" true (List.length lines >= 2)
        | [] -> Alcotest.fail "expected findings");
  ]

let json_cases =
  [
    case "json has schema, summary and findings" (fun () ->
        let j = Phpsafe.Report_json.render sample_result in
        Alcotest.(check bool) "schema" true
          (contains j "\"schema\":\"phpsafe-report/1\"");
        Alcotest.(check bool) "xss count" true (contains j "\"xss\":1");
        Alcotest.(check bool) "sqli count" true (contains j "\"sqli\":1");
        Alcotest.(check bool) "finding kind" true (contains j "\"kind\":\"XSS\"");
        Alcotest.(check bool) "data flow" true (contains j "\"dataFlow\":["));
    case "json records per-file outcomes" (fun () ->
        let j = Phpsafe.Report_json.render sample_result in
        Alcotest.(check bool) "file entry" true
          (contains j "\"file\":\"plugin.php\"");
        Alcotest.(check bool) "status" true (contains j "\"status\":\"analyzed\""));
    case "tool name is configurable" (fun () ->
        let j = Phpsafe.Report_json.render ~tool:"RIPS" sample_result in
        Alcotest.(check bool) "tool" true (contains j "\"tool\":\"RIPS\""));
    case "string escaping" (fun () ->
        let open Secflow.Json in
        Alcotest.(check string) "quotes and control chars"
          "\"a\\\"b\\\\c\\n\\u0001\""
          (to_string (String "a\"b\\c\n\001")));
    case "nested structure round-trips through the writer" (fun () ->
        let open Secflow.Json in
        let j =
          Obj
            [ ("a", List [ Int 1; Bool false; String "x" ]);
              ("b", Obj [ ("c", Int 2) ]) ]
        in
        Alcotest.(check string) "layout"
          "{\"a\":[1,false,\"x\"],\"b\":{\"c\":2}}" (to_string j));
    case "render delegates to the shared Secflow.Report encoder" (fun () ->
        Alcotest.(check string) "same bytes"
          (Secflow.Report.to_json ~tool:"RIPS" sample_result)
          (Phpsafe.Report_json.render ~tool:"RIPS" sample_result));
    case "vector classification included per finding" (fun () ->
        let j = Phpsafe.Report_json.render sample_result in
        Alcotest.(check bool) "GET vector" true (contains j "\"vector\":\"GET\""));
    case "all six kinds appear in findings and summary counts" (fun () ->
        let j = Secflow.Report.to_json ~tool:"phpSAFE" all_kinds_result in
        List.iter
          (fun k ->
            Alcotest.(check bool)
              ("finding kind " ^ Vuln.kind_to_string k)
              true
              (contains j
                 (Printf.sprintf "\"kind\":%s"
                    (Secflow.Json.to_string
                       (Secflow.Json.String (Vuln.kind_to_string k)))));
            Alcotest.(check bool)
              ("summary count " ^ Vuln.kind_spec_name k)
              true
              (contains j (Printf.sprintf "\"%s\":1" (Vuln.kind_spec_name k))))
          Vuln.all_kinds);
  ]

let stats_cases =
  let project =
    Phplang.Project.make ~name:"p"
      [ { Phplang.Project.path = "a.php";
          source =
            "<?php\n\
             function one($x) { echo $x; }\n\
             function two() { return 1; }\n\
             class C { public function m() {} public function n() {} }\n\
             $a = $_GET['q'];\n\
             echo $a;\n\
             print 'x';\n\
             include 'b.php';\n" };
        { Phplang.Project.path = "b.php"; source = "<?php $b = $_POST['y'];\n" } ]
  in
  [
    case "counts the §III.D resources" (fun () ->
        let st = Phpsafe.Stats.of_project project in
        Alcotest.(check int) "files" 2 st.Phpsafe.Stats.st_files;
        Alcotest.(check int) "functions" 2 st.Phpsafe.Stats.st_functions;
        Alcotest.(check int) "classes" 1 st.Phpsafe.Stats.st_classes;
        Alcotest.(check int) "methods" 2 st.Phpsafe.Stats.st_methods;
        Alcotest.(check int) "superglobal reads" 2
          st.Phpsafe.Stats.st_superglobal_reads;
        (* echo $x, echo $a, print 'x' *)
        Alcotest.(check int) "echo sinks" 3 st.Phpsafe.Stats.st_echo_sinks;
        Alcotest.(check int) "includes" 1 st.Phpsafe.Stats.st_includes;
        Alcotest.(check bool) "variables counted" true
          (st.Phpsafe.Stats.st_variables >= 4);
        Alcotest.(check bool) "tokens counted" true
          (st.Phpsafe.Stats.st_tokens > 30));
    case "parse failures degrade gracefully" (fun () ->
        let broken =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "bad.php"; source = "<?php $a = ;" } ]
        in
        let st = Phpsafe.Stats.of_project broken in
        Alcotest.(check int) "files still counted" 1 st.Phpsafe.Stats.st_files;
        Alcotest.(check int) "no functions" 0 st.Phpsafe.Stats.st_functions);
    case "pp renders every field" (fun () ->
        let text = Format.asprintf "%a" Phpsafe.Stats.pp Phpsafe.Stats.empty in
        Alcotest.(check bool) "mentions tokens" true (contains text "tokens=0");
        Alcotest.(check bool) "mentions echo sinks" true
          (contains text "echo-sinks=0"));
  ]

let () =
  Alcotest.run "report"
    [ ("html", html_cases); ("text", text_cases); ("json", json_cases);
      ("stats (§III.D)", stats_cases) ]
