(** Observability subsystem tests: span nesting and ordering, counter-merge
    determinism across pool sizes, well-formedness of the two JSON
    exporters, and the golden guarantee that the evaluation tables are
    byte-identical with observability on or off (modulo the measured
    timings in Table III, which vary run to run). *)

module Cache = Phplang.Project.Parse_cache

let case = Alcotest.test_case

(* Every test drives the global recorder; reset around each one. *)
let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser, for validating exporter output without a JSON
   dependency.  Accepts exactly the RFC 8259 grammar we emit.          *)
(* ------------------------------------------------------------------ *)

exception Bad_json of string

let parse_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape");
          loop ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let digits () =
      let start = !pos in
      let rec loop () =
        match peek () with
        | Some '0' .. '9' ->
            advance ();
            loop ()
        | _ -> ()
      in
      loop ();
      if !pos = start then fail "expected digits"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let literal lit =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail ("expected " ^ lit))
      lit
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ()
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a JSON value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let check_json what s =
  match parse_json s with
  | () -> ()
  | exception Bad_json msg ->
      Alcotest.failf "%s is not well-formed JSON: %s\n%s" what msg s

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let span_cases =
  [
    case "disabled spans are transparent" `Quick (fun () ->
        Obs.set_enabled false;
        Alcotest.(check int) "value" 7 (Obs.span "x" (fun () -> 7));
        Obs.incr "c";
        let s = Obs.snapshot () in
        Alcotest.(check int) "no events" 0 (List.length s.Obs.sn_events);
        Alcotest.(check int) "no counters" 0 (List.length s.Obs.sn_counters));
    case "span nesting, ordering and timing" `Quick (fun () ->
        with_obs (fun () ->
            let r =
              Obs.span "outer" (fun () ->
                  (* lets, not [+]: OCaml evaluates operands right-to-left *)
                  let a = Obs.span "inner1" (fun () -> 3) in
                  let b = Obs.span "inner2" (fun () -> 4) in
                  a + b)
            in
            Alcotest.(check int) "result" 7 r;
            let s = Obs.snapshot () in
            (* completion order: inner1, inner2, outer *)
            Alcotest.(check (list string))
              "completion order"
              [ "inner1"; "inner2"; "outer" ]
              (List.map (fun e -> e.Obs.ev_name) s.Obs.sn_events);
            Alcotest.(check (list int))
              "depths" [ 1; 1; 0 ]
              (List.map (fun e -> e.Obs.ev_depth) s.Obs.sn_events);
            let by_name name =
              List.find (fun e -> e.Obs.ev_name = name) s.Obs.sn_events
            in
            let outer = by_name "outer"
            and inner1 = by_name "inner1"
            and inner2 = by_name "inner2" in
            let ends e = Int64.add e.Obs.ev_start_ns e.Obs.ev_dur_ns in
            Alcotest.(check bool) "inner1 starts within outer" true
              (inner1.Obs.ev_start_ns >= outer.Obs.ev_start_ns);
            Alcotest.(check bool) "inner2 ends within outer" true
              (ends inner2 <= ends outer);
            Alcotest.(check bool) "inner1 before inner2" true
              (ends inner1 <= inner2.Obs.ev_start_ns);
            Alcotest.(check bool) "aggregate total covers both inners" true
              (let agg =
                 List.find (fun a -> a.Obs.sa_name = "outer") s.Obs.sn_spans
               in
               agg.Obs.sa_count = 1
               && agg.Obs.sa_total_ns >= Int64.add inner1.Obs.ev_dur_ns
                    inner2.Obs.ev_dur_ns)));
    case "a raising span still closes" `Quick (fun () ->
        with_obs (fun () ->
            Alcotest.check_raises "re-raised" Exit (fun () ->
                Obs.span "boom" (fun () -> raise Exit));
            (* depth back at 0: the next span records at top level *)
            ignore (Obs.span "after" (fun () -> ()));
            let s = Obs.snapshot () in
            Alcotest.(check (list string))
              "both recorded" [ "boom"; "after" ]
              (List.map (fun e -> e.Obs.ev_name) s.Obs.sn_events);
            Alcotest.(check (list int))
              "both top-level" [ 0; 0 ]
              (List.map (fun e -> e.Obs.ev_depth) s.Obs.sn_events)));
    case "counters and gauges merge into the snapshot" `Quick (fun () ->
        with_obs (fun () ->
            Obs.incr "a";
            Obs.add "a" 2;
            Obs.incr "b";
            Obs.set_gauge "g" 4.5;
            let s = Obs.snapshot () in
            Alcotest.(check (list (pair string int)))
              "counters sorted"
              [ ("a", 3); ("b", 1) ]
              s.Obs.sn_counters;
            Alcotest.(check (list (pair string (float 1e-9))))
              "gauges" [ ("g", 4.5) ] s.Obs.sn_gauges));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism across pool sizes                                      *)
(* ------------------------------------------------------------------ *)

(* Spans and counters recorded under Sched.map depend on the pool size
   (worker count, chunks claimed) — everything else must merge
   identically. *)
let is_sched name =
  String.length name >= 6 && String.sub name 0 6 = "sched."

let non_sched_spans (s : Obs.snapshot) =
  List.filter_map
    (fun a ->
      if is_sched a.Obs.sa_name then None
      else Some (a.Obs.sa_name, a.Obs.sa_count))
    s.Obs.sn_spans

let non_sched_counters (s : Obs.snapshot) =
  List.filter (fun (name, _) -> not (is_sched name)) s.Obs.sn_counters

let measured_evaluation ?pool version =
  Cache.clear Cache.shared;
  Obs.reset ();
  ignore (Evalkit.Runner.evaluate ?pool version);
  Obs.snapshot ()

let determinism_cases =
  [
    case "parallel run merges to the sequential counters" `Quick (fun () ->
        with_obs (fun () ->
            let seq = measured_evaluation Corpus.Plan.V2012 in
            let par =
              measured_evaluation ~pool:(Sched.create ~size:4 ())
                Corpus.Plan.V2012
            in
            Alcotest.(check (list (pair string int)))
              "counters identical at any pool size outside sched.*"
              (non_sched_counters seq) (non_sched_counters par);
            Alcotest.(check (list (pair string int)))
              "span counts identical outside sched.*" (non_sched_spans seq)
              (non_sched_spans par);
            Alcotest.(check bool) "per-domain tracks exist in the parallel run"
              true
              (let module IS = Set.Make (Int) in
               IS.cardinal
                 (List.fold_left
                    (fun acc e -> IS.add e.Obs.ev_domain acc)
                    IS.empty par.Obs.sn_events)
               >= 2)));
  ]

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let exporter_cases =
  [
    case "trace and metrics JSON are well-formed" `Quick (fun () ->
        with_obs (fun () ->
            ignore
              (Phpsafe.analyze_source ~file:"t.php"
                 "<?php function f($x) { echo $x; } f($_GET['q']); echo $_GET['p'];");
            Obs.set_gauge "sched.pool_size" 1.;
            let s = Obs.snapshot () in
            Alcotest.(check bool) "snapshot has events" true
              (s.Obs.sn_events <> []);
            check_json "trace_json" (Obs.trace_json s);
            check_json "metrics_json" (Obs.metrics_json s)));
    case "exporters escape hostile span names" `Quick (fun () ->
        with_obs (fun () ->
            ignore (Obs.span "quote\"back\\slash\ncontrol\x01" (fun () -> ()));
            Obs.incr "counter\twith\ttabs";
            let s = Obs.snapshot () in
            check_json "trace_json" (Obs.trace_json s);
            check_json "metrics_json" (Obs.metrics_json s)));
    case "empty snapshot still exports valid JSON" `Quick (fun () ->
        with_obs (fun () ->
            let s = Obs.snapshot () in
            check_json "trace_json" (Obs.trace_json s);
            check_json "metrics_json" (Obs.metrics_json s)));
  ]

(* ------------------------------------------------------------------ *)
(* Golden: tables unchanged by observability                          *)
(* ------------------------------------------------------------------ *)

(* Table III contains measured wall seconds, which legitimately vary from
   run to run; digits on its lines are masked before comparison.  Every
   other table must match byte for byte. *)
let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let scrub_timing_section report =
  let lines = String.split_on_char '\n' report in
  let in_table3 = ref false in
  List.map
    (fun line ->
      let is_header =
        String.length line >= 2 && String.sub line 0 2 = "=="
      in
      if is_header then begin
        in_table3 := contains ~needle:"TABLE III" line;
        line
      end
      else if !in_table3 then
        String.map (fun c -> if c >= '0' && c <= '9' then '#' else c) line
      else line)
    lines
  |> String.concat "\n"

let render_report ev2012 ev2014 =
  Format.asprintf "%t" (fun ppf ->
      Evalkit.Tables.full_report ~with_ablation:false ppf ~ev2012 ~ev2014)

let golden_cases =
  [
    case "tables byte-identical with observability on and off" `Quick
      (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        let pool = Sched.create ~size:2 () in
        let plain =
          let ev12 = Evalkit.Runner.evaluate ~pool Corpus.Plan.V2012 in
          let ev14 = Evalkit.Runner.evaluate ~pool Corpus.Plan.V2014 in
          render_report ev12 ev14
        in
        let traced =
          with_obs (fun () ->
              let ev12 = Evalkit.Runner.evaluate ~pool Corpus.Plan.V2012 in
              let ev14 = Evalkit.Runner.evaluate ~pool Corpus.Plan.V2014 in
              let report = render_report ev12 ev14 in
              (* the exporters must not disturb the report either *)
              let s = Obs.snapshot () in
              ignore (Obs.trace_json s);
              ignore (Obs.metrics_json s);
              report)
        in
        Alcotest.(check string)
          "full report identical (Table III timings masked)"
          (scrub_timing_section plain) (scrub_timing_section traced));
  ]

let () =
  Alcotest.run "obs"
    [
      ("spans", span_cases);
      ("determinism", determinism_cases);
      ("exporters", exporter_cases);
      ("golden tables", golden_cases);
    ]
