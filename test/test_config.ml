(** Configuration stage tests (§III.A): lookups in the generic PHP profile,
    the WordPress extension and profile merging. *)

open Secflow
module C = Phpsafe.Config

let generic = C.generic_php
let wp = Phpsafe.Wordpress.default_config

let case name f = Alcotest.test_case name `Quick f

let generic_cases =
  [
    case "superglobals source every first-order kind" (fun () ->
        match C.is_superglobal_source generic "$_GET" with
        | Some kinds ->
            (* every kind except second-order SQLi, whose only source is a
               replayed database read *)
            Alcotest.(check int) "first-order kinds" 5 (List.length kinds);
            Alcotest.(check bool) "not so-sqli" false
              (List.exists (Vuln.equal_kind Vuln.Second_order_sqli) kinds)
        | None -> Alcotest.fail "$_GET missing");
    case "$_SERVER is a source" (fun () ->
        Alcotest.(check bool) "present" true
          (C.is_superglobal_source generic "$_SERVER" <> None));
    case "$wpdb is not a superglobal" (fun () ->
        Alcotest.(check bool) "absent" true
          (C.is_superglobal_source generic "$wpdb" = None));
    case "file functions are sources" (fun () ->
        Alcotest.(check bool) "fgets" true
          (C.find_function_source generic "fgets" <> None);
        Alcotest.(check bool) "file_get_contents" true
          (C.find_function_source generic "file_get_contents" <> None));
    case "htmlspecialchars sanitizes XSS only" (fun () ->
        match C.find_sanitizer generic "htmlspecialchars" with
        | Some s ->
            Alcotest.(check bool) "xss" true (List.mem Vuln.Xss s.C.san_kinds);
            Alcotest.(check bool) "not sqli" false
              (List.mem Vuln.Sqli s.C.san_kinds)
        | None -> Alcotest.fail "missing sanitizer");
    case "intval sanitizes every kind" (fun () ->
        match C.find_sanitizer generic "intval" with
        | Some s ->
            Alcotest.(check int) "kinds" (List.length Vuln.all_kinds)
              (List.length s.C.san_kinds)
        | None -> Alcotest.fail "missing");
    case "stripslashes is a revert" (fun () ->
        Alcotest.(check bool) "revert" true (C.is_revert generic "stripslashes"));
    case "echo is an XSS sink" (fun () ->
        match C.find_sinks generic "echo" with
        | [ s ] -> Alcotest.(check bool) "xss" true (s.C.snk_kind = Vuln.Xss)
        | _ -> Alcotest.fail "echo sink missing");
    case "mysql_query is both sink and source" (fun () ->
        Alcotest.(check bool) "sink" true (C.find_sinks generic "mysql_query" <> []);
        Alcotest.(check bool) "source" true
          (C.find_function_source generic "mysql_query" <> None));
    case "trim is passthrough, sprintf joins args" (fun () ->
        Alcotest.(check bool) "trim" true (C.is_passthrough generic "trim");
        Alcotest.(check bool) "sprintf" true (C.is_concat_all generic "sprintf"));
  ]

let wordpress_cases =
  [
    case "esc_html known only to the WP profile" (fun () ->
        Alcotest.(check bool) "generic lacks it" true
          (C.find_sanitizer generic "esc_html" = None);
        Alcotest.(check bool) "wp has it" true
          (C.find_sanitizer wp "esc_html" <> None));
    case "get_results is a method source in WP profile" (fun () ->
        Alcotest.(check bool) "method source" true
          (C.find_method_source wp "get_results" <> None);
        Alcotest.(check bool) "not a plain function source" true
          (C.find_function_source wp "get_results" = None));
    case "query method is a SQLi sink" (fun () ->
        match C.find_method_sinks wp "query" with
        | [ s ] -> Alcotest.(check bool) "sqli" true (s.C.snk_kind = Vuln.Sqli)
        | _ -> Alcotest.fail "method sink missing");
    case "prepare is a method sanitizer for SQLi" (fun () ->
        match C.find_method_sanitizer wp "prepare" with
        | Some s ->
            Alcotest.(check bool) "sqli" true (List.mem Vuln.Sqli s.C.san_kinds)
        | None -> Alcotest.fail "missing");
    case "extend merges every section" (fun () ->
        let merged = C.extend generic Phpsafe.Wordpress.profile in
        Alcotest.(check bool) "generic sink kept" true
          (C.find_sinks merged "echo" <> []);
        Alcotest.(check bool) "wp sanitizer added" true
          (C.find_sanitizer merged "esc_attr" <> None);
        Alcotest.(check bool) "name composed" true
          (String.length merged.C.name
           > String.length generic.C.name));
    case "default config is generic + wordpress" (fun () ->
        Alcotest.(check bool) "has generic" true
          (C.find_sanitizer wp "htmlspecialchars" <> None);
        Alcotest.(check bool) "has wp" true (C.find_sanitizer wp "absint" <> None));
  ]

(* -- textual configuration format (§III.A config files) -------------- *)

let sample_spec =
  {spec|# test profile
profile my-cms
source superglobal $_GET xss,sqli
source function fetch_feed fn xss
source method load_rows db xss
sanitizer function clean_html xss
sanitizer method bind sqli
revert undo_escape
sink function render_raw xss
sink method run_sql sqli
passthrough decorate
concat combine
|spec}

let spec_cases =
  [
    case "spec parses every directive" (fun () ->
        let c = Phpsafe.Config_spec.of_string sample_spec in
        Alcotest.(check string) "name" "my-cms" c.C.name;
        Alcotest.(check bool) "superglobal" true
          (C.is_superglobal_source c "$_GET" <> None);
        Alcotest.(check bool) "fn source" true
          (C.find_function_source c "fetch_feed" <> None);
        Alcotest.(check bool) "method source" true
          (C.find_method_source c "load_rows" <> None);
        Alcotest.(check bool) "sanitizer" true (C.find_sanitizer c "clean_html" <> None);
        Alcotest.(check bool) "method sanitizer" true
          (C.find_method_sanitizer c "bind" <> None);
        Alcotest.(check bool) "revert" true (C.is_revert c "undo_escape");
        Alcotest.(check bool) "sink" true (C.find_sinks c "render_raw" <> []);
        Alcotest.(check bool) "method sink" true (C.find_method_sinks c "run_sql" <> []);
        Alcotest.(check bool) "passthrough" true (C.is_passthrough c "decorate");
        Alcotest.(check bool) "concat" true (C.is_concat_all c "combine"));
    case "spec round-trips through to_string" (fun () ->
        let c = Phpsafe.Config_spec.of_string sample_spec in
        let again = Phpsafe.Config_spec.of_string (Phpsafe.Config_spec.to_string c) in
        Alcotest.(check string) "name" c.C.name again.C.name;
        Alcotest.(check int) "sources" (List.length c.C.function_sources)
          (List.length again.C.function_sources);
        Alcotest.(check int) "sinks" (List.length c.C.sinks)
          (List.length again.C.sinks);
        Alcotest.(check bool) "same lookups" true
          (C.is_revert again "undo_escape" && C.is_passthrough again "decorate"));
    case "builtin profiles survive the spec round trip" (fun () ->
        List.iter
          (fun profile ->
            let again =
              Phpsafe.Config_spec.of_string (Phpsafe.Config_spec.to_string profile)
            in
            Alcotest.(check int) (profile.C.name ^ " sanitizers")
              (List.length profile.C.sanitizers)
              (List.length again.C.sanitizers);
            Alcotest.(check int) (profile.C.name ^ " sinks")
              (List.length profile.C.sinks)
              (List.length again.C.sinks);
            Alcotest.(check int) (profile.C.name ^ " sources")
              (List.length profile.C.function_sources)
              (List.length again.C.function_sources))
          [ C.generic_php; Phpsafe.Wordpress.default_config;
            Phpsafe.Joomla.default_config; Phpsafe.Drupal.default_config ]);
    case "a spec-loaded profile drives the analyzer" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "source superglobal $_GET xss\nsink function show xss\n"
        in
        let opts = { Phpsafe.default_options with Phpsafe.config = c } in
        let r =
          Phpsafe.analyze_source ~opts ~file:"t.php" "<?php show($_GET['x']);"
        in
        Alcotest.(check int) "custom sink fires" 1
          (List.length r.Secflow.Report.findings));
    case "errors carry the line number" (fun () ->
        (try
           ignore (Phpsafe.Config_spec.of_string "profile x\nbogus directive\n");
           Alcotest.fail "expected Spec_error"
         with Phpsafe.Config_spec.Spec_error (_, line) ->
           Alcotest.(check int) "line" 2 line);
        try
          ignore (Phpsafe.Config_spec.of_string "source superglobal $_GET magic\n");
          Alcotest.fail "expected Spec_error"
        with Phpsafe.Config_spec.Spec_error (msg, _) ->
          Alcotest.(check bool) "mentions the kind" true
            (String.length msg > 0));
    case "comments and blank lines are ignored" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "# header\n\n  \nrevert undo # trailing comment\n"
        in
        Alcotest.(check bool) "revert parsed" true (C.is_revert c "undo"));
    case "new-class directives parse and round-trip" (fun () ->
        let spec =
          "sink function curl_setopt ssrf when=1:CURLOPT_URL\n\
           sink function file_get_contents ssrf shape=url\n\
           sink function file_get_contents lfi shape=nonurl\n\
           sink function system cmdi\n\
           sink method query so-sqli\n\
           dbwrite function update_option key=0 vals=1\n\
           dbwrite method insert key=0\n\
           dbread method get_results\n\
           dbread function get_option key=0\n"
        in
        let c = Phpsafe.Config_spec.of_string spec in
        (match C.find_sinks c "curl_setopt" with
        | [ s ] ->
            Alcotest.(check bool) "ssrf kind" true (s.C.snk_kind = Vuln.Ssrf);
            Alcotest.(check bool) "when= kept" true
              (s.C.snk_when_const = Some (1, "CURLOPT_URL"))
        | _ -> Alcotest.fail "curl_setopt sink missing");
        let fgc = C.find_sinks c "file_get_contents" in
        Alcotest.(check int) "two shape-split sinks" 2 (List.length fgc);
        Alcotest.(check bool) "ssrf reads the url shape" true
          (List.exists
             (fun s ->
               s.C.snk_kind = Vuln.Ssrf && s.C.snk_path_shape = `Url_prefix)
             fgc);
        Alcotest.(check bool) "lfi reads the non-url shape" true
          (List.exists
             (fun s ->
               s.C.snk_kind = Vuln.Path_traversal
               && s.C.snk_path_shape = `Non_url)
             fgc);
        (match C.find_sinks c "system" with
        | [ s ] ->
            Alcotest.(check bool) "cmdi kind" true (s.C.snk_kind = Vuln.Cmdi);
            Alcotest.(check bool) "no shape" true (s.C.snk_path_shape = `Any)
        | _ -> Alcotest.fail "system sink missing");
        (match C.find_method_sinks c "query" with
        | [ s ] ->
            Alcotest.(check bool) "so-sqli kind" true
              (s.C.snk_kind = Vuln.Second_order_sqli)
        | _ -> Alcotest.fail "query method sink missing");
        (match C.find_db_write c ~is_method:false "update_option" with
        | Some e ->
            Alcotest.(check int) "write key" 0 e.C.rw_key_arg;
            Alcotest.(check bool) "write vals" true (e.C.rw_val_args = Some [ 1 ])
        | None -> Alcotest.fail "update_option dbwrite missing");
        (match C.find_db_write c ~is_method:true "insert" with
        | Some e ->
            Alcotest.(check int) "method write key" 0 e.C.rw_key_arg;
            Alcotest.(check bool) "default vals" true (e.C.rw_val_args = None)
        | None -> Alcotest.fail "insert dbwrite missing");
        (match C.find_db_read c ~is_method:true "get_results" with
        | Some e ->
            Alcotest.(check bool) "wildcard key" true (e.C.rw_key_arg < 0)
        | None -> Alcotest.fail "get_results dbread missing");
        (match C.find_db_read c ~is_method:false "get_option" with
        | Some e -> Alcotest.(check int) "read key" 0 e.C.rw_key_arg
        | None -> Alcotest.fail "get_option dbread missing");
        (* to_string is a fixpoint over the new directives too *)
        let printed = Phpsafe.Config_spec.to_string c in
        Alcotest.(check string) "fixpoint" printed
          (Phpsafe.Config_spec.to_string (Phpsafe.Config_spec.of_string printed)));
    case "unknown kinds warn in the lenient parser, raise in the strict one"
      (fun () ->
        let spec = "sanitizer function scrub xss,xxe\nrevert undo\n" in
        let c, warnings = Phpsafe.Config_spec.of_string_with_warnings spec in
        (match warnings with
        | [ w ] ->
            Alcotest.(check bool) "names the line" true
              (String.length w >= 6 && String.sub w 0 6 = "line 1");
            Alcotest.(check bool) "names the kind" true
              (String.length w > 0
              && List.exists
                   (fun i -> i + 5 <= String.length w && String.sub w i 5 = "\"xxe\"")
                   (List.init (String.length w - 4) Fun.id))
        | ws ->
            Alcotest.fail
              (Printf.sprintf "expected one warning, got %d" (List.length ws)));
        (match C.find_sanitizer c "scrub" with
        | Some s ->
            Alcotest.(check bool) "known kind kept" true
              (s.C.san_kinds = [ Vuln.Xss ])
        | None -> Alcotest.fail "scrub should survive minus the unknown kind");
        Alcotest.(check bool) "rest of the spec loads" true (C.is_revert c "undo");
        (* an entry whose whole kind list is unknown is skipped entirely *)
        let c2, w2 =
          Phpsafe.Config_spec.of_string_with_warnings
            "sink function emit xxe\nrevert undo\n"
        in
        Alcotest.(check int) "one warning" 1 (List.length w2);
        Alcotest.(check bool) "sink dropped" true (C.find_sinks c2 "emit" = []);
        Alcotest.(check bool) "later lines unaffected" true (C.is_revert c2 "undo");
        (* the strict entry point still refuses the same input *)
        try
          ignore (Phpsafe.Config_spec.of_string spec);
          Alcotest.fail "expected Spec_error"
        with Phpsafe.Config_spec.Spec_error (msg, line) ->
          Alcotest.(check int) "line" 1 line;
          Alcotest.(check bool) "mentions xxe" true
            (let nl = String.length "xxe" and hl = String.length msg in
             let rec go i =
               i + nl <= hl && (String.sub msg i nl = "xxe" || go (i + 1))
             in
             go 0));
  ]

(* -- sanitizer contexts and validation ------------------------------- *)

let context_cases =
  let open Secflow.Context in
  [
    case "htmlspecialchars adequate for body and quoted attribute only"
      (fun () ->
        let ad ctx = C.adequate wp ~name:"htmlspecialchars" ctx in
        Alcotest.(check bool) "body" true (ad Html_body);
        Alcotest.(check bool) "quoted attr" true (ad Html_attr_quoted);
        Alcotest.(check bool) "unquoted attr" false (ad Html_attr_unquoted);
        Alcotest.(check bool) "js string" false (ad Js_string);
        Alcotest.(check bool) "url" false (ad Url));
    case "intval adequate in every context" (fun () ->
        List.iter
          (fun ctx ->
            Alcotest.(check bool) (to_string ctx) true
              (C.adequate wp ~name:"intval" ctx))
          all);
    case "addslashes adequate only in a quoted SQL string" (fun () ->
        Alcotest.(check bool) "quoted" true
          (C.adequate wp ~name:"addslashes" Sql_quoted_string);
        Alcotest.(check bool) "numeric" false
          (C.adequate wp ~name:"addslashes" Sql_numeric);
        Alcotest.(check bool) "identifier" false
          (C.adequate wp ~name:"addslashes" Sql_identifier));
    case "unknown sanitizer is adequate nowhere" (fun () ->
        Alcotest.(check bool) "no contexts" true
          (C.sanitizer_contexts wp "no_such_fn" = []));
    case "spec ctx= clause parses and round-trips" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "sanitizer function esc_text xss ctx=html-body,html-attr-quoted\n"
        in
        Alcotest.(check bool) "restricted" true
          (C.adequate c ~name:"esc_text" Html_body
          && not (C.adequate c ~name:"esc_text" Html_attr_unquoted));
        let again = Phpsafe.Config_spec.of_string (Phpsafe.Config_spec.to_string c) in
        Alcotest.(check bool) "round-trip keeps the restriction" true
          (C.adequate again ~name:"esc_text" Html_body
          && not (C.adequate again ~name:"esc_text" Html_attr_unquoted)));
    case "spec rejects an unknown context name" (fun () ->
        try
          ignore
            (Phpsafe.Config_spec.of_string
               "sanitizer function f xss ctx=html-wat\n");
          Alcotest.fail "expected Spec_error"
        with Phpsafe.Config_spec.Spec_error (_, line) ->
          Alcotest.(check int) "line" 1 line);
    case "builtin context matrix survives the spec round trip" (fun () ->
        List.iter
          (fun profile ->
            let again =
              Phpsafe.Config_spec.of_string (Phpsafe.Config_spec.to_string profile)
            in
            List.iter
              (fun (s : C.sanitizer_entry) ->
                Alcotest.(check (list string))
                  (profile.C.name ^ "/" ^ s.C.san_name)
                  (List.sort String.compare (List.map to_string s.C.san_contexts))
                  (List.sort String.compare
                     (List.map to_string
                        (C.sanitizer_contexts again s.C.san_name))))
              (List.filter (fun (s : C.sanitizer_entry) -> not s.C.san_is_method)
                 profile.C.sanitizers))
          [ C.generic_php; Phpsafe.Wordpress.default_config;
            Phpsafe.Joomla.default_config; Phpsafe.Drupal.default_config ]);
  ]

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let validate_cases =
  [
    case "builtin profiles validate cleanly" (fun () ->
        List.iter
          (fun profile ->
            Alcotest.(check (list string)) profile.C.name []
              (Phpsafe.Config_spec.validate profile))
          [ C.generic_php; Phpsafe.Wordpress.default_config;
            Phpsafe.Joomla.default_config; Phpsafe.Drupal.default_config ]);
    case "duplicate sanitizer entries are reported" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "sanitizer function clean xss\nsanitizer function clean xss\n"
        in
        match Phpsafe.Config_spec.validate c with
        | [ w ] ->
            Alcotest.(check bool) "names the entry" true
              (String.length w > 0
              && contains w "clean")
        | ws -> Alcotest.failf "expected 1 warning, got %d" (List.length ws));
    case "duplicate sinks and sources are reported" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "sink function show xss\nsink function show xss\n\
             source superglobal $_GET xss\nsource superglobal $_GET sqli\n"
        in
        Alcotest.(check int) "two warnings" 2
          (List.length (Phpsafe.Config_spec.validate c)));
    case "source-and-sanitizer conflicts are reported" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "source function fetch fn xss\nsanitizer function fetch xss\n"
        in
        Alcotest.(check bool) "conflict reported" true
          (List.exists
             (fun w -> contains w "both a source and a sanitizer")
             (Phpsafe.Config_spec.validate c)));
    case "same name for different kinds is not a conflict" (fun () ->
        let c =
          Phpsafe.Config_spec.of_string
            "source function fetch fn xss\nsanitizer function fetch sqli\n"
        in
        Alcotest.(check (list string)) "clean" []
          (Phpsafe.Config_spec.validate c));
  ]

let () =
  Alcotest.run "config"
    [ ("generic PHP profile", generic_cases);
      ("WordPress profile", wordpress_cases);
      ("spec format", spec_cases);
      ("sanitizer contexts (--contexts)", context_cases);
      ("validation", validate_cases) ]
