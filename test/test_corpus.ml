(** Corpus tests: determinism, paper-calibrated sizes, ground-truth
    integrity, plan invariants, and — most importantly — the per-pattern
    detectability contract: each seeded pattern, in its planned placement,
    is detected by exactly the tools the calibration assumes. *)

open Secflow

let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Detectability contract                                             *)
(* ------------------------------------------------------------------ *)

(* Build a one-instance plugin and report which tools detect the seed.
   [variant_salt] perturbs the per-instance RNG (via the plugin name that
   seeds it) so different pattern variants are exercised. *)
let detected_by ?(variant_salt = 0) pattern vector placement : string =
  let inst =
    { Corpus.Plan.in_id = "x001"; in_pattern = pattern; in_vector = vector;
      in_placement = placement; in_plugin = 0; in_persistent = false }
  in
  Corpus.Filler.reset ();
  let built =
    Corpus.Builder.build ~version:Corpus.Plan.V2012
      ~plugin_name:(Printf.sprintf "test-plugin-%d" variant_salt)
      ~instances:[ inst ]
      ~carried:(fun _ -> false)
      ~extra_files:0 ~carried_extra_files:0 ~chains_carried:false
      ~file_quota:60 ~carried_file_quota:60
  in
  let seed =
    match built.Corpus.Builder.seeds with
    | [ s ] -> s
    | seeds -> Alcotest.failf "expected 1 seed, got %d" (List.length seeds)
  in
  let key = Corpus.Gt.key_of seed in
  [ ("P", Phpsafe.tool); ("R", Rips.tool); ("X", Pixy.tool) ]
  |> List.filter_map (fun (short, (tool : Tool.t)) ->
         let r = tool.Tool.analyze_project built.Corpus.Builder.project in
         if Report.Key_set.mem key (Report.keys r) then Some short else None)
  |> String.concat ""

(* the contract must hold for EVERY variant a pattern can instantiate to,
   so the calibration cannot drift when variants are added *)
let variant_salts = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let contract name pattern vector placement expected =
  case ("contract: " ^ name) (fun () ->
      List.iter
        (fun salt ->
          Alcotest.(check string)
            (Printf.sprintf "%s (variant salt %d)" name salt)
            expected
            (detected_by ~variant_salt:salt pattern vector placement))
        variant_salts)

let contract_cases =
  let open Corpus.Plan in
  [
    contract "direct echo in a clean file: all three tools" P_direct Vuln.Get
      Clean_file "PRX";
    contract "direct echo in an OOP file: Pixy fails the file" P_direct
      Vuln.Get Oop_file "PR";
    contract "direct echo in a deep file: RIPS only" P_direct Vuln.Get
      Deep_file "R";
    contract "procedural db chain: phpSAFE and RIPS" P_db_proc Vuln.Db
      Oop_file "PR";
    contract "file read: phpSAFE and RIPS" P_file_proc
      Vuln.File_function_array Oop_file "PR";
    contract "register_globals echo: Pixy only" P_rg Vuln.Post_get_cookie
      Clean_file "X";
    contract "uncalled hook: phpSAFE and RIPS, not Pixy" P_uncalled Vuln.Get
      Oop_file "PR";
    contract "inter-procedural in a clean file: all three" P_interproc
      Vuln.Get Clean_file "PRX";
    contract "wpdb OOP XSS: phpSAFE only (paper headline)" P_wpdb_xss Vuln.Db
      Oop_file "P";
    contract "wpdb SQLi: phpSAFE only" P_wpdb_sqli Vuln.Get Oop_file "P";
    contract "method echo: phpSAFE only" P_method Vuln.Get Oop_file "P";
    contract "method db chain: phpSAFE only" P_method_db Vuln.Db Oop_file "P";
    contract "method file read: phpSAFE only" P_method_file
      Vuln.File_function_array Oop_file "P";
    contract "property store/show flow: phpSAFE only" P_method_prop Vuln.Get
      Oop_file "P";
    contract "call_user_func: invisible to every tool (empty circle)"
      P_dynamic Vuln.Get Oop_file "";
    contract "numeric guard trap: FP in all three" T_guard Vuln.Get
      Clean_file "PRX";
    contract "WP sanitizer trap: FP in RIPS and Pixy only" T_wp_san Vuln.Get
      Clean_file "RX";
    contract "revert trap: FP in phpSAFE and RIPS only" T_revert Vuln.Get
      Oop_file "PR";
    contract "uninit-include trap: FP in Pixy only" T_uninit
      Vuln.Post_get_cookie Clean_file "X";
    contract "prepared query: true negative everywhere" T_prepare_ok Vuln.Get
      Oop_file "";
    contract "guard before wpdb query: phpSAFE FP only" T_sqli_guard_wpdb
      Vuln.Get Oop_file "P";
    contract "guard before mysql_query: phpSAFE and RIPS FP" T_sqli_guard_proc
      Vuln.Post Oop_file "PR";
    contract "standard sanitizer: true negative everywhere" T_san_ok Vuln.Get
      Clean_file "";
  ]

(* ------------------------------------------------------------------ *)
(* Corpus-level invariants                                            *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

let corpus_cases =
  [
    case "deterministic generation" (fun () ->
        let a = Corpus.generate Corpus.Plan.V2012 in
        let b = Corpus.generate Corpus.Plan.V2012 in
        Alcotest.(check bool) "seeds equal" true (a.Corpus.seeds = b.Corpus.seeds);
        let src c =
          List.concat_map
            (fun (p : Corpus.Catalog.plugin_output) ->
              List.map
                (fun (f : Phplang.Project.file) -> f.Phplang.Project.source)
                p.Corpus.Catalog.po_project.Phplang.Project.files)
            c.Corpus.plugins
        in
        Alcotest.(check bool) "sources equal" true (src a = src b));
    case "file counts match the paper corpus" (fun () ->
        let f12, _ = Corpus.stats (Corpus.generate Corpus.Plan.V2012) in
        let f14, _ = Corpus.stats (Corpus.generate Corpus.Plan.V2014) in
        Alcotest.(check int) "2012 files" 266 f12;
        Alcotest.(check int) "2014 files" 356 f14);
    case "LOC within 5% of the paper corpus" (fun () ->
        let _, l12 = Corpus.stats (Corpus.generate Corpus.Plan.V2012) in
        let _, l14 = Corpus.stats (Corpus.generate Corpus.Plan.V2014) in
        let close target got =
          Float.abs (float_of_int (got - target)) /. float_of_int target < 0.05
        in
        Alcotest.(check bool) "2012 loc" true (close 89_560 l12);
        Alcotest.(check bool) "2014 loc" true (close 180_801 l14));
    case "every generated file parses" (fun () ->
        let c = Corpus.generate Corpus.Plan.V2012 in
        List.iter
          (fun (p : Corpus.Catalog.plugin_output) ->
            List.iter
              (fun (f : Phplang.Project.file) ->
                ignore
                  (Phplang.Parser.parse_source ~file:f.Phplang.Project.path
                     f.Phplang.Project.source))
              p.Corpus.Catalog.po_project.Phplang.Project.files)
          c.Corpus.plugins);
    case "seed ids are unique per version" (fun () ->
        let c = Corpus.generate Corpus.Plan.V2014 in
        let ids = List.map (fun (s : Corpus.Gt.seed) -> s.Corpus.Gt.seed_id) c.Corpus.seeds in
        Alcotest.(check int) "no duplicates" (List.length ids)
          (SS.cardinal (SS.of_list ids)));
    case "persistent 2014 seeds existed in 2012" (fun () ->
        let c12 = Corpus.generate Corpus.Plan.V2012 in
        let c14 = Corpus.generate Corpus.Plan.V2014 in
        let ids12 =
          SS.of_list
            (List.map (fun (s : Corpus.Gt.seed) -> s.Corpus.Gt.seed_id) c12.Corpus.seeds)
        in
        let carried =
          List.filter
            (fun (s : Corpus.Gt.seed) ->
              String.length s.Corpus.Gt.seed_id > 0
              && s.Corpus.Gt.seed_id.[0] = 's')
            c14.Corpus.seeds
        in
        Alcotest.(check bool) "has carried seeds" true (carried <> []);
        List.iter
          (fun (s : Corpus.Gt.seed) ->
            if not (SS.mem s.Corpus.Gt.seed_id ids12) then
              Alcotest.failf "carried seed %s missing from 2012" s.Corpus.Gt.seed_id)
          carried);
    case "persistent seeds stay in the same plugin" (fun () ->
        let plugin_of c =
          List.fold_left
            (fun m (s : Corpus.Gt.seed) ->
              (s.Corpus.Gt.seed_id, s.Corpus.Gt.plugin) :: m)
            []
            c.Corpus.seeds
        in
        let m12 = plugin_of (Corpus.generate Corpus.Plan.V2012) in
        let m14 = plugin_of (Corpus.generate Corpus.Plan.V2014) in
        List.iter
          (fun (id, plugin14) ->
            if id.[0] = 's' then
              match List.assoc_opt id m12 with
              | Some plugin12 ->
                  if plugin12 <> plugin14 then
                    Alcotest.failf "seed %s moved %s -> %s" id plugin12 plugin14
              | None -> ())
          m14);
    case "sink lines hold their marker exactly once" (fun () ->
        let c = Corpus.generate Corpus.Plan.V2012 in
        List.iter
          (fun (p : Corpus.Catalog.plugin_output) ->
            List.iter
              (fun (s : Corpus.Gt.seed) ->
                match
                  Phplang.Project.find p.Corpus.Catalog.po_project s.Corpus.Gt.file
                with
                | None -> Alcotest.failf "file %s missing" s.Corpus.Gt.file
                | Some f ->
                    let line =
                      List.nth
                        (String.split_on_char '\n' f.Phplang.Project.source)
                        (s.Corpus.Gt.line - 1)
                    in
                    let marker = Corpus.Gt.marker s.Corpus.Gt.seed_id in
                    let found =
                      let rec scan i =
                        i + String.length marker <= String.length line
                        && (String.sub line i (String.length marker) = marker
                           || scan (i + 1))
                      in
                      scan 0
                    in
                    if not found then
                      Alcotest.failf "marker for %s not on line %d of %s"
                        s.Corpus.Gt.seed_id s.Corpus.Gt.line s.Corpus.Gt.file)
              p.Corpus.Catalog.po_seeds)
          c.Corpus.plugins);
    case "19 OOP plugins, 35 total (paper §V.A)" (fun () ->
        Alcotest.(check int) "plugins" 35 (Array.length Corpus.Catalog.plugin_names);
        Alcotest.(check int) "oop" 19 (List.length Corpus.Plan.oop_plugins);
        Alcotest.(check int) "procedural" 16 (List.length Corpus.Plan.proc_plugins);
        Alcotest.(check int) "total" Corpus.Plan.plugin_count
          (List.length Corpus.Plan.oop_plugins + List.length Corpus.Plan.proc_plugins));
    case "plan: 2012 real vulnerabilities total 400 (394 detectable + 6 hidden)"
      (fun () ->
        let c = Corpus.generate Corpus.Plan.V2012 in
        Alcotest.(check int) "real" 400 (List.length (Corpus.real_vulns c)));
    case "plan: 2014 real vulnerabilities total 594 (586 + 8 hidden)" (fun () ->
        let c = Corpus.generate Corpus.Plan.V2014 in
        Alcotest.(check int) "real" 594 (List.length (Corpus.real_vulns c)));
    case "wpdb vulnerabilities concentrated per the paper (10 then 7 plugins)"
      (fun () ->
        let plugins version =
          Corpus.generate version |> Corpus.real_vulns
          |> List.filter Corpus.Gt.is_oop_wordpress
          |> List.map (fun (s : Corpus.Gt.seed) -> s.Corpus.Gt.plugin)
          |> SS.of_list |> SS.cardinal
        in
        Alcotest.(check int) "2012" 10 (plugins Corpus.Plan.V2012);
        Alcotest.(check int) "2014" 7 (plugins Corpus.Plan.V2014));
    case "scale multiplies bulk but not the seeded vulnerabilities" (fun () ->
        let base = Corpus.generate Corpus.Plan.V2012 in
        let big = Corpus.generate ~scale:2.0 Corpus.Plan.V2012 in
        let _, loc_base = Corpus.stats base in
        let files_big, loc_big = Corpus.stats big in
        Alcotest.(check bool) "loc roughly doubles" true
          (let r = float_of_int loc_big /. float_of_int loc_base in
           r > 1.8 && r < 2.2);
        Alcotest.(check int) "files double" 532 files_big;
        Alcotest.(check int) "same seeds" (List.length base.Corpus.seeds)
          (List.length big.Corpus.seeds);
        Alcotest.(check bool) "same seed ids" true
          (List.for_all2
             (fun (a : Corpus.Gt.seed) (b : Corpus.Gt.seed) ->
               a.Corpus.Gt.seed_id = b.Corpus.Gt.seed_id)
             base.Corpus.seeds big.Corpus.seeds));
    case "deep plugins carry an include chain" (fun () ->
        let c = Corpus.generate Corpus.Plan.V2014 in
        let deep_names =
          List.map
            (fun i -> Corpus.Catalog.plugin_names.(i))
            (Corpus.Plan.deep_plugins Corpus.Plan.V2014)
        in
        List.iter
          (fun name ->
            let p =
              List.find
                (fun (p : Corpus.Catalog.plugin_output) ->
                  p.Corpus.Catalog.po_name = name)
                c.Corpus.plugins
            in
            Alcotest.(check bool)
              (name ^ " has engine file") true
              (Phplang.Project.find p.Corpus.Catalog.po_project "core/engine.php"
               <> None))
          deep_names);
  ]

(* ------------------------------------------------------------------ *)
(* Analytic plan invariants: the calibration arithmetic of DESIGN.md,
   checked directly on the instance lists.                             *)
(* ------------------------------------------------------------------ *)

let count_insts version pred =
  List.length (List.filter pred (Corpus.Plan.instances version))

let is_vuln (i : Corpus.Plan.inst) =
  match i.Corpus.Plan.in_pattern with
  | Corpus.Plan.T_guard | Corpus.Plan.T_wp_san | Corpus.Plan.T_revert
  | Corpus.Plan.T_uninit | Corpus.Plan.T_prepare_ok
  | Corpus.Plan.T_sqli_guard_wpdb | Corpus.Plan.T_sqli_guard_proc
  | Corpus.Plan.T_san_ok ->
      false
  | _ -> true

let plan_cases =
  [
    case "bucket arithmetic solves Table I (2012)" (fun () ->
        let v = Corpus.Plan.V2012 in
        let clean =
          count_insts v (fun i ->
              is_vuln i && i.Corpus.Plan.in_placement = Corpus.Plan.Clean_file
              && i.Corpus.Plan.in_pattern <> Corpus.Plan.P_rg)
        in
        let rg = count_insts v (fun i -> i.Corpus.Plan.in_pattern = Corpus.Plan.P_rg) in
        let deep =
          count_insts v (fun i ->
              is_vuln i && i.Corpus.Plan.in_placement = Corpus.Plan.Deep_file)
        in
        Alcotest.(check int) "C (all three)" 26 clean;
        Alcotest.(check int) "E (Pixy only)" 24 rg;
        Alcotest.(check int) "D (RIPS only)" 55 deep);
    case "vulnerability totals per version" (fun () ->
        Alcotest.(check int) "2012" 400 (count_insts Corpus.Plan.V2012 is_vuln);
        Alcotest.(check int) "2014" 594 (count_insts Corpus.Plan.V2014 is_vuln));
    case "trap totals reproduce the paper FP columns" (fun () ->
        (* phpSAFE FP 2012 = guard 40 + revert 23 + sqli-guard-wpdb 2 = 65 *)
        let v = Corpus.Plan.V2012 in
        let n p = count_insts v (fun i -> i.Corpus.Plan.in_pattern = p) in
        Alcotest.(check int) "guard traps" 40 (n Corpus.Plan.T_guard);
        Alcotest.(check int) "revert traps" 23 (n Corpus.Plan.T_revert);
        Alcotest.(check int) "wpdb sqli guards" 2 (n Corpus.Plan.T_sqli_guard_wpdb);
        Alcotest.(check int) "wp sanitizer traps" 16 (n Corpus.Plan.T_wp_san);
        Alcotest.(check int) "uninit traps" 131 (n Corpus.Plan.T_uninit));
    case "persistent 2014 instances keep 2012 ids and attributes" (fun () ->
        let old = Corpus.Plan.instances Corpus.Plan.V2012 in
        let idx =
          List.map (fun (i : Corpus.Plan.inst) -> (i.Corpus.Plan.in_id, i)) old
        in
        List.iter
          (fun (i : Corpus.Plan.inst) ->
            if i.Corpus.Plan.in_persistent then
              match List.assoc_opt i.Corpus.Plan.in_id idx with
              | None ->
                  Alcotest.failf "persistent %s missing in 2012" i.Corpus.Plan.in_id
              | Some o ->
                  Alcotest.(check bool)
                    (i.Corpus.Plan.in_id ^ " same pattern/plugin") true
                    (o.Corpus.Plan.in_pattern = i.Corpus.Plan.in_pattern
                    && o.Corpus.Plan.in_plugin = i.Corpus.Plan.in_plugin
                    && o.Corpus.Plan.in_vector = i.Corpus.Plan.in_vector))
          (Corpus.Plan.instances Corpus.Plan.V2014));
    case "wpdb seeds sit only in the designated plugins" (fun () ->
        List.iter
          (fun v ->
            let allowed = Corpus.Plan.wpdb_plugins v in
            List.iter
              (fun (i : Corpus.Plan.inst) ->
                match i.Corpus.Plan.in_pattern with
                | Corpus.Plan.P_wpdb_xss | Corpus.Plan.P_wpdb_sqli ->
                    if not (List.mem i.Corpus.Plan.in_plugin allowed) then
                      Alcotest.failf "wpdb seed %s in plugin %d"
                        i.Corpus.Plan.in_id i.Corpus.Plan.in_plugin
                | _ -> ())
              (Corpus.Plan.instances v))
          [ Corpus.Plan.V2012; Corpus.Plan.V2014 ]);
    case "deep seeds sit only in the deep plugins" (fun () ->
        List.iter
          (fun v ->
            let allowed = Corpus.Plan.deep_plugins v in
            List.iter
              (fun (i : Corpus.Plan.inst) ->
                if i.Corpus.Plan.in_placement = Corpus.Plan.Deep_file
                   && not (List.mem i.Corpus.Plan.in_plugin allowed)
                then
                  Alcotest.failf "deep seed %s in plugin %d" i.Corpus.Plan.in_id
                    i.Corpus.Plan.in_plugin)
              (Corpus.Plan.instances v))
          [ Corpus.Plan.V2012; Corpus.Plan.V2014 ]);
    case "clean placements only in procedural plugins" (fun () ->
        List.iter
          (fun v ->
            List.iter
              (fun (i : Corpus.Plan.inst) ->
                if i.Corpus.Plan.in_placement = Corpus.Plan.Clean_file
                   && i.Corpus.Plan.in_plugin < 19
                then
                  Alcotest.failf "clean seed %s in OOP plugin %d"
                    i.Corpus.Plan.in_id i.Corpus.Plan.in_plugin)
              (Corpus.Plan.instances v))
          [ Corpus.Plan.V2012; Corpus.Plan.V2014 ]);
  ]

let () =
  Alcotest.run "corpus"
    [ ("detectability contract", contract_cases);
      ("plan invariants", plan_cases);
      ("corpus invariants", corpus_cases) ]
