(** Robustness fuzzing: all three analyzers must terminate without raising
    on arbitrary generated programs (including OOP constructs, loops,
    recursion-prone call graphs and weird-but-valid strings), and must be
    deterministic — same source, same findings.  This is the §IV.A
    "robustness" requirement made executable. *)

open QCheck2
module A = Phplang.Ast

let e d = A.mk_e d
let s d = A.mk_s d

let var_pool = [| "$a"; "$b"; "$row"; "$wpdb"; "$data"; "$out" |]
let fn_pool =
  [| "render"; "fetch_rows"; "helper"; "htmlspecialchars"; "esc_html";
     "intval"; "stripslashes"; "mysql_query"; "trim"; "unknown_api" |]
let cls_pool = [| "Widget"; "Model"; "Helper" |]
let key_pool = [| "id"; "page"; "q" |]

let pick pool = Gen.map (fun i -> pool.(i)) (Gen.int_bound (Array.length pool - 1))

let gen_expr : A.expr Gen.t =
  Gen.sized_size (Gen.int_bound 20)
    (Gen.fix (fun self n ->
         let leaf =
           Gen.oneof
             [ Gen.map (fun v -> e (A.Var v)) (pick var_pool);
               Gen.map (fun k -> e (A.ArrayGet (e (A.Var "$_GET"), Some (e (A.Str k)))))
                 (pick key_pool);
               Gen.map (fun k -> e (A.ArrayGet (e (A.Var "$_POST"), Some (e (A.Str k)))))
                 (pick key_pool);
               Gen.map (fun x -> e (A.Str x))
                 (Gen.oneofl [ "lit"; "<b>"; "it's"; "a\"b"; "" ]);
               Gen.map (fun i -> e (A.Int i)) Gen.nat ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ leaf;
               Gen.map2 (fun a b -> e (A.Bin (A.Concat, a, b))) sub sub;
               Gen.map2 (fun a b -> e (A.Bin (A.Plus, a, b))) sub sub;
               Gen.map2 (fun f args -> e (A.Call (f, args)))
                 (pick fn_pool)
                 (Gen.list_size (Gen.int_bound 2) sub);
               Gen.map3 (fun v m args -> e (A.MethodCall (e (A.Var v), m, args)))
                 (pick var_pool)
                 (Gen.oneofl [ "get_results"; "query"; "run"; "prepare" ])
                 (Gen.list_size (Gen.int_bound 2) sub);
               Gen.map2 (fun c args -> e (A.New (c, args)))
                 (pick cls_pool)
                 (Gen.list_size (Gen.int_bound 1) sub);
               Gen.map2 (fun v p -> e (A.Prop (e (A.Var v), p)))
                 (pick var_pool)
                 (Gen.oneofl [ "name"; "value" ]);
               Gen.map3 (fun c a b -> e (A.Ternary (c, Some a, b))) sub sub sub;
               Gen.map2 (fun v rhs -> e (A.Assign (e (A.Var v), rhs)))
                 (pick var_pool) sub;
               Gen.map (fun x -> e (A.Un (A.Not, x))) sub;
               Gen.map (fun x -> e (A.CastE (A.CastInt, x))) sub ]))

let gen_stmt : A.stmt Gen.t =
  Gen.sized_size (Gen.int_bound 14)
    (Gen.fix (fun self n ->
         let simple =
           Gen.oneof
             [ Gen.map (fun x -> s (A.Expr x)) gen_expr;
               Gen.map (fun x -> s (A.Echo [ x ])) gen_expr;
               Gen.map (fun x -> s (A.Return (Some x))) gen_expr;
               Gen.map (fun v -> s (A.Global [ v ])) (pick var_pool);
               Gen.map (fun v -> s (A.Unset [ e (A.Var v) ])) (pick var_pool);
               Gen.return (s A.Break);
               Gen.return (s A.Continue);
               Gen.return (s (A.Expr (e (A.Exit None)))) ]
         in
         if n <= 0 then simple
         else
           let body = Gen.list_size (Gen.int_range 1 3) (self (n / 2)) in
           Gen.oneof
             [ simple;
               Gen.map2 (fun c b -> s (A.If ([ (c, b) ], None))) gen_expr body;
               Gen.map3 (fun c b1 b2 -> s (A.If ([ (c, b1) ], Some b2)))
                 gen_expr body body;
               Gen.map2 (fun c b -> s (A.While (c, b))) gen_expr body;
               Gen.map3
                 (fun subj v b ->
                   s (A.Foreach (subj, A.ForeachValue (e (A.Var v)), b)))
                 gen_expr (pick var_pool) body;
               Gen.map2
                 (fun name b ->
                   s (A.FuncDef
                        { A.f_name = name;
                          f_params =
                            [ { A.p_name = "$arg"; p_default = None;
                                p_by_ref = false; p_hint = None } ];
                          f_body = b; f_pos = A.dummy_pos }))
                 (pick fn_pool) body;
               Gen.map2
                 (fun cls b ->
                   s (A.ClassDef
                        { A.c_name = cls; c_parent = None; c_implements = [];
                          c_consts = []; c_props = [];
                          c_methods =
                            [ { A.m_vis = A.Public; m_static = false;
                                m_func =
                                  { A.f_name = "run"; f_params = [];
                                    f_body = b; f_pos = A.dummy_pos } } ];
                          c_pos = A.dummy_pos }))
                 (pick cls_pool) body ]))

let gen_source : string Gen.t =
  Gen.map
    (fun stmts -> Phplang.Printer.program_to_string stmts)
    (Gen.list_size (Gen.int_range 1 8) gen_stmt)

let tools : (string * (file:string -> string -> Secflow.Report.result)) list =
  [ ("phpSAFE", Phpsafe.analyze_source ?opts:None);
    ("RIPS", Rips.analyze_source);
    ("Pixy", Pixy.analyze_source) ]

(* Detection identity is the de-duplicated (kind, file, line) key set, as in
   ground-truth matching: phpSAFE keeps two distinct sinks on one line as
   two findings while RIPS collapses them, but both count as one
   detection. *)
let finding_keys (r : Secflow.Report.result) =
  List.map
    (fun (f : Secflow.Report.finding) ->
      (f.Secflow.Report.kind, f.Secflow.Report.sink_pos.A.file,
       f.Secflow.Report.sink_pos.A.line))
    r.Secflow.Report.findings
  |> List.sort_uniq compare

let no_crash =
  List.map
    (fun (name, analyze) ->
      Test.make
        ~name:(name ^ " never crashes on generated programs")
        ~count:120 ~print:(fun src -> src) gen_source
        (fun src ->
          match analyze ~file:"fuzz.php" src with
          | _ -> true
          | exception exn ->
              QCheck2.Test.fail_reportf "%s raised %s on:\n%s" name
                (Printexc.to_string exn) src))
    tools

let deterministic =
  List.map
    (fun (name, analyze) ->
      Test.make
        ~name:(name ^ " is deterministic")
        ~count:60 ~print:(fun src -> src) gen_source
        (fun src ->
          finding_keys (analyze ~file:"fuzz.php" src)
          = finding_keys (analyze ~file:"fuzz.php" src)))
    tools

let sound_on_clean =
  (* a program with no taint source yields no findings in phpSAFE/RIPS;
     Pixy may still flag register_globals reads, so it is excluded *)
  let gen_clean =
    Gen.map
      (fun stmts -> Phplang.Printer.program_to_string stmts)
      (Gen.list_size (Gen.int_range 1 5)
         (Gen.map
            (fun lit -> s (A.Echo [ e (A.Str lit) ]))
            (Gen.oneofl [ "a"; "<p>x</p>"; "done" ])))
  in
  [ Test.make ~name:"no sources, no findings (phpSAFE & RIPS)" ~count:40
      gen_clean
      (fun src ->
        List.for_all
          (fun (name, analyze) ->
            name = "Pixy"
            || (analyze ~file:"clean.php" src).Secflow.Report.findings = [])
          tools) ]

(* ------------------------------------------------------------------ *)
(* Differential property: on the procedural common subset -- no OOP, no
   user functions, no unknown (framework) functions -- phpSAFE and RIPS
   report exactly the same findings.  Their differences in the paper come
   *only* from OOP support, the WordPress profile, cross-file analysis
   and robustness policies; this property pins that down.               *)
(* ------------------------------------------------------------------ *)

let known_fns =
  (* functions both tools model identically *)
  [| "htmlspecialchars"; "intval"; "trim"; "strip_tags"; "stripslashes";
     "sprintf"; "mysql_fetch_assoc"; "mysql_query" |]

let gen_common_expr : A.expr Gen.t =
  Gen.sized_size (Gen.int_bound 10)
    (Gen.fix (fun self n ->
         let leaf =
           Gen.oneof
             [ Gen.map (fun v -> e (A.Var v)) (pick var_pool);
               Gen.map
                 (fun k -> e (A.ArrayGet (e (A.Var "$_GET"), Some (e (A.Str k)))))
                 (pick key_pool);
               Gen.map
                 (fun k -> e (A.ArrayGet (e (A.Var "$_POST"), Some (e (A.Str k)))))
                 (pick key_pool);
               Gen.map (fun x -> e (A.Str x)) (Gen.oneofl [ "lit"; "<b>"; "" ]);
               Gen.map (fun i -> e (A.Int i)) Gen.nat ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           Gen.oneof
             [ leaf;
               Gen.map2 (fun a b -> e (A.Bin (A.Concat, a, b))) sub sub;
               Gen.map2 (fun f args -> e (A.Call (f, args)))
                 (pick known_fns)
                 (Gen.map (fun a -> [ a ]) sub);
               Gen.map3 (fun c a b -> e (A.Ternary (c, Some a, b))) sub sub sub;
               Gen.map (fun x -> e (A.CastE (A.CastInt, x))) sub ]))

let gen_common_stmt : A.stmt Gen.t =
  Gen.sized_size (Gen.int_bound 8)
    (Gen.fix (fun self n ->
         let simple =
           Gen.oneof
             [ Gen.map2 (fun v rhs -> s (A.Expr (e (A.Assign (e (A.Var v), rhs)))))
                 (pick var_pool) gen_common_expr;
               Gen.map2
                 (fun v rhs -> s (A.Expr (e (A.OpAssign (A.Concat, e (A.Var v), rhs)))))
                 (pick var_pool) gen_common_expr;
               Gen.map (fun x -> s (A.Echo [ x ])) gen_common_expr;
               Gen.map (fun v -> s (A.Unset [ e (A.Var v) ])) (pick var_pool) ]
         in
         if n <= 0 then simple
         else
           let body = Gen.list_size (Gen.int_range 1 3) (self (n / 2)) in
           Gen.oneof
             [ simple;
               Gen.map2 (fun c b -> s (A.If ([ (c, b) ], None))) gen_common_expr body;
               Gen.map3 (fun c b1 b2 -> s (A.If ([ (c, b1) ], Some b2)))
                 gen_common_expr body body;
               Gen.map2 (fun c b -> s (A.While (c, b))) gen_common_expr body;
               Gen.map3
                 (fun subj v b ->
                   s (A.Foreach (subj, A.ForeachValue (e (A.Var v)), b)))
                 gen_common_expr (pick var_pool) body ]))

let gen_common_source : string Gen.t =
  Gen.map
    (fun stmts -> Phplang.Printer.program_to_string stmts)
    (Gen.list_size (Gen.int_range 1 10) gen_common_stmt)

let differential =
  [ Test.make
      ~name:"phpSAFE = RIPS on the procedural common subset"
      ~count:300 ~print:(fun src -> src) gen_common_source
      (fun src ->
        let p = finding_keys (Phpsafe.analyze_source ~file:"d.php" src) in
        let r = finding_keys (Rips.analyze_source ~file:"d.php" src) in
        if p = r then true
        else
          QCheck2.Test.fail_reportf
            "divergence on:\n%s\nphpSAFE: %d findings, RIPS: %d findings" src
            (List.length p) (List.length r)) ]

let () =
  Alcotest.run "fuzz"
    [ ("no crashes", List.map QCheck_alcotest.to_alcotest no_crash);
      ("determinism", List.map QCheck_alcotest.to_alcotest deterministic);
      ("clean programs", List.map QCheck_alcotest.to_alcotest sound_on_clean);
      ("differential", List.map QCheck_alcotest.to_alcotest differential) ]
