(** Integration tests for [bin/phpsafe_cli]: the CI-friendly exit-status
    contract (0 = clean scan, 1 = findings remain after the [--kind]
    filter, 2 = some file's analysis failed) and the [--metrics]/[--trace]
    exporters.  The binary is a declared dune dependency of this test, so
    the relative path below always resolves inside the build context. *)

let exe =
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec test/test_cli.exe` *)
  let candidates =
    [
      Filename.concat ".." (Filename.concat "bin" "phpsafe_cli.exe");
      List.fold_left Filename.concat "_build" [ "default"; "bin"; "phpsafe_cli.exe" ];
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> List.hd candidates

let case = Alcotest.test_case

let write path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let in_temp_dir f =
  let dir = Filename.temp_file "phpsafe_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Sys.readdir dir |> Array.iter (fun e -> Sys.remove (Filename.concat dir e));
      Sys.rmdir dir)
    (fun () -> f dir)

let run_cli args =
  Sys.command
    (Printf.sprintf "%s %s > /dev/null 2> /dev/null" (Filename.quote exe) args)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exit_cases =
  [
    case "clean scan exits 0" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "clean.php" in
            write f "<?php echo \"hello\";\n";
            Alcotest.(check int) "status" 0 (run_cli (Filename.quote f))));
    case "findings exit 1" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "vuln.php" in
            write f "<?php echo $_GET['x'];\n";
            Alcotest.(check int) "status" 1 (run_cli (Filename.quote f))));
    case "the --kind filter decides between 1 and 0" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "vuln.php" in
            (* XSS only: echo of an unsanitized request parameter *)
            write f "<?php echo $_GET['x'];\n";
            Alcotest.(check int) "xss still reported" 1
              (run_cli (Filename.quote f ^ " --kind xss"));
            Alcotest.(check int) "sqli filter leaves a clean scan" 0
              (run_cli (Filename.quote f ^ " --kind sqli"))));
    case "analysis failure exits 2" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "broken.php" in
            write f "<?php if (\n";
            Alcotest.(check int) "status" 2 (run_cli (Filename.quote f))));
    case "analysis failure wins over findings" `Quick (fun () ->
        in_temp_dir (fun dir ->
            write (Filename.concat dir "vuln.php") "<?php echo $_GET['x'];\n";
            write (Filename.concat dir "broken.php") "<?php if (\n";
            Alcotest.(check int) "status" 2 (run_cli (Filename.quote dir))));
  ]

let export_cases =
  [
    case "--metrics and --trace write non-empty JSON" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "vuln.php" in
            write f "<?php echo $_GET['x'];\n";
            let metrics = Filename.concat dir "m.json" in
            let trace = Filename.concat dir "t.json" in
            Alcotest.(check int) "status still reflects findings" 1
              (run_cli
                 (Printf.sprintf "%s --metrics %s --trace %s"
                    (Filename.quote f) (Filename.quote metrics)
                    (Filename.quote trace)));
            let m = read_file metrics and t = read_file trace in
            Alcotest.(check bool) "metrics non-empty object" true
              (String.length m > 2 && m.[0] = '{');
            Alcotest.(check bool) "metrics mention the analysis stage" true
              (let needle = "phpsafe.analysis" in
               let nl = String.length needle and hl = String.length m in
               let rec at i =
                 i + nl <= hl && (String.sub m i nl = needle || at (i + 1))
               in
               at 0);
            Alcotest.(check bool) "trace has the traceEvents envelope" true
              (String.length t > 15 && String.sub t 0 15 = "{\"traceEvents\":")));
    case "no flags leave stdout untouched by obs" `Quick (fun () ->
        in_temp_dir (fun dir ->
            let f = Filename.concat dir "vuln.php" in
            write f "<?php echo $_GET['x'];\n";
            let out1 = Filename.concat dir "out1.txt" in
            let out2 = Filename.concat dir "out2.txt" in
            let run out extra =
              ignore
                (Sys.command
                   (Printf.sprintf "%s %s %s > %s 2> /dev/null"
                      (Filename.quote exe) (Filename.quote f) extra
                      (Filename.quote out)))
            in
            run out1 "";
            run out2
              (Printf.sprintf "--trace %s"
                 (Filename.quote (Filename.concat dir "t.json")));
            Alcotest.(check string) "findings output identical under --trace"
              (read_file out1) (read_file out2)));
  ]

let () =
  Alcotest.run "phpsafe_cli"
    [ ("exit status", exit_cases); ("exporters", export_cases) ]
