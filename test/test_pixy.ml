(** Pixy baseline behaviour tests: flow-sensitive dataflow over the CFG,
    register_globals modelling, OOP failure policy and the
    called-functions-only limitation. *)

open Secflow

let analyze src = Pixy.analyze_source ~file:"t.php" ("<?php\n" ^ src)

let findings src =
  (analyze src).Report.findings
  |> List.map (fun (f : Report.finding) ->
         Printf.sprintf "%s@%d" (Vuln.kind_to_string f.Report.kind)
           (f.Report.sink_pos.Phplang.Ast.line - 1))
  |> List.sort compare

let expect name src expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) name (List.sort compare expected) (findings src))

let dataflow_cases =
  [
    expect "direct superglobal" "echo $_GET['x'];" [ "XSS@1" ];
    expect "flow-sensitive: later overwrite kills taint"
      "$a = $_GET['x'];\n$a = 'safe';\necho $a;" [];
    expect "flow-sensitive: join at if-merge keeps taint"
      "if ($c) {\n$a = $_GET['x'];\n} else {\n$a = 'safe';\n}\necho $a;"
      [ "XSS@6" ];
    (* contrast with phpSAFE's sequential-branch semantics, which loses it *)
    expect "taint only on one path still reported"
      "$a = 'safe';\nif ($c) {\n$a = $_GET['x'];\n}\necho $a;" [ "XSS@5" ];
    expect "loop-carried taint reaches fixpoint"
      "$acc = '';\nwhile ($i < 3) {\n$acc .= $_GET['a'];\n$i = $i + 1;\n}\necho $acc;"
      [ "XSS@6" ];
    expect "switch cases join"
      "switch ($m) {\ncase 1:\n$a = $_GET['x'];\nbreak;\ndefault:\n$a = 'd';\n}\necho $a;"
      [ "XSS@8" ];
    expect "break exits the loop"
      "while ($c) {\n$a = $_GET['x'];\nbreak;\n}\necho $a;" [ "XSS@5" ];
    expect "sanitizer respected" "echo htmlspecialchars($_GET['x']);" [];
    expect "no revert modelling (2007-era)"
      "$a = htmlspecialchars($_GET['x']);\n$b = stripslashes($a);\necho $b;" [];
    expect "mysql source and sink"
      "$r = mysql_query('q');\n$row = mysql_fetch_assoc($r);\necho $row['c'];"
      [ "XSS@3" ];
    expect "SQLi sink" "$id = $_GET['id'];\nmysql_query(\"SELECT $id\");"
      [ "SQLi@2" ];
    expect "unknown function propagates (no WP profile)"
      "echo esc_html($_GET['x']);" [ "XSS@1" ];
    expect "exit terminates the path"
      "$a = $_GET['x'];\nexit;\necho $a;" [];
  ]

let register_globals_cases =
  [
    expect "uninitialized global-scope read is attacker-controlled"
      "echo $page_title;" [ "XSS@1" ];
    expect "assigned variable is not flagged" "$t = 'x';\necho $t;" [];
    expect "maybe-uninitialized (one branch) still flagged"
      "if ($c) {\n$t = 'x';\n}\necho $t;" [ "XSS@4" ];
    expect "include does not define variables (per-file tool)"
      "include 'defaults.php';\necho $conf_title;" [ "XSS@2" ];
    expect "function locals are not register_globals candidates"
      "function f() {\necho $local;\n}\nf();" [];
    expect "global statement suppresses the uninit warning"
      "function f() {\nglobal $wp_version;\necho $wp_version;\n}\nf();" [];
    expect "unset variable is not re-seeded"
      "$a = 'x';\nunset($a);\necho $a;" [];
  ]

let interproc_cases =
  [
    expect "called function analyzed with argument taint"
      "function f($m) {\necho $m;\n}\nf($_GET['x']);" [ "XSS@2" ];
    expect "uncalled functions are NOT analyzed (paper §V.A)"
      "function hook() {\necho $_COOKIE['t'];\n}" [];
    expect "return value flows back"
      "function wrap($m) {\nreturn '<b>' . $m;\n}\necho wrap($_POST['x']);"
      [ "XSS@4" ];
    expect "memoized second call still fires new sink"
      "function f($m) {\necho $m;\n}\nf('clean');\nf($_GET['x']);" [ "XSS@2" ];
    expect "recursion terminates" "function f($a) {\necho $a;\nreturn f($a);\n}\nf($_GET['x']);"
      [ "XSS@2" ];
  ]

let oop_cases =
  [
    Alcotest.test_case "class declaration fails the file" `Quick (fun () ->
        let r = analyze "class W {\n}\necho $_GET['x'];" in
        Alcotest.(check int) "no findings" 0 (List.length r.Report.findings);
        Alcotest.(check int) "one failed file" 1
          (List.length (Report.failed_files r));
        Alcotest.(check int) "one error message" 1 r.Report.errors);
    Alcotest.test_case "method call fails the file" `Quick (fun () ->
        let r = analyze "$rows = $wpdb->get_results('q');" in
        Alcotest.(check int) "failed" 1 (List.length (Report.failed_files r)));
    Alcotest.test_case "property access fails the file" `Quick (fun () ->
        let r = analyze "echo $row->name;" in
        Alcotest.(check int) "failed" 1 (List.length (Report.failed_files r)));
    Alcotest.test_case "new fails the file" `Quick (fun () ->
        let r = analyze "$w = new Widget();" in
        Alcotest.(check int) "failed" 1 (List.length (Report.failed_files r)));
    Alcotest.test_case "static access fails the file" `Quick (fun () ->
        let r = analyze "echo C::$v;" in
        Alcotest.(check int) "failed" 1 (List.length (Report.failed_files r)));
    Alcotest.test_case "procedural files in the same project still analyzed"
      `Quick (fun () ->
        let project =
          Phplang.Project.make ~name:"p"
            [ { Phplang.Project.path = "oop.php"; source = "<?php class A {}" };
              { Phplang.Project.path = "proc.php";
                source = "<?php echo $_GET['x'];" } ]
        in
        let r = Pixy.analyze_project project in
        Alcotest.(check int) "one finding" 1 (List.length r.Report.findings);
        Alcotest.(check int) "one failure" 1 (List.length (Report.failed_files r)));
  ]

(* heredoc/nowdoc, <?= and ?? reaching the dataflow engine end to end *)
let frontend_cases =
  [
    expect "heredoc interpolation reaches a SQL sink"
      "$id = $_GET['id'];\n$q = <<<SQL\nSELECT $id\nSQL;\nmysql_query($q);"
      [ "SQLi@5" ];
    expect "nowdoc body stays a literal"
      "$id = $_GET['id'];\n$q = <<<'SQL'\nSELECT $id\nSQL;\nmysql_query($q);"
      [];
    expect "short echo tag is an XSS sink" "?>\n<?= $_GET['x'] ?>" [ "XSS@2" ];
    expect "?? joins taint from both operands"
      "$a = $_GET['x'] ?? 'd';\necho $a;" [ "XSS@2" ];
    expect "?? of two literals is clean" "$a = 'x' ?? 'y';\necho $a;" [];
  ]

let () =
  Alcotest.run "pixy"
    [ ("flow-sensitive dataflow", dataflow_cases);
      ("front-end gaps (heredoc, <?=, ??)", frontend_cases);
      ("register_globals", register_globals_cases);
      ("inter-procedural", interproc_cases);
      ("OOP failure policy", oop_cases) ]
